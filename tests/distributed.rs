//! Integration tests of the distributed GSPMV stack against the real
//! Stokesian matrices (sparse ← stokes ← cluster).

use mrhs::cluster::{exchange, ClusterGspmvModel, DistributedMatrix};
use mrhs::sparse::partition::{coordinate_partition, rcb_partition};
use mrhs::sparse::reorder::permute_symmetric;
use mrhs::sparse::{gspmv_serial, MultiVec};
use mrhs::stokes::{assemble_resistance, ResistanceConfig, SystemBuilder};

fn sd_case(
    n: usize,
    seed: u64,
) -> (mrhs::stokes::StokesianSystem, mrhs::sparse::BcrsMatrix) {
    let sys = SystemBuilder::new(n).volume_fraction(0.4).seed(seed).build();
    let a = assemble_resistance(sys.particles(), &ResistanceConfig::default());
    (sys, a)
}

fn pseudo_multivec(n: usize, m: usize, seed: u64) -> MultiVec {
    let mut state = seed | 1;
    let mut mv = MultiVec::zeros(n, m);
    for v in mv.as_mut_slice() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    mv
}

#[test]
fn coordinate_partitioned_exchange_matches_serial_on_sd_matrix() {
    let (sys, a) = sd_case(150, 1);
    for nodes in [2usize, 4, 7] {
        let part = coordinate_partition(
            &a,
            sys.particles().positions(),
            sys.particles().box_lengths(),
            nodes,
        );
        let dm = DistributedMatrix::new(&a, &part);
        let permuted = permute_symmetric(&a, dm.permutation());
        let x = pseudo_multivec(a.n_rows(), 4, 3);
        let (y, stats) = exchange::execute(&dm, &x);
        let mut want = MultiVec::zeros(a.n_rows(), 4);
        gspmv_serial(&permuted, &x, &mut want);
        for (u, v) in y.as_slice().iter().zip(want.as_slice()) {
            // relative: resistance entries reach ~1e4, so ULP noise does too
            assert!((u - v).abs() <= 1e-9 * u.abs().max(v.abs()).max(1.0));
        }
        if nodes > 1 {
            assert!(stats.total_bytes() > 0, "halo must be exchanged");
        }
    }
}

#[test]
fn coordinate_partition_quality_comparable_to_rcb() {
    // The paper: coordinate partitioning gave communication volume and
    // balance comparable to METIS; we compare against RCB.
    let (sys, a) = sd_case(400, 2);
    let nodes = 8;
    let coord = coordinate_partition(
        &a,
        sys.particles().positions(),
        sys.particles().box_lengths(),
        nodes,
    );
    let rcb = rcb_partition(&a, sys.particles().positions(), nodes);
    let (ic, ir) = (coord.load_imbalance(&a), rcb.load_imbalance(&a));
    let (vc, vr) = (coord.communication_volume(&a), rcb.communication_volume(&a));
    assert!(ic < 1.7, "coordinate imbalance {ic}");
    assert!(ir < 1.7, "rcb imbalance {ir}");
    // within 2.5x of each other in volume
    let ratio = vc as f64 / vr.max(1) as f64;
    assert!(
        (0.4..=2.5).contains(&ratio),
        "comm volumes incomparable: coord {vc} vs rcb {vr}"
    );
}

#[test]
fn model_reproduces_paper_cluster_trends_on_sd_matrix() {
    let (sys, a) = sd_case(300, 3);
    let model = ClusterGspmvModel::paper_cluster();
    let scale = 300_000.0 / 300.0;
    let mut r16 = Vec::new();
    for nodes in [1usize, 8, 64] {
        let part = coordinate_partition(
            &a,
            sys.particles().positions(),
            sys.particles().box_lengths(),
            nodes,
        );
        let dm = DistributedMatrix::new(&a, &part);
        r16.push(model.relative_time_scaled(&dm, 16, scale));
    }
    // Fig. 4 shape: r(16) at 64 nodes sits below the single-node value.
    assert!(r16[2] < r16[0], "relative time should flatten at scale: {r16:?}");
}

#[test]
fn comm_fraction_projection_matches_table3_band() {
    let (sys, a) = sd_case(300, 4);
    let model = ClusterGspmvModel::paper_cluster();
    let scale = 300_000.0 / 300.0;
    let part = coordinate_partition(
        &a,
        sys.particles().positions(),
        sys.particles().box_lengths(),
        64,
    );
    let dm = DistributedMatrix::new(&a, &part);
    let f1 = model.comm_fraction_scaled(&dm, 1, scale);
    let f32 = model.comm_fraction_scaled(&dm, 32, scale);
    // Paper: 97% and 67%; allow a broad band around the trend.
    assert!(f1 > 0.6, "m=1 fraction {f1}");
    assert!(f32 < f1, "fraction must fall with m: {f1} -> {f32}");
}
