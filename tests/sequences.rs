//! Integration tests of the paper's §III toolbox for *sequences* of
//! slowly-varying systems, exercised on genuinely evolving Stokesian
//! dynamics matrices:
//!
//! 1. a reusable preconditioner (block-Jacobi, possibly stale),
//! 2. Krylov recycling (deflated CG with harvested Ritz vectors),
//! 3. previous-solution initial guesses (the technique MRHS builds on).

use mrhs::core::{MrhsConfig, NoiseSource, ResistanceSystem};
use mrhs::solvers::{cg, pcg, recycled_cg, BlockJacobi, RecycleSpace, SolveConfig};
use mrhs::stokes::{GaussianNoise, SystemBuilder};

/// Evolves the system a few Brownian steps and returns the matrix
/// sequence (R_0, R_1, …) the solvers see.
fn matrix_sequence(n: usize, steps: usize) -> Vec<mrhs::sparse::BcrsMatrix> {
    let (mut system, mut noise) =
        SystemBuilder::new(n).volume_fraction(0.4).seed(31).build_with_noise();
    let cfg = MrhsConfig { m: 2, ..Default::default() };
    let mut out = vec![system.assemble()];
    for _ in 0..steps {
        // one cheap chunk of motion
        let mut cache = None;
        mrhs::core::run_original_step(&mut system, &mut noise, &cfg, &mut cache);
        out.push(system.assemble());
    }
    out
}

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut noise = GaussianNoise::seed_from_u64(seed);
    let mut b = vec![0.0; n];
    noise.fill_standard_normal(&mut b);
    b
}

#[test]
fn stale_block_jacobi_keeps_working_across_steps() {
    let seq = matrix_sequence(60, 3);
    let n = seq[0].n_rows();
    let cfg = SolveConfig { tol: 1e-8, max_iter: 4000 };
    // Preconditioner built once, from R_0.
    let pc = BlockJacobi::new(&seq[0]).expect("SPD diagonal blocks");
    for (k, a) in seq.iter().enumerate() {
        let b = rhs(n, 100 + k as u64);
        let mut x_pc = vec![0.0; n];
        let with = pcg(a, &pc, &b, &mut x_pc, &cfg);
        assert!(with.converged, "step {k}: {with:?}");

        let mut x_plain = vec![0.0; n];
        let plain = cg(a, &b, &mut x_plain, &cfg);
        assert!(plain.converged);
        // Block-Jacobi must keep paying even when stale (lubrication
        // blocks dominate the diagonal).
        assert!(
            with.iterations <= plain.iterations,
            "step {k}: pcg {} vs cg {}",
            with.iterations,
            plain.iterations
        );
    }
}

#[test]
fn recycled_space_transfers_to_the_drifted_matrix() {
    let seq = matrix_sequence(60, 2);
    let n = seq[0].n_rows();
    let cfg = SolveConfig { tol: 1e-8, max_iter: 4000 };

    // Harvest on R_0 …
    let b0 = rhs(n, 1);
    let mut x0 = vec![0.0; n];
    let first = recycled_cg(&seq[0], None, &b0, &mut x0, &cfg, 10);
    assert!(first.result.converged);

    // … and deflate the solve on the drifted R_2 with a fresh RHS.
    let a_new = &seq[2];
    let space = RecycleSpace::from_vectors(a_new, &first.harvested)
        .expect("harvested Ritz vectors survive");
    let b1 = rhs(n, 2);
    let mut x_plain = vec![0.0; n];
    let plain = recycled_cg(a_new, None, &b1, &mut x_plain, &cfg, 0);
    let mut x_rec = vec![0.0; n];
    let rec = recycled_cg(a_new, Some(&space), &b1, &mut x_rec, &cfg, 0);
    assert!(plain.result.converged && rec.result.converged);
    // Deflation must never slow the solve on a drifted matrix, and the
    // answers must agree.
    assert!(
        rec.result.iterations <= plain.result.iterations,
        "recycled {} vs plain {}",
        rec.result.iterations,
        plain.result.iterations
    );
    for (u, v) in x_rec.iter().zip(&x_plain) {
        assert!((u - v).abs() <= 1e-4 * u.abs().max(1.0));
    }
}

#[test]
fn previous_solution_guess_beats_cold_start_across_steps() {
    let seq = matrix_sequence(60, 2);
    let n = seq[0].n_rows();
    let cfg = SolveConfig::default();
    // Same physical RHS solved against consecutive matrices — the
    // pattern of the paper's midpoint solve (step 5 of Alg. 1).
    let b = rhs(n, 9);
    let mut u_prev = vec![0.0; n];
    let cold0 = cg(&seq[0], &b, &mut u_prev, &cfg);
    assert!(cold0.converged);

    let mut warm_x = u_prev.clone();
    let warm = cg(&seq[1], &b, &mut warm_x, &cfg);
    let mut cold_x = vec![0.0; n];
    let cold = cg(&seq[1], &b, &mut cold_x, &cfg);
    assert!(warm.converged && cold.converged);
    assert!(
        warm.iterations < cold.iterations,
        "warm {} vs cold {}",
        warm.iterations,
        cold.iterations
    );
}

#[test]
fn noise_source_trait_object_compatible() {
    // The drivers take generic NoiseSource; make sure the trait is
    // usable through &mut dyn as well (API ergonomics guard).
    fn fill(src: &mut dyn NoiseSource, out: &mut [f64]) {
        src.fill_standard_normal(out);
    }
    let mut g = GaussianNoise::seed_from_u64(3);
    let mut buf = [0.0; 8];
    fill(&mut g, &mut buf);
    assert!(buf.iter().any(|v| *v != 0.0));
}

#[test]
fn resistance_system_dim_consistent_with_assemble() {
    let system = SystemBuilder::new(30).volume_fraction(0.3).seed(5).build();
    let a = system.assemble();
    assert_eq!(a.n_rows(), system.dim());
    assert_eq!(a.n_cols(), system.dim());
}
