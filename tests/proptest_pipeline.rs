//! Property-based cross-crate tests: distributed execution vs serial
//! kernels on random matrices and partitions, and MRHS driver
//! invariants on random synthetic systems.

use mrhs::cluster::{exchange, DistributedMatrix};
use mrhs::core::system::XorShiftNoise;
use mrhs::core::{run_mrhs_chunk, MrhsConfig, ResistanceSystem};
use mrhs::sparse::partition::Partition;
use mrhs::sparse::reorder::permute_symmetric;
use mrhs::sparse::{
    gspmv_serial, BcrsMatrix, Block3, BlockTripletBuilder, MultiVec,
};
use proptest::prelude::*;

fn arb_sym_matrix(max_nb: usize) -> impl Strategy<Value = BcrsMatrix> {
    (3usize..=max_nb)
        .prop_flat_map(|nb| {
            let pairs = proptest::collection::vec(
                ((0..nb), (0..nb), proptest::array::uniform9(-1.0f64..1.0)),
                0..4 * nb,
            );
            (Just(nb), pairs)
        })
        .prop_map(|(nb, pairs)| {
            let mut t = BlockTripletBuilder::square(nb);
            for i in 0..nb {
                t.add(i, i, Block3::scaled_identity(6.0));
            }
            for (i, j, v) in pairs {
                if i != j {
                    t.add_symmetric_pair(i, j, Block3(v));
                }
            }
            t.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_exchange_equals_serial(
        a in arb_sym_matrix(14),
        parts in 1usize..5,
        m in 1usize..6,
    ) {
        let nb = a.nb_rows();
        // deterministic round-robin-ish assignment with every part used
        let parts = parts.min(nb);
        let assignment: Vec<u32> =
            (0..nb).map(|i| ((i * 7 + i / 3) % parts) as u32).collect();
        let part = Partition::from_assignment(parts, assignment);

        let dm = DistributedMatrix::new(&a, &part);
        let permuted = permute_symmetric(&a, dm.permutation());
        let n = a.n_rows();
        let x = MultiVec::from_flat(
            n, m, (0..n * m).map(|v| ((v * 29 % 23) as f64) - 11.0).collect());
        let (y, stats) = exchange::execute(&dm, &x);
        let mut want = MultiVec::zeros(n, m);
        gspmv_serial(&permuted, &x, &mut want);
        for (u, v) in y.as_slice().iter().zip(want.as_slice()) {
            prop_assert!((u - v).abs() <= 1e-9 * u.abs().max(v.abs()).max(1.0));
        }
        // bytes accounting: total equals 8 bytes × 3m × Σ halo rows
        let halo_rows: usize = dm.recv_volumes().iter().sum();
        prop_assert_eq!(stats.total_bytes(), halo_rows * 3 * m * 8);
    }

    #[test]
    fn mrhs_chunk_runs_on_random_spring_systems(
        n_particles in 4usize..20,
        m in 2usize..6,
        stiffness in 0.5f64..4.0,
    ) {
        struct Springs {
            positions: Vec<f64>,
            stiffness: f64,
        }
        impl ResistanceSystem for Springs {
            fn dim(&self) -> usize { self.positions.len() * 3 }
            fn assemble(&self) -> BcrsMatrix {
                let nb = self.positions.len();
                let mut t = BlockTripletBuilder::square(nb);
                for i in 0..nb {
                    t.add(i, i, Block3::scaled_identity(3.0 + self.stiffness));
                    if i + 1 < nb {
                        let d = (self.positions[i + 1] - self.positions[i]).abs();
                        let w = self.stiffness / (1.0 + d * d);
                        t.add(i, i, Block3::scaled_identity(w));
                        t.add(i + 1, i + 1, Block3::scaled_identity(w));
                        t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-w));
                    }
                }
                t.build()
            }
            fn advance(&mut self, u: &[f64], dt: f64) {
                for (i, p) in self.positions.iter_mut().enumerate() {
                    *p += dt * u[3 * i];
                }
            }
            fn dt(&self) -> f64 { 0.05 }
            fn save_state(&self) -> Vec<f64> { self.positions.clone() }
            fn restore_state(&mut self, s: &[f64]) {
                self.positions.copy_from_slice(s);
            }
        }

        let mut sys = Springs {
            positions: (0..n_particles).map(|i| i as f64).collect(),
            stiffness,
        };
        let mut noise = XorShiftNoise::new(42);
        let cfg = MrhsConfig { m, ..Default::default() };
        let report = run_mrhs_chunk(&mut sys, &mut noise, &cfg);
        prop_assert_eq!(report.steps.len(), m);
        // every solve converged within budget
        for s in &report.steps {
            prop_assert!(s.second_solve_iterations < cfg.solve.max_iter);
        }
        // guess errors recorded for the tail steps and finite
        for s in &report.steps[1..] {
            let e = s.guess_relative_error.unwrap();
            prop_assert!(e.is_finite() && e >= 0.0);
        }
    }
}
