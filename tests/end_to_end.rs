//! Cross-crate integration tests: the full pipeline from packed
//! particles through resistance assembly, Brownian forces, block
//! solves, and the MRHS driver.

use mrhs::core::{run_mrhs_chunk, run_original_step, MrhsConfig, ResistanceSystem};
use mrhs::solvers::{
    block_cg, cg, spectral_bounds, ChebyshevSqrt, DenseCholesky, LinearOperator,
    SolveConfig,
};
use mrhs::sparse::MultiVec;
use mrhs::stokes::{
    assemble_resistance, GaussianNoise, ResistanceConfig, SystemBuilder,
};

fn small_system(n: usize, phi: f64, seed: u64) -> mrhs::stokes::StokesianSystem {
    SystemBuilder::new(n).volume_fraction(phi).seed(seed).build()
}

#[test]
fn resistance_matrix_drives_cg_to_convergence() {
    let sys = small_system(80, 0.4, 1);
    let a = assemble_resistance(sys.particles(), &ResistanceConfig::default());
    let n = a.n_rows();
    let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.11).sin()).collect();
    let mut x = vec![0.0; n];
    let res = cg(&a, &b, &mut x, &SolveConfig::default());
    assert!(res.converged, "{res:?}");
    // true residual check
    let mut ax = vec![0.0; n];
    a.apply(&x, &mut ax);
    let rn: f64 =
        b.iter().zip(&ax).map(|(u, v)| (u - v) * (u - v)).sum::<f64>().sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(rn <= 2e-6 * bn);
}

#[test]
fn chebyshev_noise_has_resistance_covariance() {
    // The whole point of S(R): cov(S(R)z) ≈ R. Validate against the
    // exact Cholesky transform on a small system by comparing
    // quadratic forms vᵀ·S(R)S(R)·v ≈ vᵀ·R·v.
    let sys = small_system(30, 0.3, 2);
    let a = assemble_resistance(sys.particles(), &ResistanceConfig::default());
    let n = a.n_rows();
    let g = (a.gershgorin_lower_bound(), a.gershgorin_upper_bound());
    let bounds = spectral_bounds(&a, 30, Some(g));
    let cheb = ChebyshevSqrt::new(bounds.lo, bounds.hi, 60);

    let v: Vec<f64> = (0..n).map(|i| ((i * 7) as f64).cos()).collect();
    let mut sv = vec![0.0; n];
    let mut ssv = vec![0.0; n];
    cheb.apply(&a, &v, &mut sv);
    cheb.apply(&a, &sv, &mut ssv);
    let mut av = vec![0.0; n];
    a.apply(&v, &mut av);
    let num: f64 = ssv.iter().zip(&av).map(|(u, w)| (u - w) * (u - w)).sum();
    let den: f64 = av.iter().map(|w| w * w).sum();
    assert!(
        (num / den).sqrt() < 0.05,
        "S(R)^2 v should approximate R v, rel err {}",
        (num / den).sqrt()
    );
    // And the Cholesky factor exists (R is SPD end to end).
    assert!(DenseCholesky::factor_bcrs(&a).is_some());
}

#[test]
fn block_cg_on_resistance_matrix_matches_cholesky() {
    let sys = small_system(25, 0.3, 3);
    let a = assemble_resistance(sys.particles(), &ResistanceConfig::default());
    let n = a.n_rows();
    let chol = DenseCholesky::factor_bcrs(&a).expect("SPD");

    let m = 4;
    let mut b = MultiVec::zeros(n, m);
    for j in 0..m {
        let col: Vec<f64> =
            (0..n).map(|i| ((i * (j + 3)) as f64 * 0.17).sin()).collect();
        b.set_column(j, &col);
    }
    let mut x = MultiVec::zeros(n, m);
    let res = block_cg(&a, &b, &mut x, &SolveConfig { tol: 1e-10, max_iter: 3000 });
    assert!(res.converged);

    let mut want = b.clone();
    chol.solve_multi_in_place(&mut want);
    for (u, v) in x.as_slice().iter().zip(want.as_slice()) {
        assert!((u - v).abs() < 1e-6, "{u} vs {v}");
    }
}

#[test]
fn mrhs_and_original_solve_identical_physics() {
    // With the same noise stream, step 0 of the MRHS chunk and the first
    // original step integrate the same system: positions after one step
    // should be very close (both solve to 1e-6; the MRHS head step's
    // velocity comes from the block solve).
    let cfg = MrhsConfig { m: 2, ..Default::default() };

    let mut sys_a = small_system(60, 0.4, 9);
    let mut noise_a = GaussianNoise::seed_from_u64(5);
    // Consume noise identically: MRHS draws n×m up front.
    let report = run_mrhs_chunk(&mut sys_a, &mut noise_a, &cfg);
    assert_eq!(report.steps.len(), 2);

    let mut sys_b = small_system(60, 0.4, 9);
    let mut noise_b = GaussianNoise::seed_from_u64(5);
    // Manually consume the same noise layout: the chunk drew a row-major
    // n×2 block; the original algorithm draws n per step. To compare
    // meaningfully we just verify both runs moved particles by a
    // comparable magnitude (same physics scale), not identical values.
    let mut cache = None;
    let s = run_original_step(&mut sys_b, &mut noise_b, &cfg, &mut cache);
    assert!(s.first_solve_iterations > 0);

    let disp = |sys: &mrhs::stokes::StokesianSystem,
                orig: &mrhs::stokes::StokesianSystem| {
        sys.particles()
            .positions()
            .iter()
            .zip(orig.particles().positions())
            .map(|(p, q)| {
                (0..3).map(|d| (p[d] - q[d]).abs().min(1e3)).fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max)
    };
    let fresh = small_system(60, 0.4, 9);
    let da = disp(&sys_a, &fresh);
    let db = disp(&sys_b, &fresh);
    assert!(da > 0.0 && db > 0.0);
    assert!(da / db < 20.0 && db / da < 20.0, "da={da} db={db}");
}

#[test]
fn chunked_simulation_is_stable_over_many_steps() {
    // Three chunks back to back: no panics, no overlap blow-up, and the
    // volume fraction is invariant (positions only move).
    let mut sys = small_system(50, 0.5, 4);
    let mut noise = GaussianNoise::seed_from_u64(6);
    let phi0 = sys.particles().volume_fraction();
    let cfg = MrhsConfig { m: 4, ..Default::default() };
    for _ in 0..3 {
        let report = run_mrhs_chunk(&mut sys, &mut noise, &cfg);
        assert!(report
            .steps
            .iter()
            .all(|s| s.second_solve_iterations < cfg.solve.max_iter));
    }
    assert!((sys.particles().volume_fraction() - phi0).abs() < 1e-12);
    // Matrix stays SPD after motion.
    let a = sys.assemble();
    assert!(a.is_symmetric_within(1e-9));
    assert!(DenseCholesky::factor_bcrs(&a).is_some());
}

#[test]
fn mrhs_driver_runs_on_symmetric_storage() {
    // The symmetric-storage switch, end to end on the real SD pipeline:
    // same system and noise stream as a full-storage run, trajectories
    // must agree (the operator is identical, only its layout differs).
    let cfg_full = MrhsConfig { m: 4, ..Default::default() };
    let cfg_sym =
        MrhsConfig { m: 4, symmetric_storage: true, ..Default::default() };

    let mut sys_full = small_system(50, 0.4, 11);
    let mut noise_full = GaussianNoise::seed_from_u64(21);
    let rep_full = run_mrhs_chunk(&mut sys_full, &mut noise_full, &cfg_full);

    let mut sys_sym = small_system(50, 0.4, 11);
    let mut noise_sym = GaussianNoise::seed_from_u64(21);
    let rep_sym = run_mrhs_chunk(&mut sys_sym, &mut noise_sym, &cfg_sym);

    assert_eq!(rep_sym.steps.len(), 4);
    assert!(rep_sym.block_iterations > 0);
    assert!(rep_sym
        .steps
        .iter()
        .all(|s| s.second_solve_iterations < cfg_sym.solve.max_iter));

    // Same physics: per-particle positions agree to solver tolerance.
    let mut max_diff = 0.0f64;
    for (p, q) in
        sys_full.particles().positions().iter().zip(sys_sym.particles().positions())
    {
        for d in 0..3 {
            max_diff = max_diff.max((p[d] - q[d]).abs());
        }
    }
    assert!(max_diff < 1e-5, "trajectories diverged by {max_diff}");
    // And the symmetric run did comparable solver work.
    let iters = |r: &mrhs::core::ChunkReport| -> usize {
        r.steps.iter().map(|s| s.second_solve_iterations).sum()
    };
    assert!(iters(&rep_sym) > 0 && iters(&rep_full) > 0);
}

#[test]
fn counting_operator_composes_with_full_pipeline() {
    use mrhs::solvers::CountingOperator;
    let sys = small_system(40, 0.4, 8);
    let a = assemble_resistance(sys.particles(), &ResistanceConfig::default());
    let c = CountingOperator::new(&a);
    let n = a.n_rows();
    let bounds = spectral_bounds(&c, 15, None);
    let cheb = ChebyshevSqrt::new(bounds.lo, bounds.hi, 30);
    let z = MultiVec::zeros(n, 8);
    let mut y = MultiVec::zeros(n, 8);
    cheb.apply_multi(&c, &z, &mut y);
    // 15 Lanczos applies + the power-iteration guard on the upper end
    // (all single), then 30 Chebyshev applies (multi).
    assert_eq!(c.single_applies(), 15 + mrhs::solvers::POWER_GUARD_ITERS);
    assert_eq!(c.multi_applies(), 30);
}
