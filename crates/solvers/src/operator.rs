//! The abstract linear operator the solvers run against.
//!
//! All Krylov machinery in this crate touches the matrix only through
//! [`LinearOperator::apply`] (SPMV) and [`LinearOperator::apply_multi`]
//! (GSPMV). That keeps the solvers reusable by the distributed simulator
//! (whose operator spans partitions) and lets tests count kernel
//! invocations via [`CountingOperator`].

use mrhs_sparse::{gspmv, spmv, BcrsMatrix, DedupBcrs, MultiVec, SymmetricBcrs};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A square linear operator `y = A·x` of scalar dimension `dim`.
pub trait LinearOperator: Sync {
    /// Scalar dimension of the operator.
    fn dim(&self) -> usize;

    /// `y = A·x` (single vector).
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// `Y = A·X` (multivector). The default forwards column-by-column;
    /// implementations backed by GSPMV override it.
    fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec) {
        assert_eq!(x.shape(), y.shape());
        assert_eq!(x.n(), self.dim());
        let mut xj = vec![0.0; self.dim()];
        let mut yj = vec![0.0; self.dim()];
        for j in 0..x.m() {
            x.copy_column_into(j, &mut xj);
            self.apply(&xj, &mut yj);
            y.set_column(j, &yj);
        }
    }

    /// Matrix powers: `outs[p − 1] = A^p · X` for `p = 1..=outs.len()`.
    /// The default chains [`Self::apply_multi`] (so wrapped operators
    /// like [`CountingOperator`] observe every multiply); operators
    /// with a communication-avoiding kernel override it — `BcrsMatrix`
    /// routes through the level-blocked SpMPV wavefront, and the
    /// distributed engine fuses the `k` halo exchanges into one.
    fn apply_powers(&self, x: &MultiVec, outs: &mut [MultiVec]) {
        if outs.is_empty() {
            return;
        }
        self.apply_multi(x, &mut outs[0]);
        for p in 1..outs.len() {
            let (prev, cur) = outs.split_at_mut(p);
            self.apply_multi(&prev[p - 1], &mut cur[0]);
        }
    }

    /// Fused evaluation of the whole shifted-Chebyshev sum
    /// `y = c_0/2 · z + Σ_p c_p · T_p(Ã) z`, `Ã = (A − mid·I)/half`.
    /// Returns `false` when the operator has no fused path (the
    /// default) — the caller must then run the generic three-term
    /// recurrence itself. `BcrsMatrix` overrides this with the
    /// level-blocked SpMPV kernel (one matrix stream per fused group).
    fn apply_chebyshev(
        &self,
        _z: &MultiVec,
        _mid: f64,
        _half: f64,
        _coeffs: &[f64],
        _y: &mut MultiVec,
    ) -> bool {
        false
    }
}

impl LinearOperator for BcrsMatrix {
    fn dim(&self) -> usize {
        assert_eq!(self.n_rows(), self.n_cols());
        self.n_rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        spmv(self, x, y);
    }

    fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec) {
        gspmv(self, x, y);
    }

    fn apply_powers(&self, x: &MultiVec, outs: &mut [MultiVec]) {
        mrhs_sparse::spmpv_powers(self, x, outs);
    }

    fn apply_chebyshev(
        &self,
        z: &MultiVec,
        mid: f64,
        half: f64,
        coeffs: &[f64],
        y: &mut MultiVec,
    ) -> bool {
        mrhs_sparse::spmpv_chebyshev(self, z, mid, half, coeffs, y);
        true
    }
}

impl LinearOperator for DedupBcrs {
    fn dim(&self) -> usize {
        assert_eq!(self.n_rows(), self.n_cols());
        self.n_rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }

    fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec) {
        self.gspmv(x, y);
    }
}

impl LinearOperator for SymmetricBcrs {
    fn dim(&self) -> usize {
        self.n_rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_parallel(x, y);
    }

    fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec) {
        self.gspmv_parallel(x, y);
    }
}

/// A dense row-major operator for tests and small reference problems.
pub struct DenseOperator {
    n: usize,
    data: Vec<f64>,
}

impl DenseOperator {
    /// Wraps a row-major `n×n` buffer.
    pub fn new(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n);
        DenseOperator { n, data }
    }

    /// The raw buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

impl LinearOperator for DenseOperator {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for i in 0..self.n {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            y[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }
}

/// Wraps an operator and counts single- and multi-vector applications,
/// plus the total number of *columns* multiplied. The experiment harness
/// uses these counts to feed the paper's timing model (Eq. 9) with
/// measured iteration numbers.
pub struct CountingOperator<'a, T: LinearOperator + ?Sized> {
    inner: &'a T,
    single: AtomicUsize,
    multi: AtomicUsize,
    columns: AtomicUsize,
}

impl<'a, T: LinearOperator + ?Sized> CountingOperator<'a, T> {
    /// Wraps `inner` with fresh counters.
    pub fn new(inner: &'a T) -> Self {
        CountingOperator {
            inner,
            single: AtomicUsize::new(0),
            multi: AtomicUsize::new(0),
            columns: AtomicUsize::new(0),
        }
    }

    /// Number of `apply` (SPMV) calls.
    pub fn single_applies(&self) -> usize {
        self.single.load(Ordering::Relaxed)
    }

    /// Number of `apply_multi` (GSPMV) calls.
    pub fn multi_applies(&self) -> usize {
        self.multi.load(Ordering::Relaxed)
    }

    /// Total vector columns multiplied across both kinds of call.
    pub fn total_columns(&self) -> usize {
        self.columns.load(Ordering::Relaxed)
    }

    /// Resets all counters.
    pub fn reset(&self) {
        self.single.store(0, Ordering::Relaxed);
        self.multi.store(0, Ordering::Relaxed);
        self.columns.store(0, Ordering::Relaxed);
    }
}

impl<T: LinearOperator + ?Sized> LinearOperator for CountingOperator<'_, T> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.single.fetch_add(1, Ordering::Relaxed);
        self.columns.fetch_add(1, Ordering::Relaxed);
        self.inner.apply(x, y);
    }

    fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec) {
        self.multi.fetch_add(1, Ordering::Relaxed);
        self.columns.fetch_add(x.m(), Ordering::Relaxed);
        self.inner.apply_multi(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::{Block3, BlockTripletBuilder};

    fn small_bcrs() -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(2);
        t.add(0, 0, Block3::scaled_identity(2.0));
        t.add(1, 1, Block3::scaled_identity(3.0));
        t.add_symmetric_pair(0, 1, Block3::scaled_identity(1.0));
        t.build()
    }

    #[test]
    fn bcrs_operator_applies() {
        let a = small_bcrs();
        let x = vec![1.0; 6];
        let mut y = vec![0.0; 6];
        a.apply(&x, &mut y);
        assert_eq!(y, vec![3.0, 3.0, 3.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn default_apply_multi_matches_columns() {
        let a = DenseOperator::new(2, vec![1.0, 2.0, 3.0, 4.0]);
        let x = MultiVec::from_columns(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut y = MultiVec::zeros(2, 2);
        a.apply_multi(&x, &mut y);
        assert_eq!(y.column(0), vec![1.0, 3.0]);
        assert_eq!(y.column(1), vec![2.0, 4.0]);
    }

    #[test]
    fn symmetric_storage_runs_through_cg_and_block_cg() {
        use crate::block_cg::block_cg;
        use crate::cg::{cg, SolveConfig};

        // SPD by diagonal dominance.
        let nb = 12;
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(6.0));
            if i + 1 < nb {
                t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
            }
        }
        let a = t.build();
        let s = mrhs_sparse::SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let n = a.n_rows();
        let cfg = SolveConfig { tol: 1e-10, max_iter: 500 };

        // Single vector: CG on symmetric storage matches CG on full.
        let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut x_full = vec![0.0; n];
        let mut x_sym = vec![0.0; n];
        assert!(cg(&a, &b, &mut x_full, &cfg).converged);
        assert!(cg(&s, &b, &mut x_sym, &cfg).converged);
        for (u, v) in x_full.iter().zip(&x_sym) {
            assert!((u - v).abs() <= 1e-8 * u.abs().max(1.0));
        }

        // Multivector: block CG on symmetric storage matches full.
        let m = 4;
        let mut bm = MultiVec::zeros(n, m);
        for j in 0..m {
            let col: Vec<f64> =
                (0..n).map(|i| (((i + 3 * j) % 5) as f64) - 2.0).collect();
            bm.set_column(j, &col);
        }
        let mut xm_full = MultiVec::zeros(n, m);
        let mut xm_sym = MultiVec::zeros(n, m);
        assert!(block_cg(&a, &bm, &mut xm_full, &cfg).converged);
        assert!(block_cg(&s, &bm, &mut xm_sym, &cfg).converged);
        for (u, v) in xm_full.as_slice().iter().zip(xm_sym.as_slice()) {
            assert!((u - v).abs() <= 1e-8 * u.abs().max(1.0));
        }
    }

    #[test]
    fn apply_powers_default_chains_and_bcrs_override_matches() {
        let a = small_bcrs();
        let n = a.n_rows();
        let mut x = MultiVec::zeros(n, 3);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 7 % 11) as f64) - 5.0;
        }
        // Default path (through CountingOperator): one apply_multi per
        // power.
        let c = CountingOperator::new(&a);
        let mut chained: Vec<MultiVec> =
            (0..3).map(|_| MultiVec::zeros(n, 3)).collect();
        c.apply_powers(&x, &mut chained);
        assert_eq!(c.multi_applies(), 3);
        // BcrsMatrix override (SpMPV wavefront): bitwise identical —
        // both run the same backend row kernel over full sweeps.
        let mut fused: Vec<MultiVec> =
            (0..3).map(|_| MultiVec::zeros(n, 3)).collect();
        a.apply_powers(&x, &mut fused);
        for (c, f) in chained.iter().zip(&fused) {
            assert_eq!(c.as_slice(), f.as_slice());
        }
    }

    #[test]
    fn counting_operator_counts() {
        let a = small_bcrs();
        let c = CountingOperator::new(&a);
        let x = vec![0.0; 6];
        let mut y = vec![0.0; 6];
        c.apply(&x, &mut y);
        c.apply(&x, &mut y);
        let xm = MultiVec::zeros(6, 4);
        let mut ym = MultiVec::zeros(6, 4);
        c.apply_multi(&xm, &mut ym);
        assert_eq!(c.single_applies(), 2);
        assert_eq!(c.multi_applies(), 1);
        assert_eq!(c.total_columns(), 6);
        c.reset();
        assert_eq!(c.total_columns(), 0);
    }
}
