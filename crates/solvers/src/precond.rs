//! Preconditioning — the first of the paper's §III techniques for
//! sequences of slowly-varying systems: "invest in constructing a
//! preconditioner that can be reused for solving with many matrices".
//!
//! For block matrices with heavy diagonal blocks (lubrication-dominated
//! resistance matrices qualify), block-Jacobi is the natural reusable
//! preconditioner: invert each 3×3 diagonal block once, reuse across
//! steps until convergence degrades, then rebuild.

use crate::cg::CgResult;
use crate::cg::SolveConfig;
use crate::operator::LinearOperator;
use mrhs_sparse::{BcrsMatrix, Block3};

/// A symmetric preconditioner `z = P⁻¹·r`.
pub trait Preconditioner: Sync {
    /// Applies the preconditioner.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// Identity preconditioner (turns [`pcg`] into plain CG).
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Block-Jacobi: the inverse of each 3×3 diagonal block.
pub struct BlockJacobi {
    inverses: Vec<Block3>,
}

impl BlockJacobi {
    /// Builds the preconditioner from the diagonal blocks of `a`.
    /// Returns `None` if any diagonal block is singular.
    pub fn new(a: &BcrsMatrix) -> Option<Self> {
        let mut inverses = Vec::with_capacity(a.nb_rows());
        for d in a.diagonal_blocks() {
            inverses.push(invert3(&d)?);
        }
        Some(BlockJacobi { inverses })
    }

    /// Scalar dimension.
    pub fn dim(&self) -> usize {
        3 * self.inverses.len()
    }
}

impl Preconditioner for BlockJacobi {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.dim());
        assert_eq!(z.len(), self.dim());
        for (i, inv) in self.inverses.iter().enumerate() {
            let v = inv.mul_vec([r[3 * i], r[3 * i + 1], r[3 * i + 2]]);
            z[3 * i..3 * i + 3].copy_from_slice(&v);
        }
    }
}

/// Preconditioned conjugate gradients with initial guess in `x`.
pub fn pcg<A: LinearOperator + ?Sized, P: Preconditioner + ?Sized>(
    a: &A,
    p: &P,
    b: &[f64],
    x: &mut [f64],
    cfg: &SolveConfig,
) -> CgResult {
    let n = a.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);

    let b_norm = norm(b);
    if b_norm == 0.0 {
        x.fill(0.0);
        return CgResult {
            iterations: 0,
            converged: true,
            residual_norm: 0.0,
            history: vec![0.0],
        };
    }
    let threshold = cfg.tol * b_norm;

    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let mut z = vec![0.0; n];
    p.apply(&r, &mut z);
    let mut rho = dot(&r, &z);
    let mut history = vec![norm(&r)];
    if history[0] <= threshold {
        return CgResult {
            iterations: 0,
            converged: true,
            residual_norm: history[0],
            history,
        };
    }

    let mut dir = z.clone();
    let mut q = vec![0.0; n];
    let mut converged = false;
    let mut iterations = 0;
    for _ in 0..cfg.max_iter {
        a.apply(&dir, &mut q);
        let dq = dot(&dir, &q);
        if dq <= 0.0 {
            break;
        }
        let alpha = rho / dq;
        for i in 0..n {
            x[i] += alpha * dir[i];
            r[i] -= alpha * q[i];
        }
        iterations += 1;
        let rnorm = norm(&r);
        history.push(rnorm);
        if rnorm <= threshold {
            converged = true;
            break;
        }
        p.apply(&r, &mut z);
        let rho_new = dot(&r, &z);
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            dir[i] = z[i] + beta * dir[i];
        }
    }
    let residual_norm = *history.last().unwrap();
    CgResult { iterations, converged, residual_norm, history }
}

/// Inverts a 3×3 block via cofactors; `None` when near-singular.
fn invert3(b: &Block3) -> Option<Block3> {
    let a = &b.0;
    let c00 = a[4] * a[8] - a[5] * a[7];
    let c01 = a[5] * a[6] - a[3] * a[8];
    let c02 = a[3] * a[7] - a[4] * a[6];
    let det = a[0] * c00 + a[1] * c01 + a[2] * c02;
    let scale = b.abs_sum().max(f64::MIN_POSITIVE);
    if det.abs() < 1e-14 * scale * scale * scale {
        return None;
    }
    let inv_det = 1.0 / det;
    Some(Block3([
        c00 * inv_det,
        (a[2] * a[7] - a[1] * a[8]) * inv_det,
        (a[1] * a[5] - a[2] * a[4]) * inv_det,
        c01 * inv_det,
        (a[0] * a[8] - a[2] * a[6]) * inv_det,
        (a[2] * a[3] - a[0] * a[5]) * inv_det,
        c02 * inv_det,
        (a[1] * a[6] - a[0] * a[7]) * inv_det,
        (a[0] * a[4] - a[1] * a[3]) * inv_det,
    ]))
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use mrhs_sparse::BlockTripletBuilder;

    fn ill_conditioned(nb: usize) -> BcrsMatrix {
        // Strongly anisotropic diagonal blocks (condition ~1e4 within
        // each block): exactly what block-Jacobi normalizes away.
        let mut t = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            let s = 30.0;
            t.add(
                bi,
                bi,
                Block3::from_rows([
                    [4.0 * s, 0.3, 0.0],
                    [0.3, 4.0, 0.3],
                    [0.0, 0.3, 4.0 / s],
                ]),
            );
            if bi + 1 < nb {
                t.add_symmetric_pair(bi, bi + 1, Block3::scaled_identity(-0.005));
            }
        }
        t.build()
    }

    #[test]
    fn invert3_round_trip() {
        let b =
            Block3::from_rows([[4.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]]);
        let inv = invert3(&b).unwrap();
        let prod = b * inv;
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn invert3_rejects_singular() {
        let b =
            Block3::from_rows([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 0.0, 1.0]]);
        assert!(invert3(&b).is_none());
    }

    #[test]
    fn pcg_with_identity_matches_cg() {
        let a = ill_conditioned(10);
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let cfg = SolveConfig::default();
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        let r1 = cg(&a, &b, &mut x1, &cfg);
        let r2 = pcg(&a, &IdentityPreconditioner, &b, &mut x2, &cfg);
        assert!(r1.converged && r2.converged);
        assert!(r1.iterations.abs_diff(r2.iterations) <= 1);
    }

    #[test]
    fn block_jacobi_cuts_iterations_on_scaled_problem() {
        let a = ill_conditioned(30);
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 3 % 11) as f64) - 5.0).collect();
        let cfg = SolveConfig { tol: 1e-8, max_iter: 5000 };

        let mut x_plain = vec![0.0; n];
        let plain = cg(&a, &b, &mut x_plain, &cfg);
        let pc = BlockJacobi::new(&a).unwrap();
        let mut x_pc = vec![0.0; n];
        let pcg_res = pcg(&a, &pc, &b, &mut x_pc, &cfg);
        assert!(plain.converged && pcg_res.converged);
        assert!(
            pcg_res.iterations * 2 < plain.iterations,
            "PCG {} vs CG {}",
            pcg_res.iterations,
            plain.iterations
        );
        // same solution
        for (u, v) in x_pc.iter().zip(&x_plain) {
            assert!((u - v).abs() <= 1e-5 * u.abs().max(1.0));
        }
    }

    #[test]
    fn stale_preconditioner_still_converges() {
        // The paper's reuse pattern: precondition with the matrix from
        // an earlier step.
        let a_old = ill_conditioned(20);
        let mut a_new = a_old.clone();
        for blk in a_new.blocks_mut() {
            *blk = *blk * 1.05; // drifted matrix
        }
        let pc = BlockJacobi::new(&a_old).unwrap();
        let n = a_new.n_rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = pcg(&a_new, &pc, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
    }
}
