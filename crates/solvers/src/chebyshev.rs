//! Shifted Chebyshev polynomial approximation of the matrix square root.
//!
//! Brownian forces need `f_B = L·z` with `L·Lᵀ = R`. Following Fixman
//! (1986) and the paper (§II-C), we instead compute `S(R)·z` where
//! `S` is a Chebyshev polynomial approximating `√λ` on an interval
//! `[λ_lo, λ_hi]` that brackets the spectrum of `R`. The evaluation uses
//! only matrix–vector products — `C_max` of them, 30 in the paper — and
//! with a block of noise vectors they all become GSPMV (Alg. 2 step 2,
//! "Cheb vectors").
//!
//! Operators that expose a fused evaluation
//! ([`LinearOperator::apply_chebyshev`] — `BcrsMatrix` routes it
//! through the level-blocked SpMPV wavefront) serve the whole sum in
//! ~one matrix stream per fused group. Everything else runs the
//! generic three-term recurrence below, which rotates three reusable
//! buffers and reads `z` directly for the first step — no clone, no
//! hidden workspace contract.

use crate::operator::LinearOperator;
use mrhs_sparse::MultiVec;
use std::cell::RefCell;

/// A fixed-degree Chebyshev approximation of `√λ` on `[lo, hi]`.
#[derive(Clone, Debug)]
pub struct ChebyshevSqrt {
    lo: f64,
    hi: f64,
    /// Chebyshev coefficients `c_0..c_order`; the approximation is
    /// `c_0/2 + Σ_{k≥1} c_k T_k(t)` with `t = (λ − mid)/half`.
    coeffs: Vec<f64>,
}

impl ChebyshevSqrt {
    /// Builds the degree-`order` approximation of `√λ` on `[lo, hi]`.
    /// `order` is the maximum polynomial order, i.e. the number of
    /// operator applications per evaluation (the paper's `C_max = 30`).
    ///
    /// # Panics
    /// If `lo ≤ 0`, `hi ≤ lo`, or `order == 0`.
    pub fn new(lo: f64, hi: f64, order: usize) -> Self {
        assert!(lo > 0.0, "spectrum bound must be positive, got lo={lo}");
        assert!(hi > lo, "need hi > lo, got [{lo}, {hi}]");
        assert!(order >= 1);
        let k_pts = order + 1;
        let mid = 0.5 * (hi + lo);
        let half = 0.5 * (hi - lo);
        // Values of √λ at the Chebyshev nodes of the interval.
        let node_vals: Vec<f64> = (0..k_pts)
            .map(|j| {
                let t =
                    (std::f64::consts::PI * (j as f64 + 0.5) / k_pts as f64).cos();
                (mid + half * t).sqrt()
            })
            .collect();
        let coeffs: Vec<f64> = (0..=order)
            .map(|k| {
                let mut acc = 0.0;
                for (j, fv) in node_vals.iter().enumerate() {
                    acc += fv
                        * (std::f64::consts::PI * k as f64 * (j as f64 + 0.5)
                            / k_pts as f64)
                            .cos();
                }
                2.0 * acc / k_pts as f64
            })
            .collect();
        ChebyshevSqrt { lo, hi, coeffs }
    }

    /// Polynomial order (= operator applications per evaluation).
    pub fn order(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The approximation interval.
    pub fn interval(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Evaluates the scalar polynomial at `lambda` (Clenshaw recurrence).
    pub fn evaluate_scalar(&self, lambda: f64) -> f64 {
        let mid = 0.5 * (self.hi + self.lo);
        let half = 0.5 * (self.hi - self.lo);
        let t = (lambda - mid) / half;
        let mut b1 = 0.0;
        let mut b2 = 0.0;
        for &c in self.coeffs.iter().skip(1).rev() {
            let b0 = 2.0 * t * b1 - b2 + c;
            b2 = b1;
            b1 = b0;
        }
        t * b1 - b2 + 0.5 * self.coeffs[0]
    }

    /// Maximum absolute error of the scalar approximation sampled at
    /// `samples` evenly spaced points of the interval.
    pub fn max_error(&self, samples: usize) -> f64 {
        (0..samples)
            .map(|i| {
                let lambda = self.lo
                    + (self.hi - self.lo) * i as f64 / (samples - 1).max(1) as f64;
                (self.evaluate_scalar(lambda) - lambda.sqrt()).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Computes `Y = S(A)·Z` for a block of vectors; performs exactly
    /// `order` operator applications. Operators with a fused path
    /// ([`LinearOperator::apply_chebyshev`]) evaluate the whole sum in
    /// level-blocked groups; everything else runs the generic
    /// three-term recurrence over three reusable buffers.
    pub fn apply_multi<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        z: &MultiVec,
        y: &mut MultiVec,
    ) {
        assert_eq!(z.n(), a.dim());
        assert_eq!(z.shape(), y.shape());
        let _span = mrhs_telemetry::span("solver/cheb/apply");
        mrhs_telemetry::counter_add("solver/cheb/applies", 1);
        mrhs_telemetry::counter_add("solver/cheb/terms", self.order() as u64);
        let mid = 0.5 * (self.hi + self.lo);
        let half = 0.5 * (self.hi - self.lo);
        if a.apply_chebyshev(z, mid, half, &self.coeffs, y) {
            return;
        }
        self.apply_multi_generic(a, z, y, mid, half);
    }

    /// The generic three-term recurrence: `u_0 = z` (read in place),
    /// `u_1 = Ã·z`, `u_{p+1} = 2·Ã·u_p − u_{p−1}`, accumulated as
    /// `y = c_0/2·z + Σ c_p·u_p`. The three `u` buffers come from a
    /// thread-local pool, so steady-state calls allocate nothing.
    fn apply_multi_generic<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        z: &MultiVec,
        y: &mut MultiVec,
        mid: f64,
        half: f64,
    ) {
        let (n, m) = z.shape();
        with_pool(&RECURRENCE_POOL, 3, n, m, |bufs| {
            let [cur, next, prev] = bufs else {
                unreachable!("pool returns exactly three buffers")
            };
            // u_1 = Ã·z ; y = c0/2 · z + c1 · u_1
            apply_shifted(a, z, cur, mid, half);
            y.fill(0.0);
            y.axpy(0.5 * self.coeffs[0], z);
            y.axpy(self.coeffs[1], cur);

            // First recurrence step reads u_0 = z directly; afterwards
            // `prev` holds u_{p−1}.
            let mut prev_is_z = true;
            for &c in self.coeffs.iter().skip(2) {
                apply_shifted(a, cur, next, mid, half);
                next.scale(2.0);
                next.axpy(-1.0, if prev_is_z { z } else { &*prev });
                y.axpy(c, next);
                prev_is_z = false;
                // Rotate: prev ← u_p, cur ← u_{p+1}, next ← free.
                std::mem::swap(prev, cur);
                std::mem::swap(cur, next);
            }
        });
    }

    /// Single-vector convenience wrapper around [`Self::apply_multi`].
    /// Stages `z`/`y` through a thread-local width-1 pair (a width-1
    /// `MultiVec` has the vector's exact layout), so steady-state calls
    /// allocate nothing.
    pub fn apply<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        z: &[f64],
        y: &mut [f64],
    ) {
        assert_eq!(z.len(), y.len());
        with_pool(&SINGLE_IO_POOL, 2, z.len(), 1, |bufs| {
            let [zm, ym] = bufs else {
                unreachable!("pool returns exactly two buffers")
            };
            zm.as_mut_slice().copy_from_slice(z);
            self.apply_multi(a, zm, ym);
            y.copy_from_slice(ym.as_slice());
        });
    }
}

/// `out = Ã·x = (A·x − mid·x)/half`. Pure out-of-place shift — it
/// touches nothing but `out` (the old `_work` scratch parameter and the
/// "restored by apply_shifted's contract" story are gone; the
/// recurrence's buffer rotation lives entirely in `apply_multi_generic`).
fn apply_shifted<A: LinearOperator + ?Sized>(
    a: &A,
    x: &MultiVec,
    out: &mut MultiVec,
    mid: f64,
    half: f64,
) {
    a.apply_multi(x, out);
    let inv = 1.0 / half;
    for (o, xi) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o = (*o - mid * xi) * inv;
    }
}

thread_local! {
    /// Recurrence buffers (`u` rotation) for the generic path.
    static RECURRENCE_POOL: RefCell<Vec<MultiVec>> =
        const { RefCell::new(Vec::new()) };
    /// Width-1 staging pair for the single-vector wrapper. Separate
    /// pool so `apply` → `apply_multi` never re-borrows.
    static SINGLE_IO_POOL: RefCell<Vec<MultiVec>> =
        const { RefCell::new(Vec::new()) };
}

/// Runs `f` over `count` pool buffers of shape `(n, m)`, reshaping the
/// pool only when the request changes — repeated same-shape calls are
/// allocation-free.
fn with_pool<R>(
    pool: &'static std::thread::LocalKey<RefCell<Vec<MultiVec>>>,
    count: usize,
    n: usize,
    m: usize,
    f: impl FnOnce(&mut [MultiVec]) -> R,
) -> R {
    pool.with(|cell| {
        let mut bufs = cell.borrow_mut();
        if bufs.len() != count || bufs.iter().any(|b| b.shape() != (n, m)) {
            *bufs = (0..count).map(|_| MultiVec::zeros(n, m)).collect();
        }
        f(&mut bufs[..count])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{CountingOperator, DenseOperator};
    use mrhs_sparse::BcrsMatrix;

    #[test]
    fn scalar_approximation_is_accurate() {
        let cheb = ChebyshevSqrt::new(0.1, 10.0, 30);
        assert!(cheb.max_error(1000) < 2e-3, "err = {}", cheb.max_error(1000));
        // and improves with order
        let cheb50 = ChebyshevSqrt::new(0.1, 10.0, 60);
        assert!(cheb50.max_error(1000) < cheb.max_error(1000));
    }

    #[test]
    fn scalar_matches_sqrt_at_midpoint() {
        let cheb = ChebyshevSqrt::new(1.0, 4.0, 24);
        for lambda in [1.0, 1.7, 2.5, 3.3, 4.0] {
            assert!(
                (cheb.evaluate_scalar(lambda) - lambda.sqrt()).abs() < 1e-6,
                "λ={lambda}"
            );
        }
    }

    #[test]
    fn matrix_apply_matches_scalar_on_diagonal_operator() {
        // For a diagonal matrix, S(A)z has entries S(d_i)·z_i.
        let n = 4;
        let diag = [0.5, 1.0, 2.0, 3.5];
        let mut dense = vec![0.0; n * n];
        for i in 0..n {
            dense[i * n + i] = diag[i];
        }
        let a = DenseOperator::new(n, dense);
        let cheb = ChebyshevSqrt::new(0.4, 4.0, 30);
        let z = vec![1.0, -2.0, 0.5, 3.0];
        let mut y = vec![0.0; n];
        cheb.apply(&a, &z, &mut y);
        for i in 0..n {
            let want = cheb.evaluate_scalar(diag[i]) * z[i];
            assert!((y[i] - want).abs() < 1e-10, "i={i}: {} vs {want}", y[i]);
        }
    }

    #[test]
    fn squaring_recovers_matrix_action() {
        // S(A)·S(A)·z ≈ A·z when the spectrum is inside the interval.
        let n = 3;
        let dense = vec![2.0, 0.3, 0.0, 0.3, 1.5, 0.2, 0.0, 0.2, 2.5];
        let a = DenseOperator::new(n, dense.clone());
        let cheb = ChebyshevSqrt::new(0.8, 3.5, 40);
        let z = vec![1.0, 2.0, -1.0];
        let mut s1 = vec![0.0; n];
        let mut s2 = vec![0.0; n];
        cheb.apply(&a, &z, &mut s1);
        cheb.apply(&a, &s1, &mut s2);
        let mut az = vec![0.0; n];
        use crate::operator::LinearOperator;
        a.apply(&z, &mut az);
        for i in 0..n {
            assert!((s2[i] - az[i]).abs() < 1e-6, "{} vs {}", s2[i], az[i]);
        }
    }

    #[test]
    fn apply_multi_performs_order_gspmvs() {
        let a = BcrsMatrix::scaled_identity(5, 2.0);
        let c = CountingOperator::new(&a);
        let cheb = ChebyshevSqrt::new(1.0, 3.0, 30);
        let z = MultiVec::zeros(15, 4);
        let mut y = MultiVec::zeros(15, 4);
        cheb.apply_multi(&c, &z, &mut y);
        assert_eq!(c.multi_applies(), 30);
    }

    #[test]
    fn multi_columns_match_single_applies() {
        let n = 9;
        let a = BcrsMatrix::scaled_identity(3, 2.5);
        let cheb = ChebyshevSqrt::new(2.0, 3.0, 16);
        let mut z = MultiVec::zeros(n, 3);
        for j in 0..3 {
            let col: Vec<f64> = (0..n).map(|i| ((i + j) as f64).sin()).collect();
            z.set_column(j, &col);
        }
        let mut y = MultiVec::zeros(n, 3);
        cheb.apply_multi(&a, &z, &mut y);
        for j in 0..3 {
            let mut yj = vec![0.0; n];
            cheb.apply(&a, &z.column(j), &mut yj);
            for (u, v) in y.column(j).iter().zip(&yj) {
                assert!((u - v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn identity_scaling_gives_sqrt_scale() {
        // A = 4·I ⇒ S(A)z ≈ 2z.
        let a = BcrsMatrix::scaled_identity(4, 4.0);
        let cheb = ChebyshevSqrt::new(1.0, 5.0, 30);
        let z = vec![1.0; 12];
        let mut y = vec![0.0; 12];
        cheb.apply(&a, &z, &mut y);
        for v in &y {
            assert!((v - 2.0).abs() < 1e-4, "{v}");
        }
    }

    #[test]
    fn fused_bcrs_path_matches_generic_recurrence() {
        // The same operator as a BcrsMatrix (fused SpMPV hook) and as
        // a DenseOperator (generic three-term recurrence) must agree.
        use mrhs_sparse::{Block3, BlockTripletBuilder};
        let nb = 8;
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(4.0));
            if i + 1 < nb {
                t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-0.7));
            }
        }
        let a = t.build();
        let n = a.n_rows();
        let dense = DenseOperator::new(n, a.to_dense());
        let cheb = ChebyshevSqrt::new(1.0, 7.0, 25);
        for m in [1usize, 3] {
            let mut z = MultiVec::zeros(n, m);
            for (i, v) in z.as_mut_slice().iter_mut().enumerate() {
                *v = ((i * 13 % 17) as f64) / 17.0 - 0.5;
            }
            let mut y_fused = MultiVec::zeros(n, m);
            cheb.apply_multi(&a, &z, &mut y_fused);
            let mut y_generic = MultiVec::zeros(n, m);
            cheb.apply_multi(&dense, &z, &mut y_generic);
            for (u, v) in y_fused.as_slice().iter().zip(y_generic.as_slice()) {
                assert!((u - v).abs() < 1e-10, "m={m}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn apply_pool_survives_shape_changes() {
        // Back-to-back applies at different dimensions must reshape the
        // thread-local pools correctly.
        for n_blocks in [2usize, 4, 2, 3] {
            let a = BcrsMatrix::scaled_identity(n_blocks, 4.0);
            let n = 3 * n_blocks;
            let cheb = ChebyshevSqrt::new(1.0, 5.0, 20);
            let z = vec![1.0; n];
            let mut y = vec![0.0; n];
            cheb.apply(&a, &z, &mut y);
            for v in &y {
                assert!((v - 2.0).abs() < 1e-4, "n={n}: {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_interval() {
        ChebyshevSqrt::new(0.0, 1.0, 10);
    }
}
