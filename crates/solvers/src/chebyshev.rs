//! Shifted Chebyshev polynomial approximation of the matrix square root.
//!
//! Brownian forces need `f_B = L·z` with `L·Lᵀ = R`. Following Fixman
//! (1986) and the paper (§II-C), we instead compute `S(R)·z` where
//! `S` is a Chebyshev polynomial approximating `√λ` on an interval
//! `[λ_lo, λ_hi]` that brackets the spectrum of `R`. The evaluation uses
//! only matrix–vector products — `C_max` of them, 30 in the paper — and
//! with a block of noise vectors they all become GSPMV (Alg. 2 step 2,
//! "Cheb vectors").

use crate::operator::LinearOperator;
use mrhs_sparse::MultiVec;

/// A fixed-degree Chebyshev approximation of `√λ` on `[lo, hi]`.
#[derive(Clone, Debug)]
pub struct ChebyshevSqrt {
    lo: f64,
    hi: f64,
    /// Chebyshev coefficients `c_0..c_order`; the approximation is
    /// `c_0/2 + Σ_{k≥1} c_k T_k(t)` with `t = (λ − mid)/half`.
    coeffs: Vec<f64>,
}

impl ChebyshevSqrt {
    /// Builds the degree-`order` approximation of `√λ` on `[lo, hi]`.
    /// `order` is the maximum polynomial order, i.e. the number of
    /// operator applications per evaluation (the paper's `C_max = 30`).
    ///
    /// # Panics
    /// If `lo ≤ 0`, `hi ≤ lo`, or `order == 0`.
    pub fn new(lo: f64, hi: f64, order: usize) -> Self {
        assert!(lo > 0.0, "spectrum bound must be positive, got lo={lo}");
        assert!(hi > lo, "need hi > lo, got [{lo}, {hi}]");
        assert!(order >= 1);
        let k_pts = order + 1;
        let mid = 0.5 * (hi + lo);
        let half = 0.5 * (hi - lo);
        // Values of √λ at the Chebyshev nodes of the interval.
        let node_vals: Vec<f64> = (0..k_pts)
            .map(|j| {
                let t =
                    (std::f64::consts::PI * (j as f64 + 0.5) / k_pts as f64).cos();
                (mid + half * t).sqrt()
            })
            .collect();
        let coeffs: Vec<f64> = (0..=order)
            .map(|k| {
                let mut acc = 0.0;
                for (j, fv) in node_vals.iter().enumerate() {
                    acc += fv
                        * (std::f64::consts::PI * k as f64 * (j as f64 + 0.5)
                            / k_pts as f64)
                            .cos();
                }
                2.0 * acc / k_pts as f64
            })
            .collect();
        ChebyshevSqrt { lo, hi, coeffs }
    }

    /// Polynomial order (= operator applications per evaluation).
    pub fn order(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The approximation interval.
    pub fn interval(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Evaluates the scalar polynomial at `lambda` (Clenshaw recurrence).
    pub fn evaluate_scalar(&self, lambda: f64) -> f64 {
        let mid = 0.5 * (self.hi + self.lo);
        let half = 0.5 * (self.hi - self.lo);
        let t = (lambda - mid) / half;
        let mut b1 = 0.0;
        let mut b2 = 0.0;
        for &c in self.coeffs.iter().skip(1).rev() {
            let b0 = 2.0 * t * b1 - b2 + c;
            b2 = b1;
            b1 = b0;
        }
        t * b1 - b2 + 0.5 * self.coeffs[0]
    }

    /// Maximum absolute error of the scalar approximation sampled at
    /// `samples` evenly spaced points of the interval.
    pub fn max_error(&self, samples: usize) -> f64 {
        (0..samples)
            .map(|i| {
                let lambda = self.lo
                    + (self.hi - self.lo) * i as f64 / (samples - 1).max(1) as f64;
                (self.evaluate_scalar(lambda) - lambda.sqrt()).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Computes `Y = S(A)·Z` for a block of vectors using the three-term
    /// Chebyshev recurrence; performs exactly `order` GSPMV applications.
    pub fn apply_multi<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        z: &MultiVec,
        y: &mut MultiVec,
    ) {
        assert_eq!(z.n(), a.dim());
        assert_eq!(z.shape(), y.shape());
        let _span = mrhs_telemetry::span("solver/cheb/apply");
        mrhs_telemetry::counter_add("solver/cheb/applies", 1);
        mrhs_telemetry::counter_add("solver/cheb/terms", self.order() as u64);
        let (n, m) = z.shape();
        let mid = 0.5 * (self.hi + self.lo);
        let half = 0.5 * (self.hi - self.lo);

        // u_prev = Z ; u_cur = Ã·Z with Ã = (A − mid·I)/half
        let mut u_prev = z.clone();
        let mut u_cur = MultiVec::zeros(n, m);
        let mut scratch = MultiVec::zeros(n, m);
        apply_shifted(a, z, &mut u_cur, &mut scratch, mid, half);

        // y = c0/2 · Z + c1 · u_cur
        y.fill(0.0);
        y.axpy(0.5 * self.coeffs[0], z);
        y.axpy(self.coeffs[1], &u_cur);

        for &c in self.coeffs.iter().skip(2) {
            // u_next = 2·Ã·u_cur − u_prev, built in `u_prev`'s storage.
            apply_shifted(a, &u_cur, &mut scratch, &mut u_prev, mid, half);
            // scratch now holds Ã·u_cur (u_prev was used as workspace and
            // then restored by apply_shifted's contract below).
            let u_next = {
                scratch.scale(2.0);
                scratch.axpy(-1.0, &u_prev);
                &scratch
            };
            y.axpy(c, u_next);
            std::mem::swap(&mut u_prev, &mut u_cur);
            std::mem::swap(&mut u_cur, &mut scratch);
        }
    }

    /// Single-vector convenience wrapper around [`Self::apply_multi`].
    pub fn apply<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        z: &[f64],
        y: &mut [f64],
    ) {
        let zm = MultiVec::from_vec(z.to_vec());
        let mut ym = MultiVec::zeros(z.len(), 1);
        self.apply_multi(a, &zm, &mut ym);
        y.copy_from_slice(&ym.column(0));
    }
}

/// `out = (A·x − mid·x)/half`; `work` is untouched scratch the caller
/// may reuse (kept as a parameter so the recurrence allocates nothing).
fn apply_shifted<A: LinearOperator + ?Sized>(
    a: &A,
    x: &MultiVec,
    out: &mut MultiVec,
    _work: &mut MultiVec,
    mid: f64,
    half: f64,
) {
    a.apply_multi(x, out);
    let inv = 1.0 / half;
    for (o, xi) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o = (*o - mid * xi) * inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{CountingOperator, DenseOperator};
    use mrhs_sparse::BcrsMatrix;

    #[test]
    fn scalar_approximation_is_accurate() {
        let cheb = ChebyshevSqrt::new(0.1, 10.0, 30);
        assert!(cheb.max_error(1000) < 2e-3, "err = {}", cheb.max_error(1000));
        // and improves with order
        let cheb50 = ChebyshevSqrt::new(0.1, 10.0, 60);
        assert!(cheb50.max_error(1000) < cheb.max_error(1000));
    }

    #[test]
    fn scalar_matches_sqrt_at_midpoint() {
        let cheb = ChebyshevSqrt::new(1.0, 4.0, 24);
        for lambda in [1.0, 1.7, 2.5, 3.3, 4.0] {
            assert!(
                (cheb.evaluate_scalar(lambda) - lambda.sqrt()).abs() < 1e-6,
                "λ={lambda}"
            );
        }
    }

    #[test]
    fn matrix_apply_matches_scalar_on_diagonal_operator() {
        // For a diagonal matrix, S(A)z has entries S(d_i)·z_i.
        let n = 4;
        let diag = [0.5, 1.0, 2.0, 3.5];
        let mut dense = vec![0.0; n * n];
        for i in 0..n {
            dense[i * n + i] = diag[i];
        }
        let a = DenseOperator::new(n, dense);
        let cheb = ChebyshevSqrt::new(0.4, 4.0, 30);
        let z = vec![1.0, -2.0, 0.5, 3.0];
        let mut y = vec![0.0; n];
        cheb.apply(&a, &z, &mut y);
        for i in 0..n {
            let want = cheb.evaluate_scalar(diag[i]) * z[i];
            assert!((y[i] - want).abs() < 1e-10, "i={i}: {} vs {want}", y[i]);
        }
    }

    #[test]
    fn squaring_recovers_matrix_action() {
        // S(A)·S(A)·z ≈ A·z when the spectrum is inside the interval.
        let n = 3;
        let dense = vec![2.0, 0.3, 0.0, 0.3, 1.5, 0.2, 0.0, 0.2, 2.5];
        let a = DenseOperator::new(n, dense.clone());
        let cheb = ChebyshevSqrt::new(0.8, 3.5, 40);
        let z = vec![1.0, 2.0, -1.0];
        let mut s1 = vec![0.0; n];
        let mut s2 = vec![0.0; n];
        cheb.apply(&a, &z, &mut s1);
        cheb.apply(&a, &s1, &mut s2);
        let mut az = vec![0.0; n];
        use crate::operator::LinearOperator;
        a.apply(&z, &mut az);
        for i in 0..n {
            assert!((s2[i] - az[i]).abs() < 1e-6, "{} vs {}", s2[i], az[i]);
        }
    }

    #[test]
    fn apply_multi_performs_order_gspmvs() {
        let a = BcrsMatrix::scaled_identity(5, 2.0);
        let c = CountingOperator::new(&a);
        let cheb = ChebyshevSqrt::new(1.0, 3.0, 30);
        let z = MultiVec::zeros(15, 4);
        let mut y = MultiVec::zeros(15, 4);
        cheb.apply_multi(&c, &z, &mut y);
        assert_eq!(c.multi_applies(), 30);
    }

    #[test]
    fn multi_columns_match_single_applies() {
        let n = 9;
        let a = BcrsMatrix::scaled_identity(3, 2.5);
        let cheb = ChebyshevSqrt::new(2.0, 3.0, 16);
        let mut z = MultiVec::zeros(n, 3);
        for j in 0..3 {
            let col: Vec<f64> = (0..n).map(|i| ((i + j) as f64).sin()).collect();
            z.set_column(j, &col);
        }
        let mut y = MultiVec::zeros(n, 3);
        cheb.apply_multi(&a, &z, &mut y);
        for j in 0..3 {
            let mut yj = vec![0.0; n];
            cheb.apply(&a, &z.column(j), &mut yj);
            for (u, v) in y.column(j).iter().zip(&yj) {
                assert!((u - v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn identity_scaling_gives_sqrt_scale() {
        // A = 4·I ⇒ S(A)z ≈ 2z.
        let a = BcrsMatrix::scaled_identity(4, 4.0);
        let cheb = ChebyshevSqrt::new(1.0, 5.0, 30);
        let z = vec![1.0; 12];
        let mut y = vec![0.0; 12];
        cheb.apply(&a, &z, &mut y);
        for v in &y {
            assert!((v - 2.0).abs() < 1e-4, "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_interval() {
        ChebyshevSqrt::new(0.0, 1.0, 10);
    }
}
