//! Dense Cholesky factorization — the small-problem reference path.
//!
//! Many SD implementations factor `R = L·Lᵀ` once per step, using `L`
//! both for the Brownian force (`f_B = L·z`) and the velocity solves
//! (paper §II-C). That is impractical at scale but invaluable here as a
//! correctness oracle for the Chebyshev and CG paths, and it implements
//! the paper's small-system optimization: one factorization reused for
//! both solves of a time step (the second via iterative refinement).

use crate::dense;
use mrhs_sparse::{BcrsMatrix, MultiVec};

/// A dense lower-triangular Cholesky factor.
#[derive(Clone, Debug)]
pub struct DenseCholesky {
    n: usize,
    /// Row-major `n×n`; strictly upper part is zero.
    l: Vec<f64>,
}

impl DenseCholesky {
    /// Factors a row-major dense SPD matrix. Returns `None` if a
    /// non-positive pivot is encountered.
    pub fn factor_dense(a: &[f64], n: usize) -> Option<Self> {
        assert_eq!(a.len(), n * n);
        let mut l = a.to_vec();
        if dense::cholesky_in_place(&mut l, n) {
            Some(DenseCholesky { n, l })
        } else {
            None
        }
    }

    /// Densifies and factors a (small) BCRS matrix.
    pub fn factor_bcrs(a: &BcrsMatrix) -> Option<Self> {
        assert_eq!(a.n_rows(), a.n_cols());
        Self::factor_dense(&a.to_dense(), a.n_rows())
    }

    /// Scalar dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The factor `L` (row-major).
    pub fn l(&self) -> &[f64] {
        &self.l
    }

    /// Solves `L·Lᵀ·x = b` in place.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        dense::cholesky_solve(&self.l, self.n, b);
    }

    /// Solves for every column of a multivector in place.
    pub fn solve_multi_in_place(&self, b: &mut MultiVec) {
        assert_eq!(b.n(), self.n);
        let mut col = vec![0.0; self.n];
        for j in 0..b.m() {
            for (i, c) in col.iter_mut().enumerate() {
                *c = b.get(i, j);
            }
            dense::cholesky_solve(&self.l, self.n, &mut col);
            b.set_column(j, &col);
        }
    }

    /// Computes `y = L·z` — the exact correlated-noise transform that
    /// the Chebyshev polynomial approximates.
    pub fn mul_l(&self, z: &[f64], y: &mut [f64]) {
        assert_eq!(z.len(), self.n);
        assert_eq!(y.len(), self.n);
        for i in (0..self.n).rev() {
            let mut acc = 0.0;
            for k in 0..=i {
                acc += self.l[i * self.n + k] * z[k];
            }
            y[i] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::{Block3, BlockTripletBuilder};

    fn spd_bcrs(nb: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            t.add(bi, bi, Block3::scaled_identity(5.0));
            if bi + 1 < nb {
                t.add_symmetric_pair(
                    bi,
                    bi + 1,
                    Block3::from_rows([
                        [-1.0, 0.2, 0.0],
                        [0.2, -1.0, 0.1],
                        [0.0, 0.1, -1.0],
                    ]),
                );
            }
        }
        t.build()
    }

    #[test]
    fn factor_and_solve_recovers_solution() {
        let a = spd_bcrs(4);
        let n = a.n_rows();
        let chol = DenseCholesky::factor_bcrs(&a).expect("SPD");
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut b = vec![0.0; n];
        use crate::operator::LinearOperator;
        a.apply(&x_true, &mut b);
        chol.solve_in_place(&mut b);
        for (u, v) in b.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn l_times_lt_reproduces_matrix() {
        let a = spd_bcrs(3);
        let n = a.n_rows();
        let chol = DenseCholesky::factor_bcrs(&a).unwrap();
        let lt = dense::transpose(chol.l(), n, n);
        let llt = dense::matmul(chol.l(), n, n, &lt, n);
        assert!(dense::max_diff(&llt, &a.to_dense()) < 1e-10);
    }

    #[test]
    fn mul_l_covariance_matches_matrix() {
        // E[(Lz)(Lz)ᵀ] = LLᵀ = A; check deterministically via L e_k.
        let a = spd_bcrs(2);
        let n = a.n_rows();
        let chol = DenseCholesky::factor_bcrs(&a).unwrap();
        let mut cov = vec![0.0; n * n];
        let mut col = vec![0.0; n];
        for k in 0..n {
            let mut e = vec![0.0; n];
            e[k] = 1.0;
            chol.mul_l(&e, &mut col);
            for i in 0..n {
                for j in 0..n {
                    cov[i * n + j] += col[i] * col[j];
                }
            }
        }
        assert!(dense::max_diff(&cov, &a.to_dense()) < 1e-10);
    }

    #[test]
    fn solve_multi_matches_column_solves() {
        let a = spd_bcrs(3);
        let n = a.n_rows();
        let chol = DenseCholesky::factor_bcrs(&a).unwrap();
        let mut mv = MultiVec::zeros(n, 2);
        for j in 0..2 {
            let col: Vec<f64> =
                (0..n).map(|i| ((i * (j + 2)) as f64).cos()).collect();
            mv.set_column(j, &col);
        }
        let reference: Vec<Vec<f64>> = (0..2)
            .map(|j| {
                let mut c = mv.column(j);
                chol.solve_in_place(&mut c);
                c
            })
            .collect();
        chol.solve_multi_in_place(&mut mv);
        for j in 0..2 {
            for (u, v) in mv.column(j).iter().zip(&reference[j]) {
                assert!((u - v).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn indefinite_matrix_fails_to_factor() {
        let a = vec![1.0, 2.0, 2.0, 1.0];
        assert!(DenseCholesky::factor_dense(&a, 2).is_none());
    }
}
