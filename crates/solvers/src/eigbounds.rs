//! Spectral interval estimation for the Chebyshev square root.
//!
//! The Chebyshev approximation needs an interval `[λ_lo, λ_hi]` that
//! brackets the spectrum of the SPD resistance matrix. We provide three
//! estimators and a combined driver:
//!
//! * Gershgorin bounds (exact brackets, often loose) — on [`mrhs_sparse::BcrsMatrix`];
//! * power iteration for `λ_max`;
//! * a short Lanczos recurrence whose tridiagonal Ritz values estimate
//!   both ends; extreme eigenvalues of the tridiagonal are found by
//!   Sturm-sequence bisection.

use crate::operator::LinearOperator;

/// A bracketing interval for the spectrum of an SPD operator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpectralBounds {
    /// Lower bound (strictly positive for SPD matrices).
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

/// Safety factor for turning a power-iteration Rayleigh quotient into
/// a Chebyshev interval's upper end. The Rayleigh quotient converges to
/// `λ_max` **from below** (it is a weighted mean of eigenvalues, and
/// with few iterations on a clustered spectrum it visibly undershoots),
/// while [`crate::chebyshev::ChebyshevSqrt::new`] requires `[lo, hi]`
/// to *bracket* the spectrum — an undershot `hi` silently degrades the
/// approximation outside the interval. Any estimate fed to the
/// Chebyshev interval must therefore be inflated; 1.5 covers the
/// undershoot of short runs (a handful of iterations) on the clustered
/// spectra the regression test pins, at the cost of a slightly wider
/// (less accurate, never wrong) approximation interval.
pub const POWER_UPPER_SAFETY: f64 = 1.5;

/// Power iterations used to guard [`spectral_bounds`]'s upper end when
/// no exact Gershgorin bracket is supplied. Public so operator-count
/// tests can state "Lanczos steps + guard applies" exactly.
pub const POWER_GUARD_ITERS: usize = 8;

/// A `λ_max` estimate that is safe to use as a Chebyshev interval's
/// upper end: the power-iteration Rayleigh quotient inflated by
/// [`POWER_UPPER_SAFETY`] (see its docs for why the raw quotient must
/// never feed `ChebyshevSqrt` directly).
pub fn power_upper_bound<A: LinearOperator + ?Sized>(a: &A, iters: usize) -> f64 {
    power_iteration(a, iters) * POWER_UPPER_SAFETY
}

/// Estimates `λ_max` by power iteration with a deterministic start
/// vector. Returns the Rayleigh quotient after `iters` steps — a bound
/// from **below**; inflate with [`power_upper_bound`] before using it
/// as a bracketing interval's upper end.
pub fn power_iteration<A: LinearOperator + ?Sized>(a: &A, iters: usize) -> f64 {
    let n = a.dim();
    assert!(n > 0);
    let mut v = deterministic_unit(n, 0x5eed);
    let mut av = vec![0.0; n];
    let mut lambda = 0.0;
    for _ in 0..iters.max(1) {
        a.apply(&v, &mut av);
        lambda = dot(&v, &av);
        let norm = dot(&av, &av).sqrt();
        if norm == 0.0 {
            return 0.0;
        }
        for (vi, avi) in v.iter_mut().zip(&av) {
            *vi = avi / norm;
        }
    }
    lambda
}

/// Runs `steps` of plain Lanczos and returns the extreme Ritz values
/// `(θ_min, θ_max)` of the resulting tridiagonal. These converge to the
/// extreme eigenvalues from inside the spectrum.
pub fn lanczos_extremes<A: LinearOperator + ?Sized>(
    a: &A,
    steps: usize,
) -> (f64, f64) {
    let n = a.dim();
    let k = steps.min(n).max(1);
    let mut alpha = Vec::with_capacity(k);
    let mut beta: Vec<f64> = Vec::with_capacity(k.saturating_sub(1));

    let mut v = deterministic_unit(n, 0x1a2b3c);
    let mut v_prev = vec![0.0; n];
    let mut w = vec![0.0; n];

    for j in 0..k {
        a.apply(&v, &mut w);
        if j > 0 {
            let b = beta[j - 1];
            for (wi, vp) in w.iter_mut().zip(&v_prev) {
                *wi -= b * vp;
            }
        }
        let aj = dot(&v, &w);
        alpha.push(aj);
        for (wi, vi) in w.iter_mut().zip(&v) {
            *wi -= aj * vi;
        }
        let b = dot(&w, &w).sqrt();
        if j + 1 < k {
            if b < 1e-14 {
                break; // invariant subspace found; tridiagonal is exact
            }
            beta.push(b);
            v_prev.copy_from_slice(&v);
            for (vi, wi) in v.iter_mut().zip(&w) {
                *vi = wi / b;
            }
        }
    }
    let m = alpha.len();
    let beta = &beta[..m.saturating_sub(1)];
    (tridiag_extreme(&alpha, beta, true), tridiag_extreme(&alpha, beta, false))
}

/// Combined estimator: Lanczos Ritz values widened by a safety margin,
/// clipped against the (exact) Gershgorin bracket when one is supplied.
/// The lower end is floored at `hi · 1e-8` so the Chebyshev interval is
/// always positive even for nearly singular matrices.
pub fn spectral_bounds<A: LinearOperator + ?Sized>(
    a: &A,
    lanczos_steps: usize,
    gershgorin: Option<(f64, f64)>,
) -> SpectralBounds {
    let (ritz_lo, ritz_hi) = lanczos_extremes(a, lanczos_steps);
    // Ritz values lie inside the spectrum: widen outward.
    let mut lo = ritz_lo * 0.9;
    let mut hi = ritz_hi * 1.1;
    match gershgorin {
        Some((g_lo, g_hi)) => {
            // Gershgorin is a true bracket: never exceed it, and use it
            // to tighten the widened Ritz estimates.
            hi = hi.min(g_hi);
            if g_lo > 0.0 {
                lo = lo.max(g_lo);
            }
        }
        None => {
            // Without an exact bracket, every estimate here converges
            // from *below*; guard the top end with the inflated
            // power-iteration bound so a Chebyshev interval built on
            // these bounds actually brackets λ_max.
            hi = hi.max(power_upper_bound(a, POWER_GUARD_ITERS));
        }
    }
    let floor = hi.abs() * 1e-8;
    if lo < floor {
        lo = floor.max(f64::MIN_POSITIVE);
    }
    if hi <= lo {
        hi = lo * (1.0 + 1e-6);
    }
    SpectralBounds { lo, hi }
}

/// Number of eigenvalues of the symmetric tridiagonal `(alpha, beta)`
/// strictly less than `x` (Sturm sequence count).
pub(crate) fn sturm_count(alpha: &[f64], beta: &[f64], x: f64) -> usize {
    let mut count = 0;
    let mut d = 1.0f64;
    for (i, &a) in alpha.iter().enumerate() {
        let b2 = if i == 0 { 0.0 } else { beta[i - 1] * beta[i - 1] };
        d = a - x - b2 / if d != 0.0 { d } else { f64::MIN_POSITIVE };
        if d < 0.0 {
            count += 1;
        }
    }
    count
}

/// Finds the `target`-th smallest eigenvalue (1-based) of the symmetric
/// tridiagonal by bisection with Sturm counts.
pub(crate) fn tridiag_kth_eigenvalue(
    alpha: &[f64],
    beta: &[f64],
    target: usize,
) -> f64 {
    let m = alpha.len();
    assert!(m > 0 && (1..=m).contains(&target));
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..m {
        let r = if i == 0 { 0.0 } else { beta[i - 1].abs() }
            + if i + 1 < m { beta[i].abs() } else { 0.0 };
        lo = lo.min(alpha[i] - r);
        hi = hi.max(alpha[i] + r);
    }
    if m == 1 {
        return alpha[0];
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if sturm_count(alpha, beta, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo <= 1e-13 * hi.abs().max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Finds the smallest (`smallest = true`) or largest eigenvalue of the
/// tridiagonal by bisection with Sturm counts.
fn tridiag_extreme(alpha: &[f64], beta: &[f64], smallest: bool) -> f64 {
    let m = alpha.len();
    assert!(m > 0);
    // Gershgorin bracket for the tridiagonal itself.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..m {
        let r = if i == 0 { 0.0 } else { beta[i - 1].abs() }
            + if i + 1 < m { beta[i].abs() } else { 0.0 };
        lo = lo.min(alpha[i] - r);
        hi = hi.max(alpha[i] + r);
    }
    if m == 1 {
        return alpha[0];
    }
    let target = if smallest { 1 } else { m };
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if sturm_count(alpha, beta, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo <= 1e-13 * hi.abs().max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Deterministic pseudo-random unit vector (xorshift fill).
fn deterministic_unit(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    let mut v: Vec<f64> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    let norm = dot(&v, &v).sqrt();
    for vi in v.iter_mut() {
        *vi /= norm;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::DenseOperator;
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    fn diag_operator(diag: &[f64]) -> DenseOperator {
        let n = diag.len();
        let mut d = vec![0.0; n * n];
        for (i, v) in diag.iter().enumerate() {
            d[i * n + i] = *v;
        }
        DenseOperator::new(n, d)
    }

    #[test]
    fn power_iteration_finds_dominant_eigenvalue() {
        let a = diag_operator(&[1.0, 3.0, 7.0, 2.0]);
        let lambda = power_iteration(&a, 200);
        assert!((lambda - 7.0).abs() < 1e-6, "{lambda}");
    }

    #[test]
    fn lanczos_extremes_on_diagonal_matrix() {
        let a = diag_operator(&[0.5, 1.0, 2.0, 4.0, 9.0]);
        let (lo, hi) = lanczos_extremes(&a, 5);
        assert!((lo - 0.5).abs() < 1e-6, "lo={lo}");
        assert!((hi - 9.0).abs() < 1e-6, "hi={hi}");
    }

    #[test]
    fn sturm_count_matches_known_spectrum() {
        // T = [[2,1],[1,2]] has eigenvalues 1 and 3.
        let alpha = [2.0, 2.0];
        let beta = [1.0];
        assert_eq!(sturm_count(&alpha, &beta, 0.5), 0);
        assert_eq!(sturm_count(&alpha, &beta, 2.0), 1);
        assert_eq!(sturm_count(&alpha, &beta, 3.5), 2);
        assert!((tridiag_extreme(&alpha, &beta, true) - 1.0).abs() < 1e-10);
        assert!((tridiag_extreme(&alpha, &beta, false) - 3.0).abs() < 1e-10);
    }

    #[test]
    fn spectral_bounds_bracket_block_laplacian() {
        let nb = 20;
        let mut t = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            t.add(bi, bi, Block3::scaled_identity(4.0));
            if bi + 1 < nb {
                t.add_symmetric_pair(bi, bi + 1, Block3::scaled_identity(-1.0));
            }
        }
        let a = t.build();
        let g = (a.gershgorin_lower_bound(), a.gershgorin_upper_bound());
        let b = spectral_bounds(&a, 30, Some(g));
        // true spectrum is 4 − 2cos(kπ/(nb+1)) ⊂ (2, 6)
        assert!(b.lo > 0.0 && b.lo <= 2.1, "lo={}", b.lo);
        assert!(b.hi >= 5.9 && b.hi <= 6.6, "hi={}", b.hi);
    }

    #[test]
    fn power_upper_bound_brackets_despite_rayleigh_undershoot() {
        // Clustered spectrum: 40 eigenvalues at 9, one at 10. Three
        // power iterations leave the Rayleigh quotient visibly below
        // λ_max = 10 (the ratio 9/10 decays slowly), which is exactly
        // the case where feeding the raw quotient to ChebyshevSqrt
        // would hand it a non-bracketing interval.
        let mut diag = vec![9.0; 40];
        diag.push(10.0);
        let a = diag_operator(&diag);
        let raw = power_iteration(&a, 3);
        assert!(raw < 9.5, "expected visible undershoot, got {raw}");
        // The inflated bound brackets λ_max anyway.
        assert!(power_upper_bound(&a, 3) >= 10.0);
        // And spectral_bounds without an exact bracket inherits the
        // guard: its interval must cover λ_max.
        let b = spectral_bounds(&a, 3, None);
        assert!(b.hi >= 10.0, "hi={} fails to bracket λ_max", b.hi);
    }

    #[test]
    fn bounds_are_positive_even_for_tiny_lower_end() {
        let a = diag_operator(&[1e-12, 1.0]);
        let b = spectral_bounds(&a, 2, None);
        assert!(b.lo > 0.0);
        assert!(b.hi >= b.lo);
    }

    #[test]
    fn lanczos_handles_identity_breakdown() {
        // Lanczos on the identity breaks down after one step; the single
        // Ritz value 1 must still come out.
        let a = BcrsMatrix::scaled_identity(6, 1.0);
        let (lo, hi) = lanczos_extremes(&a, 10);
        assert!((lo - 1.0).abs() < 1e-10);
        assert!((hi - 1.0).abs() < 1e-10);
    }
}
