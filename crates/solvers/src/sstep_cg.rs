//! s-step (communication-avoiding) block conjugate gradients.
//!
//! Classic block CG ([`crate::block_cg`]) streams the matrix once per
//! iteration. The s-step variant (Chronopoulos & Gear's formulation,
//! extended to `m` right-hand sides) instead expands the block Krylov
//! space `s` levels at a time with a single matrix-powers sweep:
//!
//! ```text
//!   W  = [R, A·R, …, A^{s−1}·R]      (n × s·m basis block)
//!   AW = [A·R, …, A^s·R]             (produced by the same sweep)
//! ```
//!
//! When the operator is a [`mrhs_sparse::BcrsMatrix`], the powers come
//! from the level-blocked SpMPV wavefront
//! ([`mrhs_sparse::spmpv_powers`]), so the matrix is streamed ~once per
//! cycle instead of `s` times — the communication-avoiding payoff. Any
//! other [`LinearOperator`] transparently falls back to `s` chained
//! [`LinearOperator::apply_multi`] calls through the default
//! [`LinearOperator::apply_powers`].
//!
//! One cycle then A-conjugates `W` against the previous cycle's
//! direction block, solves one `(s·m)×(s·m)` Gram system for the step,
//! and updates `X` and `R`. In exact arithmetic conjugating against the
//! previous block alone suffices (the Krylov structure makes older
//! blocks automatically conjugate); in floating point the monomial
//! basis loses conditioning roughly like `κ(A)^s`, which keeps
//! practical `s` small (≲ 5). The basis columns are norm-scaled before
//! the Gram solves to push that wall out, and every small solve is
//! symmetrized and ridge-guarded exactly like block CG; a singular
//! Gram system reports as [`SStepCgResult::breakdown`] rather than
//! poisoning the iterate.

use crate::cg::SolveConfig;
use crate::dense;
use crate::operator::LinearOperator;
use mrhs_sparse::MultiVec;
use mrhs_telemetry as telemetry;

/// Outcome of an s-step block-CG solve.
#[derive(Clone, Debug)]
pub struct SStepCgResult {
    /// s-step cycles completed (each is one matrix-powers sweep of
    /// depth `s` plus one `(s·m)×(s·m)` Gram solve).
    pub cycles: usize,
    /// Matrix applications performed by completed cycles
    /// (`cycles · s`) — comparable to [`crate::BlockCgResult::iterations`],
    /// which costs one application each.
    pub iterations: usize,
    /// Whether every column met the tolerance.
    pub converged: bool,
    /// Per-column residual norms after `cycles` completed cycles.
    pub residual_norms: Vec<f64>,
    /// `Some(c)` if a Gram solve failed during cycle `c` (conditioning
    /// wall of the monomial basis, or rank-deficient residual); the
    /// solve stopped with `cycles = c − 1` and `X` untouched by the
    /// failed cycle.
    pub breakdown: Option<usize>,
}

/// Options for [`sstep_cg_with_options`].
#[derive(Clone, Debug)]
pub struct SStepCgOptions {
    /// Tolerance and iteration cap. `max_iter` counts matrix
    /// applications (as in block CG), so the cycle budget is
    /// `ceil(max_iter / s)`.
    pub solve: SolveConfig,
    /// Krylov levels expanded per cycle. `1` reduces to a conjugate-
    /// direction variant of block CG; the monomial basis keeps useful
    /// values ≲ 5.
    pub s: usize,
}

impl Default for SStepCgOptions {
    fn default() -> Self {
        SStepCgOptions { solve: SolveConfig::default(), s: 2 }
    }
}

/// Solves `A·X = B` for SPD `A` by s-step block CG, starting from the
/// guess in `x`. Each column converges when its residual norm falls
/// below `opts.solve.tol` times that column's `‖b_j‖`.
pub fn sstep_cg<A: LinearOperator + ?Sized>(
    a: &A,
    b: &MultiVec,
    x: &mut MultiVec,
    s: usize,
    cfg: &SolveConfig,
) -> SStepCgResult {
    sstep_cg_with_options(a, b, x, &SStepCgOptions { solve: *cfg, s })
}

/// [`sstep_cg`] with explicit [`SStepCgOptions`].
pub fn sstep_cg_with_options<A: LinearOperator + ?Sized>(
    a: &A,
    b: &MultiVec,
    x: &mut MultiVec,
    opts: &SStepCgOptions,
) -> SStepCgResult {
    let s = opts.s;
    assert!(s >= 1, "s-step CG needs s >= 1");
    let cfg = &opts.solve;
    let n = a.dim();
    let m = b.m();
    assert_eq!(b.n(), n);
    assert_eq!(x.shape(), (n, m));

    let _solve_span = telemetry::span("solver/sstep_cg");
    telemetry::counter_add("solver/sstep_cg/solves", 1);

    let thresholds: Vec<f64> =
        b.norms().iter().map(|bn| cfg.tol * bn.max(f64::MIN_POSITIVE)).collect();

    // R = B − A·X
    let mut r = MultiVec::zeros(n, m);
    a.apply_multi(x, &mut r);
    for (ri, bi) in r.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *ri = bi - *ri;
    }

    let mut norms = r.norms();
    if converged_all(&norms, &thresholds) {
        return SStepCgResult {
            cycles: 0,
            iterations: 0,
            converged: true,
            residual_norms: norms,
            breakdown: None,
        };
    }

    let sm = s * m;
    let mut powers: Vec<MultiVec> = (0..s).map(|_| MultiVec::zeros(n, m)).collect();
    let mut w = MultiVec::zeros(n, sm);
    let mut aw = MultiVec::zeros(n, sm);
    // Previous cycle's conjugated direction block and its image.
    let mut q_prev: Option<(MultiVec, MultiVec, Vec<f64>)> = None;

    let max_cycles = cfg.max_iter.div_ceil(s).max(1);
    let mut cycles = 0;
    let mut breakdown = None;

    for cycle in 1..=max_cycles {
        // Basis sweep: powers[p] = A^{p+1}·R. One fused SpMPV stream
        // for BCRS operators; chained apply_multi otherwise.
        a.apply_powers(&r, &mut powers);
        pack_basis(&r, &powers, &mut w, &mut aw);

        // Norm-scale the basis columns (spans are unchanged; the Gram
        // systems stay conditioned as the monomial columns blow apart).
        let scales: Vec<f64> = w
            .norms()
            .iter()
            .map(|&v| if v > 0.0 { 1.0 / v } else { 1.0 })
            .collect();
        w.scale_columns(&scales);
        aw.scale_columns(&scales);

        // A-conjugate against the previous cycle's block:
        //   Q  = W  − Q_prev·C   with  G_prev·C = AQ_prevᵀ·W.
        if let Some((qp, aqp, g_prev)) = &q_prev {
            let mut lhs = g_prev.clone();
            dense::symmetrize(&mut lhs, sm);
            ridge(&mut lhs, sm);
            let mut c = aqp.gram(&w);
            if !dense::lu_solve(&mut lhs, sm, &mut c, sm) {
                breakdown = Some(cycle);
                break;
            }
            for v in &mut c {
                *v = -*v;
            }
            w.add_mul_dense(qp, &c);
            aw.add_mul_dense(aqp, &c);
        }

        // Step: (QᵀAQ)·α = QᵀR, then X += Q·α, R −= AQ·α.
        let g = w.gram(&aw);
        let mut lhs = g.clone();
        dense::symmetrize(&mut lhs, sm);
        ridge(&mut lhs, sm);
        let mut alpha = w.gram(&r);
        if !dense::lu_solve(&mut lhs, sm, &mut alpha, m) {
            breakdown = Some(cycle);
            break;
        }
        x.add_mul_dense(&w, &alpha);
        for v in &mut alpha {
            *v = -*v;
        }
        r.add_mul_dense(&aw, &alpha);

        cycles = cycle;
        telemetry::counter_add("solver/sstep_cg/cycles", 1);
        norms = r.norms();
        if converged_all(&norms, &thresholds) {
            break;
        }

        q_prev = match q_prev.take() {
            Some((mut qp, mut aqp, _)) => {
                std::mem::swap(&mut qp, &mut w);
                std::mem::swap(&mut aqp, &mut aw);
                Some((qp, aqp, g))
            }
            None => Some((w.clone(), aw.clone(), g)),
        };
    }

    let converged = breakdown.is_none() && converged_all(&norms, &thresholds);
    SStepCgResult {
        cycles,
        iterations: cycles * s,
        converged,
        residual_norms: norms,
        breakdown,
    }
}

fn converged_all(norms: &[f64], thresholds: &[f64]) -> bool {
    norms.iter().zip(thresholds).all(|(n, t)| *n <= *t)
}

/// Packs `[R | powers[0] | … | powers[s−2]]` into `w` and
/// `[powers[0] | … | powers[s−1]]` into `aw`, column-block by
/// column-block (row-major interleave).
fn pack_basis(
    r: &MultiVec,
    powers: &[MultiVec],
    w: &mut MultiVec,
    aw: &mut MultiVec,
) {
    let s = powers.len();
    let m = r.m();
    for row in 0..r.n() {
        let wr = w.row_mut(row);
        wr[..m].copy_from_slice(r.row(row));
        for (j, p) in powers[..s - 1].iter().enumerate() {
            wr[(j + 1) * m..(j + 2) * m].copy_from_slice(p.row(row));
        }
    }
    for row in 0..r.n() {
        let ar = aw.row_mut(row);
        for (j, p) in powers.iter().enumerate() {
            ar[j * m..(j + 1) * m].copy_from_slice(p.row(row));
        }
    }
}

/// Trace-scaled ridge, as in block CG, so rank-deficient Gram systems
/// stay factorizable once some columns converge.
fn ridge(a: &mut [f64], m: usize) {
    let trace: f64 = (0..m).map(|i| a[i * m + i]).sum();
    let eps = trace.abs().max(f64::MIN_POSITIVE) * 1e-14 / m as f64;
    for i in 0..m {
        a[i * m + i] += eps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_cg::block_cg;
    use crate::operator::{CountingOperator, DenseOperator};
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    fn laplacian(nb: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            t.add(bi, bi, Block3::scaled_identity(4.0));
            if bi + 1 < nb {
                t.add_symmetric_pair(bi, bi + 1, Block3::scaled_identity(-1.0));
            }
        }
        t.build()
    }

    fn pseudo_multivec(n: usize, m: usize, seed: u64) -> MultiVec {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut mv = MultiVec::zeros(n, m);
        for v in mv.as_mut_slice() {
            *v = next();
        }
        mv
    }

    fn true_residual_ok(a: &BcrsMatrix, b: &MultiVec, x: &MultiVec, tol: f64) {
        use crate::operator::LinearOperator;
        let (n, m) = x.shape();
        let mut ax = MultiVec::zeros(n, m);
        a.apply_multi(x, &mut ax);
        for j in 0..m {
            let bj = b.column(j);
            let axj = ax.column(j);
            let rn: f64 = bj
                .iter()
                .zip(&axj)
                .map(|(u, v)| (u - v) * (u - v))
                .sum::<f64>()
                .sqrt();
            let bn: f64 = bj.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(rn <= tol * bn, "col {j}: {rn} vs {bn}");
        }
    }

    #[test]
    fn converges_for_each_s_and_matches_block_cg() {
        let a = laplacian(25);
        let n = a.n_rows();
        let m = 4;
        let b = pseudo_multivec(n, m, 17);
        let cfg = SolveConfig { tol: 1e-9, max_iter: 600 };

        let mut x_ref = MultiVec::zeros(n, m);
        assert!(block_cg(&a, &b, &mut x_ref, &cfg).converged);

        for s in [1, 2, 3] {
            let mut x = MultiVec::zeros(n, m);
            let res = sstep_cg(&a, &b, &mut x, s, &cfg);
            assert!(res.converged, "s={s}: {res:?}");
            assert!(res.breakdown.is_none());
            assert_eq!(res.iterations, res.cycles * s);
            true_residual_ok(&a, &b, &x, 1e-8);
            for (u, v) in x.as_slice().iter().zip(x_ref.as_slice()) {
                assert!((u - v).abs() < 1e-6, "s={s}");
            }
        }
    }

    #[test]
    fn fused_bcrs_powers_agree_with_generic_operator() {
        // BcrsMatrix routes the basis sweep through the SpMPV wavefront;
        // DenseOperator uses the default chained apply_multi. Both must
        // land on the same solution.
        let a = laplacian(15);
        let n = a.n_rows();
        let m = 3;
        let b = pseudo_multivec(n, m, 5);
        let cfg = SolveConfig { tol: 1e-10, max_iter: 600 };
        let dense_op = DenseOperator::new(n, a.to_dense());

        for s in [2, 3] {
            let mut x_fused = MultiVec::zeros(n, m);
            let rf = sstep_cg(&a, &b, &mut x_fused, s, &cfg);
            let mut x_gen = MultiVec::zeros(n, m);
            let rg = sstep_cg(&dense_op, &b, &mut x_gen, s, &cfg);
            assert!(rf.converged && rg.converged, "s={s}: {rf:?} / {rg:?}");
            for (u, v) in x_fused.as_slice().iter().zip(x_gen.as_slice()) {
                assert!((u - v).abs() < 1e-7, "s={s}");
            }
        }
    }

    #[test]
    fn one_powers_sweep_per_cycle() {
        let a = laplacian(20);
        let c = CountingOperator::new(&a);
        let n = a.n_rows();
        let m = 4;
        let s = 3;
        let b = pseudo_multivec(n, m, 3);
        let mut x = MultiVec::zeros(n, m);
        let res = sstep_cg(&c, &b, &mut x, s, &SolveConfig::default());
        assert!(res.converged, "{res:?}");
        // Initial residual + s chained applies per cycle (the counting
        // operator funnels the default apply_powers through apply_multi).
        assert_eq!(c.multi_applies(), res.cycles * s + 1);
        assert_eq!(c.single_applies(), 0);
    }

    #[test]
    fn deeper_s_takes_fewer_cycles() {
        let a = laplacian(40);
        let n = a.n_rows();
        let m = 4;
        let b = pseudo_multivec(n, m, 23);
        let cfg = SolveConfig { tol: 1e-7, max_iter: 800 };

        let mut cycles = Vec::new();
        for s in [1, 2, 4] {
            let mut x = MultiVec::zeros(n, m);
            let res = sstep_cg(&a, &b, &mut x, s, &cfg);
            assert!(res.converged, "s={s}: {res:?}");
            cycles.push(res.cycles);
        }
        // Each doubling of s should at least roughly halve the number of
        // (communication-bearing) cycles.
        assert!(cycles[1] < cycles[0], "{cycles:?}");
        assert!(cycles[2] < cycles[1], "{cycles:?}");
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplacian(5);
        let n = a.n_rows();
        let b = MultiVec::zeros(n, 2);
        let mut x = MultiVec::zeros(n, 2);
        let res = sstep_cg(&a, &b, &mut x, 3, &SolveConfig::default());
        assert!(res.converged);
        assert_eq!(res.cycles, 0);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn unconverged_when_budget_exhausted() {
        let a = laplacian(40);
        let n = a.n_rows();
        let b = pseudo_multivec(n, 2, 29);
        // Budget of 6 applications at s=2 → 3 cycles, unreachable tol.
        let cfg = SolveConfig { tol: 1e-300, max_iter: 6 };
        let mut x = MultiVec::zeros(n, 2);
        let res = sstep_cg(&a, &b, &mut x, 2, &cfg);
        assert!(!res.converged);
        assert_eq!(res.cycles, 3);
        assert!(res.residual_norms.iter().all(|v| v.is_finite()));
    }
}
