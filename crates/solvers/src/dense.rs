//! Small dense linear algebra on row-major buffers.
//!
//! Block CG reduces each iteration to tiny `m×m` systems (`PᵀAP·α = RᵀR`
//! etc., O'Leary 1980); these helpers solve them with partial-pivoted LU
//! and provide the dense products used in tests. Everything is row-major
//! `Vec<f64>` with explicit dimensions — no matrix type ceremony for
//! matrices that are at most a few dozen square.

/// Solves `A·X = B` in place where `A` is `m×m` and `B` is `m×k`, both
/// row-major. `A` is destroyed (replaced by its LU factors); `B` is
/// replaced by `X`. Returns `false` if `A` is numerically singular.
pub fn lu_solve(a: &mut [f64], m: usize, b: &mut [f64], k: usize) -> bool {
    assert_eq!(a.len(), m * m);
    assert_eq!(b.len(), m * k);
    let scale = a.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
    if scale == 0.0 {
        return false;
    }
    let mut piv: Vec<usize> = (0..m).collect();
    for col in 0..m {
        // Partial pivot.
        let mut best = col;
        let mut best_val = a[piv[col] * m + col].abs();
        for row in col + 1..m {
            let v = a[piv[row] * m + col].abs();
            if v > best_val {
                best = row;
                best_val = v;
            }
        }
        if best_val < f64::EPSILON * m as f64 * scale {
            return false;
        }
        piv.swap(col, best);
        let p = piv[col];
        let pivot = a[p * m + col];
        for row in col + 1..m {
            let r = piv[row];
            let factor = a[r * m + col] / pivot;
            a[r * m + col] = factor;
            for j in col + 1..m {
                a[r * m + j] -= factor * a[p * m + j];
            }
            for j in 0..k {
                b[r * k + j] -= factor * b[p * k + j];
            }
        }
    }
    // Back substitution into a temporary, then unpermute.
    let mut x = vec![0.0; m * k];
    for col in (0..m).rev() {
        let p = piv[col];
        for j in 0..k {
            let mut acc = b[p * k + j];
            for jj in col + 1..m {
                acc -= a[p * m + jj] * x[jj * k + j];
            }
            x[col * k + j] = acc / a[p * m + col];
        }
    }
    b.copy_from_slice(&x);
    true
}

/// In-place Cholesky factorization of a row-major SPD `m×m` matrix:
/// on success the lower triangle holds `L` with `A = L·Lᵀ`. Returns
/// `false` if a non-positive pivot is met.
pub fn cholesky_in_place(a: &mut [f64], m: usize) -> bool {
    assert_eq!(a.len(), m * m);
    for i in 0..m {
        for j in 0..=i {
            let mut sum = a[i * m + j];
            for k in 0..j {
                sum -= a[i * m + k] * a[j * m + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return false;
                }
                a[i * m + j] = sum.sqrt();
            } else {
                a[i * m + j] = sum / a[j * m + j];
            }
        }
        for j in i + 1..m {
            a[i * m + j] = 0.0;
        }
    }
    true
}

/// Solves `L·Lᵀ·x = b` for one right-hand side given the factor from
/// [`cholesky_in_place`].
pub fn cholesky_solve(l: &[f64], m: usize, b: &mut [f64]) {
    assert_eq!(l.len(), m * m);
    assert_eq!(b.len(), m);
    // Forward: L y = b
    for i in 0..m {
        let mut acc = b[i];
        for k in 0..i {
            acc -= l[i * m + k] * b[k];
        }
        b[i] = acc / l[i * m + i];
    }
    // Backward: Lᵀ x = y
    for i in (0..m).rev() {
        let mut acc = b[i];
        for k in i + 1..m {
            acc -= l[k * m + i] * b[k];
        }
        b[i] = acc / l[i * m + i];
    }
}

/// Row-major dense product `C = A·B` with `A` `p×q` and `B` `q×r`.
pub fn matmul(a: &[f64], p: usize, q: usize, b: &[f64], r: usize) -> Vec<f64> {
    assert_eq!(a.len(), p * q);
    assert_eq!(b.len(), q * r);
    let mut c = vec![0.0; p * r];
    for i in 0..p {
        for k in 0..q {
            let av = a[i * q + k];
            if av != 0.0 {
                for j in 0..r {
                    c[i * r + j] += av * b[k * r + j];
                }
            }
        }
    }
    c
}

/// Transpose of a row-major `p×q` matrix.
pub fn transpose(a: &[f64], p: usize, q: usize) -> Vec<f64> {
    let mut t = vec![0.0; p * q];
    for i in 0..p {
        for j in 0..q {
            t[j * p + i] = a[i * q + j];
        }
    }
    t
}

/// Symmetrizes a square matrix in place: `A ← (A + Aᵀ)/2`. The small
/// Gram matrices in block CG are symmetric in exact arithmetic; this
/// removes rounding drift before factorization.
pub fn symmetrize(a: &mut [f64], m: usize) {
    for i in 0..m {
        for j in 0..i {
            let v = 0.5 * (a[i * m + j] + a[j * m + i]);
            a[i * m + j] = v;
            a[j * m + i] = v;
        }
    }
}

/// Max-norm of `A − B`.
pub fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).fold(0.0f64, |acc, (x, y)| acc.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_solves_known_system() {
        // A = [[2,1],[1,3]], b = [3,5] -> x = [4/5, 7/5]
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![3.0, 5.0];
        assert!(lu_solve(&mut a, 2, &mut b, 1));
        assert!((b[0] - 0.8).abs() < 1e-14);
        assert!((b[1] - 1.4).abs() < 1e-14);
    }

    #[test]
    fn lu_handles_multiple_rhs() {
        let a0 = vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0];
        let x_true = vec![1.0, -1.0, 0.0, 2.0, 3.0, 0.5];
        let b = matmul(&a0, 3, 3, &x_true, 2);
        let mut a = a0.clone();
        let mut x = b;
        assert!(lu_solve(&mut a, 3, &mut x, 2));
        assert!(max_diff(&x, &x_true) < 1e-12);
    }

    #[test]
    fn lu_needs_pivoting() {
        // Zero in the (0,0) position requires a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 3.0];
        assert!(lu_solve(&mut a, 2, &mut b, 1));
        assert_eq!(b, vec![3.0, 2.0]);
    }

    #[test]
    fn lu_detects_singular() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(!lu_solve(&mut a, 2, &mut b, 1));
    }

    #[test]
    fn cholesky_factorizes_spd() {
        let a0 = vec![4.0, 2.0, 2.0, 3.0];
        let mut l = a0.clone();
        assert!(cholesky_in_place(&mut l, 2));
        // L = [[2,0],[1,sqrt(2)]]
        assert!((l[0] - 2.0).abs() < 1e-14);
        assert!((l[2] - 1.0).abs() < 1e-14);
        assert!((l[3] - 2f64.sqrt()).abs() < 1e-14);
        let mut b = vec![6.0, 5.0];
        cholesky_solve(&l, 2, &mut b);
        // check A x = b
        let ax = matmul(&a0, 2, 2, &b, 1);
        assert!(max_diff(&ax, &[6.0, 5.0]) < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0];
        assert!(!cholesky_in_place(&mut a, 2));
    }

    #[test]
    fn transpose_and_matmul_agree() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let at = transpose(&a, 2, 3);
        let g = matmul(&at, 3, 2, &a, 3); // AᵀA, 3x3 symmetric
        let mut gs = g.clone();
        symmetrize(&mut gs, 3);
        assert!(max_diff(&g, &gs) < 1e-15);
        assert!((g[0] - 17.0).abs() < 1e-14); // 1+16
    }

    #[test]
    fn symmetrize_averages_off_diagonal() {
        let mut a = vec![1.0, 2.0, 4.0, 1.0];
        symmetrize(&mut a, 2);
        assert_eq!(a, vec![1.0, 3.0, 3.0, 1.0]);
    }
}
