#![allow(clippy::needless_range_loop)] // index loops mirror the paper: i/j/k are matrix and coordinate indices

//! Iterative and direct solvers for the MRHS reproduction.
//!
//! The Stokesian dynamics method needs, per time step (paper §II-C):
//!
//! * solves `R·u = −f_B` with the SPD resistance matrix — conjugate
//!   gradients ([`cg()`](cg::cg)) here, and the **block** conjugate gradient of
//!   O'Leary ([`block_cg()`](block_cg::block_cg)) for the MRHS auxiliary system with `m`
//!   right-hand sides, whose iteration cost is dominated by GSPMV;
//! * Brownian forces `f_B = S(R)·z` where `S` is a shifted Chebyshev
//!   polynomial approximation of the matrix square root (Fixman) —
//!   [`chebyshev::ChebyshevSqrt`];
//! * spectral bounds feeding the Chebyshev interval — [`eigbounds`]
//!   (Gershgorin, power iteration, and a small Lanczos);
//! * a dense Cholesky reference path for small systems ([`cholesky`]),
//!   combined with iterative refinement ([`refinement`]) as in §II-C.
//!
//! For the **nonsymmetric** (CFD-class) systems of Krasnopolsky
//! arXiv:1907.12874 the SPD assumption fails and the stack switches to
//! BiCGStab: [`bicgstab::bicgstab`] for single right-hand sides and
//! [`block_bicgstab::block_bicgstab`] for the MRHS-amortized block
//! variant (two GSPMVs per iteration, classic and reordered reduction
//! schedules).

pub mod bicgstab;
pub mod block_bicgstab;
pub mod block_cg;
pub mod cg;
pub mod chebyshev;
pub mod cholesky;
pub mod dense;
pub mod eigbounds;
pub mod operator;
pub mod precond;
pub mod recycling;
pub mod refinement;
pub mod sstep_cg;

pub use bicgstab::{bicgstab, BicgstabResult, Breakdown, BreakdownKind};
pub use block_bicgstab::{
    block_bicgstab, block_bicgstab_observed, block_bicgstab_with_options,
    BicgstabVariant, BlockBicgstabOptions, BlockBicgstabResult,
};
pub use block_cg::{
    block_cg, block_cg_observed, block_cg_with_options, BlockCgOptions,
    BlockCgResult,
};
pub use cg::{cg, CgResult, SolveConfig};
pub use chebyshev::ChebyshevSqrt;
pub use cholesky::DenseCholesky;
pub use eigbounds::{
    power_upper_bound, spectral_bounds, SpectralBounds, POWER_GUARD_ITERS,
    POWER_UPPER_SAFETY,
};
pub use operator::{CountingOperator, DenseOperator, LinearOperator};
pub use precond::{pcg, BlockJacobi, IdentityPreconditioner, Preconditioner};
pub use recycling::{recycled_cg, RecycleSpace, RecycledSolve};
pub use sstep_cg::{
    sstep_cg, sstep_cg_with_options, SStepCgOptions, SStepCgResult,
};
