//! Krylov subspace recycling — the paper's §III technique #2: "'recycle'
//! components of the Krylov subspace from one solve to the next (Parks
//! et al.) to reduce the number of iterations required for convergence."
//!
//! This is deflated CG in the Frank & Vuik form: a recycle space `W`
//! of approximate eigenvectors — Ritz vectors harvested from a previous
//! solve's implicit Lanczos decomposition — is projected out of the
//! iteration (`P = I − AW·(WᵀAW)⁻¹·Wᵀ`; CG runs on `P·A`, and the
//! components in `span(W)` are recovered exactly afterwards). With `W`
//! spanning the slowly-converging eigendirections of `A`, the deflated
//! operator has a smaller effective condition number, and — because the
//! SD matrices drift slowly — a space harvested at step `k` keeps
//! working for steps `k+1, k+2, …`.

use crate::cg::{CgResult, SolveConfig};
use crate::dense;
use crate::operator::LinearOperator;

/// A recycle space: `k` column vectors `W`, their images `AW`, and the
/// factorized small matrix `WᵀAW`.
pub struct RecycleSpace {
    n: usize,
    k: usize,
    /// Column-major `k` columns of length `n`.
    w: Vec<f64>,
    /// `A·W`, same layout.
    aw: Vec<f64>,
    /// Row-major `k×k` `WᵀAW` (kept for refresh diagnostics).
    wtaw: Vec<f64>,
}

impl RecycleSpace {
    /// Builds a recycle space from candidate vectors (e.g. search
    /// directions of a previous solve), dropping near-dependent ones by
    /// Gram–Schmidt with re-orthogonalization. Returns `None` when no
    /// candidate survives.
    pub fn from_vectors<A: LinearOperator + ?Sized>(
        a: &A,
        candidates: &[Vec<f64>],
    ) -> Option<Self> {
        let n = a.dim();
        let mut w: Vec<f64> = Vec::new();
        let mut kept = 0usize;
        for cand in candidates {
            assert_eq!(cand.len(), n);
            let mut v = cand.clone();
            // two-pass Gram–Schmidt against the kept columns
            for _ in 0..2 {
                for c in 0..kept {
                    let col = &w[c * n..(c + 1) * n];
                    let dot: f64 = col.iter().zip(&v).map(|(a, b)| a * b).sum();
                    for (vi, ci) in v.iter_mut().zip(col) {
                        *vi -= dot * ci;
                    }
                }
            }
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            let orig = cand.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-8 * orig.max(1e-300) {
                for vi in v.iter_mut() {
                    *vi /= norm;
                }
                w.extend_from_slice(&v);
                kept += 1;
            }
        }
        if kept == 0 {
            return None;
        }
        // AW and WᵀAW
        let mut aw = vec![0.0; kept * n];
        for c in 0..kept {
            let (src, dst) = (c * n, c * n);
            let mut out = vec![0.0; n];
            a.apply(&w[src..src + n], &mut out);
            aw[dst..dst + n].copy_from_slice(&out);
        }
        let mut wtaw = vec![0.0; kept * kept];
        for i in 0..kept {
            for j in 0..kept {
                wtaw[i * kept + j] = w[i * n..(i + 1) * n]
                    .iter()
                    .zip(&aw[j * n..(j + 1) * n])
                    .map(|(u, v)| u * v)
                    .sum();
            }
        }
        Some(RecycleSpace { n, k: kept, w, aw, wtaw })
    }

    /// Number of recycled directions.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// Solves `(WᵀAW)·y = Wᵀ·v` and returns `y` (length `k`).
    fn project(&self, v: &[f64]) -> Option<Vec<f64>> {
        let mut rhs: Vec<f64> = (0..self.k)
            .map(|c| {
                self.w[c * self.n..(c + 1) * self.n]
                    .iter()
                    .zip(v)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect();
        let mut lhs = self.wtaw.clone();
        dense::lu_solve(&mut lhs, self.k, &mut rhs, 1).then_some(rhs)
    }

    /// `out −= W·y`.
    fn subtract_w(&self, y: &[f64], out: &mut [f64]) {
        for (c, yc) in y.iter().enumerate() {
            for (o, wv) in out.iter_mut().zip(&self.w[c * self.n..(c + 1) * self.n])
            {
                *o -= yc * wv;
            }
        }
    }

    /// `out += W·y`.
    fn add_w(&self, y: &[f64], out: &mut [f64]) {
        for (c, yc) in y.iter().enumerate() {
            for (o, wv) in out.iter_mut().zip(&self.w[c * self.n..(c + 1) * self.n])
            {
                *o += yc * wv;
            }
        }
    }

    /// Applies the deflation projector `P = I − AW·(WᵀAW)⁻¹·Wᵀ`:
    /// `v ← v − AW·(WᵀAW)⁻¹·Wᵀ·v` (Frank & Vuik's DCG projector; `P·A`
    /// is symmetric positive semidefinite with `W`'s slow directions
    /// removed from its spectrum).
    fn project_out(&self, v: &mut [f64]) {
        if let Some(y) = self.project(v) {
            for (c, yc) in y.iter().enumerate() {
                for (vi, av) in
                    v.iter_mut().zip(&self.aw[c * self.n..(c + 1) * self.n])
                {
                    *vi -= yc * av;
                }
            }
        }
    }

    /// `out −= W·(WᵀAW)⁻¹·(AW)ᵀ·out` — the transpose projector used in
    /// the final solution correction.
    fn project_out_transpose(&self, v: &mut [f64]) {
        let mut rhs: Vec<f64> = (0..self.k)
            .map(|c| {
                self.aw[c * self.n..(c + 1) * self.n]
                    .iter()
                    .zip(v.iter())
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect();
        let mut lhs = self.wtaw.clone();
        if dense::lu_solve(&mut lhs, self.k, &mut rhs, 1) {
            self.subtract_w(&rhs, v);
        }
    }
}

/// Outcome of a recycled solve: the CG result plus harvested Ritz
/// vectors for the *next* solve's recycle space.
pub struct RecycledSolve {
    /// Convergence data.
    pub result: CgResult,
    /// Approximate eigenvectors of the smallest Ritz values (at most
    /// `harvest` of them), ready for [`RecycleSpace::from_vectors`].
    pub harvested: Vec<Vec<f64>>,
}

/// Deflated CG: solves `A·x = b` starting from the guess in `x`,
/// projecting the iteration against `space` (if any), and harvesting up
/// to `harvest` search directions for recycling into the next solve.
pub fn recycled_cg<A: LinearOperator + ?Sized>(
    a: &A,
    space: Option<&RecycleSpace>,
    b: &[f64],
    x: &mut [f64],
    cfg: &SolveConfig,
    harvest: usize,
) -> RecycledSolve {
    let n = a.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);

    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if b_norm == 0.0 {
        x.fill(0.0);
        return RecycledSolve {
            result: CgResult {
                iterations: 0,
                converged: true,
                residual_norm: 0.0,
                history: vec![0.0],
            },
            harvested: Vec::new(),
        };
    }
    let threshold = cfg.tol * b_norm;

    // Frank & Vuik deflated CG: run plain CG on the projected system
    // `P·A·x̂ = P·b` with `P = I − AW·E⁻¹·Wᵀ`, then recover
    // `x = W·E⁻¹·Wᵀ·b + Pᵀ·x̂`. With no recycle space this reduces to
    // plain CG.
    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    if let Some(space) = space {
        space.project_out(&mut r); // r = P(b − A·x̂₀)
    }

    let mut rho: f64 = r.iter().map(|v| v * v).sum();
    let mut history = vec![rho.sqrt()];
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut converged = rho.sqrt() <= threshold;
    let mut iterations = 0;
    // CG-as-Lanczos bookkeeping for Ritz harvesting: the normalized
    // residuals are the Lanczos basis and (α_j, β_j) define the
    // tridiagonal.
    const MAX_BASIS: usize = 48;
    let mut basis: Vec<Vec<f64>> = Vec::new();
    let mut cg_alphas: Vec<f64> = Vec::new();
    let mut cg_betas: Vec<f64> = Vec::new();
    if harvest > 0 && rho > 0.0 {
        basis.push(r.iter().map(|v| v / rho.sqrt()).collect());
    }

    while !converged && iterations < cfg.max_iter {
        // q = P·A·p
        a.apply(&p, &mut q);
        if let Some(space) = space {
            space.project_out(&mut q);
        }
        let pq: f64 = p.iter().zip(&q).map(|(u, v)| u * v).sum();
        if pq <= 0.0 {
            break;
        }
        let alpha = rho / pq;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        iterations += 1;
        let rho_new: f64 = r.iter().map(|v| v * v).sum();
        history.push(rho_new.sqrt());
        let beta = rho_new / rho;
        if harvest > 0 && cg_alphas.len() < MAX_BASIS {
            cg_alphas.push(alpha);
            cg_betas.push(beta);
            if rho_new > 0.0 && basis.len() < MAX_BASIS {
                basis.push(r.iter().map(|v| v / rho_new.sqrt()).collect());
            }
        }
        if rho_new.sqrt() <= threshold {
            converged = true;
            rho = rho_new;
            break;
        }
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }

    // Recover the true solution: x = Q·b + Pᵀ·x̂ with Q = W·E⁻¹·Wᵀ.
    if let Some(space) = space {
        space.project_out_transpose(x);
        if let Some(y) = space.project(b) {
            space.add_w(&y, x);
        }
    }

    let harvested = if harvest == 0 {
        Vec::new()
    } else {
        ritz_vectors(&basis, &cg_alphas, &cg_betas, harvest)
    };

    RecycledSolve {
        result: CgResult {
            iterations,
            converged,
            residual_norm: rho.sqrt(),
            history,
        },
        harvested,
    }
}

/// Builds the `harvest` smallest Ritz vectors from CG's implicit
/// Lanczos decomposition: the tridiagonal has
/// `T_jj = 1/α_j + β_{j−1}/α_{j−1}` and `T_{j,j+1} = √β_j / α_j`;
/// eigenvalues come from Sturm bisection and eigenvectors from inverse
/// iteration on the small tridiagonal; the full-space Ritz vector is
/// the basis combination.
fn ritz_vectors(
    basis: &[Vec<f64>],
    cg_alphas: &[f64],
    cg_betas: &[f64],
    harvest: usize,
) -> Vec<Vec<f64>> {
    let j = basis.len().min(cg_alphas.len());
    if j < 2 {
        return Vec::new();
    }
    let mut diag = vec![0.0f64; j];
    let mut off = vec![0.0f64; j - 1];
    for i in 0..j {
        diag[i] = 1.0 / cg_alphas[i]
            + if i > 0 { cg_betas[i - 1] / cg_alphas[i - 1] } else { 0.0 };
        if i + 1 < j {
            off[i] = cg_betas[i].sqrt() / cg_alphas[i];
        }
    }
    let want = harvest.min(j);
    let mut out = Vec::with_capacity(want);
    for k in 1..=want {
        let theta = crate::eigbounds::tridiag_kth_eigenvalue(&diag, &off, k);
        if let Some(y) = tridiag_inverse_iteration(&diag, &off, theta) {
            // Ritz vector = Σ (−1)^i·y_i · basis_i: CG's Lanczos
            // vectors are the normalized residuals with alternating
            // sign, v_i = (−1)^i·r_i/‖r_i‖, and the stored basis omits
            // the sign, so it is restored here.
            let n = basis[0].len();
            let mut v = vec![0.0; n];
            for (i, (yi, b)) in y.iter().zip(basis).enumerate() {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                for (vv, bv) in v.iter_mut().zip(b) {
                    *vv += sign * yi * bv;
                }
            }
            out.push(v);
        }
    }
    out
}

/// One small-space inverse-iteration sweep: solves `(T − θI)·y = e` for
/// a random-ish `e`, twice, normalizing in between.
fn tridiag_inverse_iteration(
    diag: &[f64],
    off: &[f64],
    theta: f64,
) -> Option<Vec<f64>> {
    let j = diag.len();
    let scale = diag.iter().fold(0.0f64, |a, v| a.max(v.abs())).max(1.0);
    let shift = theta - 1e-10 * scale; // avoid exact singularity
    let mut y: Vec<f64> = (0..j).map(|i| 1.0 + (i as f64) * 0.01).collect();
    for _ in 0..2 {
        // dense solve of the small shifted tridiagonal
        let mut t = vec![0.0; j * j];
        for i in 0..j {
            t[i * j + i] = diag[i] - shift;
            if i + 1 < j {
                t[i * j + i + 1] = off[i];
                t[(i + 1) * j + i] = off[i];
            }
        }
        let mut rhs = y.clone();
        if !dense::lu_solve(&mut t, j, &mut rhs, 1) {
            return None;
        }
        let norm = rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 || !norm.is_finite() {
            return None;
        }
        y = rhs.into_iter().map(|v| v / norm).collect();
    }
    Some(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    /// A weighted graph Laplacian plus a small shift, mimicking the
    /// slowly drifting SD matrices: strong chains joined by a few weak
    /// links give a handful of isolated small eigenvalues — exactly the
    /// slow directions recycling is meant to deflate.
    fn drifting_matrix(nb: usize, drift: f64) -> BcrsMatrix {
        // Anisotropic per-component weights break the xyz degeneracy
        // (a single Krylov sequence cannot split degenerate triples).
        let aniso = |w: f64| {
            Block3::from_rows([
                [w, 0.0, 0.0],
                [0.0, 1.31 * w, 0.0],
                [0.0, 0.0, 1.77 * w],
            ])
        };
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, aniso(0.1 + drift));
        }
        for i in 0..nb - 1 {
            // weak link every 10th edge splits the chain into segments
            let w = if i % 10 == 9 { 0.02 } else { 30.0 };
            t.add(i, i, aniso(w));
            t.add(i + 1, i + 1, aniso(w));
            t.add_symmetric_pair(i, i + 1, -aniso(w));
        }
        t.build()
    }

    #[test]
    fn no_space_matches_plain_cg() {
        let a = drifting_matrix(30, 0.0);
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let cfg = SolveConfig::default();
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        let r1 = cg(&a, &b, &mut x1, &cfg);
        let r2 = recycled_cg(&a, None, &b, &mut x2, &cfg, 0);
        assert!(r1.converged && r2.result.converged);
        assert!(r1.iterations.abs_diff(r2.result.iterations) <= 1);
    }

    #[test]
    fn recycling_cuts_iterations_on_next_solve() {
        let a0 = drifting_matrix(40, 0.0);
        let a1 = drifting_matrix(40, 0.02); // slightly drifted matrix
        let n = a0.n_rows();
        let cfg = SolveConfig { tol: 1e-8, max_iter: 5000 };

        let b0: Vec<f64> = (0..n).map(|i| ((i * 3 % 11) as f64) - 5.0).collect();
        let mut x0 = vec![0.0; n];
        let first = recycled_cg(&a0, None, &b0, &mut x0, &cfg, 12);
        assert!(first.result.converged);
        assert!(!first.harvested.is_empty());

        let space = RecycleSpace::from_vectors(&a1, &first.harvested).unwrap();
        let b1: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();

        let mut x_plain = vec![0.0; n];
        let plain = recycled_cg(&a1, None, &b1, &mut x_plain, &cfg, 0);
        let mut x_rec = vec![0.0; n];
        let rec = recycled_cg(&a1, Some(&space), &b1, &mut x_rec, &cfg, 0);
        assert!(plain.result.converged && rec.result.converged);
        assert!(
            rec.result.iterations < plain.result.iterations,
            "recycled {} vs plain {}",
            rec.result.iterations,
            plain.result.iterations
        );
        // identical solutions
        for (u, v) in x_rec.iter().zip(&x_plain) {
            assert!((u - v).abs() <= 1e-5 * u.abs().max(1.0));
        }
    }

    #[test]
    fn recycled_solution_satisfies_system() {
        let a = drifting_matrix(25, 0.0);
        let n = a.n_rows();
        let cfg = SolveConfig { tol: 1e-9, max_iter: 5000 };
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
        let mut x0 = vec![0.0; n];
        let first = recycled_cg(&a, None, &b, &mut x0, &cfg, 8);
        let space = RecycleSpace::from_vectors(&a, &first.harvested).unwrap();

        let b2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut x = vec![0.0; n];
        let res = recycled_cg(&a, Some(&space), &b2, &mut x, &cfg, 0);
        assert!(res.result.converged);
        let mut ax = vec![0.0; n];
        a.apply(&x, &mut ax);
        let rn: f64 =
            b2.iter().zip(&ax).map(|(u, v)| (u - v) * (u - v)).sum::<f64>().sqrt();
        let bn: f64 = b2.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rn <= 2e-9 * bn, "{rn} vs {bn}");
    }

    #[test]
    fn dependent_candidates_are_dropped() {
        let a = drifting_matrix(10, 0.0);
        let n = a.n_rows();
        let v: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let scaled: Vec<f64> = v.iter().map(|x| 2.0 * x).collect();
        let space =
            RecycleSpace::from_vectors(&a, &[v, scaled]).expect("one survives");
        assert_eq!(space.len(), 1);
    }

    #[test]
    fn empty_candidates_yield_no_space() {
        let a = drifting_matrix(5, 0.0);
        assert!(RecycleSpace::from_vectors(&a, &[]).is_none());
        let zero = vec![0.0; a.n_rows()];
        assert!(RecycleSpace::from_vectors(&a, &[zero]).is_none());
    }

    #[test]
    fn harvest_thins_to_requested_count() {
        let a = drifting_matrix(30, 0.0);
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 5 % 9) as f64) - 4.0).collect();
        let mut x = vec![0.0; n];
        let res = recycled_cg(&a, None, &b, &mut x, &SolveConfig::default(), 5);
        assert!(res.harvested.len() <= 5);
        assert!(!res.harvested.is_empty());
    }
}
