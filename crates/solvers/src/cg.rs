//! Conjugate gradients with initial guess.
//!
//! The stopping rule matches the paper (§V-B1): iterate until the
//! residual norm drops below `tol` times the norm of the right-hand side
//! (they use `tol = 1e-6`). The initial guess is passed in `x` — this is
//! exactly where the MRHS algorithm's auxiliary solutions enter.

use crate::operator::LinearOperator;

/// Convergence controls shared by the CG variants.
#[derive(Clone, Copy, Debug)]
pub struct SolveConfig {
    /// Relative residual tolerance `‖r‖ ≤ tol·‖b‖`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for SolveConfig {
    fn default() -> Self {
        // The paper's tolerance (residual < 1e-6·‖b‖).
        SolveConfig { tol: 1e-6, max_iter: 1000 }
    }
}

/// Outcome of a CG solve.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Final residual norm.
    pub residual_norm: f64,
    /// `‖r‖` after each iteration (index 0 = initial residual).
    pub history: Vec<f64>,
}

/// Solves `A·x = b` for SPD `A` by conjugate gradients, starting from
/// the initial guess already stored in `x`.
pub fn cg<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    cfg: &SolveConfig,
) -> CgResult {
    let n = a.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let _span = mrhs_telemetry::span("solver/cg");
    mrhs_telemetry::counter_add("solver/cg/solves", 1);

    let b_norm = norm(b);
    if b_norm == 0.0 {
        x.fill(0.0);
        return CgResult {
            iterations: 0,
            converged: true,
            residual_norm: 0.0,
            history: vec![0.0],
        };
    }
    let threshold = cfg.tol * b_norm;

    // r = b − A·x
    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for (ri, (bi, _)) in r.iter_mut().zip(b.iter().zip(x.iter())) {
        *ri = bi - *ri;
    }
    let mut rho = dot(&r, &r);
    let mut history = vec![rho.sqrt()];
    if rho.sqrt() <= threshold {
        return CgResult {
            iterations: 0,
            converged: true,
            residual_norm: rho.sqrt(),
            history,
        };
    }

    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..cfg.max_iter {
        a.apply(&p, &mut q);
        let pq = dot(&p, &q);
        if pq <= 0.0 {
            // Operator not positive definite along p: stop.
            break;
        }
        let alpha = rho / pq;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_new = dot(&r, &r);
        iterations += 1;
        mrhs_telemetry::counter_add("solver/cg/iterations", 1);
        history.push(rho_new.sqrt());
        if rho_new.sqrt() <= threshold {
            converged = true;
            rho = rho_new;
            break;
        }
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }

    CgResult { iterations, converged, residual_norm: rho.sqrt(), history }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{CountingOperator, DenseOperator};
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    /// SPD block tridiagonal test matrix (discrete Laplacian-like).
    fn laplacian(nb: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            t.add(bi, bi, Block3::scaled_identity(4.0));
            if bi + 1 < nb {
                t.add_symmetric_pair(bi, bi + 1, Block3::scaled_identity(-1.0));
            }
        }
        t.build()
    }

    #[test]
    fn solves_identity_in_one_iteration() {
        let a = BcrsMatrix::scaled_identity(5, 2.0);
        let b: Vec<f64> = (0..15).map(|v| v as f64).collect();
        let mut x = vec![0.0; 15];
        let res = cg(&a, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
        assert!(res.iterations <= 1);
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi / 2.0).abs() < 1e-10);
        }
    }

    #[test]
    fn residual_meets_tolerance() {
        let a = laplacian(30);
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|v| ((v * 7919) % 13) as f64 - 6.0).collect();
        let mut x = vec![0.0; n];
        let cfg = SolveConfig { tol: 1e-8, max_iter: 500 };
        let res = cg(&a, &b, &mut x, &cfg);
        assert!(res.converged, "{res:?}");
        // verify actual residual
        let mut ax = vec![0.0; n];
        use crate::operator::LinearOperator;
        a.apply(&x, &mut ax);
        let rnorm =
            (b.iter().zip(&ax).map(|(u, v)| (u - v) * (u - v)).sum::<f64>()).sqrt();
        let bnorm = (b.iter().map(|v| v * v).sum::<f64>()).sqrt();
        assert!(rnorm <= 1.1e-8 * bnorm);
    }

    #[test]
    fn good_initial_guess_reduces_iterations() {
        let a = laplacian(40);
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|v| (v as f64 * 0.7).cos()).collect();
        let cfg = SolveConfig::default();

        let mut x_cold = vec![0.0; n];
        let cold = cg(&a, &b, &mut x_cold, &cfg);
        assert!(cold.converged);

        // Warm start near the solution.
        let mut x_warm: Vec<f64> =
            x_cold.iter().map(|v| v * (1.0 + 1e-4)).collect();
        let warm = cg(&a, &b, &mut x_warm, &cfg);
        assert!(warm.converged);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = laplacian(5);
        let n = a.n_rows();
        let mut x = vec![1.0; n];
        let res = cg(&a, &vec![0.0; n], &mut x, &SolveConfig::default());
        assert!(res.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn history_is_monotone_enough_and_counts_applies() {
        let a = laplacian(20);
        let n = a.n_rows();
        let c = CountingOperator::new(&a);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = cg(&c, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
        // one apply for the initial residual plus one per iteration
        assert_eq!(c.single_applies(), res.iterations + 1);
        assert_eq!(res.history.len(), res.iterations + 1);
        assert!(res.history.last().unwrap() < &res.history[0]);
    }

    #[test]
    fn exact_convergence_in_at_most_n_iterations() {
        // CG is exact after n steps in exact arithmetic; use a tiny dense SPD.
        let a = DenseOperator::new(
            3,
            vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0],
        );
        let b = vec![1.0, 2.0, 3.0];
        let mut x = vec![0.0; 3];
        let res = cg(&a, &b, &mut x, &SolveConfig { tol: 1e-12, max_iter: 10 });
        assert!(res.converged);
        assert!(res.iterations <= 3 + 1);
    }
}
