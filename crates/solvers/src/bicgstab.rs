//! BiCGStab (van der Vorst 1992) for nonsymmetric systems.
//!
//! The SPD solvers in this crate cover the Stokesian-dynamics
//! resistance matrices; the CFD-class systems of Krasnopolsky
//! (arXiv:1907.12874) are convection-dominated and nonsymmetric, where
//! CG's three-term recurrence is invalid. BiCGStab is the standard
//! transpose-free Krylov method for that class and the scalar
//! counterpart of [`crate::block_bicgstab`]: the solve service retries
//! a failed batch column through this solver exactly as the SPD path
//! retries through [`crate::cg::cg`].
//!
//! Unlike CG, BiCGStab has two *structural* failure modes that are not
//! mere stagnation, and callers need to tell them apart:
//!
//! * **ρ collapse** — the shadow inner product `r̃ᵀr` (or the `r̃ᵀv`
//!   denominator of α) vanishes while the residual does not; the
//!   bi-Lanczos recursion has broken down and no further progress is
//!   possible from this shadow vector.
//! * **ω collapse** — the stabilizer step `ω = ⟨t,s⟩/⟨t,t⟩` is
//!   undefined (`t = 0`) or zero, so the half-iterate cannot be
//!   stabilized.
//!
//! Both are reported through [`Breakdown`] with the iteration they
//! occurred in, mirroring the `breakdown: Option<usize>` bookkeeping
//! contract of [`crate::block_cg`]: the reported residual norm always
//! describes the returned `x` exactly.

use crate::cg::SolveConfig;
use crate::operator::LinearOperator;

/// Which structural recursion of BiCGStab collapsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakdownKind {
    /// The shadow-residual inner product (`r̃ᵀr` or the `r̃ᵀv` α
    /// denominator; the `R̃ᵀV` coefficient solve in the block variant)
    /// vanished or lost rank.
    Rho,
    /// The stabilizer `ω = ⟨t,s⟩/⟨t,t⟩` was zero or undefined.
    Omega,
}

/// A structural breakdown: which recursion collapsed and in which
/// iteration. The solver stops there with internally consistent
/// bookkeeping (the reported residual describes the returned iterate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Breakdown {
    /// Iteration in which the collapse was detected (1-based, like the
    /// iteration counter in the result).
    pub iteration: usize,
    /// Which recursion collapsed.
    pub kind: BreakdownKind,
}

/// Outcome of a BiCGStab solve.
#[derive(Clone, Debug)]
pub struct BicgstabResult {
    /// Iterations completed. An ω collapse counts its iteration as
    /// completed-at-the-half-step: the `x += α·p` update was applied
    /// and `residual_norm` describes `s = b − A·x` exactly.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Residual norm of the returned `x`.
    pub residual_norm: f64,
    /// `‖r‖` after each iteration (index 0 = initial residual).
    pub history: Vec<f64>,
    /// `Some` if a structural collapse stopped the solve.
    pub breakdown: Option<Breakdown>,
}

/// Solves `A·x = b` for nonsymmetric `A` by BiCGStab, starting from
/// the guess already in `x`. Stops when `‖r‖ ≤ tol·‖b‖`, at the
/// iteration cap, or on a structural breakdown (reported, not
/// panicked). The shadow vector is the initial residual.
pub fn bicgstab<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    cfg: &SolveConfig,
) -> BicgstabResult {
    let n = a.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let _span = mrhs_telemetry::span("solver/bicgstab");
    mrhs_telemetry::counter_add("solver/bicgstab/solves", 1);

    let b_norm = norm(b);
    if b_norm == 0.0 {
        x.fill(0.0);
        return BicgstabResult {
            iterations: 0,
            converged: true,
            residual_norm: 0.0,
            history: vec![0.0],
            breakdown: None,
        };
    }
    let threshold = cfg.tol * b_norm;

    // r = b − A·x; the shadow residual r̃ is frozen at r₀.
    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let r_tilde = r.clone();
    let mut rho = dot(&r_tilde, &r);
    let mut history = vec![norm(&r)];
    if history[0] <= threshold {
        return BicgstabResult {
            iterations: 0,
            converged: true,
            residual_norm: history[0],
            history,
            breakdown: None,
        };
    }

    let mut p = r.clone();
    let mut v = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut breakdown = None;
    let mut residual_norm = history[0];

    for it in 1..=cfg.max_iter {
        a.apply(&p, &mut v);
        let rv = dot(&r_tilde, &v);
        if rv == 0.0 || !rv.is_finite() {
            // α is undefined: the bi-orthogonality recursion collapsed
            // before this iteration touched x.
            breakdown = Some(Breakdown { iteration: it, kind: BreakdownKind::Rho });
            break;
        }
        let alpha = rho / rv;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        let s_norm = norm(&s);
        if !s_norm.is_finite() {
            // α blew up (near-singular r̃ᵀv); x is untouched.
            breakdown = Some(Breakdown { iteration: it, kind: BreakdownKind::Rho });
            break;
        }
        if s_norm <= threshold {
            // Converged at the half step; ω is not needed.
            for i in 0..n {
                x[i] += alpha * p[i];
            }
            iterations = it;
            mrhs_telemetry::counter_add("solver/bicgstab/iterations", 1);
            history.push(s_norm);
            residual_norm = s_norm;
            converged = true;
            break;
        }
        a.apply(&s, &mut t);
        let tt = dot(&t, &t);
        let omega = dot(&t, &s) / tt;
        if tt == 0.0 || omega == 0.0 || !omega.is_finite() {
            // The stabilizer is undefined; accept the half step so the
            // reported norm describes the returned x (= s exactly).
            for i in 0..n {
                x[i] += alpha * p[i];
            }
            iterations = it;
            mrhs_telemetry::counter_add("solver/bicgstab/iterations", 1);
            history.push(s_norm);
            residual_norm = s_norm;
            breakdown =
                Some(Breakdown { iteration: it, kind: BreakdownKind::Omega });
            break;
        }
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
            r[i] = s[i] - omega * t[i];
        }
        iterations = it;
        mrhs_telemetry::counter_add("solver/bicgstab/iterations", 1);
        residual_norm = norm(&r);
        history.push(residual_norm);
        if residual_norm <= threshold {
            converged = true;
            break;
        }
        let rho_new = dot(&r_tilde, &r);
        if rho_new == 0.0 || !rho_new.is_finite() {
            // r̃ has become orthogonal to the residual while ‖r‖ > tol:
            // the Lanczos recursion is exhausted for this shadow vector.
            breakdown = Some(Breakdown { iteration: it, kind: BreakdownKind::Rho });
            break;
        }
        let beta = (rho_new / rho) * (alpha / omega);
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        rho = rho_new;
    }

    BicgstabResult { iterations, converged, residual_norm, history, breakdown }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use crate::operator::{CountingOperator, DenseOperator, LinearOperator};
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    /// Nonsymmetric convection–diffusion block tridiagonal: the upwind
    /// coupling is stronger than the downwind one.
    fn convection(nb: usize, peclet: f64) -> BcrsMatrix {
        let mut tb = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            tb.add(bi, bi, Block3::scaled_identity(4.0));
            if bi + 1 < nb {
                tb.add(bi, bi + 1, Block3::scaled_identity(-1.0 + peclet));
                tb.add(bi + 1, bi, Block3::scaled_identity(-1.0 - peclet));
            }
        }
        tb.build()
    }

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 7919) % 23) as f64 / 11.0 - 1.0).collect()
    }

    #[test]
    fn solves_nonsymmetric_system_to_tolerance() {
        let a = convection(40, 0.4);
        let n = a.n_rows();
        let b = rhs(n);
        let mut x = vec![0.0; n];
        let cfg = SolveConfig { tol: 1e-10, max_iter: 600 };
        let res = bicgstab(&a, &b, &mut x, &cfg);
        assert!(res.converged, "{res:?}");
        assert!(res.breakdown.is_none());

        let mut ax = vec![0.0; n];
        a.apply(&x, &mut ax);
        let rn =
            b.iter().zip(&ax).map(|(u, v)| (u - v) * (u - v)).sum::<f64>().sqrt();
        let bn = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rn <= 2e-10 * bn, "{rn} vs {bn}");
    }

    #[test]
    fn matches_cg_on_spd_systems() {
        // On an SPD matrix both methods must find the same solution.
        let mut tb = BlockTripletBuilder::square(20);
        for bi in 0..20 {
            tb.add(bi, bi, Block3::scaled_identity(4.0));
            if bi + 1 < 20 {
                tb.add_symmetric_pair(bi, bi + 1, Block3::scaled_identity(-1.0));
            }
        }
        let a = tb.build();
        let n = a.n_rows();
        let b = rhs(n);
        let cfg = SolveConfig { tol: 1e-11, max_iter: 500 };
        let mut x_bi = vec![0.0; n];
        let mut x_cg = vec![0.0; n];
        assert!(bicgstab(&a, &b, &mut x_bi, &cfg).converged);
        assert!(cg(&a, &b, &mut x_cg, &cfg).converged);
        for (u, v) in x_bi.iter().zip(&x_cg) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn two_applies_per_iteration() {
        let a = convection(25, 0.3);
        let c = CountingOperator::new(&a);
        let n = a.n_rows();
        let b = rhs(n);
        let mut x = vec![0.0; n];
        let res = bicgstab(&c, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
        // Initial residual plus two per full iteration; a half-step
        // convergence exit saves the second apply of its iteration.
        let applies = c.single_applies();
        assert!(
            applies == 2 * res.iterations + 1 || applies == 2 * res.iterations,
            "{applies} applies over {} iterations",
            res.iterations
        );
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = convection(5, 0.2);
        let n = a.n_rows();
        let mut x = vec![1.0; n];
        let res = bicgstab(&a, &vec![0.0; n], &mut x, &SolveConfig::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rho_breakdown_on_skew_operator_is_reported_with_x_untouched() {
        // For skew-symmetric A, r̃ᵀ·A·r̃ = 0 exactly, so the very first
        // α denominator vanishes: the canonical ρ collapse.
        struct Skew;
        impl LinearOperator for Skew {
            fn dim(&self) -> usize {
                2
            }
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                y[0] = x[1];
                y[1] = -x[0];
            }
        }
        let b = vec![1.0, 2.0];
        let mut x = vec![0.0; 2];
        let res = bicgstab(&Skew, &b, &mut x, &SolveConfig::default());
        assert!(!res.converged);
        assert_eq!(
            res.breakdown,
            Some(Breakdown { iteration: 1, kind: BreakdownKind::Rho })
        );
        assert_eq!(res.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0), "x must be untouched");
        assert_eq!(res.residual_norm, res.history[0]);
    }

    #[test]
    fn omega_breakdown_accepts_the_half_step() {
        // Rank-deficient A = [[1,1],[0,0]]: with b = (1,1) the half-step
        // residual s = (−1,1) lands exactly in ker A, so t = A·s = 0 and
        // ω = 0/0 is undefined — but x must still carry the α·p half
        // update and the reported norm must equal ‖b − A·x‖.
        struct RankOne;
        impl LinearOperator for RankOne {
            fn dim(&self) -> usize {
                2
            }
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                y[0] = x[0] + x[1];
                y[1] = 0.0;
            }
        }
        let b = vec![1.0, 1.0];
        let mut x = vec![0.0; 2];
        let res = bicgstab(
            &RankOne,
            &b,
            &mut x,
            &SolveConfig { tol: 1e-14, max_iter: 10 },
        );
        assert_eq!(
            res.breakdown,
            Some(Breakdown { iteration: 1, kind: BreakdownKind::Omega }),
            "{res:?}"
        );
        assert_eq!(res.iterations, 1);
        assert!(!res.converged);
        let mut ax = vec![0.0; 2];
        RankOne.apply(&x, &mut ax);
        let rn =
            b.iter().zip(&ax).map(|(u, v)| (u - v) * (u - v)).sum::<f64>().sqrt();
        assert!(
            (rn - res.residual_norm).abs() <= 1e-12 * (1.0 + rn),
            "reported {} vs recomputed {rn}: bookkeeping must describe x",
            res.residual_norm
        );
    }

    #[test]
    fn nan_operator_reports_breakdown_not_convergence() {
        struct NanOp;
        impl LinearOperator for NanOp {
            fn dim(&self) -> usize {
                4
            }
            fn apply(&self, _x: &[f64], y: &mut [f64]) {
                y.fill(f64::NAN);
            }
        }
        let b = vec![1.0; 4];
        let mut x = vec![0.0; 4];
        let res = bicgstab(&NanOp, &b, &mut x, &SolveConfig::default());
        assert!(!res.converged);
        assert!(res.breakdown.is_some());
    }

    #[test]
    fn dense_nonsymmetric_small_system_exact() {
        let a = DenseOperator::new(
            3,
            vec![3.0, 1.0, 0.5, -1.0, 4.0, 1.0, 0.0, -0.5, 5.0],
        );
        let b = vec![1.0, -2.0, 0.5];
        let mut x = vec![0.0; 3];
        let res =
            bicgstab(&a, &b, &mut x, &SolveConfig { tol: 1e-13, max_iter: 50 });
        assert!(res.converged, "{res:?}");
        let mut ax = vec![0.0; 3];
        a.apply(&x, &mut ax);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}
