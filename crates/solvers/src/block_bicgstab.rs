//! Block BiCGStab (El Guennouni–Jbilou–Sadok 2003) for nonsymmetric
//! systems with `m` right-hand sides.
//!
//! This is the nonsymmetric counterpart of [`crate::block_cg`]: each
//! iteration streams the matrix through **two** GSPMVs with all `m`
//! columns (`V = A·P` and `T = A·S`) plus small `m×m` Gram reductions
//! and coefficient solves. Krasnopolsky (arXiv:1907.12874) shows the
//! MRHS amortization argument of the source paper carries over to this
//! structure on convection-dominated CFD systems: the matrix-stream
//! cost is paid once per sweep regardless of `m`, so batching
//! right-hand sides amortizes memory traffic exactly as block CG does,
//! at two matrix streams per iteration instead of one.
//!
//! Two variants are provided, selected by [`BicgstabVariant`]:
//!
//! * [`Classic`](BicgstabVariant::Classic) recomputes the shadow Gram
//!   `ρ = R̃ᵀR` from scratch every iteration — three `n·m²` shadow
//!   reductions per iteration (`R̃ᵀV`, `R̃ᵀT`, `R̃ᵀR`).
//! * [`Reordered`](BicgstabVariant::Reordered) uses the identity
//!   `R̃ᵀS = 0` (exact in exact arithmetic, because `α` solves
//!   `(R̃ᵀV)·α = R̃ᵀR`) to replace the fresh Gram with the recurrence
//!   `ρ_{k+1} = −ω_k · (R̃ᵀT_k)`, reusing the reduction already needed
//!   for `β`. This drops one global `n·m²` reduction per iteration —
//!   the communication-avoiding reordering the arXiv:1907.12874 family
//!   benchmarks. The two variants round differently but converge to
//!   the same tolerances.
//!
//! All dense sweeps go through the register-tiled, `KernelBackend`-
//! dispatched [`MultiVec`] kernels (`gram`, `add_mul_dense`,
//! `sub_mul_dense_then_gram`, `assign_add_mul_dense`), so the solve is
//! bitwise deterministic whenever the operator's `apply_multi` is.
//!
//! Breakdown reporting follows the taxonomy of [`crate::bicgstab`]:
//! a singular `R̃ᵀV` coefficient solve is a ρ collapse (the block
//! bi-orthogonality recursion lost rank), an undefined or zero
//! stabilizer is an ω collapse. The bookkeeping contract matches block
//! CG: `residual_norms` always describes the returned `X` exactly.

use crate::bicgstab::{Breakdown, BreakdownKind};
use crate::cg::SolveConfig;
use crate::dense;
use crate::operator::LinearOperator;
use mrhs_sparse::MultiVec;
use mrhs_telemetry as telemetry;
use std::time::Instant;

/// Which block-BiCGStab reduction schedule to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BicgstabVariant {
    /// Fresh `ρ = R̃ᵀR` Gram every iteration (three shadow reductions).
    #[default]
    Classic,
    /// `ρ_{k+1} = −ω_k·(R̃ᵀT_k)` recurrence reusing the β reduction
    /// (two shadow reductions) — the communication-avoiding reordering.
    Reordered,
}

/// Outcome of a block-BiCGStab solve. Field semantics mirror
/// [`crate::block_cg::BlockCgResult`] so service-side bookkeeping
/// (per-column cost attribution, acceptance, solo retry) is shared.
#[derive(Clone, Debug)]
pub struct BlockBicgstabResult {
    /// Block iterations completed (each is two GSPMVs plus the dense
    /// sweeps). An ω collapse counts its iteration as completed at the
    /// half step: `X += P·α` was applied and `residual_norms` describes
    /// `S = B − A·X` exactly.
    pub iterations: usize,
    /// Whether every column met its tolerance.
    pub converged: bool,
    /// Per-column residual norms of the returned `X`.
    pub residual_norms: Vec<f64>,
    /// Iteration at which each column first met its tolerance.
    pub column_converged_at: Vec<Option<usize>>,
    /// Block iterations each column effectively paid for (see
    /// [`crate::block_cg::BlockCgResult::column_iterations`]).
    pub column_iterations: Vec<usize>,
    /// `Some` if a structural ρ/ω collapse stopped the solve.
    pub breakdown: Option<Breakdown>,
    /// Per-column residual-norm history (entry 0 = initial residual),
    /// recorded only when
    /// [`BlockBicgstabOptions::record_residual_history`] is set.
    pub residual_history: Vec<Vec<f64>>,
}

/// Options for a block-BiCGStab solve.
#[derive(Clone, Debug, Default)]
pub struct BlockBicgstabOptions {
    /// Tolerance and iteration cap.
    pub solve: SolveConfig,
    /// Reduction schedule (classic vs. reordered).
    pub variant: BicgstabVariant,
    /// Record per-column, per-iteration residual norms.
    pub record_residual_history: bool,
    /// Per-column relative tolerances overriding `solve.tol`
    /// column-by-column (length `m` when present) — the coalesced-solve
    /// contract shared with [`crate::block_cg::BlockCgOptions`].
    pub column_tols: Option<Vec<f64>>,
}

impl From<SolveConfig> for BlockBicgstabOptions {
    fn from(solve: SolveConfig) -> Self {
        BlockBicgstabOptions { solve, ..Default::default() }
    }
}

/// Solves `A·X = B` for nonsymmetric `A` and `m` right-hand sides with
/// the classic reduction schedule, starting from the guess already in
/// `x`.
pub fn block_bicgstab<A: LinearOperator + ?Sized>(
    a: &A,
    b: &MultiVec,
    x: &mut MultiVec,
    cfg: &SolveConfig,
) -> BlockBicgstabResult {
    block_bicgstab_observed(
        a,
        b,
        x,
        &BlockBicgstabOptions::from(*cfg),
        |_, _, _| {},
    )
}

/// [`block_bicgstab`] with explicit [`BlockBicgstabOptions`].
pub fn block_bicgstab_with_options<A: LinearOperator + ?Sized>(
    a: &A,
    b: &MultiVec,
    x: &mut MultiVec,
    opts: &BlockBicgstabOptions,
) -> BlockBicgstabResult {
    block_bicgstab_observed(a, b, x, opts, |_, _, _| {})
}

/// Times one block-BiCGStab iteration (see the block-CG `IterTimer`):
/// records the span and a log₂-bucketed latency sample on every exit
/// path. Inert while telemetry is disabled.
struct IterTimer(Option<Instant>);

impl IterTimer {
    fn start() -> Self {
        IterTimer(telemetry::enabled().then(Instant::now))
    }
}

impl Drop for IterTimer {
    fn drop(&mut self) {
        if let Some(t) = self.0.take() {
            let dt = t.elapsed();
            telemetry::record_span_secs(
                "solver/block_bicgstab/iter",
                dt.as_secs_f64(),
            );
            telemetry::histogram_record_ns(
                "solver/block_bicgstab/iter_ns",
                dt.as_nanos().min(u64::MAX as u128) as u64,
            );
        }
    }
}

/// The instrumented core. `observe` runs once for the initial residual
/// (`iteration = 0`) and once after every completed iteration with the
/// iteration number, per-column residual norms, and the current
/// iterate — the same hook contract as
/// [`crate::block_cg::block_cg_observed`].
pub fn block_bicgstab_observed<A, F>(
    a: &A,
    b: &MultiVec,
    x: &mut MultiVec,
    opts: &BlockBicgstabOptions,
    mut observe: F,
) -> BlockBicgstabResult
where
    A: LinearOperator + ?Sized,
    F: FnMut(usize, &[f64], &MultiVec),
{
    let cfg = &opts.solve;
    let n = a.dim();
    let m = b.m();
    assert_eq!(b.n(), n);
    assert_eq!(x.shape(), (n, m));

    let _solve_span = telemetry::span("solver/block_bicgstab");
    telemetry::counter_add("solver/block_bicgstab/solves", 1);
    let init_span = telemetry::span("solver/block_bicgstab/init");

    let b_norms = b.norms();
    let thresholds: Vec<f64> = match &opts.column_tols {
        Some(tols) => {
            assert_eq!(tols.len(), m, "column_tols length must equal m");
            b_norms
                .iter()
                .zip(tols)
                .map(|(bn, t)| t * bn.max(f64::MIN_POSITIVE))
                .collect()
        }
        None => {
            b_norms.iter().map(|bn| cfg.tol * bn.max(f64::MIN_POSITIVE)).collect()
        }
    };

    // R = B − A·X; the shadow block R̃ is frozen at R₀.
    let mut r = MultiVec::zeros(n, m);
    a.apply_multi(x, &mut r);
    {
        let (rs, bs) = (r.as_mut_slice(), b.as_slice());
        for (ri, bi) in rs.iter_mut().zip(bs) {
            *ri = bi - *ri;
        }
    }
    let r_tilde = r.clone();

    let mut column_converged_at: Vec<Option<usize>> = vec![None; m];
    // ρ = R̃ᵀR (m×m). At iteration 0, R = R̃ so this is the residual
    // Gram and its diagonal gives the initial norms.
    let mut rho = r_tilde.gram(&r);
    let mut norms = diag_sqrt(&rho, m);
    let mut history: Vec<Vec<f64>> =
        if opts.record_residual_history { vec![Vec::new(); m] } else { Vec::new() };
    push_history(&mut history, &norms);
    observe(0, &norms, x);
    update_convergence(&norms, &thresholds, &mut column_converged_at, 0);
    crate::block_cg::trace_iteration(
        "solver/block_bicgstab",
        0,
        &norms,
        &column_converged_at,
    );
    drop(init_span);
    if column_converged_at.iter().all(Option::is_some) {
        return BlockBicgstabResult {
            iterations: 0,
            converged: true,
            residual_norms: norms,
            column_iterations: vec![0; m],
            column_converged_at,
            breakdown: None,
            residual_history: history,
        };
    }

    let mut p = r.clone();
    let mut v = MultiVec::zeros(n, m);
    let mut s = MultiVec::zeros(n, m);
    let mut t = MultiVec::zeros(n, m);
    let mut iterations = 0;
    let mut breakdown = None;

    for it in 1..=cfg.max_iter {
        let _iter_timer = IterTimer::start();
        // V = A·P (GSPMV 1); α solves (R̃ᵀV)·α = ρ. No symmetrization
        // and no ridge: R̃ᵀV is genuinely nonsymmetric, and a singular
        // coefficient matrix *is* the ρ collapse — reporting it is the
        // contract, papering over it is not.
        a.apply_multi(&p, &mut v);
        let rv = r_tilde.gram(&v);
        let mut rv_lu = rv.clone();
        let mut alpha = rho.clone();
        if !dense::lu_solve(&mut rv_lu, m, &mut alpha, m) {
            // X, R and ρ still describe iteration `it − 1`.
            breakdown = Some(Breakdown { iteration: it, kind: BreakdownKind::Rho });
            break;
        }
        // S = R − V·α, fused with the SᵀS reduction whose diagonal is
        // the half-step residual norms.
        s.clone_from(&r);
        let gram_s = s.sub_mul_dense_then_gram(&v, &alpha);
        let norms_s = diag_sqrt(&gram_s, m);
        if norms_s.iter().any(|v| !v.is_finite() && !v.is_nan()) || has_nan(&alpha)
        {
            // α blew up through a near-singular R̃ᵀV; X is untouched.
            breakdown = Some(Breakdown { iteration: it, kind: BreakdownKind::Rho });
            break;
        }
        if all_below(&norms_s, &thresholds, &column_converged_at) {
            // Every still-active column converged at the half step: take
            // the half update and stop — ω is not needed, and the
            // reported norms describe X + P·α exactly (R = S there).
            x.add_mul_dense(&p, &alpha);
            iterations = it;
            telemetry::counter_add("solver/block_bicgstab/iterations", 1);
            norms = norms_s;
            push_history(&mut history, &norms);
            observe(it, &norms, x);
            update_convergence(&norms, &thresholds, &mut column_converged_at, it);
            crate::block_cg::trace_iteration(
                "solver/block_bicgstab",
                it,
                &norms,
                &column_converged_at,
            );
            break;
        }

        // T = A·S (GSPMV 2); scalar stabilizer ω = ⟨T,S⟩_F / ⟨T,T⟩_F.
        a.apply_multi(&s, &mut t);
        let tt: f64 = t.dot_columns(&t).iter().sum();
        let ts: f64 = t.dot_columns(&s).iter().sum();
        let omega = ts / tt;
        if tt == 0.0 || omega == 0.0 || !omega.is_finite() {
            // Stabilizer undefined. S is finite here (checked above), so
            // accept the half step: residual of the returned X is S.
            x.add_mul_dense(&p, &alpha);
            iterations = it;
            telemetry::counter_add("solver/block_bicgstab/iterations", 1);
            norms = norms_s;
            push_history(&mut history, &norms);
            observe(it, &norms, x);
            update_convergence(&norms, &thresholds, &mut column_converged_at, it);
            crate::block_cg::trace_iteration(
                "solver/block_bicgstab",
                it,
                &norms,
                &column_converged_at,
            );
            breakdown =
                Some(Breakdown { iteration: it, kind: BreakdownKind::Omega });
            break;
        }

        // σ = R̃ᵀT feeds β (and, reordered, the ρ recurrence).
        let sigma = r_tilde.gram(&t);

        // X += P·α + ω·S ; R = S − ω·T fused with the RᵀR reduction.
        x.add_mul_dense(&p, &alpha);
        x.axpy(omega, &s);
        r.clone_from(&s);
        let gram_r = {
            let mut omega_eye = vec![0.0; m * m];
            for j in 0..m {
                omega_eye[j * m + j] = omega;
            }
            r.sub_mul_dense_then_gram(&t, &omega_eye)
        };
        iterations = it;
        telemetry::counter_add("solver/block_bicgstab/iterations", 1);
        norms = diag_sqrt(&gram_r, m);
        push_history(&mut history, &norms);
        observe(it, &norms, x);
        update_convergence(&norms, &thresholds, &mut column_converged_at, it);
        crate::block_cg::trace_iteration(
            "solver/block_bicgstab",
            it,
            &norms,
            &column_converged_at,
        );
        if column_converged_at.iter().all(Option::is_some) {
            break;
        }

        // ρ_{k+1}: fresh shadow Gram (classic) or the −ω·σ recurrence
        // (reordered; exact because R̃ᵀS = 0 in exact arithmetic).
        let rho_new = match opts.variant {
            BicgstabVariant::Classic => r_tilde.gram(&r),
            BicgstabVariant::Reordered => {
                sigma.iter().map(|v| -omega * v).collect()
            }
        };
        // β solves (R̃ᵀV)·β = −σ with the same coefficient matrix as α.
        let mut rv_lu = rv.clone();
        let mut beta: Vec<f64> = sigma.iter().map(|v| -v).collect();
        if !dense::lu_solve(&mut rv_lu, m, &mut beta, m) {
            // Iteration `it` completed its X/R updates; the reported
            // norms already describe it.
            breakdown = Some(Breakdown { iteration: it, kind: BreakdownKind::Rho });
            break;
        }
        // P ← R + (P − ω·V)·β
        p.axpy(-omega, &v);
        p.assign_add_mul_dense(&r, &beta);
        rho = rho_new;
    }

    let converged =
        breakdown.is_none() && column_converged_at.iter().all(Option::is_some);
    let column_iterations = column_converged_at
        .iter()
        .map(|c| c.unwrap_or(iterations))
        .collect::<Vec<_>>();
    BlockBicgstabResult {
        iterations,
        converged,
        residual_norms: norms,
        column_iterations,
        column_converged_at,
        breakdown,
        residual_history: history,
    }
}

/// Square roots of the Gram diagonal; NaN propagates (never masked as
/// converged) — same contract as block CG's helper.
fn diag_sqrt(gram: &[f64], m: usize) -> Vec<f64> {
    (0..m)
        .map(|j| {
            let v = gram[j * m + j];
            if v.is_nan() {
                f64::NAN
            } else {
                v.max(0.0).sqrt()
            }
        })
        .collect()
}

fn has_nan(a: &[f64]) -> bool {
    a.iter().any(|v| v.is_nan())
}

/// True when every column is at or below its threshold (or already
/// marked converged). NaN compares false, so a poisoned column keeps
/// the solve from taking a half-step exit.
fn all_below(
    norms: &[f64],
    thresholds: &[f64],
    converged_at: &[Option<usize>],
) -> bool {
    norms
        .iter()
        .zip(thresholds)
        .zip(converged_at)
        .all(|((n, t), c)| c.is_some() || *n <= *t)
}

fn push_history(history: &mut [Vec<f64>], norms: &[f64]) {
    for (h, n) in history.iter_mut().zip(norms) {
        h.push(*n);
    }
}

fn update_convergence(
    norms: &[f64],
    thresholds: &[f64],
    converged_at: &mut [Option<usize>],
    iteration: usize,
) {
    for (j, norm) in norms.iter().enumerate() {
        if converged_at[j].is_none() && *norm <= thresholds[j] {
            converged_at[j] = Some(iteration);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab::bicgstab;
    use crate::operator::{CountingOperator, LinearOperator};
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    /// Nonsymmetric convection–diffusion block tridiagonal.
    fn convection(nb: usize, peclet: f64) -> BcrsMatrix {
        let mut tb = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            tb.add(bi, bi, Block3::scaled_identity(4.0));
            if bi + 1 < nb {
                tb.add(bi, bi + 1, Block3::scaled_identity(-1.0 + peclet));
                tb.add(bi + 1, bi, Block3::scaled_identity(-1.0 - peclet));
            }
        }
        tb.build()
    }

    fn pseudo_multivec(n: usize, m: usize, seed: u64) -> MultiVec {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut mv = MultiVec::zeros(n, m);
        for v in mv.as_mut_slice() {
            *v = next();
        }
        mv
    }

    fn true_residual_norms(
        a: &dyn LinearOperator,
        b: &MultiVec,
        x: &MultiVec,
    ) -> Vec<f64> {
        let (n, m) = b.shape();
        let mut ax = MultiVec::zeros(n, m);
        a.apply_multi(x, &mut ax);
        (0..m)
            .map(|j| {
                b.column(j)
                    .iter()
                    .zip(&ax.column(j))
                    .map(|(u, v)| (u - v) * (u - v))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect()
    }

    #[test]
    fn solves_each_column_to_tolerance() {
        let a = convection(30, 0.35);
        let n = a.n_rows();
        let m = 6;
        let b = pseudo_multivec(n, m, 17);
        let mut x = MultiVec::zeros(n, m);
        let cfg = SolveConfig { tol: 1e-8, max_iter: 600 };
        let res = block_bicgstab(&a, &b, &mut x, &cfg);
        assert!(res.converged, "{res:?}");
        assert!(res.breakdown.is_none());

        let rn = true_residual_norms(&a, &b, &x);
        let bn = b.norms();
        for j in 0..m {
            assert!(rn[j] <= 5e-8 * bn[j], "col {j}: {} vs {}", rn[j], bn[j]);
        }
    }

    #[test]
    fn reordered_variant_reaches_the_same_tolerance() {
        let a = convection(30, 0.35);
        let n = a.n_rows();
        let m = 4;
        let b = pseudo_multivec(n, m, 29);
        let opts = BlockBicgstabOptions {
            solve: SolveConfig { tol: 1e-9, max_iter: 600 },
            variant: BicgstabVariant::Reordered,
            ..Default::default()
        };
        let mut x = MultiVec::zeros(n, m);
        let res = block_bicgstab_with_options(&a, &b, &mut x, &opts);
        assert!(res.converged, "{res:?}");

        // The two variants round differently; both must hit the true
        // tolerance, and their solutions agree to solver accuracy.
        let mut x_classic = MultiVec::zeros(n, m);
        let classic = block_bicgstab_with_options(
            &a,
            &b,
            &mut x_classic,
            &BlockBicgstabOptions {
                variant: BicgstabVariant::Classic,
                ..opts.clone()
            },
        );
        assert!(classic.converged);
        let rn = true_residual_norms(&a, &b, &x);
        let bn = b.norms();
        for j in 0..m {
            assert!(rn[j] <= 5e-9 * bn[j], "col {j}");
        }
        for (u, v) in x.as_slice().iter().zip(x_classic.as_slice()) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn single_column_matches_scalar_bicgstab() {
        // At m = 1 every m×m solve is a scalar division and the block
        // recursion reduces to classic BiCGStab: same iteration count
        // (±1 for the half-step exit) and matching solutions.
        let a = convection(25, 0.3);
        let n = a.n_rows();
        let b = pseudo_multivec(n, 1, 9);
        let cfg = SolveConfig { tol: 1e-9, max_iter: 500 };

        let mut xb = MultiVec::zeros(n, 1);
        let rb = block_bicgstab(&a, &b, &mut xb, &cfg);
        let mut xs = vec![0.0; n];
        let rs = bicgstab(&a, &b.column(0), &mut xs, &cfg);
        assert!(rb.converged && rs.converged, "{rb:?} {rs:?}");
        assert!(
            rb.iterations.abs_diff(rs.iterations) <= 2,
            "block {} vs scalar {}",
            rb.iterations,
            rs.iterations
        );
        for (u, v) in xb.column(0).iter().zip(&xs) {
            assert!((u - v).abs() < 1e-5, "{u} vs {v}");
        }
    }

    #[test]
    fn two_gspmv_per_iteration() {
        let a = convection(20, 0.25);
        let c = CountingOperator::new(&a);
        let n = a.n_rows();
        let m = 4;
        let b = pseudo_multivec(n, m, 3);
        let mut x = MultiVec::zeros(n, m);
        let res = block_bicgstab(&c, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
        // Initial residual plus two per full iteration; a half-step
        // exit saves the trailing T = A·S of its iteration.
        let applies = c.multi_applies();
        assert!(
            applies == 2 * res.iterations + 1 || applies == 2 * res.iterations,
            "{applies} multi-applies over {} iterations",
            res.iterations
        );
        assert_eq!(c.single_applies(), 0);
    }

    #[test]
    fn column_tols_stop_each_column_at_its_own_tolerance() {
        let a = convection(30, 0.3);
        let n = a.n_rows();
        let m = 3;
        let b = pseudo_multivec(n, m, 19);
        let tols = vec![1e-2, 1e-5, 1e-9];
        let opts = BlockBicgstabOptions {
            solve: SolveConfig { tol: 1e-5, max_iter: 800 },
            record_residual_history: true,
            column_tols: Some(tols.clone()),
            ..Default::default()
        };
        let mut x = MultiVec::zeros(n, m);
        let res = block_bicgstab_with_options(&a, &b, &mut x, &opts);
        assert!(res.converged, "{res:?}");

        let b_norms = b.norms();
        for j in 0..m {
            let at = res.column_converged_at[j].expect("converged");
            assert_eq!(res.column_iterations[j], at);
            let threshold = tols[j] * b_norms[j];
            let h = &res.residual_history[j];
            assert!(h[at] <= threshold, "col {j}: {} > {threshold}", h[at]);
            if at > 0 {
                assert!(h[at - 1] > threshold, "col {j} converged early");
            }
        }
        assert!(res.column_iterations[0] <= res.column_iterations[2]);
    }

    #[test]
    fn residual_history_matches_hook_cadence_and_final_norms() {
        let a = convection(20, 0.3);
        let n = a.n_rows();
        let m = 4;
        let b = pseudo_multivec(n, m, 47);
        let opts = BlockBicgstabOptions {
            solve: SolveConfig { tol: 1e-8, max_iter: 600 },
            record_residual_history: true,
            ..Default::default()
        };
        let mut hook_iters = Vec::new();
        let mut x = MultiVec::zeros(n, m);
        let res =
            block_bicgstab_observed(&a, &b, &mut x, &opts, |it, norms, xi| {
                assert_eq!(norms.len(), m);
                assert_eq!(xi.shape(), (n, m));
                hook_iters.push(it);
            });
        assert!(res.converged);
        assert_eq!(hook_iters, (0..=res.iterations).collect::<Vec<_>>());
        assert_eq!(res.residual_history.len(), m);
        for (j, h) in res.residual_history.iter().enumerate() {
            assert_eq!(h.len(), res.iterations + 1);
            assert_eq!(*h.last().unwrap(), res.residual_norms[j]);
        }
    }

    /// Delegates to an inner matrix for the first `good_applies` GSPMV
    /// calls, then fills the output with NaN — forcing the R̃ᵀV solve
    /// into an unfactorizable state (all-NaN Gram → zero scale → LU
    /// failure), i.e. the deterministic ρ-collapse path.
    struct PoisonAfter {
        inner: BcrsMatrix,
        good_applies: usize,
        applies: std::sync::atomic::AtomicUsize,
    }

    impl LinearOperator for PoisonAfter {
        fn dim(&self) -> usize {
            self.inner.dim()
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            self.inner.apply(x, y);
        }
        fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec) {
            use std::sync::atomic::Ordering;
            if self.applies.fetch_add(1, Ordering::Relaxed) < self.good_applies {
                self.inner.apply_multi(x, y);
            } else {
                y.fill(f64::NAN);
            }
        }
    }

    #[test]
    fn rho_breakdown_reports_last_completed_iteration() {
        let a = convection(25, 0.3);
        let n = a.n_rows();
        let m = 4;
        let b = pseudo_multivec(n, m, 41);
        let cfg = SolveConfig { tol: 1e-13, max_iter: 100 };

        // Good for the initial residual plus 3 full iterations (two
        // GSPMVs each), then poison: iteration 4's V = A·P is NaN and
        // its R̃ᵀV solve must fail.
        let poisoned = PoisonAfter {
            inner: a.clone(),
            good_applies: 7,
            applies: std::sync::atomic::AtomicUsize::new(0),
        };
        let mut x = MultiVec::zeros(n, m);
        let res = block_bicgstab(&poisoned, &b, &mut x, &cfg);
        assert!(!res.converged);
        assert_eq!(
            res.breakdown,
            Some(Breakdown { iteration: 4, kind: BreakdownKind::Rho }),
            "{res:?}"
        );
        assert_eq!(res.iterations, 3);

        // The reported norms and X must match a clean run truncated at
        // the same iteration count.
        let clean_cfg = SolveConfig { tol: 1e-13, max_iter: 3 };
        let mut x_clean = MultiVec::zeros(n, m);
        let clean = block_bicgstab(&a, &b, &mut x_clean, &clean_cfg);
        assert_eq!(clean.iterations, 3);
        assert!(clean.breakdown.is_none());
        for (u, v) in res.residual_norms.iter().zip(&clean.residual_norms) {
            assert!(u.is_finite(), "stale/poisoned norm leaked: {u}");
            assert_eq!(u, v, "norms must match the completed iteration");
        }
        for (u, v) in x.as_slice().iter().zip(x_clean.as_slice()) {
            assert_eq!(u, v);
        }
    }

    #[test]
    fn omega_breakdown_on_second_gspmv_accepts_half_step() {
        // Poison exactly the T = A·S apply of iteration 1 (the third
        // multi-apply): ⟨T,T⟩ is NaN, ω is undefined, and the solve
        // must take the half step and report an ω collapse with norms
        // describing B − A·X exactly.
        let a = convection(25, 0.3);
        let n = a.n_rows();
        let m = 3;
        let b = pseudo_multivec(n, m, 53);
        let poisoned = PoisonAfter {
            inner: a.clone(),
            good_applies: 2,
            applies: std::sync::atomic::AtomicUsize::new(0),
        };
        let mut x = MultiVec::zeros(n, m);
        let cfg = SolveConfig { tol: 1e-13, max_iter: 50 };
        let res = block_bicgstab(&poisoned, &b, &mut x, &cfg);
        assert!(!res.converged);
        assert_eq!(
            res.breakdown,
            Some(Breakdown { iteration: 1, kind: BreakdownKind::Omega }),
            "{res:?}"
        );
        assert_eq!(res.iterations, 1);

        let rn = true_residual_norms(&a, &b, &x);
        for (u, v) in res.residual_norms.iter().zip(&rn) {
            assert!(u.is_finite());
            assert!(
                (u - v).abs() <= 1e-10 * (1.0 + v),
                "reported {u} vs recomputed {v}"
            );
        }
    }

    #[test]
    fn rank_deficient_rhs_reports_rho_breakdown() {
        // Two identical columns make R₀ rank-deficient, so R̃ᵀV is
        // singular from the start — the block ρ collapse in its purest
        // form, detected before X is touched.
        let a = convection(15, 0.3);
        let n = a.n_rows();
        let col = pseudo_multivec(n, 1, 7).column(0);
        let b = MultiVec::from_columns(&[col.as_slice(), col.as_slice()]);
        let mut x = MultiVec::zeros(n, 2);
        let res = block_bicgstab(&a, &b, &mut x, &SolveConfig::default());
        assert!(!res.converged);
        let bd = res.breakdown.expect("must report breakdown");
        assert_eq!(bd.kind, BreakdownKind::Rho);
        assert_eq!(res.iterations, bd.iteration - 1);
        assert!(x.as_slice().iter().all(|&v| v == 0.0), "x must be untouched");
    }

    #[test]
    fn nan_column_never_reports_converged() {
        // One poisoned RHS column must not be masked as converged, and
        // its NaN must surface in the reported norms — the per-column
        // isolation contract the service's solo retry relies on.
        let a = convection(20, 0.3);
        let n = a.n_rows();
        let m = 4;
        let mut b = pseudo_multivec(n, m, 61);
        let mut poisoned_col = b.column(2);
        poisoned_col[0] = f64::NAN;
        b.set_column(2, &poisoned_col);
        let mut x = MultiVec::zeros(n, m);
        let res = block_bicgstab(&a, &b, &mut x, &SolveConfig::default());
        assert!(!res.converged);
        assert!(
            res.column_converged_at[2].is_none(),
            "poisoned column reported converged: {res:?}"
        );
        assert!(res.residual_norms[2].is_nan());
    }

    #[test]
    fn zero_rhs_block() {
        let a = convection(5, 0.2);
        let n = a.n_rows();
        let b = MultiVec::zeros(n, 2);
        let mut x = MultiVec::zeros(n, 2);
        let res = block_bicgstab(&a, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn successful_solves_report_no_breakdown() {
        let a = convection(20, 0.25);
        let n = a.n_rows();
        let b = pseudo_multivec(n, 3, 13);
        let mut x = MultiVec::zeros(n, 3);
        let res = block_bicgstab(&a, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
        assert!(res.breakdown.is_none());
    }
}
