//! Block conjugate gradients (O'Leary 1980).
//!
//! One block-CG iteration performs a single GSPMV with all `m` columns
//! plus small `m×m` reductions and solves — this is the kernel structure
//! the MRHS algorithm exploits: the auxiliary system `R₀·U = F_B` with
//! `m` right-hand sides (paper Alg. 2 step 3) costs little more per
//! iteration than single-vector CG because the matrix is streamed once
//! for all columns.
//!
//! The paper notes block methods "have been avoided because of numerical
//! issues" (rank deficiency of the block residual); we guard the small
//! solves with symmetrization and a trace-scaled ridge, which is enough
//! for the random right-hand sides that occur here (they are almost
//! surely full rank).

use crate::cg::SolveConfig;
use crate::dense;
use crate::operator::LinearOperator;
use mrhs_sparse::MultiVec;
use mrhs_telemetry as telemetry;
use std::time::Instant;

/// Emits the per-iteration trace points for a block solver under
/// `{base}/iter` (`a` = iteration index, `b` = worst per-column
/// residual norm as f64 bits), plus a `{base}/col_converged` point for
/// each column whose convergence was first recorded at `it` — the
/// member-column tagging the request span tree surfaces. No-op unless
/// the calling thread carries a trace context.
pub(crate) fn trace_iteration(
    base: &str,
    it: usize,
    norms: &[f64],
    column_converged_at: &[Option<usize>],
) {
    if !telemetry::trace::trace_enabled() {
        return;
    }
    let max = norms.iter().cloned().fold(0.0f64, f64::max);
    telemetry::trace::point(&format!("{base}/iter"), it as u64, max.to_bits());
    for (col, conv) in column_converged_at.iter().enumerate() {
        if *conv == Some(it) {
            telemetry::trace::point(
                &format!("{base}/col_converged"),
                col as u64,
                it as u64,
            );
        }
    }
}

/// Outcome of a block-CG solve.
#[derive(Clone, Debug)]
pub struct BlockCgResult {
    /// Block iterations *completed* (each is one GSPMV plus the X/R
    /// updates). `residual_norms` always describes the residual after
    /// exactly this many iterations.
    pub iterations: usize,
    /// Whether every column met the tolerance.
    pub converged: bool,
    /// Per-column residual norms after `iterations` completed
    /// iterations — on breakdown, the last completed iteration, not a
    /// stale or half-updated state.
    pub residual_norms: Vec<f64>,
    /// Iteration at which each column first met its tolerance.
    pub column_converged_at: Vec<Option<usize>>,
    /// Block iterations each column *effectively paid for*: the
    /// iteration at which it first met its tolerance, or `iterations`
    /// for columns that never converged. The solve-service batcher uses
    /// these to attribute cost per coalesced request.
    pub column_iterations: Vec<usize>,
    /// `Some(k)` if one of the small `m×m` solves failed during
    /// iteration `k` (rank-deficient block residual — the numerical
    /// hazard of block methods); the solve stopped there with
    /// `iterations = k − 1` (Pᵀ·Q breakdown, X untouched in iteration
    /// `k`) or `iterations = k` (ρ·β breakdown, X updated).
    pub breakdown: Option<usize>,
    /// Per-column residual-norm history: `residual_history[j][k]` is
    /// column `j`'s norm after `k` completed iterations (entry 0 is the
    /// initial residual). Recorded only when
    /// [`BlockCgOptions::record_residual_history`] is set; empty
    /// otherwise.
    pub residual_history: Vec<Vec<f64>>,
}

/// Options for a block-CG solve. [`SolveConfig`] stays the small Copy
/// struct every solver shares; the block-specific switches live here.
#[derive(Clone, Debug, Default)]
pub struct BlockCgOptions {
    /// Tolerance and iteration cap.
    pub solve: SolveConfig,
    /// Record the per-column, per-iteration residual norms into
    /// [`BlockCgResult::residual_history`].
    pub record_residual_history: bool,
    /// Per-column relative tolerances overriding `solve.tol`
    /// column-by-column (length `m` when present). Coalesced solves use
    /// this so every batched request keeps its own stopping criterion:
    /// an early-converged column is marked done at its own tolerance
    /// and stops contributing to the convergence test, instead of
    /// riding along to the tightest batchmate's tolerance.
    pub column_tols: Option<Vec<f64>>,
}

impl From<SolveConfig> for BlockCgOptions {
    fn from(solve: SolveConfig) -> Self {
        BlockCgOptions { solve, record_residual_history: false, column_tols: None }
    }
}

/// Solves `A·X = B` for SPD `A` and `m` right-hand sides by block CG,
/// starting from the guess already in `x`. Each column converges when
/// its residual norm is below `cfg.tol` times that column's `‖b_j‖`.
pub fn block_cg<A: LinearOperator + ?Sized>(
    a: &A,
    b: &MultiVec,
    x: &mut MultiVec,
    cfg: &SolveConfig,
) -> BlockCgResult {
    block_cg_observed(a, b, x, &BlockCgOptions::from(*cfg), |_, _, _| {})
}

/// [`block_cg`] with explicit [`BlockCgOptions`].
pub fn block_cg_with_options<A: LinearOperator + ?Sized>(
    a: &A,
    b: &MultiVec,
    x: &mut MultiVec,
    opts: &BlockCgOptions,
) -> BlockCgResult {
    block_cg_observed(a, b, x, opts, |_, _, _| {})
}

/// Times one block-CG iteration: its drop records the
/// `solver/block_cg/iter` span and a log₂-bucketed latency sample, so
/// the measurement covers the iteration body on every exit path
/// (convergence break, breakdown break, loop bottom). Inert — no clock
/// read — while telemetry is disabled.
struct IterTimer(Option<Instant>);

impl IterTimer {
    fn start() -> Self {
        IterTimer(telemetry::enabled().then(Instant::now))
    }
}

impl Drop for IterTimer {
    fn drop(&mut self) {
        if let Some(t) = self.0.take() {
            let dt = t.elapsed();
            telemetry::record_span_secs("solver/block_cg/iter", dt.as_secs_f64());
            telemetry::histogram_record_ns(
                "solver/block_cg/iter_ns",
                dt.as_nanos().min(u64::MAX as u128) as u64,
            );
        }
    }
}

/// The instrumented core of block CG. `observe` runs once for the
/// initial residual (`iteration = 0`) and once after every *completed*
/// iteration, receiving the iteration number, the per-column residual
/// norms at that point, and the current iterate `X`. It is the single
/// hook both telemetry consumers and
/// [`BlockCgResult::residual_history`] are fed from, and what tests use
/// to check per-iteration invariants (e.g. A-norm error monotonicity)
/// without re-running the solve at every truncation depth.
pub fn block_cg_observed<A, F>(
    a: &A,
    b: &MultiVec,
    x: &mut MultiVec,
    opts: &BlockCgOptions,
    mut observe: F,
) -> BlockCgResult
where
    A: LinearOperator + ?Sized,
    F: FnMut(usize, &[f64], &MultiVec),
{
    let cfg = &opts.solve;
    let n = a.dim();
    let m = b.m();
    assert_eq!(b.n(), n);
    assert_eq!(x.shape(), (n, m));

    let _solve_span = telemetry::span("solver/block_cg");
    telemetry::counter_add("solver/block_cg/solves", 1);
    let init_span = telemetry::span("solver/block_cg/init");

    let b_norms = b.norms();
    let thresholds: Vec<f64> = match &opts.column_tols {
        Some(tols) => {
            assert_eq!(tols.len(), m, "column_tols length must equal m");
            b_norms
                .iter()
                .zip(tols)
                .map(|(bn, t)| t * bn.max(f64::MIN_POSITIVE))
                .collect()
        }
        None => {
            b_norms.iter().map(|bn| cfg.tol * bn.max(f64::MIN_POSITIVE)).collect()
        }
    };

    // R = B − A·X
    let mut r = MultiVec::zeros(n, m);
    a.apply_multi(x, &mut r);
    {
        let (rs, bs) = (r.as_mut_slice(), b.as_slice());
        for (ri, bi) in rs.iter_mut().zip(bs) {
            *ri = bi - *ri;
        }
    }

    let mut column_converged_at: Vec<Option<usize>> = vec![None; m];
    let mut rho = r.gram(&r); // m×m
    let norms = diag_sqrt(&rho, m);
    let mut history: Vec<Vec<f64>> =
        if opts.record_residual_history { vec![Vec::new(); m] } else { Vec::new() };
    push_history(&mut history, &norms);
    observe(0, &norms, x);
    update_convergence(&norms, &thresholds, &mut column_converged_at, 0);
    trace_iteration("solver/block_cg", 0, &norms, &column_converged_at);
    drop(init_span);
    if column_converged_at.iter().all(Option::is_some) {
        return BlockCgResult {
            iterations: 0,
            converged: true,
            residual_norms: norms,
            column_iterations: vec![0; m],
            column_converged_at,
            breakdown: None,
            residual_history: history,
        };
    }

    let mut p = r.clone();
    let mut q = MultiVec::zeros(n, m);
    let mut iterations = 0;
    let mut breakdown = None;

    for it in 1..=cfg.max_iter {
        let _iter_timer = IterTimer::start();
        a.apply_multi(&p, &mut q);
        // α solves (PᵀQ)·α = ρ
        let mut pq = p.gram(&q);
        dense::symmetrize(&mut pq, m);
        ridge(&mut pq, m);
        let mut alpha = rho.clone();
        if !dense::lu_solve(&mut pq, m, &mut alpha, m) {
            // X, R and ρ still describe iteration `it − 1` — the state
            // reported below stays internally consistent.
            breakdown = Some(it);
            break;
        }
        // X += P·α ; R −= Q·α fused with the ρ_new = RᵀR reduction
        x.add_mul_dense(&p, &alpha);
        let rho_new = r.sub_mul_dense_then_gram(&q, &alpha);
        iterations = it;
        telemetry::counter_add("solver/block_cg/iterations", 1);
        let norms = diag_sqrt(&rho_new, m);
        push_history(&mut history, &norms);
        observe(it, &norms, x);
        update_convergence(&norms, &thresholds, &mut column_converged_at, it);
        trace_iteration("solver/block_cg", it, &norms, &column_converged_at);
        if column_converged_at.iter().all(Option::is_some) {
            rho = rho_new;
            break;
        }

        // β solves ρ·β = ρ_new
        let mut rho_lhs = rho.clone();
        dense::symmetrize(&mut rho_lhs, m);
        ridge(&mut rho_lhs, m);
        let mut beta = rho_new.clone();
        if !dense::lu_solve(&mut rho_lhs, m, &mut beta, m) {
            // Iteration `it` completed its X/R updates; adopt ρ_new so
            // the reported norms describe that completed iteration.
            breakdown = Some(it);
            rho = rho_new;
            break;
        }
        // P ← R + P·β
        p.assign_add_mul_dense(&r, &beta);
        rho = rho_new;
    }

    let converged =
        breakdown.is_none() && column_converged_at.iter().all(Option::is_some);
    let column_iterations = column_converged_at
        .iter()
        .map(|c| c.unwrap_or(iterations))
        .collect::<Vec<_>>();
    BlockCgResult {
        iterations,
        converged,
        residual_norms: diag_sqrt(&rho, m),
        column_iterations,
        column_converged_at,
        breakdown,
        residual_history: history,
    }
}

/// Square roots of the Gram diagonal. Negative round-off clamps to
/// zero, but NaN must propagate (`f64::max` would silently mask it):
/// a poisoned column has residual NaN, not 0, and must never be
/// reported as converged.
fn diag_sqrt(gram: &[f64], m: usize) -> Vec<f64> {
    (0..m)
        .map(|j| {
            let v = gram[j * m + j];
            if v.is_nan() {
                f64::NAN
            } else {
                v.max(0.0).sqrt()
            }
        })
        .collect()
}

/// Appends one per-column entry; a no-op when history recording is off
/// (`history` is then the empty Vec and the zip visits nothing).
fn push_history(history: &mut [Vec<f64>], norms: &[f64]) {
    for (h, n) in history.iter_mut().zip(norms) {
        h.push(*n);
    }
}

fn update_convergence(
    norms: &[f64],
    thresholds: &[f64],
    converged_at: &mut [Option<usize>],
    iteration: usize,
) {
    for (j, norm) in norms.iter().enumerate() {
        if converged_at[j].is_none() && *norm <= thresholds[j] {
            converged_at[j] = Some(iteration);
        }
    }
}

/// Adds a tiny trace-scaled ridge so rank-deficient Gram matrices stay
/// factorizable after some columns converge.
fn ridge(a: &mut [f64], m: usize) {
    let trace: f64 = (0..m).map(|i| a[i * m + i]).sum();
    let eps = trace.abs().max(f64::MIN_POSITIVE) * 1e-14 / m as f64;
    for i in 0..m {
        a[i * m + i] += eps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{cg, SolveConfig};
    use crate::operator::CountingOperator;
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    fn laplacian(nb: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            t.add(bi, bi, Block3::scaled_identity(4.0));
            if bi + 1 < nb {
                t.add_symmetric_pair(bi, bi + 1, Block3::scaled_identity(-1.0));
            }
        }
        t.build()
    }

    fn pseudo_multivec(n: usize, m: usize, seed: u64) -> MultiVec {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut mv = MultiVec::zeros(n, m);
        for v in mv.as_mut_slice() {
            *v = next();
        }
        mv
    }

    #[test]
    fn solves_each_column_to_tolerance() {
        let a = laplacian(25);
        let n = a.n_rows();
        let m = 6;
        let b = pseudo_multivec(n, m, 17);
        let mut x = MultiVec::zeros(n, m);
        let cfg = SolveConfig { tol: 1e-8, max_iter: 400 };
        let res = block_cg(&a, &b, &mut x, &cfg);
        assert!(res.converged, "{res:?}");

        // verify true residuals column by column
        use crate::operator::LinearOperator;
        let mut ax = MultiVec::zeros(n, m);
        a.apply_multi(&x, &mut ax);
        for j in 0..m {
            let bj = b.column(j);
            let axj = ax.column(j);
            let rn: f64 = bj
                .iter()
                .zip(&axj)
                .map(|(u, v)| (u - v) * (u - v))
                .sum::<f64>()
                .sqrt();
            let bn: f64 = bj.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(rn <= 2e-8 * bn, "col {j}: {rn} vs {bn}");
        }
    }

    #[test]
    fn matches_single_cg_solutions() {
        let a = laplacian(15);
        let n = a.n_rows();
        let m = 3;
        let b = pseudo_multivec(n, m, 5);
        let cfg = SolveConfig { tol: 1e-10, max_iter: 500 };

        let mut xb = MultiVec::zeros(n, m);
        let res = block_cg(&a, &b, &mut xb, &cfg);
        assert!(res.converged);

        for j in 0..m {
            let mut xj = vec![0.0; n];
            let r = cg(&a, &b.column(j), &mut xj, &cfg);
            assert!(r.converged);
            for (u, v) in xb.column(j).iter().zip(&xj) {
                assert!((u - v).abs() < 1e-7, "col {j}");
            }
        }
    }

    #[test]
    fn block_cg_converges_in_fewer_iterations_than_cg() {
        // Block Krylov spaces are richer: iterations should not exceed
        // the worst single-vector count, and usually beat it.
        let a = laplacian(40);
        let n = a.n_rows();
        let m = 8;
        let b = pseudo_multivec(n, m, 23);
        let cfg = SolveConfig { tol: 1e-6, max_iter: 500 };

        let mut xb = MultiVec::zeros(n, m);
        let res = block_cg(&a, &b, &mut xb, &cfg);
        assert!(res.converged);

        let mut worst = 0;
        for j in 0..m {
            let mut xj = vec![0.0; n];
            let r = cg(&a, &b.column(j), &mut xj, &cfg);
            worst = worst.max(r.iterations);
        }
        assert!(
            res.iterations <= worst,
            "block {} vs worst single {}",
            res.iterations,
            worst
        );
    }

    #[test]
    fn one_gspmv_per_iteration() {
        let a = laplacian(20);
        let c = CountingOperator::new(&a);
        let n = a.n_rows();
        let m = 4;
        let b = pseudo_multivec(n, m, 3);
        let mut x = MultiVec::zeros(n, m);
        let res = block_cg(&c, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
        // initial residual + one per iteration
        assert_eq!(c.multi_applies(), res.iterations + 1);
        assert_eq!(c.single_applies(), 0);
    }

    #[test]
    fn initial_guess_helps_block_solve() {
        let a = laplacian(30);
        let n = a.n_rows();
        let m = 4;
        let b = pseudo_multivec(n, m, 77);
        let cfg = SolveConfig::default();

        let mut x_cold = MultiVec::zeros(n, m);
        let cold = block_cg(&a, &b, &mut x_cold, &cfg);

        let mut x_warm = x_cold.clone();
        x_warm.scale(1.0 + 1e-5);
        let warm = block_cg(&a, &b, &mut x_warm, &cfg);
        assert!(warm.iterations < cold.iterations);
    }

    #[test]
    fn single_column_block_cg_equals_cg_iterations() {
        let a = laplacian(30);
        let n = a.n_rows();
        let b = pseudo_multivec(n, 1, 9);
        let cfg = SolveConfig::default();

        let mut xb = MultiVec::zeros(n, 1);
        let rb = block_cg(&a, &b, &mut xb, &cfg);
        let mut xs = vec![0.0; n];
        let rs = cg(&a, &b.column(0), &mut xs, &cfg);
        assert!(rb.converged && rs.converged);
        assert!(rb.iterations.abs_diff(rs.iterations) <= 1);
    }

    #[test]
    fn column_convergence_order_recorded() {
        let a = laplacian(25);
        let n = a.n_rows();
        let m = 3;
        let b = pseudo_multivec(n, m, 31);
        let mut x = MultiVec::zeros(n, m);
        let res = block_cg(&a, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
        for c in &res.column_converged_at {
            let at = c.expect("every column converged");
            assert!(at <= res.iterations);
        }
    }

    /// Delegates to an inner matrix for the first `good_applies` GSPMV
    /// calls, then fills the output with NaN — which drives the PᵀQ
    /// Gram matrix to an unfactorizable state and forces the breakdown
    /// path deterministically.
    struct PoisonAfter {
        inner: BcrsMatrix,
        good_applies: usize,
        applies: std::sync::atomic::AtomicUsize,
    }

    impl LinearOperator for PoisonAfter {
        fn dim(&self) -> usize {
            self.inner.dim()
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            self.inner.apply(x, y);
        }
        fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec) {
            use std::sync::atomic::Ordering;
            if self.applies.fetch_add(1, Ordering::Relaxed) < self.good_applies {
                self.inner.apply_multi(x, y);
            } else {
                y.fill(f64::NAN);
            }
        }
    }

    #[test]
    fn breakdown_reports_last_completed_iteration() {
        let a = laplacian(25);
        let n = a.n_rows();
        let m = 4;
        let b = pseudo_multivec(n, m, 41);
        let cfg = SolveConfig { tol: 1e-12, max_iter: 100 };

        // Good for the initial residual plus 3 iterations, then poison:
        // the 4th iteration's PᵀQ solve must fail.
        let poisoned = PoisonAfter {
            inner: a.clone(),
            good_applies: 4,
            applies: std::sync::atomic::AtomicUsize::new(0),
        };
        let mut x = MultiVec::zeros(n, m);
        let res = block_cg(&poisoned, &b, &mut x, &cfg);
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(4), "{res:?}");
        assert_eq!(res.iterations, 3);

        // The reported norms must describe the last completed iteration:
        // identical to a clean run truncated at the same count.
        let clean_cfg = SolveConfig { tol: 1e-12, max_iter: 3 };
        let mut x_clean = MultiVec::zeros(n, m);
        let clean = block_cg(&a, &b, &mut x_clean, &clean_cfg);
        assert_eq!(clean.iterations, 3);
        assert!(clean.breakdown.is_none());
        for (u, v) in res.residual_norms.iter().zip(&clean.residual_norms) {
            assert!(u.is_finite(), "stale/poisoned norm leaked: {u}");
            assert_eq!(u, v, "norms must match the completed iteration");
        }
        // X likewise stops at the completed iteration.
        for (u, v) in x.as_slice().iter().zip(x_clean.as_slice()) {
            assert_eq!(u, v);
        }
    }

    #[test]
    fn successful_solves_report_no_breakdown() {
        let a = laplacian(20);
        let n = a.n_rows();
        let b = pseudo_multivec(n, 3, 13);
        let mut x = MultiVec::zeros(n, 3);
        let res = block_cg(&a, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
        assert!(res.breakdown.is_none());
    }

    #[test]
    fn residual_history_off_by_default() {
        let a = laplacian(15);
        let n = a.n_rows();
        let b = pseudo_multivec(n, 3, 61);
        let mut x = MultiVec::zeros(n, 3);
        let res = block_cg(&a, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
        assert!(res.residual_history.is_empty());
    }

    #[test]
    fn residual_history_matches_hook_cadence_and_final_norms() {
        let a = laplacian(20);
        let n = a.n_rows();
        let m = 4;
        let b = pseudo_multivec(n, m, 47);
        let opts = BlockCgOptions {
            solve: SolveConfig { tol: 1e-8, max_iter: 400 },
            record_residual_history: true,
            ..Default::default()
        };
        let mut hook_iters = Vec::new();
        let mut x = MultiVec::zeros(n, m);
        let res = block_cg_observed(&a, &b, &mut x, &opts, |it, norms, xi| {
            assert_eq!(norms.len(), m);
            assert_eq!(xi.shape(), (n, m));
            hook_iters.push(it);
        });
        assert!(res.converged);
        // Hook fires at iteration 0 and after each completed iteration;
        // the history has exactly one entry per firing, per column.
        assert_eq!(hook_iters, (0..=res.iterations).collect::<Vec<_>>());
        assert_eq!(res.residual_history.len(), m);
        for (j, h) in res.residual_history.iter().enumerate() {
            assert_eq!(h.len(), res.iterations + 1);
            assert_eq!(*h.last().unwrap(), res.residual_norms[j]);
        }
    }

    /// Per-iteration iterates captured through the observer hook must
    /// decrease the A-norm error monotonically — the invariant the
    /// oracle's `a_norm_error` pins for CG, extended here to every
    /// column of the block solve (each column's error is minimized over
    /// the same growing block Krylov space).
    #[test]
    fn observed_iterates_decrease_a_norm_error_per_column() {
        use oracle::invariants::a_norm_error;
        use oracle::reference::Dense;

        let a = laplacian(20);
        let n = a.n_rows();
        let m = 4;
        let b = pseudo_multivec(n, m, 51);

        let mut x_star = MultiVec::zeros(n, m);
        let tight = SolveConfig { tol: 1e-13, max_iter: 2000 };
        assert!(block_cg(&a, &b, &mut x_star, &tight).converged);

        let dense = Dense::from_bcrs(&a);
        let opts = BlockCgOptions {
            solve: SolveConfig { tol: 1e-8, max_iter: 400 },
            record_residual_history: true,
            ..Default::default()
        };
        let mut iterates = Vec::new();
        let mut x = MultiVec::zeros(n, m);
        let res = block_cg_observed(&a, &b, &mut x, &opts, |_, _, xi| {
            iterates.push(xi.clone());
        });
        assert!(res.converged);
        assert_eq!(iterates.len(), res.iterations + 1);

        for j in 0..m {
            let xs = x_star.column(j);
            let mut last = f64::INFINITY;
            for (k, xi) in iterates.iter().enumerate() {
                let e = a_norm_error(&dense, &xi.column(j), &xs);
                assert!(
                    e <= last * (1.0 + 1e-9) + 1e-12,
                    "col {j} iter {k}: A-norm error rose {last} -> {e}"
                );
                last = e;
            }
        }
    }

    #[test]
    fn column_tols_stop_each_column_at_its_own_tolerance() {
        let a = laplacian(30);
        let n = a.n_rows();
        let m = 3;
        let b = pseudo_multivec(n, m, 19);
        let tols = vec![1e-2, 1e-6, 1e-10];
        let opts = BlockCgOptions {
            solve: SolveConfig { tol: 1e-6, max_iter: 800 },
            record_residual_history: true,
            column_tols: Some(tols.clone()),
        };
        let mut x = MultiVec::zeros(n, m);
        let res = block_cg_with_options(&a, &b, &mut x, &opts);
        assert!(res.converged, "{res:?}");

        let b_norms = b.norms();
        for j in 0..m {
            let at = res.column_converged_at[j].expect("converged");
            assert_eq!(res.column_iterations[j], at);
            // The recorded history shows the column first crossed *its
            // own* threshold at `at`, not the uniform solve.tol.
            let threshold = tols[j] * b_norms[j];
            let h = &res.residual_history[j];
            assert!(h[at] <= threshold, "col {j}: {} > {threshold}", h[at]);
            if at > 0 {
                assert!(h[at - 1] > threshold, "col {j} converged early");
            }
        }
        // Loose columns stop earlier than tight ones.
        assert!(res.column_iterations[0] <= res.column_iterations[2]);
    }

    #[test]
    fn column_iterations_cap_at_total_for_unconverged_columns() {
        let a = laplacian(40);
        let n = a.n_rows();
        let b = pseudo_multivec(n, 2, 29);
        // Unreachable tolerance within the iteration budget.
        let cfg = SolveConfig { tol: 1e-300, max_iter: 3 };
        let mut x = MultiVec::zeros(n, 2);
        let res = block_cg(&a, &b, &mut x, &cfg);
        assert!(!res.converged);
        assert_eq!(res.column_iterations, vec![res.iterations; 2]);
    }

    #[test]
    fn zero_rhs_block() {
        let a = laplacian(5);
        let n = a.n_rows();
        let b = MultiVec::zeros(n, 2);
        let mut x = MultiVec::zeros(n, 2);
        let res = block_cg(&a, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }
}
