//! Iterative refinement with a reusable factorization.
//!
//! The paper's small-system optimization (§II-C): the Cholesky factor of
//! `R_k` computed for the Brownian force is reused to solve the system
//! at the *midpoint* matrix `R_{k+1/2}` — the factor acts as a direct
//! solver for a nearby matrix, and a few refinement sweeps absorb the
//! difference, so only one factorization is needed per time step.

use crate::cg::SolveConfig;
use crate::cholesky::DenseCholesky;
use crate::operator::LinearOperator;

/// Outcome of an iterative-refinement solve.
#[derive(Clone, Debug)]
pub struct RefinementResult {
    /// Refinement sweeps performed.
    pub iterations: usize,
    /// Whether the relative residual tolerance was met.
    pub converged: bool,
    /// Final residual norm.
    pub residual_norm: f64,
}

/// Solves `A·x = b` using `factor` (a factorization of a nearby matrix)
/// as the inner direct solver: repeat `x += F⁻¹(b − A·x)`. Converges
/// linearly with rate `‖I − F⁻¹A‖`; for slowly varying SD matrices a
/// handful of sweeps suffice.
pub fn iterative_refinement<A: LinearOperator + ?Sized>(
    a: &A,
    factor: &DenseCholesky,
    b: &[f64],
    x: &mut [f64],
    cfg: &SolveConfig,
) -> RefinementResult {
    let n = a.dim();
    assert_eq!(factor.dim(), n);
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);

    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if b_norm == 0.0 {
        x.fill(0.0);
        return RefinementResult {
            iterations: 0,
            converged: true,
            residual_norm: 0.0,
        };
    }
    let threshold = cfg.tol * b_norm;

    let mut r = vec![0.0; n];
    let mut last_norm = f64::INFINITY;
    for it in 0..=cfg.max_iter {
        a.apply(x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if rnorm <= threshold {
            return RefinementResult {
                iterations: it,
                converged: true,
                residual_norm: rnorm,
            };
        }
        if it == cfg.max_iter || rnorm >= last_norm {
            // Out of budget or diverging (factor too far from A).
            return RefinementResult {
                iterations: it,
                converged: false,
                residual_norm: rnorm,
            };
        }
        last_norm = rnorm;
        factor.solve_in_place(&mut r);
        for (xi, di) in x.iter_mut().zip(&r) {
            *xi += di;
        }
    }
    unreachable!("loop always returns");
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    fn spd(nb: usize, shift: f64) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for bi in 0..nb {
            t.add(bi, bi, Block3::scaled_identity(4.0 + shift));
            if bi + 1 < nb {
                t.add_symmetric_pair(bi, bi + 1, Block3::scaled_identity(-1.0));
            }
        }
        t.build()
    }

    #[test]
    fn exact_factor_converges_in_one_sweep() {
        let a = spd(4, 0.0);
        let n = a.n_rows();
        let f = DenseCholesky::factor_bcrs(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut x = vec![0.0; n];
        let res = iterative_refinement(&a, &f, &b, &mut x, &SolveConfig::default());
        assert!(res.converged);
        assert!(res.iterations <= 2, "{res:?}");
    }

    #[test]
    fn nearby_factor_converges_in_few_sweeps() {
        // Factor R_k, solve with R_{k+1/2} = R_k + small perturbation —
        // the paper's reuse pattern.
        let a_k = spd(5, 0.0);
        let a_mid = spd(5, 0.05);
        let n = a_mid.n_rows();
        let f = DenseCholesky::factor_bcrs(&a_k).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 3) as f64).sin()).collect();
        let mut x = vec![0.0; n];
        let res = iterative_refinement(
            &a_mid,
            &f,
            &b,
            &mut x,
            &SolveConfig { tol: 1e-10, max_iter: 50 },
        );
        assert!(res.converged, "{res:?}");
        assert!(res.iterations <= 10, "{res:?}");
    }

    #[test]
    fn good_initial_guess_reduces_sweeps() {
        let a_k = spd(5, 0.0);
        let a_mid = spd(5, 0.05);
        let n = a_mid.n_rows();
        let f = DenseCholesky::factor_bcrs(&a_k).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 3) as f64).sin()).collect();
        let cfg = SolveConfig { tol: 1e-10, max_iter: 50 };

        let mut x_cold = vec![0.0; n];
        let cold = iterative_refinement(&a_mid, &f, &b, &mut x_cold, &cfg);

        let mut x_warm = x_cold.clone();
        for v in x_warm.iter_mut() {
            *v *= 1.0 + 1e-6;
        }
        let warm = iterative_refinement(&a_mid, &f, &b, &mut x_warm, &cfg);
        assert!(warm.iterations < cold.iterations);
    }

    #[test]
    fn reports_non_convergence_for_distant_factor() {
        let a = spd(4, 0.0);
        // Factor of a *wildly* different matrix.
        let far = BcrsMatrix::scaled_identity(4, 1000.0);
        let f = DenseCholesky::factor_bcrs(&far).unwrap();
        let n = a.n_rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = iterative_refinement(
            &a,
            &f,
            &b,
            &mut x,
            &SolveConfig { tol: 1e-12, max_iter: 3 },
        );
        assert!(!res.converged);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = spd(3, 0.0);
        let f = DenseCholesky::factor_bcrs(&a).unwrap();
        let n = a.n_rows();
        let mut x = vec![5.0; n];
        let res = iterative_refinement(
            &a,
            &f,
            &vec![0.0; n],
            &mut x,
            &SolveConfig::default(),
        );
        assert!(res.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
