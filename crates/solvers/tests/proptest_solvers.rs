//! Property-based tests of the solver stack on randomly generated SPD
//! problems: convergence contracts, block/single agreement, direct vs
//! iterative agreement, and spectral-approximation invariants.

//! Direct solves and block solves are additionally differenced against
//! the `oracle` crate's naive references (Gaussian elimination, Jacobi
//! eigensolver) so the production Cholesky/LU/Chebyshev paths are
//! pinned by an implementation they share no code with.

use mrhs_solvers::dense;
use mrhs_solvers::{
    block_cg, cg, spectral_bounds, ChebyshevSqrt, DenseCholesky, DenseOperator,
    LinearOperator, SolveConfig,
};
use mrhs_sparse::MultiVec;
use oracle::reference::{gauss_solve, gauss_solve_multi, sqrt_matvec_eigh};
use oracle::{Dense, TolModel};
use proptest::prelude::*;

/// Strategy: a random dense SPD matrix `A = Bᵀ·B + d·I` of dimension `n`.
fn arb_spd(max_n: usize) -> impl Strategy<Value = (usize, Vec<f64>)> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            (Just(n), proptest::collection::vec(-1.0f64..1.0, n * n), 0.5f64..3.0)
        })
        .prop_map(|(n, b, shift)| {
            let bt = dense::transpose(&b, n, n);
            let mut a = dense::matmul(&bt, n, n, &b, n);
            for i in 0..n {
                a[i * n + i] += shift;
            }
            (n, a)
        })
}

fn residual_norm(a: &[f64], n: usize, x: &[f64], b: &[f64]) -> f64 {
    let ax = dense::matmul(a, n, n, x, 1);
    ax.iter().zip(b).map(|(u, v)| (u - v) * (u - v)).sum::<f64>().sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cg_meets_its_tolerance((n, a) in arb_spd(12)) {
        let op = DenseOperator::new(n, a.clone());
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let bn = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assume!(bn > 0.0);
        let mut x = vec![0.0; n];
        let cfg = SolveConfig { tol: 1e-9, max_iter: 20 * n };
        let res = cg(&op, &b, &mut x, &cfg);
        prop_assert!(res.converged);
        prop_assert!(residual_norm(&a, n, &x, &b) <= 1e-8 * bn.max(1.0));
    }

    #[test]
    fn block_cg_matches_cholesky((n, a) in arb_spd(10), m in 1usize..5) {
        let op = DenseOperator::new(n, a.clone());
        let chol = DenseCholesky::factor_dense(&a, n).expect("SPD");
        let mut b = MultiVec::zeros(n, m);
        for j in 0..m {
            let col: Vec<f64> =
                (0..n).map(|i| (((i + j) * 3 % 7) as f64) - 3.0).collect();
            b.set_column(j, &col);
        }
        let mut x = MultiVec::zeros(n, m);
        let cfg = SolveConfig { tol: 1e-11, max_iter: 30 * n };
        let res = block_cg(&op, &b, &mut x, &cfg);
        prop_assert!(res.converged, "{res:?}");
        let mut want = b.clone();
        chol.solve_multi_in_place(&mut want);
        // Third, fully independent reference: the oracle's Gaussian
        // elimination must agree with Cholesky *and* with block CG.
        let dense_a = Dense { n_rows: n, n_cols: n, data: a.clone() };
        let gauss = gauss_solve_multi(&dense_a, &b).expect("SPD");
        if let Err(e) = TolModel::SOLVER.check_slices(
            gauss.as_slice(), want.as_slice(), "cholesky vs gauss")
        {
            prop_assert!(false, "{}", e);
        }
        if let Err(e) = TolModel::SOLVER.check_slices(
            gauss.as_slice(), x.as_slice(), "block_cg vs gauss")
        {
            prop_assert!(false, "{}", e);
        }
    }

    #[test]
    fn warm_start_never_hurts((n, a) in arb_spd(10)) {
        let op = DenseOperator::new(n, a);
        let b: Vec<f64> = (0..n).map(|i| ((i % 3) as f64) + 1.0).collect();
        let cfg = SolveConfig { tol: 1e-8, max_iter: 20 * n };
        let mut x_cold = vec![0.0; n];
        let cold = cg(&op, &b, &mut x_cold, &cfg);
        prop_assert!(cold.converged);
        let mut x_warm = x_cold.clone();
        let warm = cg(&op, &b, &mut x_warm, &cfg);
        prop_assert!(warm.converged);
        prop_assert!(warm.iterations <= 1, "exact guess needs no iterations");
    }

    #[test]
    fn cholesky_reconstructs((n, a) in arb_spd(9)) {
        let chol = DenseCholesky::factor_dense(&a, n).expect("SPD");
        let lt = dense::transpose(chol.l(), n, n);
        let llt = dense::matmul(chol.l(), n, n, &lt, n);
        let scale = a.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
        prop_assert!(dense::max_diff(&llt, &a) <= 1e-9 * scale);
    }

    #[test]
    fn lu_solves_random_systems((n, a) in arb_spd(9)) {
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 11 % 7) as f64) - 3.0).collect();
        let b = dense::matmul(&a, n, n, &x_true, 1);
        let mut lu = a.clone();
        let mut x = b.clone();
        prop_assert!(dense::lu_solve(&mut lu, n, &mut x, 1));
        let scale = x_true.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
        for (u, v) in x.iter().zip(&x_true) {
            prop_assert!((u - v).abs() <= 1e-7 * scale);
        }
        // The production LU and the oracle's partial-pivot elimination
        // must land on the same solution.
        let dense_a = Dense { n_rows: n, n_cols: n, data: a.clone() };
        let gauss = gauss_solve(&dense_a, &b).expect("nonsingular");
        if let Err(e) = TolModel::SOLVER.check_slices(&gauss, &x, "lu vs gauss") {
            prop_assert!(false, "{}", e);
        }
    }

    #[test]
    fn chebyshev_sqrt_accurate_on_random_interval(
        lo in 0.05f64..2.0,
        width in 1.0f64..40.0,
    ) {
        let cheb = ChebyshevSqrt::new(lo, lo + width, 40);
        // error scales with sqrt of the interval's upper end
        let tol = 1e-2 * (lo + width).sqrt() * (width / lo / 100.0).max(0.01);
        prop_assert!(cheb.max_error(400) <= tol.max(1e-8),
            "err {} tol {tol}", cheb.max_error(400));
    }

    #[test]
    fn spectral_bounds_bracket_dense_spectrum((n, a) in arb_spd(10)) {
        let op = DenseOperator::new(n, a.clone());
        let bounds = spectral_bounds(&op, 3 * n, None);
        // Rayleigh quotients live inside [lo, hi] up to the widening slack.
        for seed in 1u64..4 {
            let mut state = seed;
            let v: Vec<f64> = (0..n).map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            }).collect();
            let mut av = vec![0.0; n];
            op.apply(&v, &mut av);
            let q: f64 = v.iter().zip(&av).map(|(u, w)| u * w).sum::<f64>()
                / v.iter().map(|u| u * u).sum::<f64>();
            prop_assert!(q >= bounds.lo * 0.85 && q <= bounds.hi * 1.15,
                "q={q} not within [{}, {}]", bounds.lo, bounds.hi);
        }
    }

    #[test]
    fn chebyshev_squares_to_matrix((n, a) in arb_spd(8)) {
        let op = DenseOperator::new(n, a.clone());
        let bounds = spectral_bounds(&op, 3 * n, None);
        let cheb = ChebyshevSqrt::new(bounds.lo * 0.9, bounds.hi * 1.1, 60);
        let z: Vec<f64> = (0..n).map(|i| ((i % 4) as f64) - 1.5).collect();
        let mut s1 = vec![0.0; n];
        let mut s2 = vec![0.0; n];
        cheb.apply(&op, &z, &mut s1);
        cheb.apply(&op, &s1, &mut s2);
        let az = dense::matmul(&a, n, n, &z, 1);
        let scale = az.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
        for (u, v) in s2.iter().zip(&az) {
            prop_assert!((u - v).abs() <= 2e-3 * scale, "{u} vs {v}");
        }
        // The single application must also track the oracle's exact
        // eigendecomposition square root, not merely square correctly.
        let dense_a = Dense { n_rows: n, n_cols: n, data: a.clone() };
        let want = sqrt_matvec_eigh(&dense_a, &z);
        let sqrt_scale = want.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
        for (u, v) in s1.iter().zip(&want) {
            prop_assert!((u - v).abs() <= 2e-3 * sqrt_scale,
                "cheb {u} vs eigh sqrt {v}");
        }
    }
}
