//! Distributed-memory GSPMV (paper §IV-A2, §IV-D3).
//!
//! The paper runs GSPMV on up to 64 InfiniBand-connected nodes. This
//! crate reproduces that system as a faithful in-process simulation:
//!
//! * **Real data movement.** [`distmat::DistributedMatrix`] partitions
//!   the matrix by rows, remaps each node's columns onto a compact
//!   local index space `[own rows | received halo rows]`, and
//!   [`exchange::execute`] runs the actual multiply with per-node
//!   threads that exchange *packed* halo messages over channels — a
//!   node can only read its own rows plus what it received, exactly as
//!   an MPI rank would.
//! * **Modeled time.** [`sim`] prices the same execution with the
//!   paper's machine and network constants: per-node compute from the
//!   Eq. 8 model (split into a local part overlapped with communication
//!   and a remote part that waits for the halo) and per-message
//!   `latency + bytes/bandwidth` costs. This regenerates Fig. 3/4 and
//!   Table III without owning 64 nodes.

pub mod distmat;
pub mod exchange;
pub mod mrhs;
pub mod network;
pub mod sim;

pub use distmat::DistributedMatrix;
pub use mrhs::ClusterMrhsModel;
pub use network::NetworkModel;
pub use sim::{ClusterGspmvModel, NodeTime};
