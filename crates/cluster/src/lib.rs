//! Distributed-memory GSPMV (paper §IV-A2, §IV-D3).
//!
//! The paper runs GSPMV on up to 64 InfiniBand-connected nodes. This
//! crate reproduces that system as a faithful in-process simulation:
//!
//! * **Real data movement.** [`distmat::DistributedMatrix`] partitions
//!   the matrix by rows, splits each node's blocks into a *local*
//!   sub-matrix (owned columns) and a *remote* sub-matrix (compact halo
//!   columns), and precomputes every node's send/receive plans once.
//!   [`exchange::execute`] runs the actual multiply with per-node
//!   threads that exchange *packed* halo messages over channels — a
//!   node can only read its own rows plus what it received, exactly as
//!   an MPI rank would. [`engine::DistEngine`] is the solver-grade
//!   executor: persistent node workers that overlap the halo transfer
//!   with the local sub-matrix multiply and report per-node phase
//!   timings (`comm_wait`/`local`/`remote`); it implements
//!   `LinearOperator`, so block CG runs distributed unchanged.
//! * **Modeled time.** [`sim`] prices the same execution with the
//!   paper's machine and network constants: per-node compute from the
//!   Eq. 8 model (split into a local part overlapped with communication
//!   and a remote part that waits for the halo) and per-message
//!   `latency + bytes/bandwidth` costs. This regenerates Fig. 3/4 and
//!   Table III without owning 64 nodes.

pub mod distmat;
pub mod engine;
pub mod exchange;
pub mod mrhs;
pub mod network;
pub mod permuted;
pub mod sim;
pub mod watchdog;

pub use distmat::DistributedMatrix;
pub use engine::{DistEngine, EngineStats, PhaseTimings};
pub use mrhs::ClusterMrhsModel;
pub use network::NetworkModel;
pub use permuted::PermutedEngine;
pub use sim::{ClusterGspmvModel, NodeTime};
