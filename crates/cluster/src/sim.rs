//! Time model of distributed GSPMV (Fig. 3, Fig. 4, Table III).
//!
//! Matches the paper's implementation structure (§IV-A2): each node
//! overlaps its halo communication with the multiply by the *local*
//! part of its matrix (columns it owns), then multiplies the remote
//! part once the halo has arrived. A node's time is therefore
//!
//! ```text
//!   t(p) = max(t_comm(p), t_local(p)) + t_remote(p)
//! ```
//!
//! with per-node compute from the Eq. 8 model and communication as
//! serialized `latency + bytes/bandwidth` message costs. The cluster
//! time is the slowest node (GSPMV has a global synchronization at the
//! next iteration's reduction).

use crate::distmat::DistributedMatrix;
use crate::network::NetworkModel;
use mrhs_perfmodel::machine::MachineProfile;
use mrhs_perfmodel::model::GspmvModel;

/// Modeled per-node timing of one distributed GSPMV.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeTime {
    /// Multiply by locally-owned columns (overlappable).
    pub compute_local: f64,
    /// Multiply by halo columns (after communication completes).
    pub compute_remote: f64,
    /// Halo receive time.
    pub comm: f64,
    /// `max(comm, compute_local) + compute_remote`.
    pub total: f64,
}

impl NodeTime {
    /// Fraction of this node's activity that is communication,
    /// `comm / (comm + compute)` — the quantity of Table III.
    pub fn comm_fraction(&self) -> f64 {
        let compute = self.compute_local + self.compute_remote;
        if self.comm + compute == 0.0 {
            0.0
        } else {
            self.comm / (self.comm + compute)
        }
    }
}

/// The shape quantities of one node that the time model consumes.
/// Obtained from a real [`DistributedMatrix`] or scaled from one: rows
/// and non-zeros grow linearly with problem size, halos (partition
/// surfaces) with its ⅔ power, and the peer count stays fixed.
#[derive(Clone, Debug)]
pub struct NodeShape {
    /// Owned block rows.
    pub rows: f64,
    /// Stored blocks on owned columns (overlappable compute).
    pub nnzb_local: f64,
    /// Stored blocks on halo columns.
    pub nnzb_remote: f64,
    /// Halo block rows received from each peer (one entry per message).
    pub message_rows: Vec<f64>,
}

impl NodeShape {
    /// Extracts the shape of node `p`.
    pub fn of(dm: &DistributedMatrix, p: usize) -> Self {
        let node = &dm.nodes()[p];
        NodeShape {
            rows: node.rows.len() as f64,
            nnzb_local: node.nnzb_local as f64,
            nnzb_remote: node.nnzb_remote as f64,
            message_rows: dm
                .recv_plan(p)
                .iter()
                .map(|(_, rows)| rows.len() as f64)
                .collect(),
        }
    }

    /// Projects this shape to a problem `factor` times larger: volume
    /// quantities scale linearly, surface quantities (halo rows and the
    /// blocks touching them) by `factor^(2/3)`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0);
        let surface = factor.powf(2.0 / 3.0);
        NodeShape {
            rows: self.rows * factor,
            nnzb_local: self.nnzb_local * factor,
            nnzb_remote: self.nnzb_remote * surface,
            message_rows: self.message_rows.iter().map(|&r| r * surface).collect(),
        }
    }

    fn halo_rows(&self) -> f64 {
        self.message_rows.iter().sum()
    }
}

/// The cluster model: per-node machine plus interconnect.
#[derive(Clone, Copy, Debug)]
pub struct ClusterGspmvModel {
    /// Per-node machine parameters.
    pub machine: MachineProfile,
    /// Interconnect parameters.
    pub network: NetworkModel,
    /// Effective software cost per received message (seconds), on top
    /// of the wire latency: MPI matching/progression and the gather of
    /// elements to be communicated. The paper's Table III shows
    /// communication consuming 88–97% of GSPMV at 32–64 nodes and
    /// "mainly consumed by message-passing latency" — far above what
    /// 1.5 µs of wire latency alone explains — so this term carries the
    /// measured per-message software overhead. Calibrated to 30 µs,
    /// which reproduces the Table III fractions and the Fig. 3/4
    /// flattening of `r(m)` at 64 nodes.
    pub per_message_overhead: f64,
}

impl ClusterGspmvModel {
    /// The paper's cluster: 2.9 GHz WSM nodes on InfiniBand (one socket
    /// used per node).
    pub fn paper_cluster() -> Self {
        ClusterGspmvModel {
            machine: MachineProfile::wsm_cluster_node(),
            network: NetworkModel::infiniband(),
            per_message_overhead: 30e-6,
        }
    }

    /// Models node `p`'s share of one GSPMV with `m` vectors.
    pub fn node_time(
        &self,
        dm: &DistributedMatrix,
        p: usize,
        m: usize,
    ) -> NodeTime {
        self.node_time_shape(&NodeShape::of(dm, p), m)
    }

    /// Models a node described only by its shape quantities — used
    /// directly by experiments that project a small measured structure
    /// to paper scale.
    pub fn node_time_shape(&self, shape: &NodeShape, m: usize) -> NodeTime {
        let local_model = GspmvModel {
            nb: shape.rows,
            nnzb: shape.nnzb_local,
            machine: self.machine,
        };
        // The remote part streams its blocks plus the received halo
        // values; the halo rows stand in for `nb` in the traffic term.
        let remote_model = GspmvModel {
            nb: shape.halo_rows(),
            nnzb: shape.nnzb_remote,
            machine: self.machine,
        };
        let compute_local = local_model.time(m);
        let compute_remote =
            if shape.nnzb_remote == 0.0 { 0.0 } else { remote_model.time(m) };

        let message_bytes: Vec<usize> = shape
            .message_rows
            .iter()
            .map(|&rows| (rows * (3 * m * 8) as f64) as usize)
            .collect();
        let comm = self.network.receive_time(&message_bytes)
            + message_bytes.len() as f64 * self.per_message_overhead;

        NodeTime {
            compute_local,
            compute_remote,
            comm,
            total: comm.max(compute_local) + compute_remote,
        }
    }

    /// Cluster time of one GSPMV: the slowest node.
    pub fn time(&self, dm: &DistributedMatrix, m: usize) -> f64 {
        (0..dm.n_nodes())
            .map(|p| self.node_time(dm, p, m).total)
            .fold(0.0, f64::max)
    }

    /// Relative time `r(m, p) = T(m)/T(1)` on this node count.
    pub fn relative_time(&self, dm: &DistributedMatrix, m: usize) -> f64 {
        self.time(dm, m) / self.time(dm, 1)
    }

    /// Like [`Self::time`], with every node projected to a problem
    /// `factor` times larger (see [`NodeShape::scaled`]).
    pub fn time_scaled(
        &self,
        dm: &DistributedMatrix,
        m: usize,
        factor: f64,
    ) -> f64 {
        (0..dm.n_nodes())
            .map(|p| {
                self.node_time_shape(&NodeShape::of(dm, p).scaled(factor), m).total
            })
            .fold(0.0, f64::max)
    }

    /// Relative time of the projected problem.
    pub fn relative_time_scaled(
        &self,
        dm: &DistributedMatrix,
        m: usize,
        factor: f64,
    ) -> f64 {
        self.time_scaled(dm, m, factor) / self.time_scaled(dm, 1, factor)
    }

    /// Communication fraction of the projected problem at its slowest
    /// node.
    pub fn comm_fraction_scaled(
        &self,
        dm: &DistributedMatrix,
        m: usize,
        factor: f64,
    ) -> f64 {
        (0..dm.n_nodes())
            .map(|p| self.node_time_shape(&NodeShape::of(dm, p).scaled(factor), m))
            .max_by(|a, b| a.total.partial_cmp(&b.total).unwrap())
            .map(|t| t.comm_fraction())
            .unwrap_or(0.0)
    }

    /// Communication fraction at the slowest node (Table III).
    pub fn comm_fraction(&self, dm: &DistributedMatrix, m: usize) -> f64 {
        let p = (0..dm.n_nodes())
            .max_by(|&a, &b| {
                self.node_time(dm, a, m)
                    .total
                    .partial_cmp(&self.node_time(dm, b, m).total)
                    .unwrap()
            })
            .unwrap();
        self.node_time(dm, p, m).comm_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::partition::contiguous_partition;
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    /// A banded matrix standing in for an SD matrix slice: `nb` block
    /// rows, ~2·band stored blocks per row.
    fn banded(nb: usize, band: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(4.0));
            for d in 1..=band {
                if i + d < nb {
                    t.add_symmetric_pair(i, i + d, Block3::scaled_identity(-0.1));
                }
            }
        }
        t.build()
    }

    fn dm(nb: usize, band: usize, nodes: usize) -> DistributedMatrix {
        let a = banded(nb, band);
        let part = contiguous_partition(&a, nodes);
        DistributedMatrix::new(&a, &part)
    }

    #[test]
    fn single_node_matches_serial_model() {
        let d = dm(4000, 12, 1);
        let model = ClusterGspmvModel::paper_cluster();
        let t = model.node_time(&d, 0, 8);
        assert_eq!(t.comm, 0.0);
        assert_eq!(t.compute_remote, 0.0);
        assert!(t.total > 0.0);
    }

    #[test]
    fn comm_fraction_grows_with_node_count() {
        // Table III's mechanism: more nodes ⇒ less compute per node but
        // latency-bound communication ⇒ larger communication fraction.
        let model = ClusterGspmvModel::paper_cluster();
        let f8 = model.comm_fraction(&dm(20_000, 3, 8), 1);
        let f64_ = model.comm_fraction(&dm(20_000, 3, 64), 1);
        assert!(f64_ > f8, "fraction must grow: {f8} -> {f64_}");
        assert!(f64_ > 0.5, "64 nodes should be comm-dominated: {f64_}");
    }

    #[test]
    fn comm_fraction_falls_with_m() {
        // Table III row trend: more vectors amortize latency.
        let model = ClusterGspmvModel::paper_cluster();
        let d = dm(20_000, 3, 32);
        let f1 = model.comm_fraction(&d, 1);
        let f32 = model.comm_fraction(&d, 32);
        assert!(f32 < f1, "{f1} -> {f32}");
    }

    #[test]
    fn relative_time_flattens_at_many_nodes() {
        // Fig. 3/4: at 64 nodes communication latency dominates, so the
        // marginal cost of extra vectors is smaller than on few nodes.
        let model = ClusterGspmvModel::paper_cluster();
        let d1 = dm(20_000, 3, 1);
        let d64 = dm(20_000, 3, 64);
        let r1 = model.relative_time(&d1, 16);
        let r64 = model.relative_time(&d64, 16);
        assert!(
            r64 < r1,
            "r(16) should drop at scale: single {r1}, 64 nodes {r64}"
        );
    }

    #[test]
    fn relative_time_monotone_in_m() {
        let model = ClusterGspmvModel::paper_cluster();
        let d = dm(8_000, 6, 16);
        let mut last = 0.0;
        for m in [1usize, 2, 4, 8, 16, 32] {
            let r = model.relative_time(&d, m);
            assert!(r >= last * 0.999, "m={m}: {r} < {last}");
            last = r;
        }
    }

    #[test]
    fn total_respects_overlap_formula() {
        let model = ClusterGspmvModel::paper_cluster();
        let d = dm(5_000, 4, 8);
        for p in 0..8 {
            let t = model.node_time(&d, p, 4);
            assert!(
                (t.total - (t.comm.max(t.compute_local) + t.compute_remote)).abs()
                    < 1e-15
            );
        }
    }
}
