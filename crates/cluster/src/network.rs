//! Point-to-point network cost model.

/// Latency/bandwidth model of one link; a message of `b` bytes costs
/// `latency + b/bandwidth`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// One-way small-message latency in seconds.
    pub latency: f64,
    /// Unidirectional bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl NetworkModel {
    /// The paper's InfiniBand interconnect: 1.5 µs one-way latency for
    /// 4 bytes, up to 3380 MiB/s unidirectional.
    pub fn infiniband() -> Self {
        NetworkModel { latency: 1.5e-6, bandwidth: 3380.0 * 1024.0 * 1024.0 }
    }

    /// Time for one message of `bytes`.
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Time for a set of incoming messages serialized at one NIC.
    pub fn receive_time(&self, message_bytes: &[usize]) -> f64 {
        message_bytes.iter().map(|&b| self.message_time(b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_messages() {
        let n = NetworkModel::infiniband();
        let t = n.message_time(4);
        assert!((t - 1.5e-6).abs() / t < 0.01);
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let n = NetworkModel::infiniband();
        let t = n.message_time(64 << 20);
        assert!(t > 0.018 && t < 0.020, "{t}");
    }

    #[test]
    fn receive_time_sums_messages() {
        let n = NetworkModel::infiniband();
        let sizes = [1000usize, 2000, 3000];
        let sum: f64 = sizes.iter().map(|&b| n.message_time(b)).sum();
        assert_eq!(n.receive_time(&sizes), sum);
    }
}
