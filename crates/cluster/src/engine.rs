//! Persistent distributed execution engine.
//!
//! [`crate::exchange::execute`] rebuilds channels and respawns every
//! node thread on each call — fine for a one-shot functional check,
//! useless under an iterative solver that multiplies hundreds of times.
//! [`DistEngine`] is the solver-grade executor:
//!
//! * **Persistent node workers.** One thread per node, spawned once at
//!   construction, fed per-multiply jobs over channels and joined on
//!   drop. Halo mailboxes persist across multiplies; because the driver
//!   collects every node's result before issuing the next job, each
//!   round's messages are fully drained within that round and rounds
//!   cannot interleave.
//! * **Comm/compute overlap.** Each multiply follows the paper's
//!   §IV-A2 discipline, the same structure [`crate::sim`] prices:
//!   post halo sends, multiply the *local* sub-matrix (owned columns)
//!   while the halo is in flight, then drain the mailbox and apply the
//!   *remote* sub-matrix. The analytic per-node time is
//!   `max(t_comm, t_local) + t_remote`.
//! * **Phase timings.** Every multiply reports per-node
//!   [`PhaseTimings`] — `comm_wait` (time blocked on the mailbox after
//!   the local multiply finished), `local`, and `remote` — so measured
//!   overlap can be compared against [`crate::sim::ClusterGspmvModel::
//!   node_time`] for the same matrix and partition.
//!
//! The engine implements [`LinearOperator`] over the *permuted* global
//! ordering (see [`DistributedMatrix::permutation`]), so
//! `mrhs_solvers::block_cg` runs on it unchanged — a functional
//! distributed block solve.

use crate::distmat::{DistributedMatrix, PowerContext};
use crate::exchange::{
    apply_remote, pack_rows, scatter_message, CommStats, HaloMessage,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use mrhs_solvers::operator::LinearOperator;
use mrhs_sparse::{active_backend, gspmv_serial, MultiVec};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Wall-clock phase breakdown of one node's share of one multiply, in
/// seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimings {
    /// Time spent blocked on the halo mailbox (measured around the
    /// blocking receives only, after the local multiply completed —
    /// transfer time hidden behind the local multiply does not count).
    pub comm_wait: f64,
    /// Local sub-matrix multiply (owned columns; overlaps transfers).
    pub local: f64,
    /// Remote sub-matrix multiply, including halo unpacking.
    pub remote: f64,
}

impl PhaseTimings {
    /// Total measured time of this node's share.
    pub fn total(&self) -> f64 {
        self.comm_wait + self.local + self.remote
    }

    /// Fraction of this node's activity that is communication wait —
    /// the measured counterpart of
    /// [`crate::sim::NodeTime::comm_fraction`].
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.comm_wait / t
        }
    }
}

/// Per-multiply engine statistics: phase timings and communication
/// volume, both indexed by node.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Per-node phase breakdown.
    pub timings: Vec<PhaseTimings>,
    /// Per-node received bytes/messages.
    pub comm: CommStats,
}

impl EngineStats {
    /// The slowest node's timings (cluster time is the slowest node —
    /// GSPMV synchronizes at the next reduction).
    pub fn slowest(&self) -> PhaseTimings {
        self.timings
            .iter()
            .copied()
            .max_by(|a, b| a.total().total_cmp(&b.total()))
            .unwrap_or_default()
    }
}

/// Mirrors one multiply's stats into the telemetry registry: per-node
/// `engine/node{q}/{comm_wait,local,remote}` child spans, a parent
/// `engine/node{q}` span recorded as their exact sum (so span-consistency
/// checks close to within rounding), and halo traffic counters.
fn record_engine_telemetry(stats: &EngineStats) {
    if !mrhs_telemetry::enabled() {
        return;
    }
    mrhs_telemetry::counter_add("engine/multiplies", 1);
    for (q, t) in stats.timings.iter().enumerate() {
        mrhs_telemetry::record_span_secs(&format!("engine/node{q}"), t.total());
        mrhs_telemetry::record_span_secs(
            &format!("engine/node{q}/comm_wait"),
            t.comm_wait,
        );
        mrhs_telemetry::record_span_secs(&format!("engine/node{q}/local"), t.local);
        mrhs_telemetry::record_span_secs(
            &format!("engine/node{q}/remote"),
            t.remote,
        );
        mrhs_telemetry::counter_add(
            &format!("engine/node{q}/halo_bytes"),
            stats.comm.recv_bytes[q] as u64,
        );
        mrhs_telemetry::counter_add(
            &format!("engine/node{q}/halo_messages"),
            stats.comm.recv_messages[q] as u64,
        );
    }
    trace_engine_spans(stats);
}

/// Emits the per-node phase spans into the caller's trace context (this
/// runs on the thread that invoked the multiply, after the node threads
/// joined). The worker threads measured the durations themselves, so
/// each span is back-dated from "now" — the spans nest under the
/// enclosing `kernel/...` span and carry the true durations even though
/// their wall-clock placement is approximate.
fn trace_engine_spans(stats: &EngineStats) {
    use mrhs_telemetry::trace;
    if !trace::trace_enabled() {
        return;
    }
    let Some((trace_id, parent)) = trace::current() else {
        return;
    };
    let end = trace::now_ns();
    for (q, t) in stats.timings.iter().enumerate() {
        let node_span = trace::mint_span();
        let node_ns = (t.total().max(0.0) * 1e9) as u64;
        trace::emit_span_at(
            trace_id,
            node_span,
            parent,
            &format!("engine/node{q}"),
            end.saturating_sub(node_ns),
            node_ns,
            stats.comm.recv_bytes[q] as u64,
            stats.comm.recv_messages[q] as u64,
        );
        for (phase, secs) in
            [("comm_wait", t.comm_wait), ("local", t.local), ("remote", t.remote)]
        {
            let ns = (secs.max(0.0) * 1e9) as u64;
            trace::emit_span_at(
                trace_id,
                trace::mint_span(),
                node_span,
                &format!("engine/node{q}/{phase}"),
                end.saturating_sub(ns),
                ns,
                0,
                0,
            );
        }
    }
}

enum Job {
    Multiply {
        x_own: MultiVec,
    },
    /// Fused `k`-step power multiply: one widened exchange fetches the
    /// whole dependency frontier, then all `k` levels are computed
    /// locally on the extended matrix.
    MultiplyPowers {
        x_own: MultiVec,
        ctx: Arc<PowerContext>,
    },
    /// One fused group of the shifted Chebyshev three-term recurrence:
    /// `ctx.k` levels computed locally after one widened exchange.
    /// `prev_own` carries `u_{p0−1}` for groups after the first (the
    /// recurrence needs both entry levels' frontiers).
    MultiplyChebyshev {
        x_own: MultiVec,
        prev_own: Option<MultiVec>,
        mid: f64,
        half: f64,
        ctx: Arc<PowerContext>,
    },
    Shutdown,
}

struct NodeResult {
    node: usize,
    /// One output block per power level (a plain multiply returns one).
    ys: Vec<MultiVec>,
    timings: PhaseTimings,
    bytes: usize,
    messages: usize,
}

/// Long-lived distributed executor: one worker thread per node plus a
/// per-multiply rendezvous. See the module docs for the execution
/// structure.
pub struct DistEngine {
    dm: Arc<DistributedMatrix>,
    job_tx: Vec<Sender<Job>>,
    result_rx: Receiver<NodeResult>,
    handles: Vec<JoinHandle<()>>,
    last_stats: Mutex<EngineStats>,
    /// Serializes multiplies: concurrent callers would interleave
    /// rendezvous rounds on the shared mailboxes.
    call_lock: Mutex<()>,
    /// Fused-exchange contexts, built once per distinct `k` and shared
    /// with the workers ([`DistributedMatrix::power_context`] walks the
    /// whole partition graph — far too expensive per multiply).
    power_ctxs: Mutex<HashMap<usize, Arc<PowerContext>>>,
}

impl DistEngine {
    /// Spawns the node workers for `dm`.
    pub fn new(dm: DistributedMatrix) -> Self {
        let dm = Arc::new(dm);
        let p = dm.n_nodes();
        let (result_tx, result_rx) = unbounded::<NodeResult>();
        let halo: Vec<(Sender<HaloMessage>, Receiver<HaloMessage>)> =
            (0..p).map(|_| unbounded()).collect();
        let halo_tx: Vec<Sender<HaloMessage>> =
            halo.iter().map(|(s, _)| s.clone()).collect();

        let mut job_tx = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for (q, (_, halo_rx)) in halo.into_iter().enumerate() {
            let (jtx, jrx) = unbounded::<Job>();
            job_tx.push(jtx);
            let dm = Arc::clone(&dm);
            let halo_tx = halo_tx.clone();
            let result_tx = result_tx.clone();
            handles.push(std::thread::spawn(move || {
                node_main(&dm, q, jrx, halo_rx, halo_tx, result_tx)
            }));
        }

        DistEngine {
            dm,
            job_tx,
            result_rx,
            handles,
            last_stats: Mutex::new(EngineStats::default()),
            call_lock: Mutex::new(()),
            power_ctxs: Mutex::new(HashMap::new()),
        }
    }

    /// The distributed matrix this engine executes.
    pub fn matrix(&self) -> &DistributedMatrix {
        &self.dm
    }

    /// Scalar dimension of the operator.
    pub fn scalar_dim(&self) -> usize {
        self.dm.nb_rows() * 3
    }

    /// One distributed multiply `Y = A·X` (permuted global ordering),
    /// returning the per-node phase timings and communication stats.
    pub fn multiply_into(&self, x: &MultiVec, y: &mut MultiVec) -> EngineStats {
        let _guard = self.call_lock.lock().unwrap();
        let m = x.m();
        assert_eq!(x.n(), self.scalar_dim());
        assert_eq!(y.shape(), (self.scalar_dim(), m));
        let p = self.dm.n_nodes();

        // Rendezvous: hand each worker its owned slice of X …
        for (q, node) in self.dm.nodes().iter().enumerate() {
            let x_own = x.gather_rows(node.rows.start * 3..node.rows.end * 3);
            self.job_tx[q]
                .send(Job::Multiply { x_own })
                .expect("engine worker alive");
        }

        // … and collect every node's result before returning (so the
        // next multiply cannot interleave with this round's messages).
        let mut stats = EngineStats {
            timings: vec![PhaseTimings::default(); p],
            comm: CommStats { recv_bytes: vec![0; p], recv_messages: vec![0; p] },
        };
        for _ in 0..p {
            let res = self.result_rx.recv().expect("engine worker result");
            let base = self.dm.nodes()[res.node].rows.start * 3;
            let part = &res.ys[0];
            for r in 0..part.n() {
                y.row_mut(base + r).copy_from_slice(part.row(r));
            }
            stats.timings[res.node] = res.timings;
            stats.comm.recv_bytes[res.node] = res.bytes;
            stats.comm.recv_messages[res.node] = res.messages;
        }
        record_engine_telemetry(&stats);
        *self.last_stats.lock().unwrap() = stats.clone();
        stats
    }

    /// Convenience wrapper allocating the result.
    pub fn multiply(&self, x: &MultiVec) -> (MultiVec, EngineStats) {
        let mut y = MultiVec::zeros(self.scalar_dim(), x.m());
        let stats = self.multiply_into(x, &mut y);
        (y, stats)
    }

    /// The fused-exchange context for depth `k`, built on first use.
    fn power_context(&self, k: usize) -> Arc<PowerContext> {
        let mut cache = self.power_ctxs.lock().unwrap();
        Arc::clone(
            cache.entry(k).or_insert_with(|| Arc::new(self.dm.power_context(k))),
        )
    }

    /// Fused distributed matrix powers: `outs[p] = A^{p+1}·X` for
    /// `p = 0..k` (permuted global ordering) with **one** widened halo
    /// exchange for all `k` levels — each node fetches its `k`-level
    /// dependency frontier up front and computes every level locally,
    /// so `k` multiplies pay one message per neighbor instead of `k`.
    pub fn multiply_powers_into(
        &self,
        x: &MultiVec,
        outs: &mut [MultiVec],
    ) -> EngineStats {
        let k = outs.len();
        if k == 0 {
            return EngineStats::default();
        }
        let _guard = self.call_lock.lock().unwrap();
        let m = x.m();
        assert_eq!(x.n(), self.scalar_dim());
        for out in outs.iter() {
            assert_eq!(out.shape(), (self.scalar_dim(), m));
        }
        let p = self.dm.n_nodes();
        let ctx = self.power_context(k);

        for (q, node) in self.dm.nodes().iter().enumerate() {
            let x_own = x.gather_rows(node.rows.start * 3..node.rows.end * 3);
            self.job_tx[q]
                .send(Job::MultiplyPowers { x_own, ctx: Arc::clone(&ctx) })
                .expect("engine worker alive");
        }

        let mut stats = EngineStats {
            timings: vec![PhaseTimings::default(); p],
            comm: CommStats { recv_bytes: vec![0; p], recv_messages: vec![0; p] },
        };
        for _ in 0..p {
            let res = self.result_rx.recv().expect("engine worker result");
            let base = self.dm.nodes()[res.node].rows.start * 3;
            for (out, part) in outs.iter_mut().zip(&res.ys) {
                for r in 0..part.n() {
                    out.row_mut(base + r).copy_from_slice(part.row(r));
                }
            }
            stats.timings[res.node] = res.timings;
            stats.comm.recv_bytes[res.node] = res.bytes;
            stats.comm.recv_messages[res.node] = res.messages;
        }
        if mrhs_telemetry::enabled() {
            mrhs_telemetry::counter_add("engine/power_multiplies", 1);
            mrhs_telemetry::counter_add(
                &format!("engine/powers/k{k}/multiplies"),
                1,
            );
        }
        record_engine_telemetry(&stats);
        *self.last_stats.lock().unwrap() = stats.clone();
        stats
    }

    /// Allocating wrapper around [`DistEngine::multiply_powers_into`].
    pub fn multiply_powers(
        &self,
        x: &MultiVec,
        k: usize,
    ) -> (Vec<MultiVec>, EngineStats) {
        let mut outs: Vec<MultiVec> =
            (0..k).map(|_| MultiVec::zeros(self.scalar_dim(), x.m())).collect();
        let stats = self.multiply_powers_into(x, &mut outs);
        (outs, stats)
    }

    /// Stats of the most recent multiply — how solver-driven
    /// applications ([`LinearOperator::apply_multi`] cannot return
    /// stats) retrieve their phase timings.
    pub fn last_stats(&self) -> EngineStats {
        self.last_stats.lock().unwrap().clone()
    }

    /// Fused distributed Chebyshev evaluation
    /// `y = c_0/2 · z + Σ_{p≥1} c_p · T_p(Ã) z`, `Ã = (A − mid·I)/half`
    /// (permuted global ordering) — the distributed counterpart of
    /// [`mrhs_sparse::spmpv_chebyshev`]. Levels are grouped in runs of
    /// up to [`mrhs_sparse::SPMPV_MAX_DEPTH`]; each group pays **one**
    /// widened halo round for all its levels (two messages per peer
    /// after the first group, because the three-term recurrence also
    /// needs the carried `u_{p0−1}` frontier) instead of one round per
    /// operator application.
    pub fn multiply_chebyshev_into(
        &self,
        z: &MultiVec,
        mid: f64,
        half: f64,
        coeffs: &[f64],
        y: &mut MultiVec,
    ) -> EngineStats {
        assert!(!coeffs.is_empty(), "need at least the constant coefficient");
        let _guard = self.call_lock.lock().unwrap();
        let m = z.m();
        let n = self.scalar_dim();
        assert_eq!(z.shape(), (n, m));
        assert_eq!(y.shape(), (n, m));
        let p = self.dm.n_nodes();
        let mut agg = EngineStats {
            timings: vec![PhaseTimings::default(); p],
            comm: CommStats { recv_bytes: vec![0; p], recv_messages: vec![0; p] },
        };

        let half_c0 = 0.5 * coeffs[0];
        for (yv, zv) in y.as_mut_slice().iter_mut().zip(z.as_slice()) {
            *yv = half_c0 * zv;
        }
        let order = coeffs.len() - 1;
        if order == 0 {
            *self.last_stats.lock().unwrap() = agg.clone();
            return agg;
        }

        let depth = order.min(mrhs_sparse::SPMPV_MAX_DEPTH);
        let mut levels: Vec<MultiVec> =
            (0..depth).map(|_| MultiVec::zeros(n, m)).collect();
        // `u_{p0}` and `u_{p0 − 1}` carried between groups, exactly as
        // in the serial wavefront (`chebyshev_wavefront`).
        let mut prev1 = MultiVec::zeros(n, m);
        let mut prev2 = MultiVec::zeros(n, m);
        let mut p0 = 0usize;
        let mut groups = 0u64;
        while p0 < order {
            let d = depth.min(order - p0);
            let ctx = self.power_context(d);
            {
                let entry1 = if p0 == 0 { z } else { &prev1 };
                let entry0 = if p0 == 0 { None } else { Some(&prev2) };
                for (q, node) in self.dm.nodes().iter().enumerate() {
                    let rows = node.rows.start * 3..node.rows.end * 3;
                    let x_own = entry1.gather_rows(rows.clone());
                    let prev_own = entry0.map(|e| e.gather_rows(rows));
                    self.job_tx[q]
                        .send(Job::MultiplyChebyshev {
                            x_own,
                            prev_own,
                            mid,
                            half,
                            ctx: Arc::clone(&ctx),
                        })
                        .expect("engine worker alive");
                }
            }
            for _ in 0..p {
                let res = self.result_rx.recv().expect("engine worker result");
                let base = self.dm.nodes()[res.node].rows.start * 3;
                for (lvl, part) in levels.iter_mut().zip(&res.ys) {
                    for r in 0..part.n() {
                        lvl.row_mut(base + r).copy_from_slice(part.row(r));
                    }
                }
                let t = &mut agg.timings[res.node];
                t.comm_wait += res.timings.comm_wait;
                t.local += res.timings.local;
                t.remote += res.timings.remote;
                agg.comm.recv_bytes[res.node] += res.bytes;
                agg.comm.recv_messages[res.node] += res.messages;
            }
            // Accumulate this group's levels into the Chebyshev sum.
            for (j, lvl) in levels[..d].iter().enumerate() {
                let c = coeffs[p0 + 1 + j];
                for (yv, uv) in y.as_mut_slice().iter_mut().zip(lvl.as_slice()) {
                    *yv += c * *uv;
                }
            }
            p0 += d;
            groups += 1;
            if p0 < order {
                // Carry the group's top two levels into the next group.
                if d >= 2 {
                    std::mem::swap(&mut prev2, &mut levels[d - 2]);
                } else {
                    std::mem::swap(&mut prev2, &mut prev1);
                }
                std::mem::swap(&mut prev1, &mut levels[d - 1]);
            }
        }
        if mrhs_telemetry::enabled() {
            mrhs_telemetry::counter_add("engine/cheb/applies", 1);
            mrhs_telemetry::counter_add("engine/cheb/groups", groups);
        }
        record_engine_telemetry(&agg);
        *self.last_stats.lock().unwrap() = agg.clone();
        agg
    }
}

impl Drop for DistEngine {
    fn drop(&mut self) {
        for tx in &self.job_tx {
            let _ = tx.send(Job::Shutdown);
        }
        for h in std::mem::take(&mut self.handles) {
            let _ = h.join();
        }
    }
}

impl LinearOperator for DistEngine {
    fn dim(&self) -> usize {
        self.scalar_dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.scalar_dim());
        assert_eq!(y.len(), self.scalar_dim());
        let xm = MultiVec::from_vec(x.to_vec());
        let (ym, _) = self.multiply(&xm);
        y.copy_from_slice(ym.as_slice());
    }

    fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec) {
        self.multiply_into(x, y);
    }

    /// Routes the s-step basis sweep through the fused exchange: one
    /// widened halo round instead of `outs.len()` round trips.
    fn apply_powers(&self, x: &MultiVec, outs: &mut [MultiVec]) {
        self.multiply_powers_into(x, outs);
    }

    /// Routes `solvers::chebyshev::apply_multi` through the fused
    /// distributed recurrence: one widened exchange per coefficient
    /// group instead of one halo round per term.
    fn apply_chebyshev(
        &self,
        z: &MultiVec,
        mid: f64,
        half: f64,
        coeffs: &[f64],
        y: &mut MultiVec,
    ) -> bool {
        self.multiply_chebyshev_into(z, mid, half, coeffs, y);
        true
    }
}

/// Worker loop for node `q`: per-multiply, post sends → local multiply
/// (overlapping the in-flight halo) → drain mailbox → remote multiply.
fn node_main(
    dm: &DistributedMatrix,
    q: usize,
    job_rx: Receiver<Job>,
    halo_rx: Receiver<HaloMessage>,
    halo_tx: Vec<Sender<HaloMessage>>,
    result_tx: Sender<NodeResult>,
) {
    let node = &dm.nodes()[q];
    let own = node.rows.len();
    let plan_in = dm.recv_plan(q);
    loop {
        let res = match job_rx.recv() {
            Ok(Job::Multiply { x_own }) => {
                let m = x_own.m();

                // Post sends first — nonblocking, like MPI_Isend.
                for (dst, rows) in dm.send_plan(q) {
                    let data = pack_rows(node, &x_own, rows);
                    if halo_tx[*dst].send(HaloMessage { from: q, data }).is_err() {
                        return; // engine dropped mid-flight
                    }
                }

                // Local multiply while the halo is in flight.
                let t_local = Instant::now();
                let mut y = MultiVec::zeros(own * 3, m);
                gspmv_serial(&node.a_local, &x_own, &mut y);
                let local = t_local.elapsed().as_secs_f64();

                // Drain the mailbox; only the blocking receive counts
                // as wait.
                let mut x_halo = MultiVec::zeros(node.halo.len() * 3, m);
                let mut comm_wait = 0.0f64;
                let mut bytes = 0usize;
                for _ in 0..plan_in.len() {
                    let t_wait = Instant::now();
                    let msg = match halo_rx.recv() {
                        Ok(msg) => msg,
                        Err(_) => return,
                    };
                    comm_wait += t_wait.elapsed().as_secs_f64();
                    let (_, rows) = plan_in
                        .iter()
                        .find(|(peer, _)| *peer == msg.from)
                        .expect("unexpected sender");
                    bytes += msg.data.as_slice().len() * 8;
                    scatter_message(node, rows, &msg.data, &mut x_halo);
                }

                // Remote multiply once the halo is complete.
                let t_remote = Instant::now();
                let mut scratch = MultiVec::zeros(own * 3, m);
                apply_remote(node, &x_halo, &mut y, &mut scratch);
                let remote = t_remote.elapsed().as_secs_f64();

                NodeResult {
                    node: q,
                    ys: vec![y],
                    timings: PhaseTimings { comm_wait, local, remote },
                    bytes,
                    messages: plan_in.len(),
                }
            }
            Ok(Job::MultiplyPowers { x_own, ctx }) => {
                match node_powers(dm, q, &x_own, &ctx, &halo_rx, &halo_tx) {
                    Some(res) => res,
                    None => return,
                }
            }
            Ok(Job::MultiplyChebyshev { x_own, prev_own, mid, half, ctx }) => {
                match node_chebyshev(
                    dm,
                    q,
                    &x_own,
                    prev_own.as_ref(),
                    mid,
                    half,
                    &ctx,
                    &halo_rx,
                    &halo_tx,
                ) {
                    Some(res) => res,
                    None => return,
                }
            }
            Ok(Job::Shutdown) | Err(_) => return,
        };
        if result_tx.send(res).is_err() {
            return;
        }
    }
}

/// One node's share of a fused `k`-step power multiply: post the
/// *widened* sends (the peer's whole frontier slice), seed the extended
/// operand with the owned values, drain the one-shot exchange, then run
/// all `k` levels on the extended matrix — level `p` over the shrinking
/// row range `0..prefix[k−p]`, through the active [`mrhs_sparse::
/// KernelBackend`] row kernel. Returns `None` when the engine dropped
/// mid-flight.
fn node_powers(
    dm: &DistributedMatrix,
    q: usize,
    x_own: &MultiVec,
    ctx: &PowerContext,
    halo_rx: &Receiver<HaloMessage>,
    halo_tx: &[Sender<HaloMessage>],
) -> Option<NodeResult> {
    let node = &dm.nodes()[q];
    let own = node.rows.len();
    let m = x_own.m();
    let np = ctx.node(q);
    let k = ctx.k;
    let ext_n = np.prefix[k] * 3;

    // Widened sends: each peer's whole k-level frontier slice at once.
    for (dst, rows) in ctx.send_plan(q) {
        let data = pack_rows(node, x_own, rows);
        if halo_tx[*dst].send(HaloMessage { from: q, data }).is_err() {
            return None;
        }
    }

    // Seed the extended operand with the owned values while the
    // (single) exchange is in flight.
    let t_local = Instant::now();
    let mut cur = MultiVec::zeros(ext_n, m);
    for r in 0..own * 3 {
        cur.row_mut(r).copy_from_slice(x_own.row(r));
    }
    let local = t_local.elapsed().as_secs_f64();

    // Drain the one-shot widened exchange.
    let plan_in = ctx.recv_plan(q);
    let mut comm_wait = 0.0f64;
    let mut bytes = 0usize;
    for _ in 0..plan_in.len() {
        let t_wait = Instant::now();
        let msg = match halo_rx.recv() {
            Ok(msg) => msg,
            Err(_) => return None,
        };
        comm_wait += t_wait.elapsed().as_secs_f64();
        let (_, rows) = plan_in
            .iter()
            .find(|(peer, _)| *peer == msg.from)
            .expect("unexpected sender");
        bytes += msg.data.as_slice().len() * 8;
        for (i, &g) in rows.iter().enumerate() {
            let c = np.ext_col(g);
            for d in 0..3 {
                cur.row_mut(3 * c + d).copy_from_slice(msg.data.row(3 * i + d));
            }
        }
    }

    // All k levels, communication-free: ping-pong extended buffers,
    // each level computed over its shrinking frontier prefix.
    let t_remote = Instant::now();
    let backend = active_backend();
    let mut next = MultiVec::zeros(ext_n, m);
    let mut ys = Vec::with_capacity(k);
    for p in 1..=k {
        let rows_p = np.prefix[k - p];
        backend.gspmv_rows(
            &np.a_ext,
            cur.as_slice(),
            &mut next.as_mut_slice()[..rows_p * 3 * m],
            m,
            0..rows_p,
        );
        let mut yp = MultiVec::zeros(own * 3, m);
        for r in 0..own * 3 {
            yp.row_mut(r).copy_from_slice(next.row(r));
        }
        ys.push(yp);
        std::mem::swap(&mut cur, &mut next);
    }
    let remote = t_remote.elapsed().as_secs_f64();

    Some(NodeResult {
        node: q,
        ys,
        timings: PhaseTimings { comm_wait, local, remote },
        bytes,
        messages: plan_in.len(),
    })
}

/// One node's share of one fused Chebyshev group: like [`node_powers`],
/// but running `ctx.k` levels of the *shifted three-term recurrence*
/// (`u_{j+1} = 2·Ã·u_j − u_{j−1}`) on the extended matrix through the
/// backend's [`mrhs_sparse::KernelBackend::cheb_shifted_rows`] kernel.
/// Groups after the first also need the carried `u_{p0−1}` frontier, so
/// each peer sends **two** messages over the same FIFO channel — the
/// receiver pairs the first message from a peer with the current level
/// and the second with the previous one.
#[allow(clippy::too_many_arguments)]
fn node_chebyshev(
    dm: &DistributedMatrix,
    q: usize,
    x_own: &MultiVec,
    prev_own: Option<&MultiVec>,
    mid: f64,
    half: f64,
    ctx: &PowerContext,
    halo_rx: &Receiver<HaloMessage>,
    halo_tx: &[Sender<HaloMessage>],
) -> Option<NodeResult> {
    let node = &dm.nodes()[q];
    let own = node.rows.len();
    let m = x_own.m();
    let np = ctx.node(q);
    let d = ctx.k;
    let ext_n = np.prefix[d] * 3;

    // Widened sends: the peer's whole frontier slice of the entry
    // level, followed by the carried previous level when one exists.
    for (dst, rows) in ctx.send_plan(q) {
        let data = pack_rows(node, x_own, rows);
        if halo_tx[*dst].send(HaloMessage { from: q, data }).is_err() {
            return None;
        }
        if let Some(pv) = prev_own {
            let data = pack_rows(node, pv, rows);
            if halo_tx[*dst].send(HaloMessage { from: q, data }).is_err() {
                return None;
            }
        }
    }

    // Seed the extended entry operands with the owned values while the
    // exchange is in flight.
    let t_local = Instant::now();
    let mut entry1 = MultiVec::zeros(ext_n, m);
    for r in 0..own * 3 {
        entry1.row_mut(r).copy_from_slice(x_own.row(r));
    }
    let mut entry0 = prev_own.map(|pv| {
        let mut e = MultiVec::zeros(ext_n, m);
        for r in 0..own * 3 {
            e.row_mut(r).copy_from_slice(pv.row(r));
        }
        e
    });
    let local = t_local.elapsed().as_secs_f64();

    // Drain the exchange: the first message from each peer carries the
    // entry level, the second (same-sender FIFO) the previous one.
    let plan_in = ctx.recv_plan(q);
    let per_peer = if prev_own.is_some() { 2 } else { 1 };
    let mut seen: HashMap<usize, usize> = HashMap::new();
    let mut comm_wait = 0.0f64;
    let mut bytes = 0usize;
    for _ in 0..plan_in.len() * per_peer {
        let t_wait = Instant::now();
        let msg = match halo_rx.recv() {
            Ok(msg) => msg,
            Err(_) => return None,
        };
        comm_wait += t_wait.elapsed().as_secs_f64();
        let (_, rows) = plan_in
            .iter()
            .find(|(peer, _)| *peer == msg.from)
            .expect("unexpected sender");
        bytes += msg.data.as_slice().len() * 8;
        let nth = seen.entry(msg.from).or_insert(0);
        let target = if *nth == 0 {
            &mut entry1
        } else {
            entry0.as_mut().expect("second frontier message without carry")
        };
        *nth += 1;
        for (i, &g) in rows.iter().enumerate() {
            let c = np.ext_col(g);
            for dd in 0..3 {
                target
                    .row_mut(3 * c + dd)
                    .copy_from_slice(msg.data.row(3 * i + dd));
            }
        }
    }

    // All d levels, communication-free, over shrinking frontier
    // prefixes. Level 1 reads the entry levels; deeper levels read the
    // two levels computed just before them.
    let t_remote = Instant::now();
    let backend = active_backend();
    let mut levels: Vec<MultiVec> =
        (0..d).map(|_| MultiVec::zeros(ext_n, m)).collect();
    let mut ys = Vec::with_capacity(d);
    for j in 1..=d {
        let rows_j = np.prefix[d - j];
        let (done, rest) = levels.split_at_mut(j - 1);
        let cur: &[f64] =
            if j == 1 { entry1.as_slice() } else { done[j - 2].as_slice() };
        let prev: Option<&[f64]> = match j {
            1 => entry0.as_ref().map(|e| e.as_slice()),
            2 => Some(entry1.as_slice()),
            _ => Some(done[j - 3].as_slice()),
        };
        backend.cheb_shifted_rows(
            &np.a_ext,
            cur,
            prev,
            &mut rest[0].as_mut_slice()[..rows_j * 3 * m],
            mid,
            half,
            m,
            0..rows_j,
        );
        let mut yj = MultiVec::zeros(own * 3, m);
        for r in 0..own * 3 {
            yj.row_mut(r).copy_from_slice(rest[0].row(r));
        }
        ys.push(yj);
    }
    let remote = t_remote.elapsed().as_secs_f64();

    Some(NodeResult {
        node: q,
        ys,
        timings: PhaseTimings { comm_wait, local, remote },
        bytes,
        messages: plan_in.len() * per_peer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::with_deadline;
    use mrhs_sparse::partition::{contiguous_partition, Partition};
    use mrhs_sparse::reorder::permute_symmetric;
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};
    use std::time::Duration;

    fn random_symmetric(nb: usize, band: usize, seed: u64) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(8.0));
            for d in 1..=band {
                if i + d < nb && next() > 0.0 {
                    let mut b = Block3::ZERO;
                    for v in b.0.iter_mut() {
                        *v = next();
                    }
                    t.add_symmetric_pair(i, i + d, b);
                }
            }
        }
        t.build()
    }

    fn pseudo_multivec(n: usize, m: usize, seed: u64) -> MultiVec {
        let mut state = seed | 1;
        let mut mv = MultiVec::zeros(n, m);
        for v in mv.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        }
        mv
    }

    #[test]
    fn engine_matches_serial_and_respawn_executor() {
        with_deadline(Duration::from_secs(120), || {
            let a = random_symmetric(48, 4, 5);
            for p in [1usize, 2, 4, 7] {
                let part = contiguous_partition(&a, p);
                let dm = DistributedMatrix::new(&a, &part);
                let permuted = permute_symmetric(&a, dm.permutation());
                let engine = DistEngine::new(dm.clone());
                for m in [1usize, 3, 8] {
                    let x = pseudo_multivec(a.n_rows(), m, 7 + m as u64);
                    let (y, stats) = engine.multiply(&x);
                    let mut want = MultiVec::zeros(a.n_rows(), m);
                    gspmv_serial(&permuted, &x, &mut want);
                    for (u, v) in y.as_slice().iter().zip(want.as_slice()) {
                        assert!((u - v).abs() < 1e-12, "{u} vs {v}");
                    }
                    let (y2, stats2) = crate::exchange::execute(&dm, &x);
                    assert_eq!(y.as_slice(), y2.as_slice());
                    assert_eq!(stats.comm, stats2);
                }
            }
        });
    }

    #[test]
    fn repeated_multiplies_reuse_workers() {
        // The rendezvous must stay consistent over many rounds (an
        // iterative solver's access pattern), including m changing
        // between rounds.
        with_deadline(Duration::from_secs(120), || {
            let a = random_symmetric(30, 3, 11);
            let part = contiguous_partition(&a, 4);
            let dm = DistributedMatrix::new(&a, &part);
            let permuted = permute_symmetric(&a, dm.permutation());
            let engine = DistEngine::new(dm);
            for round in 0..25u64 {
                let m = [1usize, 2, 5][round as usize % 3];
                let x = pseudo_multivec(a.n_rows(), m, round + 1);
                let (y, _) = engine.multiply(&x);
                let mut want = MultiVec::zeros(a.n_rows(), m);
                gspmv_serial(&permuted, &x, &mut want);
                for (u, v) in y.as_slice().iter().zip(want.as_slice()) {
                    assert!((u - v).abs() < 1e-12);
                }
            }
        });
    }

    #[test]
    fn engine_survives_empty_partitions() {
        with_deadline(Duration::from_secs(60), || {
            let a = random_symmetric(5, 2, 3);
            let assignment: Vec<u32> = (0..5).map(|i| (2 * i as u32) % 9).collect();
            let part = Partition::from_assignment(9, assignment);
            let dm = DistributedMatrix::new(&a, &part);
            let permuted = permute_symmetric(&a, dm.permutation());
            let engine = DistEngine::new(dm);
            let x = pseudo_multivec(a.n_rows(), 4, 13);
            let (y, _) = engine.multiply(&x);
            let mut want = MultiVec::zeros(a.n_rows(), 4);
            gspmv_serial(&permuted, &x, &mut want);
            for (u, v) in y.as_slice().iter().zip(want.as_slice()) {
                assert!((u - v).abs() < 1e-12);
            }
        });
    }

    #[test]
    fn phase_timings_are_populated() {
        with_deadline(Duration::from_secs(60), || {
            let a = random_symmetric(40, 3, 17);
            let part = contiguous_partition(&a, 4);
            let dm = DistributedMatrix::new(&a, &part);
            let engine = DistEngine::new(dm);
            let x = pseudo_multivec(a.n_rows(), 8, 3);
            let (_, stats) = engine.multiply(&x);
            assert_eq!(stats.timings.len(), 4);
            for t in &stats.timings {
                assert!(t.local > 0.0, "local multiply must be timed");
                assert!(t.comm_wait >= 0.0 && t.remote >= 0.0);
                assert!((0.0..=1.0).contains(&t.comm_fraction()));
            }
            assert_eq!(engine.last_stats().comm, stats.comm);
        });
    }

    #[test]
    fn telemetry_spans_close_exactly_per_node() {
        with_deadline(Duration::from_secs(60), || {
            mrhs_telemetry::set_enabled(true);
            let a = random_symmetric(36, 3, 23);
            let part = contiguous_partition(&a, 3);
            let dm = DistributedMatrix::new(&a, &part);
            let engine = DistEngine::new(dm);
            let before = mrhs_telemetry::snapshot();
            let x = pseudo_multivec(a.n_rows(), 4, 29);
            let (_, stats) = engine.multiply(&x);
            let diff = mrhs_telemetry::snapshot().diff(&before);

            for q in 0..3 {
                let parent = diff.span_secs(&format!("engine/node{q}"));
                let children = diff.span_secs(&format!("engine/node{q}/comm_wait"))
                    + diff.span_secs(&format!("engine/node{q}/local"))
                    + diff.span_secs(&format!("engine/node{q}/remote"));
                // The parent span is recorded as the exact sum of its
                // children, so the decomposition closes to rounding even
                // if another test records engine spans concurrently.
                assert!(
                    (parent - children).abs() <= 1e-6,
                    "node{q}: parent {parent} vs children {children}"
                );
                assert!(
                    diff.counter(&format!("engine/node{q}/halo_bytes"))
                        >= stats.comm.recv_bytes[q] as u64
                );
                assert!(
                    diff.counter(&format!("engine/node{q}/halo_messages"))
                        >= stats.comm.recv_messages[q] as u64
                );
            }
            assert!(diff.counter("engine/multiplies") >= 1);
        });
    }

    #[test]
    fn fused_powers_match_serial_powers() {
        with_deadline(Duration::from_secs(120), || {
            let a = random_symmetric(48, 4, 5);
            for p in [1usize, 2, 4] {
                let part = contiguous_partition(&a, p);
                let dm = DistributedMatrix::new(&a, &part);
                let permuted = permute_symmetric(&a, dm.permutation());
                let engine = DistEngine::new(dm);
                for k in [1usize, 2, 3] {
                    let m = 4;
                    let x = pseudo_multivec(a.n_rows(), m, 31 + k as u64);
                    let (ys, stats) = engine.multiply_powers(&x, k);
                    assert_eq!(ys.len(), k);
                    // Serial reference: repeated full-matrix multiplies.
                    let mut want = Vec::with_capacity(k);
                    let mut prev = x.clone();
                    for _ in 0..k {
                        let mut y = MultiVec::zeros(a.n_rows(), m);
                        gspmv_serial(&permuted, &prev, &mut y);
                        want.push(y.clone());
                        prev = y;
                    }
                    for (lvl, (y, w)) in ys.iter().zip(&want).enumerate() {
                        let scale = w.max_abs().max(1.0);
                        for (u, v) in y.as_slice().iter().zip(w.as_slice()) {
                            assert!(
                                (u - v).abs() <= 1e-12 * scale,
                                "p={p} k={k} level {lvl}: {u} vs {v}"
                            );
                        }
                    }
                    assert_eq!(stats.timings.len(), p);
                }
            }
        });
    }

    #[test]
    fn fused_powers_use_one_exchange_round() {
        with_deadline(Duration::from_secs(60), || {
            // Deterministic chain: every partition boundary carries an
            // edge, so each interior node talks to both neighbours.
            let nb = 32;
            let mut t = BlockTripletBuilder::square(nb);
            for i in 0..nb {
                t.add(i, i, Block3::scaled_identity(4.0));
                if i + 1 < nb {
                    t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
                }
            }
            let a = t.build();
            let part = contiguous_partition(&a, 4);
            let dm = DistributedMatrix::new(&a, &part);
            let engine = DistEngine::new(dm);
            let x = pseudo_multivec(a.n_rows(), 4, 3);
            let k = 3;

            // k separate multiplies: each interior node waits on its
            // 2 neighbours every round → 2k messages.
            let mut y = MultiVec::zeros(a.n_rows(), 4);
            let mut rounds_msgs = [0usize; 4];
            let mut cur = x.clone();
            for _ in 0..k {
                let stats = engine.multiply_into(&cur, &mut y);
                for (t, s) in rounds_msgs.iter_mut().zip(&stats.comm.recv_messages)
                {
                    *t += s;
                }
                cur = y.clone();
            }

            // One fused call: the same k levels, one widened round.
            let (_, fused) = engine.multiply_powers(&x, k);
            for (q, &total) in rounds_msgs.iter().enumerate() {
                assert!(
                    fused.comm.recv_messages[q] < total,
                    "node {q}: fused {} vs {total} over {k} rounds",
                    fused.comm.recv_messages[q],
                );
                // The widened exchange still talks to the same peers
                // only once.
                assert_eq!(fused.comm.recv_messages[q] * k, total, "node {q}");
            }
        });
    }

    #[test]
    fn apply_powers_goes_through_fused_exchange() {
        with_deadline(Duration::from_secs(60), || {
            mrhs_telemetry::set_enabled(true);
            let a = random_symmetric(30, 2, 19);
            let part = contiguous_partition(&a, 3);
            let dm = DistributedMatrix::new(&a, &part);
            let engine = DistEngine::new(dm);
            let x = pseudo_multivec(a.n_rows(), 3, 11);
            let before = mrhs_telemetry::snapshot();
            let mut outs: Vec<MultiVec> =
                (0..3).map(|_| MultiVec::zeros(a.n_rows(), 3)).collect();
            LinearOperator::apply_powers(&engine, &x, &mut outs);
            let diff = mrhs_telemetry::snapshot().diff(&before);
            assert!(diff.counter("engine/power_multiplies") >= 1);
            assert!(diff.counter("engine/powers/k3/multiplies") >= 1);

            // And the values chain correctly: outs[1] == A·outs[0].
            let mut want = MultiVec::zeros(a.n_rows(), 3);
            engine.multiply_into(&outs[0], &mut want);
            let scale = want.max_abs().max(1.0);
            for (u, v) in outs[1].as_slice().iter().zip(want.as_slice()) {
                assert!((u - v).abs() <= 1e-12 * scale);
            }
        });
    }

    #[test]
    fn fused_powers_survive_empty_partitions() {
        with_deadline(Duration::from_secs(60), || {
            let a = random_symmetric(5, 2, 3);
            let assignment: Vec<u32> = (0..5).map(|i| (2 * i as u32) % 9).collect();
            let part = Partition::from_assignment(9, assignment);
            let dm = DistributedMatrix::new(&a, &part);
            let permuted = permute_symmetric(&a, dm.permutation());
            let engine = DistEngine::new(dm);
            let x = pseudo_multivec(a.n_rows(), 2, 13);
            let (ys, _) = engine.multiply_powers(&x, 2);
            let mut y1 = MultiVec::zeros(a.n_rows(), 2);
            gspmv_serial(&permuted, &x, &mut y1);
            let mut y2 = MultiVec::zeros(a.n_rows(), 2);
            gspmv_serial(&permuted, &y1, &mut y2);
            for (got, want) in ys.iter().zip([&y1, &y2]) {
                let scale = want.max_abs().max(1.0);
                for (u, v) in got.as_slice().iter().zip(want.as_slice()) {
                    assert!((u - v).abs() <= 1e-12 * scale);
                }
            }
        });
    }

    #[test]
    fn sstep_cg_on_engine_pays_one_exchange_per_cycle() {
        with_deadline(Duration::from_secs(120), || {
            // SPD chain so the solver converges; the s-step basis sweep
            // must route through the fused exchange.
            mrhs_telemetry::set_enabled(true);
            let nb = 24;
            let mut t = BlockTripletBuilder::square(nb);
            for i in 0..nb {
                t.add(i, i, Block3::scaled_identity(4.0));
                if i + 1 < nb {
                    t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
                }
            }
            let a = t.build();
            let part = contiguous_partition(&a, 3);
            let dm = DistributedMatrix::new(&a, &part);
            let engine = DistEngine::new(dm);

            let m = 2;
            let b = pseudo_multivec(a.n_rows(), m, 9);
            let mut x = MultiVec::zeros(a.n_rows(), m);
            let before = mrhs_telemetry::snapshot();
            let cfg = mrhs_solvers::SolveConfig { tol: 1e-8, max_iter: 400 };
            let res = mrhs_solvers::sstep_cg(&engine, &b, &mut x, 3, &cfg);
            assert!(res.converged, "{res:?}");
            let diff = mrhs_telemetry::snapshot().diff(&before);
            assert_eq!(
                diff.counter("engine/powers/k3/multiplies"),
                res.cycles as u64
            );
        });
    }

    #[test]
    fn fused_chebyshev_matches_serial_recurrence() {
        with_deadline(Duration::from_secs(120), || {
            let a = random_symmetric(48, 4, 41);
            let (mid, half) = (8.0, 4.0);
            for p in [1usize, 2, 4] {
                let part = contiguous_partition(&a, p);
                let dm = DistributedMatrix::new(&a, &part);
                let permuted = permute_symmetric(&a, dm.permutation());
                let engine = DistEngine::new(dm);
                // Orders below, at, and across the fused-group depth
                // (4), so the inter-group carry path is exercised.
                for order in [1usize, 3, 4, 7, 10] {
                    let coeffs: Vec<f64> =
                        (0..=order).map(|k| 1.0 / (1.0 + k as f64)).collect();
                    for m in [1usize, 4] {
                        let z =
                            pseudo_multivec(a.n_rows(), m, (order * 8 + m) as u64);
                        let mut y = MultiVec::zeros(a.n_rows(), m);
                        engine.multiply_chebyshev_into(
                            &z, mid, half, &coeffs, &mut y,
                        );
                        let mut want = MultiVec::zeros(a.n_rows(), m);
                        mrhs_sparse::spmpv_chebyshev(
                            &permuted, &z, mid, half, &coeffs, &mut want,
                        );
                        let scale = want.max_abs().max(1.0);
                        for (u, v) in y.as_slice().iter().zip(want.as_slice()) {
                            assert!(
                                (u - v).abs() <= 1e-11 * scale,
                                "p={p} order={order} m={m}: {u} vs {v}"
                            );
                        }
                    }
                }
            }
        });
    }

    #[test]
    fn fused_chebyshev_pays_one_exchange_per_group() {
        with_deadline(Duration::from_secs(60), || {
            // Deterministic chain: every partition boundary carries an
            // edge, so each interior node talks to both neighbours.
            let nb = 32;
            let mut t = BlockTripletBuilder::square(nb);
            for i in 0..nb {
                t.add(i, i, Block3::scaled_identity(4.0));
                if i + 1 < nb {
                    t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
                }
            }
            let a = t.build();
            let part = contiguous_partition(&a, 4);
            let dm = DistributedMatrix::new(&a, &part);
            let engine = DistEngine::new(dm);
            let z = pseudo_multivec(a.n_rows(), 4, 3);

            // Order 8 = two fused groups of depth 4. The first group
            // exchanges one frontier message per peer, the second two
            // (entry level + carried previous level): 3 messages per
            // peer total, against 8 unfused rounds.
            let coeffs = vec![0.7; 9];
            let mut y = MultiVec::zeros(a.n_rows(), 4);
            let stats =
                engine.multiply_chebyshev_into(&z, 4.0, 2.0, &coeffs, &mut y);

            let mut round = MultiVec::zeros(a.n_rows(), 4);
            let per_round = engine.multiply_into(&z, &mut round);
            for q in 0..4 {
                let peers = per_round.comm.recv_messages[q];
                assert_eq!(
                    stats.comm.recv_messages[q],
                    3 * peers,
                    "node {q}: fused groups must pay 1 + 2 peer messages"
                );
                assert!(
                    stats.comm.recv_messages[q] < 8 * peers || peers == 0,
                    "node {q}: fused must beat one round per term"
                );
            }
        });
    }

    #[test]
    fn solver_chebyshev_routes_through_fused_engine_path() {
        with_deadline(Duration::from_secs(60), || {
            mrhs_telemetry::set_enabled(true);
            let a = random_symmetric(30, 2, 53);
            let part = contiguous_partition(&a, 3);
            let dm = DistributedMatrix::new(&a, &part);
            let permuted = permute_symmetric(&a, dm.permutation());
            let engine = DistEngine::new(dm);

            // The operator's spectrum lives in the filter interval by
            // Gershgorin (diagonal 8, small off-diagonals).
            let cheb = mrhs_solvers::ChebyshevSqrt::new(0.5, 16.0, 7);
            let z = pseudo_multivec(a.n_rows(), 3, 17);
            let mut y = MultiVec::zeros(a.n_rows(), 3);
            let before = mrhs_telemetry::snapshot();
            cheb.apply_multi(&engine, &z, &mut y);
            let diff = mrhs_telemetry::snapshot().diff(&before);
            assert!(
                diff.counter("engine/cheb/applies") >= 1,
                "apply_multi must route through the fused engine path"
            );
            assert_eq!(diff.counter("engine/cheb/groups"), 2, "7 = 4 + 3 levels");

            // And the fused path matches the serial fused kernel.
            let mut want = MultiVec::zeros(a.n_rows(), 3);
            cheb.apply_multi(&permuted, &z, &mut want);
            let scale = want.max_abs().max(1.0);
            for (u, v) in y.as_slice().iter().zip(want.as_slice()) {
                assert!((u - v).abs() <= 1e-11 * scale, "{u} vs {v}");
            }
        });
    }

    /// Exercised by the 4-thread CI leg: four persistent workers, many
    /// rounds, all results bit-identical to the serial kernel.
    #[test]
    fn engine_four_nodes_four_threads() {
        with_deadline(Duration::from_secs(120), || {
            let a = random_symmetric(64, 5, 29);
            let part = contiguous_partition(&a, 4);
            let dm = DistributedMatrix::new(&a, &part);
            let permuted = permute_symmetric(&a, dm.permutation());
            let engine = DistEngine::new(dm);
            for round in 0..10 {
                let x = pseudo_multivec(a.n_rows(), 16, 100 + round);
                let (y, stats) = engine.multiply(&x);
                let mut want = MultiVec::zeros(a.n_rows(), 16);
                gspmv_serial(&permuted, &x, &mut want);
                for (u, v) in y.as_slice().iter().zip(want.as_slice()) {
                    assert!((u - v).abs() < 1e-12);
                }
                assert!(stats.comm.total_bytes() > 0);
            }
        });
    }
}
