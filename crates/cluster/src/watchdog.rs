//! Hang guard for threaded tests.
//!
//! The halo-exchange executors block on channel receives; a plan bug
//! (wrong expected-message count) turns into a deadlock, and a
//! deadlocked test *stalls* CI instead of failing it. Threaded tests in
//! this crate therefore run their bodies under [`with_deadline`], which
//! converts "still blocked after the deadline" into a loud panic.

use std::sync::mpsc::{channel, RecvTimeoutError};
use std::time::Duration;

/// Runs `f` on a helper thread and panics if it has not finished within
/// `deadline`. Panics inside `f` are propagated. On timeout the hung
/// thread is leaked (it is blocked for good — that is the bug being
/// reported), which is acceptable in a test process.
pub fn with_deadline<T, F>(deadline: Duration, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(deadline) {
        Ok(v) => {
            handle.join().expect("watchdog worker");
            v
        }
        Err(RecvTimeoutError::Disconnected) => match handle.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => panic!("watchdog worker vanished without a result"),
        },
        Err(RecvTimeoutError::Timeout) => panic!(
            "watchdog: work still blocked after {deadline:?} — likely deadlock"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_results_through() {
        let v = with_deadline(Duration::from_secs(5), || 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    #[should_panic(expected = "likely deadlock")]
    fn flags_a_hang() {
        let (_tx, rx) = channel::<()>();
        with_deadline(Duration::from_millis(50), move || {
            let _ = rx.recv(); // blocks forever: _tx is kept alive above
        });
    }

    #[test]
    #[should_panic(expected = "inner failure")]
    fn propagates_panics() {
        with_deadline(Duration::from_secs(5), || panic!("inner failure"));
    }
}
