//! Row-partitioned matrix with halo bookkeeping.
//!
//! After partitioning, the global matrix is permuted so each node owns
//! a contiguous block-row range, and each node's rows are split into
//! *two* local matrices — the structure the overlap discipline of
//! §IV-A2 needs at execution time:
//!
//! * `a_local`: the blocks whose columns the node owns. Multiplying by
//!   it needs no communication, so it runs while the halo is in flight.
//! * `a_remote`: the blocks referencing off-node columns, rewritten
//!   onto the compact halo index space (one column per distinct remote
//!   block row, sorted). It runs once the halo has arrived.
//!
//! Off-node columns appear once in the halo regardless of how many
//! local rows reference them — the deduplication that makes
//! communication volume scale with the partition surface, not with nnz.
//!
//! Communication *plans* are precomputed here too, once, at
//! construction: for every node, which peers it receives from (and
//! which rows), and — the inversion of that — which peers it must send
//! to. Executors ([`crate::exchange`], [`crate::engine`]) only read
//! these cached plans; nothing is recomputed per multiply.

use mrhs_sparse::partition::Partition;
use mrhs_sparse::reorder::permute_symmetric;
use mrhs_sparse::{BcrsMatrix, Block3};
use std::ops::Range;

/// A halo transfer plan: `(peer, rows)` pairs, with rows in ascending
/// global (permuted) block-row order within each peer.
pub type CommPlan = Vec<(usize, Vec<usize>)>;

/// One node's slice of the matrix.
#[derive(Clone, Debug)]
pub struct NodeMatrix {
    /// Global (permuted) block rows owned: `range.start..range.end`.
    pub rows: Range<usize>,
    /// Blocks on owned columns: `rows.len()` block rows ×
    /// `rows.len()` block columns in local indexing (own col `c` maps
    /// to `c − rows.start`). The overlappable part of the multiply.
    pub a_local: BcrsMatrix,
    /// Blocks on halo columns: `rows.len()` block rows ×
    /// `halo.len()` block columns (halo col at halo index `h` maps to
    /// `h`). Applied after the halo arrives.
    pub a_remote: BcrsMatrix,
    /// Global (permuted) block rows this node must receive, sorted.
    pub halo: Vec<usize>,
    /// Count of stored blocks whose column is owned locally (the part
    /// of the multiply that can overlap communication).
    pub nnzb_local: usize,
    /// Count of stored blocks referencing halo columns.
    pub nnzb_remote: usize,
}

impl NodeMatrix {
    /// Total stored blocks across both parts.
    pub fn nnz_blocks(&self) -> usize {
        self.nnzb_local + self.nnzb_remote
    }
}

/// A matrix distributed over `n_nodes` row partitions.
#[derive(Clone, Debug)]
pub struct DistributedMatrix {
    nodes: Vec<NodeMatrix>,
    /// `perm[new] = old` mapping from permuted to original block rows.
    perm: Vec<usize>,
    nb: usize,
    /// `range_starts[p] = nodes[p].rows.start` — non-decreasing, used
    /// for O(log p) ownership lookups.
    range_starts: Vec<usize>,
    /// Per node: which peers send to it, and which rows (cached).
    recv_plans: Vec<CommPlan>,
    /// Per node: which peers it must send to, and which rows (the
    /// inversion of `recv_plans`, cached).
    send_plans: Vec<CommPlan>,
}

impl DistributedMatrix {
    /// Partitions and permutes `a` (square, symmetric pattern assumed)
    /// according to `partition`.
    pub fn new(a: &BcrsMatrix, partition: &Partition) -> Self {
        assert_eq!(a.nb_rows(), a.nb_cols());
        let perm = partition.permutation();
        let permuted = permute_symmetric(a, &perm);
        let nb = permuted.nb_rows();

        // Contiguous ranges per node in the permuted ordering.
        let mut ranges: Vec<Range<usize>> = Vec::new();
        {
            let parts = partition.parts();
            let mut start = 0usize;
            for p in &parts {
                ranges.push(start..start + p.len());
                start += p.len();
            }
            assert_eq!(start, nb);
        }

        let nodes: Vec<NodeMatrix> = ranges
            .iter()
            .map(|range| build_node(&permuted, range.clone()))
            .collect();

        let range_starts: Vec<usize> = nodes.iter().map(|n| n.rows.start).collect();

        // Receive plans: one binary search per halo row. Halo rows are
        // sorted and node ranges are contiguous, so owners come out
        // grouped; still, group defensively by owner.
        let p = nodes.len();
        let recv_plans: Vec<CommPlan> = nodes
            .iter()
            .enumerate()
            .map(|(q, node)| {
                let mut plan: CommPlan = Vec::new();
                for &row in &node.halo {
                    let owner = owner_from_starts(&range_starts, nb, row);
                    debug_assert_ne!(owner, q);
                    match plan.last_mut() {
                        Some((peer, rows)) if *peer == owner => rows.push(row),
                        _ => plan.push((owner, vec![row])),
                    }
                }
                plan
            })
            .collect();

        // Send plans: invert the receive plans once.
        let mut send_plans: Vec<CommPlan> = vec![Vec::new(); p];
        for (dst, plan) in recv_plans.iter().enumerate() {
            for (src, rows) in plan {
                send_plans[*src].push((dst, rows.clone()));
            }
        }

        DistributedMatrix { nodes, perm, nb, range_starts, recv_plans, send_plans }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Global block-row count.
    pub fn nb_rows(&self) -> usize {
        self.nb
    }

    /// Per-node slices.
    pub fn nodes(&self) -> &[NodeMatrix] {
        &self.nodes
    }

    /// The permutation applied (`perm[new] = old`).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// The node owning permuted block row `row` — O(log p) binary
    /// search over the contiguous range starts.
    pub fn owner_of(&self, row: usize) -> usize {
        owner_from_starts(&self.range_starts, self.nb, row)
    }

    /// For node `p`: the halo rows grouped by owning peer, as
    /// `(peer, rows)` with rows in the order they appear in `halo`.
    /// Cached at construction.
    pub fn recv_plan(&self, p: usize) -> &[(usize, Vec<usize>)] {
        &self.recv_plans[p]
    }

    /// For node `p`: the owned rows it must ship, grouped by
    /// destination peer, as `(peer, rows)`. Cached at construction
    /// (the inversion of the receive plans).
    pub fn send_plan(&self, p: usize) -> &[(usize, Vec<usize>)] {
        &self.send_plans[p]
    }

    /// Total halo entries (block rows) each node receives; index = node.
    pub fn recv_volumes(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.halo.len()).collect()
    }

    /// Reconstructs one global (permuted) block row by merging the
    /// owner's `a_local` (columns offset back by `rows.start`) and
    /// `a_remote` (halo indices mapped back to global ids) — both are
    /// column-sorted within their own index space, so a two-pointer
    /// merge restores the exact global column order without storing
    /// the permuted matrix.
    pub fn global_block_row(&self, row: usize) -> (Vec<usize>, Vec<Block3>) {
        let node = &self.nodes[self.owner_of(row)];
        let bi = row - node.rows.start;
        let (lc, lb) = node.a_local.block_row(bi);
        let (rc, rb) = node.a_remote.block_row(bi);
        let mut cols = Vec::with_capacity(lc.len() + rc.len());
        let mut blocks = Vec::with_capacity(lc.len() + rc.len());
        let (mut i, mut j) = (0, 0);
        while i < lc.len() || j < rc.len() {
            let gl = lc.get(i).map(|&c| c as usize + node.rows.start);
            let gr = rc.get(j).map(|&c| node.halo[c as usize]);
            match (gl, gr) {
                (Some(l), Some(r)) if l < r => {
                    cols.push(l);
                    blocks.push(lb[i]);
                    i += 1;
                }
                (Some(_), Some(_)) | (None, Some(_)) => {
                    cols.push(gr.unwrap());
                    blocks.push(rb[j]);
                    j += 1;
                }
                (Some(l), None) => {
                    cols.push(l);
                    blocks.push(lb[i]);
                    i += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        (cols, blocks)
    }

    /// Builds the fused `k`-step exchange/compute context: for every
    /// node, the BFS rings of the `k`-level dependency frontier, the
    /// extended matrix over them, and the widened communication plans
    /// that fetch the whole frontier in **one** exchange. See
    /// [`PowerContext`].
    pub fn power_context(&self, k: usize) -> PowerContext {
        assert!(k >= 1, "power context needs k >= 1");
        let p = self.nodes.len();
        let nodes: Vec<NodePower> =
            (0..p).map(|q| self.build_node_power(q, k)).collect();

        // Widened receive plans: every frontier row (rings 1..k),
        // grouped by owner in ascending-row order per peer.
        let recv_plans: Vec<CommPlan> = (0..p)
            .map(|q| {
                let mut plan: CommPlan = Vec::new();
                let own = self.nodes[q].rows.len();
                let mut frontier: Vec<usize> = nodes[q].ext_cols[own..].to_vec();
                frontier.sort_unstable();
                for row in frontier {
                    let owner = self.owner_of(row);
                    debug_assert_ne!(owner, q);
                    match plan.iter_mut().find(|(peer, _)| *peer == owner) {
                        Some((_, rows)) => rows.push(row),
                        None => plan.push((owner, vec![row])),
                    }
                }
                plan
            })
            .collect();

        let mut send_plans: Vec<CommPlan> = vec![Vec::new(); p];
        for (dst, plan) in recv_plans.iter().enumerate() {
            for (src, rows) in plan {
                send_plans[*src].push((dst, rows.clone()));
            }
        }

        PowerContext { k, nodes, recv_plans, send_plans }
    }

    fn build_node_power(&self, q: usize, k: usize) -> NodePower {
        let node = &self.nodes[q];
        let own = node.rows.len();

        // BFS rings: ring 0 = owned rows, ring j = rows at graph
        // distance exactly j (symmetric pattern, so a row's columns are
        // its neighbors). The extended column space is rings 0..=k in
        // order [own | ring₁ | … | ring_k]; rows 0..prefix[k−1] carry
        // matrix rows (level p only needs values out to ring k−p).
        let mut visited: Vec<bool> = vec![false; self.nb];
        for r in node.rows.clone() {
            visited[r] = true;
        }
        let mut ext_cols: Vec<usize> = node.rows.clone().collect();
        let mut prefix = Vec::with_capacity(k + 1);
        prefix.push(own);
        let mut ring_start = 0;
        for _ in 1..=k {
            let mut next: Vec<usize> = Vec::new();
            for &r in &ext_cols[ring_start..] {
                let (cols, _) = self.global_block_row(r);
                for c in cols {
                    if !visited[c] {
                        visited[c] = true;
                        next.push(c);
                    }
                }
            }
            next.sort_unstable();
            ring_start = ext_cols.len();
            ext_cols.extend_from_slice(&next);
            prefix.push(ext_cols.len());
        }

        // Global id → extended column index, binary-searchable.
        let mut col_of_global: Vec<(usize, usize)> =
            ext_cols.iter().copied().enumerate().map(|(i, g)| (g, i)).collect();
        col_of_global.sort_unstable_by_key(|&(g, _)| g);

        // Extended matrix: rows = prefix[k−1] frontier rows, columns =
        // the full prefix[k] space, each row rebuilt from the global
        // matrix and remapped (then re-sorted) onto extended indices.
        let ext_rows = prefix[k - 1];
        let mut row_ptr = vec![0usize; ext_rows + 1];
        let mut cols_out: Vec<u32> = Vec::new();
        let mut blocks_out: Vec<Block3> = Vec::new();
        for (bi, &g) in ext_cols[..ext_rows].iter().enumerate() {
            let (cols, blocks) = self.global_block_row(g);
            let mut entries: Vec<(u32, Block3)> = cols
                .iter()
                .zip(&blocks)
                .map(|(&c, b)| {
                    let local = col_of_global
                        [col_of_global.partition_point(|&(gc, _)| gc < c)]
                    .1;
                    (local as u32, *b)
                })
                .collect();
            entries.sort_unstable_by_key(|&(c, _)| c);
            for (c, b) in entries {
                cols_out.push(c);
                blocks_out.push(b);
            }
            row_ptr[bi + 1] = cols_out.len();
        }
        let a_ext = BcrsMatrix::from_parts(
            ext_rows, prefix[k], row_ptr, cols_out, blocks_out,
        );

        NodePower { a_ext, prefix, ext_cols, col_of_global }
    }
}

/// One node's share of a fused `k`-step matrix-power context.
#[derive(Clone, Debug)]
pub struct NodePower {
    /// Extended matrix over the dependency frontier: `prefix[k−1]`
    /// block rows × `prefix[k]` block columns, both in extended local
    /// indexing (`[own | ring₁ | … | ring_k]`).
    pub a_ext: BcrsMatrix,
    /// `prefix[j]` = block rows within graph distance `j` of the owned
    /// range (`prefix[0]` = owned count). Level `p` of the power sweep
    /// computes rows `0..prefix[k−p]`.
    pub prefix: Vec<usize>,
    /// Global (permuted) block row id of each extended index.
    pub ext_cols: Vec<usize>,
    /// `(global row, extended index)` sorted by global row, for
    /// scattering received frontier values.
    pub col_of_global: Vec<(usize, usize)>,
}

impl NodePower {
    /// Extended index of global block row `g` (must be in the frontier).
    pub fn ext_col(&self, g: usize) -> usize {
        let i = self.col_of_global.partition_point(|&(gc, _)| gc < g);
        debug_assert_eq!(self.col_of_global[i].0, g);
        self.col_of_global[i].1
    }
}

/// Precomputed state for fused `k`-step halo exchange: instead of `k`
/// round trips (one per multiply), each node fetches its whole
/// `k`-level dependency frontier — BFS rings 1..k of the partition
/// graph — in **one** widened exchange, then computes all `k` power
/// levels locally on the extended matrix (level `p` over rows
/// `0..prefix[k−p]`, shrinking toward the owned range). `k` multiplies
/// thus cost one (larger) message per neighbor instead of `k`.
///
/// Built once per `k` by [`DistributedMatrix::power_context`] and
/// cached by the engine; executors only read it.
#[derive(Clone, Debug)]
pub struct PowerContext {
    /// Number of fused power levels.
    pub k: usize,
    nodes: Vec<NodePower>,
    recv_plans: Vec<CommPlan>,
    send_plans: Vec<CommPlan>,
}

impl PowerContext {
    /// Node `q`'s extended matrix and frontier bookkeeping.
    pub fn node(&self, q: usize) -> &NodePower {
        &self.nodes[q]
    }

    /// The widened receive plan for node `q` (whole frontier, one
    /// exchange).
    pub fn recv_plan(&self, q: usize) -> &[(usize, Vec<usize>)] {
        &self.recv_plans[q]
    }

    /// The widened send plan for node `q`.
    pub fn send_plan(&self, q: usize) -> &[(usize, Vec<usize>)] {
        &self.send_plans[q]
    }
}

/// Binary search for the owner of `row` among contiguous, possibly
/// empty ranges described by their starts. Among nodes tied on the same
/// start, all but the last are empty, and `partition_point` lands on
/// the last — the only one that can own anything.
fn owner_from_starts(starts: &[usize], nb: usize, row: usize) -> usize {
    assert!(row < nb, "row {row} out of range (nb = {nb})");
    starts.partition_point(|&s| s <= row) - 1
}

fn build_node(permuted: &BcrsMatrix, rows: Range<usize>) -> NodeMatrix {
    let sub = permuted.submatrix(rows.clone());
    let own = rows.len();

    // Collect sorted unique halo columns.
    let mut halo: Vec<usize> = sub
        .col_idx()
        .iter()
        .map(|&c| c as usize)
        .filter(|c| !rows.contains(c))
        .collect();
    halo.sort_unstable();
    halo.dedup();

    // Split each row's blocks: own col c → c − rows.start into
    // `a_local`; halo col → its halo index into `a_remote`. Column
    // order within a row is preserved from the (sorted) submatrix, so
    // both parts come out column-sorted.
    let mut local_row_ptr = vec![0usize; own + 1];
    let mut local_cols: Vec<u32> = Vec::new();
    let mut local_blocks: Vec<Block3> = Vec::new();
    let mut remote_row_ptr = vec![0usize; own + 1];
    let mut remote_cols: Vec<u32> = Vec::new();
    let mut remote_blocks: Vec<Block3> = Vec::new();
    for bi in 0..own {
        let (cols, blks) = sub.block_row(bi);
        for (c, b) in cols.iter().zip(blks) {
            let c = *c as usize;
            if rows.contains(&c) {
                local_cols.push((c - rows.start) as u32);
                local_blocks.push(*b);
            } else {
                let h = halo.binary_search(&c).unwrap();
                remote_cols.push(h as u32);
                remote_blocks.push(*b);
            }
        }
        local_row_ptr[bi + 1] = local_cols.len();
        remote_row_ptr[bi + 1] = remote_cols.len();
    }
    let nnzb_local = local_cols.len();
    let nnzb_remote = remote_cols.len();
    let a_local =
        BcrsMatrix::from_parts(own, own, local_row_ptr, local_cols, local_blocks);
    let a_remote = BcrsMatrix::from_parts(
        own,
        halo.len(),
        remote_row_ptr,
        remote_cols,
        remote_blocks,
    );
    NodeMatrix { rows, a_local, a_remote, halo, nnzb_local, nnzb_remote }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::partition::contiguous_partition;
    use mrhs_sparse::{Block3, BlockTripletBuilder};

    fn chain(nb: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(4.0));
            if i + 1 < nb {
                t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
            }
        }
        t.build()
    }

    #[test]
    fn chain_halo_is_partition_boundary() {
        let a = chain(16);
        let part = contiguous_partition(&a, 4);
        let dm = DistributedMatrix::new(&a, &part);
        assert_eq!(dm.n_nodes(), 4);
        // interior nodes need one row from each side
        assert_eq!(dm.nodes()[1].halo.len(), 2);
        // end nodes need one
        assert_eq!(dm.nodes()[0].halo.len(), 1);
        assert_eq!(dm.nodes()[3].halo.len(), 1);
    }

    #[test]
    fn local_matrices_cover_all_blocks() {
        let a = chain(20);
        let part = contiguous_partition(&a, 3);
        let dm = DistributedMatrix::new(&a, &part);
        let total: usize = dm.nodes().iter().map(|n| n.nnz_blocks()).sum();
        assert_eq!(total, a.nnz_blocks());
        for n in dm.nodes() {
            assert_eq!(n.nnzb_local, n.a_local.nnz_blocks());
            assert_eq!(n.nnzb_remote, n.a_remote.nnz_blocks());
            assert_eq!(n.a_local.nb_cols(), n.rows.len(), "own column space");
            assert_eq!(n.a_remote.nb_cols(), n.halo.len(), "halo column space");
        }
    }

    #[test]
    fn recv_plan_points_at_true_owners() {
        let a = chain(12);
        let part = contiguous_partition(&a, 3);
        let dm = DistributedMatrix::new(&a, &part);
        for p in 0..3 {
            for (peer, rows) in dm.recv_plan(p) {
                assert_ne!(*peer, p);
                for r in rows {
                    assert!(dm.nodes()[*peer].rows.contains(r));
                }
            }
        }
    }

    #[test]
    fn send_plan_is_inverse_of_recv_plan() {
        let a = chain(18);
        let part = contiguous_partition(&a, 4);
        let dm = DistributedMatrix::new(&a, &part);
        for src in 0..4 {
            for (dst, rows) in dm.send_plan(src) {
                // every shipped row is owned by src …
                for r in rows {
                    assert!(dm.nodes()[src].rows.contains(r));
                }
                // … and appears verbatim in dst's receive plan for src.
                let recv = dm
                    .recv_plan(*dst)
                    .iter()
                    .find(|(peer, _)| *peer == src)
                    .expect("matching recv entry");
                assert_eq!(&recv.1, rows);
            }
        }
    }

    #[test]
    fn single_node_has_no_halo() {
        let a = chain(10);
        let part = contiguous_partition(&a, 1);
        let dm = DistributedMatrix::new(&a, &part);
        assert!(dm.nodes()[0].halo.is_empty());
        assert_eq!(dm.nodes()[0].nnzb_remote, 0);
        assert!(dm.recv_plan(0).is_empty());
        assert!(dm.send_plan(0).is_empty());
    }

    #[test]
    fn owner_of_is_consistent_with_ranges() {
        let a = chain(9);
        let part = contiguous_partition(&a, 3);
        let dm = DistributedMatrix::new(&a, &part);
        for row in 0..9 {
            let p = dm.owner_of(row);
            assert!(dm.nodes()[p].rows.contains(&row));
        }
    }

    #[test]
    fn global_block_row_reconstructs_permuted_matrix() {
        let a = chain(14);
        let part = contiguous_partition(&a, 4);
        let dm = DistributedMatrix::new(&a, &part);
        let permuted = permute_symmetric(&a, dm.permutation());
        for row in 0..14 {
            let (cols, blocks) = dm.global_block_row(row);
            let (want_cols, want_blocks) = permuted.block_row(row);
            let want_cols: Vec<usize> =
                want_cols.iter().map(|&c| c as usize).collect();
            assert_eq!(cols, want_cols, "row {row}");
            for (b, w) in blocks.iter().zip(want_blocks) {
                assert_eq!(b.0, w.0, "row {row}");
            }
        }
    }

    #[test]
    fn power_context_frontier_covers_k_rings() {
        let a = chain(16);
        let part = contiguous_partition(&a, 4);
        let dm = DistributedMatrix::new(&a, &part);
        for k in 1..=3 {
            let ctx = dm.power_context(k);
            for q in 0..4 {
                let np = ctx.node(q);
                let own = dm.nodes()[q].rows.len();
                assert_eq!(np.prefix[0], own);
                assert_eq!(np.prefix.len(), k + 1);
                // On a chain, each ring adds one row per open side.
                let sides = usize::from(q > 0) + usize::from(q < 3);
                for j in 1..=k {
                    assert_eq!(np.prefix[j] - np.prefix[j - 1], sides);
                }
                assert_eq!(np.a_ext.nb_rows(), np.prefix[k - 1]);
                assert_eq!(np.a_ext.nb_cols(), np.prefix[k]);
                // Widened plans fetch the whole frontier, one entry per
                // neighbouring peer, and sends invert receives.
                let frontier: usize =
                    ctx.recv_plan(q).iter().map(|(_, rows)| rows.len()).sum();
                assert_eq!(frontier, np.prefix[k] - own);
                for (peer, rows) in ctx.recv_plan(q) {
                    assert_ne!(*peer, q);
                    for r in rows {
                        assert!(dm.nodes()[*peer].rows.contains(r));
                    }
                    let send = ctx
                        .send_plan(*peer)
                        .iter()
                        .find(|(dst, _)| *dst == q)
                        .expect("inverse send entry");
                    assert_eq!(&send.1, rows);
                }
            }
        }
    }

    #[test]
    fn power_context_k1_matches_plain_halo() {
        let a = chain(12);
        let part = contiguous_partition(&a, 3);
        let dm = DistributedMatrix::new(&a, &part);
        let ctx = dm.power_context(1);
        for q in 0..3 {
            let np = ctx.node(q);
            let node = &dm.nodes()[q];
            // Ring 1 is exactly the classic halo.
            let ring1: Vec<usize> =
                np.ext_cols[np.prefix[0]..np.prefix[1]].to_vec();
            assert_eq!(ring1, node.halo);
        }
    }

    #[test]
    fn owner_of_skips_empty_partitions() {
        // More nodes than block rows: some partitions are empty and
        // share identical (empty) row ranges — ownership must still
        // resolve to the node that actually holds each row.
        let a = chain(3);
        let assignment = vec![0u32, 2, 4];
        let part = Partition::from_assignment(5, assignment);
        let dm = DistributedMatrix::new(&a, &part);
        assert_eq!(dm.n_nodes(), 5);
        for row in 0..3 {
            let p = dm.owner_of(row);
            assert!(
                dm.nodes()[p].rows.contains(&row),
                "row {row} resolved to node {p} with range {:?}",
                dm.nodes()[p].rows
            );
            assert!(!dm.nodes()[p].rows.is_empty());
        }
    }
}
