//! Row-partitioned matrix with halo bookkeeping.
//!
//! After partitioning, the global matrix is permuted so each node owns
//! a contiguous block-row range, and each node's rows are split into
//! *two* local matrices — the structure the overlap discipline of
//! §IV-A2 needs at execution time:
//!
//! * `a_local`: the blocks whose columns the node owns. Multiplying by
//!   it needs no communication, so it runs while the halo is in flight.
//! * `a_remote`: the blocks referencing off-node columns, rewritten
//!   onto the compact halo index space (one column per distinct remote
//!   block row, sorted). It runs once the halo has arrived.
//!
//! Off-node columns appear once in the halo regardless of how many
//! local rows reference them — the deduplication that makes
//! communication volume scale with the partition surface, not with nnz.
//!
//! Communication *plans* are precomputed here too, once, at
//! construction: for every node, which peers it receives from (and
//! which rows), and — the inversion of that — which peers it must send
//! to. Executors ([`crate::exchange`], [`crate::engine`]) only read
//! these cached plans; nothing is recomputed per multiply.

use mrhs_sparse::partition::Partition;
use mrhs_sparse::reorder::permute_symmetric;
use mrhs_sparse::{BcrsMatrix, Block3};
use std::ops::Range;

/// A halo transfer plan: `(peer, rows)` pairs, with rows in ascending
/// global (permuted) block-row order within each peer.
pub type CommPlan = Vec<(usize, Vec<usize>)>;

/// One node's slice of the matrix.
#[derive(Clone, Debug)]
pub struct NodeMatrix {
    /// Global (permuted) block rows owned: `range.start..range.end`.
    pub rows: Range<usize>,
    /// Blocks on owned columns: `rows.len()` block rows ×
    /// `rows.len()` block columns in local indexing (own col `c` maps
    /// to `c − rows.start`). The overlappable part of the multiply.
    pub a_local: BcrsMatrix,
    /// Blocks on halo columns: `rows.len()` block rows ×
    /// `halo.len()` block columns (halo col at halo index `h` maps to
    /// `h`). Applied after the halo arrives.
    pub a_remote: BcrsMatrix,
    /// Global (permuted) block rows this node must receive, sorted.
    pub halo: Vec<usize>,
    /// Count of stored blocks whose column is owned locally (the part
    /// of the multiply that can overlap communication).
    pub nnzb_local: usize,
    /// Count of stored blocks referencing halo columns.
    pub nnzb_remote: usize,
}

impl NodeMatrix {
    /// Total stored blocks across both parts.
    pub fn nnz_blocks(&self) -> usize {
        self.nnzb_local + self.nnzb_remote
    }
}

/// A matrix distributed over `n_nodes` row partitions.
#[derive(Clone, Debug)]
pub struct DistributedMatrix {
    nodes: Vec<NodeMatrix>,
    /// `perm[new] = old` mapping from permuted to original block rows.
    perm: Vec<usize>,
    nb: usize,
    /// `range_starts[p] = nodes[p].rows.start` — non-decreasing, used
    /// for O(log p) ownership lookups.
    range_starts: Vec<usize>,
    /// Per node: which peers send to it, and which rows (cached).
    recv_plans: Vec<CommPlan>,
    /// Per node: which peers it must send to, and which rows (the
    /// inversion of `recv_plans`, cached).
    send_plans: Vec<CommPlan>,
}

impl DistributedMatrix {
    /// Partitions and permutes `a` (square, symmetric pattern assumed)
    /// according to `partition`.
    pub fn new(a: &BcrsMatrix, partition: &Partition) -> Self {
        assert_eq!(a.nb_rows(), a.nb_cols());
        let perm = partition.permutation();
        let permuted = permute_symmetric(a, &perm);
        let nb = permuted.nb_rows();

        // Contiguous ranges per node in the permuted ordering.
        let mut ranges: Vec<Range<usize>> = Vec::new();
        {
            let parts = partition.parts();
            let mut start = 0usize;
            for p in &parts {
                ranges.push(start..start + p.len());
                start += p.len();
            }
            assert_eq!(start, nb);
        }

        let nodes: Vec<NodeMatrix> = ranges
            .iter()
            .map(|range| build_node(&permuted, range.clone()))
            .collect();

        let range_starts: Vec<usize> = nodes.iter().map(|n| n.rows.start).collect();

        // Receive plans: one binary search per halo row. Halo rows are
        // sorted and node ranges are contiguous, so owners come out
        // grouped; still, group defensively by owner.
        let p = nodes.len();
        let recv_plans: Vec<CommPlan> = nodes
            .iter()
            .enumerate()
            .map(|(q, node)| {
                let mut plan: CommPlan = Vec::new();
                for &row in &node.halo {
                    let owner = owner_from_starts(&range_starts, nb, row);
                    debug_assert_ne!(owner, q);
                    match plan.last_mut() {
                        Some((peer, rows)) if *peer == owner => rows.push(row),
                        _ => plan.push((owner, vec![row])),
                    }
                }
                plan
            })
            .collect();

        // Send plans: invert the receive plans once.
        let mut send_plans: Vec<CommPlan> = vec![Vec::new(); p];
        for (dst, plan) in recv_plans.iter().enumerate() {
            for (src, rows) in plan {
                send_plans[*src].push((dst, rows.clone()));
            }
        }

        DistributedMatrix { nodes, perm, nb, range_starts, recv_plans, send_plans }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Global block-row count.
    pub fn nb_rows(&self) -> usize {
        self.nb
    }

    /// Per-node slices.
    pub fn nodes(&self) -> &[NodeMatrix] {
        &self.nodes
    }

    /// The permutation applied (`perm[new] = old`).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// The node owning permuted block row `row` — O(log p) binary
    /// search over the contiguous range starts.
    pub fn owner_of(&self, row: usize) -> usize {
        owner_from_starts(&self.range_starts, self.nb, row)
    }

    /// For node `p`: the halo rows grouped by owning peer, as
    /// `(peer, rows)` with rows in the order they appear in `halo`.
    /// Cached at construction.
    pub fn recv_plan(&self, p: usize) -> &[(usize, Vec<usize>)] {
        &self.recv_plans[p]
    }

    /// For node `p`: the owned rows it must ship, grouped by
    /// destination peer, as `(peer, rows)`. Cached at construction
    /// (the inversion of the receive plans).
    pub fn send_plan(&self, p: usize) -> &[(usize, Vec<usize>)] {
        &self.send_plans[p]
    }

    /// Total halo entries (block rows) each node receives; index = node.
    pub fn recv_volumes(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.halo.len()).collect()
    }
}

/// Binary search for the owner of `row` among contiguous, possibly
/// empty ranges described by their starts. Among nodes tied on the same
/// start, all but the last are empty, and `partition_point` lands on
/// the last — the only one that can own anything.
fn owner_from_starts(starts: &[usize], nb: usize, row: usize) -> usize {
    assert!(row < nb, "row {row} out of range (nb = {nb})");
    starts.partition_point(|&s| s <= row) - 1
}

fn build_node(permuted: &BcrsMatrix, rows: Range<usize>) -> NodeMatrix {
    let sub = permuted.submatrix(rows.clone());
    let own = rows.len();

    // Collect sorted unique halo columns.
    let mut halo: Vec<usize> = sub
        .col_idx()
        .iter()
        .map(|&c| c as usize)
        .filter(|c| !rows.contains(c))
        .collect();
    halo.sort_unstable();
    halo.dedup();

    // Split each row's blocks: own col c → c − rows.start into
    // `a_local`; halo col → its halo index into `a_remote`. Column
    // order within a row is preserved from the (sorted) submatrix, so
    // both parts come out column-sorted.
    let mut local_row_ptr = vec![0usize; own + 1];
    let mut local_cols: Vec<u32> = Vec::new();
    let mut local_blocks: Vec<Block3> = Vec::new();
    let mut remote_row_ptr = vec![0usize; own + 1];
    let mut remote_cols: Vec<u32> = Vec::new();
    let mut remote_blocks: Vec<Block3> = Vec::new();
    for bi in 0..own {
        let (cols, blks) = sub.block_row(bi);
        for (c, b) in cols.iter().zip(blks) {
            let c = *c as usize;
            if rows.contains(&c) {
                local_cols.push((c - rows.start) as u32);
                local_blocks.push(*b);
            } else {
                let h = halo.binary_search(&c).unwrap();
                remote_cols.push(h as u32);
                remote_blocks.push(*b);
            }
        }
        local_row_ptr[bi + 1] = local_cols.len();
        remote_row_ptr[bi + 1] = remote_cols.len();
    }
    let nnzb_local = local_cols.len();
    let nnzb_remote = remote_cols.len();
    let a_local =
        BcrsMatrix::from_parts(own, own, local_row_ptr, local_cols, local_blocks);
    let a_remote = BcrsMatrix::from_parts(
        own,
        halo.len(),
        remote_row_ptr,
        remote_cols,
        remote_blocks,
    );
    NodeMatrix { rows, a_local, a_remote, halo, nnzb_local, nnzb_remote }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::partition::contiguous_partition;
    use mrhs_sparse::{Block3, BlockTripletBuilder};

    fn chain(nb: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(4.0));
            if i + 1 < nb {
                t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
            }
        }
        t.build()
    }

    #[test]
    fn chain_halo_is_partition_boundary() {
        let a = chain(16);
        let part = contiguous_partition(&a, 4);
        let dm = DistributedMatrix::new(&a, &part);
        assert_eq!(dm.n_nodes(), 4);
        // interior nodes need one row from each side
        assert_eq!(dm.nodes()[1].halo.len(), 2);
        // end nodes need one
        assert_eq!(dm.nodes()[0].halo.len(), 1);
        assert_eq!(dm.nodes()[3].halo.len(), 1);
    }

    #[test]
    fn local_matrices_cover_all_blocks() {
        let a = chain(20);
        let part = contiguous_partition(&a, 3);
        let dm = DistributedMatrix::new(&a, &part);
        let total: usize = dm.nodes().iter().map(|n| n.nnz_blocks()).sum();
        assert_eq!(total, a.nnz_blocks());
        for n in dm.nodes() {
            assert_eq!(n.nnzb_local, n.a_local.nnz_blocks());
            assert_eq!(n.nnzb_remote, n.a_remote.nnz_blocks());
            assert_eq!(n.a_local.nb_cols(), n.rows.len(), "own column space");
            assert_eq!(n.a_remote.nb_cols(), n.halo.len(), "halo column space");
        }
    }

    #[test]
    fn recv_plan_points_at_true_owners() {
        let a = chain(12);
        let part = contiguous_partition(&a, 3);
        let dm = DistributedMatrix::new(&a, &part);
        for p in 0..3 {
            for (peer, rows) in dm.recv_plan(p) {
                assert_ne!(*peer, p);
                for r in rows {
                    assert!(dm.nodes()[*peer].rows.contains(r));
                }
            }
        }
    }

    #[test]
    fn send_plan_is_inverse_of_recv_plan() {
        let a = chain(18);
        let part = contiguous_partition(&a, 4);
        let dm = DistributedMatrix::new(&a, &part);
        for src in 0..4 {
            for (dst, rows) in dm.send_plan(src) {
                // every shipped row is owned by src …
                for r in rows {
                    assert!(dm.nodes()[src].rows.contains(r));
                }
                // … and appears verbatim in dst's receive plan for src.
                let recv = dm
                    .recv_plan(*dst)
                    .iter()
                    .find(|(peer, _)| *peer == src)
                    .expect("matching recv entry");
                assert_eq!(&recv.1, rows);
            }
        }
    }

    #[test]
    fn single_node_has_no_halo() {
        let a = chain(10);
        let part = contiguous_partition(&a, 1);
        let dm = DistributedMatrix::new(&a, &part);
        assert!(dm.nodes()[0].halo.is_empty());
        assert_eq!(dm.nodes()[0].nnzb_remote, 0);
        assert!(dm.recv_plan(0).is_empty());
        assert!(dm.send_plan(0).is_empty());
    }

    #[test]
    fn owner_of_is_consistent_with_ranges() {
        let a = chain(9);
        let part = contiguous_partition(&a, 3);
        let dm = DistributedMatrix::new(&a, &part);
        for row in 0..9 {
            let p = dm.owner_of(row);
            assert!(dm.nodes()[p].rows.contains(&row));
        }
    }

    #[test]
    fn owner_of_skips_empty_partitions() {
        // More nodes than block rows: some partitions are empty and
        // share identical (empty) row ranges — ownership must still
        // resolve to the node that actually holds each row.
        let a = chain(3);
        let assignment = vec![0u32, 2, 4];
        let part = Partition::from_assignment(5, assignment);
        let dm = DistributedMatrix::new(&a, &part);
        assert_eq!(dm.n_nodes(), 5);
        for row in 0..3 {
            let p = dm.owner_of(row);
            assert!(
                dm.nodes()[p].rows.contains(&row),
                "row {row} resolved to node {p} with range {:?}",
                dm.nodes()[p].rows
            );
            assert!(!dm.nodes()[p].rows.is_empty());
        }
    }
}
