//! Row-partitioned matrix with halo bookkeeping.
//!
//! After partitioning, the global matrix is permuted so each node owns
//! a contiguous block-row range, and each node's rows are rewritten
//! onto a compact local column space: own rows first, then the halo
//! (remote block rows it must receive), in sorted order. Off-node
//! columns appear once in the halo regardless of how many local rows
//! reference them — the deduplication that makes communication volume
//! scale with the partition surface, not with nnz.

use mrhs_sparse::partition::Partition;
use mrhs_sparse::reorder::permute_symmetric;
use mrhs_sparse::{BcrsMatrix, Block3};
use std::ops::Range;

/// One node's slice of the matrix.
#[derive(Clone, Debug)]
pub struct NodeMatrix {
    /// Global (permuted) block rows owned: `range.start..range.end`.
    pub rows: Range<usize>,
    /// The local matrix: `rows.len()` block rows, and
    /// `rows.len() + halo.len()` block columns in local indexing.
    pub local: BcrsMatrix,
    /// Global (permuted) block rows this node must receive, sorted.
    pub halo: Vec<usize>,
    /// Count of stored blocks whose column is owned locally (the part
    /// of the multiply that can overlap communication).
    pub nnzb_local: usize,
    /// Count of stored blocks referencing halo columns.
    pub nnzb_remote: usize,
}

/// A matrix distributed over `n_nodes` row partitions.
#[derive(Clone, Debug)]
pub struct DistributedMatrix {
    nodes: Vec<NodeMatrix>,
    /// `perm[new] = old` mapping from permuted to original block rows.
    perm: Vec<usize>,
    nb: usize,
}

impl DistributedMatrix {
    /// Partitions and permutes `a` (square, symmetric pattern assumed)
    /// according to `partition`.
    pub fn new(a: &BcrsMatrix, partition: &Partition) -> Self {
        assert_eq!(a.nb_rows(), a.nb_cols());
        let perm = partition.permutation();
        let permuted = permute_symmetric(a, &perm);
        let nb = permuted.nb_rows();

        // Contiguous ranges per node in the permuted ordering.
        let mut ranges: Vec<Range<usize>> = Vec::new();
        {
            let parts = partition.parts();
            let mut start = 0usize;
            for p in &parts {
                ranges.push(start..start + p.len());
                start += p.len();
            }
            assert_eq!(start, nb);
        }

        let nodes = ranges
            .iter()
            .map(|range| build_node(&permuted, range.clone()))
            .collect();

        DistributedMatrix { nodes, perm, nb }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Global block-row count.
    pub fn nb_rows(&self) -> usize {
        self.nb
    }

    /// Per-node slices.
    pub fn nodes(&self) -> &[NodeMatrix] {
        &self.nodes
    }

    /// The permutation applied (`perm[new] = old`).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// The node owning permuted block row `row`.
    pub fn owner_of(&self, row: usize) -> usize {
        self.nodes
            .iter()
            .position(|n| n.rows.contains(&row))
            .expect("row out of range")
    }

    /// For node `p`: the halo rows grouped by owning peer, as
    /// `(peer, rows)` with rows in the order they appear in `halo`.
    pub fn recv_plan(&self, p: usize) -> Vec<(usize, Vec<usize>)> {
        let mut plan: Vec<(usize, Vec<usize>)> = Vec::new();
        for &row in &self.nodes[p].halo {
            let owner = self.owner_of(row);
            debug_assert_ne!(owner, p);
            match plan.iter_mut().find(|(q, _)| *q == owner) {
                Some((_, rows)) => rows.push(row),
                None => plan.push((owner, vec![row])),
            }
        }
        plan
    }

    /// Total halo entries (block rows) each node receives; index = node.
    pub fn recv_volumes(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.halo.len()).collect()
    }
}

fn build_node(permuted: &BcrsMatrix, rows: Range<usize>) -> NodeMatrix {
    let sub = permuted.submatrix(rows.clone());
    let own = rows.len();

    // Collect sorted unique halo columns.
    let mut halo: Vec<usize> = sub
        .col_idx()
        .iter()
        .map(|&c| c as usize)
        .filter(|c| !rows.contains(c))
        .collect();
    halo.sort_unstable();
    halo.dedup();

    // Remap columns: own col c → c − rows.start; halo col → own + index.
    let mut nnzb_local = 0usize;
    let mut nnzb_remote = 0usize;
    let mut row_ptr = vec![0usize; own + 1];
    let mut col_idx: Vec<u32> = Vec::with_capacity(sub.nnz_blocks());
    let mut blocks: Vec<Block3> = Vec::with_capacity(sub.nnz_blocks());
    let mut entries: Vec<(u32, Block3)> = Vec::new();
    for bi in 0..own {
        let (cols, blks) = sub.block_row(bi);
        entries.clear();
        for (c, b) in cols.iter().zip(blks) {
            let c = *c as usize;
            let local_c = if rows.contains(&c) {
                nnzb_local += 1;
                c - rows.start
            } else {
                nnzb_remote += 1;
                own + halo.binary_search(&c).unwrap()
            };
            entries.push((local_c as u32, *b));
        }
        entries.sort_unstable_by_key(|&(c, _)| c);
        for (c, b) in &entries {
            col_idx.push(*c);
            blocks.push(*b);
        }
        row_ptr[bi + 1] = col_idx.len();
    }
    let local =
        BcrsMatrix::from_parts(own, own + halo.len(), row_ptr, col_idx, blocks);
    NodeMatrix { rows, local, halo, nnzb_local, nnzb_remote }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::partition::contiguous_partition;
    use mrhs_sparse::{Block3, BlockTripletBuilder};

    fn chain(nb: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(4.0));
            if i + 1 < nb {
                t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
            }
        }
        t.build()
    }

    #[test]
    fn chain_halo_is_partition_boundary() {
        let a = chain(16);
        let part = contiguous_partition(&a, 4);
        let dm = DistributedMatrix::new(&a, &part);
        assert_eq!(dm.n_nodes(), 4);
        // interior nodes need one row from each side
        assert_eq!(dm.nodes()[1].halo.len(), 2);
        // end nodes need one
        assert_eq!(dm.nodes()[0].halo.len(), 1);
        assert_eq!(dm.nodes()[3].halo.len(), 1);
    }

    #[test]
    fn local_matrices_cover_all_blocks() {
        let a = chain(20);
        let part = contiguous_partition(&a, 3);
        let dm = DistributedMatrix::new(&a, &part);
        let total: usize = dm.nodes().iter().map(|n| n.local.nnz_blocks()).sum();
        assert_eq!(total, a.nnz_blocks());
        for n in dm.nodes() {
            assert_eq!(n.nnzb_local + n.nnzb_remote, n.local.nnz_blocks());
            assert_eq!(
                n.local.nb_cols(),
                n.rows.len() + n.halo.len(),
                "compact column space"
            );
        }
    }

    #[test]
    fn recv_plan_points_at_true_owners() {
        let a = chain(12);
        let part = contiguous_partition(&a, 3);
        let dm = DistributedMatrix::new(&a, &part);
        for p in 0..3 {
            for (peer, rows) in dm.recv_plan(p) {
                assert_ne!(peer, p);
                for r in rows {
                    assert!(dm.nodes()[peer].rows.contains(&r));
                }
            }
        }
    }

    #[test]
    fn single_node_has_no_halo() {
        let a = chain(10);
        let part = contiguous_partition(&a, 1);
        let dm = DistributedMatrix::new(&a, &part);
        assert!(dm.nodes()[0].halo.is_empty());
        assert_eq!(dm.nodes()[0].nnzb_remote, 0);
    }

    #[test]
    fn owner_of_is_consistent_with_ranges() {
        let a = chain(9);
        let part = contiguous_partition(&a, 3);
        let dm = DistributedMatrix::new(&a, &part);
        for row in 0..9 {
            let p = dm.owner_of(row);
            assert!(dm.nodes()[p].rows.contains(&row));
        }
    }
}
