//! Multi-node MRHS projection — the experiment the paper leaves for the
//! future ("we do not currently have a distributed memory SD simulation
//! code", §V-A), composed from two pieces it *does* validate: the
//! cluster GSPMV time model (Figs. 3–4) and the Eq. 9 step-time
//! decomposition. Every solver iteration costs one distributed GSPMV,
//! so substituting the cluster `T(m, p)` into Eq. 9 predicts the MRHS
//! speedup at any node count.

use crate::distmat::DistributedMatrix;
use crate::sim::ClusterGspmvModel;
use mrhs_perfmodel::mrhs_model::SolveCounts;

/// Eq. 9 evaluated with distributed GSPMV times, projected to a problem
/// `scale` times larger (see [`crate::sim::NodeShape::scaled`]).
#[derive(Clone, Copy, Debug)]
pub struct ClusterMrhsModel {
    /// The distributed GSPMV time model.
    pub gspmv: ClusterGspmvModel,
    /// Measured (or assumed) iteration counts.
    pub counts: SolveCounts,
    /// Fraction of the cold iteration count the auxiliary block solve
    /// runs (the driver stops it at `guess_tol`; 2/3 for 1e-4 vs 1e-6).
    pub block_fraction: f64,
}

impl ClusterMrhsModel {
    /// Average per-step time of the MRHS algorithm on `dm`'s partition
    /// layout with `m` right-hand sides.
    pub fn tmrhs(&self, dm: &DistributedMatrix, m: usize, scale: f64) -> f64 {
        assert!(m >= 1);
        let t1 = self.gspmv.time_scaled(dm, 1, scale);
        let t_m = self.gspmv.time_scaled(dm, m, scale);
        let c = &self.counts;
        let block = (c.cold as f64 * self.block_fraction).max(1.0);
        let (n1, n2, cmax) =
            (c.warm_first as f64, c.warm_second as f64, c.cheb_order as f64);
        let mf = m as f64;
        ((block + cmax) * t_m + (mf * n1 + mf * n2 + (mf - 1.0) * cmax) * t1) / mf
    }

    /// Average per-step time of the original algorithm on the cluster.
    pub fn toriginal(&self, dm: &DistributedMatrix, scale: f64) -> f64 {
        let t1 = self.gspmv.time_scaled(dm, 1, scale);
        let c = &self.counts;
        (c.cold + c.warm_second + c.cheb_order) as f64 * t1
    }

    /// Predicted MRHS speedup at the Eq. 9-optimal `m ≤ max_m`.
    pub fn predicted_speedup(
        &self,
        dm: &DistributedMatrix,
        max_m: usize,
        scale: f64,
    ) -> (usize, f64) {
        let m_best = (1..=max_m.max(1))
            .min_by(|&a, &b| {
                self.tmrhs(dm, a, scale)
                    .partial_cmp(&self.tmrhs(dm, b, scale))
                    .unwrap()
            })
            .unwrap();
        (m_best, self.toriginal(dm, scale) / self.tmrhs(dm, m_best, scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::partition::contiguous_partition;
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    fn banded(nb: usize, band: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(4.0));
            for d in 1..=band {
                if i + d < nb {
                    t.add_symmetric_pair(i, i + d, Block3::scaled_identity(-0.1));
                }
            }
        }
        t.build()
    }

    fn model() -> ClusterMrhsModel {
        ClusterMrhsModel {
            gspmv: ClusterGspmvModel::paper_cluster(),
            counts: SolveCounts::fig7(),
            block_fraction: 2.0 / 3.0,
        }
    }

    fn dm(nodes: usize) -> DistributedMatrix {
        let a = banded(2_000, 12);
        DistributedMatrix::new(&a, &contiguous_partition(&a, nodes))
    }

    #[test]
    fn single_node_speedup_in_paper_band() {
        let (m, s) = model().predicted_speedup(&dm(1), 32, 150.0);
        assert!(m >= 4, "optimal m {m}");
        assert!(s > 1.0 && s < 2.0, "speedup {s}");
    }

    #[test]
    fn speedup_survives_at_scale_out() {
        // At 64 nodes GSPMV is latency-dominated and extra vectors are
        // nearly free (Fig. 3/4): MRHS remains profitable and its
        // optimal m grows or holds.
        let md = model();
        let (m1, s1) = md.predicted_speedup(&dm(1), 32, 150.0);
        let (m64, s64) = md.predicted_speedup(&dm(64), 32, 150.0);
        assert!(s64 > 1.0, "64-node speedup {s64}");
        assert!(m64 >= m1, "optimal m should not shrink: {m1} -> {m64}");
        assert!(s64 >= s1 * 0.8, "{s1} -> {s64}");
    }

    #[test]
    fn tmrhs_at_optimum_below_original() {
        let md = model();
        let d = dm(16);
        let (m, _) = md.predicted_speedup(&d, 32, 150.0);
        assert!(md.tmrhs(&d, m, 150.0) < md.toriginal(&d, 150.0));
    }
}
