//! Functional distributed GSPMV with real halo exchange.
//!
//! Each node runs on its own thread, holding only its own rows of `X`.
//! Halo values arrive as packed messages over channels (one mailbox per
//! node), mirroring nonblocking MPI: a node first posts its sends, then
//! multiplies, consuming received halo data. The result must equal the
//! single-address-space GSPMV — that is the correctness contract tested
//! below and relied on by the time model in [`crate::sim`].
//!
//! [`execute`] spawns fresh threads and channels on every call — the
//! "respawn" baseline. Iterative solvers should use
//! [`crate::engine::DistEngine`], which keeps node threads alive across
//! multiplies and overlaps communication with the local part of the
//! multiply; `execute` remains as the simple reference executor and as
//! the baseline of the engine-vs-respawn bench comparison.

use crate::distmat::{DistributedMatrix, NodeMatrix};
use crossbeam::channel::{unbounded, Receiver, Sender};
use mrhs_sparse::{gspmv_serial, MultiVec};

/// Communication statistics of one distributed multiply.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Per node: bytes received.
    pub recv_bytes: Vec<usize>,
    /// Per node: messages received.
    pub recv_messages: Vec<usize>,
}

impl CommStats {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> usize {
        self.recv_bytes.iter().sum()
    }
}

/// One packed halo message: the sender, and the rows' values packed in
/// the receiver's halo order for that sender.
pub(crate) struct HaloMessage {
    pub(crate) from: usize,
    pub(crate) data: MultiVec,
}

/// Packs the rows node `q` must ship to one peer out of its owned
/// slice `x_own` (scalar rows, node-local indexing).
pub(crate) fn pack_rows(
    node: &NodeMatrix,
    x_own: &MultiVec,
    rows: &[usize],
) -> MultiVec {
    let scalar_rows: Vec<usize> = rows
        .iter()
        .flat_map(|&r| {
            let base = (r - node.rows.start) * 3;
            [base, base + 1, base + 2]
        })
        .collect();
    x_own.gather_row_list(&scalar_rows)
}

/// Scatters a received message into the halo multivector (halo-local
/// indexing: halo row `h` occupies scalar rows `3h..3h+3`).
pub(crate) fn scatter_message(
    node: &NodeMatrix,
    rows: &[usize],
    data: &MultiVec,
    x_halo: &mut MultiVec,
) {
    for (k, &r) in rows.iter().enumerate() {
        let h = node.halo.binary_search(&r).unwrap();
        for c in 0..3 {
            x_halo.row_mut(3 * h + c).copy_from_slice(data.row(3 * k + c));
        }
    }
}

/// `y += A_remote · x_halo`, using a scratch buffer so the fast
/// (overwriting) GSPMV kernels can be reused.
pub(crate) fn apply_remote(
    node: &NodeMatrix,
    x_halo: &MultiVec,
    y: &mut MultiVec,
    scratch: &mut MultiVec,
) {
    if node.halo.is_empty() || node.rows.is_empty() {
        return;
    }
    gspmv_serial(&node.a_remote, x_halo, scratch);
    for (yi, si) in y.as_mut_slice().iter_mut().zip(scratch.as_slice()) {
        *yi += si;
    }
}

/// Executes `Y = A·X` on the distributed matrix. `x` is given in the
/// *permuted* global row order (see [`DistributedMatrix::permutation`]);
/// the returned `Y` uses the same order.
///
/// Channels and threads are rebuilt on every call; see
/// [`crate::engine::DistEngine`] for the persistent executor.
pub fn execute(dm: &DistributedMatrix, x: &MultiVec) -> (MultiVec, CommStats) {
    let m = x.m();
    assert_eq!(x.n(), dm.nb_rows() * 3);
    let p = dm.n_nodes();

    // Mailboxes.
    let channels: Vec<(Sender<HaloMessage>, Receiver<HaloMessage>)> =
        (0..p).map(|_| unbounded()).collect();
    let senders: Vec<Sender<HaloMessage>> =
        channels.iter().map(|(s, _)| s.clone()).collect();

    // Per-node owned X slices (a node gets nothing else).
    let x_own: Vec<MultiVec> = dm
        .nodes()
        .iter()
        .map(|n| x.gather_rows(n.rows.start * 3..n.rows.end * 3))
        .collect();

    let mut y_parts: Vec<Option<MultiVec>> = (0..p).map(|_| None).collect();
    let mut stats = CommStats { recv_bytes: vec![0; p], recv_messages: vec![0; p] };

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (q, node) in dm.nodes().iter().enumerate() {
            let x_q = &x_own[q];
            let rx = channels[q].1.clone();
            let senders = senders.clone();
            handles.push(scope.spawn(move || {
                // Post sends: pack requested rows from the owned slice.
                for (dst, rows) in dm.send_plan(q) {
                    let data = pack_rows(node, x_q, rows);
                    senders[*dst]
                        .send(HaloMessage { from: q, data })
                        .expect("mailbox open");
                }
                drop(senders);

                // Local multiply (needs no remote data).
                let own_rows = node.rows.len();
                let mut y_local = MultiVec::zeros(own_rows * 3, m);
                gspmv_serial(&node.a_local, x_q, &mut y_local);

                // Receive the halo — the plan is identified by *node
                // index*, never by range equality (empty partitions
                // share identical ranges).
                let plan_in = dm.recv_plan(q);
                let mut x_halo = MultiVec::zeros(node.halo.len() * 3, m);
                let mut bytes = 0usize;
                let expected = plan_in.len();
                for _ in 0..expected {
                    let msg = rx.recv().expect("halo message");
                    let (_, rows) = plan_in
                        .iter()
                        .find(|(peer, _)| *peer == msg.from)
                        .expect("unexpected sender");
                    bytes += msg.data.as_slice().len() * 8;
                    scatter_message(node, rows, &msg.data, &mut x_halo);
                }

                // Remote multiply, accumulated onto the local part.
                let mut scratch = MultiVec::zeros(own_rows * 3, m);
                apply_remote(node, &x_halo, &mut y_local, &mut scratch);
                (y_local, bytes, expected)
            }));
        }
        for (q, h) in handles.into_iter().enumerate() {
            let (y, bytes, msgs) = h.join().expect("node thread");
            y_parts[q] = Some(y);
            stats.recv_bytes[q] = bytes;
            stats.recv_messages[q] = msgs;
        }
    });

    // Concatenate per-node results in permuted global order.
    let mut y = MultiVec::zeros(dm.nb_rows() * 3, m);
    for (node, part) in dm.nodes().iter().zip(y_parts) {
        let part = part.unwrap();
        let base = node.rows.start * 3;
        for r in 0..part.n() {
            y.row_mut(base + r).copy_from_slice(part.row(r));
        }
    }
    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::partition::{contiguous_partition, Partition};
    use mrhs_sparse::reorder::permute_symmetric;
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    fn random_symmetric(nb: usize, band: usize, seed: u64) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(8.0));
            for d in 1..=band {
                if i + d < nb && next() > 0.0 {
                    let mut b = Block3::ZERO;
                    for v in b.0.iter_mut() {
                        *v = next();
                    }
                    t.add_symmetric_pair(i, i + d, b);
                }
            }
        }
        t.build()
    }

    fn pseudo_multivec(n: usize, m: usize, seed: u64) -> MultiVec {
        let mut state = seed | 1;
        let mut mv = MultiVec::zeros(n, m);
        for v in mv.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        }
        mv
    }

    fn check_against_serial(a: &BcrsMatrix, part: &Partition, m: usize) {
        let dm = DistributedMatrix::new(a, part);
        let permuted = permute_symmetric(a, dm.permutation());
        let x = pseudo_multivec(a.n_rows(), m, 7);
        let (y, _) = execute(&dm, &x);
        let mut want = MultiVec::zeros(a.n_rows(), m);
        gspmv_serial(&permuted, &x, &mut want);
        for (u, v) in y.as_slice().iter().zip(want.as_slice()) {
            assert!((u - v).abs() < 1e-12, "{u} vs {v}");
        }
    }

    #[test]
    fn distributed_matches_serial_various_nodes() {
        let a = random_symmetric(60, 4, 5);
        for p in [1usize, 2, 3, 4, 8] {
            let part = contiguous_partition(&a, p);
            check_against_serial(&a, &part, 4);
        }
    }

    #[test]
    fn distributed_matches_serial_various_m() {
        let a = random_symmetric(40, 3, 11);
        let part = contiguous_partition(&a, 4);
        for m in [1usize, 2, 8, 16] {
            check_against_serial(&a, &part, m);
        }
    }

    #[test]
    fn comm_bytes_scale_linearly_with_m() {
        let a = random_symmetric(48, 3, 3);
        let part = contiguous_partition(&a, 4);
        let dm = DistributedMatrix::new(&a, &part);
        let x1 = pseudo_multivec(a.n_rows(), 1, 1);
        let x8 = pseudo_multivec(a.n_rows(), 8, 1);
        let (_, s1) = execute(&dm, &x1);
        let (_, s8) = execute(&dm, &x8);
        assert_eq!(s8.total_bytes(), 8 * s1.total_bytes());
        assert_eq!(s1.recv_messages, s8.recv_messages);
    }

    #[test]
    fn single_node_moves_no_bytes() {
        let a = random_symmetric(20, 2, 9);
        let part = contiguous_partition(&a, 1);
        let dm = DistributedMatrix::new(&a, &part);
        let x = pseudo_multivec(a.n_rows(), 4, 2);
        let (_, stats) = execute(&dm, &x);
        assert_eq!(stats.total_bytes(), 0);
    }

    #[test]
    fn noncontiguous_partition_also_works() {
        // Round-robin assignment: heavy halo, stresses the remap.
        let a = random_symmetric(30, 2, 13);
        let assignment: Vec<u32> = (0..30).map(|i| (i % 3) as u32).collect();
        let part = Partition::from_assignment(3, assignment);
        check_against_serial(&a, &part, 3);
    }

    /// Regression: with more nodes than block rows, several partitions
    /// are empty and share identical (empty) row ranges. The old code
    /// identified a node by range equality, picked the wrong receive
    /// plan, and deadlocked waiting for messages that never come. Run
    /// under the shared watchdog so a reintroduced deadlock fails fast
    /// instead of hanging the test suite.
    #[test]
    fn more_nodes_than_rows_does_not_deadlock() {
        crate::watchdog::with_deadline(std::time::Duration::from_secs(60), || {
            let a = random_symmetric(5, 2, 21);
            for p in [6usize, 8, 11] {
                let part = contiguous_partition(&a, p);
                check_against_serial(&a, &part, 3);
                // interleaved empty parts as well
                let assignment: Vec<u32> =
                    (0..5).map(|i| (2 * i) as u32 % p as u32).collect();
                let part = Partition::from_assignment(p, assignment);
                check_against_serial(&a, &part, 2);
            }
        });
    }
}
