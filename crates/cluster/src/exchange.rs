//! Functional distributed GSPMV with real halo exchange.
//!
//! Each node runs on its own thread, holding only its own rows of `X`.
//! Halo values arrive as packed messages over channels (one mailbox per
//! node), mirroring nonblocking MPI: a node first posts its sends, then
//! multiplies, consuming received halo data. The result must equal the
//! single-address-space GSPMV — that is the correctness contract tested
//! below and relied on by the time model in [`crate::sim`].

use crate::distmat::DistributedMatrix;
use crossbeam::channel::{unbounded, Receiver, Sender};
use mrhs_sparse::{gspmv_serial, MultiVec};

/// Communication statistics of one distributed multiply.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Per node: bytes received.
    pub recv_bytes: Vec<usize>,
    /// Per node: messages received.
    pub recv_messages: Vec<usize>,
}

impl CommStats {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> usize {
        self.recv_bytes.iter().sum()
    }
}

/// One packed halo message: the sender, and the rows' values packed in
/// the receiver's halo order for that sender.
struct HaloMessage {
    from: usize,
    data: MultiVec,
}

/// Executes `Y = A·X` on the distributed matrix. `x` is given in the
/// *permuted* global row order (see [`DistributedMatrix::permutation`]);
/// the returned `Y` uses the same order.
pub fn execute(dm: &DistributedMatrix, x: &MultiVec) -> (MultiVec, CommStats) {
    let m = x.m();
    assert_eq!(x.n(), dm.nb_rows() * 3);
    let p = dm.n_nodes();

    // Mailboxes.
    let channels: Vec<(Sender<HaloMessage>, Receiver<HaloMessage>)> =
        (0..p).map(|_| unbounded()).collect();
    let senders: Vec<Sender<HaloMessage>> =
        channels.iter().map(|(s, _)| s.clone()).collect();

    // Per-node owned X slices (a node gets nothing else).
    let x_own: Vec<MultiVec> = dm
        .nodes()
        .iter()
        .map(|n| x.gather_rows(n.rows.start * 3..n.rows.end * 3))
        .collect();

    // Send plans: for each node, what it must ship to each peer.
    let send_plans: Vec<Vec<(usize, Vec<usize>)>> = (0..p)
        .map(|q| {
            // invert the recv plans: peer p needs rows owned by q
            let mut out: Vec<(usize, Vec<usize>)> = Vec::new();
            for dst in 0..p {
                if dst == q {
                    continue;
                }
                for (peer, rows) in dm.recv_plan(dst) {
                    if peer == q {
                        out.push((dst, rows));
                    }
                }
            }
            out
        })
        .collect();

    let mut y_parts: Vec<Option<MultiVec>> = (0..p).map(|_| None).collect();
    let mut stats = CommStats { recv_bytes: vec![0; p], recv_messages: vec![0; p] };

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (q, node) in dm.nodes().iter().enumerate() {
            let x_q = &x_own[q];
            let plan = &send_plans[q];
            let rx = channels[q].1.clone();
            let senders = senders.clone();
            handles.push(scope.spawn(move || {
                // Post sends: pack requested rows from the owned slice.
                for (dst, rows) in plan {
                    let scalar_rows: Vec<usize> = rows
                        .iter()
                        .flat_map(|&r| {
                            let base = (r - node.rows.start) * 3;
                            [base, base + 1, base + 2]
                        })
                        .collect();
                    let data = x_q.gather_row_list(&scalar_rows);
                    senders[*dst]
                        .send(HaloMessage { from: q, data })
                        .expect("mailbox open");
                }
                drop(senders);

                // Receive the halo.
                let plan_in = {
                    // Which peers send to us, and which rows.
                    let mut v: Vec<(usize, Vec<usize>)> = Vec::new();
                    for (peer, rows) in dm_recv_plan_for(node, dm) {
                        v.push((peer, rows));
                    }
                    v
                };
                let expected = plan_in.len();
                let mut received: Vec<HaloMessage> = Vec::with_capacity(expected);
                for _ in 0..expected {
                    received.push(rx.recv().expect("halo message"));
                }

                // Assemble the compact local vector [own | halo].
                let own_rows = node.rows.len();
                let mut x_local =
                    MultiVec::zeros((own_rows + node.halo.len()) * 3, m);
                x_local.as_mut_slice()[..own_rows * 3 * m]
                    .copy_from_slice(x_q.as_slice());
                let mut bytes = 0usize;
                for msg in &received {
                    let (_, rows) = plan_in
                        .iter()
                        .find(|(peer, _)| *peer == msg.from)
                        .expect("unexpected sender");
                    bytes += msg.data.as_slice().len() * 8;
                    for (k, &r) in rows.iter().enumerate() {
                        let h = node.halo.binary_search(&r).unwrap();
                        for c in 0..3 {
                            let dst_row = (own_rows + h) * 3 + c;
                            x_local
                                .row_mut(dst_row)
                                .copy_from_slice(msg.data.row(3 * k + c));
                        }
                    }
                }

                // Local multiply.
                let mut y_local = MultiVec::zeros(own_rows * 3, m);
                gspmv_serial(&node.local, &x_local, &mut y_local);
                (y_local, bytes, received.len())
            }));
        }
        for (q, h) in handles.into_iter().enumerate() {
            let (y, bytes, msgs) = h.join().expect("node thread");
            y_parts[q] = Some(y);
            stats.recv_bytes[q] = bytes;
            stats.recv_messages[q] = msgs;
        }
    });

    // Concatenate per-node results in permuted global order.
    let mut y = MultiVec::zeros(dm.nb_rows() * 3, m);
    for (node, part) in dm.nodes().iter().zip(y_parts) {
        let part = part.unwrap();
        let base = node.rows.start * 3;
        for r in 0..part.n() {
            y.row_mut(base + r).copy_from_slice(part.row(r));
        }
    }
    (y, stats)
}

fn dm_recv_plan_for(
    node: &crate::distmat::NodeMatrix,
    dm: &DistributedMatrix,
) -> Vec<(usize, Vec<usize>)> {
    let p = dm
        .nodes()
        .iter()
        .position(|n| n.rows == node.rows)
        .expect("node belongs to matrix");
    dm.recv_plan(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::partition::{contiguous_partition, Partition};
    use mrhs_sparse::reorder::permute_symmetric;
    use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

    fn random_symmetric(nb: usize, band: usize, seed: u64) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(8.0));
            for d in 1..=band {
                if i + d < nb && next() > 0.0 {
                    let mut b = Block3::ZERO;
                    for v in b.0.iter_mut() {
                        *v = next();
                    }
                    t.add_symmetric_pair(i, i + d, b);
                }
            }
        }
        t.build()
    }

    fn pseudo_multivec(n: usize, m: usize, seed: u64) -> MultiVec {
        let mut state = seed | 1;
        let mut mv = MultiVec::zeros(n, m);
        for v in mv.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        }
        mv
    }

    fn check_against_serial(a: &BcrsMatrix, part: &Partition, m: usize) {
        let dm = DistributedMatrix::new(a, part);
        let permuted = permute_symmetric(a, dm.permutation());
        let x = pseudo_multivec(a.n_rows(), m, 7);
        let (y, _) = execute(&dm, &x);
        let mut want = MultiVec::zeros(a.n_rows(), m);
        gspmv_serial(&permuted, &x, &mut want);
        for (u, v) in y.as_slice().iter().zip(want.as_slice()) {
            assert!((u - v).abs() < 1e-12, "{u} vs {v}");
        }
    }

    #[test]
    fn distributed_matches_serial_various_nodes() {
        let a = random_symmetric(60, 4, 5);
        for p in [1usize, 2, 3, 4, 8] {
            let part = contiguous_partition(&a, p);
            check_against_serial(&a, &part, 4);
        }
    }

    #[test]
    fn distributed_matches_serial_various_m() {
        let a = random_symmetric(40, 3, 11);
        let part = contiguous_partition(&a, 4);
        for m in [1usize, 2, 8, 16] {
            check_against_serial(&a, &part, m);
        }
    }

    #[test]
    fn comm_bytes_scale_linearly_with_m() {
        let a = random_symmetric(48, 3, 3);
        let part = contiguous_partition(&a, 4);
        let dm = DistributedMatrix::new(&a, &part);
        let x1 = pseudo_multivec(a.n_rows(), 1, 1);
        let x8 = pseudo_multivec(a.n_rows(), 8, 1);
        let (_, s1) = execute(&dm, &x1);
        let (_, s8) = execute(&dm, &x8);
        assert_eq!(s8.total_bytes(), 8 * s1.total_bytes());
        assert_eq!(s1.recv_messages, s8.recv_messages);
    }

    #[test]
    fn single_node_moves_no_bytes() {
        let a = random_symmetric(20, 2, 9);
        let part = contiguous_partition(&a, 1);
        let dm = DistributedMatrix::new(&a, &part);
        let x = pseudo_multivec(a.n_rows(), 4, 2);
        let (_, stats) = execute(&dm, &x);
        assert_eq!(stats.total_bytes(), 0);
    }

    #[test]
    fn noncontiguous_partition_also_works() {
        // Round-robin assignment: heavy halo, stresses the remap.
        let a = random_symmetric(30, 2, 13);
        let assignment: Vec<u32> = (0..30).map(|i| (i % 3) as u32).collect();
        let part = Partition::from_assignment(3, assignment);
        check_against_serial(&a, &part, 3);
    }
}
