//! [`DistEngine`] behind the partition permutation.
//!
//! The engine operates in the *permuted* global ordering
//! ([`DistributedMatrix::permutation`], `perm[new] = old`) so each node
//! owns a contiguous block-row range. That is the right ordering for a
//! solver driving the engine directly, but wrong for a serving layer:
//! fleet clients submit right-hand sides in the ordering they built the
//! matrix in and expect solutions back the same way. [`PermutedEngine`]
//! wraps the engine as a [`LinearOperator`] over the **original**
//! ordering — operands are permuted in, results permuted back out, at
//! `O(n·m)` per apply (noise against the multiply itself). The fused
//! fast paths (`apply_powers`, `apply_chebyshev`) are forwarded through
//! the same permutation, so a sharded tenant still pays one widened
//! exchange per group.

use crate::distmat::DistributedMatrix;
use crate::engine::DistEngine;
use mrhs_solvers::operator::LinearOperator;
use mrhs_sparse::MultiVec;

/// A [`DistEngine`] re-indexed to the original (pre-partition) block-row
/// ordering. See the module docs.
pub struct PermutedEngine {
    engine: DistEngine,
    /// `perm[new] = old` block rows, cloned from the engine's matrix.
    perm: Vec<usize>,
}

impl PermutedEngine {
    /// Wraps an engine; the permutation is read off its matrix.
    pub fn new(engine: DistEngine) -> Self {
        let perm = engine.matrix().permutation().to_vec();
        PermutedEngine { engine, perm }
    }

    /// The wrapped engine (permuted ordering).
    pub fn engine(&self) -> &DistEngine {
        &self.engine
    }

    /// The distributed matrix behind the engine.
    pub fn matrix(&self) -> &DistributedMatrix {
        self.engine.matrix()
    }

    /// Original-order operand → engine (permuted) order.
    fn to_engine(&self, x: &MultiVec) -> MultiVec {
        let mut out = MultiVec::zeros(x.n(), x.m());
        for (new_b, &old_b) in self.perm.iter().enumerate() {
            for d in 0..3 {
                out.row_mut(3 * new_b + d).copy_from_slice(x.row(3 * old_b + d));
            }
        }
        out
    }

    /// Engine (permuted) result → original order.
    fn unpermute_from_engine(&self, y_p: &MultiVec, out: &mut MultiVec) {
        for (new_b, &old_b) in self.perm.iter().enumerate() {
            for d in 0..3 {
                out.row_mut(3 * old_b + d).copy_from_slice(y_p.row(3 * new_b + d));
            }
        }
    }
}

impl LinearOperator for PermutedEngine {
    fn dim(&self) -> usize {
        self.engine.scalar_dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let xm = MultiVec::from_vec(x.to_vec());
        let mut ym = MultiVec::zeros(x.len(), 1);
        self.apply_multi(&xm, &mut ym);
        y.copy_from_slice(ym.as_slice());
    }

    fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec) {
        let xp = self.to_engine(x);
        let (yp, _) = self.engine.multiply(&xp);
        self.unpermute_from_engine(&yp, y);
    }

    fn apply_powers(&self, x: &MultiVec, outs: &mut [MultiVec]) {
        let xp = self.to_engine(x);
        let mut outs_p: Vec<MultiVec> =
            outs.iter().map(|o| MultiVec::zeros(o.n(), o.m())).collect();
        self.engine.multiply_powers_into(&xp, &mut outs_p);
        for (out, op) in outs.iter_mut().zip(&outs_p) {
            self.unpermute_from_engine(op, out);
        }
    }

    fn apply_chebyshev(
        &self,
        z: &MultiVec,
        mid: f64,
        half: f64,
        coeffs: &[f64],
        y: &mut MultiVec,
    ) -> bool {
        let zp = self.to_engine(z);
        let mut yp = MultiVec::zeros(y.n(), y.m());
        self.engine.multiply_chebyshev_into(&zp, mid, half, coeffs, &mut yp);
        self.unpermute_from_engine(&yp, y);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::with_deadline;
    use mrhs_sparse::partition::contiguous_partition;
    use mrhs_sparse::{gspmv_serial, Block3, BlockTripletBuilder, MultiVec};
    use std::time::Duration;

    fn banded(nb: usize) -> mrhs_sparse::BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(6.0));
            if i + 1 < nb {
                t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
            }
            if i + 3 < nb {
                t.add_symmetric_pair(i, i + 3, Block3::scaled_identity(-0.5));
            }
        }
        t.build()
    }

    fn pseudo(n: usize, m: usize, seed: u64) -> MultiVec {
        let mut state = seed | 1;
        let mut mv = MultiVec::zeros(n, m);
        for v in mv.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        }
        mv
    }

    #[test]
    fn permuted_engine_matches_original_ordering_operator() {
        with_deadline(Duration::from_secs(120), || {
            let a = banded(24);
            let part = contiguous_partition(&a, 3);
            let dm = DistributedMatrix::new(&a, &part);
            let engine = PermutedEngine::new(DistEngine::new(dm));
            for m in [1usize, 4] {
                let x = pseudo(a.n_rows(), m, 7 + m as u64);
                let mut y = MultiVec::zeros(a.n_rows(), m);
                engine.apply_multi(&x, &mut y);
                // Reference in the ORIGINAL ordering — no permutation.
                let mut want = MultiVec::zeros(a.n_rows(), m);
                gspmv_serial(&a, &x, &mut want);
                for (u, v) in y.as_slice().iter().zip(want.as_slice()) {
                    assert!((u - v).abs() < 1e-12, "{u} vs {v}");
                }
            }
        });
    }

    #[test]
    fn permuted_fast_paths_match_original_ordering() {
        with_deadline(Duration::from_secs(120), || {
            let a = banded(20);
            let part = contiguous_partition(&a, 4);
            let dm = DistributedMatrix::new(&a, &part);
            let engine = PermutedEngine::new(DistEngine::new(dm));
            let x = pseudo(a.n_rows(), 3, 11);

            // Powers against repeated original-order multiplies.
            let mut outs: Vec<MultiVec> =
                (0..3).map(|_| MultiVec::zeros(a.n_rows(), 3)).collect();
            engine.apply_powers(&x, &mut outs);
            let mut prev = x.clone();
            for (lvl, out) in outs.iter().enumerate() {
                let mut want = MultiVec::zeros(a.n_rows(), 3);
                gspmv_serial(&a, &prev, &mut want);
                let scale = want.max_abs().max(1.0);
                for (u, v) in out.as_slice().iter().zip(want.as_slice()) {
                    assert!((u - v).abs() <= 1e-12 * scale, "level {lvl}");
                }
                prev = want;
            }

            // Chebyshev against the serial fused kernel on the original
            // matrix.
            let coeffs: Vec<f64> =
                (0..=6).map(|k| 1.0 / (1.0 + k as f64)).collect();
            let mut y = MultiVec::zeros(a.n_rows(), 3);
            assert!(engine.apply_chebyshev(&x, 6.0, 3.0, &coeffs, &mut y));
            let mut want = MultiVec::zeros(a.n_rows(), 3);
            mrhs_sparse::spmpv_chebyshev(&a, &x, 6.0, 3.0, &coeffs, &mut want);
            let scale = want.max_abs().max(1.0);
            for (u, v) in y.as_slice().iter().zip(want.as_slice()) {
                assert!((u - v).abs() <= 1e-11 * scale, "{u} vs {v}");
            }
        });
    }
}
