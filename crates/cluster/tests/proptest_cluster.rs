//! Property tests for the persistent distributed engine.
//!
//! * The engine must equal the single-address-space GSPMV *and* the
//!   `oracle` crate's dense reference on random symmetric matrices
//!   under random partitions — contiguous, round-robin, and arbitrary
//!   assignments including *empty* parts (more nodes than block rows)
//!   — for every m the solvers use.
//! * Block CG driven through the engine (a real distributed solve with
//!   halo exchange every iteration) must follow the shared-memory
//!   block-CG trajectory and reach the same solution.
//!
//! Every threaded case runs under the watchdog so a reintroduced
//! exchange deadlock fails CI instead of stalling it.

use mrhs_cluster::watchdog::with_deadline;
use mrhs_cluster::{DistEngine, DistributedMatrix};
use mrhs_solvers::block_cg::block_cg;
use mrhs_solvers::cg::SolveConfig;
use mrhs_sparse::partition::Partition;
use mrhs_sparse::reorder::permute_symmetric;
use mrhs_sparse::{
    gspmv_serial, BcrsMatrix, Block3, BlockTripletBuilder, MultiVec,
};
use oracle::{Dense, TolModel};
use proptest::prelude::*;
use std::time::Duration;

/// The engine accumulates local and remote contributions in separate
/// sums, so it is not bitwise against the dense reference; this is the
/// historical 1e-11 relative envelope expressed as an oracle model.
const ENGINE: TolModel = TolModel { rel: 1e-11, floor: 1.0, max_ulps: 64 };

fn arb_sym_matrix(max_nb: usize) -> impl Strategy<Value = BcrsMatrix> {
    (3usize..=max_nb)
        .prop_flat_map(|nb| {
            let pairs = proptest::collection::vec(
                ((0..nb), (0..nb), proptest::array::uniform9(-1.0f64..1.0)),
                0..4 * nb,
            );
            (Just(nb), pairs)
        })
        .prop_map(|(nb, pairs)| {
            let mut t = BlockTripletBuilder::square(nb);
            for i in 0..nb {
                // strong diagonal: SPD by dominance, reusable for CG
                t.add(i, i, Block3::scaled_identity(24.0));
            }
            for (i, j, v) in pairs {
                if i != j {
                    t.add_symmetric_pair(i, j, Block3(v));
                }
            }
            t.build()
        })
}

/// A partition of `nb` rows: contiguous, round-robin, or an arbitrary
/// assignment onto up to `nb + 4` parts (so some parts are empty).
fn arb_partition(nb: usize, kind: usize, parts: usize, salt: usize) -> Partition {
    match kind % 3 {
        0 => {
            let assignment: Vec<u32> =
                (0..nb).map(|i| (i % parts) as u32).collect();
            Partition::from_assignment(parts, assignment)
        }
        1 => {
            let assignment: Vec<u32> =
                (0..nb).map(|i| ((i * 7 + salt + i / 3) % parts) as u32).collect();
            Partition::from_assignment(parts, assignment)
        }
        _ => {
            // contiguous — may still leave trailing parts empty
            let assignment: Vec<u32> =
                (0..nb).map(|i| ((i * parts) / nb.max(1)) as u32).collect();
            Partition::from_assignment(parts, assignment)
        }
    }
}

fn pseudo_multivec(n: usize, m: usize, seed: u64) -> MultiVec {
    let mut state = seed | 1;
    let mut mv = MultiVec::zeros(n, m);
    for v in mv.as_mut_slice() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    mv
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engine_equals_serial_gspmv(
        a in arb_sym_matrix(14),
        kind in 0usize..3,
        extra_parts in 0usize..8,
        mi in 0usize..5,
        salt in 0usize..13,
    ) {
        let m = [1usize, 2, 8, 16, 32][mi];
        let nb = a.nb_rows();
        // `extra_parts` can push the node count past nb: empty parts.
        let parts = 1 + (extra_parts % (nb + 4));
        let part = arb_partition(nb, kind, parts, salt);

        let (y, want, dense_want, bytes) =
            with_deadline(Duration::from_secs(120), move || {
                let dm = DistributedMatrix::new(&a, &part);
                let permuted = permute_symmetric(&a, dm.permutation());
                let engine = DistEngine::new(dm);
                let n = a.n_rows();
                let x = pseudo_multivec(n, m, (salt as u64) << 8 | m as u64);
                let (y, stats) = engine.multiply(&x);
                let mut want = MultiVec::zeros(n, m);
                gspmv_serial(&permuted, &x, &mut want);
                let dense_want = Dense::from_bcrs(&permuted).gspmv(&x);
                (y, want, dense_want, stats.comm.total_bytes())
            });
        // Both the serial GSPMV and the engine must sit inside the
        // oracle envelope around the dense reference.
        if let Err(e) = ENGINE.check_slices(
            dense_want.as_slice(), want.as_slice(), "serial vs dense")
        {
            prop_assert!(false, "{}", e);
        }
        if let Err(e) = ENGINE.check_slices(
            dense_want.as_slice(), y.as_slice(), "engine vs dense")
        {
            prop_assert!(false, "{}", e);
        }
        // bytes accounting: 8 bytes × 3m scalars per halo block row
        prop_assert_eq!(bytes % (3 * m * 8), 0);
    }

    #[test]
    fn distributed_block_cg_follows_shared_trajectory(
        a in arb_sym_matrix(12),
        parts in 1usize..6,
        mi in 0usize..3,
        seed in 1usize..500,
    ) {
        let m = [1usize, 2, 8][mi];
        let nb = a.nb_rows();
        let assignment: Vec<u32> =
            (0..nb).map(|i| ((i * 5 + 1) % parts) as u32).collect();
        let part = Partition::from_assignment(parts, assignment);
        let cfg = SolveConfig { tol: 1e-12, max_iter: 400 };

        let (shared, dist, x_shared, x_dist) =
            with_deadline(Duration::from_secs(180), move || {
                let dm = DistributedMatrix::new(&a, &part);
                let permuted = permute_symmetric(&a, dm.permutation());
                let engine = DistEngine::new(dm);
                let n = a.n_rows();
                let b = pseudo_multivec(n, m, seed as u64);
                let mut x_shared = MultiVec::zeros(n, m);
                let shared = block_cg(&permuted, &b, &mut x_shared, &cfg);
                let mut x_dist = MultiVec::zeros(n, m);
                let dist = block_cg(&engine, &b, &mut x_dist, &cfg);
                (shared, dist, x_shared, x_dist)
            });

        prop_assert!(shared.converged && dist.converged);
        // Same trajectory: iteration counts agree (up to one iteration
        // of floating-point slack from the split local+remote sums) …
        prop_assert!(
            shared.iterations.abs_diff(dist.iterations) <= 1,
            "shared {} vs distributed {}",
            shared.iterations,
            dist.iterations
        );
        // … and the solutions coincide to solver accuracy.
        for (u, v) in x_shared.as_slice().iter().zip(x_dist.as_slice()) {
            prop_assert!(
                (u - v).abs() <= 1e-10 * u.abs().max(v.abs()).max(1.0),
                "{u} vs {v}"
            );
        }
    }
}
