//! Kernel-level experiments: Table I, Table II, Fig. 1, Fig. 2.

use crate::common::{
    f, kernel_particles, sd_matrix, section, Options, TABLE1_CUTOFFS,
};
use mrhs_perfmodel::measure::{
    host_profile, measured_relative_curve, measured_symmetric_relative_curve,
    stream_bandwidth, time_gspmv,
};
use mrhs_perfmodel::{GspmvModel, MachineProfile};
use mrhs_sparse::SymmetricBcrs;

/// Table I: statistics of the three SD matrices. The paper builds them
/// by changing the SD cutoff radius; so do we. Absolute sizes scale
/// with `--particles`; the density column (`nnzb/nb`) is the quantity
/// that must land near the paper's.
pub fn table1(opts: &Options) {
    section("Table I: matrices from SD (paper densities: 5.6 / 24.9 / 45.3)");
    println!(
        "{:<6} {:>9} {:>9} {:>12} {:>10} {:>9} {:>10}",
        "Matrix", "n", "nb", "nnz", "nnzb", "nnzb/nb", "paper d"
    );
    for (name, s_cut, paper_density) in TABLE1_CUTOFFS {
        let a = sd_matrix(opts.particles, s_cut, opts.seed);
        let s = a.stats();
        println!(
            "{:<6} {:>9} {:>9} {:>12} {:>10} {:>9.1} {:>10.1}",
            name,
            s.n,
            s.nb,
            s.nnz,
            s.nnzb,
            s.blocks_per_row(),
            paper_density
        );
    }
}

/// Table II: single-vector SPMV performance and bandwidth utilization.
/// The paper reports 17.8–18.3 GB/s of 23 GB/s on WSM and 32 of 33 on
/// SNB; here we report the host's achieved fraction of its own STREAM
/// bandwidth — the shape statement is "SPMV runs near the bandwidth
/// bound".
pub fn table2(opts: &Options) {
    let n = kernel_particles(opts);
    section("Table II: SPMV (m = 1) performance and bandwidth usage");
    let stream = stream_bandwidth(1 << 22, opts.reps.max(3));
    println!("host STREAM bandwidth: {:.1} GB/s", stream / 1e9);
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>12}",
        "Matrix", "GB/s", "Gflop/s", "% of STREAM", "paper %"
    );
    for (i, (name, s_cut, _)) in TABLE1_CUTOFFS.iter().enumerate() {
        let a = sd_matrix(n, *s_cut, opts.seed);
        let t = time_gspmv(&a, 1, opts.reps);
        let bytes = a.stream_bytes() as f64 + (a.n_rows() * 3 * 8) as f64; // x read, y write (+alloc)
        let gbps = bytes / t / 1e9;
        let gflops = 18.0 * a.nnz_blocks() as f64 / t / 1e9;
        // paper: mat1 77%, mat2 80% of WSM STREAM; mat3 97% of SNB
        let paper = [77.0, 80.0, 97.0][i];
        println!(
            "{:<6} {:>10} {:>10} {:>11.0}% {:>11.0}%",
            name,
            f(gbps),
            f(gflops),
            100.0 * bytes / t / stream,
            paper
        );
    }
}

/// Fig. 1: the model grid of how many vectors fit within 2× the
/// single-vector time, over density (x) and byte/flop ratio (y), k = 0.
pub fn fig1(_opts: &Options) {
    section("Fig. 1: vectors within 2x single-vector time (model, k = 0)");
    let densities: Vec<f64> = (0..14).map(|i| 6.0 + 6.0 * i as f64).collect();
    let bfs: Vec<f64> = vec![0.02, 0.06, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
    let grid = GspmvModel::fig1_grid(&densities, &bfs);
    print!("{:>6} |", "B/F");
    for d in &densities {
        print!(" {:>4.0}", d);
    }
    println!("   <- nnzb/nb");
    println!("{}", "-".repeat(8 + 5 * densities.len()));
    for (bi, bf) in bfs.iter().enumerate().rev() {
        print!("{bf:>6.2} |");
        for v in &grid[bi] {
            print!(" {v:>4}");
        }
        println!();
    }
}

/// Fig. 2: relative time r(m).
/// (a) measured vs model for the mat2-density matrix on the host;
/// (b) measured r(m) for all three matrices. The paper's key readings:
/// 8 / 12 / 16 vectors at 2× for mat1/mat2/mat3.
pub fn fig2(opts: &Options) {
    section("Fig. 2a: r(m) for mat2 — measured vs model (host-calibrated)");
    let host = host_profile();
    println!(
        "host profile: B = {:.1} GB/s, F = {:.1} Gflop/s, B/F = {:.2}",
        host.bandwidth / 1e9,
        host.flops / 1e9,
        host.byte_per_flop()
    );
    let n = kernel_particles(opts);
    let ms: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 24, 32, 42];
    let a2 = sd_matrix(n, TABLE1_CUTOFFS[1].1, opts.seed);
    let measured = measured_relative_curve(&a2, &ms, opts.reps);
    let model = GspmvModel::new(&a2.stats(), host);
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10}",
        "m", "measured", "model", "bw-bound", "comp-bound"
    );
    let t1 = model.time_bandwidth(1);
    for (m, r) in &measured {
        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>10}",
            m,
            f(*r),
            f(model.relative_time(*m)),
            f(model.time_bandwidth(*m) / t1),
            f(model.time_compute(*m) / t1)
        );
    }

    section("Fig. 2b: measured r(m) for mat1/mat2/mat3 + vectors at 2x");
    println!("{:>4} {:>10} {:>10} {:>10}", "m", "mat1", "mat2", "mat3");
    let curves: Vec<Vec<(usize, f64)>> = TABLE1_CUTOFFS
        .iter()
        .map(|(_, s_cut, _)| {
            let a = sd_matrix(n, *s_cut, opts.seed);
            measured_relative_curve(&a, &ms, opts.reps)
        })
        .collect();
    for (i, m) in ms.iter().enumerate() {
        println!(
            "{:>4} {:>10} {:>10} {:>10}",
            m,
            f(curves[0][i].1),
            f(curves[1][i].1),
            f(curves[2][i].1)
        );
    }
    for (k, (name, _, _)) in TABLE1_CUTOFFS.iter().enumerate() {
        let at2 = curves[k]
            .iter()
            .take_while(|(_, r)| *r <= 2.0)
            .last()
            .map(|(m, _)| *m)
            .unwrap_or(1);
        let paper = [8, 12, 16][k];
        println!("{name}: ~{at2} vectors at 2x (paper: {paper})");
    }
}

/// Fig. 2 on the symmetric-storage path (`repro fig2 --symmetric`):
/// measured r(m) of the full kernel vs the symmetric kernel (serial and
/// auto-parallel), all normalized by the full single-vector time, next
/// to the Eq. 8 prediction whose matrix term uses the assembled
/// matrix's exact `SymmetricBcrs::stream_bytes()`.
pub fn fig2_symmetric(opts: &Options) {
    section("Fig. 2 (symmetric storage): r(m) vs full, measured + model");
    let host = host_profile();
    let n = kernel_particles(opts);
    let a2 = sd_matrix(n, TABLE1_CUTOFFS[1].1, opts.seed);
    let s2 = SymmetricBcrs::from_full(&a2, 1e-9)
        .expect("SD resistance matrices are symmetric");
    println!(
        "matrix: nb = {}, stored blocks {} -> {} ({:.0}% of the stream)",
        a2.nb_rows(),
        a2.nnz_blocks(),
        s2.stored_blocks(),
        100.0 * s2.stream_bytes() as f64 / a2.stream_bytes() as f64
    );
    println!(
        "rayon threads: {} (set RAYON_NUM_THREADS to vary)",
        rayon::current_num_threads()
    );
    let ms: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 24, 32, 42];
    let full = measured_relative_curve(&a2, &ms, opts.reps);
    let sym_serial =
        measured_symmetric_relative_curve(&a2, &s2, &ms, opts.reps, false);
    let sym_par = measured_symmetric_relative_curve(&a2, &s2, &ms, opts.reps, true);
    let model = GspmvModel::new(&a2.stats(), host);
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "m", "full", "sym-serial", "sym-par", "model(full)", "model(sym)"
    );
    for (i, m) in ms.iter().enumerate() {
        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>12} {:>12}",
            m,
            f(full[i].1),
            f(sym_serial[i].1),
            f(sym_par[i].1),
            f(model.relative_time(*m)),
            f(model.symmetric_relative_time_exact(&s2, *m))
        );
    }
    println!(
        "model switch points: full m_s = {:?}, symmetric m_s = {:?}",
        model.switch_point(),
        model.symmetric_switch_point()
    );
}

/// A WSM/SNB model replay of Fig. 2 at the paper's exact parameters —
/// no host measurement, pure Eq. 8 with the paper's machines.
pub fn fig2_paper_model(_opts: &Options) {
    section("Fig. 2 (paper-machine model replay)");
    let cases = [
        ("mat1/WSM", 5.6, MachineProfile::wsm()),
        ("mat2/WSM", 24.9, MachineProfile::wsm()),
        ("mat3/SNB", 45.3, MachineProfile::snb()),
    ];
    println!("{:>4} {:>11} {:>11} {:>11}", "m", "mat1/WSM", "mat2/WSM", "mat3/SNB");
    let models: Vec<GspmvModel> = cases
        .iter()
        .map(|(_, d, mach)| GspmvModel::from_density(*d, *mach))
        .collect();
    for m in [1usize, 2, 4, 8, 12, 16, 24, 32, 42] {
        println!(
            "{:>4} {:>11} {:>11} {:>11}",
            m,
            f(models[0].relative_time(m)),
            f(models[1].relative_time(m)),
            f(models[2].relative_time(m))
        );
    }
    for ((name, _, _), model) in cases.iter().zip(&models) {
        println!(
            "{name}: {} vectors at 2x, switch point {:?}",
            model.vectors_within_factor(2.0),
            model.switch_point()
        );
    }
}

/// SpMPV ablation (`repro ablation --spmpv`): the fused level-blocked
/// matrix-power kernel `A·X … A^k·X` against `k` sequential GSPMV
/// sweeps through the same serial backend, on an RCM-reordered SD
/// matrix large enough that the default [`PowerPlan`] fuses. Reports
/// wall time, the Eq. 8-style fused-stream model prediction, and the
/// telemetry-accounted matrix stream bytes of the fused call relative
/// to one full-matrix stream — the ≤ 1.5× acceptance number recorded
/// in EXPERIMENTS.md.
pub fn ablation_spmpv(opts: &Options) {
    use mrhs_perfmodel::measure::host_profile;
    use mrhs_sparse::reorder::{permute_symmetric, reverse_cuthill_mckee};
    use mrhs_sparse::{gspmv_serial, spmpv_powers, MultiVec, PowerPlan};
    use std::time::Instant;

    let n = kernel_particles(opts);
    section("SpMPV ablation: fused A^k.X vs k sequential GSPMV sweeps (serial)");
    let raw = sd_matrix(n, TABLE1_CUTOFFS[1].1, opts.seed);
    // Level blocking needs a bounded block bandwidth so chunks can be
    // cache-sized; RCM is the standard preparation.
    let perm = reverse_cuthill_mckee(&raw);
    let a = permute_symmetric(&raw, &perm);
    let plan = PowerPlan::new(&a);
    let stream_mb = a.stream_bytes() as f64 / (1 << 20) as f64;
    println!(
        "matrix: nb = {}, nnzb = {}, stream {:.1} MiB; bandwidth {} -> {} \
         (RCM); plan: {} chunks, fused = {}",
        a.nb_rows(),
        a.nnz_blocks(),
        stream_mb,
        mrhs_sparse::reorder::bandwidth(&raw),
        plan.bandwidth(),
        plan.n_chunks(),
        plan.fused()
    );
    if !plan.fused() {
        println!(
            "(single-chunk plan: matrix met the cache target; increase \
             --particles for a streaming measurement)"
        );
    }

    let reps = opts.reps.max(3);
    let was_enabled = mrhs_telemetry::enabled();
    mrhs_telemetry::set_enabled(true);
    let host = host_profile();
    let model = mrhs_perfmodel::GspmvModel::new(&a.stats(), host);

    println!(
        "{:>3} {:>3} {:>11} {:>11} {:>8} {:>8} {:>13}",
        "m", "k", "seq s", "fused s", "x", "model x", "stream ratio"
    );
    let mut worst_ratio = 0.0f64;
    for m in [1usize, 4, 8] {
        let x = MultiVec::from_flat(a.n_cols(), m, vec![1.0; a.n_cols() * m]);
        for k in [1usize, 2, 3, 4] {
            let mut outs: Vec<MultiVec> =
                (0..k).map(|_| MultiVec::zeros(a.n_rows(), m)).collect();
            let mut cur = MultiVec::zeros(a.n_rows(), m);
            let mut nxt = MultiVec::zeros(a.n_rows(), m);

            // k chained sweeps, the per-multiply-stream baseline.
            let seq_sweeps = |cur: &mut MultiVec, nxt: &mut MultiVec| {
                gspmv_serial(&a, &x, nxt);
                for _ in 1..k {
                    std::mem::swap(cur, nxt);
                    gspmv_serial(&a, cur, nxt);
                }
            };
            seq_sweeps(&mut cur, &mut nxt); // warm-up
            let t_seq = (0..reps)
                .map(|_| {
                    let t = Instant::now();
                    seq_sweeps(&mut cur, &mut nxt);
                    std::hint::black_box(&nxt);
                    t.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min);

            spmpv_powers(&a, &x, &mut outs); // warm-up
            let before = mrhs_telemetry::snapshot();
            let t_fused = (0..reps)
                .map(|_| {
                    let t = Instant::now();
                    spmpv_powers(&a, &x, &mut outs);
                    std::hint::black_box(&outs);
                    t.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min);
            let diff = mrhs_telemetry::snapshot().diff(&before);
            // Accounted matrix stream of the fused calls, relative to
            // one full-matrix stream per call.
            let fused_bytes =
                diff.counter(&format!("spmpv/m{m}/matrix_bytes")) as f64;
            let ratio = fused_bytes / (reps as f64 * a.stream_bytes() as f64);
            worst_ratio = worst_ratio.max(ratio);
            println!(
                "{:>3} {:>3} {:>11.3e} {:>11.3e} {:>7.2}x {:>7.2}x {:>12.2}x",
                m,
                k,
                t_seq,
                t_fused,
                t_seq / t_fused,
                model.spmpv_speedup(m, k),
                ratio
            );
        }
    }
    println!(
        "max fused stream per k multiplies: {worst_ratio:.2}x one matrix \
         stream (acceptance: <= 1.5x)"
    );

    // Part 2: a narrow-band operator. The SD matrices' RCM bandwidth
    // grows like n^(2/3), which forces chunks far above the cache
    // target — the wavefront then only saves accounted traffic, not
    // wall time. Banded operators (1D chains, tridiagonal-in-blocks
    // stencils) are where level blocking buys measured time.
    section("SpMPV ablation: narrow-band operator (cache-sized chunks)");
    let nb = 100_000usize;
    let band = 6usize;
    let mut t = mrhs_sparse::BlockTripletBuilder::square(nb);
    for i in 0..nb {
        t.add(i, i, mrhs_sparse::Block3::scaled_identity(4.0 * band as f64));
        for d in 1..=band {
            if i + d < nb {
                t.add_symmetric_pair(
                    i,
                    i + d,
                    mrhs_sparse::Block3::scaled_identity(-1.0 / (i % 7 + d) as f64),
                );
            }
        }
    }
    let a = t.build();
    let plan = PowerPlan::new(&a);
    println!(
        "matrix: nb = {}, nnzb = {}, stream {:.1} MiB, bandwidth {}; plan: \
         {} chunks",
        a.nb_rows(),
        a.nnz_blocks(),
        a.stream_bytes() as f64 / (1 << 20) as f64,
        plan.bandwidth(),
        plan.n_chunks()
    );
    let model = mrhs_perfmodel::GspmvModel::new(&a.stats(), host);
    println!(
        "{:>3} {:>3} {:>11} {:>11} {:>8} {:>8}",
        "m", "k", "seq s", "fused s", "x", "model x"
    );
    for m in [1usize, 4] {
        let x = MultiVec::from_flat(a.n_cols(), m, vec![1.0; a.n_cols() * m]);
        for k in [2usize, 4] {
            let mut outs: Vec<MultiVec> =
                (0..k).map(|_| MultiVec::zeros(a.n_rows(), m)).collect();
            let mut cur = MultiVec::zeros(a.n_rows(), m);
            let mut nxt = MultiVec::zeros(a.n_rows(), m);
            let seq_sweeps = |cur: &mut MultiVec, nxt: &mut MultiVec| {
                gspmv_serial(&a, &x, nxt);
                for _ in 1..k {
                    std::mem::swap(cur, nxt);
                    gspmv_serial(&a, cur, nxt);
                }
            };
            seq_sweeps(&mut cur, &mut nxt);
            let t_seq = (0..reps)
                .map(|_| {
                    let t = Instant::now();
                    seq_sweeps(&mut cur, &mut nxt);
                    std::hint::black_box(&nxt);
                    t.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min);
            spmpv_powers(&a, &x, &mut outs);
            let t_fused = (0..reps)
                .map(|_| {
                    let t = Instant::now();
                    spmpv_powers(&a, &x, &mut outs);
                    std::hint::black_box(&outs);
                    t.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min);
            println!(
                "{:>3} {:>3} {:>11.3e} {:>11.3e} {:>7.2}x {:>7.2}x",
                m,
                k,
                t_seq,
                t_fused,
                t_seq / t_fused,
                model.spmpv_speedup(m, k)
            );
        }
    }
    mrhs_telemetry::set_enabled(was_enabled);
}

/// Kernel-backend ablation: serial GSPMV times per width for the
/// monomorphized scalar path, the strip-mined generic fallback, the
/// fully-runtime naive kernel, the explicit-SIMD backend (when the host
/// has a vector ISA), and dedup storage through the active backend.
/// Reports absolute seconds and speedups relative to the scalar path —
/// the measured record behind EXPERIMENTS.md and the README feature
/// matrix.
pub fn ablation(opts: &Options) {
    use mrhs_perfmodel::measure::{time_gspmv_dedup, time_gspmv_with};
    use mrhs_sparse::{
        active_backend, backend_available, detect_isa, DedupBcrs, KernelKind,
    };

    let n = kernel_particles(opts);
    section("Kernel-backend ablation: serial GSPMV per width");
    let a = sd_matrix(n, TABLE1_CUTOFFS[1].1, opts.seed);
    let s = a.stats();
    let d = DedupBcrs::from_bcrs(&a);
    println!(
        "isa = {}, active backend = {}; nb = {}, nnzb = {}, dedup ratio {:.3} \
         ({} unique of {} blocks)",
        detect_isa().as_str(),
        active_backend().name(),
        s.nb,
        s.nnzb,
        d.dedup_ratio(),
        d.unique_blocks(),
        d.nnz_blocks()
    );
    let simd = backend_available(KernelKind::Simd);
    println!(
        "{:>4} {:>11} {:>11} {:>11} {:>11} {:>11} {:>9} {:>9}",
        "m",
        "scalar s",
        "generic s",
        "naive s",
        "simd s",
        "dedup s",
        "simd x",
        "dedup x"
    );
    for m in [1usize, 2, 4, 8, 12, 16, 24, 32, 48] {
        let t_scalar = time_gspmv_with(KernelKind::Scalar, &a, m, opts.reps);
        let t_generic = time_gspmv_with(KernelKind::Generic, &a, m, opts.reps);
        let x = mrhs_sparse::MultiVec::from_flat(
            a.n_cols(),
            m,
            vec![1.0; a.n_cols() * m],
        );
        let mut y = mrhs_sparse::MultiVec::zeros(a.n_rows(), m);
        mrhs_sparse::gspmv::gspmv_serial_naive(&a, &x, &mut y); // warm-up
        let t_naive = (0..opts.reps.max(3))
            .map(|_| {
                let t = std::time::Instant::now();
                mrhs_sparse::gspmv::gspmv_serial_naive(&a, &x, &mut y);
                std::hint::black_box(&y);
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        let t_simd =
            simd.then(|| time_gspmv_with(KernelKind::Simd, &a, m, opts.reps));
        let t_dedup = time_gspmv_dedup(&d, m, opts.reps);
        println!(
            "{:>4} {:>11.3e} {:>11.3e} {:>11.3e} {:>11} {:>11.3e} {:>9} {:>8.2}x",
            m,
            t_scalar,
            t_generic,
            t_naive,
            t_simd.map_or("-".into(), |t| format!("{t:.3e}")),
            t_dedup,
            t_simd.map_or("-".into(), |t| format!("{:.2}x", t_scalar / t)),
            t_scalar / t_dedup
        );
    }
}

/// Block-BiCGStab ablation (`repro ablation --bicgstab`): one width-`m`
/// block solve against `m` independent scalar BiCGStab solves on a
/// deterministic nonsymmetric convection–diffusion operator, per batch
/// width. Reports wall time, measured speedup, the
/// [`mrhs_perfmodel::BicgstabModel`] prediction, and the
/// service's model-chosen coalescing width — the measured record behind
/// the EXPERIMENTS.md nonsymmetric rows. Solver telemetry (iteration
/// spans, breakdown counters) lands in the `--json` BenchReport
/// snapshot because the report brackets the whole run.
pub fn ablation_bicgstab(opts: &Options) {
    use mrhs_solvers::{
        bicgstab, block_bicgstab_with_options, BlockBicgstabOptions, SolveConfig,
    };
    use mrhs_sparse::{Block3, BlockTripletBuilder, MultiVec};
    use std::time::Instant;

    // A banded convection–diffusion operator: diagonally dominant so
    // BiCGStab converges briskly, genuinely nonsymmetric (downstream
    // couplings ~2.3x the upstream ones, plus skew entries inside the
    // 3x3 blocks), and fully deterministic in (nb, band).
    let nb = kernel_particles(opts);
    let band = 6usize;
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        let mut d = Block3::scaled_identity(6.0 + 2.0 * band as f64);
        *d.get_mut(0, 1) = 0.3;
        t.add(i, i, d);
        for off in 1..=band {
            let w = -1.0 / (1.0 + off as f64 + (i % 5) as f64 * 0.25);
            if i + off < nb {
                let mut down = Block3::scaled_identity(w * 1.4);
                *down.get_mut(0, 2) = w * 0.25;
                t.add(i, i + off, down);
                t.add(i + off, i, Block3::scaled_identity(w * 0.6));
            }
        }
    }
    let a = t.build();
    let s = a.stats();
    section("Block-BiCGStab ablation: width-m block solve vs m scalar solves");
    println!(
        "matrix: nb = {}, nnzb = {}, density {:.1}, stream {:.1} MiB \
         (nonsymmetric convection-diffusion band {band})",
        s.nb,
        s.nnzb,
        s.blocks_per_row(),
        a.stream_bytes() as f64 / (1 << 20) as f64
    );

    let host = host_profile();
    let gspmv = GspmvModel::new(&s, host);
    let model = mrhs_perfmodel::BicgstabModel::new(gspmv);
    let service_width = mrhs_service::model_batch_width_bicgstab(&gspmv, 16);
    println!(
        "model: m_optimal = {} (cap 64), service coalescing width = \
         {service_width}",
        model.m_optimal(64)
    );

    let n = a.n_rows();
    let cfg = SolveConfig { tol: 1e-8, max_iter: 400 };
    let reps = opts.reps.clamp(3, 5);
    println!(
        "{:>3} {:>6} {:>6} {:>11} {:>11} {:>8} {:>8}",
        "m", "it blk", "it sc", "scalar s", "block s", "x", "model x"
    );
    for m in [1usize, 2, 4, 8, 16] {
        // Deterministic, pairwise-distinct right-hand sides (distinct
        // columns matter: duplicates make R~^T.V exactly singular).
        let cols: Vec<Vec<f64>> = (0..m)
            .map(|j| {
                (0..n)
                    .map(|i| (0.3 + (i * (j + 2) + 7 * j) as f64 * 0.618).sin())
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let b = MultiVec::from_columns(&refs);

        let opts_b = BlockBicgstabOptions { solve: cfg, ..Default::default() };
        let mut x = MultiVec::zeros(n, m);
        let res = block_bicgstab_with_options(&a, &b, &mut x, &opts_b); // warm-up
        assert!(
            res.converged,
            "bench operator must converge (breakdown {:?})",
            res.breakdown
        );
        let t_block = (0..reps)
            .map(|_| {
                let mut x = MultiVec::zeros(n, m);
                let t = Instant::now();
                block_bicgstab_with_options(&a, &b, &mut x, &opts_b);
                std::hint::black_box(&x);
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);

        let mut it_scalar = 0usize;
        let t_scalar = (0..reps)
            .map(|_| {
                let t = Instant::now();
                it_scalar = 0;
                for c in &cols {
                    let mut x = vec![0.0; n];
                    let r = bicgstab(&a, c, &mut x, &cfg);
                    assert!(r.converged, "scalar reference must converge");
                    it_scalar += r.iterations;
                    std::hint::black_box(&x);
                }
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);

        println!(
            "{:>3} {:>6} {:>6} {:>11.3e} {:>11.3e} {:>7.2}x {:>7.2}x",
            m,
            res.iterations,
            it_scalar,
            t_scalar,
            t_block,
            t_scalar / t_block,
            model.predicted_speedup(m)
        );
    }
    println!(
        "(model x assumes equal iteration counts; the block solve shares \
         one matrix stream across columns, the paper's Eq. 8 effect)"
    );
}
