//! Stokesian-dynamics accuracy experiments: Table IV, Fig. 5, Fig. 6,
//! Table V.

use crate::common::{section, Options};
use mrhs_core::{run_mrhs_chunk, run_original_step, MrhsConfig};
use mrhs_stokes::{ecoli_radii_distribution, GaussianNoise, SystemBuilder};

/// Table IV: the particle radii distribution used for every SD system.
pub fn table4(_opts: &Options) {
    section("Table IV: distribution of particle radii (E. coli cytoplasm)");
    println!("{:>14} {:>14}", "radius (A)", "fraction (%)");
    for (r, p) in ecoli_radii_distribution() {
        println!("{r:>14.2} {:>14.2}", 100.0 * p);
    }
}

fn build(
    n: usize,
    phi: f64,
    seed: u64,
) -> (mrhs_stokes::StokesianSystem, GaussianNoise) {
    SystemBuilder::new(n).volume_fraction(phi).seed(seed).build_with_noise()
}

/// Fig. 5: relative error of the auxiliary-system initial guesses vs
/// time step. The paper (3,000 particles, 50% occupancy) observes
/// `‖u_k − u'_k‖/‖u_k‖ ≈ c·√k` with c ≈ 0.006 — the Brownian √t law.
pub fn fig5(opts: &Options) {
    let n = (opts.particles / 2).clamp(200, 3000);
    section(&format!(
        "Fig. 5: initial-guess relative error vs step ({n} particles, 50%)"
    ));
    let (mut sys, mut noise) = build(n, 0.5, opts.seed);
    let m = 16;
    let cfg = MrhsConfig { m, ..Default::default() };
    let report = run_mrhs_chunk(&mut sys, &mut noise, &cfg);
    println!("{:>6} {:>14} {:>12}", "step", "rel. error", "err/sqrt(k)");
    let mut consts = Vec::new();
    for (k, s) in report.steps.iter().enumerate().skip(1) {
        let e = s.guess_relative_error.unwrap_or(f64::NAN);
        let c = e / (k as f64).sqrt();
        consts.push(c);
        println!("{k:>6} {e:>14.6} {c:>12.6}");
    }
    let mean_c = consts.iter().sum::<f64>() / consts.len() as f64;
    let spread = consts.iter().map(|c| (c - mean_c).abs()).fold(0.0f64, f64::max);
    println!(
        "sqrt-law constant c = {mean_c:.6} (max dev {:.1}% — paper: c ≈ 0.006, \
         constant in k)",
        100.0 * spread / mean_c
    );
}

/// Fig. 6: warm-started first-solve iterations vs time step for three
/// system sizes at 50% occupancy — slow growth over the chunk.
pub fn fig6(opts: &Options) {
    let sizes = [
        (opts.particles / 20).max(100),
        (opts.particles / 5).max(300),
        opts.particles,
    ];
    section(&format!(
        "Fig. 6: iterations vs step with initial guesses (sizes {sizes:?}, 50%)"
    ));
    let m = 12;
    let mut tables = Vec::new();
    for &n in &sizes {
        let (mut sys, mut noise) = build(n, 0.5, opts.seed);
        let cfg = MrhsConfig { m, ..Default::default() };
        let report = run_mrhs_chunk(&mut sys, &mut noise, &cfg);
        tables.push(
            report
                .steps
                .iter()
                .map(|s| s.first_solve_iterations)
                .collect::<Vec<_>>(),
        );
    }
    print!("{:>6}", "step");
    for n in sizes {
        print!(" {:>10}", format!("{n} part."));
    }
    println!();
    for k in 1..m {
        print!("{k:>6}");
        for t in &tables {
            print!(" {:>10}", t[k]);
        }
        println!();
    }
}

/// Table V: first-solve iterations with and without initial guesses at
/// 10%/30%/50% occupancy. Paper (300k particles): with guesses
/// 8–9/12–15/80–89, without 16/30/162 — a 30–40% reduction.
pub fn table5(opts: &Options) {
    let n = opts.particles;
    section(&format!(
        "Table V: iterations with/without initial guesses ({n} particles)"
    ));
    let phis = [0.1, 0.3, 0.5];
    let m = 13; // reports steps 1..12 of a chunk
    let mut with_guess: Vec<Vec<usize>> = Vec::new();
    let mut without: Vec<Vec<usize>> = Vec::new();
    for &phi in &phis {
        let (mut sys, mut noise) = build(n, phi, opts.seed);
        let cfg = MrhsConfig { m, ..Default::default() };
        let report = run_mrhs_chunk(&mut sys, &mut noise, &cfg);
        with_guess.push(
            report.steps[1..].iter().map(|s| s.first_solve_iterations).collect(),
        );

        // Identical system and noise stream, original algorithm.
        let (mut sys2, mut noise2) = build(n, phi, opts.seed);
        let mut cache = None;
        let mut cold = Vec::new();
        for _ in 0..m {
            let s = run_original_step(&mut sys2, &mut noise2, &cfg, &mut cache);
            cold.push(s.first_solve_iterations);
        }
        without.push(cold[1..].to_vec());
    }
    println!(
        "{:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
        "step", "w 0.1", "w 0.3", "w 0.5", "wo 0.1", "wo 0.3", "wo 0.5"
    );
    for k in 0..m - 1 {
        println!(
            "{:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
            k + 1,
            with_guess[0][k],
            with_guess[1][k],
            with_guess[2][k],
            without[0][k],
            without[1][k],
            without[2][k]
        );
    }
    for (i, phi) in phis.iter().enumerate() {
        let w: f64 =
            with_guess[i].iter().sum::<usize>() as f64 / with_guess[i].len() as f64;
        let wo: f64 =
            without[i].iter().sum::<usize>() as f64 / without[i].len() as f64;
        println!(
            "phi = {phi}: mean {w:.1} with vs {wo:.1} without -> {:.0}% reduction \
             (paper: 30-50%)",
            100.0 * (1.0 - w / wo)
        );
    }
}
