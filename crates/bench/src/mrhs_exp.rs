//! End-to-end MRHS experiments: Tables VI, VII, VIII, Fig. 7, Fig. 8.

use crate::common::{f, section, Options, TABLE1_CUTOFFS};
use mrhs_core::tuning::{
    detect_switch_point, optimal_m_from_costs, tmrhs, toriginal, IterationCounts,
};
use mrhs_core::{run_mrhs_chunk, run_original_step, MrhsConfig, TimingBreakdown};
use mrhs_perfmodel::measure::{host_profile, time_gspmv};
use mrhs_perfmodel::mrhs_model::{MrhsModel, SolveCounts};
use mrhs_perfmodel::{GspmvModel, MachineProfile};
use mrhs_stokes::{
    assemble_resistance, GaussianNoise, ResistanceConfig, StokesianSystem,
    SystemBuilder,
};

fn build(n: usize, phi: f64, seed: u64) -> (StokesianSystem, GaussianNoise) {
    SystemBuilder::new(n).volume_fraction(phi).seed(seed).build_with_noise()
}

/// Runs `steps` of the MRHS algorithm (in chunks of `m`) and the same
/// number of baseline steps on an identical system, returning the two
/// timing breakdowns and the measured iteration counts
/// `(N, N1, N2)`.
type BothTimings = (TimingBreakdown, TimingBreakdown, IterationCounts);

fn run_both(n: usize, phi: f64, seed: u64, m: usize, chunks: usize) -> BothTimings {
    let cfg = MrhsConfig { m, ..Default::default() };

    let (mut sys, mut noise) = build(n, phi, seed);
    let mut mrhs = TimingBreakdown::default();
    let (mut n1_sum, mut n1_cnt) = (0usize, 0usize);
    let (mut n2_sum, mut n2_cnt) = (0usize, 0usize);
    for _ in 0..chunks {
        let report = run_mrhs_chunk(&mut sys, &mut noise, &cfg);
        for (k, s) in report.steps.iter().enumerate() {
            mrhs.add_step(&s.timings);
            if k > 0 {
                n1_sum += s.first_solve_iterations;
                n1_cnt += 1;
            }
            n2_sum += s.second_solve_iterations;
            n2_cnt += 1;
        }
    }

    let (mut sys2, mut noise2) = build(n, phi, seed);
    let mut orig = TimingBreakdown::default();
    let mut cache = None;
    let (mut n_sum, mut n_cnt) = (0usize, 0usize);
    for _ in 0..m * chunks {
        let s = run_original_step(&mut sys2, &mut noise2, &cfg, &mut cache);
        orig.add_step(&s.timings);
        n_sum += s.first_solve_iterations;
        n_cnt += 1;
    }

    let counts = IterationCounts {
        cold: (n_sum as f64 / n_cnt.max(1) as f64).round() as usize,
        warm_first: (n1_sum as f64 / n1_cnt.max(1) as f64).round() as usize,
        warm_second: (n2_sum as f64 / n2_cnt.max(1) as f64).round() as usize,
        cheb_order: cfg.cheb_order,
    };
    (mrhs, orig, counts)
}

type CategoryGetter = fn(&TimingBreakdown) -> f64;

fn print_breakdown_pair(
    labels: &[String],
    pairs: &[(TimingBreakdown, TimingBreakdown)],
) {
    println!("{:<14} {}", "", labels.join("  |  "));
    let rows: [(&str, CategoryGetter); 6] = [
        ("Cheb vectors", |b| b.category_averages().0),
        ("Calc guesses", |b| b.category_averages().1),
        ("Cheb single", |b| b.category_averages().2),
        ("1st solve", |b| b.category_averages().3),
        ("2nd solve", |b| b.category_averages().4),
        ("Average", |b| b.average_per_step()),
    ];
    for (name, get) in rows {
        print!("{name:<14}");
        for (mrhs, orig) in pairs {
            print!(
                " mrhs {:>8}  orig {:>8}",
                f(get(mrhs)),
                if name == "Cheb vectors" || name == "Calc guesses" {
                    "-".to_string()
                } else {
                    f(get(orig))
                }
            );
        }
        println!();
    }
    print!("{:<14}", "Speedup");
    for (mrhs, orig) in pairs {
        print!(" {:>23}x", f(orig.average_per_step() / mrhs.average_per_step()));
    }
    println!("   (paper: 1.1x-1.4x)");
}

/// Measures the per-iteration cost of block CG beyond the GSPMV: the
/// Gram reductions and dense updates, `O(n·m²)` each. The paper's Eq. 9
/// treats a block iteration as one GSPMV; on hosts where the matrix is
/// cache-resident these BLAS-like terms are not negligible, so the
/// `m`-selection here prices them in.
fn block_iteration_overhead(n_scalar: usize, m: usize, reps: usize) -> f64 {
    use mrhs_sparse::MultiVec;
    use std::time::Instant;
    let a = MultiVec::from_flat(n_scalar, m, vec![1.0; n_scalar * m]);
    let mut b = a.clone();
    let c = vec![0.5; m * m];
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(3) {
        let t = Instant::now();
        // one block-CG iteration's worth: 2 grams, 2 X-updates, 1 P-update
        std::hint::black_box(a.gram(&b));
        std::hint::black_box(a.gram(&a));
        b.add_mul_dense(&a, &c);
        b.add_mul_dense(&a, &c);
        b.assign_add_mul_dense(&a, &c);
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Picks the number of right-hand sides for this host and system via
/// Eq. 9 on a measured *effective* block-iteration cost curve (GSPMV
/// plus the dense block-CG terms) — the procedure §V-B3 prescribes,
/// with the implementation overhead priced in. A short probe chunk
/// supplies the iteration counts.
fn pick_m(
    n: usize,
    phi: f64,
    opts: &Options,
) -> (usize, Vec<(usize, f64)>, IterationCounts) {
    let (sys, _) = build(n, phi, opts.seed);
    let a = assemble_resistance(sys.particles(), &ResistanceConfig::default());
    let n_scalar = a.n_rows();
    let costs: Vec<(usize, f64)> = [1usize, 2, 4, 8, 12, 16]
        .iter()
        .map(|&m| {
            let t = time_gspmv(&a, m, opts.reps.max(3))
                + if m > 1 {
                    block_iteration_overhead(n_scalar, m, opts.reps)
                } else {
                    0.0
                };
            (m, t)
        })
        .collect();
    let (_, _, counts) = run_both(n, phi, opts.seed, 4, 1);
    let m = optimal_m_from_costs(&costs, &counts).clamp(2, 16);
    (m, costs, counts)
}

/// Deterministic Eq. 9 speedup from stable quantities: measured
/// iteration counts and the min-estimator cost curve. This is robust to
/// scheduler noise, unlike single-run wall-clock ratios on a shared
/// machine.
fn eq9_speedup(costs: &[(usize, f64)], counts: &IterationCounts, m: usize) -> f64 {
    let t1 = costs[0].1;
    let t_m = costs
        .iter()
        .find(|(mm, _)| *mm == m)
        .map(|(_, t)| *t)
        .unwrap_or_else(|| costs.last().unwrap().1);
    // The block solve stops at guess_tol = 1e-4 instead of 1e-6, so it
    // takes about log(1e4)/log(1e6) = 2/3 of the cold iteration count.
    let block = IterationCounts {
        cold: (counts.cold as f64 * 2.0 / 3.0).round() as usize,
        ..*counts
    };
    toriginal(t1, counts) / tmrhs(m, t_m, t1, &block)
}

/// Table VI: per-step timing breakdown vs problem size at 50%
/// occupancy. Paper sizes 3k/30k/300k; ours scale with `--particles`.
/// `m` is chosen per system by Eq. 9, as the paper prescribes (§V-B3);
/// the paper's own runs used m = 16 at 300k scale.
pub fn table6(opts: &Options) {
    let sizes = [
        (opts.particles / 20).max(100),
        (opts.particles / 5).max(300),
        opts.particles,
    ];
    section(&format!(
        "Table VI: timing breakdown per step vs problem size {sizes:?} (50%)"
    ));
    for &n in &sizes {
        let (m, costs, probe_counts) = pick_m(n, 0.5, opts);
        let (mrhs, orig, counts) = run_both(n, 0.5, opts.seed, m, 2);
        println!(
            "\n-- {n} particles (m={m}, N={}, N1={}, N2={}) --",
            counts.cold, counts.warm_first, counts.warm_second
        );
        print_breakdown_pair(&[format!("{n} particles")], &[(mrhs, orig)]);
        println!(
            "Eq.9 speedup from measured counts + cost curve: {:.2}x",
            eq9_speedup(&costs, &probe_counts, m)
        );
    }
}

/// Table VII: per-step timing breakdown vs volume occupancy at fixed
/// size. Paper: speedups grow with occupancy (1.06x → 1.23x → 1.41x).
pub fn table7(opts: &Options) {
    let n = opts.particles;
    section(&format!(
        "Table VII: timing breakdown per step vs occupancy ({n} particles)"
    ));
    for phi in [0.1, 0.3, 0.5] {
        let (m, costs, probe_counts) = pick_m(n, phi, opts);
        let (mrhs, orig, counts) = run_both(n, phi, opts.seed, m, 2);
        println!(
            "\n-- occupancy {phi} (m={m}, N={}, N1={}, N2={}) --",
            counts.cold, counts.warm_first, counts.warm_second
        );
        print_breakdown_pair(&[format!("phi={phi}")], &[(mrhs, orig)]);
        println!(
            "Eq.9 speedup from measured counts + cost curve: {:.2}x",
            eq9_speedup(&costs, &probe_counts, m)
        );
    }
}

/// Fig. 7: predicted vs achieved average step time as a function of m.
pub fn fig7(opts: &Options) {
    let n = opts.particles;
    section(&format!(
        "Fig. 7: predicted vs achieved average step time vs m ({n} particles, 50%)"
    ));
    // Measure the GSPMV cost curve of this system's matrix.
    let (sys, _) = build(n, 0.5, opts.seed);
    let a = assemble_resistance(sys.particles(), &ResistanceConfig::default());
    let ms = [1usize, 2, 4, 8, 12, 16, 24, 32];
    let costs: Vec<(usize, f64)> =
        ms.iter().map(|&m| (m, time_gspmv(&a, m, opts.reps))).collect();

    // Measure iteration counts once (m = 16 chunk).
    let (_, _, counts) = run_both(n, 0.5, opts.seed, 16, 1);
    println!(
        "measured counts: N = {}, N1 = {}, N2 = {}, Cmax = {}",
        counts.cold, counts.warm_first, counts.warm_second, counts.cheb_order
    );

    // Model curves with the host profile.
    let host = host_profile();
    let model = MrhsModel {
        gspmv: GspmvModel::new(&a.stats(), host),
        counts: SolveCounts {
            cold: counts.cold,
            warm_first: counts.warm_first,
            warm_second: counts.warm_second,
            cheb_order: counts.cheb_order,
        },
    };

    let t1 = costs[0].1;
    // Normalize the model to the measured single-vector time: on hosts
    // with very large LLCs the matrices are cache-resident and the
    // DRAM-bandwidth model over-predicts absolute times; the *shape*
    // (where the minimum falls) is the prediction of interest, exactly
    // as in the paper's Fig. 7.
    let norm = t1 / model.gspmv.time(1);
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12}   (model scaled by {:.2})",
        "m", "achieved*", "predicted", "bw-estimate", "comp-estimate", norm
    );
    for &(m, t_m) in &costs {
        // "Achieved" via Eq. 9 on the *measured* cost curve (the true
        // end-to-end runs appear in Tables VI/VII); predicted uses the
        // model curve scaled to the measured T(1).
        println!(
            "{m:>4} {:>12} {:>12} {:>12} {:>12}",
            f(tmrhs(m, t_m, t1, &counts)),
            f(model.tmrhs(m) * norm),
            f(model.tmrhs_bandwidth(m) * norm),
            f(model.tmrhs_compute(m) * norm)
        );
    }
    println!(
        "original algorithm: measured-curve {} / model {}",
        f(toriginal(t1, &counts)),
        f(model.toriginal() * norm)
    );
    let mo_measured = optimal_m_from_costs(&costs, &counts);
    let mo_model = model.m_optimal(32);
    println!("m_optimal: measured-curve {mo_measured}, model {mo_model}");
}

/// Table VIII: the switch point `m_s` vs the optimal `m` across several
/// systems. Paper: they are within 1–3 of each other everywhere.
pub fn table8(opts: &Options) {
    section("Table VIII: m_s vs m_optimal for different systems");
    let host = host_profile();
    let systems: [(usize, f64); 5] = [
        ((opts.particles / 20).max(100), 0.5),
        ((opts.particles / 5).max(300), 0.5),
        (opts.particles, 0.1),
        (opts.particles, 0.3),
        (opts.particles, 0.5),
    ];
    println!(
        "{:>10} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "particles", "phi", "ms(model)", "ms(meas.)", "mo(model)", "mo(meas.)"
    );
    for (n, phi) in systems {
        let (sys, _) = build(n, phi, opts.seed);
        let a = assemble_resistance(sys.particles(), &ResistanceConfig::default());
        let gspmv = GspmvModel::new(&a.stats(), host);
        let ms_model = gspmv.switch_point();

        let mvals = [1usize, 2, 4, 8, 12, 16, 24, 32];
        let costs: Vec<(usize, f64)> =
            mvals.iter().map(|&m| (m, time_gspmv(&a, m, opts.reps))).collect();
        let curve: Vec<(usize, f64)> =
            costs.iter().map(|&(m, t)| (m, t / costs[0].1)).collect();
        let ms_measured = detect_switch_point(&curve);

        let (_, _, counts) = run_both(n, phi, opts.seed, 8, 1);
        let model = MrhsModel {
            gspmv,
            counts: SolveCounts {
                cold: counts.cold,
                warm_first: counts.warm_first,
                warm_second: counts.warm_second,
                cheb_order: counts.cheb_order,
            },
        };
        let mo_model = model.m_optimal(32);
        let mo_measured = optimal_m_from_costs(&costs, &counts);
        println!(
            "{n:>10} {phi:>6} {:>12} {ms_measured:>12} {mo_model:>12} {mo_measured:>12}",
            ms_model.map_or("never".to_string(), |v| v.to_string()),
        );
    }
}

/// Fig. 8: (a) modeled GSPMV time vs thread count; (b) modeled MRHS
/// speedup vs thread count. More threads raise compute throughput much
/// faster than bandwidth, lowering B/F — extra vectors get cheaper, so
/// the MRHS advantage grows (the paper's observation for large
/// manycore nodes). The host of record has few cores, so this
/// experiment replays the paper's WSM parameters.
pub fn fig8(opts: &Options) {
    section("Fig. 8: thread scaling (paper-machine model)");
    let base = MachineProfile::wsm();
    let density = TABLE1_CUTOFFS[1].2; // mat2-like
    let counts = SolveCounts::fig7();
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>10}",
        "threads", "B/F", "T_gspmv(16)", "rel. t(16)", "speedup"
    );
    for threads in [1usize, 2, 4, 8] {
        let machine = base.with_threads(threads, 8);
        let gspmv = GspmvModel::from_density(density, machine);
        let model = MrhsModel { gspmv, counts };
        println!(
            "{threads:>8} {:>8.2} {:>14} {:>14} {:>9}x",
            machine.byte_per_flop(),
            f(gspmv.time(16) * 1e3),
            f(gspmv.relative_time(16)),
            f(model.predicted_speedup(32))
        );
    }
    println!("(paper Fig. 8b: speedup grows with threads, ~1.3x at 8 threads)");
    let _ = opts;
}
