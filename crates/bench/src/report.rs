//! `--json` support: collects a [`BenchReport`] for a `repro` run.
//!
//! The report brackets the whole invocation with a telemetry snapshot
//! diff, then runs one dedicated instrumented pass — GSPMV at several
//! `m` against the Eq. 8 model, a block CG solve, and a distributed
//! engine multiply — so the file always contains model-vs-measured
//! kernel rows and solver/engine span trees even for subcommands that
//! exercise neither. [`BenchReport::validate`] gates the write: a NaN
//! or zero rate, or a span decomposition off by more than 5%, exits
//! nonzero instead of shipping a bad artifact.

use crate::common::{sd_matrix, section, Options, TABLE1_CUTOFFS};
use mrhs_cluster::{DistEngine, DistributedMatrix};
use mrhs_perfmodel::measure::{
    host_profile, time_gspmv, time_gspmv_dedup, time_gspmv_with,
};
use mrhs_perfmodel::mrhs_model::SolveCounts;
use mrhs_perfmodel::GspmvModel;
use mrhs_perfmodel::MrhsModel;
use mrhs_solvers::{block_cg, SolveConfig};
use mrhs_sparse::partition::contiguous_partition;
use mrhs_sparse::{
    active_backend, backend_available, detect_isa, DedupBcrs, KernelKind, MultiVec,
};
use mrhs_telemetry::derived::{gbps, gflops, relative_residual, span_consistency};
use mrhs_telemetry::report::{
    BenchReport, DriftGauge, KernelMetric, MachineInfo, TraceOverhead,
    SCHEMA_VERSION,
};
use mrhs_telemetry::{flight, trace, Snapshot};

/// The `m` values of the instrumented GSPMV pass.
const REPORT_MS: [usize; 4] = [1, 4, 8, 16];

/// Turns telemetry on and snapshots the registry — called before the
/// experiment subcommand runs so its own counters land in the report.
pub fn start() -> Snapshot {
    mrhs_telemetry::set_enabled(true);
    mrhs_telemetry::snapshot()
}

/// Runs the instrumented pass, assembles the report bracketed against
/// `before`, validates it, and writes it to `path`. Exits nonzero when
/// validation fails — this is the CI gate against NaN/zero rates.
pub fn write(path: &str, experiment: &str, opts: &Options, before: &Snapshot) {
    section("BenchReport: instrumented measurement pass");
    let host = host_profile();
    println!(
        "host: B = {:.1} GB/s, F = {:.1} Gflop/s, k = {}",
        host.bandwidth / 1e9,
        host.flops / 1e9,
        host.k
    );

    // Kernel rows: measured vs Eq. 8 on a mat2-density SD matrix. The
    // byte accounting mirrors `mrhs_sparse`'s telemetry counters (k = 0
    // minimum traffic) so measured GB/s is model-comparable.
    let a = sd_matrix(opts.particles, TABLE1_CUTOFFS[1].1, opts.seed);
    let stats = a.stats();
    let model = GspmvModel::new(&stats, host);
    let nb = stats.nb as f64;
    let nnzb = stats.nnzb as f64;
    let mut kernels = Vec::new();
    println!(
        "{:>4} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "m", "measured s", "GB/s", "GF/s", "model s", "residual"
    );
    for &m in &REPORT_MS {
        let secs = time_gspmv(&a, m, opts.reps);
        let matrix_bytes = 4.0 * nb + 76.0 * nnzb;
        let vector_bytes = 24.0 * m as f64 * nb;
        let flops = 18.0 * nnzb * m as f64;
        let model_secs = model.time(m);
        let metric = KernelMetric {
            name: "gspmv".into(),
            m: m as u64,
            calls: opts.reps.max(3) as u64,
            measured_secs: secs,
            matrix_bytes,
            vector_bytes,
            flops,
            measured_gbps: gbps(matrix_bytes + vector_bytes, secs),
            measured_gflops: gflops(flops, secs),
            model_secs,
            model_gbps: gbps(model.memory_traffic(m), model_secs),
            residual: relative_residual(secs, model_secs),
        };
        println!(
            "{:>4} {:>12.3e} {:>10.2} {:>10.2} {:>12.3e} {:>+9.0}%",
            m,
            metric.measured_secs,
            metric.measured_gbps,
            metric.measured_gflops,
            metric.model_secs,
            100.0 * metric.residual
        );
        kernels.push(metric);
    }

    // Per-backend GSPMV rows: every kernel backend available on this
    // host, forced explicitly, plus dedup storage through the active
    // backend — the ablation record behind the feature matrix.
    let dedup = DedupBcrs::from_bcrs(&a);
    println!(
        "per-backend pass (isa = {}, active = {}, dedup ratio {:.2})",
        detect_isa().as_str(),
        active_backend().name(),
        dedup.dedup_ratio()
    );
    for &m in &REPORT_MS {
        let matrix_bytes = 4.0 * nb + 76.0 * nnzb;
        let vector_bytes = 24.0 * m as f64 * nb;
        let flops = 18.0 * nnzb * m as f64;
        let model_secs = model.time(m);
        let mut push = |name: String, secs: f64, matrix_bytes: f64| {
            kernels.push(KernelMetric {
                name,
                m: m as u64,
                calls: opts.reps.max(3) as u64,
                measured_secs: secs,
                matrix_bytes,
                vector_bytes,
                flops,
                measured_gbps: gbps(matrix_bytes + vector_bytes, secs),
                measured_gflops: gflops(flops, secs),
                model_secs,
                model_gbps: gbps(model.memory_traffic(m), model_secs),
                residual: relative_residual(secs, model_secs),
            });
        };
        for kind in KernelKind::ALL {
            if backend_available(kind) {
                let secs = time_gspmv_with(kind, &a, m, opts.reps);
                push(format!("gspmv_{}", kind.as_str()), secs, matrix_bytes);
            }
        }
        let secs = time_gspmv_dedup(&dedup, m, opts.reps);
        push("gspmv_dedup".into(), secs, dedup.stream_bytes() as f64);
    }

    // Solver spans: one block CG solve on the same SPD matrix.
    let n = a.n_rows();
    let m_rhs = 4;
    let b = MultiVec::from_flat(n, m_rhs, vec![1.0; n * m_rhs]);
    let mut x = MultiVec::zeros(n, m_rhs);
    let cg = block_cg(&a, &b, &mut x, &SolveConfig::default());
    println!(
        "block CG: {} iterations, converged = {}",
        cg.iterations, cg.converged
    );

    // Engine spans: a 2-node distributed multiply of the same matrix.
    let part = contiguous_partition(&a, 2);
    let dm = DistributedMatrix::new(&a, &part);
    let engine = DistEngine::new(dm);
    let xe = MultiVec::from_flat(n, m_rhs, vec![0.5; n * m_rhs]);
    let (_, estats) = engine.multiply(&xe);
    println!(
        "engine: 2 nodes, slowest node {:.3e} s ({:.0}% comm wait)",
        estats.slowest().total(),
        100.0 * estats.slowest().comm_fraction()
    );

    // Trace-overhead row: the same GSPMV loop with causal tracing off
    // vs on. Tracing adds one kernel child span per call, so this is
    // the per-call floor of the tracing tax (the service-bench gate
    // measures the end-to-end version at saturating load).
    let m_ov = 8usize;
    let was_tracing = trace::trace_enabled();
    trace::set_trace_enabled(false);
    let base_secs = time_gspmv(&a, m_ov, opts.reps);
    let fs_before = flight::stats();
    trace::set_trace_enabled(true);
    let traced_secs = {
        // Kernel spans need an ambient trace context to emit under.
        let _root = trace::root_span("report/trace_overhead");
        time_gspmv(&a, m_ov, opts.reps)
    };
    trace::set_trace_enabled(was_tracing);
    let fs_after = flight::stats();
    let trace_overhead = TraceOverhead {
        baseline_rhs_per_sec: m_ov as f64 / base_secs,
        traced_rhs_per_sec: m_ov as f64 / traced_secs,
        overhead_frac: 1.0 - base_secs / traced_secs,
        events_recorded: fs_after.recorded.saturating_sub(fs_before.recorded),
        events_sampled_out: fs_after
            .sampled_out
            .saturating_sub(fs_before.sampled_out),
    };
    println!(
        "trace overhead (gspmv m={m_ov}): {:+.2}% ({} events)",
        100.0 * trace_overhead.overhead_frac,
        trace_overhead.events_recorded
    );

    // Model-drift gauges: measured-vs-Eq. 8 ratios straight from the
    // kernel rows above, plus the Eq. 9 prediction, under the same
    // names the serving exporter publishes.
    let mut drift_gauges = Vec::new();
    for k in kernels.iter().filter(|k| k.name == "gspmv") {
        if k.model_secs > 0.0 {
            drift_gauges.push(DriftGauge {
                name: format!("drift/gspmv/m{}/ratio", k.m),
                value: k.measured_secs / k.model_secs,
            });
        }
    }
    let m_opt =
        MrhsModel { gspmv: model, counts: SolveCounts::fig7() }.m_optimal(16);
    drift_gauges.push(DriftGauge {
        name: "drift/m_optimal/modeled".into(),
        value: m_opt as f64,
    });

    let diff = mrhs_telemetry::snapshot().diff(before);
    let consistency = span_consistency(&diff);
    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: experiment.to_string(),
        created_unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        machine: MachineInfo {
            os: std::env::consts::OS.into(),
            arch: std::env::consts::ARCH.into(),
            threads: rayon::current_num_threads() as u64,
            isa: detect_isa().as_str().into(),
            kernel_backend: active_backend().name().into(),
            stream_bandwidth_bps: host.bandwidth,
            kernel_flops: host.flops,
            model_k: host.k,
        },
        kernels,
        span_consistency: consistency,
        snapshot: diff,
        trace_overhead: Some(trace_overhead),
        drift_gauges,
    };

    let problems = report.validate();
    if !problems.is_empty() {
        eprintln!("BenchReport validation failed:");
        for p in &problems {
            eprintln!("  - {p}");
        }
        std::process::exit(1);
    }
    std::fs::write(path, report.to_json_string())
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "wrote {path}: {} kernel rows, {} span checks, {} counters",
        report.kernels.len(),
        report.span_consistency.len(),
        report.snapshot.counters.len()
    );
}
