//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro <experiment> [--particles N] [--reps N] [--seed N] [--full]
//!       [--symmetric]
//! ```
//! `--symmetric` switches `fig2` to the symmetric-storage kernels
//! (`repro fig2 --symmetric`); `--spmpv` switches `ablation` to the
//! fused matrix-power comparison (`repro ablation --spmpv`);
//! `--bicgstab` switches `ablation` to the nonsymmetric block-BiCGStab
//! vs scalar-BiCGStab comparison (`repro ablation --bicgstab`).
//! where `<experiment>` is one of `table1 table2 table3 table4 table5
//! table6 table7 table8 fig1 fig2 fig2-model ablation fig3 fig4 fig5
//! fig6 fig7 fig8 verify-exchange engine engine-powers all quick`.
//!
//! Sizes default to a laptop-scale 2,000 particles (the paper's
//! 300,000 scaled down); densities, iteration counts, and every trend
//! are size-portable, and `--full` restores paper scale.

mod cluster_exp;
mod common;
mod kernels;
mod mrhs_exp;
mod report;
mod sd_exp;

use common::Options;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let opts = Options::parse(&args);
    // Bracket the whole run with a telemetry snapshot so the
    // subcommand's own counters land in the report.
    let before = opts.json.as_ref().map(|_| report::start());

    match cmd {
        "table1" => kernels::table1(&opts),
        "table2" => kernels::table2(&opts),
        "fig1" => kernels::fig1(&opts),
        "fig2" => {
            if opts.symmetric {
                kernels::fig2_symmetric(&opts)
            } else {
                kernels::fig2(&opts)
            }
        }
        "fig2-model" => kernels::fig2_paper_model(&opts),
        "ablation" => {
            if opts.spmpv {
                kernels::ablation_spmpv(&opts)
            } else if opts.bicgstab {
                kernels::ablation_bicgstab(&opts)
            } else {
                kernels::ablation(&opts)
            }
        }
        "fig3" => cluster_exp::fig3(&opts),
        "fig4" => cluster_exp::fig4(&opts),
        "table3" => cluster_exp::table3(&opts),
        "verify-exchange" => cluster_exp::verify_exchange(&opts),
        "engine" => cluster_exp::engine(&opts),
        "engine-powers" => cluster_exp::engine_powers(&opts),
        "cluster-mrhs" => cluster_exp::cluster_mrhs(&opts),
        "table4" => sd_exp::table4(&opts),
        "fig5" => sd_exp::fig5(&opts),
        "fig6" => sd_exp::fig6(&opts),
        "table5" => sd_exp::table5(&opts),
        "table6" => mrhs_exp::table6(&opts),
        "table7" => mrhs_exp::table7(&opts),
        "fig7" => mrhs_exp::fig7(&opts),
        "table8" => mrhs_exp::table8(&opts),
        "fig8" => mrhs_exp::fig8(&opts),
        "all" => {
            kernels::table1(&opts);
            kernels::table2(&opts);
            kernels::fig1(&opts);
            kernels::fig2(&opts);
            kernels::fig2_paper_model(&opts);
            cluster_exp::fig3(&opts);
            cluster_exp::fig4(&opts);
            cluster_exp::table3(&opts);
            cluster_exp::verify_exchange(&opts);
            cluster_exp::engine(&opts);
            cluster_exp::engine_powers(&opts);
            cluster_exp::cluster_mrhs(&opts);
            sd_exp::table4(&opts);
            sd_exp::fig5(&opts);
            sd_exp::fig6(&opts);
            sd_exp::table5(&opts);
            mrhs_exp::table6(&opts);
            mrhs_exp::table7(&opts);
            mrhs_exp::fig7(&opts);
            mrhs_exp::table8(&opts);
            mrhs_exp::fig8(&opts);
        }
        "quick" => {
            // The model-only experiments: no heavy measurement.
            kernels::fig1(&opts);
            kernels::fig2_paper_model(&opts);
            cluster_exp::table3(&opts);
            sd_exp::table4(&opts);
            mrhs_exp::fig8(&opts);
        }
        _ => {
            eprintln!(
                "usage: repro <table1|table2|table3|table4|table5|table6|table7|\
                 table8|fig1|fig2|fig2-model|ablation|fig3|fig4|fig5|fig6|fig7|\
                 fig8|verify-exchange|engine|engine-powers|cluster-mrhs|all|quick> \
                 [--particles N] [--reps N] [--seed N] [--full] [--symmetric] \
                 [--spmpv] [--bicgstab] [--json <path>]"
            );
            std::process::exit(2);
        }
    }

    if let (Some(path), Some(before)) = (&opts.json, &before) {
        report::write(path, cmd, &opts, before);
    }
}
