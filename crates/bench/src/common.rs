//! Shared experiment plumbing: workload generation, option parsing,
//! table printing.

use mrhs_sparse::BcrsMatrix;
use mrhs_stokes::{assemble_resistance, ResistanceConfig, SystemBuilder};

/// Command-line options shared by every experiment.
#[derive(Clone, Debug)]
pub struct Options {
    /// Base particle count (the paper's 300,000 scaled down by default
    /// so every experiment finishes on a laptop; pass `--full` or
    /// `--particles N` to scale up).
    pub particles: usize,
    /// Measurement repetitions for timed kernels.
    pub reps: usize,
    /// RNG seed.
    pub seed: u64,
    /// Run the symmetric-storage variant of an experiment (currently
    /// `fig2`): curves measured on [`mrhs_sparse::SymmetricBcrs`]
    /// instead of full storage.
    pub symmetric: bool,
    /// `--json <path>`: enable telemetry for the run and write a
    /// validated [`mrhs_telemetry::report::BenchReport`] there.
    pub json: Option<String>,
    /// Run the SpMPV variant of an experiment (currently `ablation`):
    /// fused matrix-power kernels vs repeated GSPMV sweeps.
    pub spmpv: bool,
    /// Run the block-BiCGStab variant of an experiment (currently
    /// `ablation`): width-`m` block solves vs `m` scalar BiCGStab
    /// solves on a nonsymmetric operator.
    pub bicgstab: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            particles: 2000,
            reps: 5,
            seed: 20120521,
            symmetric: false,
            json: None,
            spmpv: false,
            bicgstab: false,
        }
    }
}

impl Options {
    /// Parses `--particles N`, `--reps N`, `--seed N`, `--full` from the
    /// argument list (unknown arguments are ignored by design so every
    /// subcommand accepts the same flags).
    pub fn parse(args: &[String]) -> Options {
        let mut o = Options::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--particles" => {
                    o.particles = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--particles needs a number");
                }
                "--reps" => {
                    o.reps = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--reps needs a number");
                }
                "--seed" => {
                    o.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a number");
                }
                "--full" => o.particles = 300_000,
                "--symmetric" => o.symmetric = true,
                "--spmpv" => o.spmpv = true,
                "--bicgstab" => o.bicgstab = true,
                "--json" => {
                    o.json =
                        Some(it.next().cloned().expect("--json needs a file path"));
                }
                _ => {}
            }
        }
        o
    }
}

/// The three matrix flavours of Table I, produced (as in the paper) by
/// changing the interaction cutoff of the SD generator.
pub const TABLE1_CUTOFFS: [(&str, f64, f64); 3] = [
    // (name, s_cut, paper nnzb/nb)
    ("mat1", 2.25, 5.6),
    ("mat2", 3.2, 24.9),
    ("mat3", 4.1, 45.3),
];

thread_local! {
    static PACKED: std::cell::RefCell<
        std::collections::HashMap<(usize, u64), mrhs_stokes::ParticleSystem>,
    > = std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Packs (and memoizes) the standard 50%-occupancy particle system —
/// packing is the slow part and is independent of the matrix cutoff.
pub fn packed_system(n: usize, seed: u64) -> mrhs_stokes::ParticleSystem {
    PACKED.with(|cache| {
        cache
            .borrow_mut()
            .entry((n, seed))
            .or_insert_with(|| {
                SystemBuilder::new(n)
                    .volume_fraction(0.5)
                    .seed(seed)
                    .build()
                    .particles()
                    .clone()
            })
            .clone()
    })
}

/// Generates a Table I-style matrix: `n` particles at 50% occupancy with
/// the given cutoff.
pub fn sd_matrix(n: usize, s_cut: f64, seed: u64) -> BcrsMatrix {
    let particles = packed_system(n, seed);
    assemble_resistance(
        &particles,
        &ResistanceConfig { s_cut, ..Default::default() },
    )
}

/// Particle count for *kernel timing* experiments: at least 12,000 so
/// the matrices exceed any last-level cache and SPMV is genuinely
/// streaming from DRAM (Table II / Fig. 2 are bandwidth statements).
pub fn kernel_particles(opts: &Options) -> usize {
    opts.particles.max(12_000)
}

/// Generates the particle system and matrix together (the partitioners
/// need coordinates).
pub fn sd_system_and_matrix(
    n: usize,
    s_cut: f64,
    seed: u64,
) -> (mrhs_stokes::StokesianSystem, BcrsMatrix) {
    let system =
        SystemBuilder::new(n).volume_fraction(0.5).s_cut(s_cut).seed(seed).build();
    let m = assemble_resistance(
        system.particles(),
        &ResistanceConfig { s_cut, ..Default::default() },
    );
    (system, m)
}

/// Prints a header line for an experiment section.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Formats a float column to a fixed width.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "-".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}
