//! `service-bench`: replays an arrival trace against the
//! request-coalescing solve service and reports solved-RHS throughput
//! and p50/p99 latency at several arrival rates, coalesced
//! (`max_batch = m_s`) vs the width-1 no-coalescing baseline.
//!
//! The Eq. 8 prediction: at a saturating arrival rate the coalesced
//! server solves ≥ 2× more right-hand sides per second, because each
//! block-CG iteration streams the matrix once for the whole batch.
//!
//! ```text
//! service-bench [--particles N] [--seed N] [--requests N]
//!               [--rates 0.5,1,4] [--batch W] [--matrix mat3]
//!               [--bursty] [--trace FILE] [--dump-trace FILE]
//!               [--json FILE]
//! ```
//!
//! `--rates` lists arrival rates as multiples of the measured solo
//! capacity `1/t_solo`; `--batch 0` (default) targets the model's
//! `m_s`. `--trace` replays a recorded trace file instead of
//! generating one (format in EXPERIMENTS.md); `--dump-trace` writes
//! the generated trace out for replay.

#[path = "../common.rs"]
#[allow(dead_code)] // shared with the main `repro` binary
mod common;

use std::time::{Duration, Instant};

use common::{sd_matrix, section, Options, TABLE1_CUTOFFS};
use mrhs_perfmodel::measure::{host_profile, time_gspmv};
use mrhs_perfmodel::mrhs_model::SolveCounts;
use mrhs_perfmodel::GspmvModel;
use mrhs_service::{
    model_batch_width, ArrivalTrace, BatchPolicy, MatrixRegistry, RequestOptions,
    ServiceConfig, SolveService, SubmitError,
};
use mrhs_solvers::{cg, SolveConfig};
use mrhs_sparse::{BcrsMatrix, MultiVec};
use mrhs_telemetry::derived::{gbps, gflops, relative_residual, span_consistency};
use mrhs_telemetry::report::{
    BenchReport, KernelMetric, MachineInfo, SCHEMA_VERSION,
};

struct ServiceOptions {
    requests: usize,
    rate_multipliers: Vec<f64>,
    batch: usize,
    matrix: usize,
    bursty: bool,
    trace_in: Option<String>,
    dump_trace: Option<String>,
}

impl ServiceOptions {
    fn parse(args: &[String]) -> ServiceOptions {
        let mut o = ServiceOptions {
            requests: 96,
            rate_multipliers: vec![0.5, 1.0, 4.0],
            batch: 0,
            // mat3 by default: the densest Table I cutoff, closest at
            // bench scale to the paper's full-scale mat2 density — the
            // regime the Eq. 8 amortization targets.
            matrix: 2,
            bursty: false,
            trace_in: None,
            dump_trace: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--requests" => {
                    o.requests = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--requests needs a number");
                }
                "--rates" => {
                    let spec =
                        it.next().expect("--rates needs a list like 0.5,1,4");
                    o.rate_multipliers = spec
                        .split(',')
                        .map(|s| {
                            s.trim().parse().unwrap_or_else(|_| {
                                panic!("bad rate multiplier {s:?}")
                            })
                        })
                        .collect();
                }
                "--batch" => {
                    o.batch = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--batch needs a number");
                }
                "--matrix" => {
                    let name = it.next().expect("--matrix needs mat1|mat2|mat3");
                    o.matrix = TABLE1_CUTOFFS
                        .iter()
                        .position(|(n, _, _)| n == name)
                        .unwrap_or_else(|| {
                            panic!("unknown matrix {name:?} (mat1|mat2|mat3)")
                        });
                }
                "--bursty" => o.bursty = true,
                "--trace" => {
                    o.trace_in =
                        Some(it.next().cloned().expect("--trace needs a path"));
                }
                "--dump-trace" => {
                    o.dump_trace = Some(
                        it.next().cloned().expect("--dump-trace needs a path"),
                    );
                }
                _ => {}
            }
        }
        o
    }
}

fn pseudo_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

struct RunResult {
    solved_columns: usize,
    failed: usize,
    mean_iters: f64,
    wall: Duration,
    latencies: Vec<Duration>,
    coalescing_efficiency: f64,
    batch_widths: Vec<(usize, u64)>,
}

impl RunResult {
    fn throughput(&self) -> f64 {
        self.solved_columns as f64 / self.wall.as_secs_f64()
    }

    fn percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut v = self.latencies.clone();
        v.sort();
        let idx = ((v.len() - 1) as f64 * p).round() as usize;
        v[idx]
    }
}

/// Replays `trace` against a fresh service at the given batch width.
fn replay(
    a: &BcrsMatrix,
    rhss: &[Vec<f64>],
    trace: &ArrivalTrace,
    max_batch: usize,
) -> RunResult {
    let reg = MatrixRegistry::new();
    let h = reg.register_full("bench", a.clone());
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch,
            queue_capacity: 128.max(4 * max_batch),
            linger: Duration::from_millis(2),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);
    let before = mrhs_telemetry::snapshot();

    let t0 = Instant::now();
    let mut tickets = Vec::with_capacity(trace.arrivals.len());
    for (k, arr) in trace.arrivals.iter().enumerate() {
        let due = Duration::from_micros(arr.at_us);
        loop {
            let elapsed = t0.elapsed();
            if elapsed >= due {
                break;
            }
            std::thread::sleep((due - elapsed).min(Duration::from_millis(1)));
        }
        let rhs = &rhss[k % rhss.len()];
        let mut mv = MultiVec::zeros(rhs.len(), arr.width);
        for c in 0..arr.width {
            mv.set_column(c, rhs);
        }
        loop {
            match svc.submit(h, mv.clone(), RequestOptions::default()) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(SubmitError::QueueFull { retry_after }) => {
                    std::thread::sleep(retry_after.min(Duration::from_millis(5)));
                }
                Err(e) => panic!("submit failed: {e:?}"),
            }
        }
    }

    let mut solved_columns = 0usize;
    let mut failed = 0usize;
    let mut total_iters = 0usize;
    let mut latencies = Vec::with_capacity(tickets.len());
    for t in tickets {
        match t.wait() {
            Ok(out) => {
                solved_columns += out.solution.m();
                total_iters += out.iterations;
                latencies.push(out.latency);
            }
            Err(_) => failed += 1,
        }
    }
    let wall = t0.elapsed();
    svc.shutdown();
    let st = svc.stats();

    let diff = mrhs_telemetry::snapshot().diff(&before);
    let mut batch_widths: Vec<(usize, u64)> = diff
        .counters
        .iter()
        .filter_map(|(name, v)| {
            name.strip_prefix("service/batch_width/")
                .filter(|_| *v > 0)
                .and_then(|w| w.parse().ok())
                .map(|w: usize| (w, *v))
        })
        .collect();
    batch_widths.sort();

    RunResult {
        solved_columns,
        failed,
        mean_iters: total_iters as f64 / latencies.len().max(1) as f64,
        wall,
        latencies,
        coalescing_efficiency: st.coalescing_efficiency(),
        batch_widths,
    }
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::parse(&args);
    let sopts = ServiceOptions::parse(&args);
    if !args.iter().any(|a| a == "--particles") {
        // Smaller default than `repro`: the serving comparison replays
        // every trace twice per rate; 1,500 particles keeps a full
        // sweep to a few minutes at the same mat3 density regime.
        opts.particles = 1500;
    }

    // Telemetry on for the whole run: the batch-width counters feed
    // both the stdout histograms and the JSON report.
    mrhs_telemetry::set_enabled(true);
    let report_before = mrhs_telemetry::snapshot();

    section("service-bench: workload");
    let (name, s_cut, _) = TABLE1_CUTOFFS[sopts.matrix];
    let a = sd_matrix(opts.particles, s_cut, opts.seed);
    let stats = a.stats();
    let n = a.n_rows();
    println!(
        "matrix: {name} from {} particles, n = {n}, nnzb/nb = {:.1}",
        opts.particles,
        stats.nnzb as f64 / stats.nb as f64
    );

    // Probe noise is strictly downward (contention can only lower the
    // measured rates), and an underestimated F drags the modeled m_s
    // from 4 to 2 on this workload — so take the field-wise max of a
    // few probes as the closest estimate of machine capability.
    let host = {
        let mut best = host_profile();
        for _ in 0..2 {
            let p = host_profile();
            best.bandwidth = best.bandwidth.max(p.bandwidth);
            best.flops = best.flops.max(p.flops);
        }
        best
    };
    let model = GspmvModel::new(&stats, host);
    let ms = if sopts.batch > 0 {
        sopts.batch
    } else {
        model_batch_width(&model, SolveCounts::fig7(), 16)
    };
    println!(
        "host: B = {:.1} GB/s, F = {:.1} Gflop/s; model m_s -> target \
         batch width {ms}",
        host.bandwidth / 1e9,
        host.flops / 1e9,
    );

    // Solo capacity: the no-coalescing service can never beat this.
    let rhss: Vec<Vec<f64>> =
        (0..16).map(|k| pseudo_rhs(n, opts.seed ^ (k as u64) << 17)).collect();
    let t_solo = {
        let reps = 3;
        let t0 = Instant::now();
        for r in 0..reps {
            let mut x = vec![0.0; n];
            let res =
                cg(&a, &rhss[r % rhss.len()], &mut x, &SolveConfig::default());
            assert!(res.converged, "solo CG must converge on the SD matrix");
        }
        t0.elapsed() / reps as u32
    };
    let solo_rate = 1.0 / t_solo.as_secs_f64();
    println!(
        "solo solve: {:.1} ms -> capacity {:.0} RHS/s",
        t_solo.as_secs_f64() * 1e3,
        solo_rate
    );

    section("service-bench: trace replay");
    println!(
        "{:>8} {:>9} {:>12} {:>9} {:>9} {:>8} {:>8}",
        "rate", "width", "RHS/s", "p50 ms", "p99 ms", "iters", "coal.eff"
    );
    let mut saturated: Option<(f64, f64)> = None;
    for &mult in &sopts.rate_multipliers {
        let rate = mult * solo_rate;
        let trace = match &sopts.trace_in {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("reading {path}: {e}"));
                ArrivalTrace::parse(&text)
                    .unwrap_or_else(|e| panic!("parsing {path}: {e}"))
            }
            None if sopts.bursty => {
                ArrivalTrace::bursty(rate, sopts.requests, 1, ms.max(2), opts.seed)
            }
            None => ArrivalTrace::poisson(rate, sopts.requests, 1, opts.seed),
        };
        if let Some(path) = &sopts.dump_trace {
            std::fs::write(path, trace.to_text())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("dumped trace ({} arrivals) to {path}", trace.arrivals.len());
        }

        // Two replays per configuration, interleaved, keeping the
        // faster of each: background interference on a shared host
        // otherwise skews whichever run it happens to land on.
        let base = replay(&a, &rhss, &trace, 1);
        let coal = replay(&a, &rhss, &trace, ms);
        let base2 = replay(&a, &rhss, &trace, 1);
        let coal2 = replay(&a, &rhss, &trace, ms);
        let base =
            if base2.throughput() > base.throughput() { base2 } else { base };
        let coal =
            if coal2.throughput() > coal.throughput() { coal2 } else { coal };
        for (label, r) in [("width-1", &base), ("coalesced", &coal)] {
            println!(
                "{:>7.1}x {:>9} {:>12.1} {:>9} {:>9} {:>8} {:>8.2}",
                mult,
                label,
                r.throughput(),
                fmt_ms(r.percentile(0.50)),
                fmt_ms(r.percentile(0.99)),
                format!("{:.0}", r.mean_iters),
                r.coalescing_efficiency,
            );
            if r.failed > 0 {
                println!(
                    "{:>8} WARNING: {} {} requests failed",
                    "", r.failed, label
                );
            }
        }
        let speedup = coal.throughput() / base.throughput();
        let widths: Vec<String> =
            coal.batch_widths.iter().map(|(w, c)| format!("{w}x{c}")).collect();
        println!(
            "{:>8} speedup {speedup:.2}x; coalesced batch widths: {}",
            "", // align under rate column
            widths.join(" ")
        );
        if mult >= 2.0 {
            saturated = Some((mult, speedup));
        }
    }

    if let Some((mult, speedup)) = saturated {
        println!(
            "\nsaturating rate ({mult:.1}x solo capacity): coalesced \
             throughput = {speedup:.2}x width-1 baseline \
             (Eq. 8 predicts >= 2x up to m_s)"
        );
        if speedup < 2.0 {
            println!(
                "WARNING: speedup below the 2x acceptance threshold — \
                 rerun on an idle machine or raise --requests"
            );
        }
    }

    if let Some(path) = &opts.json {
        write_report(path, &a, &model, ms, &report_before, opts.reps);
    }
}

/// Assembles the validated BenchReport: model-vs-measured GSPMV rows at
/// m ∈ {1, m_s} plus the full run's telemetry diff (which carries the
/// `service/batch_width/*` counters and queue/solve span trees).
fn write_report(
    path: &str,
    a: &BcrsMatrix,
    model: &GspmvModel,
    ms: usize,
    before: &mrhs_telemetry::Snapshot,
    reps: usize,
) {
    section("service-bench: BenchReport");
    let host = host_profile();
    let stats = a.stats();
    let (nb, nnzb) = (stats.nb as f64, stats.nnzb as f64);
    let mut kernels = Vec::new();
    for m in [1, ms] {
        let secs = time_gspmv(a, m, reps);
        let matrix_bytes = 4.0 * nb + 76.0 * nnzb;
        let vector_bytes = 24.0 * m as f64 * nb;
        let flops = 18.0 * nnzb * m as f64;
        let model_secs = model.time(m);
        kernels.push(KernelMetric {
            name: "gspmv".into(),
            m: m as u64,
            calls: reps.max(3) as u64,
            measured_secs: secs,
            matrix_bytes,
            vector_bytes,
            flops,
            measured_gbps: gbps(matrix_bytes + vector_bytes, secs),
            measured_gflops: gflops(flops, secs),
            model_secs,
            model_gbps: gbps(model.memory_traffic(m), model_secs),
            residual: relative_residual(secs, model_secs),
        });
    }

    let diff = mrhs_telemetry::snapshot().diff(before);
    let consistency = span_consistency(&diff);
    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: "service-bench".to_string(),
        created_unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        machine: MachineInfo {
            os: std::env::consts::OS.into(),
            arch: std::env::consts::ARCH.into(),
            threads: rayon::current_num_threads() as u64,
            isa: mrhs_sparse::detect_isa().as_str().into(),
            kernel_backend: mrhs_sparse::active_backend().name().into(),
            stream_bandwidth_bps: host.bandwidth,
            kernel_flops: host.flops,
            model_k: host.k,
        },
        kernels,
        span_consistency: consistency,
        snapshot: diff,
    };
    let problems = report.validate();
    if !problems.is_empty() {
        eprintln!("BenchReport validation failed:");
        for p in &problems {
            eprintln!("  - {p}");
        }
        std::process::exit(1);
    }
    std::fs::write(path, report.to_json_string())
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "wrote {path}: {} kernel rows, {} counters",
        report.kernels.len(),
        report.snapshot.counters.len()
    );
}
