//! `service-bench`: replays an arrival trace against the
//! request-coalescing solve service and reports solved-RHS throughput
//! and p50/p99 latency at several arrival rates, coalesced
//! (`max_batch = m_s`) vs the width-1 no-coalescing baseline.
//!
//! The Eq. 8 prediction: at a saturating arrival rate the coalesced
//! server solves ≥ 2× more right-hand sides per second, because each
//! block-CG iteration streams the matrix once for the whole batch.
//!
//! ```text
//! service-bench [--particles N] [--seed N] [--requests N]
//!               [--rates 0.5,1,4] [--batch W] [--matrix mat3]
//!               [--bursty] [--arrivals FILE] [--dump-trace FILE]
//!               [--trace] [--export-metrics FILE]
//!               [--inject-breakdown] [--flight-dir DIR]
//!               [--cluster 1,2,4] [--json FILE]
//! ```
//!
//! `--rates` lists arrival rates as multiples of the measured solo
//! capacity `1/t_solo`; `--batch 0` (default) targets the model's
//! `m_s`. `--arrivals` replays a recorded arrival-trace file instead
//! of generating one (format in EXPERIMENTS.md); `--dump-trace`
//! writes the generated trace out for replay.
//!
//! `--cluster 1,2,4` replaces the single-host rate sweep with the
//! fleet replay: a multi-tenant Poisson trace at a saturating
//! aggregate rate is replayed against a [`FleetService`] at each
//! listed shard count (workers pinned to 1 per shard, stealing and
//! admission control on), reporting RHS/s, p50/p99 of completed
//! requests, admission rejects, steals, and the achieved mean batch
//! width next to the Eq. 8/9 width-scaling prediction.
//!
//! Observability flags: `--trace` runs the causal-tracing overhead
//! gate (tracing-off vs tracing-on replays at a saturating rate; the
//! acceptance bar is ≤ 2% RHS/s cost) and prints one request's
//! assembled span tree; `--export-metrics FILE` serves OpenMetrics on
//! a loopback listener for the whole run, then self-scrapes,
//! validates, and writes the exposition to FILE; `--inject-breakdown`
//! pushes a NaN right-hand side through the service to trigger a
//! flight-recorder dump; `--flight-dir DIR` is where dumps land.

#[path = "../common.rs"]
#[allow(dead_code)] // shared with the main `repro` binary
mod common;

use std::time::{Duration, Instant};

use common::{sd_matrix, section, Options, TABLE1_CUTOFFS};
use mrhs_perfmodel::measure::{host_profile, time_gspmv};
use mrhs_perfmodel::mrhs_model::SolveCounts;
use mrhs_perfmodel::GspmvModel;
use mrhs_service::{
    model_batch_width, AdmissionCfg, ArrivalTrace, BatchPolicy, DriftModelCfg,
    FleetConfig, FleetHandle, FleetService, MatrixRegistry, RequestOptions,
    ServiceConfig, SolveService, SubmitError,
};
use mrhs_solvers::{cg, SolveConfig};
use mrhs_sparse::{BcrsMatrix, MultiVec};
use mrhs_telemetry::derived::{gbps, gflops, relative_residual, span_consistency};
use mrhs_telemetry::report::{
    BenchReport, DriftGauge, KernelMetric, MachineInfo, TraceOverhead,
    SCHEMA_VERSION,
};
use mrhs_telemetry::{exporter, flight, openmetrics, trace, MetricsExporter};

struct ServiceOptions {
    requests: usize,
    rate_multipliers: Vec<f64>,
    batch: usize,
    matrix: usize,
    bursty: bool,
    arrivals_in: Option<String>,
    dump_trace: Option<String>,
    trace_mode: bool,
    export_metrics: Option<String>,
    inject_breakdown: bool,
    flight_dir: Option<String>,
    cluster: Option<Vec<usize>>,
}

impl ServiceOptions {
    fn parse(args: &[String]) -> ServiceOptions {
        let mut o = ServiceOptions {
            requests: 96,
            rate_multipliers: vec![0.5, 1.0, 4.0],
            batch: 0,
            // mat3 by default: the densest Table I cutoff, closest at
            // bench scale to the paper's full-scale mat2 density — the
            // regime the Eq. 8 amortization targets.
            matrix: 2,
            bursty: false,
            arrivals_in: None,
            dump_trace: None,
            trace_mode: false,
            export_metrics: None,
            inject_breakdown: false,
            flight_dir: None,
            cluster: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--requests" => {
                    o.requests = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--requests needs a number");
                }
                "--rates" => {
                    let spec =
                        it.next().expect("--rates needs a list like 0.5,1,4");
                    o.rate_multipliers = spec
                        .split(',')
                        .map(|s| {
                            s.trim().parse().unwrap_or_else(|_| {
                                panic!("bad rate multiplier {s:?}")
                            })
                        })
                        .collect();
                }
                "--batch" => {
                    o.batch = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--batch needs a number");
                }
                "--matrix" => {
                    let name = it.next().expect("--matrix needs mat1|mat2|mat3");
                    o.matrix = TABLE1_CUTOFFS
                        .iter()
                        .position(|(n, _, _)| n == name)
                        .unwrap_or_else(|| {
                            panic!("unknown matrix {name:?} (mat1|mat2|mat3)")
                        });
                }
                "--bursty" => o.bursty = true,
                "--arrivals" => {
                    o.arrivals_in =
                        Some(it.next().cloned().expect("--arrivals needs a path"));
                }
                "--dump-trace" => {
                    o.dump_trace = Some(
                        it.next().cloned().expect("--dump-trace needs a path"),
                    );
                }
                "--trace" => o.trace_mode = true,
                "--export-metrics" => {
                    o.export_metrics = Some(
                        it.next().cloned().expect("--export-metrics needs a path"),
                    );
                }
                "--inject-breakdown" => o.inject_breakdown = true,
                "--cluster" => {
                    let spec =
                        it.next().expect("--cluster needs a list like 1,2,4");
                    o.cluster = Some(
                        spec.split(',')
                            .map(|s| {
                                s.trim().parse().unwrap_or_else(|_| {
                                    panic!("bad shard count {s:?}")
                                })
                            })
                            .collect(),
                    );
                }
                "--flight-dir" => {
                    o.flight_dir = Some(
                        it.next().cloned().expect("--flight-dir needs a path"),
                    );
                }
                _ => {}
            }
        }
        o
    }
}

fn pseudo_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

struct RunResult {
    solved_columns: usize,
    failed: usize,
    mean_iters: f64,
    wall: Duration,
    latencies: Vec<Duration>,
    coalescing_efficiency: f64,
    batch_widths: Vec<(usize, u64)>,
    /// Trace ids of completed requests (empty when tracing is off).
    trace_ids: Vec<u64>,
}

impl RunResult {
    fn throughput(&self) -> f64 {
        self.solved_columns as f64 / self.wall.as_secs_f64()
    }

    fn percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut v = self.latencies.clone();
        v.sort();
        let idx = ((v.len() - 1) as f64 * p).round() as usize;
        v[idx]
    }
}

/// Replays `trace` against a fresh service at the given batch width.
fn replay(
    a: &BcrsMatrix,
    rhss: &[Vec<f64>],
    trace: &ArrivalTrace,
    max_batch: usize,
    drift: Option<DriftModelCfg>,
) -> RunResult {
    let reg = MatrixRegistry::new();
    let h = reg.register_full("bench", a.clone());
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch,
            queue_capacity: 128.max(4 * max_batch),
            linger: Duration::from_millis(2),
        },
        drift,
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);
    let before = mrhs_telemetry::snapshot();

    let t0 = Instant::now();
    let mut tickets = Vec::with_capacity(trace.arrivals.len());
    for (k, arr) in trace.arrivals.iter().enumerate() {
        let due = Duration::from_micros(arr.at_us);
        loop {
            let elapsed = t0.elapsed();
            if elapsed >= due {
                break;
            }
            std::thread::sleep((due - elapsed).min(Duration::from_millis(1)));
        }
        let rhs = &rhss[k % rhss.len()];
        let mut mv = MultiVec::zeros(rhs.len(), arr.width);
        for c in 0..arr.width {
            mv.set_column(c, rhs);
        }
        loop {
            match svc.submit(h, mv.clone(), RequestOptions::default()) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(SubmitError::QueueFull { retry_after }) => {
                    std::thread::sleep(retry_after.min(Duration::from_millis(5)));
                }
                Err(e) => panic!("submit failed: {e:?}"),
            }
        }
    }

    let mut solved_columns = 0usize;
    let mut failed = 0usize;
    let mut total_iters = 0usize;
    let mut latencies = Vec::with_capacity(tickets.len());
    let mut trace_ids = Vec::new();
    for t in tickets {
        match t.wait() {
            Ok(out) => {
                solved_columns += out.solution.m();
                total_iters += out.iterations;
                latencies.push(out.latency);
                trace_ids.extend(out.trace_id);
            }
            Err(_) => failed += 1,
        }
    }
    let wall = t0.elapsed();
    svc.shutdown();
    let st = svc.stats();

    let diff = mrhs_telemetry::snapshot().diff(&before);
    let mut batch_widths: Vec<(usize, u64)> = diff
        .counters
        .iter()
        .filter_map(|(name, v)| {
            name.strip_prefix("service/batch_width/")
                .filter(|_| *v > 0)
                .and_then(|w| w.parse().ok())
                .map(|w: usize| (w, *v))
        })
        .collect();
    batch_widths.sort();

    RunResult {
        solved_columns,
        failed,
        mean_iters: total_iters as f64 / latencies.len().max(1) as f64,
        wall,
        latencies,
        coalescing_efficiency: st.coalescing_efficiency(),
        batch_widths,
        trace_ids,
    }
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::parse(&args);
    let sopts = ServiceOptions::parse(&args);
    if !args.iter().any(|a| a == "--particles") {
        // Smaller default than `repro`: the serving comparison replays
        // every trace twice per rate; 1,500 particles keeps a full
        // sweep to a few minutes at the same mat3 density regime.
        opts.particles = 1500;
    }

    // Telemetry on for the whole run: the batch-width counters feed
    // both the stdout histograms and the JSON report.
    mrhs_telemetry::set_enabled(true);
    let report_before = mrhs_telemetry::snapshot();

    if let Some(dir) = &sopts.flight_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("creating {dir}: {e}"));
        flight::configure_dump_dir(Some(dir.into()));
        flight::install_panic_hook();
        println!("flight-recorder dumps -> {dir}");
    }
    // The exporter serves live metrics for the whole run; the scrape
    // and OpenMetrics validation happen at the end.
    let metrics_exporter = sopts.export_metrics.as_ref().map(|_| {
        let ex = MetricsExporter::serve("127.0.0.1:0")
            .expect("metrics exporter must bind a loopback port");
        println!(
            "metrics exporter listening on http://{}/metrics",
            ex.local_addr()
        );
        ex
    });

    section("service-bench: workload");
    let (name, s_cut, _) = TABLE1_CUTOFFS[sopts.matrix];
    let a = sd_matrix(opts.particles, s_cut, opts.seed);
    let stats = a.stats();
    let n = a.n_rows();
    println!(
        "matrix: {name} from {} particles, n = {n}, nnzb/nb = {:.1}",
        opts.particles,
        stats.nnzb as f64 / stats.nb as f64
    );

    // Probe noise is strictly downward (contention can only lower the
    // measured rates), and an underestimated F drags the modeled m_s
    // from 4 to 2 on this workload — so take the field-wise max of a
    // few probes as the closest estimate of machine capability.
    let host = {
        let mut best = host_profile();
        for _ in 0..2 {
            let p = host_profile();
            best.bandwidth = best.bandwidth.max(p.bandwidth);
            best.flops = best.flops.max(p.flops);
        }
        best
    };
    let model = GspmvModel::new(&stats, host);
    let ms = if sopts.batch > 0 {
        sopts.batch
    } else {
        model_batch_width(&model, SolveCounts::fig7(), 16)
    };
    println!(
        "host: B = {:.1} GB/s, F = {:.1} Gflop/s; model m_s -> target \
         batch width {ms}",
        host.bandwidth / 1e9,
        host.flops / 1e9,
    );

    // Solo capacity: the no-coalescing service can never beat this.
    let rhss: Vec<Vec<f64>> =
        (0..16).map(|k| pseudo_rhs(n, opts.seed ^ (k as u64) << 17)).collect();
    let t_solo = {
        let reps = 3;
        let t0 = Instant::now();
        for r in 0..reps {
            let mut x = vec![0.0; n];
            let res =
                cg(&a, &rhss[r % rhss.len()], &mut x, &SolveConfig::default());
            assert!(res.converged, "solo CG must converge on the SD matrix");
        }
        t0.elapsed() / reps as u32
    };
    let solo_rate = 1.0 / t_solo.as_secs_f64();
    println!(
        "solo solve: {:.1} ms -> capacity {:.0} RHS/s",
        t_solo.as_secs_f64() * 1e3,
        solo_rate
    );

    // Drift gauges live-compare measured GSPMV time against this model
    // on every batch the service solves.
    let drift = Some(DriftModelCfg { gspmv: model, counts: SolveCounts::fig7() });

    if let Some(shard_counts) = &sopts.cluster {
        cluster_sweep(
            &a,
            &rhss,
            solo_rate,
            t_solo,
            ms,
            &model,
            shard_counts,
            sopts.requests,
            opts.seed,
            drift,
        );
    } else {
        section("service-bench: trace replay");
        println!(
            "{:>8} {:>9} {:>12} {:>9} {:>9} {:>8} {:>8}",
            "rate", "width", "RHS/s", "p50 ms", "p99 ms", "iters", "coal.eff"
        );
        let mut saturated: Option<(f64, f64)> = None;
        for &mult in &sopts.rate_multipliers {
            let rate = mult * solo_rate;
            let trace = match &sopts.arrivals_in {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| panic!("reading {path}: {e}"));
                    ArrivalTrace::parse(&text)
                        .unwrap_or_else(|e| panic!("parsing {path}: {e}"))
                }
                None if sopts.bursty => ArrivalTrace::bursty(
                    rate,
                    sopts.requests,
                    1,
                    ms.max(2),
                    opts.seed,
                ),
                None => ArrivalTrace::poisson(rate, sopts.requests, 1, opts.seed),
            };
            if let Some(path) = &sopts.dump_trace {
                std::fs::write(path, trace.to_text())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                println!(
                    "dumped trace ({} arrivals) to {path}",
                    trace.arrivals.len()
                );
            }

            // Two replays per configuration, interleaved, keeping the
            // faster of each: background interference on a shared host
            // otherwise skews whichever run it happens to land on.
            let base = replay(&a, &rhss, &trace, 1, drift);
            let coal = replay(&a, &rhss, &trace, ms, drift);
            let base2 = replay(&a, &rhss, &trace, 1, drift);
            let coal2 = replay(&a, &rhss, &trace, ms, drift);
            let base =
                if base2.throughput() > base.throughput() { base2 } else { base };
            let coal =
                if coal2.throughput() > coal.throughput() { coal2 } else { coal };
            for (label, r) in [("width-1", &base), ("coalesced", &coal)] {
                println!(
                    "{:>7.1}x {:>9} {:>12.1} {:>9} {:>9} {:>8} {:>8.2}",
                    mult,
                    label,
                    r.throughput(),
                    fmt_ms(r.percentile(0.50)),
                    fmt_ms(r.percentile(0.99)),
                    format!("{:.0}", r.mean_iters),
                    r.coalescing_efficiency,
                );
                if r.failed > 0 {
                    println!(
                        "{:>8} WARNING: {} {} requests failed",
                        "", r.failed, label
                    );
                }
            }
            let speedup = coal.throughput() / base.throughput();
            let widths: Vec<String> =
                coal.batch_widths.iter().map(|(w, c)| format!("{w}x{c}")).collect();
            println!(
                "{:>8} speedup {speedup:.2}x; coalesced batch widths: {}",
                "", // align under rate column
                widths.join(" ")
            );
            if mult >= 2.0 {
                saturated = Some((mult, speedup));
            }
        }

        if let Some((mult, speedup)) = saturated {
            println!(
                "\nsaturating rate ({mult:.1}x solo capacity): coalesced \
             throughput = {speedup:.2}x width-1 baseline \
             (Eq. 8 predicts >= 2x up to m_s)"
            );
            if speedup < 2.0 {
                println!(
                    "WARNING: speedup below the 2x acceptance threshold — \
                 rerun on an idle machine or raise --requests"
                );
            }
        }
    }

    let (trace_overhead, trace_summary) = if sopts.trace_mode {
        let (ov, summary) =
            trace_overhead_gate(&a, &rhss, solo_rate, ms, &sopts, opts.seed, drift);
        (Some(ov), Some(summary))
    } else {
        (None, None)
    };

    if sopts.inject_breakdown {
        inject_breakdown(&a, n, opts.seed);
    }

    if let (Some(file), Some(ex)) = (&sopts.export_metrics, &metrics_exporter) {
        scrape_and_validate(ex, file);
    }

    if let Some(path) = &opts.json {
        write_report(
            path,
            &a,
            &model,
            ms,
            &report_before,
            opts.reps,
            trace_overhead,
            trace_summary.as_deref(),
        );
    }
}

/// The fleet replay: a multi-tenant Poisson trace at a saturating
/// aggregate rate (4× the measured solo capacity) replayed against a
/// [`FleetService`] at each listed shard count. Every shard runs one
/// worker, every tenant is replicated, stealing and admission control
/// are on. The S-node prediction column is what S *independent nodes*
/// would sustain: the parallel-compute factor (× S) times the Eq. 8
/// width factor `(t(w̄₁)/w̄₁) / (t(w̄_S)/w̄_S)` from the achieved mean
/// batch widths. On a shared-core box only the width factor is
/// observable (all shards timeshare the same cores), so the measured
/// ratio is compared against `prediction / S`. Admission control
/// (shed at 90% occupancy, or when the estimated queue delay exceeds
/// the request deadline) plus in-queue deadline expiry bound the p99
/// *time-in-queue* of completed requests at the deadline.
#[allow(clippy::too_many_arguments)]
fn cluster_sweep(
    a: &BcrsMatrix,
    rhss: &[Vec<f64>],
    solo_rate: f64,
    t_solo: Duration,
    ms: usize,
    model: &GspmvModel,
    shard_counts: &[usize],
    requests: usize,
    seed: u64,
    drift: Option<DriftModelCfg>,
) {
    section("service-bench: cluster replay");
    let tenants = shard_counts.iter().copied().max().unwrap_or(1).max(2);
    let rate = 4.0 * solo_rate;
    let deadline = (t_solo * 30).max(Duration::from_millis(100));
    // Short linger: under saturating load batch width comes from queue
    // backlog, not from waiting at the head (a long linger would
    // serialize with compute on a single-worker shard and skew the
    // shard-count comparison).
    let linger = Duration::from_millis(2);
    let arrivals = ArrivalTrace::poisson(rate, requests, 1, seed ^ 0xc1);
    println!(
        "{tenants} tenants on one matrix, {} arrivals at {:.0} RHS/s \
         aggregate (4x solo capacity), deadline {:.0} ms, linger {:.0} ms",
        arrivals.arrivals.len(),
        rate,
        deadline.as_secs_f64() * 1e3,
        linger.as_secs_f64() * 1e3
    );
    println!(
        "{:>7} {:>10} {:>9} {:>9} {:>9} {:>8} {:>7} {:>7} {:>8} {:>10}",
        "shards",
        "RHS/s",
        "p50 ms",
        "p99 ms",
        "qw99 ms",
        "rejects",
        "steals",
        "width",
        "measured",
        "S-node prd"
    );

    // (shards, RHS/s, mean width) at the first listed shard count —
    // both ratio columns are relative to this row.
    let mut baseline: Option<(usize, f64, f64)> = None;
    for &s in shard_counts {
        let shard = ServiceConfig {
            policy: BatchPolicy {
                max_batch: ms,
                queue_capacity: 128.max(4 * ms),
                linger,
            },
            drift,
            ..ServiceConfig::default()
        };
        let fleet = FleetService::start(FleetConfig {
            shards: s,
            shard,
            replicate_max_dim: usize::MAX,
            shard_parts: 2,
            // Width-preserving stealing: only steal when the victim has
            // at least a full batch queued, so a stolen batch keeps the
            // Eq. 8 amortization it would have had at home.
            steal_min_cols: Some(ms),
            admission: Some(AdmissionCfg { shed_at: 0.9 }),
        });
        let handles: Vec<FleetHandle> = (0..tenants)
            .map(|t| fleet.register_spd(&format!("tenant{t}"), a.clone()))
            .collect();

        let t0 = Instant::now();
        let mut tickets = Vec::with_capacity(arrivals.arrivals.len());
        for (k, arr) in arrivals.arrivals.iter().enumerate() {
            let due = Duration::from_micros(arr.at_us);
            loop {
                let elapsed = t0.elapsed();
                if elapsed >= due {
                    break;
                }
                std::thread::sleep((due - elapsed).min(Duration::from_millis(1)));
            }
            let rhs = &rhss[k % rhss.len()];
            let mut mv = MultiVec::zeros(rhs.len(), arr.width);
            for c in 0..arr.width {
                mv.set_column(c, rhs);
            }
            let opts =
                RequestOptions { deadline: Some(deadline), ..Default::default() };
            match fleet.submit(handles[k % tenants], mv, opts) {
                Ok(t) => tickets.push(t),
                // Shedding is the behavior under test at this load; a
                // rejected request is counted, not retried.
                Err(SubmitError::QueueFull { .. }) => {}
                Err(e) => panic!("fleet submit failed: {e:?}"),
            }
        }
        let mut solved_columns = 0usize;
        let mut failed = 0usize;
        let mut latencies = Vec::with_capacity(tickets.len());
        let mut queue_waits = Vec::with_capacity(tickets.len());
        for t in tickets {
            match t.wait() {
                Ok(out) => {
                    solved_columns += out.solution.m();
                    latencies.push(out.latency);
                    queue_waits.push(out.queue_wait);
                }
                Err(_) => failed += 1,
            }
        }
        let wall = t0.elapsed();
        fleet.shutdown();
        let st = fleet.stats();

        let batches: u64 = st.shards.iter().map(|x| x.batches).sum();
        let columns: u64 = st.shards.iter().map(|x| x.coalesced_columns).sum();
        let shard_rejects: u64 = st.shards.iter().map(|x| x.rejected).sum();
        let mean_width = columns as f64 / batches.max(1) as f64;
        let rhs_per_sec = solved_columns as f64 / wall.as_secs_f64();
        latencies.sort();
        queue_waits.sort();
        let pct = |v: &[Duration], p: f64| -> Duration {
            if v.is_empty() {
                return Duration::ZERO;
            }
            v[((v.len() - 1) as f64 * p).round() as usize]
        };

        // Eq. 8/9 prediction of what S *independent nodes* would do:
        // the parallel-compute channel (x S) times the width channel
        // (per-column GSPMV time at the achieved mean width vs the
        // single-shard baseline, Eq. 8). On this box only the width
        // channel is observable — every shard shares the same cores —
        // so the measured column is compared against the width factor
        // alone in the closing note.
        let (measured_x, predicted_x) = match &baseline {
            None => {
                baseline = Some((s, rhs_per_sec, mean_width));
                (1.0, 1.0)
            }
            Some((base_s, base_rate, base_width)) => {
                let per_col = |w: f64| {
                    let wi = (w.round() as usize).max(1);
                    model.time(wi) / wi as f64
                };
                let width_x = per_col(*base_width) / per_col(mean_width);
                (rhs_per_sec / base_rate, (s as f64 / *base_s as f64) * width_x)
            }
        };
        println!(
            "{:>7} {:>10.1} {:>9} {:>9} {:>9} {:>8} {:>7} {:>7.2} {:>7.2}x {:>9.2}x",
            s,
            rhs_per_sec,
            fmt_ms(pct(&latencies, 0.50)),
            fmt_ms(pct(&latencies, 0.99)),
            fmt_ms(pct(&queue_waits, 0.99)),
            st.admission_rejected + shard_rejects,
            st.steals,
            mean_width,
            measured_x,
            predicted_x,
        );
        if failed > 0 {
            println!(
                "{:>7} note: deadline expiry shed {failed} more requests \
                 in-queue (admission's wait estimate cannot see cross-shard \
                 core contention on a shared-core box)",
                ""
            );
        }
        // Admission control bounds time *in queue* (solve time under
        // core contention is outside its control): every completed
        // request must have waited at most the deadline.
        if pct(&queue_waits, 1.0) > deadline {
            println!(
                "{:>7} WARNING: a completed request out-waited the deadline \
                 admission control and expiry should enforce",
                ""
            );
        }
    }
    println!(
        "\nNote: every shard on this box is served by the same cores, so \
         the parallel-compute factor of the S-node prediction is not \
         observable here — compare the measured column against the width \
         channel alone (the prediction divided by the shard-count ratio \
         to the first row); tenant-affinity routing holds per-shard \
         batch widths (Eq. 8 amortization) as the fleet splits. qw99 is \
         the p99 time-in-queue, the quantity admission control and \
         deadline expiry bound."
    );
}

/// The tracing acceptance gate: replay the same saturating trace with
/// tracing off then on (two runs each, keeping the faster — the same
/// noise discipline as the rate sweep), require the span tree of a
/// traced request to be structurally sound with queue-wait + solve
/// durations tiling the end-to-end root exactly, and report the RHS/s
/// cost of tracing (the acceptance bar is ≤ 2%; sampling keeps the
/// event rate bounded above the budget).
#[allow(clippy::too_many_arguments)]
fn trace_overhead_gate(
    a: &BcrsMatrix,
    rhss: &[Vec<f64>],
    solo_rate: f64,
    ms: usize,
    sopts: &ServiceOptions,
    seed: u64,
    drift: Option<DriftModelCfg>,
) -> (TraceOverhead, String) {
    section("service-bench: tracing overhead gate");
    let rate = 4.0 * solo_rate; // saturating load
    let arrivals = ArrivalTrace::poisson(rate, sopts.requests, 1, seed ^ 0x7ace);

    trace::set_trace_enabled(false);
    let off = replay(a, rhss, &arrivals, ms, drift);
    let off2 = replay(a, rhss, &arrivals, ms, drift);
    let off = if off2.throughput() > off.throughput() { off2 } else { off };

    let fs_before = flight::stats();
    trace::set_trace_enabled(true);
    let on = replay(a, rhss, &arrivals, ms, drift);
    let on2 = replay(a, rhss, &arrivals, ms, drift);
    let on = if on2.throughput() > on.throughput() { on2 } else { on };
    trace::set_trace_enabled(false);
    let fs_after = flight::stats();

    let overhead = TraceOverhead {
        baseline_rhs_per_sec: off.throughput(),
        traced_rhs_per_sec: on.throughput(),
        overhead_frac: 1.0 - on.throughput() / off.throughput(),
        events_recorded: fs_after.recorded.saturating_sub(fs_before.recorded),
        events_sampled_out: fs_after
            .sampled_out
            .saturating_sub(fs_before.sampled_out),
    };
    println!(
        "tracing off: {:.1} RHS/s; on: {:.1} RHS/s -> overhead {:+.2}% \
         ({} events recorded, {} sampled out)",
        overhead.baseline_rhs_per_sec,
        overhead.traced_rhs_per_sec,
        100.0 * overhead.overhead_frac,
        overhead.events_recorded,
        overhead.events_sampled_out,
    );
    if overhead.overhead_frac > 0.02 {
        println!(
            "WARNING: tracing overhead above the 2% acceptance bar — \
             rerun on an idle machine or raise --requests"
        );
    }

    // Structural gate on one traced request: the span tree must
    // assemble, and its queue-wait + solve children must tile the
    // end-to-end root exactly (same-timestamp bookkeeping, so this is
    // an equality, not a tolerance).
    let events = flight::snapshot_events();
    let id = *on.trace_ids.first().expect("traced replay must yield trace ids");
    let tree = trace::assemble_linked(&events, trace::TraceId(id))
        .expect("traced request must assemble to a span tree");
    assert_eq!(tree.name, "service/request", "root span");
    let child = |name: &str| {
        tree.children
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("missing {name} child:\n{}", tree.render()))
    };
    let qw = child("service/queue_wait");
    let solve = child("service/solve");
    assert_eq!(
        qw.event.dur_ns + solve.event.dur_ns,
        tree.event.dur_ns,
        "queue_wait + solve must sum to the end-to-end request span"
    );
    let rendered = tree.render();
    // The full tree (hundreds of kernel spans on a long solve) goes to
    // the artifact; stdout gets the head.
    let head: Vec<&str> = rendered.lines().take(24).collect();
    let elided = rendered.lines().count().saturating_sub(head.len());
    println!(
        "\nspan tree of trace {id} ({} spans):\n{}{}",
        tree.span_count(),
        head.join("\n"),
        if elided > 0 {
            format!("\n  … {elided} more lines (see the .trace.txt artifact)")
        } else {
            String::new()
        }
    );

    let summary = format!(
        "service-bench tracing gate\n\
         baseline_rhs_per_sec: {:.2}\n\
         traced_rhs_per_sec: {:.2}\n\
         overhead_frac: {:.5}\n\
         events_recorded: {}\n\
         events_sampled_out: {}\n\n\
         span tree of trace {id}:\n{rendered}",
        overhead.baseline_rhs_per_sec,
        overhead.traced_rhs_per_sec,
        overhead.overhead_frac,
        overhead.events_recorded,
        overhead.events_sampled_out,
    );
    (overhead, summary)
}

/// Pushes a NaN-poisoned right-hand side through a small service so the
/// block solve fails, the solo retry fails too, and the flight recorder
/// dumps (`solo_retry`) — the CI hook for exercising the dump path.
fn inject_breakdown(a: &BcrsMatrix, n: usize, seed: u64) {
    section("service-bench: injected breakdown");
    let reg = MatrixRegistry::new();
    let h = reg.register_full("bench", a.clone());
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: 2,
            queue_capacity: 8,
            linger: Duration::from_millis(1),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);
    let mut bad = pseudo_rhs(n, seed ^ 0xbad);
    bad[0] = f64::NAN;
    let before = flight::stats().dumps;
    let result = svc.submit_one(h, &bad).expect("submit poisoned RHS").wait();
    svc.shutdown();
    assert!(result.is_err(), "NaN right-hand side must fail");
    let after = flight::stats().dumps;
    println!(
        "poisoned request failed as expected; flight dumps {} -> {}",
        before, after
    );
}

/// Self-scrapes the live exporter, validates the OpenMetrics grammar,
/// and writes the exposition to `file`. Exits nonzero on a violation —
/// this is the CI gate on the wire format.
fn scrape_and_validate(ex: &MetricsExporter, file: &str) {
    section("service-bench: OpenMetrics scrape");
    let body = exporter::scrape(ex.local_addr(), "/metrics")
        .expect("self-scrape must succeed");
    let problems = openmetrics::validate(&body);
    if !problems.is_empty() {
        eprintln!("OpenMetrics validation failed:");
        for p in &problems {
            eprintln!("  - {p}");
        }
        std::process::exit(1);
    }
    std::fs::write(file, &body).unwrap_or_else(|e| panic!("writing {file}: {e}"));
    println!(
        "scraped {} bytes ({} lines) of valid OpenMetrics -> {file}",
        body.len(),
        body.lines().count()
    );
}

/// Assembles the validated BenchReport: model-vs-measured GSPMV rows at
/// m ∈ {1, m_s} plus the full run's telemetry diff (which carries the
/// `service/batch_width/*` counters, the drop/dispatch-cause counters,
/// queue/solve span trees, and the drift gauges). Alongside the report
/// it writes `<stem>.telemetry.json` (the final snapshot) and, when the
/// tracing gate ran, `<stem>.trace.txt` (the gate numbers + span tree).
#[allow(clippy::too_many_arguments)]
fn write_report(
    path: &str,
    a: &BcrsMatrix,
    model: &GspmvModel,
    ms: usize,
    before: &mrhs_telemetry::Snapshot,
    reps: usize,
    trace_overhead: Option<TraceOverhead>,
    trace_summary: Option<&str>,
) {
    section("service-bench: BenchReport");
    let host = host_profile();
    let stats = a.stats();
    let (nb, nnzb) = (stats.nb as f64, stats.nnzb as f64);
    let mut kernels = Vec::new();
    for m in [1, ms] {
        let secs = time_gspmv(a, m, reps);
        let matrix_bytes = 4.0 * nb + 76.0 * nnzb;
        let vector_bytes = 24.0 * m as f64 * nb;
        let flops = 18.0 * nnzb * m as f64;
        let model_secs = model.time(m);
        kernels.push(KernelMetric {
            name: "gspmv".into(),
            m: m as u64,
            calls: reps.max(3) as u64,
            measured_secs: secs,
            matrix_bytes,
            vector_bytes,
            flops,
            measured_gbps: gbps(matrix_bytes + vector_bytes, secs),
            measured_gflops: gflops(flops, secs),
            model_secs,
            model_gbps: gbps(model.memory_traffic(m), model_secs),
            residual: relative_residual(secs, model_secs),
        });
    }

    let diff = mrhs_telemetry::snapshot().diff(before);
    let consistency = span_consistency(&diff);
    // The drift gauges the service set while replaying, under the same
    // names the live exporter publishes.
    let drift_gauges: Vec<DriftGauge> = diff
        .gauges
        .iter()
        .filter(|(k, _)| k.starts_with("drift/"))
        .map(|(k, v)| DriftGauge { name: k.clone(), value: *v })
        .collect();
    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: "service-bench".to_string(),
        created_unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        machine: MachineInfo {
            os: std::env::consts::OS.into(),
            arch: std::env::consts::ARCH.into(),
            threads: rayon::current_num_threads() as u64,
            isa: mrhs_sparse::detect_isa().as_str().into(),
            kernel_backend: mrhs_sparse::active_backend().name().into(),
            stream_bandwidth_bps: host.bandwidth,
            kernel_flops: host.flops,
            model_k: host.k,
        },
        kernels,
        span_consistency: consistency,
        snapshot: diff,
        trace_overhead,
        drift_gauges,
    };
    let problems = report.validate();
    if !problems.is_empty() {
        eprintln!("BenchReport validation failed:");
        for p in &problems {
            eprintln!("  - {p}");
        }
        std::process::exit(1);
    }
    std::fs::write(path, report.to_json_string())
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "wrote {path}: {} kernel rows, {} counters, {} drift gauges",
        report.kernels.len(),
        report.snapshot.counters.len(),
        report.drift_gauges.len()
    );

    // Companion artifacts: the final telemetry snapshot in full (the
    // report embeds only the bracketed diff) and the tracing-gate
    // summary when it ran.
    let stem = path.strip_suffix(".json").unwrap_or(path);
    let snap_path = format!("{stem}.telemetry.json");
    std::fs::write(
        &snap_path,
        mrhs_telemetry::snapshot().to_json().to_string_pretty(),
    )
    .unwrap_or_else(|e| panic!("writing {snap_path}: {e}"));
    println!("wrote {snap_path}");
    if let Some(summary) = trace_summary {
        let trace_path = format!("{stem}.trace.txt");
        std::fs::write(&trace_path, summary)
            .unwrap_or_else(|e| panic!("writing {trace_path}: {e}"));
        println!("wrote {trace_path}");
    }
}
