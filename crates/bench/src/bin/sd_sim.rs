//! `sd-sim` — a standalone Stokesian dynamics simulation driver.
//!
//! Runs a crowded-suspension trajectory with the MRHS algorithm and
//! reports the physics (MSD, diffusion constant, radial distribution)
//! and the solver behaviour (iteration counts, block-solve costs).
//! Optionally exports the final resistance matrix in Matrix Market
//! format for external analysis.
//!
//! ```text
//! sd-sim [--particles N] [--occupancy F] [--steps N] [--m N]
//!        [--seed N] [--baseline] [--export-matrix PATH]
//! ```

use mrhs_core::{run_mrhs_chunk, run_original_step, MrhsConfig, ResistanceSystem};
use mrhs_stokes::analysis::{radial_distribution, MsdTracker};
use mrhs_stokes::{GaussianNoise, SystemBuilder};

struct Args {
    particles: usize,
    occupancy: f64,
    steps: usize,
    m: usize,
    seed: u64,
    baseline: bool,
    export_matrix: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        particles: 500,
        occupancy: 0.4,
        steps: 24,
        m: 8,
        seed: 7,
        baseline: false,
        export_matrix: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--particles" => args.particles = next_val(&mut it, &a),
            "--occupancy" => args.occupancy = next_val(&mut it, &a),
            "--steps" => args.steps = next_val(&mut it, &a),
            "--m" => args.m = next_val(&mut it, &a),
            "--seed" => args.seed = next_val(&mut it, &a),
            "--baseline" => args.baseline = true,
            "--export-matrix" => {
                args.export_matrix =
                    Some(it.next().expect("--export-matrix needs a path"))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: sd-sim [--particles N] [--occupancy F] [--steps N] \
                     [--m N] [--seed N] [--baseline] [--export-matrix PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn next_val<T: std::str::FromStr>(
    it: &mut impl Iterator<Item = String>,
    flag: &str,
) -> T {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a value"))
}

fn main() {
    let args = parse_args();
    let (mut system, mut noise) = SystemBuilder::new(args.particles)
        .volume_fraction(args.occupancy)
        .seed(args.seed)
        .build_with_noise();
    println!(
        "sd-sim: {} particles, occupancy {:.2}, box {:.0} A, algorithm: {}",
        args.particles,
        system.particles().volume_fraction(),
        system.particles().box_lengths()[0],
        if args.baseline { "original (Alg. 1)" } else { "MRHS (Alg. 2)" }
    );

    let cfg = MrhsConfig { m: args.m, ..Default::default() };
    let mut msd = MsdTracker::new(system.particles());
    let mut total_first = 0usize;
    let mut total_second = 0usize;
    let mut steps_done = 0usize;
    let start = std::time::Instant::now();

    if args.baseline {
        let mut cache = None;
        let mut noise = GaussianNoise::seed_from_u64(args.seed);
        while steps_done < args.steps {
            let s = run_original_step(&mut system, &mut noise, &cfg, &mut cache);
            total_first += s.first_solve_iterations;
            total_second += s.second_solve_iterations;
            steps_done += 1;
            msd.record(system.particles(), system.dt());
        }
    } else {
        while steps_done < args.steps {
            let report = run_mrhs_chunk(&mut system, &mut noise, &cfg);
            for s in &report.steps {
                total_first += s.first_solve_iterations;
                total_second += s.second_solve_iterations;
            }
            steps_done += report.steps.len();
            msd.record(system.particles(), report.steps.len() as f64 * system.dt());
            println!(
                "  chunk done: block {} it, msd {:.4} A^2",
                report.block_iterations,
                msd.msd()
            );
        }
    }
    let elapsed = start.elapsed().as_secs_f64();

    println!("\n== trajectory ({steps_done} steps, {elapsed:.2} s) ==");
    println!(
        "mean first-solve iterations : {:.1}",
        total_first as f64 / steps_done as f64
    );
    println!(
        "mean second-solve iterations: {:.1}",
        total_second as f64 / steps_done as f64
    );
    println!("final MSD: {:.4} A^2", msd.msd());
    if let Some(d) = msd.diffusion_constant() {
        println!("diffusion constant (MSD/6t fit): {d:.5} A^2/time");
    }

    println!("\n== structure: g(gap) ==");
    for (gap, g) in radial_distribution(system.particles(), 30.0, 6) {
        let bar = "#".repeat((g * 10.0).min(60.0) as usize);
        println!("  gap {gap:6.1} A: {g:7.3} {bar}");
    }

    if let Some(path) = args.export_matrix {
        let a = system.assemble();
        let file = std::fs::File::create(&path).expect("create export file");
        mrhs_sparse::io::write_matrix_market(&a, file).expect("export");
        println!(
            "\nexported resistance matrix ({} blocks) to {path}",
            a.nnz_blocks()
        );
    }
}
