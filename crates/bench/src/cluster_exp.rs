//! Multi-node experiments: Fig. 3, Fig. 4, Table III.
//!
//! The functional halo exchange runs in-process (see `mrhs-cluster`);
//! times come from the calibrated cluster model with the paper's
//! machine and InfiniBand constants, so node counts up to 64 are
//! reproducible without the cluster.

use crate::common::{f, sd_system_and_matrix, section, Options, TABLE1_CUTOFFS};
use mrhs_cluster::{
    ClusterGspmvModel, ClusterMrhsModel, DistEngine, DistributedMatrix,
};
use mrhs_perfmodel::mrhs_model::SolveCounts;
use mrhs_sparse::partition::coordinate_partition;
use mrhs_sparse::MultiVec;
use std::time::Instant;

fn distribute(opts: &Options, s_cut: f64, nodes: usize) -> DistributedMatrix {
    let (system, a) = sd_system_and_matrix(opts.particles, s_cut, opts.seed);
    let part = coordinate_partition(
        &a,
        system.particles().positions(),
        system.particles().box_lengths(),
        nodes,
    );
    DistributedMatrix::new(&a, &part)
}

/// Volume factor projecting the generated structure to the paper's
/// 300,000 particles (1.0 when running with `--full`).
fn paper_scale(opts: &Options) -> f64 {
    300_000.0 / opts.particles as f64
}

/// Fig. 3: r(m) for mat1 and mat2 on 1/4/16/64 nodes.
pub fn fig3(opts: &Options) {
    let model = ClusterGspmvModel::paper_cluster();
    let ms = [1usize, 2, 4, 8, 16, 24, 32];
    for (name, s_cut, _) in [TABLE1_CUTOFFS[0], TABLE1_CUTOFFS[1]] {
        section(&format!("Fig. 3: relative time r(m, p) for {name}"));
        let node_counts = [1usize, 4, 16, 64];
        let scale = paper_scale(opts);
        let dms: Vec<DistributedMatrix> =
            node_counts.iter().map(|&p| distribute(opts, s_cut, p)).collect();
        print!("{:>4}", "m");
        for p in node_counts {
            print!(" {:>9}", format!("p={p}"));
        }
        println!();
        for &m in &ms {
            print!("{m:>4}");
            for dm in &dms {
                print!(" {:>9}", f(model.relative_time_scaled(dm, m, scale)));
            }
            println!();
        }
    }
}

/// Fig. 4: the trend of r(m) versus node count — a slight rise at small
/// node counts (halo gather cost), then a drop at large counts where
/// latency dominates and extra vectors are nearly free.
pub fn fig4(opts: &Options) {
    section("Fig. 4: relative time vs number of nodes (mat1)");
    let model = ClusterGspmvModel::paper_cluster();
    let scale = paper_scale(opts);
    let node_counts = [1usize, 2, 4, 8, 16, 32, 64];
    let ms = [4usize, 8, 16, 32];
    print!("{:>6}", "nodes");
    for m in ms {
        print!(" {:>9}", format!("r(m={m})"));
    }
    println!();
    for &p in &node_counts {
        let dm = distribute(opts, TABLE1_CUTOFFS[0].1, p);
        print!("{p:>6}");
        for &m in &ms {
            print!(" {:>9}", f(model.relative_time_scaled(&dm, m, scale)));
        }
        println!();
    }
}

/// Table III: communication time fraction for mat1 at 32 and 64 nodes.
/// Paper: 88/76/52% at 32 nodes and 97/90/67% at 64 nodes for
/// m = 1/8/32.
pub fn table3(opts: &Options) {
    section("Table III: GSPMV communication time fractions (mat1, projected to 300k particles)");
    let model = ClusterGspmvModel::paper_cluster();
    let scale = paper_scale(opts);
    let ms = [1usize, 8, 32];
    let paper = [[88, 76, 52], [97, 90, 67]];
    println!("{:>8} {:>8} {:>8} {:>8}   (paper)", "nodes", "m=1", "m=8", "m=32");
    for (row, &p) in [32usize, 64].iter().enumerate() {
        let dm = distribute(opts, TABLE1_CUTOFFS[0].1, p);
        print!("{p:>8}");
        for &m in &ms {
            print!(" {:>7.0}%", 100.0 * model.comm_fraction_scaled(&dm, m, scale));
        }
        println!("   ({}%/{}%/{}%)", paper[row][0], paper[row][1], paper[row][2]);
    }
}

/// Multi-node MRHS projection (beyond the paper's evaluation — the
/// distributed SD code it defers): Eq. 9 with the cluster GSPMV model.
pub fn cluster_mrhs(opts: &Options) {
    section("Multi-node MRHS projection (Eq. 9 x cluster model, mat2, 300k scale)");
    let model = ClusterMrhsModel {
        gspmv: ClusterGspmvModel::paper_cluster(),
        counts: SolveCounts::fig7(),
        block_fraction: 2.0 / 3.0,
    };
    let scale = paper_scale(opts);
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>10}",
        "nodes", "optimal m", "T_mrhs [ms]", "T_orig [ms]", "speedup"
    );
    for p in [1usize, 4, 16, 64] {
        let dm = distribute(opts, TABLE1_CUTOFFS[1].1, p);
        let (m, s) = model.predicted_speedup(&dm, 32, scale);
        println!(
            "{p:>6} {m:>12} {:>14} {:>14} {:>9.2}x",
            f(model.tmrhs(&dm, m, scale) * 1e3),
            f(model.toriginal(&dm, scale) * 1e3),
            s
        );
    }
    println!(
        "(the paper defers distributed SD; this composes its two validated models)"
    );
}

fn pseudo_x(n: usize, m: usize, seed: u64) -> MultiVec {
    let mut state = seed | 1;
    let mut x = MultiVec::zeros(n, m);
    for v in x.as_mut_slice() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    x
}

/// Persistent-engine experiment: measured per-node phase timings and
/// communication fractions from the *real* overlapped execution, side
/// by side with the `sim.rs` model's predictions for the same matrix
/// and partition; then engine-vs-respawn throughput; then a functional
/// distributed block-CG solve through the engine.
///
/// The model prices the paper's cluster (WSM nodes, InfiniBand), while
/// the measurement runs node-threads on one machine with channel
/// "wires" — absolute times differ by construction; the comparison is
/// structural: where time goes (comm wait vs local vs remote) and how
/// the overlap `max(t_comm, t_local) + t_remote` plays out.
pub fn engine(opts: &Options) {
    let nodes = 8usize;
    let m = 8usize;
    section(&format!(
        "Persistent engine: measured vs modeled GSPMV phases (mat1, p = {nodes}, m = {m})"
    ));
    let model = ClusterGspmvModel::paper_cluster();
    let (system, a) =
        sd_system_and_matrix(opts.particles, TABLE1_CUTOFFS[0].1, opts.seed);
    let part = coordinate_partition(
        &a,
        system.particles().positions(),
        system.particles().box_lengths(),
        nodes,
    );
    let dm = DistributedMatrix::new(&a, &part);
    let n = dm.nb_rows() * 3;
    let engine = DistEngine::new(dm.clone());
    let x = pseudo_x(n, m, opts.seed);

    // Warm up, then average phase timings over the reps.
    let mut y = MultiVec::zeros(n, m);
    engine.multiply_into(&x, &mut y);
    let reps = opts.reps.max(1);
    let mut acc = vec![mrhs_cluster::PhaseTimings::default(); nodes];
    for _ in 0..reps {
        let stats = engine.multiply_into(&x, &mut y);
        for (a, t) in acc.iter_mut().zip(&stats.timings) {
            a.comm_wait += t.comm_wait / reps as f64;
            a.local += t.local / reps as f64;
            a.remote += t.remote / reps as f64;
        }
    }

    println!(
        "{:>4} | {:>10} {:>10} {:>10} {:>6} | {:>10} {:>10} {:>10} {:>6}",
        "node",
        "wait[us]",
        "local[us]",
        "rem[us]",
        "frac",
        "comm[us]",
        "local[us]",
        "rem[us]",
        "frac"
    );
    println!(
        "{:>4} | {:>40} | {:>40}",
        "", "measured (this machine)", "modeled (paper cluster)"
    );
    for (p, t) in acc.iter().enumerate() {
        let nt = model.node_time(&dm, p, m);
        println!(
            "{p:>4} | {:>10.1} {:>10.1} {:>10.1} {:>5.0}% | {:>10.1} {:>10.1} {:>10.1} {:>5.0}%",
            t.comm_wait * 1e6,
            t.local * 1e6,
            t.remote * 1e6,
            100.0 * t.comm_fraction(),
            nt.comm * 1e6,
            nt.compute_local * 1e6,
            nt.compute_remote * 1e6,
            100.0 * nt.comm_fraction(),
        );
    }

    // Measured vs modeled comm fraction at the slowest node, across m.
    section("Comm fraction at the slowest node: measured engine vs model (Table III structure)");
    println!("{:>4} {:>10} {:>10}", "m", "measured", "modeled");
    for mm in [1usize, 8, 32] {
        let xm = pseudo_x(n, mm, opts.seed + mm as u64);
        let mut ym = MultiVec::zeros(n, mm);
        engine.multiply_into(&xm, &mut ym); // warm
        let mut worst = mrhs_cluster::PhaseTimings::default();
        for _ in 0..reps {
            let s = engine.multiply_into(&xm, &mut ym).slowest();
            worst.comm_wait += s.comm_wait / reps as f64;
            worst.local += s.local / reps as f64;
            worst.remote += s.remote / reps as f64;
        }
        println!(
            "{mm:>4} {:>9.0}% {:>9.0}%",
            100.0 * worst.comm_fraction(),
            100.0 * model.comm_fraction(&dm, mm)
        );
    }

    // Engine vs respawn-per-call throughput on the same multiply.
    section("Throughput: persistent engine vs respawn-per-call executor");
    let iters = (4 * reps).max(8);
    let t0 = Instant::now();
    for _ in 0..iters {
        engine.multiply_into(&x, &mut y);
    }
    let t_engine = t0.elapsed().as_secs_f64() / iters as f64;
    let t1 = Instant::now();
    for _ in 0..iters {
        let _ = mrhs_cluster::exchange::execute(&dm, &x);
    }
    let t_respawn = t1.elapsed().as_secs_f64() / iters as f64;
    println!(
        "engine  {:>10} per multiply ({:.0}/s)",
        f(t_engine * 1e3),
        1.0 / t_engine
    );
    println!(
        "respawn {:>10} per multiply ({:.0}/s)",
        f(t_respawn * 1e3),
        1.0 / t_respawn
    );
    println!(
        "speedup {:>9.2}x (threads + channels + plans reused)",
        t_respawn / t_engine
    );

    // Functional distributed solve: block CG through the engine, checked
    // against the shared-memory solve on the same (permuted) matrix.
    section("Distributed block CG through the engine (vs shared-memory block CG)");
    use mrhs_solvers::block_cg::block_cg;
    use mrhs_solvers::cg::SolveConfig;
    let permuted = mrhs_sparse::reorder::permute_symmetric(&a, dm.permutation());
    let cfg = SolveConfig { tol: 1e-10, max_iter: 600 };
    let b = pseudo_x(n, m, opts.seed ^ 0xb10c);
    let mut x_shared = MultiVec::zeros(n, m);
    let shared = block_cg(&permuted, &b, &mut x_shared, &cfg);
    let mut x_dist = MultiVec::zeros(n, m);
    let dist = block_cg(&engine, &b, &mut x_dist, &cfg);
    let max_diff = x_shared
        .as_slice()
        .iter()
        .zip(x_dist.as_slice())
        .map(|(u, v)| (u - v).abs())
        .fold(0.0f64, f64::max);
    let agg = engine.last_stats();
    println!(
        "shared:      {} iterations, converged = {}",
        shared.iterations, shared.converged
    );
    println!(
        "distributed: {} iterations, converged = {}, max |x_d - x_s| = {:.2e}",
        dist.iterations, dist.converged, max_diff
    );
    println!(
        "last GSPMV halo traffic: {} bytes over {} messages",
        agg.comm.total_bytes(),
        agg.comm.recv_messages.iter().sum::<usize>()
    );
}

/// Fused k-step halo exchange (`repro engine-powers`): measured
/// comm-wait fraction of `multiply_powers_into` (one widened exchange
/// covering the k-level dependency frontier) against `k` chained
/// `multiply_into` calls (one exchange per multiply) on the persistent
/// engine. The interior-node column is the acceptance number: slab ends
/// have one neighbour, interior slabs two, so they carry the halo cost
/// the fused exchange amortizes.
pub fn engine_powers(opts: &Options) {
    let nodes = 8usize;
    let m = 8usize;
    section(&format!(
        "Fused k-step exchange vs per-multiply exchange (mat1, p = {nodes}, m = {m})"
    ));
    let (system, a) =
        sd_system_and_matrix(opts.particles, TABLE1_CUTOFFS[0].1, opts.seed);
    let part = coordinate_partition(
        &a,
        system.particles().positions(),
        system.particles().box_lengths(),
        nodes,
    );
    let dm = DistributedMatrix::new(&a, &part);
    let n = dm.nb_rows() * 3;
    let engine = DistEngine::new(dm);
    let x = pseudo_x(n, m, opts.seed);
    let reps = opts.reps.max(3);
    let interior = 1..nodes - 1;

    // Aggregate comm-wait fraction over a node range: total blocked
    // time over total phase time, summed across those nodes.
    let frac = |acc: &[mrhs_cluster::PhaseTimings],
                range: std::ops::Range<usize>| {
        let (mut wait, mut total) = (0.0, 0.0);
        for t in &acc[range] {
            wait += t.comm_wait;
            total += t.total();
        }
        if total > 0.0 {
            wait / total
        } else {
            0.0
        }
    };

    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "k",
        "seq int%",
        "fused int%",
        "seq slow%",
        "fused slow%",
        "seq msgs",
        "fused msgs"
    );
    for k in [1usize, 2, 3, 4] {
        let mut outs: Vec<MultiVec> =
            (0..k).map(|_| MultiVec::zeros(n, m)).collect();
        let mut y = MultiVec::zeros(n, m);

        // Warm both paths (plan construction, thread wake-up).
        engine.multiply_powers_into(&x, &mut outs);
        engine.multiply_into(&x, &mut y);

        let mut seq_acc = vec![mrhs_cluster::PhaseTimings::default(); nodes];
        let mut fused_acc = vec![mrhs_cluster::PhaseTimings::default(); nodes];
        let mut seq_msgs = 0usize;
        let mut fused_msgs = 0usize;
        for _ in 0..reps {
            // k chained multiplies: one halo round each.
            let mut cur = x.clone();
            for _ in 0..k {
                let stats = engine.multiply_into(&cur, &mut y);
                for (acc, t) in seq_acc.iter_mut().zip(&stats.timings) {
                    acc.comm_wait += t.comm_wait;
                    acc.local += t.local;
                    acc.remote += t.remote;
                }
                seq_msgs += stats.comm.recv_messages.iter().sum::<usize>();
                std::mem::swap(&mut cur, &mut y);
            }
            // One fused wavefront: one widened halo round for all k.
            let stats = engine.multiply_powers_into(&x, &mut outs);
            for (acc, t) in fused_acc.iter_mut().zip(&stats.timings) {
                acc.comm_wait += t.comm_wait;
                acc.local += t.local;
                acc.remote += t.remote;
            }
            fused_msgs += stats.comm.recv_messages.iter().sum::<usize>();
        }
        let slowest = |acc: &[mrhs_cluster::PhaseTimings]| {
            acc.iter()
                .map(mrhs_cluster::PhaseTimings::comm_fraction)
                .fold(0.0f64, f64::max)
        };
        println!(
            "{:>3} {:>11.0}% {:>11.0}% {:>11.0}% {:>11.0}% {:>10} {:>10}",
            k,
            100.0 * frac(&seq_acc, interior.clone()),
            100.0 * frac(&fused_acc, interior.clone()),
            100.0 * slowest(&seq_acc),
            100.0 * slowest(&fused_acc),
            seq_msgs / reps,
            fused_msgs / reps
        );
    }
    println!(
        "(acceptance: fused interior comm-wait fraction below the sequential \
         column at k >= 3; fused msgs stay one exchange round per k multiplies)"
    );
}

/// Functional check printed alongside the model: the distributed
/// multiply with real halo exchange must agree with the serial kernel.
pub fn verify_exchange(opts: &Options) {
    section("Distributed GSPMV functional check (real halo exchange)");
    let dm = distribute(opts, TABLE1_CUTOFFS[0].1, 8);
    let n = dm.nb_rows() * 3;
    let m = 8;
    let mut x = mrhs_sparse::MultiVec::zeros(n, m);
    let mut state = 1u64;
    for v in x.as_mut_slice() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    let (y, stats) = mrhs_cluster::exchange::execute(&dm, &x);
    println!(
        "8 nodes, m = {m}: {} halo bytes over {} messages, |Y|max = {:.3}",
        stats.total_bytes(),
        stats.recv_messages.iter().sum::<usize>(),
        y.max_abs()
    );
}
