//! Criterion benches of the headline kernels: SPMV and GSPMV across the
//! vector counts of the paper's Fig. 2, on Table I-style SD matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrhs_sparse::{gspmv_serial, spmv_serial, BcrsMatrix, MultiVec};
use mrhs_stokes::{assemble_resistance, ResistanceConfig, SystemBuilder};

fn sd_matrix(n: usize, s_cut: f64) -> BcrsMatrix {
    let sys = SystemBuilder::new(n)
        .volume_fraction(0.5)
        .s_cut(s_cut)
        .seed(20120521)
        .build();
    assemble_resistance(
        sys.particles(),
        &ResistanceConfig { s_cut, ..Default::default() },
    )
}

/// GSPMV time as a function of `m` — the measured Fig. 2 curve. Divide
/// each entry by the `m = 1` entry to read off `r(m)`.
fn bench_gspmv_vs_m(c: &mut Criterion) {
    let a = sd_matrix(2000, 3.2); // mat2-like density
    let n = a.n_rows();
    let mut group = c.benchmark_group("gspmv_vs_m");
    group.sample_size(20);
    for &m in &[1usize, 2, 4, 8, 16, 32] {
        let x = MultiVec::from_flat(n, m, vec![1.0; n * m]);
        let mut y = MultiVec::zeros(n, m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| gspmv_serial(&a, &x, &mut y));
        });
    }
    group.finish();
}

/// Single-vector SPMV per matrix density (Table II's quantity).
fn bench_spmv_by_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv_by_density");
    group.sample_size(20);
    for (name, s_cut) in [("mat1", 2.25), ("mat2", 3.2), ("mat3", 4.1)] {
        let a = sd_matrix(2000, s_cut);
        let n = a.n_rows();
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        group.bench_function(name, |b| b.iter(|| spmv_serial(&a, &x, &mut y)));
    }
    group.finish();
}

criterion_group!(benches, bench_gspmv_vs_m, bench_spmv_by_density);
criterion_main!(benches);
