//! Ablation benches for the design choices called out in DESIGN.md:
//! unrolled vs strip-mined vs naive kernels, BCRS vs scalar CSR,
//! Morton/RCM ordering vs random labels, and coordinate vs RCB
//! partition quality (reported as throughput of the halo-bound kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrhs_sparse::gspmv::{gspmv_serial_generic, gspmv_serial_naive};
use mrhs_sparse::reorder::{permute_symmetric, reverse_cuthill_mckee};
use mrhs_sparse::{
    backend_available, gspmv, gspmv_serial, gspmv_serial_with, BcrsMatrix,
    CsrMatrix, DedupBcrs, KernelKind, MultiVec, SymmetricBcrs,
};
use mrhs_stokes::{assemble_resistance, ResistanceConfig, SystemBuilder};

fn sd_matrix(n: usize) -> BcrsMatrix {
    let sys = SystemBuilder::new(n).volume_fraction(0.5).seed(20120521).build();
    assemble_resistance(sys.particles(), &ResistanceConfig::default())
}

/// Kernel variants at m = 16: monomorphized vs strip-mined generic vs
/// fully-runtime naive.
fn bench_kernel_variants(c: &mut Criterion) {
    let a = sd_matrix(2000);
    let n = a.n_rows();
    let m = 16;
    let x = MultiVec::from_flat(n, m, vec![1.0; n * m]);
    let mut y = MultiVec::zeros(n, m);
    let mut group = c.benchmark_group("kernel_variants_m16");
    group.sample_size(20);
    group.bench_function("specialized", |b| {
        b.iter(|| gspmv_serial(&a, &x, &mut y));
    });
    group.bench_function("strip_mined_generic", |b| {
        b.iter(|| gspmv_serial_generic(&a, &x, &mut y));
    });
    group.bench_function("naive", |b| {
        b.iter(|| gspmv_serial_naive(&a, &x, &mut y));
    });
    if backend_available(KernelKind::Simd) {
        group.bench_function("simd", |b| {
            b.iter(|| gspmv_serial_with(KernelKind::Simd, &a, &x, &mut y));
        });
    }
    let d = DedupBcrs::from_bcrs(&a);
    group.bench_function("dedup", |b| {
        b.iter(|| d.gspmv_serial(&x, &mut y));
    });
    group.finish();
}

/// BCRS 3×3 blocks vs scalar CSR on the same matrix — the format choice
/// the paper bases on the natural block structure.
fn bench_bcrs_vs_csr(c: &mut Criterion) {
    let a = sd_matrix(2000);
    let csr = CsrMatrix::from(&a);
    let n = a.n_rows();
    let mut group = c.benchmark_group("format_m8");
    group.sample_size(20);
    let x = MultiVec::from_flat(n, 8, vec![1.0; n * 8]);
    let mut y = MultiVec::zeros(n, 8);
    group.bench_function("bcrs", |b| b.iter(|| gspmv_serial(&a, &x, &mut y)));
    group.bench_function("csr", |b| b.iter(|| csr.gspmv(&x, &mut y)));
    group.finish();
}

/// Ordering ablation: the Morton-labelled SD matrix vs a randomly
/// relabelled copy vs RCM — locality of `x` accesses (the `k(m)` term).
fn bench_ordering(c: &mut Criterion) {
    let a = sd_matrix(2000);
    let nb = a.nb_rows();
    // random relabelling (deterministic shuffle)
    let mut perm: Vec<usize> = (0..nb).collect();
    let mut state = 12345u64;
    for i in (1..nb).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        perm.swap(i, (state as usize) % (i + 1));
    }
    let shuffled = permute_symmetric(&a, &perm);
    let rcm = permute_symmetric(&shuffled, &reverse_cuthill_mckee(&shuffled));

    let n = a.n_rows();
    let m = 8;
    let x = MultiVec::from_flat(n, m, vec![1.0; n * m]);
    let mut y = MultiVec::zeros(n, m);
    let mut group = c.benchmark_group("ordering_m8");
    group.sample_size(20);
    group.bench_function("morton", |b| b.iter(|| gspmv_serial(&a, &x, &mut y)));
    group.bench_function("random", |b| {
        b.iter(|| gspmv_serial(&shuffled, &x, &mut y))
    });
    group.bench_function("rcm", |b| b.iter(|| gspmv_serial(&rcm, &x, &mut y)));
    group.finish();
}

/// Symmetric (half) storage vs full storage — the symmetry the paper
/// leaves unexploited. Three-way ablation across the Fig. 2 vector
/// counts: the full-storage parallel driver, the symmetric serial
/// kernel, and the symmetric parallel (slab + reduce) driver. On a
/// multi-core host (`RAYON_NUM_THREADS >= 2`) symmetric-parallel should
/// beat symmetric-serial from m = 8 on; on one core both symmetric
/// variants win on the halved matrix stream alone.
fn bench_symmetric_storage(c: &mut Criterion) {
    let a = sd_matrix(2000);
    let s = SymmetricBcrs::from_full(&a, 1e-9).expect("SD matrices are symmetric");
    let n = a.n_rows();
    let nthreads = rayon::current_num_threads().max(2);
    for m in [1usize, 8, 16, 32] {
        let mut group = c.benchmark_group(format!("symmetry_m{m}"));
        group.sample_size(20);
        let x = MultiVec::from_flat(n, m, vec![1.0; n * m]);
        let mut y = MultiVec::zeros(n, m);
        group.bench_function("full_parallel", |b| b.iter(|| gspmv(&a, &x, &mut y)));
        group
            .bench_function("symmetric_serial", |b| b.iter(|| s.gspmv(&x, &mut y)));
        group.bench_function("symmetric_parallel", |b| {
            b.iter(|| s.gspmv_chunked(&x, &mut y, nthreads))
        });
        group.finish();
    }
}

/// Assembly cost vs particle count (the per-step `Construct R_k` cost).
fn bench_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("assembly");
    group.sample_size(10);
    for &n in &[500usize, 1000, 2000] {
        let sys = SystemBuilder::new(n).volume_fraction(0.5).seed(20120521).build();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                assemble_resistance(sys.particles(), &ResistanceConfig::default())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel_variants,
    bench_bcrs_vs_csr,
    bench_ordering,
    bench_symmetric_storage,
    bench_assembly
);
criterion_main!(benches);
