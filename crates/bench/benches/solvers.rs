//! Criterion benches of the solver stack on SD resistance matrices:
//! block CG vs independent CG solves (the MRHS workhorse comparison)
//! and the Chebyshev Brownian-force evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrhs_solvers::{block_cg, cg, spectral_bounds, ChebyshevSqrt, SolveConfig};
use mrhs_sparse::{BcrsMatrix, MultiVec};
use mrhs_stokes::{assemble_resistance, ResistanceConfig, SystemBuilder};

fn sd_matrix(n: usize) -> BcrsMatrix {
    let sys = SystemBuilder::new(n).volume_fraction(0.4).seed(20120521).build();
    assemble_resistance(sys.particles(), &ResistanceConfig::default())
}

fn rhs(n: usize, m: usize) -> MultiVec {
    let mut state = 99u64;
    let mut mv = MultiVec::zeros(n, m);
    for v in mv.as_mut_slice() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    mv
}

/// Block CG with m RHS vs m independent CG solves — the matrix-traffic
/// amortization the MRHS algorithm banks on.
fn bench_block_vs_single(c: &mut Criterion) {
    let a = sd_matrix(400);
    let n = a.n_rows();
    let cfg = SolveConfig { tol: 1e-6, max_iter: 2000 };
    let mut group = c.benchmark_group("solve_8_rhs");
    group.sample_size(10);
    let b = rhs(n, 8);
    group.bench_function("block_cg", |bch| {
        bch.iter(|| {
            let mut x = MultiVec::zeros(n, 8);
            block_cg(&a, &b, &mut x, &cfg)
        });
    });
    group.bench_function("8x_cg", |bch| {
        bch.iter(|| {
            for j in 0..8 {
                let mut x = vec![0.0; n];
                cg(&a, &b.column(j), &mut x, &cfg);
            }
        });
    });
    group.finish();
}

/// Chebyshev matrix square root: single vector vs a block of 8 — the
/// "Cheb single" vs "Cheb vectors" rows of Tables VI/VII.
fn bench_chebyshev(c: &mut Criterion) {
    let a = sd_matrix(400);
    let n = a.n_rows();
    let g = (a.gershgorin_lower_bound(), a.gershgorin_upper_bound());
    let bounds = spectral_bounds(&a, 20, Some(g));
    let cheb = ChebyshevSqrt::new(bounds.lo, bounds.hi, 30);
    let mut group = c.benchmark_group("chebyshev_sqrt");
    group.sample_size(10);
    for &m in &[1usize, 8, 16] {
        let z = rhs(n, m);
        let mut y = MultiVec::zeros(n, m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| cheb.apply_multi(&a, &z, &mut y));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_vs_single, bench_chebyshev);
criterion_main!(benches);
