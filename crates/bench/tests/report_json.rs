//! End-to-end check of `repro … --json`: the binary must exit zero and
//! leave behind a parseable, schema-valid [`BenchReport`].

use mrhs_telemetry::report::{BenchReport, SCHEMA_VERSION};

#[test]
fn quick_json_report_round_trips_and_validates() {
    let path = std::env::temp_dir()
        .join(format!("mrhs_bench_report_{}.json", std::process::id()));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "quick",
            "--json",
            path.to_str().unwrap(),
            "--particles",
            "300",
            "--reps",
            "2",
        ])
        .output()
        .expect("repro binary runs");
    assert!(
        out.status.success(),
        "repro failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&path).expect("report written");
    let _ = std::fs::remove_file(&path);
    let report = BenchReport::from_json_str(&text).expect("report parses");
    assert_eq!(report.schema_version, SCHEMA_VERSION);
    assert_eq!(report.experiment, "quick");
    let problems = report.validate();
    assert!(problems.is_empty(), "{problems:?}");

    // The instrumented pass must have produced model-comparable GSPMV
    // rows and solver/engine span trees.
    assert!(report.kernels.iter().any(|k| k.name == "gspmv" && k.m == 1));
    // Schema v2: the report records the detected ISA, the dispatched
    // kernel backend, and per-backend ablation rows.
    assert!(["avx512", "avx2", "neon", "portable"]
        .contains(&report.machine.isa.as_str()));
    assert!(["simd", "scalar", "generic"]
        .contains(&report.machine.kernel_backend.as_str()));
    assert!(report.kernels.iter().any(|k| k.name == "gspmv_scalar"));
    assert!(report.kernels.iter().any(|k| k.name == "gspmv_dedup"));
    assert!(report.span_consistency.iter().any(|c| c.parent == "solver/block_cg"));
    assert!(report
        .span_consistency
        .iter()
        .any(|c| c.parent.starts_with("engine/node")));
    assert!(report.snapshot.counters.keys().any(|k| k.starts_with("gspmv/m")));
    // Schema v3: the tracing-overhead row (off-vs-on GSPMV loop) and
    // the model-drift gauges must be present and sane.
    let ov = report.trace_overhead.as_ref().expect("v3 trace overhead");
    assert!(ov.baseline_rhs_per_sec > 0.0 && ov.traced_rhs_per_sec > 0.0);
    assert!(ov.overhead_frac.is_finite());
    assert!(ov.events_recorded > 0, "traced pass must record events");
    assert!(report
        .drift_gauges
        .iter()
        .any(|g| g.name == "drift/m_optimal/modeled" && g.value >= 1.0));
    assert!(report
        .drift_gauges
        .iter()
        .any(|g| g.name.starts_with("drift/gspmv/m") && g.value.is_finite()));
    // Round trip: serialize → parse → identical.
    let again = BenchReport::from_json_str(&report.to_json_string()).unwrap();
    assert_eq!(report, again);
}
