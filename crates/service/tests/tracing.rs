//! Tracing acceptance and drop accounting: a traced request must
//! assemble into a span tree whose queue-wait and solve children tile
//! the end-to-end root exactly, with the shared batch tree (solver
//! iterations, kernel spans) grafted in through its `joined_batch`
//! link; and every request the service drops must be attributed to a
//! cause (queue expiry, backpressure, shutdown).

use std::time::Duration;

use mrhs_service::{
    BatchPolicy, MatrixRegistry, RequestOptions, ServiceConfig, SolveError,
    SolveService, SubmitError,
};
use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder, MultiVec};
use mrhs_telemetry::flight;
use mrhs_telemetry::trace::{self, SpanNode, TraceId};

fn laplacian(nb: usize) -> BcrsMatrix {
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        t.add(i, i, Block3::scaled_identity(4.0));
        if i + 1 < nb {
            t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
        }
    }
    t.build()
}

fn pseudo_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn one_col(n: usize, seed: u64) -> MultiVec {
    let mut mv = MultiVec::zeros(n, 1);
    mv.set_column(0, &pseudo_rhs(n, seed));
    mv
}

/// Depth-first search over the tree (spans only) by predicate.
fn find_span<'a>(
    n: &'a SpanNode,
    pred: &dyn Fn(&SpanNode) -> bool,
) -> Option<&'a SpanNode> {
    if pred(n) {
        return Some(n);
    }
    n.children.iter().find_map(|c| find_span(c, pred))
}

/// Whether any point event named `name` exists anywhere in the tree.
fn has_point(n: &SpanNode, name: &str) -> bool {
    n.points.iter().any(|p| trace::name_of(p.name) == name)
        || n.children.iter().any(|c| has_point(c, name))
}

#[test]
fn traced_request_assembles_consistent_span_tree() {
    trace::set_trace_enabled(true);
    let reg = MatrixRegistry::new();
    let a = laplacian(10);
    let n = a.n_rows();
    let h = reg.register_full("lap", a);
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: 4,
            queue_capacity: 64,
            linger: Duration::from_secs(5),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);

    let rhss: Vec<Vec<f64>> = (0..4).map(|k| pseudo_rhs(n, 7000 + k)).collect();
    let tickets: Vec<_> =
        rhss.iter().map(|b| svc.submit_one(h, b).unwrap()).collect();
    let outs: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    svc.shutdown();

    let events = flight::snapshot_events();
    for out in &outs {
        let id = TraceId(out.trace_id.expect("tracing on mints a trace id"));
        let tree = trace::assemble_linked(&events, id)
            .expect("request trace must assemble to a tree");
        assert_eq!(tree.name, "service/request");

        // Direct children: the queue-wait and solve intervals, sharing
        // the dispatch timestamp, tile the root exactly.
        let qw = tree
            .children
            .iter()
            .find(|c| c.name == "service/queue_wait")
            .expect("queue_wait child");
        let solve = tree
            .children
            .iter()
            .find(|c| c.name == "service/solve")
            .expect("solve child");
        assert_eq!(qw.event.start_ns, tree.event.start_ns);
        assert_eq!(
            qw.event.start_ns + qw.event.dur_ns,
            solve.event.start_ns,
            "queue_wait must end where solve begins"
        );
        assert_eq!(
            qw.event.dur_ns + solve.event.dur_ns,
            tree.event.dur_ns,
            "children must sum to the end-to-end root duration"
        );

        // The joined_batch link carries the batcher's decision and
        // grafts the shared batch tree under this request.
        let link = tree
            .links
            .iter()
            .find(|l| trace::name_of(l.name) == "joined_batch")
            .expect("joined_batch link on the root");
        assert_eq!(
            (link.b >> 8) & 0xff_ffff,
            out.batch_width as u64,
            "link payload must carry the dispatched width"
        );
        let batch = find_span(&tree, &|s| s.name == "service/batch")
            .expect("batch tree grafted through the link");
        assert!(
            find_span(batch, &|s| s.name.starts_with("kernel/")).is_some(),
            "kernel dispatch spans must nest under the batch:\n{}",
            tree.render()
        );
        assert!(
            has_point(batch, "solver/block_cg/iter"),
            "per-iteration residual points must nest under the batch:\n{}",
            tree.render()
        );
    }
}

#[test]
fn drop_counters_attribute_expiry_backpressure_and_shutdown() {
    let reg = MatrixRegistry::new();
    let a = laplacian(6);
    let n = a.n_rows();
    let h = reg.register_full("lap", a);
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: 3,
            queue_capacity: 3,
            // Pathological linger: nothing dispatches until shutdown
            // flush, so queue occupancy is deterministic.
            linger: Duration::from_secs(60),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);

    // One request parks in the queue for the whole test.
    let parked = svc.submit(h, one_col(n, 11), RequestOptions::default()).unwrap();

    // Expiry: a zero-deadline request is removed by the worker, never
    // solved. Waiting on it guarantees it left the queue.
    let doomed = svc
        .submit(
            h,
            one_col(n, 12),
            RequestOptions { deadline: Some(Duration::ZERO), ..Default::default() },
        )
        .unwrap();
    match doomed.wait() {
        Err(SolveError::DeadlineExceeded { .. }) => {}
        other => panic!("zero deadline must expire, got {other:?}"),
    }

    // Backpressure: with two columns parked (below the width-3
    // dispatch threshold), a two-column request overflows the
    // three-column queue bound and is rejected.
    let filler = svc.submit(h, one_col(n, 13), RequestOptions::default()).unwrap();
    let wide = {
        let mut mv = MultiVec::zeros(n, 2);
        mv.set_column(0, &pseudo_rhs(n, 14));
        mv.set_column(1, &pseudo_rhs(n, 15));
        mv
    };
    match svc.submit(h, wide, RequestOptions::default()) {
        Err(SubmitError::QueueFull { .. }) => {}
        other => panic!("full queue must reject, got {other:?}"),
    }

    // Shutdown drains the parked requests, then refuses new ones.
    svc.shutdown();
    parked.wait().expect("parked request drains on shutdown flush");
    filler.wait().expect("filler request drains on shutdown flush");
    match svc.submit(h, one_col(n, 15), RequestOptions::default()) {
        Err(SubmitError::ShuttingDown) => {}
        other => panic!("post-shutdown submit must be refused, got {other:?}"),
    }

    let drops = svc.drop_stats();
    assert_eq!(drops.deadline_missed, 1, "{drops:?}");
    assert_eq!(drops.backpressure, 1, "{drops:?}");
    assert_eq!(drops.shutdown, 1, "{drops:?}");
}
