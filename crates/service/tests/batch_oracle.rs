//! Differential oracle leg: any batch decomposition of a request set
//! (widths 1, 2, the model's m_s, and all-at-once) must produce
//! solutions agreeing with dense direct solves under the shared
//! `TolModel`, over the SPD slice of the pathological corpus.

use std::time::Duration;

use mrhs_perfmodel::mrhs_model::SolveCounts;
use mrhs_perfmodel::{GspmvModel, MachineProfile};
use mrhs_service::{
    model_batch_width, BatchPolicy, MatrixRegistry, RequestOptions, ServiceConfig,
    SolveService,
};
use mrhs_sparse::MultiVec;
use oracle::reference::gauss_solve;
use oracle::{corpus, pseudo_multivec, Dense, Scale, TolModel};

const REQUESTS: usize = 8;

#[test]
fn any_batch_decomposition_matches_solo_solves() {
    // Deterministic m_s from the paper's machine model (not a host
    // probe), so the width grid is stable across CI machines.
    let gspmv = GspmvModel::from_density(25.0, MachineProfile::wsm());
    let ms = model_batch_width(&gspmv, SolveCounts::fig7(), REQUESTS);
    let mut widths = vec![1, 2, ms, REQUESTS];
    widths.dedup();

    let mut tested = 0usize;
    for entry in corpus(Scale::Small) {
        // The solver leg needs SPD systems: strict block-diagonal
        // dominance (positive Gershgorin lower bound) over the
        // symmetric entries of the corpus guarantees that; singular
        // pathologies (zero matrix, empty rows) stay kernel-only.
        if !entry.intended_symmetric || entry.matrix.gershgorin_lower_bound() <= 0.0
        {
            continue;
        }
        tested += 1;
        let a = &entry.matrix;
        let n = a.n_rows();
        let rhs = pseudo_multivec(n, REQUESTS, 0xbead + n as u64);

        // Solo references: dense direct solves, one per column.
        let dense = Dense::from_bcrs(a);
        let references: Vec<Vec<f64>> = (0..REQUESTS)
            .map(|j| {
                gauss_solve(&dense, &rhs.column(j))
                    .expect("SPD corpus entry must be solvable")
            })
            .collect();

        for &w in &widths {
            let reg = MatrixRegistry::new();
            let h = reg.register_full(entry.name, a.clone());
            let cfg = ServiceConfig {
                policy: BatchPolicy {
                    max_batch: w,
                    queue_capacity: 4 * REQUESTS,
                    // Long linger: every batch fills to exactly w (the
                    // last one to REQUESTS % w), so this really tests
                    // the decomposition into widths w.
                    linger: Duration::from_secs(5),
                },
                default_tol: 1e-10,
                ..ServiceConfig::default()
            };
            let svc = SolveService::start(reg, cfg);
            let tickets: Vec<_> = (0..REQUESTS)
                .map(|j| {
                    let mut mv = MultiVec::zeros(n, 1);
                    mv.set_column(0, &rhs.column(j));
                    svc.submit(h, mv, RequestOptions::default()).unwrap()
                })
                .collect();
            for (j, t) in tickets.into_iter().enumerate() {
                let out = t.wait().unwrap_or_else(|e| {
                    panic!("{} width {w} request {j} failed: {e:?}", entry.name)
                });
                assert!(
                    out.batch_width <= w,
                    "{}: batch width {} exceeds configured {w}",
                    entry.name,
                    out.batch_width
                );
                TolModel::SOLVER
                    .check_slices(
                        &references[j],
                        &out.solution.column(0),
                        &format!(
                            "{} decomposition width {w} request {j}",
                            entry.name
                        ),
                    )
                    .unwrap_or_else(|e| panic!("{e}"));
            }
            svc.shutdown();
            let st = svc.stats();
            assert_eq!(st.completed, REQUESTS as u64);
            assert_eq!(
                st.batches,
                (REQUESTS as u64).div_ceil(w as u64),
                "{}: width {w} must decompose {REQUESTS} requests into \
                 ceil batches",
                entry.name
            );
        }
    }
    assert!(
        tested >= 4,
        "corpus should contribute several SPD entries, got {tested}"
    );
}
