//! Concurrency stress: N producer threads hammer a bounded queue under
//! forced backpressure and randomized deadlines. Asserts no deadlock
//! (watchdog), no lost or duplicated completions (every ticket resolves
//! exactly once — a duplicate panics the worker, which `shutdown()`
//! propagates), and clean shutdown with accounting that balances.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mrhs_cluster::watchdog::with_deadline;
use mrhs_service::{
    BatchPolicy, MatrixRegistry, RequestOptions, ServiceConfig, SolveError,
    SolveService, SubmitError,
};
use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder, MultiVec};

fn laplacian(nb: usize) -> BcrsMatrix {
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        t.add(i, i, Block3::scaled_identity(4.0));
        if i + 1 < nb {
            t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
        }
    }
    t.build()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Default)]
struct Tally {
    submitted: u64,
    ok: u64,
    expired: u64,
    other_err: u64,
    rejected_retries: u64,
}

#[test]
fn producers_vs_bounded_queue_under_backpressure() {
    with_deadline(Duration::from_secs(120), || {
        const PRODUCERS: usize = 4;
        const REQUESTS: usize = 40;

        let reg = MatrixRegistry::new();
        // Large enough that one solve takes real time, so producers
        // outrun the worker and hit the queue bound.
        let a = laplacian(120);
        let n = a.n_rows();
        let h = reg.register_full("lap", a);
        let cfg = ServiceConfig {
            workers: 2,
            policy: BatchPolicy {
                max_batch: 4,
                queue_capacity: 6,
                linger: Duration::from_micros(500),
            },
            ..ServiceConfig::default()
        };
        let svc = Arc::new(SolveService::start(reg, cfg));

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let svc = svc.clone();
                thread::spawn(move || {
                    let mut rng = 0x5eed ^ (p as u64) << 32;
                    let mut tally = Tally::default();
                    // Submit everything up front (retrying on
                    // backpressure) so in-flight work far exceeds the
                    // 6-column queue bound, then collect completions.
                    let mut tickets = Vec::with_capacity(REQUESTS);
                    for k in 0..REQUESTS {
                        let mut rhs = MultiVec::zeros(n, 1);
                        let col: Vec<f64> = (0..n)
                            .map(|_| {
                                splitmix(&mut rng) as f64 / u64::MAX as f64 - 0.5
                            })
                            .collect();
                        rhs.set_column(0, &col);
                        // ~30% of requests carry a tight-ish random
                        // deadline; some will expire under backlog.
                        let deadline = if splitmix(&mut rng) % 10 < 3 {
                            Some(Duration::from_micros(splitmix(&mut rng) % 20_000))
                        } else {
                            None
                        };
                        let opts =
                            RequestOptions { deadline, ..Default::default() };
                        let ticket = loop {
                            match svc.submit(h, rhs.clone(), opts.clone()) {
                                Ok(t) => break t,
                                Err(SubmitError::QueueFull { retry_after }) => {
                                    tally.rejected_retries += 1;
                                    thread::sleep(
                                        retry_after.min(Duration::from_millis(2)),
                                    );
                                }
                                Err(e) => {
                                    panic!("producer {p} req {k}: {e:?}")
                                }
                            }
                        };
                        tally.submitted += 1;
                        tickets.push((k, ticket));
                    }
                    for (k, ticket) in tickets {
                        match ticket.wait() {
                            Ok(out) => {
                                assert!(out
                                    .solution
                                    .as_slice()
                                    .iter()
                                    .all(|v| v.is_finite()));
                                tally.ok += 1;
                            }
                            Err(SolveError::DeadlineExceeded { .. }) => {
                                tally.expired += 1
                            }
                            Err(e) => {
                                eprintln!("producer {p} req {k}: {e:?}");
                                tally.other_err += 1;
                            }
                        }
                    }
                    tally
                })
            })
            .collect();

        let mut total = Tally::default();
        for p in producers {
            let t = p.join().expect("producer panicked");
            total.submitted += t.submitted;
            total.ok += t.ok;
            total.expired += t.expired;
            total.other_err += t.other_err;
            total.rejected_retries += t.rejected_retries;
        }

        // Clean shutdown; propagates worker panics (e.g. a duplicated
        // completion).
        svc.shutdown();
        let st = svc.stats();

        assert_eq!(
            total.submitted,
            (PRODUCERS * REQUESTS) as u64,
            "every request must eventually be accepted"
        );
        assert_eq!(st.accepted, total.submitted);
        assert_eq!(
            st.completed + st.failed,
            st.accepted,
            "no lost completions: accepted == completed + failed"
        );
        assert_eq!(st.completed, total.ok);
        assert_eq!(st.failed, total.expired + total.other_err);
        assert_eq!(total.other_err, 0, "healthy solves must not fail");
        assert!(
            total.rejected_retries > 0,
            "queue bound must actually exert backpressure \
             (cap 6 columns, {} producers)",
            PRODUCERS
        );
        assert_eq!(st.rejected, total.rejected_retries);
        assert_eq!(
            st.coalesced_columns,
            st.accepted - st.expired,
            "every accepted, non-expired column is solved in exactly \
             one batch"
        );
    });
}

#[test]
fn shutdown_drains_pending_requests() {
    with_deadline(Duration::from_secs(60), || {
        let reg = MatrixRegistry::new();
        let a = laplacian(40);
        let n = a.n_rows();
        let h = reg.register_full("lap", a);
        let cfg = ServiceConfig {
            policy: BatchPolicy {
                max_batch: 8,
                queue_capacity: 64,
                // Linger far longer than the test: only the shutdown
                // flush can dispatch these.
                linger: Duration::from_secs(600),
            },
            ..ServiceConfig::default()
        };
        let svc = SolveService::start(reg, cfg);
        let tickets: Vec<_> = (0..5)
            .map(|k| {
                let mut rhs = MultiVec::zeros(n, 1);
                let mut rng = 7000 + k as u64;
                let col: Vec<f64> = (0..n)
                    .map(|_| splitmix(&mut rng) as f64 / u64::MAX as f64 - 0.5)
                    .collect();
                rhs.set_column(0, &col);
                svc.submit(h, rhs, RequestOptions::default()).unwrap()
            })
            .collect();
        svc.shutdown();
        for t in tickets {
            t.wait().expect("shutdown must drain, not drop, the queue");
        }
        assert_eq!(svc.stats().completed, 5);
    });
}
