//! End-to-end service behavior: coalescing, failure isolation,
//! deadlines, and the DistEngine-backed registry path.

use std::time::Duration;

use mrhs_cluster::{DistEngine, DistributedMatrix};
use mrhs_service::{
    BatchPolicy, MatrixRegistry, RequestOptions, ServiceConfig, SolveError,
    SolveService, SubmitError,
};
use mrhs_solvers::{cg, LinearOperator, SolveConfig};
use mrhs_sparse::partition::contiguous_partition;
use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder, MultiVec};

fn laplacian(nb: usize) -> BcrsMatrix {
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        t.add(i, i, Block3::scaled_identity(4.0));
        if i + 1 < nb {
            t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
        }
    }
    t.build()
}

fn pseudo_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn solo_reference(a: &BcrsMatrix, b: &[f64], tol: f64) -> Vec<f64> {
    let mut x = vec![0.0; b.len()];
    let r = cg(a, b, &mut x, &SolveConfig { tol, max_iter: 1000 });
    assert!(r.converged);
    x
}

#[test]
fn single_request_round_trips() {
    let reg = MatrixRegistry::new();
    let a = laplacian(10);
    let n = a.n_rows();
    let h = reg.register_full("lap", a.clone());
    let svc = SolveService::start(reg, ServiceConfig::default());

    let b = pseudo_rhs(n, 42);
    let out = svc.submit_one(h, &b).unwrap().wait().unwrap();
    let want = solo_reference(&a, &b, 1e-6);
    for (got, want) in out.solution.column(0).iter().zip(&want) {
        assert!((got - want).abs() <= 1e-5 * want.abs().max(1.0));
    }
    assert!(out.batch_width >= 1);
    assert!(!out.solo_retried);
    svc.shutdown();
    let st = svc.stats();
    assert_eq!(st.accepted, 1);
    assert_eq!(st.completed, 1);
}

#[test]
fn concurrent_requests_coalesce_to_target_width() {
    let reg = MatrixRegistry::new();
    let a = laplacian(12);
    let n = a.n_rows();
    let h = reg.register_full("lap", a.clone());
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: 4,
            queue_capacity: 64,
            // Long linger: the batch must fill by width, not drain by
            // time, so widths are deterministic.
            linger: Duration::from_secs(5),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);

    let rhss: Vec<Vec<f64>> = (0..8).map(|k| pseudo_rhs(n, 100 + k)).collect();
    let tickets: Vec<_> =
        rhss.iter().map(|b| svc.submit_one(h, b).unwrap()).collect();
    for (t, b) in tickets.into_iter().zip(&rhss) {
        let out = t.wait().unwrap();
        let want = solo_reference(&a, b, 1e-6);
        for (got, want) in out.solution.column(0).iter().zip(&want) {
            assert!((got - want).abs() <= 1e-5 * want.abs().max(1.0));
        }
        assert!(
            out.batch_width >= 2,
            "requests submitted together should share a batch \
             (width {})",
            out.batch_width
        );
    }
    svc.shutdown();
    let st = svc.stats();
    assert_eq!(st.completed, 8);
    assert!(
        st.batches <= 4,
        "8 requests at target width 4 need at most 4 batches, got {}",
        st.batches
    );
    assert!(st.full_batches >= 1, "at least one batch must fill to 4");
    assert!(st.coalescing_efficiency() > 0.4);
}

#[test]
fn poisoned_rhs_fails_alone_batchmates_complete() {
    let reg = MatrixRegistry::new();
    let a = laplacian(8);
    let n = a.n_rows();
    let h = reg.register_full("lap", a.clone());
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: 4,
            queue_capacity: 64,
            linger: Duration::from_secs(5),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);

    let mut rhss: Vec<Vec<f64>> = (0..4).map(|k| pseudo_rhs(n, 200 + k)).collect();
    rhss[1][3] = f64::NAN; // poison one column of one request
    let tickets: Vec<_> =
        rhss.iter().map(|b| svc.submit_one(h, b).unwrap()).collect();
    let results: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();

    // The poisoned request fails alone...
    match &results[1] {
        Err(SolveError::DidNotConverge { relative_residual, .. }) => {
            assert!(relative_residual.is_nan());
        }
        other => panic!("poisoned request must fail, got {other:?}"),
    }
    // ...while its batchmates complete with correct solutions. A NaN
    // column poisons *every* column of the coupled block solve, so the
    // mates only survive through the solo-retry path.
    for (k, r) in results.iter().enumerate() {
        if k == 1 {
            continue;
        }
        let out = r.as_ref().expect("batchmate must complete");
        assert_eq!(
            out.batch_width, 4,
            "mate must actually have shared the poisoned batch"
        );
        assert!(out.solo_retried, "mates complete via solo retry");
        let want = solo_reference(&a, &rhss[k], 1e-6);
        for (got, want) in out.solution.column(0).iter().zip(&want) {
            assert!((got - want).abs() <= 1e-5 * want.abs().max(1.0));
        }
    }
    svc.shutdown();
    let st = svc.stats();
    assert_eq!(st.completed, 3);
    assert_eq!(st.failed, 1);
    assert!(st.solo_retries >= 3);
}

#[test]
fn multi_column_requests_ride_along() {
    let reg = MatrixRegistry::new();
    let a = laplacian(9);
    let n = a.n_rows();
    let h = reg.register_full("lap", a.clone());
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: 6,
            queue_capacity: 64,
            linger: Duration::from_secs(5),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);

    let mut wide = MultiVec::zeros(n, 3);
    let cols: Vec<Vec<f64>> = (0..3).map(|k| pseudo_rhs(n, 300 + k)).collect();
    for (k, c) in cols.iter().enumerate() {
        wide.set_column(k, c);
    }
    let t_wide = svc.submit(h, wide, RequestOptions::default()).unwrap();
    let narrow = pseudo_rhs(n, 400);
    let t_narrow = svc.submit_one(h, &narrow).unwrap();

    let out = t_wide.wait().unwrap();
    assert_eq!(out.solution.shape(), (n, 3));
    for (k, c) in cols.iter().enumerate() {
        let want = solo_reference(&a, c, 1e-6);
        for (got, want) in out.solution.column(k).iter().zip(&want) {
            assert!((got - want).abs() <= 1e-5 * want.abs().max(1.0));
        }
    }
    assert!(out.batch_width >= 3);
    t_narrow.wait().unwrap();
    svc.shutdown();
}

#[test]
fn per_request_tolerances_are_respected() {
    let reg = MatrixRegistry::new();
    let a = laplacian(10);
    let n = a.n_rows();
    let h = reg.register_full("lap", a.clone());
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: 2,
            queue_capacity: 16,
            linger: Duration::from_secs(5),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);

    let b0 = pseudo_rhs(n, 500);
    let b1 = pseudo_rhs(n, 501);
    let loose = svc
        .submit(
            h,
            {
                let mut mv = MultiVec::zeros(n, 1);
                mv.set_column(0, &b0);
                mv
            },
            RequestOptions { tol: Some(1e-2), ..Default::default() },
        )
        .unwrap();
    let tight = svc
        .submit(
            h,
            {
                let mut mv = MultiVec::zeros(n, 1);
                mv.set_column(0, &b1);
                mv
            },
            RequestOptions { tol: Some(1e-10), ..Default::default() },
        )
        .unwrap();
    let (lo, ti) = (loose.wait().unwrap(), tight.wait().unwrap());
    assert!(
        lo.iterations <= ti.iterations,
        "loose column ({}) must stop no later than tight ({})",
        lo.iterations,
        ti.iterations
    );
    // The tight request really hit 1e-10.
    let mut r = vec![0.0; n];
    let x1 = ti.solution.column(0);
    a.apply(&x1, &mut r);
    let rn =
        r.iter().zip(&b1).map(|(ax, b)| (ax - b) * (ax - b)).sum::<f64>().sqrt();
    let bn = b1.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(rn <= 1e-9 * bn, "rel residual {:.2e}", rn / bn);
    svc.shutdown();
}

#[test]
fn submit_errors_are_reported_cleanly() {
    let reg = MatrixRegistry::new();
    let a = laplacian(4);
    let n = a.n_rows();
    let h = reg.register_full("lap", a);
    let stale = {
        let tmp = laplacian(4);
        let h2 = reg.register_full("gone", tmp);
        reg.unregister(h2);
        h2
    };
    let svc = SolveService::start(reg, ServiceConfig::default());

    assert_eq!(
        svc.submit_one(stale, &vec![1.0; n]).unwrap_err(),
        SubmitError::UnknownMatrix
    );
    assert_eq!(
        svc.submit_one(h, &vec![1.0; n + 3]).unwrap_err(),
        SubmitError::ShapeMismatch { expected: n, got: n + 3 }
    );
    svc.shutdown();
    assert_eq!(
        svc.submit_one(h, &vec![1.0; n]).unwrap_err(),
        SubmitError::ShuttingDown
    );
}

#[test]
fn zero_deadline_expires_in_queue() {
    let reg = MatrixRegistry::new();
    let a = laplacian(6);
    let n = a.n_rows();
    let h = reg.register_full("lap", a);
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: 8,
            queue_capacity: 16,
            linger: Duration::from_millis(200),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);
    let t = svc
        .submit(
            h,
            {
                let mut mv = MultiVec::zeros(n, 1);
                mv.set_column(0, &pseudo_rhs(n, 1));
                mv
            },
            RequestOptions { deadline: Some(Duration::ZERO), ..Default::default() },
        )
        .unwrap();
    match t.wait() {
        Err(SolveError::DeadlineExceeded { .. }) => {}
        other => panic!("zero deadline must expire, got {other:?}"),
    }
    svc.shutdown();
    assert_eq!(svc.stats().expired, 1);
}

#[test]
fn deadline_pressure_drains_partial_batch_early() {
    let reg = MatrixRegistry::new();
    let a = laplacian(6);
    let n = a.n_rows();
    let h = reg.register_full("lap", a);
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: 8,
            queue_capacity: 16,
            // Pathological linger: only deadline pressure can drain.
            linger: Duration::from_secs(60),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);
    let t = svc
        .submit(
            h,
            {
                let mut mv = MultiVec::zeros(n, 1);
                mv.set_column(0, &pseudo_rhs(n, 2));
                mv
            },
            RequestOptions {
                deadline: Some(Duration::from_millis(100)),
                ..Default::default()
            },
        )
        .unwrap();
    let out = t.wait().expect("deadline-pressed request must be served");
    assert!(
        out.latency < Duration::from_secs(5),
        "must drain near the deadline, not the 60s linger \
         (latency {:?})",
        out.latency
    );
    svc.shutdown();
}

#[test]
fn dist_engine_backed_registration_serves_requests() {
    let a = laplacian(8);
    let n = a.n_rows();
    // Single partition: the distributed row permutation is identity,
    // so solutions compare directly with the shared-memory path.
    let part = contiguous_partition(&a, 1);
    let dm = DistributedMatrix::new(&a, &part);
    assert!(
        dm.permutation().iter().enumerate().all(|(i, &p)| i == p),
        "1-partition permutation must be identity"
    );
    let engine = DistEngine::new(dm);

    let reg = MatrixRegistry::new();
    let h = reg.register_operator("lap-dist", Box::new(engine));
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: 3,
            queue_capacity: 16,
            linger: Duration::from_secs(5),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);

    let rhss: Vec<Vec<f64>> = (0..3).map(|k| pseudo_rhs(n, 600 + k)).collect();
    let tickets: Vec<_> =
        rhss.iter().map(|b| svc.submit_one(h, b).unwrap()).collect();
    for (t, b) in tickets.into_iter().zip(&rhss) {
        let out = t.wait().unwrap();
        let want = solo_reference(&a, b, 1e-6);
        for (got, want) in out.solution.column(0).iter().zip(&want) {
            assert!((got - want).abs() <= 1e-5 * want.abs().max(1.0));
        }
    }
    svc.shutdown();
}

// ---------------------------------------------------------------------------
// Nonsymmetric tenants: typed operator-class registration, block
// BiCGStab dispatch, model-chosen widths, and failure isolation.
// ---------------------------------------------------------------------------

/// Diagonally dominant convection-style matrix: downstream coupling
/// stronger than upstream, genuinely nonsymmetric.
fn convection(nb: usize) -> BcrsMatrix {
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        let mut d = Block3::scaled_identity(6.0);
        *d.get_mut(0, 1) = 0.3;
        t.add(i, i, d);
        if i + 1 < nb {
            t.add(i, i + 1, Block3::scaled_identity(-1.4));
            t.add(i + 1, i, Block3::scaled_identity(-0.6));
        }
    }
    t.build()
}

fn solo_bicgstab_reference(a: &BcrsMatrix, b: &[f64], tol: f64) -> Vec<f64> {
    let mut x = vec![0.0; b.len()];
    let r =
        mrhs_solvers::bicgstab(a, b, &mut x, &SolveConfig { tol, max_iter: 1000 });
    assert!(r.converged, "{r:?}");
    x
}

/// End-to-end acceptance path for nonsymmetric operators:
/// `register_auto` detects the asymmetry and falls back to a
/// General-class full-storage registration, the batch width comes from
/// the BiCGStab cost model, and coalesced requests are solved with
/// block BiCGStab to each caller's tolerance.
#[test]
fn nonsym_matrix_is_served_end_to_end_with_model_width() {
    use mrhs_perfmodel::{GspmvModel, MachineProfile};
    use mrhs_service::{model_batch_width_bicgstab, OperatorClass, StorageKind};

    let reg = MatrixRegistry::new();
    let a = convection(16);
    let n = a.n_rows();
    let (h, kind) = reg.register_auto("conv", a.clone(), 1e-12);
    assert_eq!(kind, StorageKind::Full, "nonsym cannot use symmetric storage");
    {
        let p = reg.get(h).unwrap();
        assert_eq!(p.class(), OperatorClass::General);
    }

    let gspmv = GspmvModel::new(&a.stats(), MachineProfile::wsm());
    let width = model_batch_width_bicgstab(&gspmv, 16);
    assert!(width >= 1, "model width must be usable");

    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: width.max(2),
            queue_capacity: 64,
            linger: Duration::from_secs(5),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);

    let rhss: Vec<Vec<f64>> = (0..6).map(|k| pseudo_rhs(n, 900 + 10 * k)).collect();
    let tickets: Vec<_> =
        rhss.iter().map(|b| svc.submit_one(h, b).unwrap()).collect();
    for (t, b) in tickets.into_iter().zip(&rhss) {
        let out = t.wait().unwrap();
        let want = solo_bicgstab_reference(&a, b, 1e-9);
        for (got, want) in out.solution.column(0).iter().zip(&want) {
            assert!(
                (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                "{got} vs {want}"
            );
        }
        assert!(!out.solo_retried, "healthy batch needs no retries");
    }
    svc.shutdown();
    let st = svc.stats();
    assert_eq!(st.completed, 6);
    assert_eq!(st.failed, 0);
    assert!(st.batches < 6, "requests must coalesce, got {} batches", st.batches);
}

/// The failure-isolation contract on the BiCGStab path: a NaN
/// right-hand side poisons the coupled block solve (shadow Grams mix
/// every column), the poisoned request fails alone, and its batchmates
/// complete through the scalar-BiCGStab solo retry.
#[test]
fn poisoned_rhs_fails_alone_on_nonsym_batch() {
    let reg = MatrixRegistry::new();
    let a = convection(8);
    let n = a.n_rows();
    let h = reg.register_general("conv", a.clone());
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: 4,
            queue_capacity: 64,
            linger: Duration::from_secs(5),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);

    let mut rhss: Vec<Vec<f64>> =
        (0..4).map(|k| pseudo_rhs(n, 300 + 10 * k)).collect();
    rhss[2][5] = f64::NAN;
    let tickets: Vec<_> =
        rhss.iter().map(|b| svc.submit_one(h, b).unwrap()).collect();
    let results: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();

    match &results[2] {
        Err(SolveError::DidNotConverge { relative_residual, .. }) => {
            assert!(relative_residual.is_nan());
        }
        other => panic!("poisoned request must fail, got {other:?}"),
    }
    for (k, r) in results.iter().enumerate() {
        if k == 2 {
            continue;
        }
        let out = r.as_ref().expect("batchmate must complete");
        assert_eq!(
            out.batch_width, 4,
            "mate must actually have shared the poisoned batch"
        );
        assert!(out.solo_retried, "mates complete via scalar-BiCGStab retry");
        let want = solo_bicgstab_reference(&a, &rhss[k], 1e-6);
        for (got, want) in out.solution.column(0).iter().zip(&want) {
            assert!((got - want).abs() <= 1e-4 * want.abs().max(1.0));
        }
    }
    svc.shutdown();
    let st = svc.stats();
    assert_eq!(st.completed, 3);
    assert_eq!(st.failed, 1);
    assert!(st.solo_retries >= 3);
}

/// Two tenants submitting the *same* right-hand side make the batch
/// exactly rank-deficient — block BiCGStab reports the `R̃ᵀV` rank
/// collapse instead of papering over it, and both requests complete
/// through the scalar solo retry.
#[test]
fn duplicate_rhs_batch_recovers_via_solo_retry() {
    let reg = MatrixRegistry::new();
    let a = convection(8);
    let n = a.n_rows();
    let h = reg.register_general("conv", a.clone());
    let cfg = ServiceConfig {
        policy: BatchPolicy {
            max_batch: 2,
            queue_capacity: 64,
            linger: Duration::from_secs(5),
        },
        ..ServiceConfig::default()
    };
    let svc = SolveService::start(reg, cfg);

    let b = pseudo_rhs(n, 4242);
    let t1 = svc.submit_one(h, &b).unwrap();
    let t2 = svc.submit_one(h, &b).unwrap();
    let want = solo_bicgstab_reference(&a, &b, 1e-6);
    for t in [t1, t2] {
        let out = t.wait().expect("duplicate RHS must still be served");
        assert_eq!(out.batch_width, 2, "both must share the batch");
        assert!(out.solo_retried, "rank-deficient batch resolves solo");
        for (got, want) in out.solution.column(0).iter().zip(&want) {
            assert!((got - want).abs() <= 1e-4 * want.abs().max(1.0));
        }
    }
    svc.shutdown();
    assert_eq!(svc.stats().completed, 2);
}

#[test]
fn unregister_fails_queued_requests_cleanly() {
    let reg = MatrixRegistry::new();
    let a = laplacian(6);
    let n = a.n_rows();
    let h = reg.register_full("lap", a);
    let svc = SolveService::start(
        reg,
        ServiceConfig {
            policy: BatchPolicy {
                max_batch: 8,
                queue_capacity: 64,
                linger: Duration::from_secs(5),
            },
            ..Default::default()
        },
    );
    // Long linger: these stay queued until the revocation sweep.
    let tickets: Vec<_> =
        (0..3).map(|k| svc.submit_one(h, &pseudo_rhs(n, 7 + k)).unwrap()).collect();
    assert!(svc.unregister(h));
    for t in tickets {
        assert_eq!(t.wait().unwrap_err(), SolveError::MatrixUnregistered);
    }
    assert_eq!(svc.drop_stats().unregistered, 3);
    // Later submits see an unknown handle, not a panic.
    assert!(matches!(
        svc.submit_one(h, &pseudo_rhs(n, 1)),
        Err(SubmitError::UnknownMatrix)
    ));
    // The workers survived the sweep: a fresh registration still solves.
    let a2 = laplacian(6);
    let h2 = svc.registry().register_full("lap2", a2.clone());
    let b = pseudo_rhs(n, 5);
    let out = svc.submit_one(h2, &b).unwrap().wait().unwrap();
    let want = solo_reference(&a2, &b, 1e-6);
    for (got, want) in out.solution.column(0).iter().zip(&want) {
        assert!((got - want).abs() <= 1e-5 * want.abs().max(1.0));
    }
    svc.shutdown();
}

#[test]
fn unregister_lets_dispatched_batches_finish() {
    let reg = MatrixRegistry::new();
    let a = laplacian(40);
    let n = a.n_rows();
    let h = reg.register_full("lap", a.clone());
    let svc = SolveService::start(
        reg,
        ServiceConfig {
            policy: BatchPolicy {
                max_batch: 4,
                queue_capacity: 64,
                linger: Duration::ZERO,
            },
            ..Default::default()
        },
    );
    let b = pseudo_rhs(n, 99);
    let t = svc.submit_one(h, &b).unwrap();
    // Give the zero-linger dispatch a moment, then yank the handle.
    std::thread::sleep(Duration::from_millis(20));
    svc.unregister(h);
    match t.wait() {
        Ok(out) => {
            let want = solo_reference(&a, &b, 1e-6);
            for (got, want) in out.solution.column(0).iter().zip(&want) {
                assert!((got - want).abs() <= 1e-5 * want.abs().max(1.0));
            }
        }
        // The only acceptable failure is the clean revocation sweep —
        // the unregister racing ahead of the dispatch. Anything else
        // (a panic, a stranded ticket) fails the test.
        Err(e) => assert_eq!(e, SolveError::MatrixUnregistered),
    }
    svc.shutdown();
}
