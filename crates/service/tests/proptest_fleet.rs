//! Fleet-tier properties: the router only lands requests on shards
//! that actually hold their operator, and work stealing never breaks
//! the per-column acceptance / solo-retry contract (one completion per
//! ticket, poisoned columns fail alone).

use std::time::Duration;

use mrhs_service::{
    FleetConfig, FleetService, Placement, RequestOptions, ServiceConfig, SolveError,
};
use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder, MultiVec};
use proptest::prelude::*;

fn laplacian(nb: usize) -> BcrsMatrix {
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        t.add(i, i, Block3::scaled_identity(4.0));
        if i + 1 < nb {
            t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
        }
    }
    t.build()
}

/// One right-hand-side column; `poison` plants a NaN in the middle,
/// which poisons every coupled column of a block solve and must be
/// contained by the solo-retry path.
fn rhs(n: usize, seed: u64, poison: bool) -> MultiVec {
    let mut state = seed | 1;
    let mut mv = MultiVec::zeros(n, 1);
    let col: Vec<f64> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 + 0.5
        })
        .collect();
    mv.set_column(0, &col);
    if poison {
        mv.as_mut_slice()[n / 2] = f64::NAN;
    }
    mv
}

fn base_cfg(shards: usize) -> FleetConfig {
    let mut shard = ServiceConfig::default();
    shard.policy.linger = Duration::from_millis(5);
    shard.policy.max_batch = 4;
    shard.policy.queue_capacity = 64;
    FleetConfig {
        shards,
        shard,
        shard_parts: 2,
        steal_min_cols: Some(1),
        admission: None,
        ..FleetConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Every routed request lands on a shard that holds (or replicates)
    // its operator: the shard-local handle resolves in that shard's
    // registry, sharded placements always route home, and replicated
    // placements hand out the routed shard's own replica handle. All
    // accepted tickets resolve.
    #[test]
    fn routing_lands_on_a_shard_holding_the_operator(
        shards in 1usize..=3,
        nb_small in 2usize..6,
        nb_big in 8usize..12,
        submits in 1usize..10,
        salt in 0usize..1000,
    ) {
        let mut cfg = base_cfg(shards);
        // dim(small) = 3·nb_small ≤ 15 replicates; dim(big) ≥ 24 shards.
        cfg.replicate_max_dim = 20;
        let f = FleetService::start(cfg);
        let hs = f.register_spd("small", laplacian(nb_small));
        let hb = f.register_spd("big", laplacian(nb_big));

        let mut tickets = Vec::new();
        for k in 0..submits {
            let h = if (k + salt) % 2 == 0 { hs } else { hb };
            let d = f.placement(h).unwrap();
            let (i, mh, _) = f.route_preview(h).unwrap();
            prop_assert!(
                f.shards()[i].registry().get(mh).is_some(),
                "routed shard {} does not hold the operator", i
            );
            match &d.placement {
                Placement::Sharded { home, .. } => {
                    prop_assert_eq!(i, *home, "sharded tenant routed off-home");
                }
                Placement::Replicated { handles } => {
                    prop_assert_eq!(mh, handles[i]);
                }
            }
            let t = f
                .submit(h, rhs(d.dim, (salt + k) as u64, false), RequestOptions::default())
                .unwrap();
            tickets.push(t);
        }
        for t in tickets {
            let r = t.wait();
            prop_assert!(r.is_ok(), "accepted request failed: {:?}", r.err());
        }
        let st = f.stats();
        prop_assert_eq!(
            st.routed_join + st.routed_least_loaded,
            submits as u64,
            "every accepted request is routed exactly once"
        );
        f.shutdown();
    }

    // With work stealing on, a NaN-poisoned request fails alone with
    // `DidNotConverge` while every clean batchmate succeeds — the PR 5
    // acceptance/solo-retry contract — and each ticket completes
    // exactly once (a double completion panics the worker, which
    // `shutdown` propagates). Fleet and per-shard steal counters agree.
    #[test]
    fn stealing_preserves_acceptance_and_solo_retry(
        shards in 2usize..=3,
        nreq in 4usize..12,
        poison_pick in 0usize..12,
        salt in 0usize..1000,
    ) {
        let poison_at = poison_pick % nreq;
        let f = FleetService::start(base_cfg(shards));
        let h = f.register_spd("lap", laplacian(6));
        let n = f.placement(h).unwrap().dim;
        let tickets: Vec<_> = (0..nreq)
            .map(|k| {
                f.submit(
                    h,
                    rhs(n, (salt + k) as u64, k == poison_at),
                    RequestOptions::default(),
                )
                .unwrap()
            })
            .collect();
        for (k, t) in tickets.into_iter().enumerate() {
            let r = t.wait();
            if k == poison_at {
                prop_assert!(
                    matches!(r, Err(SolveError::DidNotConverge { .. })),
                    "poisoned column must fail cleanly, got {:?}", r
                );
            } else {
                prop_assert!(
                    r.is_ok(),
                    "clean batchmate poisoned: {:?}", r.err()
                );
            }
        }
        f.shutdown();
        let st = f.stats();
        let stolen: u64 = st.shards.iter().map(|s| s.stolen_batches).sum();
        prop_assert_eq!(st.steals, stolen);
        let done: u64 = st.shards.iter().map(|s| s.completed + s.failed).sum();
        prop_assert_eq!(done, nreq as u64);
    }
}
