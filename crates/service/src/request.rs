//! Request, ticket, and completion types for the solve service.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mrhs_sparse::MultiVec;

/// Per-request knobs supplied at submit time.
#[derive(Clone, Debug, Default)]
pub struct RequestOptions {
    /// Relative stopping tolerance for this request's columns. `None`
    /// uses the service default. The batcher feeds these through
    /// `BlockCgOptions::column_tols`, so each coalesced request keeps
    /// its own stopping criterion.
    pub tol: Option<f64>,
    /// Queueing deadline relative to submission. A request still queued
    /// when its deadline passes fails with
    /// [`SolveError::DeadlineExceeded`] instead of being solved; a
    /// request already dispatched runs to completion.
    pub deadline: Option<Duration>,
}

/// A finished solve, scattered back out of the coalesced block solve.
#[derive(Clone, Debug)]
pub struct SolveOutput {
    /// Solution columns, one per requested right-hand side.
    pub solution: MultiVec,
    /// Block iterations this request effectively paid for (the worst of
    /// its columns' `column_iterations`, or the solo-retry count).
    pub iterations: usize,
    /// Width of the coalesced batch this request rode in.
    pub batch_width: usize,
    /// Whether any of this request's columns needed the solo-retry path
    /// after the batched solve failed for them.
    pub solo_retried: bool,
    /// Time spent queued before dispatch.
    pub queue_wait: Duration,
    /// Time inside the block (plus any solo-retry) solve.
    pub solve_time: Duration,
    /// End-to-end latency: submission to completion.
    pub latency: Duration,
    /// Trace id minted at ingress when tracing was enabled
    /// (`MRHS_TRACE=1`); correlates this request with its span tree in
    /// the trace buffer and any flight-recorder dump. `None` when
    /// tracing was off at submit time.
    pub trace_id: Option<u64>,
}

/// Why a submitted request failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// Still queued when the per-request deadline passed.
    DeadlineExceeded {
        /// How long the request had been queued when it was expired.
        waited: Duration,
    },
    /// The batched solve failed for this request's columns and the solo
    /// retry did not converge either.
    DidNotConverge {
        /// Worst relative residual over the request's columns.
        relative_residual: f64,
        /// Iterations spent in the failing solo retry.
        iterations: usize,
    },
    /// The matrix was unregistered while the request was still queued
    /// (the distinct drop cause behind `service/drop/unregistered`).
    /// Requests already dispatched in a batch run to completion instead.
    MatrixUnregistered,
    /// The service was shut down before the request was dispatched.
    Shutdown,
}

/// Why a request was rejected at submit time (never enqueued).
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// The bounded queue is full. `retry_after` estimates when capacity
    /// frees up (one batch solve from now, by recent measurement).
    QueueFull { retry_after: Duration },
    /// The handle is not registered (or was unregistered).
    UnknownMatrix,
    /// Right-hand-side rows do not match the registered matrix.
    ShapeMismatch { expected: usize, got: usize },
    /// The service is shutting down.
    ShuttingDown,
}

/// One-shot, set-exactly-once completion cell shared between the worker
/// that finishes a request and the client blocked on its [`Ticket`].
pub(crate) struct Completion {
    state: Mutex<Option<Result<SolveOutput, SolveError>>>,
    cv: Condvar,
}

impl Completion {
    pub(crate) fn new() -> Self {
        Completion { state: Mutex::new(None), cv: Condvar::new() }
    }

    /// Fulfills the completion. Panics if called twice — a lost or
    /// duplicated completion is a batcher bug, and the stress test
    /// leans on this panic to detect one.
    pub(crate) fn complete(&self, r: Result<SolveOutput, SolveError>) {
        let mut st = self.state.lock().unwrap();
        assert!(st.is_none(), "request completed twice");
        *st = Some(r);
        self.cv.notify_all();
    }
}

/// Client-side handle to one submitted request.
pub struct Ticket {
    pub(crate) shared: Arc<Completion>,
    pub(crate) submitted: Instant,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("submitted", &self.submitted)
            .finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the request finishes (solved, failed, or expired).
    pub fn wait(self) -> Result<SolveOutput, SolveError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(r) = st.take() {
                return r;
            }
            st = self.shared.cv.wait(st).unwrap();
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<SolveOutput, SolveError>> {
        self.shared.state.lock().unwrap().take()
    }

    /// When the request was accepted.
    pub fn submitted_at(&self) -> Instant {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ticket_wait_blocks_until_completion() {
        let shared = Arc::new(Completion::new());
        let ticket = Ticket { shared: shared.clone(), submitted: Instant::now() };
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            shared.complete(Err(SolveError::Shutdown));
        });
        assert_eq!(ticket.wait().unwrap_err(), SolveError::Shutdown);
        t.join().unwrap();
    }

    #[test]
    fn try_wait_returns_none_while_pending() {
        let shared = Arc::new(Completion::new());
        let ticket = Ticket { shared: shared.clone(), submitted: Instant::now() };
        assert!(ticket.try_wait().is_none());
        shared.complete(Err(SolveError::Shutdown));
        assert!(ticket.try_wait().is_some());
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let c = Completion::new();
        c.complete(Err(SolveError::Shutdown));
        c.complete(Err(SolveError::Shutdown));
    }
}
