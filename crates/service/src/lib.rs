//! A request-coalescing block-solve server.
//!
//! The paper's central observation (Eq. 8) is that a GSPMV with `m`
//! right-hand sides costs about twice one RHS up to the
//! bandwidth→compute switch point `m_s`, because the matrix is streamed
//! from memory once regardless of `m`. Algorithm 2 exploits this by
//! *manufacturing* a batch out of future time steps of one simulation.
//! This crate exploits it the other way around, the way an inference
//! stack does: many independent clients each submit a single-RHS (or
//! small multi-RHS) solve against a *shared* registered matrix, and the
//! server coalesces whatever is pending into one block-CG solve whose
//! width targets `m_s` (continuous batching).
//!
//! The moving parts:
//!
//! * [`MatrixRegistry`] — prepared operators (full BCRS,
//!   symmetric-storage, or any boxed [`LinearOperator`] such as a
//!   cluster `DistEngine`) keyed by an opaque [`MatrixHandle`];
//! * [`Batcher`] — a bounded FIFO of pending requests with a
//!   linger/deadline drain policy and backpressure
//!   ([`SubmitError::QueueFull`] carries a `retry_after` hint);
//! * [`SolveService`] — worker threads that gather pending right-hand
//!   sides into a `MultiVec`, run block CG with per-column tolerances,
//!   and scatter solutions back to per-request [`Ticket`]s;
//! * solo-retry failure isolation: a column that fails inside a batch
//!   (breakdown, non-convergence, a poisoned NaN right-hand side) is
//!   retried with a plain single-RHS CG before the request is failed,
//!   so one pathological RHS cannot take down its batchmates;
//! * [`ArrivalTrace`] — Poisson/bursty arrival traces for the
//!   `service-bench` driver.
//!
//! [`LinearOperator`]: mrhs_solvers::LinearOperator

pub mod batcher;
pub mod fleet;
pub mod registry;
pub mod request;
pub mod server;
pub mod trace;

pub use batcher::{BatchPolicy, DispatchCause, DropStats};
pub use fleet::{
    AdmissionCfg, FleetConfig, FleetHandle, FleetService, FleetStats, Placement,
    PlacementDecision,
};
pub use registry::{
    MatrixHandle, MatrixRegistry, OperatorClass, PreparedMatrix, StorageKind,
};
pub use request::{RequestOptions, SolveError, SolveOutput, SubmitError, Ticket};
pub use server::{
    model_batch_width, model_batch_width_bicgstab, DriftModelCfg, ServiceConfig,
    ServiceStats, SolveService,
};
pub use trace::{Arrival, ArrivalTrace};
