//! Deterministic arrival traces for service benchmarking.
//!
//! `service-bench` replays one of these against a running
//! [`SolveService`](crate::SolveService): each entry is a request
//! arrival offset (relative to replay start) plus the request width.
//! Two generators cover the interesting regimes — memoryless
//! [`poisson`](ArrivalTrace::poisson) traffic and
//! [`bursty`](ArrivalTrace::bursty) traffic whose bursts arrive as a
//! Poisson process. Traces serialize to a line-oriented text format
//! (documented in EXPERIMENTS.md) so runs are replayable byte-for-byte.

use std::time::Duration;

/// One request arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Offset from replay start, microseconds.
    pub at_us: u64,
    /// Right-hand sides in this request.
    pub width: usize,
}

/// An ordered arrival schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArrivalTrace {
    pub arrivals: Vec<Arrival>,
}

/// splitmix64 — tiny deterministic generator, no dependencies.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in (0, 1].
fn uniform(state: &mut u64) -> f64 {
    ((splitmix(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// Exponential inter-arrival gap, microseconds.
fn exp_gap_us(state: &mut u64, rate_hz: f64) -> u64 {
    (-uniform(state).ln() / rate_hz * 1e6).round() as u64
}

impl ArrivalTrace {
    /// Memoryless arrivals at `rate_hz` requests per second.
    pub fn poisson(rate_hz: f64, count: usize, width: usize, seed: u64) -> Self {
        assert!(rate_hz > 0.0 && width >= 1);
        let mut state = seed ^ 0xa076_1d64_78bd_642f;
        let mut t = 0u64;
        let arrivals = (0..count)
            .map(|_| {
                t += exp_gap_us(&mut state, rate_hz);
                Arrival { at_us: t, width }
            })
            .collect();
        ArrivalTrace { arrivals }
    }

    /// Bursts of `burst` back-to-back requests; burst *epochs* are a
    /// Poisson process at `rate_hz / burst` so the long-run request
    /// rate still averages `rate_hz`.
    pub fn bursty(
        rate_hz: f64,
        count: usize,
        width: usize,
        burst: usize,
        seed: u64,
    ) -> Self {
        assert!(rate_hz > 0.0 && width >= 1 && burst >= 1);
        let mut state = seed ^ 0xe703_7ed1_a0b4_28db;
        let epoch_rate = rate_hz / burst as f64;
        let mut t = 0u64;
        let mut arrivals = Vec::with_capacity(count);
        while arrivals.len() < count {
            t += exp_gap_us(&mut state, epoch_rate);
            for _ in 0..burst.min(count - arrivals.len()) {
                arrivals.push(Arrival { at_us: t, width });
            }
        }
        ArrivalTrace { arrivals }
    }

    /// Span from replay start to the last arrival.
    pub fn duration(&self) -> Duration {
        Duration::from_micros(self.arrivals.last().map_or(0, |a| a.at_us))
    }

    /// Total right-hand sides across all arrivals.
    pub fn total_columns(&self) -> usize {
        self.arrivals.iter().map(|a| a.width).sum()
    }

    /// Serializes to the EXPERIMENTS.md text format.
    pub fn to_text(&self) -> String {
        let mut s = String::from("# mrhs-service arrival trace v1\n");
        s.push_str("# <offset_us> <width>\n");
        for a in &self.arrivals {
            s.push_str(&format!("{} {}\n", a.at_us, a.width));
        }
        s
    }

    /// Parses the text format (comments and blank lines ignored;
    /// arrivals must be time-ordered).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut arrivals = Vec::new();
        let mut last = 0u64;
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let (at, w) = (it.next(), it.next());
            let err =
                |what: &str| format!("trace line {}: {what}: {line:?}", ln + 1);
            let at_us: u64 = at
                .ok_or_else(|| err("missing offset"))?
                .parse()
                .map_err(|_| err("bad offset"))?;
            let width: usize = w
                .ok_or_else(|| err("missing width"))?
                .parse()
                .map_err(|_| err("bad width"))?;
            if it.next().is_some() {
                return Err(err("trailing fields"));
            }
            if width == 0 {
                return Err(err("width must be >= 1"));
            }
            if at_us < last {
                return Err(err("arrivals must be time-ordered"));
            }
            last = at_us;
            arrivals.push(Arrival { at_us, width });
        }
        Ok(ArrivalTrace { arrivals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_roughly_at_rate() {
        let a = ArrivalTrace::poisson(1000.0, 2000, 1, 7);
        let b = ArrivalTrace::poisson(1000.0, 2000, 1, 7);
        assert_eq!(a, b, "same seed, same trace");
        let secs = a.duration().as_secs_f64();
        let rate = a.arrivals.len() as f64 / secs;
        assert!(
            (rate - 1000.0).abs() < 100.0,
            "empirical rate {rate:.0}/s should be near 1000/s"
        );
    }

    #[test]
    fn bursty_arrivals_share_epochs() {
        let t = ArrivalTrace::bursty(800.0, 64, 1, 8, 3);
        assert_eq!(t.arrivals.len(), 64);
        let firsts: Vec<u64> = t.arrivals.chunks(8).map(|c| c[0].at_us).collect();
        for c in t.arrivals.chunks(8) {
            assert!(c.iter().all(|a| a.at_us == c[0].at_us));
        }
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn text_round_trip() {
        let t = ArrivalTrace::poisson(500.0, 100, 2, 11);
        let parsed = ArrivalTrace::parse(&t.to_text()).unwrap();
        assert_eq!(t, parsed);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(ArrivalTrace::parse("abc 1").is_err());
        assert!(ArrivalTrace::parse("5").is_err());
        assert!(ArrivalTrace::parse("5 0").is_err());
        assert!(ArrivalTrace::parse("5 1 9").is_err());
        assert!(ArrivalTrace::parse("9 1\n5 1").is_err());
        assert!(ArrivalTrace::parse("# ok\n\n3 1\n4 2").is_ok());
    }
}
