//! The fleet tier: one logical solve service spanning many shards.
//!
//! A single [`SolveService`](crate::SolveService) already realizes the
//! paper's Eq. 8 coalescing win on one host. The fleet layer scales the
//! same service across `S` shards (each its own worker pool, queue, and
//! registry) while keeping the client API a single `register`/`submit`
//! surface. Four mechanisms make the shards one service instead of `S`
//! disjoint ones:
//!
//! * **Partition-aware placement.** Small operators are *replicated* —
//!   registered on every shard, so any shard can serve them and the
//!   router is free to chase width. Operators too large to replicate
//!   are *sharded*: partitioned by rows
//!   ([`mrhs_sparse::partition::contiguous_partition`]), wrapped in a
//!   [`mrhs_cluster::DistEngine`] (whose node workers do the real halo
//!   exchanges), re-ordered back to client row order by
//!   [`mrhs_cluster::PermutedEngine`], and registered on one *home*
//!   shard. The decision is recorded per handle and visible via
//!   [`FleetService::placement`].
//! * **Saturation-aware routing.** The router targets the Eq. 9 width:
//!   a request joins the shard where a batch for its operator is
//!   already forming below the model-optimal width (the live
//!   `drift/m_optimal/measured` gauge overrides the static model when
//!   drift tracking is on), and otherwise lands on the least-loaded
//!   shard with a handle-hash affinity tie-break, so one tenant's
//!   columns keep meeting in the same queue and coalesce.
//! * **Work stealing.** An idle shard's worker probes the hottest
//!   sibling and lifts the batch that sibling's own worker would have
//!   dispatched next ([`SolveService`] `try_steal`/`run_stolen`). The
//!   stolen batch runs the victim's solve path end to end, so the PR 5
//!   per-column acceptance and solo-retry contract is untouched.
//! * **Admission control.** At saturation the queue-depth histograms
//!   stop being a warning and become the signal: a request whose
//!   estimated queue delay already exceeds its deadline, or that would
//!   land on a queue past the configured shed fraction, is rejected
//!   *at ingress* with the PR 5 backpressure vocabulary
//!   ([`SubmitError::QueueFull`] + `retry_after`) instead of expiring
//!   after it wasted queue space (`fleet/drop/admission`).
//!
//! Every shard mirrors its `service/…` metrics under `fleet/shard{i}/…`
//! (see [`ServiceConfig::scope`](crate::ServiceConfig)), so one scrape
//! shows per-shard families next to the fleet-level routing counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, Weak};
use std::time::Duration;

use mrhs_cluster::{DistEngine, DistributedMatrix, PermutedEngine};
use mrhs_sparse::partition::contiguous_partition;
use mrhs_sparse::{BcrsMatrix, MultiVec};
use mrhs_telemetry as telemetry;

use crate::registry::{MatrixHandle, OperatorClass};
use crate::request::{RequestOptions, SubmitError, Ticket};
use crate::server::{
    model_batch_width, model_batch_width_bicgstab, ServiceConfig, ServiceStats,
    SolveService,
};

/// Opaque key identifying an operator registered with the fleet (the
/// cluster-level analogue of [`MatrixHandle`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FleetHandle(u64);

/// Load-shedding knobs (admission control).
#[derive(Clone, Copy, Debug)]
pub struct AdmissionCfg {
    /// Reject a request whose target shard already queues at least this
    /// fraction of its column capacity. `1.0` disables pure-occupancy
    /// shedding (deadline-based shedding still applies).
    pub shed_at: f64,
}

impl Default for AdmissionCfg {
    fn default() -> Self {
        AdmissionCfg { shed_at: 0.75 }
    }
}

/// Fleet-wide configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of shards (each a full [`SolveService`]).
    pub shards: usize,
    /// Per-shard service template. The `scope` field is overwritten
    /// with `fleet/shard{i}` per shard.
    pub shard: ServiceConfig,
    /// Operators with scalar dimension `<= replicate_max_dim` are
    /// registered on every shard; larger ones are row-partitioned
    /// through a `DistEngine` and live on one home shard.
    pub replicate_max_dim: usize,
    /// Nodes backing the `DistEngine` of each sharded operator.
    pub shard_parts: usize,
    /// Minimum queued columns a sibling must hold before an idle shard
    /// steals from it. `None` disables work stealing.
    pub steal_min_cols: Option<usize>,
    /// Admission control; `None` admits everything the queue can hold.
    pub admission: Option<AdmissionCfg>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 2,
            shard: ServiceConfig::default(),
            replicate_max_dim: 4096,
            shard_parts: 4,
            steal_min_cols: Some(1),
            admission: Some(AdmissionCfg::default()),
        }
    }
}

/// Where an operator's registrations live.
#[derive(Clone, Debug)]
pub enum Placement {
    /// Registered on every shard (`handles[i]` on shard `i`); the
    /// router may send a request anywhere.
    Replicated { handles: Vec<MatrixHandle> },
    /// Row-partitioned into `parts` through a `DistEngine` and
    /// registered only on the `home` shard.
    Sharded { home: usize, parts: usize, handle: MatrixHandle },
}

/// The recorded placement decision for one fleet registration.
#[derive(Clone, Debug)]
pub struct PlacementDecision {
    /// Scalar dimension of the operator.
    pub dim: usize,
    /// Solver family (fixed at registration, uniform per batch).
    pub class: OperatorClass,
    /// Where the registrations live.
    pub placement: Placement,
}

/// Fleet-level counters next to each shard's own [`ServiceStats`].
#[derive(Clone, Debug, Default)]
pub struct FleetStats {
    /// Per-shard service counters, indexed by shard.
    pub shards: Vec<ServiceStats>,
    /// Requests routed onto a shard because a batch for their operator
    /// was already forming there below the target width.
    pub routed_join: u64,
    /// Requests routed to the least-loaded eligible shard.
    pub routed_least_loaded: u64,
    /// Requests rejected at ingress by admission control.
    pub admission_rejected: u64,
    /// Batches lifted off a hot shard by an idle sibling.
    pub steals: u64,
}

/// One logical solve service spanning `S` shards. See the module docs
/// for the placement/routing/stealing/admission design.
pub struct FleetService {
    shards: Vec<Arc<SolveService>>,
    cfg: FleetConfig,
    next: AtomicU64,
    map: RwLock<HashMap<u64, Arc<PlacementDecision>>>,
    routed_join: AtomicU64,
    routed_least_loaded: AtomicU64,
    admission_rejected: AtomicU64,
    steals: Arc<AtomicU64>,
}

impl FleetService {
    /// Starts `cfg.shards` solve services and wires the work-stealing
    /// probes between them.
    pub fn start(cfg: FleetConfig) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.shard_parts >= 1, "need at least one partition part");
        let shards: Vec<Arc<SolveService>> = (0..cfg.shards)
            .map(|i| {
                let mut sc = cfg.shard.clone();
                sc.scope = Some(format!("fleet/shard{i}"));
                Arc::new(SolveService::start(
                    crate::registry::MatrixRegistry::new(),
                    sc,
                ))
            })
            .collect();
        // Pre-register the fleet counter families at zero so the first
        // scrape publishes them (same rationale as the batcher's drop
        // counters).
        for name in [
            "fleet/route/join",
            "fleet/route/least_loaded",
            "fleet/drop/admission",
            "fleet/steals",
            "fleet/placement/replicated",
            "fleet/placement/sharded",
        ] {
            telemetry::counter_add(name, 0);
        }
        let steals = Arc::new(AtomicU64::new(0));
        let fleet = FleetService {
            shards,
            cfg,
            next: AtomicU64::new(0),
            map: RwLock::new(HashMap::new()),
            routed_join: AtomicU64::new(0),
            routed_least_loaded: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
            steals,
        };
        fleet.install_steal_hooks();
        fleet
    }

    /// Installs each shard's idle-worker probe: find the hottest
    /// sibling at or above the steal threshold, lift its head batch,
    /// and run it (on the thief's thread, through the victim's solve
    /// path). Weak references keep the hooks from cycling the shard
    /// `Arc`s, so dropping the fleet still joins the workers.
    fn install_steal_hooks(&self) {
        let Some(min_cols) = self.cfg.steal_min_cols else { return };
        if self.shards.len() < 2 {
            return;
        }
        let weak: Vec<Weak<SolveService>> =
            self.shards.iter().map(Arc::downgrade).collect();
        for (i, shard) in self.shards.iter().enumerate() {
            let siblings = weak.clone();
            let steals = self.steals.clone();
            shard.set_steal_hook(Arc::new(move || {
                let victim = siblings
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .filter_map(|(_, w)| w.upgrade())
                    .map(|s| (s.queued_columns(), s))
                    .filter(|(cols, _)| *cols >= min_cols)
                    .max_by_key(|(cols, _)| *cols);
                let Some((_, victim)) = victim else { return false };
                match victim.try_steal(min_cols) {
                    Some(batch) => {
                        steals.fetch_add(1, Ordering::Relaxed);
                        telemetry::counter_add("fleet/steals", 1);
                        victim.run_stolen(batch);
                        true
                    }
                    None => false,
                }
            }));
        }
    }

    /// The shard services (index = shard id). Exposed for benches and
    /// tests; production clients go through the fleet API.
    pub fn shards(&self) -> &[Arc<SolveService>] {
        &self.shards
    }

    /// Registers an SPD matrix fleet-wide (block-CG tenants).
    pub fn register_spd(&self, name: &str, a: BcrsMatrix) -> FleetHandle {
        self.register_with_class(name, a, OperatorClass::Spd)
    }

    /// Registers a general (nonsymmetric) matrix fleet-wide
    /// (block-BiCGStab tenants).
    pub fn register_general(&self, name: &str, a: BcrsMatrix) -> FleetHandle {
        self.register_with_class(name, a, OperatorClass::General)
    }

    fn register_with_class(
        &self,
        name: &str,
        a: BcrsMatrix,
        class: OperatorClass,
    ) -> FleetHandle {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let dim = a.n_rows();
        let placement =
            if dim <= self.cfg.replicate_max_dim {
                telemetry::counter_add("fleet/placement/replicated", 1);
                let handles = self
                    .shards
                    .iter()
                    .map(|s| match class {
                        OperatorClass::Spd => {
                            s.registry().register_full(name, a.clone())
                        }
                        OperatorClass::General => {
                            s.registry().register_general(name, a.clone())
                        }
                    })
                    .collect();
                Placement::Replicated { handles }
            } else {
                telemetry::counter_add("fleet/placement/sharded", 1);
                // Too large to replicate: row-partition through a
                // DistEngine whose node workers exchange real halo
                // messages, and wrap it so clients keep their row order.
                let parts = self.cfg.shard_parts;
                let part = contiguous_partition(&a, parts);
                let dm = DistributedMatrix::new(&a, &part);
                let engine = PermutedEngine::new(DistEngine::new(dm));
                let home = (id as usize) % self.shards.len();
                let handle = self.shards[home]
                    .registry()
                    .register_operator_with_class(name, Box::new(engine), class);
                Placement::Sharded { home, parts, handle }
            };
        let decision = Arc::new(PlacementDecision { dim, class, placement });
        self.map.write().unwrap().insert(id, decision);
        FleetHandle(id)
    }

    /// The recorded placement decision for a fleet handle.
    pub fn placement(&self, h: FleetHandle) -> Option<Arc<PlacementDecision>> {
        self.map.read().unwrap().get(&h.0).cloned()
    }

    /// The width the router tries to fill for this operator class: the
    /// Eq. 9 model width (BiCGStab variant for general tenants) when a
    /// drift model is configured, overridden by the live
    /// `drift/m_optimal/measured` gauge once batch solves have fed it,
    /// and always capped by the shard batch policy.
    fn target_width(&self, class: OperatorClass) -> usize {
        let cap = self.cfg.shard.policy.max_batch;
        let mut target = match self.cfg.shard.drift {
            Some(d) => match class {
                OperatorClass::Spd => model_batch_width(&d.gspmv, d.counts, cap),
                OperatorClass::General => model_batch_width_bicgstab(&d.gspmv, cap),
            },
            None => cap,
        };
        if let Some(measured) =
            telemetry::global().gauge_value("drift/m_optimal/measured")
        {
            if measured.is_finite() && measured >= 1.0 {
                target = (measured as usize).min(cap);
            }
        }
        target.max(1)
    }

    /// The routing decision for a request against `h`, without
    /// submitting: the chosen shard index and the shard-local handle.
    /// Sharded placements always route home; replicated ones prefer a
    /// shard where a batch for this operator is forming below the
    /// target width, then the least-loaded shard (handle-hash affinity
    /// breaking ties, so a tenant's requests keep meeting). The bool is
    /// `true` when the join rule fired.
    pub fn route_preview(
        &self,
        h: FleetHandle,
    ) -> Option<(usize, MatrixHandle, bool)> {
        let decision = self.placement(h)?;
        match &decision.placement {
            Placement::Sharded { home, handle, .. } => {
                Some((*home, *handle, false))
            }
            Placement::Replicated { handles } => {
                let target = self.target_width(decision.class);
                // Join rule: the shard with the fullest still-unfilled
                // batch for this operator.
                let join = self
                    .shards
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (i, s.pending_columns_for(handles[i])))
                    .filter(|(_, cols)| *cols > 0 && *cols < target)
                    .max_by_key(|(_, cols)| *cols);
                if let Some((i, _)) = join {
                    return Some((i, handles[i], true));
                }
                // Least-loaded rule with handle-hash affinity: start
                // the scan at the affinity shard so ties (the common
                // case on an idle fleet) keep each tenant on its own
                // shard — that per-tenant partitioning is what lets
                // batches widen instead of splintering across queues.
                let s = self.shards.len();
                let affinity = (h.0 as usize) % s;
                let (i, _) = (0..s)
                    .map(|k| (affinity + k) % s)
                    .map(|i| (i, self.shards[i].queued_columns()))
                    .min_by_key(|(_, cols)| *cols)
                    .expect("at least one shard");
                Some((i, handles[i], false))
            }
        }
    }

    /// Submits a solve request to the fleet: routes (see
    /// [`FleetService::route_preview`]), applies admission control, and
    /// enqueues on the chosen shard.
    pub fn submit(
        &self,
        h: FleetHandle,
        rhs: MultiVec,
        opts: RequestOptions,
    ) -> Result<Ticket, SubmitError> {
        let (shard_idx, handle, joined) =
            self.route_preview(h).ok_or(SubmitError::UnknownMatrix)?;
        let shard = &self.shards[shard_idx];
        self.admit(shard, &opts)?;
        let ticket = shard.submit(handle, rhs, opts)?;
        if joined {
            self.routed_join.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("fleet/route/join", 1);
        } else {
            self.routed_least_loaded.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("fleet/route/least_loaded", 1);
        }
        Ok(ticket)
    }

    /// Admission control for one request against its routed shard:
    /// sheds when the queue is past the configured occupancy fraction,
    /// or when the estimated queue delay (queued batches ahead times
    /// the shard's measured solve time) already exceeds the request's
    /// deadline — in both cases the rejection happens before the
    /// request wastes queue space it cannot convert into a solve.
    ///
    /// "Batches ahead" divides the queued columns by the width this
    /// shard has *actually achieved* (its lifetime mean), not the
    /// configured maximum: under heavy tenant mixing batches go out
    /// narrow, and assuming full-width batches would undercount the
    /// queue delay several-fold and admit requests that can only
    /// expire.
    fn admit(
        &self,
        shard: &SolveService,
        opts: &RequestOptions,
    ) -> Result<(), SubmitError> {
        let Some(adm) = self.cfg.admission else { return Ok(()) };
        let queued = shard.queued_columns();
        let est = shard.solve_estimate();
        let stats = shard.stats();
        let mean_width = if stats.batches > 0 {
            (stats.coalesced_columns as f64 / stats.batches as f64).max(1.0)
        } else {
            self.cfg.shard.policy.max_batch.max(1) as f64
        };
        let batches_ahead = (queued as f64 / mean_width).ceil() as u32;
        let est_wait = est.checked_mul(batches_ahead).unwrap_or(Duration::MAX);
        let shed_occupancy =
            (queued as f64) >= adm.shed_at * shard.queue_capacity() as f64;
        let shed_deadline = matches!(opts.deadline, Some(d) if est_wait > d);
        if shed_occupancy || shed_deadline {
            self.admission_rejected.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("fleet/drop/admission", 1);
            return Err(SubmitError::QueueFull { retry_after: est_wait.max(est) });
        }
        Ok(())
    }

    /// Unregisters a fleet handle on every shard holding it. Queued
    /// requests fail with
    /// [`SolveError::MatrixUnregistered`](crate::SolveError); dispatched
    /// batches run to completion (the single-shard contract, applied
    /// per shard).
    pub fn unregister(&self, h: FleetHandle) -> bool {
        let Some(decision) = self.map.write().unwrap().remove(&h.0) else {
            return false;
        };
        match &decision.placement {
            Placement::Replicated { handles } => {
                for (shard, &mh) in self.shards.iter().zip(handles) {
                    shard.unregister(mh);
                }
            }
            Placement::Sharded { home, handle, .. } => {
                self.shards[*home].unregister(*handle);
            }
        }
        true
    }

    /// Fleet-level counters plus each shard's service counters.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            shards: self.shards.iter().map(|s| s.stats()).collect(),
            routed_join: self.routed_join.load(Ordering::Relaxed),
            routed_least_loaded: self.routed_least_loaded.load(Ordering::Relaxed),
            admission_rejected: self.admission_rejected.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }

    /// Stops every shard: no new submits, queues drained, workers
    /// joined. Propagates worker panics.
    pub fn shutdown(&self) {
        for s in &self.shards {
            s.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::{Block3, BlockTripletBuilder};

    fn laplacian(nb: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(4.0));
            if i + 1 < nb {
                t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
            }
        }
        t.build()
    }

    fn rhs_for(n: usize, seed: usize) -> MultiVec {
        let mut mv = MultiVec::zeros(n, 1);
        let col: Vec<f64> =
            (0..n).map(|i| ((i + seed) as f64 * 0.37).sin() + 1.5).collect();
        mv.set_column(0, &col);
        mv
    }

    fn fleet(shards: usize, replicate_max_dim: usize) -> FleetService {
        FleetService::start(FleetConfig {
            shards,
            replicate_max_dim,
            shard_parts: 2,
            steal_min_cols: Some(1),
            admission: Some(AdmissionCfg { shed_at: 1.0 }),
            ..FleetConfig::default()
        })
    }

    #[test]
    fn small_operators_replicate_to_every_shard() {
        let f = fleet(3, 4096);
        let h = f.register_spd("lap", laplacian(8));
        let d = f.placement(h).unwrap();
        match &d.placement {
            Placement::Replicated { handles } => assert_eq!(handles.len(), 3),
            other => panic!("expected replication, got {other:?}"),
        }
        // Every shard can solve it.
        let n = d.dim;
        let t = f.submit(h, rhs_for(n, 0), RequestOptions::default()).unwrap();
        let out = t.wait().unwrap();
        assert!(out.solution.as_slice().iter().all(|v| v.is_finite()));
        f.shutdown();
    }

    #[test]
    fn large_operators_shard_through_the_dist_engine() {
        let f = fleet(2, 10);
        let a = laplacian(12); // dim 36 > 10 → sharded
        let serial = a.clone();
        let h = f.register_spd("big", a);
        let d = f.placement(h).unwrap();
        let home = match &d.placement {
            Placement::Sharded { home, parts, .. } => {
                assert_eq!(*parts, 2);
                *home
            }
            other => panic!("expected sharding, got {other:?}"),
        };
        assert!(home < 2);
        let rhs = rhs_for(d.dim, 1);
        let b = rhs.column(0);
        let t = f.submit(h, rhs, RequestOptions::default()).unwrap();
        let out = t.wait().unwrap();
        // The sharded solve must agree with a serial solve in the
        // client's row ordering (PermutedEngine restores it).
        let mut x = vec![0.0; d.dim];
        let r = mrhs_solvers::cg(
            &serial,
            &b,
            &mut x,
            &mrhs_solvers::SolveConfig { tol: 1e-10, max_iter: 500 },
        );
        assert!(r.converged);
        for (got, want) in out.solution.column(0).iter().zip(&x) {
            assert!(
                (got - want).abs() <= 1e-6 * want.abs().max(1.0),
                "sharded solve diverged from serial: {got} vs {want}"
            );
        }
        f.shutdown();
    }

    #[test]
    fn router_joins_forming_batches() {
        // Long linger so the first request is still queued when the
        // second routes: the join rule must pick the same shard.
        let mut cfg = FleetConfig {
            shards: 2,
            replicate_max_dim: 4096,
            steal_min_cols: None,
            admission: None,
            ..FleetConfig::default()
        };
        cfg.shard.policy.linger = Duration::from_millis(200);
        cfg.shard.policy.max_batch = 8;
        let f = FleetService::start(cfg);
        let h = f.register_spd("lap", laplacian(6));
        let n = f.placement(h).unwrap().dim;
        let t1 = f.submit(h, rhs_for(n, 0), RequestOptions::default()).unwrap();
        // Route the second request while the first lingers.
        let (_, _, joined) = f.route_preview(h).unwrap();
        let t2 = f.submit(h, rhs_for(n, 1), RequestOptions::default()).unwrap();
        let (o1, o2) = (t1.wait().unwrap(), t2.wait().unwrap());
        assert!(joined, "second request must join the forming batch");
        assert!(o1.batch_width >= 1 && o2.batch_width >= 1);
        assert_eq!(f.stats().routed_join, 1);
        f.shutdown();
    }

    #[test]
    fn admission_control_sheds_at_occupancy() {
        let mut cfg = FleetConfig {
            shards: 1,
            replicate_max_dim: 4096,
            steal_min_cols: None,
            admission: Some(AdmissionCfg { shed_at: 0.0 }),
            ..FleetConfig::default()
        };
        cfg.shard.policy.linger = Duration::from_millis(100);
        let f = FleetService::start(cfg);
        let h = f.register_spd("lap", laplacian(4));
        let n = f.placement(h).unwrap().dim;
        // shed_at = 0: everything is shed, with the QueueFull shape.
        match f.submit(h, rhs_for(n, 0), RequestOptions::default()) {
            Err(SubmitError::QueueFull { .. }) => {}
            other => panic!("expected admission shed, got {other:?}"),
        }
        assert_eq!(f.stats().admission_rejected, 1);
        f.shutdown();
    }

    #[test]
    fn idle_shard_steals_from_hot_sibling() {
        // Shard 0 gets a deep single-tenant backlog (long linger keeps
        // it queued); shard 1 is idle and must lift batches off it.
        let mut cfg = FleetConfig {
            shards: 2,
            replicate_max_dim: 4096,
            steal_min_cols: Some(1),
            admission: None,
            ..FleetConfig::default()
        };
        cfg.shard.policy.linger = Duration::from_millis(50);
        cfg.shard.policy.max_batch = 2;
        cfg.shard.policy.queue_capacity = 64;
        let f = FleetService::start(cfg);
        let h = f.register_spd("lap", laplacian(6));
        let n = f.placement(h).unwrap().dim;
        let tickets: Vec<Ticket> = (0..12)
            .map(|k| f.submit(h, rhs_for(n, k), RequestOptions::default()).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let st = f.stats();
        let total: u64 = st.shards.iter().map(|s| s.completed).sum();
        assert_eq!(total, 12, "every request completes exactly once");
        // With affinity routing all 12 land on one shard; the idle
        // sibling has 50ms-linger windows to steal. Stealing is timing
        // dependent, so only assert consistency: fleet steals == the
        // victims' stolen-batch counters.
        let stolen: u64 = st.shards.iter().map(|s| s.stolen_batches).sum();
        assert_eq!(st.steals, stolen);
        f.shutdown();
    }
}
