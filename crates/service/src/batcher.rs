//! Bounded pending-request queue and the coalescing dispatch policy.
//!
//! The policy balances the two costs in the paper's Eq. 8 trade-off:
//! dispatching too narrow wastes the amortized matrix stream (each
//! block iteration streams the matrix once for *all* pending columns),
//! while waiting too long to fill a batch adds queueing latency. A
//! batch for the head request's matrix is dispatched when
//!
//! * the pending width for that matrix reaches `max_batch` (the
//!   configured `m_s` target), or
//! * the head request has lingered for `linger`, or
//! * the head request's deadline minus the current solve-time estimate
//!   is due (draining a partial batch beats expiring it), or
//! * the service is shutting down (`flush`).
//!
//! Requests whose deadline passes while still queued are expired
//! without being solved. The queue is bounded in *columns* (the unit
//! that costs memory bandwidth), and `try_push` rejects when full so
//! the server can push back instead of buffering unboundedly.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::registry::{MatrixHandle, PreparedMatrix};
use crate::request::Completion;
use mrhs_sparse::MultiVec;
use mrhs_telemetry as telemetry;
use mrhs_telemetry::trace::{SpanId, TraceId};

/// Dispatch-policy knobs (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Target coalesced width — clamp of `perfmodel::m_optimal` to the
    /// bandwidth→compute switch point `m_s`.
    pub max_batch: usize,
    /// Queue bound, in columns.
    pub queue_capacity: usize,
    /// How long the oldest pending request may wait for batchmates.
    pub linger: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            queue_capacity: 64,
            linger: Duration::from_millis(2),
        }
    }
}

/// Trace identity minted for a request at service ingress: the trace,
/// its root span (emitted retroactively when the request completes),
/// and the ingress timestamp on the trace clock.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RequestTrace {
    pub trace: TraceId,
    pub root: SpanId,
    pub ingress_ns: u64,
}

/// A queued request.
pub(crate) struct Pending {
    pub matrix: Arc<PreparedMatrix>,
    pub handle: MatrixHandle,
    pub rhs: MultiVec,
    pub tol: f64,
    pub enqueued: Instant,
    pub deadline: Option<Instant>,
    pub completion: Arc<Completion>,
    /// `Some` when causal tracing was on at submit.
    pub trace: Option<RequestTrace>,
}

impl Pending {
    pub(crate) fn width(&self) -> usize {
        self.rhs.m()
    }
}

/// Why a batch was dispatched when it was — the batcher decision the
/// request's span tree records (`joined_batch` link payload) and the
/// per-cause `service/dispatch/{cause}` counters count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchCause {
    /// Pending width for the head's matrix reached `max_batch`.
    Full,
    /// The head request lingered its full `linger` budget.
    Linger,
    /// The head's deadline minus the solve estimate came due.
    DeadlinePressure,
    /// Shutdown drain forced the partial batch out.
    Flush,
    /// A sibling shard's idle worker stole the batch from a hot queue
    /// (fleet work stealing). The batch still runs the victim shard's
    /// solve path, so acceptance/solo-retry semantics are unchanged.
    Stolen,
}

impl DispatchCause {
    /// Stable lowercase name (metric suffix / dump field).
    pub fn as_str(self) -> &'static str {
        match self {
            DispatchCause::Full => "full",
            DispatchCause::Linger => "linger",
            DispatchCause::DeadlinePressure => "deadline_pressure",
            DispatchCause::Flush => "flush",
            DispatchCause::Stolen => "stolen",
        }
    }

    /// Small stable code for packing into trace-event payloads.
    pub fn code(self) -> u64 {
        match self {
            DispatchCause::Full => 0,
            DispatchCause::Linger => 1,
            DispatchCause::DeadlinePressure => 2,
            DispatchCause::Flush => 3,
            DispatchCause::Stolen => 4,
        }
    }
}

/// Outcome of one dispatch poll.
pub(crate) enum Poll {
    /// A batch to solve now (all entries share one matrix handle),
    /// tagged with why it went out now.
    Batch(Vec<Pending>, DispatchCause),
    /// Nothing ready; next trigger at the given instant.
    Wait(Instant),
    /// Queue is empty.
    Empty,
}

/// Requests dropped without being solved, by cause: queue expiry
/// (`deadline_missed` — mirrored to both `service/deadline_missed` and
/// `service/drop/expiry` in the registry, since the former is the
/// SLO-facing name), `try_push` rejection (`backpressure`), submits
/// refused while shutting down (`shutdown`), and queued requests whose
/// matrix was unregistered before dispatch (`unregistered`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DropStats {
    /// Requests expired in queue (deadline missed).
    pub deadline_missed: u64,
    /// Requests rejected because the column bound was full.
    pub backpressure: u64,
    /// Requests refused during shutdown.
    pub shutdown: u64,
    /// Queued requests swept after their matrix was unregistered.
    pub unregistered: u64,
}

/// The bounded queue plus the dispatch policy. Not thread-safe by
/// itself — the server wraps it in a mutex/condvar pair.
pub(crate) struct Batcher {
    policy: BatchPolicy,
    queue: VecDeque<Pending>,
    columns: usize,
    drops: DropStats,
    /// Extra metric prefix (e.g. `fleet/shard0`): every `service/…`
    /// counter the batcher emits is mirrored under it, so a fleet
    /// dashboard sees per-shard families while single-host names stay
    /// stable.
    scope: Option<String>,
}

impl Batcher {
    pub(crate) fn new(policy: BatchPolicy, scope: Option<String>) -> Self {
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        assert!(
            policy.queue_capacity >= policy.max_batch,
            "queue must hold at least one full batch"
        );
        let b = Batcher {
            policy,
            queue: VecDeque::new(),
            columns: 0,
            drops: DropStats::default(),
            scope,
        };
        // Pre-register the drop counters at zero so the metrics
        // exporter publishes them from the first scrape — a dashboard
        // watching for the first drop needs the zero baseline, not a
        // metric that appears out of nowhere.
        for name in [
            "deadline_missed",
            "drop/expiry",
            "drop/backpressure",
            "drop/shutdown",
            "drop/unregistered",
        ] {
            b.counter(name, 0);
        }
        b
    }

    /// Emits `service/{suffix}`, mirrored under the per-shard scope
    /// when one is set.
    fn counter(&self, suffix: &str, v: u64) {
        telemetry::counter_add(&format!("service/{suffix}"), v);
        if let Some(s) = &self.scope {
            telemetry::counter_add(&format!("{s}/{suffix}"), v);
        }
    }

    /// Queued columns (the bounded resource).
    pub(crate) fn columns(&self) -> usize {
        self.columns
    }

    /// Drop counters so far (also mirrored into the telemetry registry
    /// as `service/deadline_missed` and `service/drop/{cause}`).
    pub(crate) fn drop_stats(&self) -> DropStats {
        self.drops
    }

    /// Counts one backpressure rejection (the server calls this when
    /// [`Batcher::try_push`] hands the request back).
    pub(crate) fn note_backpressure_drop(&mut self) {
        self.drops.backpressure += 1;
        self.counter("drop/backpressure", 1);
    }

    /// Counts one submit refused during shutdown.
    pub(crate) fn note_shutdown_drop(&mut self) {
        self.drops.shutdown += 1;
        self.counter("drop/shutdown", 1);
    }

    /// Queued requests.
    pub(crate) fn len(&self) -> usize {
        self.queue.len()
    }

    /// Queued columns waiting for one specific handle — the fleet
    /// router's "is a batch forming here?" probe.
    pub(crate) fn pending_columns_for(&self, h: MatrixHandle) -> usize {
        self.queue.iter().filter(|p| p.handle == h).map(Pending::width).sum()
    }

    /// Accepts a request, or hands it back when the column bound would
    /// be exceeded.
    // Handing the whole `Pending` back on rejection is the point of
    // the API (the server completes it with `Rejected`); it is one
    // move on a cold path, not worth a heap box on every accept.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&mut self, p: Pending) -> Result<(), Pending> {
        let w = p.width();
        if self.columns + w > self.policy.queue_capacity {
            return Err(p);
        }
        self.columns += w;
        self.queue.push_back(p);
        Ok(())
    }

    /// Moves requests whose deadline has passed into `expired`.
    fn expire(&mut self, now: Instant, expired: &mut Vec<Pending>) {
        let mut i = 0;
        while i < self.queue.len() {
            match self.queue[i].deadline {
                Some(d) if now >= d => {
                    let p = self.queue.remove(i).unwrap();
                    self.columns -= p.width();
                    self.drops.deadline_missed += 1;
                    self.counter("deadline_missed", 1);
                    self.counter("drop/expiry", 1);
                    expired.push(p);
                }
                _ => i += 1,
            }
        }
    }

    /// Moves queued requests whose matrix was unregistered into
    /// `revoked` — the clean-fail half of the `unregister` contract
    /// (the worker completes them with `MatrixUnregistered`; batches
    /// already dispatched are unaffected).
    fn sweep_revoked(&mut self, revoked: &mut Vec<Pending>) {
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].matrix.is_revoked() {
                let p = self.queue.remove(i).unwrap();
                self.columns -= p.width();
                self.drops.unregistered += 1;
                self.counter("drop/unregistered", 1);
                revoked.push(p);
            } else {
                i += 1;
            }
        }
    }

    /// The instant at which the head request stops waiting for
    /// batchmates: its linger expiry, pulled earlier when its deadline
    /// (minus the current solve-time estimate) is closer — the returned
    /// cause says which of the two set the trigger. The margin floor
    /// keeps the drain trigger strictly before the deadline even while
    /// the solve estimate is still zero — otherwise the wakeup that
    /// should dispatch the request lands exactly on the deadline and
    /// expires it instead.
    fn head_trigger(
        &self,
        head: &Pending,
        solve_est: Duration,
    ) -> (Instant, DispatchCause) {
        const DRAIN_MARGIN: Duration = Duration::from_millis(5);
        let linger = head.enqueued + self.policy.linger;
        if let Some(d) = head.deadline {
            let margin = solve_est.max(DRAIN_MARGIN);
            let drain = d.checked_sub(margin).unwrap_or(head.enqueued);
            if drain < linger {
                return (drain, DispatchCause::DeadlinePressure);
            }
        }
        (linger, DispatchCause::Linger)
    }

    /// One dispatch decision. `flush` forces partial batches out
    /// (shutdown drain); `solve_est` is the server's running estimate
    /// of one batch solve, used to drain deadline-pressed batches early
    /// enough to still meet the deadline. Requests dropped without
    /// solving land in `expired` (deadline passed) or `revoked` (matrix
    /// unregistered) for the worker to complete with the matching error.
    pub(crate) fn poll(
        &mut self,
        now: Instant,
        flush: bool,
        solve_est: Duration,
        expired: &mut Vec<Pending>,
        revoked: &mut Vec<Pending>,
    ) -> Poll {
        self.expire(now, expired);
        self.sweep_revoked(revoked);
        let head = match self.queue.front() {
            Some(h) => h,
            None => return Poll::Empty,
        };

        let pending_width: usize = self
            .queue
            .iter()
            .filter(|p| p.handle == head.handle)
            .map(Pending::width)
            .sum();
        let (trigger, trigger_cause) = self.head_trigger(head, solve_est);
        let cause = if pending_width >= self.policy.max_batch {
            DispatchCause::Full
        } else if flush {
            DispatchCause::Flush
        } else if now >= trigger {
            trigger_cause
        } else {
            // Wake early enough to expire any queued deadline, too.
            let wake = self
                .queue
                .iter()
                .filter_map(|p| p.deadline)
                .fold(trigger, Instant::min);
            return Poll::Wait(wake);
        };

        let picked = self.select_from_head();
        self.counter(&format!("dispatch/{}", cause.as_str()), 1);
        Poll::Batch(picked, cause)
    }

    /// Force-dispatches the head batch regardless of linger/deadline
    /// triggers — the fleet work-stealing entry point. The same
    /// expiry/revocation sweeps and the same FIFO same-handle selection
    /// as [`Batcher::poll`] apply, so a stolen batch is exactly the
    /// batch the victim's own worker would have dispatched next.
    pub(crate) fn steal_batch(
        &mut self,
        now: Instant,
        expired: &mut Vec<Pending>,
        revoked: &mut Vec<Pending>,
    ) -> Option<Vec<Pending>> {
        self.expire(now, expired);
        self.sweep_revoked(revoked);
        self.queue.front()?;
        let picked = self.select_from_head();
        self.counter(&format!("dispatch/{}", DispatchCause::Stolen.as_str()), 1);
        Some(picked)
    }

    /// Selects FIFO among requests sharing the head's handle. The head
    /// always goes (even if wider than max_batch — it is solved as its
    /// own batch); later requests join while they fit.
    fn select_from_head(&mut self) -> Vec<Pending> {
        let handle = self.queue.front().expect("non-empty queue").handle;
        let mut picked = Vec::new();
        let mut width = 0usize;
        let mut i = 0;
        while i < self.queue.len() {
            let p = &self.queue[i];
            let fits = width + p.width() <= self.policy.max_batch;
            if p.handle == handle && (picked.is_empty() || fits) {
                let p = self.queue.remove(i).unwrap();
                width += p.width();
                self.columns -= p.width();
                picked.push(p);
                if width >= self.policy.max_batch {
                    break;
                }
            } else {
                i += 1;
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MatrixRegistry;
    use mrhs_sparse::{Block3, BlockTripletBuilder};

    fn registry_with(n: usize) -> (MatrixRegistry, Vec<MatrixHandle>) {
        let reg = MatrixRegistry::new();
        let mut handles = Vec::new();
        for k in 0..n {
            let mut t = BlockTripletBuilder::square(2);
            t.add(0, 0, Block3::scaled_identity(3.0 + k as f64));
            t.add(1, 1, Block3::scaled_identity(3.0 + k as f64));
            handles.push(reg.register_full(&format!("m{k}"), t.build()));
        }
        (reg, handles)
    }

    fn pending(
        reg: &MatrixRegistry,
        h: MatrixHandle,
        width: usize,
        at: Instant,
        deadline: Option<Duration>,
    ) -> Pending {
        let m = reg.get(h).unwrap();
        Pending {
            rhs: MultiVec::zeros(m.dim(), width),
            matrix: m,
            handle: h,
            tol: 1e-6,
            enqueued: at,
            deadline: deadline.map(|d| at + d),
            completion: Arc::new(Completion::new()),
            trace: None,
        }
    }

    fn policy(max_batch: usize, cap: usize, linger_ms: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            queue_capacity: cap,
            linger: Duration::from_millis(linger_ms),
        }
    }

    #[test]
    fn fills_to_max_batch_and_dispatches_immediately() {
        let (reg, hs) = registry_with(1);
        let mut b = Batcher::new(policy(4, 16, 1000), None);
        let t0 = Instant::now();
        for _ in 0..5 {
            b.try_push(pending(&reg, hs[0], 1, t0, None)).ok().unwrap();
        }
        let mut exp = Vec::new();
        let mut rev = Vec::new();
        match b.poll(t0, false, Duration::ZERO, &mut exp, &mut rev) {
            Poll::Batch(batch, cause) => {
                assert_eq!(batch.len(), 4, "coalesces to max_batch");
                assert_eq!(cause, DispatchCause::Full);
            }
            _ => panic!("expected a full batch"),
        }
        assert_eq!(b.len(), 1, "fifth request stays queued");
        assert!(exp.is_empty());
    }

    #[test]
    fn partial_batch_waits_for_linger_then_drains() {
        let (reg, hs) = registry_with(1);
        let mut b = Batcher::new(policy(8, 16, 10), None);
        let t0 = Instant::now();
        b.try_push(pending(&reg, hs[0], 2, t0, None)).ok().unwrap();
        let mut exp = Vec::new();
        let mut rev = Vec::new();
        match b.poll(t0, false, Duration::ZERO, &mut exp, &mut rev) {
            Poll::Wait(until) => {
                assert_eq!(until, t0 + Duration::from_millis(10));
            }
            _ => panic!("partial batch must linger"),
        }
        match b.poll(
            t0 + Duration::from_millis(11),
            false,
            Duration::ZERO,
            &mut exp,
            &mut rev,
        ) {
            Poll::Batch(batch, cause) => {
                assert_eq!(batch.len(), 1);
                assert_eq!(cause, DispatchCause::Linger);
            }
            _ => panic!("linger expiry must drain the partial batch"),
        }
    }

    #[test]
    fn flush_drains_partial_batches_without_linger() {
        let (reg, hs) = registry_with(1);
        let mut b = Batcher::new(policy(8, 16, 10_000), None);
        let t0 = Instant::now();
        b.try_push(pending(&reg, hs[0], 1, t0, None)).ok().unwrap();
        let mut exp = Vec::new();
        let mut rev = Vec::new();
        match b.poll(t0, true, Duration::ZERO, &mut exp, &mut rev) {
            Poll::Batch(batch, cause) => {
                assert_eq!(batch.len(), 1);
                assert_eq!(cause, DispatchCause::Flush);
            }
            _ => panic!("flush must dispatch immediately"),
        }
    }

    #[test]
    fn batches_never_mix_matrix_handles() {
        let (reg, hs) = registry_with(2);
        let mut b = Batcher::new(policy(4, 16, 0), None);
        let t0 = Instant::now();
        b.try_push(pending(&reg, hs[0], 1, t0, None)).ok().unwrap();
        b.try_push(pending(&reg, hs[1], 1, t0, None)).ok().unwrap();
        b.try_push(pending(&reg, hs[0], 1, t0, None)).ok().unwrap();
        let mut exp = Vec::new();
        let mut rev = Vec::new();
        match b.poll(t0, false, Duration::ZERO, &mut exp, &mut rev) {
            Poll::Batch(batch, _) => {
                assert_eq!(batch.len(), 2);
                assert!(batch.iter().all(|p| p.handle == hs[0]));
            }
            _ => panic!("expected a batch"),
        }
        match b.poll(t0, false, Duration::ZERO, &mut exp, &mut rev) {
            Poll::Batch(batch, _) => {
                assert_eq!(batch.len(), 1);
                assert_eq!(batch[0].handle, hs[1]);
            }
            _ => panic!("expected the other matrix's batch"),
        }
    }

    #[test]
    fn expired_deadlines_are_removed_not_solved() {
        let (reg, hs) = registry_with(1);
        let mut b = Batcher::new(policy(4, 16, 10_000), None);
        let t0 = Instant::now();
        b.try_push(pending(&reg, hs[0], 1, t0, Some(Duration::ZERO))).ok().unwrap();
        b.try_push(pending(&reg, hs[0], 1, t0, None)).ok().unwrap();
        let mut exp = Vec::new();
        let mut rev = Vec::new();
        let r = b.poll(
            t0 + Duration::from_millis(1),
            false,
            Duration::ZERO,
            &mut exp,
            &mut rev,
        );
        assert_eq!(exp.len(), 1, "zero deadline expires in queue");
        assert!(matches!(r, Poll::Wait(_)));
        assert_eq!(b.len(), 1);
        assert_eq!(b.columns(), 1);
    }

    #[test]
    fn deadline_pressure_drains_before_linger() {
        let (reg, hs) = registry_with(1);
        let mut b = Batcher::new(policy(8, 16, 10_000), None);
        let t0 = Instant::now();
        // Deadline 20ms out, solves take ~5ms: must dispatch by ~15ms,
        // long before the 10s linger.
        b.try_push(pending(&reg, hs[0], 1, t0, Some(Duration::from_millis(20))))
            .ok()
            .unwrap();
        let mut exp = Vec::new();
        let mut rev = Vec::new();
        let est = Duration::from_millis(5);
        match b.poll(t0, false, est, &mut exp, &mut rev) {
            Poll::Wait(until) => {
                assert_eq!(until, t0 + Duration::from_millis(15));
            }
            _ => panic!("should wait until deadline pressure"),
        }
        match b.poll(t0 + Duration::from_millis(16), false, est, &mut exp, &mut rev)
        {
            Poll::Batch(batch, cause) => {
                assert_eq!(batch.len(), 1);
                assert_eq!(cause, DispatchCause::DeadlinePressure);
            }
            _ => panic!("deadline pressure must dispatch"),
        }
        assert!(exp.is_empty(), "drained, not expired");
    }

    #[test]
    fn drain_trigger_on_deadline_dispatches_instead_of_expiring() {
        // Regression: with a zero solve estimate the drain trigger used
        // to land exactly on the deadline, and since `poll` expires
        // before it dispatches, the wakeup that was scheduled to drain
        // the request expired it instead. The `DRAIN_MARGIN` floor must
        // keep the trigger strictly before the deadline and the poll at
        // that trigger must produce a batch, not an expiry.
        let (reg, hs) = registry_with(1);
        let mut b = Batcher::new(policy(8, 16, 10_000), None);
        let t0 = Instant::now();
        let deadline = Duration::from_millis(20);
        b.try_push(pending(&reg, hs[0], 1, t0, Some(deadline))).ok().unwrap();

        let mut exp = Vec::new();
        let mut rev = Vec::new();
        let wake = match b.poll(t0, false, Duration::ZERO, &mut exp, &mut rev) {
            Poll::Wait(until) => until,
            _ => panic!("should wait for deadline pressure"),
        };
        assert!(
            wake < t0 + deadline,
            "drain wakeup must be strictly before the deadline"
        );

        // Poll exactly at the scheduled wakeup — the boundary case.
        match b.poll(wake, false, Duration::ZERO, &mut exp, &mut rev) {
            Poll::Batch(batch, _) => assert_eq!(batch.len(), 1),
            Poll::Wait(_) => panic!("wakeup at the trigger must dispatch"),
            Poll::Empty => panic!("request expired at its own drain trigger"),
        }
        assert!(exp.is_empty(), "dispatched, not expired");
    }

    #[test]
    fn try_push_bounds_queued_columns() {
        let (reg, hs) = registry_with(1);
        let mut b = Batcher::new(policy(4, 4, 0), None);
        let t0 = Instant::now();
        for _ in 0..4 {
            b.try_push(pending(&reg, hs[0], 1, t0, None)).ok().unwrap();
        }
        let back = b.try_push(pending(&reg, hs[0], 1, t0, None));
        assert!(back.is_err(), "fifth column must be rejected");
        assert_eq!(b.columns(), 4);
    }

    #[test]
    fn oversized_request_dispatches_as_its_own_batch() {
        let (reg, hs) = registry_with(1);
        let mut b = Batcher::new(policy(4, 16, 0), None);
        let t0 = Instant::now();
        b.try_push(pending(&reg, hs[0], 6, t0, None)).ok().unwrap();
        b.try_push(pending(&reg, hs[0], 1, t0, None)).ok().unwrap();
        let mut exp = Vec::new();
        let mut rev = Vec::new();
        match b.poll(t0, false, Duration::ZERO, &mut exp, &mut rev) {
            Poll::Batch(batch, _) => {
                assert_eq!(batch.len(), 1);
                assert_eq!(batch[0].width(), 6);
            }
            _ => panic!("expected the wide request alone"),
        }
    }
}
