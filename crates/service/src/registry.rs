//! Registry of prepared operators shared by all service clients.
//!
//! Clients register a matrix once (paying any preparation cost such as
//! the symmetric-storage conversion up front) and then submit solve
//! requests against the returned [`MatrixHandle`]. The registry is the
//! unit of sharing that makes coalescing possible: only requests
//! against the *same* handle can ride in the same block solve.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use mrhs_solvers::LinearOperator;
use mrhs_sparse::{BcrsMatrix, SymmetricBcrs};

/// Opaque key identifying a registered matrix. Handles are never
/// reused, so a stale handle fails cleanly instead of aliasing a newer
/// registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatrixHandle(u64);

/// How a registered matrix is stored and applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageKind {
    /// Full BCRS storage.
    Full,
    /// Symmetric (upper-triangle) storage.
    Symmetric,
    /// An opaque boxed operator (e.g. a cluster `DistEngine`).
    Operator,
}

/// Which solver family a registered operator admits. Batches never mix
/// matrix handles, so the class is uniform per batch and the worker
/// dispatches on it: block CG for [`OperatorClass::Spd`], block
/// BiCGStab for [`OperatorClass::General`]. This replaces the old
/// implicit everything-is-SPD assumption with a typed tag fixed at
/// registration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OperatorClass {
    /// Symmetric positive definite: served with block CG.
    #[default]
    Spd,
    /// General (nonsymmetric or indefinite): served with block
    /// BiCGStab.
    General,
}

/// A matrix prepared for serving: the operator plus the metadata the
/// batcher needs to validate and group requests.
pub struct PreparedMatrix {
    name: String,
    kind: StorageKind,
    class: OperatorClass,
    dim: usize,
    /// Set by [`MatrixRegistry::unregister`]. Queued requests holding
    /// this `Arc` are swept by the batcher and failed with
    /// [`crate::SolveError::MatrixUnregistered`]; batches already
    /// dispatched run to completion.
    revoked: AtomicBool,
    op: Box<dyn LinearOperator + Send + Sync>,
}

impl PreparedMatrix {
    /// Human-readable name given at registration.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Storage backing this matrix.
    pub fn kind(&self) -> StorageKind {
        self.kind
    }

    /// Solver family this operator is served with.
    pub fn class(&self) -> OperatorClass {
        self.class
    }

    /// Scalar dimension (rows of any right-hand side).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The operator the block solver applies once per iteration.
    pub fn operator(&self) -> &(dyn LinearOperator + Send + Sync) {
        &*self.op
    }

    /// Whether this registration has been revoked by
    /// [`MatrixRegistry::unregister`].
    pub fn is_revoked(&self) -> bool {
        self.revoked.load(Ordering::SeqCst)
    }
}

/// Thread-safe map from [`MatrixHandle`] to [`PreparedMatrix`].
#[derive(Default)]
pub struct MatrixRegistry {
    next: AtomicU64,
    map: RwLock<HashMap<u64, Arc<PreparedMatrix>>>,
}

impl MatrixRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(
        &self,
        name: &str,
        kind: StorageKind,
        class: OperatorClass,
        dim: usize,
        op: Box<dyn LinearOperator + Send + Sync>,
    ) -> MatrixHandle {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let prepared = Arc::new(PreparedMatrix {
            name: name.to_string(),
            kind,
            class,
            dim,
            revoked: AtomicBool::new(false),
            op,
        });
        self.map.write().unwrap().insert(id, prepared);
        MatrixHandle(id)
    }

    /// Registers a full-storage BCRS matrix, served with block CG (the
    /// caller asserts SPD). Use [`MatrixRegistry::register_general`]
    /// for nonsymmetric operators.
    pub fn register_full(&self, name: &str, a: BcrsMatrix) -> MatrixHandle {
        let dim = a.n_rows();
        self.insert(name, StorageKind::Full, OperatorClass::Spd, dim, Box::new(a))
    }

    /// Registers a general (nonsymmetric) full-storage matrix, served
    /// with block BiCGStab.
    pub fn register_general(&self, name: &str, a: BcrsMatrix) -> MatrixHandle {
        let dim = a.n_rows();
        self.insert(
            name,
            StorageKind::Full,
            OperatorClass::General,
            dim,
            Box::new(a),
        )
    }

    /// Registers a symmetric-storage matrix (SPD by construction of the
    /// storage format).
    pub fn register_symmetric(&self, name: &str, s: SymmetricBcrs) -> MatrixHandle {
        let dim = s.n_rows();
        self.insert(
            name,
            StorageKind::Symmetric,
            OperatorClass::Spd,
            dim,
            Box::new(s),
        )
    }

    /// Registers a full matrix, converting to symmetric storage when the
    /// matrix is symmetric within `sym_tol` (halving the bytes streamed
    /// per block iteration — the paper's §IV-C win — at zero cost to
    /// callers). A matrix that fails the symmetry check is genuinely
    /// nonsymmetric, so the fallback registers it as
    /// [`OperatorClass::General`] and it is served with block BiCGStab
    /// — the old fallback kept full storage but still ran CG on it,
    /// which silently diverges on nonsymmetric operators.
    pub fn register_auto(
        &self,
        name: &str,
        a: BcrsMatrix,
        sym_tol: f64,
    ) -> (MatrixHandle, StorageKind) {
        match SymmetricBcrs::from_full(&a, sym_tol) {
            Some(s) => (self.register_symmetric(name, s), StorageKind::Symmetric),
            None => (self.register_general(name, a), StorageKind::Full),
        }
    }

    /// Registers an arbitrary prepared operator — the escape hatch for
    /// distributed backends (`mrhs_cluster::DistEngine` implements
    /// `LinearOperator` and is `Send + Sync`). Assumed SPD; use
    /// [`MatrixRegistry::register_operator_with_class`] to say
    /// otherwise.
    pub fn register_operator(
        &self,
        name: &str,
        op: Box<dyn LinearOperator + Send + Sync>,
    ) -> MatrixHandle {
        self.register_operator_with_class(name, op, OperatorClass::Spd)
    }

    /// [`MatrixRegistry::register_operator`] with an explicit solver
    /// class.
    pub fn register_operator_with_class(
        &self,
        name: &str,
        op: Box<dyn LinearOperator + Send + Sync>,
        class: OperatorClass,
    ) -> MatrixHandle {
        let dim = op.dim();
        self.insert(name, StorageKind::Operator, class, dim, op)
    }

    /// Looks up a handle. `None` after `unregister` or for a foreign
    /// handle.
    pub fn get(&self, h: MatrixHandle) -> Option<Arc<PreparedMatrix>> {
        self.map.read().unwrap().get(&h.0).cloned()
    }

    /// Removes a registration and marks the prepared matrix revoked.
    ///
    /// Defined semantics for requests caught mid-stream:
    ///
    /// * later submits fail with [`crate::SubmitError::UnknownMatrix`];
    /// * requests still **queued** are swept on the next batcher poll
    ///   and fail with [`crate::SolveError::MatrixUnregistered`] — a
    ///   distinct drop cause (`service/drop/unregistered`), never a
    ///   worker panic or a stranded batch column;
    /// * batches already **dispatched** hold their own `Arc` to the
    ///   operator and run to completion (a revocation racing a dispatch
    ///   yields a normally-solved request, not an error).
    pub fn unregister(&self, h: MatrixHandle) -> bool {
        match self.map.write().unwrap().remove(&h.0) {
            Some(prepared) => {
                prepared.revoked.store(true, Ordering::SeqCst);
                true
            }
            None => false,
        }
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::{Block3, BlockTripletBuilder};

    fn laplacian(nb: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(4.0));
            if i + 1 < nb {
                t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
            }
        }
        t.build()
    }

    #[test]
    fn register_and_lookup_round_trip() {
        let reg = MatrixRegistry::new();
        let a = laplacian(4);
        let dim = a.n_rows();
        let h = reg.register_full("lap", a);
        let p = reg.get(h).expect("registered");
        assert_eq!(p.name(), "lap");
        assert_eq!(p.dim(), dim);
        assert_eq!(p.kind(), StorageKind::Full);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn register_auto_prefers_symmetric_storage() {
        let reg = MatrixRegistry::new();
        let (h, kind) = reg.register_auto("lap", laplacian(4), 1e-12);
        assert_eq!(kind, StorageKind::Symmetric);
        let p = reg.get(h).unwrap();
        assert_eq!(p.kind(), StorageKind::Symmetric);
        assert_eq!(p.class(), OperatorClass::Spd);
    }

    /// A genuinely nonsymmetric matrix fails the symmetry check and is
    /// tagged General, so the worker serves it with block BiCGStab
    /// instead of silently running CG on it.
    #[test]
    fn register_auto_tags_nonsymmetric_matrices_general() {
        let mut t = BlockTripletBuilder::square(3);
        for i in 0..3 {
            t.add(i, i, Block3::scaled_identity(5.0));
        }
        t.add(0, 1, Block3::scaled_identity(-1.5));
        t.add(1, 0, Block3::scaled_identity(-0.5));
        let a = t.build();

        let reg = MatrixRegistry::new();
        let (h, kind) = reg.register_auto("conv", a.clone(), 1e-12);
        assert_eq!(kind, StorageKind::Full);
        assert_eq!(reg.get(h).unwrap().class(), OperatorClass::General);

        let hg = reg.register_general("conv2", a);
        assert_eq!(reg.get(hg).unwrap().class(), OperatorClass::General);
        // The SPD registration paths keep their class.
        let hf = reg.register_full("lap", laplacian(3));
        assert_eq!(reg.get(hf).unwrap().class(), OperatorClass::Spd);
    }

    #[test]
    fn operator_registration_takes_explicit_class() {
        let reg = MatrixRegistry::new();
        let h = reg.register_operator("op", Box::new(laplacian(2)));
        assert_eq!(reg.get(h).unwrap().class(), OperatorClass::Spd);
        let hg = reg.register_operator_with_class(
            "opg",
            Box::new(laplacian(2)),
            OperatorClass::General,
        );
        let p = reg.get(hg).unwrap();
        assert_eq!(p.class(), OperatorClass::General);
        assert_eq!(p.kind(), StorageKind::Operator);
    }

    #[test]
    fn unregister_invalidates_handle_without_reuse() {
        let reg = MatrixRegistry::new();
        let h1 = reg.register_full("a", laplacian(2));
        assert!(reg.unregister(h1));
        assert!(!reg.unregister(h1));
        assert!(reg.get(h1).is_none());
        let h2 = reg.register_full("b", laplacian(2));
        assert_ne!(h1, h2, "handles must never be reused");
    }

    #[test]
    fn operators_apply_identically_across_storage_kinds() {
        let reg = MatrixRegistry::new();
        let a = laplacian(3);
        let n = a.dim();
        let hf = reg.register_full("full", a.clone());
        let (hs, _) = reg.register_auto("sym", a, 1e-12);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let (mut yf, mut ys) = (vec![0.0; n], vec![0.0; n]);
        reg.get(hf).unwrap().operator().apply(&x, &mut yf);
        reg.get(hs).unwrap().operator().apply(&x, &mut ys);
        for (f, s) in yf.iter().zip(&ys) {
            assert!((f - s).abs() <= 1e-12 * f.abs().max(1.0));
        }
    }
}
