//! Registry of prepared operators shared by all service clients.
//!
//! Clients register a matrix once (paying any preparation cost such as
//! the symmetric-storage conversion up front) and then submit solve
//! requests against the returned [`MatrixHandle`]. The registry is the
//! unit of sharing that makes coalescing possible: only requests
//! against the *same* handle can ride in the same block solve.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use mrhs_solvers::LinearOperator;
use mrhs_sparse::{BcrsMatrix, SymmetricBcrs};

/// Opaque key identifying a registered matrix. Handles are never
/// reused, so a stale handle fails cleanly instead of aliasing a newer
/// registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatrixHandle(u64);

/// How a registered matrix is stored and applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageKind {
    /// Full BCRS storage.
    Full,
    /// Symmetric (upper-triangle) storage.
    Symmetric,
    /// An opaque boxed operator (e.g. a cluster `DistEngine`).
    Operator,
}

/// A matrix prepared for serving: the operator plus the metadata the
/// batcher needs to validate and group requests.
pub struct PreparedMatrix {
    name: String,
    kind: StorageKind,
    dim: usize,
    op: Box<dyn LinearOperator + Send + Sync>,
}

impl PreparedMatrix {
    /// Human-readable name given at registration.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Storage backing this matrix.
    pub fn kind(&self) -> StorageKind {
        self.kind
    }

    /// Scalar dimension (rows of any right-hand side).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The operator block CG applies once per iteration.
    pub fn operator(&self) -> &(dyn LinearOperator + Send + Sync) {
        &*self.op
    }
}

/// Thread-safe map from [`MatrixHandle`] to [`PreparedMatrix`].
#[derive(Default)]
pub struct MatrixRegistry {
    next: AtomicU64,
    map: RwLock<HashMap<u64, Arc<PreparedMatrix>>>,
}

impl MatrixRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(
        &self,
        name: &str,
        kind: StorageKind,
        dim: usize,
        op: Box<dyn LinearOperator + Send + Sync>,
    ) -> MatrixHandle {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let prepared =
            Arc::new(PreparedMatrix { name: name.to_string(), kind, dim, op });
        self.map.write().unwrap().insert(id, prepared);
        MatrixHandle(id)
    }

    /// Registers a full-storage BCRS matrix.
    pub fn register_full(&self, name: &str, a: BcrsMatrix) -> MatrixHandle {
        let dim = a.n_rows();
        self.insert(name, StorageKind::Full, dim, Box::new(a))
    }

    /// Registers a symmetric-storage matrix.
    pub fn register_symmetric(&self, name: &str, s: SymmetricBcrs) -> MatrixHandle {
        let dim = s.n_rows();
        self.insert(name, StorageKind::Symmetric, dim, Box::new(s))
    }

    /// Registers a full matrix, converting to symmetric storage when the
    /// matrix is symmetric within `sym_tol` (halving the bytes streamed
    /// per block iteration — the paper's §IV-C win — at zero cost to
    /// callers).
    pub fn register_auto(
        &self,
        name: &str,
        a: BcrsMatrix,
        sym_tol: f64,
    ) -> (MatrixHandle, StorageKind) {
        match SymmetricBcrs::from_full(&a, sym_tol) {
            Some(s) => (self.register_symmetric(name, s), StorageKind::Symmetric),
            None => (self.register_full(name, a), StorageKind::Full),
        }
    }

    /// Registers an arbitrary prepared operator — the escape hatch for
    /// distributed backends (`mrhs_cluster::DistEngine` implements
    /// `LinearOperator` and is `Send + Sync`).
    pub fn register_operator(
        &self,
        name: &str,
        op: Box<dyn LinearOperator + Send + Sync>,
    ) -> MatrixHandle {
        let dim = op.dim();
        self.insert(name, StorageKind::Operator, dim, op)
    }

    /// Looks up a handle. `None` after `unregister` or for a foreign
    /// handle.
    pub fn get(&self, h: MatrixHandle) -> Option<Arc<PreparedMatrix>> {
        self.map.read().unwrap().get(&h.0).cloned()
    }

    /// Removes a registration. In-flight batches hold their own `Arc`
    /// and finish normally; later submits fail with `UnknownMatrix`.
    pub fn unregister(&self, h: MatrixHandle) -> bool {
        self.map.write().unwrap().remove(&h.0).is_some()
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::{Block3, BlockTripletBuilder};

    fn laplacian(nb: usize) -> BcrsMatrix {
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(4.0));
            if i + 1 < nb {
                t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-1.0));
            }
        }
        t.build()
    }

    #[test]
    fn register_and_lookup_round_trip() {
        let reg = MatrixRegistry::new();
        let a = laplacian(4);
        let dim = a.n_rows();
        let h = reg.register_full("lap", a);
        let p = reg.get(h).expect("registered");
        assert_eq!(p.name(), "lap");
        assert_eq!(p.dim(), dim);
        assert_eq!(p.kind(), StorageKind::Full);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn register_auto_prefers_symmetric_storage() {
        let reg = MatrixRegistry::new();
        let (h, kind) = reg.register_auto("lap", laplacian(4), 1e-12);
        assert_eq!(kind, StorageKind::Symmetric);
        assert_eq!(reg.get(h).unwrap().kind(), StorageKind::Symmetric);
    }

    #[test]
    fn unregister_invalidates_handle_without_reuse() {
        let reg = MatrixRegistry::new();
        let h1 = reg.register_full("a", laplacian(2));
        assert!(reg.unregister(h1));
        assert!(!reg.unregister(h1));
        assert!(reg.get(h1).is_none());
        let h2 = reg.register_full("b", laplacian(2));
        assert_ne!(h1, h2, "handles must never be reused");
    }

    #[test]
    fn operators_apply_identically_across_storage_kinds() {
        let reg = MatrixRegistry::new();
        let a = laplacian(3);
        let n = a.dim();
        let hf = reg.register_full("full", a.clone());
        let (hs, _) = reg.register_auto("sym", a, 1e-12);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let (mut yf, mut ys) = (vec![0.0; n], vec![0.0; n]);
        reg.get(hf).unwrap().operator().apply(&x, &mut yf);
        reg.get(hs).unwrap().operator().apply(&x, &mut ys);
        for (f, s) in yf.iter().zip(&ys) {
            assert!((f - s).abs() <= 1e-12 * f.abs().max(1.0));
        }
    }
}
