//! The solve service: worker threads draining the [`Batcher`] into
//! coalesced block-CG solves.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mrhs_perfmodel::mrhs_model::SolveCounts;
use mrhs_perfmodel::{BicgstabModel, GspmvModel, MrhsModel};
use mrhs_solvers::{
    bicgstab, block_bicgstab_with_options, block_cg_with_options, cg,
    BlockBicgstabOptions, BlockCgOptions, SolveConfig,
};
use mrhs_sparse::MultiVec;
use mrhs_telemetry as telemetry;
use mrhs_telemetry::{flight, trace};

use crate::batcher::{
    BatchPolicy, Batcher, DispatchCause, DropStats, Pending, Poll, RequestTrace,
};
use crate::registry::{MatrixHandle, MatrixRegistry, OperatorClass};
use crate::request::{
    Completion, RequestOptions, SolveError, SolveOutput, SubmitError, Ticket,
};

/// The width the service should coalesce to: the Eq. 9 minimizer
/// `m_optimal`, clamped to the bandwidth→compute switch point `m_s`
/// (Eq. 8) — beyond `m_s` each extra column pays full compute cost, so
/// there is no serving win in batching wider — then snapped **down** to
/// the nearest kernel-specialized width. The *active* kernel backend
/// ([`mrhs_sparse::active_backend`]) advertises the widths it
/// specializes (monomorphized or SIMD-tiled); an off-grid width (say 5)
/// falls onto generic fallback loops whose per-iteration cost dwarfs
/// the Eq. 8 amortization it was meant to buy.
pub fn model_batch_width(
    gspmv: &GspmvModel,
    counts: SolveCounts,
    cap: usize,
) -> usize {
    let model = MrhsModel { gspmv: *gspmv, counts };
    let m_opt = model.m_optimal(cap.max(1));
    let target = match gspmv.switch_point() {
        Some(ms) => m_opt.min(ms).max(1),
        None => m_opt.max(1),
    };
    snap_to_specialized(target)
}

/// The [`model_batch_width`] analogue for nonsymmetric tenants: block
/// BiCGStab pays **two** GSPMVs per iteration plus dense `n·m²`
/// Gram/update sweeps, so its per-column cost curve
/// ([`BicgstabModel::per_column_time`]) turns upward earlier than the
/// CG one. The returned width is that curve's minimizer, snapped down
/// to the nearest kernel-specialized width.
pub fn model_batch_width_bicgstab(gspmv: &GspmvModel, cap: usize) -> usize {
    let model = BicgstabModel::new(*gspmv);
    snap_to_specialized(model.m_optimal(cap.max(1)))
}

/// Largest kernel-specialized width `<= target` (the set always
/// contains 1, so this is total).
fn snap_to_specialized(target: usize) -> usize {
    mrhs_sparse::active_backend()
        .specialized_widths()
        .iter()
        .copied()
        .filter(|&w| w <= target)
        .max()
        .unwrap_or(1)
}

/// The Eq. 8/9 reference model for the online drift gauges: with this
/// set, each batch solve updates `drift/gspmv/m{w}/…` (measured GSPMV
/// seconds vs the model's prediction at that width) and
/// `drift/m_optimal/{modeled,measured}` gauges, so a scraper can see
/// the model diverging from the machine *while serving* instead of in
/// a post-hoc ablation.
#[derive(Clone, Copy, Debug)]
pub struct DriftModelCfg {
    /// Eq. 8 specialized to the served matrix shape and this machine.
    pub gspmv: GspmvModel,
    /// Eq. 9 iteration counts for the m_optimal prediction.
    pub counts: SolveCounts,
}

/// Service-wide configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue. One worker already realizes
    /// the Eq. 8 coalescing win (the matrix is streamed once per block
    /// iteration for every batched column); more workers add
    /// concurrency across *different* matrices.
    pub workers: usize,
    /// Queue bound, linger, and the target batch width (`m_s`).
    pub policy: BatchPolicy,
    /// Default relative tolerance when a request does not set one.
    pub default_tol: f64,
    /// Iteration cap for batched solves and solo retries.
    pub max_iter: usize,
    /// Retry failed batch members with a single-RHS CG before failing
    /// them (failure isolation; see module docs of [`crate`]).
    pub solo_retry: bool,
    /// Reference model for the online drift gauges (`None` = no drift
    /// tracking).
    pub drift: Option<DriftModelCfg>,
    /// Extra metric prefix (e.g. `fleet/shard0`). Every `service/…`
    /// counter and queue-depth histogram is mirrored under it, giving a
    /// fleet deployment per-shard metric families without disturbing
    /// the single-host names.
    pub scope: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            policy: BatchPolicy::default(),
            default_tol: 1e-6,
            max_iter: 1000,
            solo_retry: true,
            drift: None,
            scope: None,
        }
    }
}

/// Monotonic counters describing service activity so far.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests rejected with [`SubmitError::QueueFull`].
    pub rejected: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests failed ([`SolveError::DidNotConverge`]).
    pub failed: u64,
    /// Requests expired in queue ([`SolveError::DeadlineExceeded`]).
    pub expired: u64,
    /// Coalesced block solves dispatched.
    pub batches: u64,
    /// Total columns across all dispatched batches.
    pub coalesced_columns: u64,
    /// Batches dispatched at exactly the target width.
    pub full_batches: u64,
    /// Columns that went through the solo-retry path.
    pub solo_retries: u64,
    /// Batches lifted off this shard's queue by a sibling's idle worker
    /// (fleet work stealing; always 0 single-host).
    pub stolen_batches: u64,
    /// The configured target width (for efficiency calculations).
    pub target_width: u64,
}

impl ServiceStats {
    /// Achieved width / target width, averaged over batches — 1.0 when
    /// every solve runs at the model-optimal width.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.batches == 0 || self.target_width == 0 {
            return 0.0;
        }
        self.coalesced_columns as f64 / (self.batches * self.target_width) as f64
    }
}

/// An installed work-stealing probe: returns `true` when it stole (and
/// solved) a batch from a sibling shard, `false` when nothing was worth
/// stealing. Installed by the fleet layer via
/// [`SolveService::set_steal_hook`]; idle workers call it between
/// queue polls.
pub(crate) type StealHook = Arc<dyn Fn() -> bool + Send + Sync>;

struct Inner {
    registry: MatrixRegistry,
    cfg: ServiceConfig,
    state: Mutex<Batcher>,
    /// Per-width EWMA of measured GSPMV seconds per call (drift gauges).
    drift_secs: Mutex<std::collections::HashMap<usize, f64>>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Fleet work-stealing probe; `None` single-host.
    steal: std::sync::RwLock<Option<StealHook>>,
    /// EWMA of batch solve time, nanoseconds (retry-after and
    /// deadline-pressure estimates).
    ewma_solve_ns: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    expired: AtomicU64,
    batches: AtomicU64,
    coalesced_columns: AtomicU64,
    full_batches: AtomicU64,
    solo_retries: AtomicU64,
    stolen_batches: AtomicU64,
}

impl Inner {
    /// Emits `service/{suffix}`, mirrored under the configured
    /// per-shard scope.
    fn scoped(&self, suffix: &str, v: u64) {
        telemetry::counter_add(&format!("service/{suffix}"), v);
        if let Some(s) = &self.cfg.scope {
            telemetry::counter_add(&format!("{s}/{suffix}"), v);
        }
    }

    fn steal_hook(&self) -> Option<StealHook> {
        self.steal.read().unwrap().clone()
    }
}

/// A running solve service. Dropping it shuts down and joins the
/// workers (draining the queue first).
pub struct SolveService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl SolveService {
    /// Starts worker threads over the given registry.
    pub fn start(registry: MatrixRegistry, cfg: ServiceConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        let inner = Arc::new(Inner {
            registry,
            state: Mutex::new(Batcher::new(cfg.policy, cfg.scope.clone())),
            drift_secs: Mutex::new(std::collections::HashMap::new()),
            cfg,
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            steal: std::sync::RwLock::new(None),
            ewma_solve_ns: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced_columns: AtomicU64::new(0),
            full_batches: AtomicU64::new(0),
            solo_retries: AtomicU64::new(0),
            stolen_batches: AtomicU64::new(0),
        });
        let workers = (0..inner.cfg.workers)
            .map(|k| {
                let inner = inner.clone();
                thread::Builder::new()
                    .name(format!("mrhs-service-{k}"))
                    .spawn(move || worker_main(&inner))
                    .expect("spawn service worker")
            })
            .collect();
        SolveService { inner, workers: Mutex::new(workers) }
    }

    /// The registry this service serves from (register matrices here).
    pub fn registry(&self) -> &MatrixRegistry {
        &self.inner.registry
    }

    /// Submits a (possibly multi-column) solve request.
    pub fn submit(
        &self,
        handle: MatrixHandle,
        rhs: MultiVec,
        opts: RequestOptions,
    ) -> Result<Ticket, SubmitError> {
        let inner = &*self.inner;
        let matrix =
            inner.registry.get(handle).ok_or(SubmitError::UnknownMatrix)?;
        if rhs.n() != matrix.dim() {
            return Err(SubmitError::ShapeMismatch {
                expected: matrix.dim(),
                got: rhs.n(),
            });
        }
        let now = Instant::now();
        let completion = Arc::new(Completion::new());
        // Mint the request's trace identity at ingress. The root span
        // is emitted retroactively when the request completes (or
        // expires), so the ingress timestamp rides along.
        let req_trace = trace::trace_enabled().then(|| RequestTrace {
            trace: trace::mint_trace(),
            root: trace::mint_span(),
            ingress_ns: trace::now_ns(),
        });
        let pending = Pending {
            matrix,
            handle,
            rhs,
            tol: opts.tol.unwrap_or(inner.cfg.default_tol),
            enqueued: now,
            deadline: opts.deadline.map(|d| now + d),
            completion: completion.clone(),
            trace: req_trace,
        };
        {
            let mut st = inner.state.lock().unwrap();
            if inner.shutdown.load(Ordering::SeqCst) {
                st.note_shutdown_drop();
                return Err(SubmitError::ShuttingDown);
            }
            let (cols, reqs) = (st.columns() as u64, st.len() as u64);
            telemetry::histogram_record_ns("service/queue_depth_cols", cols);
            telemetry::histogram_record_ns("service/queue_depth_reqs", reqs);
            if let Some(s) = &inner.cfg.scope {
                telemetry::histogram_record_ns(
                    &format!("{s}/queue_depth_cols"),
                    cols,
                );
                telemetry::histogram_record_ns(
                    &format!("{s}/queue_depth_reqs"),
                    reqs,
                );
            }
            if st.try_push(pending).is_err() {
                st.note_backpressure_drop();
                inner.rejected.fetch_add(1, Ordering::Relaxed);
                inner.scoped("rejected", 1);
                return Err(SubmitError::QueueFull {
                    retry_after: self.solve_estimate(),
                });
            }
        }
        inner.accepted.fetch_add(1, Ordering::Relaxed);
        inner.scoped("accepted", 1);
        inner.cv.notify_all();
        Ok(Ticket { shared: completion, submitted: now })
    }

    /// Requests dropped without being solved, by cause (queue expiry,
    /// backpressure rejection, shutdown refusal).
    pub fn drop_stats(&self) -> DropStats {
        self.inner.state.lock().unwrap().drop_stats()
    }

    /// Convenience: submit one right-hand side with default options.
    pub fn submit_one(
        &self,
        handle: MatrixHandle,
        rhs: &[f64],
    ) -> Result<Ticket, SubmitError> {
        let mut mv = MultiVec::zeros(rhs.len(), 1);
        mv.set_column(0, rhs);
        self.submit(handle, mv, RequestOptions::default())
    }

    /// Current activity counters.
    pub fn stats(&self) -> ServiceStats {
        let i = &*self.inner;
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServiceStats {
            accepted: ld(&i.accepted),
            rejected: ld(&i.rejected),
            completed: ld(&i.completed),
            failed: ld(&i.failed),
            expired: ld(&i.expired),
            batches: ld(&i.batches),
            coalesced_columns: ld(&i.coalesced_columns),
            full_batches: ld(&i.full_batches),
            solo_retries: ld(&i.solo_retries),
            stolen_batches: ld(&i.stolen_batches),
            target_width: i.cfg.policy.max_batch as u64,
        }
    }

    /// The running batch solve-time estimate (the `retry_after` hint).
    pub fn solve_estimate(&self) -> Duration {
        let ns = self.inner.ewma_solve_ns.load(Ordering::Relaxed);
        Duration::from_nanos(ns).max(Duration::from_micros(100))
    }

    /// Queued columns right now (the fleet router's load probe).
    pub fn queued_columns(&self) -> usize {
        self.inner.state.lock().unwrap().columns()
    }

    /// The configured queue bound, in columns.
    pub fn queue_capacity(&self) -> usize {
        self.inner.cfg.policy.queue_capacity
    }

    /// Queued columns waiting for `h` — the fleet router's "is a batch
    /// already forming here?" probe.
    pub fn pending_columns_for(&self, h: MatrixHandle) -> usize {
        self.inner.state.lock().unwrap().pending_columns_for(h)
    }

    /// Unregisters a handle. Later submits fail with
    /// [`SubmitError::UnknownMatrix`]; requests still queued fail
    /// promptly with [`SolveError::MatrixUnregistered`] (the workers
    /// are woken to sweep them); batches already dispatched run to
    /// completion. Returns whether the handle was registered.
    pub fn unregister(&self, h: MatrixHandle) -> bool {
        let was = self.inner.registry.unregister(h);
        if was {
            self.inner.cv.notify_all();
        }
        was
    }

    /// Lifts the next dispatchable batch off this shard's queue when it
    /// holds at least `min_cols` columns — the victim half of fleet
    /// work stealing. Deadline-expired and revoked requests swept along
    /// the way are completed here, exactly as this shard's own worker
    /// would complete them.
    pub(crate) fn try_steal(&self, min_cols: usize) -> Option<Vec<Pending>> {
        let mut expired = Vec::new();
        let mut revoked = Vec::new();
        let batch = {
            let mut st = self.inner.state.lock().unwrap();
            if st.columns() < min_cols.max(1) {
                None
            } else {
                st.steal_batch(Instant::now(), &mut expired, &mut revoked)
            }
        };
        complete_dropped(&self.inner, &mut expired, &mut revoked);
        batch
    }

    /// Runs a batch stolen from this shard on the caller's thread. The
    /// batch still uses this shard's solver configuration, counters,
    /// and completions, so per-column acceptance and solo-retry
    /// semantics are identical to a locally dispatched batch.
    pub(crate) fn run_stolen(&self, batch: Vec<Pending>) {
        self.inner.stolen_batches.fetch_add(1, Ordering::Relaxed);
        self.inner.scoped("stolen_batches", 1);
        solve_batch(&self.inner, batch, DispatchCause::Stolen);
    }

    /// Installs the fleet work-stealing probe this shard's idle workers
    /// call between queue polls.
    pub(crate) fn set_steal_hook(&self, hook: StealHook) {
        *self.inner.steal.write().unwrap() = Some(hook);
        self.inner.cv.notify_all();
    }

    /// Stops accepting requests, drains the queue, and joins the
    /// workers. Propagates worker panics (a lost/duplicated completion
    /// panics the worker). Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            h.join().expect("service worker panicked");
        }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        // Swallow panics here: `shutdown()` is the propagating path,
        // and a second panic while unwinding would abort.
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_main(inner: &Inner) {
    let mut expired: Vec<Pending> = Vec::new();
    let mut revoked: Vec<Pending> = Vec::new();
    loop {
        let batch = {
            let mut st = inner.state.lock().unwrap();
            // Once an empty queue has made us wait a full idle tick,
            // release the lock and probe the siblings instead of
            // waiting again (fleet work stealing).
            let mut waited_idle = false;
            loop {
                let flush = inner.shutdown.load(Ordering::SeqCst);
                let est = Duration::from_nanos(
                    inner.ewma_solve_ns.load(Ordering::Relaxed),
                );
                let now = Instant::now();
                match st.poll(now, flush, est, &mut expired, &mut revoked) {
                    Poll::Batch(b, cause) => break Some((b, cause)),
                    Poll::Empty => {
                        if !expired.is_empty() || !revoked.is_empty() {
                            break None;
                        }
                        if flush {
                            return;
                        }
                        let stealing = inner.steal_hook().is_some();
                        if stealing && waited_idle {
                            break None;
                        }
                        // Shorter idle tick when stealing is on: an
                        // idle shard should notice a hot sibling fast.
                        let tick =
                            Duration::from_millis(if stealing { 5 } else { 100 });
                        let (g, _) = inner.cv.wait_timeout(st, tick).unwrap();
                        st = g;
                        waited_idle = true;
                    }
                    Poll::Wait(until) => {
                        if !expired.is_empty() || !revoked.is_empty() {
                            break None;
                        }
                        let dur = until
                            .saturating_duration_since(Instant::now())
                            .min(Duration::from_millis(100))
                            .max(Duration::from_micros(50));
                        let (g, _) = inner.cv.wait_timeout(st, dur).unwrap();
                        st = g;
                    }
                }
            }
        };
        complete_dropped(inner, &mut expired, &mut revoked);
        match batch {
            Some((batch, cause)) => solve_batch(inner, batch, cause),
            None => {
                // Idle with nothing dropped locally: probe the fleet's
                // hottest sibling for a batch worth stealing.
                if let Some(hook) = inner.steal_hook() {
                    hook();
                }
            }
        }
    }
}

/// Completes requests the batcher dropped from the queue without
/// solving: deadline expiries fail with [`SolveError::DeadlineExceeded`]
/// and revocation sweeps fail with [`SolveError::MatrixUnregistered`].
/// Runs outside the queue lock — completions wake client threads.
fn complete_dropped(
    inner: &Inner,
    expired: &mut Vec<Pending>,
    revoked: &mut Vec<Pending>,
) {
    for p in expired.drain(..) {
        let waited = p.enqueued.elapsed();
        inner.expired.fetch_add(1, Ordering::Relaxed);
        inner.failed.fetch_add(1, Ordering::Relaxed);
        inner.scoped("expired", 1);
        if let Some(rt) = p.trace {
            // Close the request's trace as an expired root span
            // (a = waited ns, b = 1 marks the deadline miss), then
            // dump the flight ring — an expiry is exactly the event
            // the recorder exists for.
            let end = trace::now_ns();
            trace::emit_span_at(
                rt.trace,
                rt.root,
                trace::SpanId(0),
                "service/request",
                rt.ingress_ns,
                end.saturating_sub(rt.ingress_ns),
                waited.as_nanos().min(u64::MAX as u128) as u64,
                1,
            );
            flight::dump_now("deadline_miss");
        }
        p.completion.complete(Err(SolveError::DeadlineExceeded { waited }));
    }
    for p in revoked.drain(..) {
        inner.failed.fetch_add(1, Ordering::Relaxed);
        inner.scoped("failed", 1);
        if let Some(rt) = p.trace {
            // Root span with the error flag set; the batcher already
            // counted `drop/unregistered`. No flight dump — an
            // unregister is an administrative action, not an anomaly.
            let end = trace::now_ns();
            trace::emit_span_at(
                rt.trace,
                rt.root,
                trace::SpanId(0),
                "service/request",
                rt.ingress_ns,
                end.saturating_sub(rt.ingress_ns),
                0,
                1,
            );
        }
        p.completion.complete(Err(SolveError::MatrixUnregistered));
    }
}

/// Runs one coalesced block solve and scatters results back to the
/// per-request completions.
fn solve_batch(inner: &Inner, batch: Vec<Pending>, cause: DispatchCause) {
    let dispatched = Instant::now();
    let dispatched_ns = trace::epoch_ns(dispatched);
    let matrix = batch[0].matrix.clone();
    let n = matrix.dim();
    let width: usize = batch.iter().map(Pending::width).sum();

    // The batch gets its own trace rooted here; while the guard lives,
    // this worker thread carries the batch context, so the solver's
    // per-iteration points and the kernel/engine spans below nest under
    // it automatically. Each member request's trace links to the batch
    // trace (`joined_batch`), and tree assembly grafts the shared batch
    // tree under every member.
    let batch_span = trace::root_span("service/batch");
    if let Some(bs) = &batch_span {
        for (k, p) in batch.iter().enumerate() {
            if let Some(rt) = p.trace {
                // On the request trace: the queue-wait interval and the
                // link into the batch trace. b packs the batcher's
                // decision: cause code | width<<8 | member index<<32.
                trace::emit_span_at(
                    rt.trace,
                    trace::mint_span(),
                    rt.root,
                    "service/queue_wait",
                    rt.ingress_ns,
                    dispatched_ns.saturating_sub(rt.ingress_ns),
                    0,
                    0,
                );
                trace::link(
                    rt.trace,
                    rt.root,
                    "joined_batch",
                    bs.trace_id().0,
                    cause.code() | ((width as u64) << 8) | ((k as u64) << 32),
                );
            }
        }
    }

    inner.batches.fetch_add(1, Ordering::Relaxed);
    inner.coalesced_columns.fetch_add(width as u64, Ordering::Relaxed);
    if width == inner.cfg.policy.max_batch {
        inner.full_batches.fetch_add(1, Ordering::Relaxed);
    }
    inner.scoped("batches", 1);
    telemetry::counter_add(&format!("service/batch_width/{width:02}"), 1);
    inner.scoped("coalesced_columns", width as u64);
    telemetry::histogram_record_ns("service/batch_width", width as u64);

    // Gather pending right-hand sides into one MultiVec.
    let mut b = MultiVec::zeros(n, width);
    let mut tols = Vec::with_capacity(width);
    let mut offsets = Vec::with_capacity(batch.len());
    let mut col = 0usize;
    for p in &batch {
        offsets.push(col);
        let cols: Vec<usize> = (col..col + p.width()).collect();
        b.scatter_columns(&cols, &p.rhs);
        tols.extend(std::iter::repeat_n(p.tol, p.width()));
        col += p.width();
        telemetry::record_span_secs(
            "service/queue_wait",
            dispatched.duration_since(p.enqueued).as_secs_f64(),
        );
    }

    // Dispatch on the operator class fixed at registration: block CG
    // for SPD tenants, block BiCGStab for general (nonsymmetric) ones.
    // The batcher never mixes handles in a batch, so the class is
    // uniform here.
    let min_tol = tols.iter().cloned().fold(f64::INFINITY, f64::min);
    let solve_cfg = SolveConfig { tol: min_tol, max_iter: inner.cfg.max_iter };
    let mut x = MultiVec::zeros(n, width);
    let gspmv_before = kernel_secs_at_width(width);
    let (residual_norms, column_converged_at, column_iterations) = match matrix
        .class()
    {
        OperatorClass::Spd => {
            let opts = BlockCgOptions {
                solve: solve_cfg,
                record_residual_history: false,
                column_tols: Some(tols.clone()),
            };
            let res = {
                let _g = telemetry::span("service/solve");
                let _t = trace::child_span("service/solve");
                block_cg_with_options(matrix.operator(), &b, &mut x, &opts)
            };
            if res.breakdown.is_some() {
                telemetry::counter_add("service/block_cg_breakdown", 1);
                flight::dump_now("block_cg_breakdown");
            }
            (res.residual_norms, res.column_converged_at, res.column_iterations)
        }
        OperatorClass::General => {
            let opts = BlockBicgstabOptions {
                solve: solve_cfg,
                column_tols: Some(tols.clone()),
                ..Default::default()
            };
            let res = {
                let _g = telemetry::span("service/solve");
                let _t = trace::child_span("service/solve");
                block_bicgstab_with_options(matrix.operator(), &b, &mut x, &opts)
            };
            if let Some(bd) = res.breakdown {
                telemetry::counter_add(
                    &format!("service/bicgstab_breakdown/{:?}", bd.kind),
                    1,
                );
                flight::dump_now("bicgstab_breakdown");
            }
            (res.residual_norms, res.column_converged_at, res.column_iterations)
        }
    };
    update_drift_gauges(inner, width, gspmv_before);

    // Per-column acceptance: the solution and final residual must be
    // finite (a NaN right-hand side poisons every column through the
    // coupled m×m Gram solves) and the residual either under this
    // column's threshold or marked converged during the iteration.
    let mut col_finite = vec![true; width];
    for row in x.as_slice().chunks_exact(width) {
        for (finite, v) in col_finite.iter_mut().zip(row) {
            *finite &= v.is_finite();
        }
    }
    let b_norms = b.norms();
    let threshold = |j: usize| tols[j] * b_norms[j].max(f64::MIN_POSITIVE);
    let mut ok: Vec<bool> = (0..width)
        .map(|j| {
            let rn = residual_norms[j];
            col_finite[j]
                && rn.is_finite()
                && (rn <= threshold(j) || column_converged_at[j].is_some())
        })
        .collect();

    // Failure isolation: retry failed columns solo so one pathological
    // RHS cannot poison its batchmates. The retry solver matches the
    // batch solver's class: single-RHS CG for SPD, scalar BiCGStab for
    // general operators.
    let mut solo_retried = vec![false; width];
    let mut iters = column_iterations.clone();
    let mut rel_res: Vec<f64> = (0..width)
        .map(|j| residual_norms[j] / b_norms[j].max(f64::MIN_POSITIVE))
        .collect();
    if inner.cfg.solo_retry && ok.iter().any(|&o| !o) {
        flight::dump_now("solo_retry");
        let cfg_base = SolveConfig {
            tol: inner.cfg.default_tol,
            max_iter: inner.cfg.max_iter,
        };
        for j in 0..width {
            if ok[j] {
                continue;
            }
            solo_retried[j] = true;
            inner.solo_retries.fetch_add(1, Ordering::Relaxed);
            inner.scoped("solo_retries", 1);
            let bj = b.column(j);
            let mut xj = vec![0.0; n];
            let cfg = SolveConfig { tol: tols[j], ..cfg_base };
            let (r_iters, r_norm, r_conv) = {
                let _g = telemetry::span("service/solo_retry");
                match matrix.class() {
                    OperatorClass::Spd => {
                        let r = cg(matrix.operator(), &bj, &mut xj, &cfg);
                        (r.iterations, r.residual_norm, r.converged)
                    }
                    OperatorClass::General => {
                        let r = bicgstab(matrix.operator(), &bj, &mut xj, &cfg);
                        (r.iterations, r.residual_norm, r.converged)
                    }
                }
            };
            iters[j] = r_iters;
            rel_res[j] = r_norm / b_norms[j].max(f64::MIN_POSITIVE);
            if r_conv {
                x.set_column(j, &xj);
                ok[j] = true;
            }
        }
    }

    let solve_time = dispatched.elapsed();
    update_ewma(&inner.ewma_solve_ns, solve_time);
    telemetry::record_span_secs("service/solve_total", solve_time.as_secs_f64());

    let finished = Instant::now();
    let finished_ns = trace::epoch_ns(finished);
    for (p, &off) in batch.iter().zip(&offsets) {
        let w = p.width();
        let cols: Vec<usize> = (off..off + w).collect();
        let all_ok = cols.iter().all(|&j| ok[j]);
        let retried = cols.iter().any(|&j| solo_retried[j]);
        if let Some(rt) = p.trace {
            // On the request trace: the solve interval (shared with the
            // batch, but each member pays it end to end) and the root
            // span closing out the request. queue_wait + solve children
            // tile the root exactly in trace time, mirroring the
            // SolveOutput durations.
            trace::emit_span_at(
                rt.trace,
                trace::mint_span(),
                rt.root,
                "service/solve",
                dispatched_ns,
                finished_ns.saturating_sub(dispatched_ns),
                width as u64,
                0,
            );
            trace::emit_span_at(
                rt.trace,
                rt.root,
                trace::SpanId(0),
                "service/request",
                rt.ingress_ns,
                finished_ns.saturating_sub(rt.ingress_ns),
                w as u64,
                u64::from(!all_ok),
            );
        }
        if all_ok {
            inner.completed.fetch_add(1, Ordering::Relaxed);
            inner.scoped("completed", 1);
            p.completion.complete(Ok(SolveOutput {
                solution: x.gather_columns(&cols),
                iterations: cols.iter().map(|&j| iters[j]).max().unwrap(),
                batch_width: width,
                solo_retried: retried,
                queue_wait: dispatched.duration_since(p.enqueued),
                solve_time,
                latency: finished.duration_since(p.enqueued),
                trace_id: p.trace.map(|rt| rt.trace.0),
            }));
        } else {
            inner.failed.fetch_add(1, Ordering::Relaxed);
            inner.scoped("failed", 1);
            let worst = cols.iter().map(|&j| rel_res[j]).fold(0.0f64, |a, r| {
                if r.is_nan() {
                    f64::NAN
                } else {
                    a.max(r)
                }
            });
            let its = cols.iter().map(|&j| iters[j]).max().unwrap();
            p.completion.complete(Err(SolveError::DidNotConverge {
                relative_residual: worst,
                iterations: its,
            }));
        }
    }
}

/// Accumulated `(total_secs, calls)` across every kernel span family at
/// one width — whichever storage the tenant uses (full, symmetric,
/// dedup, fused power) lands in one of these.
fn kernel_secs_at_width(width: usize) -> (f64, u64) {
    const KINDS: [&str; 4] = ["gspmv", "gspmv_sym", "gspmv_dedup", "spmpv"];
    let mut secs = 0.0;
    let mut calls = 0;
    for kind in KINDS {
        let s = telemetry::span_stat(&format!("kernel/{kind}/m{width}"));
        secs += s.secs();
        calls += s.count;
    }
    (secs, calls)
}

/// Updates the model-drift gauges after one batch solve at `width`:
/// the kernel span deltas bracketing the solve give measured GSPMV
/// seconds per call, EWMA-smoothed per width and compared against the
/// Eq. 8 prediction; the per-column argmin over observed widths is the
/// *measured* m_optimal, set next to the Eq. 9 one. Requires both
/// telemetry (for the kernel spans) and a configured drift model.
fn update_drift_gauges(inner: &Inner, width: usize, before: (f64, u64)) {
    let Some(drift) = inner.cfg.drift else { return };
    if !telemetry::enabled() {
        return;
    }
    let (secs_after, calls_after) = kernel_secs_at_width(width);
    let d_secs = secs_after - before.0;
    let d_calls = calls_after.saturating_sub(before.1);
    if d_calls == 0 || d_secs <= 0.0 {
        return;
    }
    let measured = d_secs / d_calls as f64;
    let ewma = {
        let mut map = inner.drift_secs.lock().unwrap();
        let e = map.entry(width).or_insert(measured);
        *e = 0.5 * *e + 0.5 * measured;
        *e
    };
    let model_secs = drift.gspmv.time(width);
    telemetry::gauge_set(&format!("drift/gspmv/m{width}/measured_secs"), ewma);
    telemetry::gauge_set(&format!("drift/gspmv/m{width}/model_secs"), model_secs);
    if model_secs > 0.0 {
        telemetry::gauge_set(
            &format!("drift/gspmv/m{width}/ratio"),
            ewma / model_secs,
        );
    }

    let modeled_opt = MrhsModel { gspmv: drift.gspmv, counts: drift.counts }
        .m_optimal(inner.cfg.policy.max_batch.max(1));
    telemetry::gauge_set("drift/m_optimal/modeled", modeled_opt as f64);
    // Measured m_optimal: the width with the cheapest measured
    // per-column multiply among widths this service has actually run.
    let map = inner.drift_secs.lock().unwrap();
    if let Some((w, _)) = map
        .iter()
        .map(|(w, s)| (*w, *s / (*w).max(1) as f64))
        .min_by(|a, b| a.1.total_cmp(&b.1))
    {
        telemetry::gauge_set("drift/m_optimal/measured", w as f64);
    }
}

fn update_ewma(cell: &AtomicU64, sample: Duration) {
    let s = sample.as_nanos().min(u128::from(u64::MAX)) as u64;
    let old = cell.load(Ordering::Relaxed);
    let new = if old == 0 { s } else { old / 2 + s / 2 };
    cell.store(new, Ordering::Relaxed);
}
