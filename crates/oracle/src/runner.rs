//! The differential runner: every backend × every corpus entry ×
//! every `m`, against the dense reference, under one tolerance model.
//!
//! For each `(entry, m)` cell the runner:
//!
//! 1. expands the entry to a [`Dense`] reference and computes the
//!    reference product with naive triple loops;
//! 2. cross-checks the symmetric half-storage expansion against the
//!    full expansion **exactly** (they are assembled independently, so
//!    any difference is a conversion bug, not roundoff);
//! 3. runs every supporting backend, checking (a) tolerance agreement
//!    with the reference, (b) bitwise equality across two repeated
//!    runs of the same backend, and (c) bitwise equality inside each
//!    declared equivalence group.
//!
//! Failures are collected, not panicked, so one run reports every
//! disagreement in the matrix of backends at once.

use crate::backends::GspmvBackend;
use crate::corpus::{pseudo_multivec, CorpusEntry, Scale};
use crate::reference::Dense;
use crate::tolerance::{check_bitwise, TolModel};
use std::collections::HashMap;

/// Outcome of a differential sweep.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of individual comparisons performed.
    pub checks: usize,
    /// Human-readable description of every failed comparison.
    pub failures: Vec<String>,
}

impl Report {
    /// Panics with the full failure list if anything disagreed.
    pub fn assert_ok(&self) {
        assert!(
            self.failures.is_empty(),
            "{} of {} differential checks failed:\n{}",
            self.failures.len(),
            self.checks,
            self.failures.join("\n")
        );
    }
}

/// Runs the full differential: `backends × corpus(scale) × m_values`.
pub fn run_differential(
    backends: &[Box<dyn GspmvBackend>],
    entries: &[CorpusEntry],
    ms: &[usize],
    tol: &TolModel,
) -> Report {
    let mut report = Report::default();

    for (ei, entry) in entries.iter().enumerate() {
        let dense = Dense::from_bcrs(&entry.matrix);

        // Independent expansion of the half storage must match the
        // full expansion bit for bit: both copy the same stored
        // scalars, no arithmetic involved.
        if let Some(s) = &entry.symmetric {
            let dense_sym = Dense::from_symmetric(s);
            report.checks += 1;
            if let Err(e) = check_bitwise(
                &dense.data,
                &dense_sym.data,
                &format!("{}: symmetric expansion", entry.name),
            ) {
                report.failures.push(e);
            }
        }

        for (mi, &m) in ms.iter().enumerate() {
            let x = pseudo_multivec(
                entry.matrix.n_cols(),
                m,
                0x9e37_79b9 ^ ((ei as u64) << 32) ^ mi as u64,
            );
            let want = dense.gspmv(&x);

            // name → (group key, output) for the group check below.
            let mut group_outputs: HashMap<String, (String, Vec<f64>)> =
                HashMap::new();

            for backend in backends {
                if !backend.supports(entry) || !backend.wants_m(m) {
                    continue;
                }
                let ctx = format!("{} m={} {}", entry.name, m, backend.name());

                let y = backend.run(entry, &x);
                report.checks += 1;
                if let Err(e) =
                    tol.check_slices(want.as_slice(), y.as_slice(), &ctx)
                {
                    report.failures.push(e);
                }

                // Determinism: a second run must be bit-identical.
                let y2 = backend.run(entry, &x);
                report.checks += 1;
                if let Err(e) = check_bitwise(
                    y.as_slice(),
                    y2.as_slice(),
                    &format!("{ctx}: repeated run"),
                ) {
                    report.failures.push(e);
                }

                if let Some(group) = backend.bitwise_group() {
                    match group_outputs.get(&group) {
                        None => {
                            group_outputs.insert(
                                group.clone(),
                                (backend.name(), y.as_slice().to_vec()),
                            );
                        }
                        Some((first_name, first)) => {
                            report.checks += 1;
                            if let Err(e) = check_bitwise(
                                first,
                                y.as_slice(),
                                &format!(
                                    "{ctx}: bitwise group `{group}` vs {first_name}"
                                ),
                            ) {
                                report.failures.push(e);
                            }
                        }
                    }
                }
            }
        }
    }

    report
}

/// Convenience wrapper: standard backends over the standard corpus.
pub fn run_standard(scale: Scale) -> Report {
    run_differential(
        &crate::backends::standard_backends(),
        &crate::corpus::corpus(scale),
        &crate::corpus::m_values(scale),
        &TolModel::KERNEL,
    )
}
