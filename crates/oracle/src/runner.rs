//! The differential runner: every backend × every corpus entry ×
//! every `m`, against the dense reference, under one tolerance model.
//!
//! For each `(entry, m)` cell the runner:
//!
//! 1. expands the entry to a [`Dense`] reference and computes the
//!    reference product with naive triple loops;
//! 2. cross-checks the symmetric half-storage expansion against the
//!    full expansion **exactly** (they are assembled independently, so
//!    any difference is a conversion bug, not roundoff);
//! 3. runs every supporting backend, checking (a) tolerance agreement
//!    with the reference, (b) bitwise equality across two repeated
//!    runs of the same backend, and (c) bitwise equality inside each
//!    declared equivalence group.
//!
//! Failures are collected, not panicked, so one run reports every
//! disagreement in the matrix of backends at once.

use crate::backends::GspmvBackend;
use crate::corpus::{pseudo_multivec, CorpusEntry, Scale};
use crate::reference::Dense;
use crate::tolerance::{check_bitwise, TolModel};
use std::collections::HashMap;

/// Outcome of a differential sweep.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of individual comparisons performed.
    pub checks: usize,
    /// Human-readable description of every failed comparison.
    pub failures: Vec<String>,
}

impl Report {
    /// Panics with the full failure list if anything disagreed.
    pub fn assert_ok(&self) {
        assert!(
            self.failures.is_empty(),
            "{} of {} differential checks failed:\n{}",
            self.failures.len(),
            self.checks,
            self.failures.join("\n")
        );
    }
}

/// Runs the full differential: `backends × corpus(scale) × m_values`.
pub fn run_differential(
    backends: &[Box<dyn GspmvBackend>],
    entries: &[CorpusEntry],
    ms: &[usize],
    tol: &TolModel,
) -> Report {
    let mut report = Report::default();

    for (ei, entry) in entries.iter().enumerate() {
        let dense = Dense::from_bcrs(&entry.matrix);

        // Independent expansion of the half storage must match the
        // full expansion bit for bit: both copy the same stored
        // scalars, no arithmetic involved.
        if let Some(s) = &entry.symmetric {
            let dense_sym = Dense::from_symmetric(s);
            report.checks += 1;
            if let Err(e) = check_bitwise(
                &dense.data,
                &dense_sym.data,
                &format!("{}: symmetric expansion", entry.name),
            ) {
                report.failures.push(e);
            }
        }

        for (mi, &m) in ms.iter().enumerate() {
            let x = pseudo_multivec(
                entry.matrix.n_cols(),
                m,
                0x9e37_79b9 ^ ((ei as u64) << 32) ^ mi as u64,
            );
            let want = dense.gspmv(&x);

            // name → (group key, output) for the group check below.
            let mut group_outputs: HashMap<String, (String, Vec<f64>)> =
                HashMap::new();

            for backend in backends {
                if !backend.supports(entry) || !backend.wants_m(m) {
                    continue;
                }
                let ctx = format!("{} m={} {}", entry.name, m, backend.name());

                let y = backend.run(entry, &x);
                report.checks += 1;
                if let Err(e) =
                    tol.check_slices(want.as_slice(), y.as_slice(), &ctx)
                {
                    report.failures.push(e);
                }

                // Determinism: a second run must be bit-identical.
                let y2 = backend.run(entry, &x);
                report.checks += 1;
                if let Err(e) = check_bitwise(
                    y.as_slice(),
                    y2.as_slice(),
                    &format!("{ctx}: repeated run"),
                ) {
                    report.failures.push(e);
                }

                if let Some(group) = backend.bitwise_group() {
                    match group_outputs.get(&group) {
                        None => {
                            group_outputs.insert(
                                group.clone(),
                                (backend.name(), y.as_slice().to_vec()),
                            );
                        }
                        Some((first_name, first)) => {
                            report.checks += 1;
                            if let Err(e) = check_bitwise(
                                first,
                                y.as_slice(),
                                &format!(
                                    "{ctx}: bitwise group `{group}` vs {first_name}"
                                ),
                            ) {
                                report.failures.push(e);
                            }
                        }
                    }
                }
            }
        }
    }

    report
}

/// Convenience wrapper: standard backends over the standard corpus.
pub fn run_standard(scale: Scale) -> Report {
    run_differential(
        &crate::backends::standard_backends(),
        &crate::corpus::corpus(scale),
        &crate::corpus::m_values(scale),
        &TolModel::KERNEL,
    )
}

/// Fused power depths the SpMPV differential sweeps: a degenerate
/// depth, a two-level wavefront, and the Chebyshev grouping depth.
const POWER_DEPTHS: [usize; 3] = [1, 2, 4];

/// The SpMPV power differential: for every *square* corpus entry,
/// depth `k`, and available backend kind, the fused matrix-power
/// wavefront must be **bitwise identical** to `k` repeated serial
/// GSPMV sweeps of the same kind — the definition of the power chain —
/// both under the default plan and under a deliberately tiny chunk
/// size that forces a multi-chunk anti-diagonal wavefront. Across
/// kinds, the deepest level must stay tolerance-equal (power chains
/// amplify kernel-level reassociation, so the cross-kind check uses
/// the scalar chain as reference).
///
/// This cannot ride on [`run_differential`]: its runner assumes every
/// backend computes `Y = A·X` against one dense reference, while the
/// power backends compute `A^k·X` per kind.
pub fn run_power_differential(scale: Scale) -> Report {
    use mrhs_sparse::{
        backend_available, gspmv_serial_with, spmpv_powers_with,
        spmpv_powers_with_plan, KernelKind, MultiVec, PowerPlan,
    };

    let entries = crate::corpus::corpus(scale);
    let ms = crate::corpus::m_values(scale);
    let tol = TolModel::KERNEL;
    let mut report = Report::default();

    // `k` sequential sweeps through one kind's serial kernel.
    let chain = |kind: KernelKind, a, x: &MultiVec, k: usize| -> Vec<MultiVec> {
        let n = x.n();
        let m = x.m();
        let mut seq = Vec::with_capacity(k);
        let mut prev = x.clone();
        for _ in 0..k {
            let mut y = MultiVec::zeros(n, m);
            gspmv_serial_with(kind, a, &prev, &mut y);
            prev = y.clone();
            seq.push(y);
        }
        seq
    };

    for (ei, entry) in entries.iter().enumerate() {
        let a = &entry.matrix;
        if a.nb_rows() != a.nb_cols() {
            continue; // powers need a square operator
        }
        let n = a.n_rows();
        for (mi, &m) in ms.iter().enumerate() {
            let x = pseudo_multivec(
                n,
                m,
                0x51ed_2701 ^ ((ei as u64) << 32) ^ mi as u64,
            );
            for &k in &POWER_DEPTHS {
                let scalar_chain = chain(KernelKind::Scalar, a, &x, k);
                for kind in KernelKind::ALL {
                    if !backend_available(kind) {
                        continue;
                    }
                    let ctx = format!("{} m={m} k={k} {kind:?}", entry.name);
                    let seq = if kind == KernelKind::Scalar {
                        scalar_chain.clone()
                    } else {
                        chain(kind, a, &x, k)
                    };

                    // Fused, default plan: bitwise per level.
                    let mut outs: Vec<MultiVec> =
                        (0..k).map(|_| MultiVec::zeros(n, m)).collect();
                    spmpv_powers_with(kind, a, &x, &mut outs);
                    for (lvl, (y, w)) in outs.iter().zip(&seq).enumerate() {
                        report.checks += 1;
                        if let Err(e) = check_bitwise(
                            w.as_slice(),
                            y.as_slice(),
                            &format!("{ctx}: level {lvl} vs sequential"),
                        ) {
                            report.failures.push(e);
                        }
                    }

                    // Fused, forced multi-chunk wavefront: still bitwise.
                    let plan = PowerPlan::with_chunk_rows(a, 3);
                    let mut fused: Vec<MultiVec> =
                        (0..k).map(|_| MultiVec::zeros(n, m)).collect();
                    spmpv_powers_with_plan(kind, a, &plan, &x, &mut fused);
                    for (lvl, (y, w)) in fused.iter().zip(&seq).enumerate() {
                        report.checks += 1;
                        if let Err(e) = check_bitwise(
                            w.as_slice(),
                            y.as_slice(),
                            &format!(
                                "{ctx}: level {lvl} forced-chunk vs sequential"
                            ),
                        ) {
                            report.failures.push(e);
                        }
                    }

                    // Across kinds: deepest level tolerance-equal to the
                    // scalar chain.
                    if kind != KernelKind::Scalar {
                        report.checks += 1;
                        if let Err(e) = tol.check_slices(
                            scalar_chain[k - 1].as_slice(),
                            outs[k - 1].as_slice(),
                            &format!("{ctx}: deepest level vs scalar chain"),
                        ) {
                            report.failures.push(e);
                        }
                    }
                }
            }
        }
    }

    report
}
