//! The differential runner: every backend × every corpus entry ×
//! every `m`, against the dense reference, under one tolerance model.
//!
//! For each `(entry, m)` cell the runner:
//!
//! 1. expands the entry to a [`Dense`] reference and computes the
//!    reference product with naive triple loops;
//! 2. cross-checks the symmetric half-storage expansion against the
//!    full expansion **exactly** (they are assembled independently, so
//!    any difference is a conversion bug, not roundoff);
//! 3. runs every supporting backend, checking (a) tolerance agreement
//!    with the reference, (b) bitwise equality across two repeated
//!    runs of the same backend, and (c) bitwise equality inside each
//!    declared equivalence group.
//!
//! Failures are collected, not panicked, so one run reports every
//! disagreement in the matrix of backends at once.

use crate::backends::GspmvBackend;
use crate::corpus::{pseudo_multivec, CorpusEntry, Scale};
use crate::reference::Dense;
use crate::tolerance::{check_bitwise, TolModel};
use std::collections::HashMap;

/// Widths the nonsymmetric *solver* differential sweeps. Much smaller
/// than [`crate::corpus::m_values`]: every cell pays a direct dense
/// solve, and the kernel-level `m` coverage already comes from the
/// GSPMV sweep over the same matrices.
const NONSYM_SOLVER_MS: [usize; 4] = [1, 2, 4, 8];

/// Row-count ceiling for direct-solve references in the nonsym solver
/// differential. Above this the O(n³) Gaussian elimination dominates
/// the whole oracle run; the recomputed true-residual check inside the
/// bookkeeping invariant gates correctness instead.
const NONSYM_DIRECT_LIMIT: usize = 600;

/// Outcome of a differential sweep.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of individual comparisons performed.
    pub checks: usize,
    /// Human-readable description of every failed comparison.
    pub failures: Vec<String>,
}

impl Report {
    /// Panics with the full failure list if anything disagreed.
    pub fn assert_ok(&self) {
        assert!(
            self.failures.is_empty(),
            "{} of {} differential checks failed:\n{}",
            self.failures.len(),
            self.checks,
            self.failures.join("\n")
        );
    }
}

/// Runs the full differential: `backends × corpus(scale) × m_values`.
pub fn run_differential(
    backends: &[Box<dyn GspmvBackend>],
    entries: &[CorpusEntry],
    ms: &[usize],
    tol: &TolModel,
) -> Report {
    let mut report = Report::default();

    for (ei, entry) in entries.iter().enumerate() {
        let dense = Dense::from_bcrs(&entry.matrix);

        // Independent expansion of the half storage must match the
        // full expansion bit for bit: both copy the same stored
        // scalars, no arithmetic involved.
        if let Some(s) = &entry.symmetric {
            let dense_sym = Dense::from_symmetric(s);
            report.checks += 1;
            if let Err(e) = check_bitwise(
                &dense.data,
                &dense_sym.data,
                &format!("{}: symmetric expansion", entry.name),
            ) {
                report.failures.push(e);
            }
        }

        for (mi, &m) in ms.iter().enumerate() {
            let x = pseudo_multivec(
                entry.matrix.n_cols(),
                m,
                0x9e37_79b9 ^ ((ei as u64) << 32) ^ mi as u64,
            );
            let want = dense.gspmv(&x);

            // name → (group key, output) for the group check below.
            let mut group_outputs: HashMap<String, (String, Vec<f64>)> =
                HashMap::new();

            for backend in backends {
                if !backend.supports(entry) || !backend.wants_m(m) {
                    continue;
                }
                let ctx = format!("{} m={} {}", entry.name, m, backend.name());

                let y = backend.run(entry, &x);
                report.checks += 1;
                if let Err(e) =
                    tol.check_slices(want.as_slice(), y.as_slice(), &ctx)
                {
                    report.failures.push(e);
                }

                // Determinism: a second run must be bit-identical.
                let y2 = backend.run(entry, &x);
                report.checks += 1;
                if let Err(e) = check_bitwise(
                    y.as_slice(),
                    y2.as_slice(),
                    &format!("{ctx}: repeated run"),
                ) {
                    report.failures.push(e);
                }

                if let Some(group) = backend.bitwise_group() {
                    match group_outputs.get(&group) {
                        None => {
                            group_outputs.insert(
                                group.clone(),
                                (backend.name(), y.as_slice().to_vec()),
                            );
                        }
                        Some((first_name, first)) => {
                            report.checks += 1;
                            if let Err(e) = check_bitwise(
                                first,
                                y.as_slice(),
                                &format!(
                                    "{ctx}: bitwise group `{group}` vs {first_name}"
                                ),
                            ) {
                                report.failures.push(e);
                            }
                        }
                    }
                }
            }
        }
    }

    report
}

/// Convenience wrapper: standard backends over the standard corpus.
pub fn run_standard(scale: Scale) -> Report {
    run_differential(
        &crate::backends::standard_backends(),
        &crate::corpus::corpus(scale),
        &crate::corpus::m_values(scale),
        &TolModel::KERNEL,
    )
}

/// Fused power depths the SpMPV differential sweeps: a degenerate
/// depth, a two-level wavefront, and the Chebyshev grouping depth.
const POWER_DEPTHS: [usize; 3] = [1, 2, 4];

/// The SpMPV power differential: for every *square* corpus entry,
/// depth `k`, and available backend kind, the fused matrix-power
/// wavefront must be **bitwise identical** to `k` repeated serial
/// GSPMV sweeps of the same kind — the definition of the power chain —
/// both under the default plan and under a deliberately tiny chunk
/// size that forces a multi-chunk anti-diagonal wavefront. Across
/// kinds, the deepest level must stay tolerance-equal (power chains
/// amplify kernel-level reassociation, so the cross-kind check uses
/// the scalar chain as reference).
///
/// This cannot ride on [`run_differential`]: its runner assumes every
/// backend computes `Y = A·X` against one dense reference, while the
/// power backends compute `A^k·X` per kind.
pub fn run_power_differential(scale: Scale) -> Report {
    use mrhs_sparse::{
        backend_available, gspmv_serial_with, spmpv_powers_with,
        spmpv_powers_with_plan, KernelKind, MultiVec, PowerPlan,
    };

    let entries = crate::corpus::corpus(scale);
    let ms = crate::corpus::m_values(scale);
    let tol = TolModel::KERNEL;
    let mut report = Report::default();

    // `k` sequential sweeps through one kind's serial kernel.
    let chain = |kind: KernelKind, a, x: &MultiVec, k: usize| -> Vec<MultiVec> {
        let n = x.n();
        let m = x.m();
        let mut seq = Vec::with_capacity(k);
        let mut prev = x.clone();
        for _ in 0..k {
            let mut y = MultiVec::zeros(n, m);
            gspmv_serial_with(kind, a, &prev, &mut y);
            prev = y.clone();
            seq.push(y);
        }
        seq
    };

    for (ei, entry) in entries.iter().enumerate() {
        let a = &entry.matrix;
        if a.nb_rows() != a.nb_cols() {
            continue; // powers need a square operator
        }
        let n = a.n_rows();
        for (mi, &m) in ms.iter().enumerate() {
            let x = pseudo_multivec(
                n,
                m,
                0x51ed_2701 ^ ((ei as u64) << 32) ^ mi as u64,
            );
            for &k in &POWER_DEPTHS {
                let scalar_chain = chain(KernelKind::Scalar, a, &x, k);
                for kind in KernelKind::ALL {
                    if !backend_available(kind) {
                        continue;
                    }
                    let ctx = format!("{} m={m} k={k} {kind:?}", entry.name);
                    let seq = if kind == KernelKind::Scalar {
                        scalar_chain.clone()
                    } else {
                        chain(kind, a, &x, k)
                    };

                    // Fused, default plan: bitwise per level.
                    let mut outs: Vec<MultiVec> =
                        (0..k).map(|_| MultiVec::zeros(n, m)).collect();
                    spmpv_powers_with(kind, a, &x, &mut outs);
                    for (lvl, (y, w)) in outs.iter().zip(&seq).enumerate() {
                        report.checks += 1;
                        if let Err(e) = check_bitwise(
                            w.as_slice(),
                            y.as_slice(),
                            &format!("{ctx}: level {lvl} vs sequential"),
                        ) {
                            report.failures.push(e);
                        }
                    }

                    // Fused, forced multi-chunk wavefront: still bitwise.
                    let plan = PowerPlan::with_chunk_rows(a, 3);
                    let mut fused: Vec<MultiVec> =
                        (0..k).map(|_| MultiVec::zeros(n, m)).collect();
                    spmpv_powers_with_plan(kind, a, &plan, &x, &mut fused);
                    for (lvl, (y, w)) in fused.iter().zip(&seq).enumerate() {
                        report.checks += 1;
                        if let Err(e) = check_bitwise(
                            w.as_slice(),
                            y.as_slice(),
                            &format!(
                                "{ctx}: level {lvl} forced-chunk vs sequential"
                            ),
                        ) {
                            report.failures.push(e);
                        }
                    }

                    // Across kinds: deepest level tolerance-equal to the
                    // scalar chain.
                    if kind != KernelKind::Scalar {
                        report.checks += 1;
                        if let Err(e) = tol.check_slices(
                            scalar_chain[k - 1].as_slice(),
                            outs[k - 1].as_slice(),
                            &format!("{ctx}: deepest level vs scalar chain"),
                        ) {
                            report.failures.push(e);
                        }
                    }
                }
            }
        }
    }

    report
}

/// The nonsymmetric differential: GSPMV and block-BiCGStab checks over
/// [`crate::corpus::nonsym_corpus`].
///
/// This cannot ride on [`run_differential`] either: the nonsym corpus
/// entries carry no symmetric half-storage (there is nothing symmetric
/// to store), and the solver leg compares *iterative solutions* against
/// a direct dense solve rather than products against a dense product.
///
/// Per entry the runner checks:
///
/// * **GSPMV** (every `m` in the standard grid, every available
///   [`KernelKind`]) — serial kernel vs. the dense reference under
///   [`TolModel::KERNEL`], repeated-run bitwise, and forced-chunk
///   full-storage sweeps bitwise against serial (the determinism
///   contract does not care that the operator is nonsymmetric);
/// * **solver** (the trimmed [`NONSYM_SOLVER_MS`] grid, both
///   [`BicgstabVariant`]s) — honest bookkeeping via
///   [`crate::invariants::check_block_bicgstab_bookkeeping`] always,
///   plus repeated-run bitwise determinism; on well-conditioned entries
///   additionally convergence, agreement with a direct dense solve
///   under [`TolModel::NONSYM_SOLVER`], and agreement with the naive
///   dense block reference. Near-breakdown entries are only required to
///   report an honest outcome (converged, breakdown, or iteration cap)
///   — never a silent wrong answer. Direct-solve comparisons are
///   skipped above [`NONSYM_DIRECT_LIMIT`] rows, where the recomputed
///   true-residual gate inside the bookkeeping check stands in for the
///   O(n³) reference.
pub fn run_nonsym_differential(scale: Scale) -> Report {
    use crate::corpus::nonsym_corpus;
    use crate::invariants::check_block_bicgstab_bookkeeping;
    use crate::reference::{gauss_solve_multi, naive_block_bicgstab};
    use mrhs_solvers::{
        block_bicgstab_with_options, BicgstabVariant, BlockBicgstabOptions,
        SolveConfig,
    };
    use mrhs_sparse::{
        backend_available, gspmv_chunked_with, gspmv_serial_with, KernelKind,
        MultiVec,
    };

    let entries = nonsym_corpus(scale);
    let ms = crate::corpus::m_values(scale);
    let kernel_tol = TolModel::KERNEL;
    let solver_tol = TolModel::NONSYM_SOLVER;
    let mut report = Report::default();

    for (ei, entry) in entries.iter().enumerate() {
        let a = &entry.matrix;
        let n = a.n_rows();
        let dense = Dense::from_bcrs(a);

        // ---- GSPMV leg -------------------------------------------------
        for (mi, &m) in ms.iter().enumerate() {
            let x = pseudo_multivec(
                a.n_cols(),
                m,
                0x6e6f_6e73_796d_0001 ^ ((ei as u64) << 32) ^ mi as u64,
            );
            let want = dense.gspmv(&x);
            for kind in KernelKind::ALL {
                if !backend_available(kind) {
                    continue;
                }
                let ctx = format!("nonsym {} m={m} {kind:?}", entry.name);

                let mut y = MultiVec::zeros(n, m);
                gspmv_serial_with(kind, a, &x, &mut y);
                report.checks += 1;
                if let Err(e) =
                    kernel_tol.check_slices(want.as_slice(), y.as_slice(), &ctx)
                {
                    report.failures.push(e);
                }

                let mut y2 = MultiVec::zeros(n, m);
                gspmv_serial_with(kind, a, &x, &mut y2);
                report.checks += 1;
                if let Err(e) = check_bitwise(
                    y.as_slice(),
                    y2.as_slice(),
                    &format!("{ctx}: repeated run"),
                ) {
                    report.failures.push(e);
                }

                // Full-storage chunked sweeps keep per-row summation
                // order, so any chunk count is bitwise-equal to serial.
                for nchunks in [2, 3, 7] {
                    let mut yc = MultiVec::zeros(n, m);
                    gspmv_chunked_with(kind, a, &x, &mut yc, nchunks);
                    report.checks += 1;
                    if let Err(e) = check_bitwise(
                        y.as_slice(),
                        yc.as_slice(),
                        &format!("{ctx}: {nchunks}-chunk vs serial"),
                    ) {
                        report.failures.push(e);
                    }
                }
            }
        }

        // ---- solver leg ------------------------------------------------
        for (mi, &m) in NONSYM_SOLVER_MS.iter().enumerate() {
            let b = pseudo_multivec(
                n,
                m,
                0x6e6f_6e73_796d_0002 ^ ((ei as u64) << 32) ^ mi as u64,
            );
            // A block width approaching the operator dimension saturates
            // the block Krylov space within an iteration or two — the
            // rank-deficient `R̃ᵀV` breakdown is then the *correct*
            // outcome, so those cells are judged like the near-breakdown
            // entries: honest reporting, not convergence.
            let stress = entry.near_breakdown || 3 * m > n;
            let direct = if stress || n > NONSYM_DIRECT_LIMIT {
                None
            } else {
                gauss_solve_multi(&dense, &b)
            };

            for variant in [BicgstabVariant::Classic, BicgstabVariant::Reordered] {
                let ctx = format!("nonsym {} m={m} {variant:?}", entry.name);
                let opts = BlockBicgstabOptions {
                    solve: SolveConfig { tol: 1e-10, max_iter: 4000 },
                    variant,
                    ..Default::default()
                };
                let mut x = MultiVec::zeros(n, m);
                let result = block_bicgstab_with_options(a, &b, &mut x, &opts);

                // Bookkeeping must be honest on every entry, breakdown
                // stress cases included.
                report.checks += 1;
                if let Err(e) = check_block_bicgstab_bookkeeping(
                    &dense,
                    &b,
                    &x,
                    opts.solve.tol,
                    &result,
                ) {
                    report.failures.push(format!("{ctx}: bookkeeping: {e}"));
                }

                // Determinism: the whole solve is bitwise repeatable.
                let mut x2 = MultiVec::zeros(n, m);
                let result2 = block_bicgstab_with_options(a, &b, &mut x2, &opts);
                report.checks += 1;
                if let Err(e) = check_bitwise(
                    x.as_slice(),
                    x2.as_slice(),
                    &format!("{ctx}: repeated solve"),
                ) {
                    report.failures.push(e);
                }
                report.checks += 1;
                if result.iterations != result2.iterations
                    || result.converged != result2.converged
                    || result.breakdown != result2.breakdown
                {
                    report.failures.push(format!(
                        "{ctx}: repeated solve bookkeeping diverged: \
                         {:?}/{}/{:?} vs {:?}/{}/{:?}",
                        result.iterations,
                        result.converged,
                        result.breakdown,
                        result2.iterations,
                        result2.converged,
                        result2.breakdown,
                    ));
                }

                if stress {
                    // An honest outcome is: converged, a classified
                    // breakdown, or the iteration cap — never a claim
                    // of convergence the bookkeeping check above would
                    // have caught.
                    report.checks += 1;
                    if !result.converged
                        && result.breakdown.is_none()
                        && result.iterations < opts.solve.max_iter
                    {
                        report.failures.push(format!(
                            "{ctx}: stopped at {} of {} iterations with \
                             neither convergence nor a breakdown report",
                            result.iterations, opts.solve.max_iter,
                        ));
                    }
                    continue;
                }

                report.checks += 1;
                if !result.converged {
                    report.failures.push(format!(
                        "{ctx}: failed to converge in {} iterations \
                         (breakdown {:?}, norms {:?})",
                        result.iterations, result.breakdown, result.residual_norms,
                    ));
                    continue;
                }

                if let Some(direct) = &direct {
                    report.checks += 1;
                    if let Err(e) = solver_tol.check_slices(
                        direct.as_slice(),
                        x.as_slice(),
                        &format!("{ctx}: vs direct solve"),
                    ) {
                        report.failures.push(e);
                    }
                }
            }

            // Naive dense block reference: same algorithm, independent
            // plain-loop implementation — both must land on the direct
            // solution.
            if let Some(direct) = &direct {
                let mut xn = MultiVec::zeros(n, m);
                let naive = naive_block_bicgstab(&dense, &b, &mut xn, 1e-10, 4000);
                report.checks += 1;
                if !naive.converged {
                    report.failures.push(format!(
                        "nonsym {} m={m}: naive reference failed to \
                         converge in {} iterations",
                        entry.name, naive.iterations,
                    ));
                } else if let Err(e) = solver_tol.check_slices(
                    direct.as_slice(),
                    xn.as_slice(),
                    &format!("nonsym {} m={m}: naive vs direct", entry.name),
                ) {
                    report.failures.push(e);
                }
            }
        }
    }

    report
}
