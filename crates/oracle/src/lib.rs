//! Differential oracle harness — the one conformance layer every GSPMV
//! backend and solver in this workspace must agree with.
//!
//! The workspace now has four ways to compute `Y = R·X` (serial
//! full-storage, parallel full-storage, parallel symmetric
//! half-storage, and the distributed engine) and three solver paths on
//! top of them. Before this crate each of them validated itself with
//! its own hand-rolled dense helper; kernel variants are known to
//! drift apart numerically in exactly the `m`/layout corners the
//! kernels specialize on, so the references are centralized here and
//! every backend is run through one differential gate:
//!
//! * [`reference`] — naive, obviously-correct dense implementations
//!   (triple-loop GSPMV, Gaussian elimination, textbook block CG, a
//!   Jacobi eigensolver for `√R·z`, and a dense MRHS chunk step).
//!   Nothing in this module is unrolled, strip-mined, or threaded.
//! * [`tolerance`] — the single relative/ULP comparison model used by
//!   every check, instead of per-test ad-hoc epsilons.
//! * [`corpus`] — deterministic seeded generators for the pathological
//!   matrix corpus: empty rows, dense block rows, 1×1 and single-block
//!   matrices, `nb < p`, non-symmetric perturbations of SPD matrices —
//!   plus the genuinely nonsymmetric arm ([`corpus::nonsym_corpus`]):
//!   convection–diffusion stencils, skew perturbations of the SPD
//!   corpus, and near-breakdown skew-dominant operators that gate the
//!   block-BiCGStab path.
//! * [`backends`] — the registry of GSPMV implementations under test,
//!   each normalized to "multivector in, multivector out, original row
//!   ordering".
//! * [`runner`] — executes every registered backend over the full
//!   corpus × `m` grid, checking agreement with the dense reference,
//!   repeated-run bitwise determinism, and bitwise agreement inside
//!   declared equivalence groups.
//! * [`invariants`] — structural checks: symmetry residuals of
//!   assembled resistance matrices and block-CG bookkeeping
//!   consistency (reported residuals vs. recomputed ones, breakdown
//!   reporting, A-norm error monotonicity).
//! * [`fixtures`] — small synthetic [`mrhs_core::ResistanceSystem`]s
//!   for end-to-end driver differentials.
//!
//! The integration suites of `sparse`, `solvers`, `cluster`, and
//! `stokes` consume these references as dev-dependencies, so a new
//! kernel registers here once and is covered everywhere. See DESIGN.md
//! §11 for the testing-strategy overview.

pub mod backends;
pub mod corpus;
pub mod fixtures;
pub mod invariants;
pub mod reference;
pub mod runner;
pub mod tolerance;

pub use backends::{standard_backends, GspmvBackend};
pub use corpus::{
    corpus, m_values, nonsym_corpus, pseudo_multivec, CorpusEntry, NonsymEntry,
    Scale,
};
pub use invariants::{
    check_block_bicgstab_bookkeeping, check_block_cg_bookkeeping,
};
pub use reference::{
    naive_bicgstab, naive_block_bicgstab, Dense, NaiveBicgstab, NaiveBlockBicgstab,
};
pub use runner::{
    run_differential, run_nonsym_differential, run_power_differential,
    run_standard, Report,
};
pub use tolerance::TolModel;
