//! Shared synthetic [`ResistanceSystem`]s for end-to-end driver
//! differentials. The production crates each carried a private copy of
//! a fixture like this; the oracle owns the canonical one so the naive
//! chunk reference and the production driver can run the *same*
//! system.

use mrhs_core::ResistanceSystem;
use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

/// Particles on a line with separation-dependent spring couplings, so
/// the resistance matrix genuinely evolves with the configuration. The
/// assembly is exactly symmetric (built from `add_symmetric_pair`) and
/// strictly diagonally dominant, hence SPD.
pub struct LineSystem {
    positions: Vec<f64>,
    dt: f64,
    /// Constant external force per scalar DOF (0 by default); lets
    /// tests exercise the `add_external_forces` path.
    pub external_force: f64,
}

impl LineSystem {
    pub fn new(n_particles: usize) -> Self {
        LineSystem {
            positions: (0..n_particles).map(|i| i as f64).collect(),
            dt: 0.05,
            external_force: 0.0,
        }
    }

    /// Current particle coordinates (the full observable state).
    pub fn positions(&self) -> &[f64] {
        &self.positions
    }
}

impl ResistanceSystem for LineSystem {
    fn dim(&self) -> usize {
        self.positions.len() * 3
    }

    fn assemble(&self) -> BcrsMatrix {
        let nb = self.positions.len();
        let mut t = BlockTripletBuilder::square(nb);
        for i in 0..nb {
            t.add(i, i, Block3::scaled_identity(4.0));
            if i + 1 < nb {
                let d = (self.positions[i + 1] - self.positions[i]).abs();
                let w = 1.0 / (0.5 + d * d);
                t.add(i, i, Block3::scaled_identity(w));
                t.add(i + 1, i + 1, Block3::scaled_identity(w));
                t.add_symmetric_pair(i, i + 1, Block3::scaled_identity(-w));
            }
        }
        t.build()
    }

    fn advance(&mut self, u: &[f64], dt: f64) {
        for (i, p) in self.positions.iter_mut().enumerate() {
            *p += dt * u[3 * i];
        }
    }

    fn dt(&self) -> f64 {
        self.dt
    }

    fn save_state(&self) -> Vec<f64> {
        self.positions.clone()
    }

    fn restore_state(&mut self, state: &[f64]) {
        self.positions.copy_from_slice(state);
    }

    fn add_external_forces(&self, f: &mut [f64]) {
        if self.external_force != 0.0 {
            for v in f.iter_mut() {
                *v += self.external_force;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::symmetry_residual;

    #[test]
    fn line_system_assembles_symmetric_spd() {
        let sys = LineSystem::new(9);
        let a = sys.assemble();
        assert_eq!(a.n_rows(), 27);
        assert_eq!(symmetry_residual(&a), 0.0);
    }

    #[test]
    fn advance_and_restore_round_trip() {
        let mut sys = LineSystem::new(5);
        let saved = sys.save_state();
        let u = vec![1.0; sys.dim()];
        sys.advance(&u, 0.1);
        assert_ne!(sys.positions()[0], saved[0]);
        sys.restore_state(&saved);
        assert_eq!(sys.positions(), &saved[..]);
    }
}
