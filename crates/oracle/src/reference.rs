//! Naive, obviously-correct dense references.
//!
//! Everything here is written as the plainest possible loops: no
//! unrolling, no strip mining, no threading, no monomorphized `m`.
//! These implementations are the ground truth the optimized kernels
//! are differenced against, so clarity beats speed everywhere.

// Index-explicit loops are the house style here: the references must
// read like the formulas they implement, not like iterator pipelines.
#![allow(clippy::needless_range_loop)]

use mrhs_core::{NoiseSource, ResistanceSystem};
use mrhs_solvers::LinearOperator;
use mrhs_sparse::{BcrsMatrix, MultiVec, SymmetricBcrs, BLOCK_DIM};

/// A dense row-major matrix.
#[derive(Clone, Debug)]
pub struct Dense {
    pub n_rows: usize,
    pub n_cols: usize,
    pub data: Vec<f64>,
}

impl Dense {
    /// Expands a BCRS matrix scalar-by-scalar.
    pub fn from_bcrs(a: &BcrsMatrix) -> Dense {
        let (nr, nc) = (a.n_rows(), a.n_cols());
        let mut data = vec![0.0; nr * nc];
        for bi in 0..a.nb_rows() {
            let (cols, blocks) = a.block_row(bi);
            for (c, b) in cols.iter().zip(blocks) {
                let bj = *c as usize;
                for i in 0..BLOCK_DIM {
                    for j in 0..BLOCK_DIM {
                        data[(bi * BLOCK_DIM + i) * nc + bj * BLOCK_DIM + j] =
                            b.get(i, j);
                    }
                }
            }
        }
        Dense { n_rows: nr, n_cols: nc, data }
    }

    /// Expands symmetric half storage independently of any kernel:
    /// diagonal blocks, the stored upper blocks, and their transposes
    /// mirrored below the diagonal. Cross-checking this against
    /// [`Dense::from_bcrs`] of the full matrix validates
    /// `SymmetricBcrs::from_full` itself.
    pub fn from_symmetric(s: &SymmetricBcrs) -> Dense {
        let n = s.n_rows();
        let mut data = vec![0.0; n * n];
        for (bi, d) in s.diag_blocks().iter().enumerate() {
            for i in 0..BLOCK_DIM {
                for j in 0..BLOCK_DIM {
                    data[(bi * BLOCK_DIM + i) * n + bi * BLOCK_DIM + j] =
                        d.get(i, j);
                }
            }
        }
        let (row_ptr, col_idx, blocks) = s.upper_parts();
        for bi in 0..s.nb_rows() {
            for k in row_ptr[bi]..row_ptr[bi + 1] {
                let bj = col_idx[k] as usize;
                let b = &blocks[k];
                for i in 0..BLOCK_DIM {
                    for j in 0..BLOCK_DIM {
                        data[(bi * BLOCK_DIM + i) * n + bj * BLOCK_DIM + j] =
                            b.get(i, j);
                        data[(bj * BLOCK_DIM + j) * n + bi * BLOCK_DIM + i] =
                            b.get(i, j);
                    }
                }
            }
        }
        Dense { n_rows: n, n_cols: n, data }
    }

    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n_cols + j]
    }

    /// `y = A·x`, one multiply-add at a time.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols);
        let mut y = vec![0.0; self.n_rows];
        for i in 0..self.n_rows {
            let mut acc = 0.0;
            for j in 0..self.n_cols {
                acc += self.at(i, j) * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// `Y = A·X` column by column — the GSPMV reference.
    pub fn gspmv(&self, x: &MultiVec) -> MultiVec {
        assert_eq!(x.n(), self.n_cols);
        let m = x.m();
        let mut y = MultiVec::zeros(self.n_rows, m);
        for col in 0..m {
            let xc = x.column(col);
            let yc = self.matvec(&xc);
            y.set_column(col, &yc);
        }
        y
    }

    /// `max |a_ij − a_ji|` — the symmetry residual (square only).
    pub fn symmetry_residual(&self) -> f64 {
        assert_eq!(self.n_rows, self.n_cols);
        let mut worst = 0.0f64;
        for i in 0..self.n_rows {
            for j in i + 1..self.n_cols {
                worst = worst.max((self.at(i, j) - self.at(j, i)).abs());
            }
        }
        worst
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
    }
}

/// The dense reference participates in solver differentials directly.
impl LinearOperator for Dense {
    fn dim(&self) -> usize {
        assert_eq!(self.n_rows, self.n_cols);
        self.n_rows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.matvec(x));
    }
}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` on a (numerically) singular matrix.
pub fn gauss_solve(a: &Dense, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.n_rows, a.n_cols);
    let n = a.n_rows;
    assert_eq!(b.len(), n);
    let mut m = a.data.clone();
    let mut x = b.to_vec();
    for col in 0..n {
        let mut piv = col;
        for r in col + 1..n {
            if m[r * n + col].abs() > m[piv * n + col].abs() {
                piv = r;
            }
        }
        if m[piv * n + col].abs() < 1e-300 {
            return None;
        }
        if piv != col {
            for j in 0..n {
                m.swap(col * n + j, piv * n + j);
            }
            x.swap(col, piv);
        }
        for r in col + 1..n {
            let f = m[r * n + col] / m[col * n + col];
            if f != 0.0 {
                for j in col..n {
                    m[r * n + j] -= f * m[col * n + j];
                }
                x[r] -= f * x[col];
            }
        }
    }
    for col in (0..n).rev() {
        let mut acc = x[col];
        for j in col + 1..n {
            acc -= m[col * n + j] * x[j];
        }
        x[col] = acc / m[col * n + col];
    }
    Some(x)
}

/// Direct multi-RHS solve: [`gauss_solve`] per column.
pub fn gauss_solve_multi(a: &Dense, b: &MultiVec) -> Option<MultiVec> {
    let mut x = MultiVec::zeros(b.n(), b.m());
    for col in 0..b.m() {
        let xc = gauss_solve(a, &b.column(col))?;
        x.set_column(col, &xc);
    }
    Some(x)
}

/// Outcome of [`naive_block_cg`].
#[derive(Clone, Debug)]
pub struct NaiveBlockCg {
    pub iterations: usize,
    pub converged: bool,
    pub residual_norms: Vec<f64>,
}

/// Textbook block conjugate gradients (O'Leary 1980), dense and naive:
/// explicit `m×m` Gram matrices, Gaussian elimination for the small
/// solves, no symmetrization or ridge stabilization, no fused updates.
pub fn naive_block_cg(
    a: &Dense,
    b: &MultiVec,
    x: &mut MultiVec,
    tol: f64,
    max_iter: usize,
) -> NaiveBlockCg {
    let n = a.dim();
    let m = b.m();
    assert_eq!(b.n(), n);
    assert_eq!(x.shape(), (n, m));

    let small = |g: &[f64]| Dense { n_rows: m, n_cols: m, data: g.to_vec() };
    let gram = |u: &MultiVec, v: &MultiVec| -> Vec<f64> {
        // G[i][j] = u_i · v_j, one dot product at a time.
        let mut g = vec![0.0; m * m];
        for i in 0..m {
            let ui = u.column(i);
            for j in 0..m {
                let vj = v.column(j);
                g[i * m + j] = ui.iter().zip(&vj).map(|(p, q)| p * q).sum::<f64>();
            }
        }
        g
    };
    let col_norms = |u: &MultiVec| -> Vec<f64> {
        (0..m)
            .map(|j| u.column(j).iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect()
    };

    let thresholds: Vec<f64> =
        col_norms(b).iter().map(|bn| tol * bn.max(f64::MIN_POSITIVE)).collect();

    // R = B − A·X, P = R.
    let ax = a.gspmv(x);
    let mut r = b.clone();
    for (rv, av) in r.as_mut_slice().iter_mut().zip(ax.as_slice()) {
        *rv -= av;
    }
    let mut p = r.clone();
    let mut iterations = 0;
    let done = |r: &MultiVec| {
        col_norms(r).iter().zip(&thresholds).all(|(rn, th)| rn <= th)
    };

    while iterations < max_iter && !done(&r) {
        let q = a.gspmv(&p);
        // α solves (PᵀQ)·α = RᵀR.
        let rho = gram(&r, &r);
        let pq = gram(&p, &q);
        let Some(alpha) =
            gauss_solve_multi(&small(&pq), &MultiVec::from_flat(m, m, rho.clone()))
        else {
            break; // rank-deficient block residual: genuine breakdown
        };
        // X += P·α, R −= Q·α, column by column.
        for j in 0..m {
            for i in 0..n {
                let mut xs = 0.0;
                let mut rs = 0.0;
                for k in 0..m {
                    xs += p.get(i, k) * alpha.get(k, j);
                    rs += q.get(i, k) * alpha.get(k, j);
                }
                *x.get_mut(i, j) += xs;
                *r.get_mut(i, j) -= rs;
            }
        }
        iterations += 1;
        if done(&r) {
            break;
        }
        // β solves ρ_old·β = ρ_new, then P ← R + P·β.
        let rho_new = gram(&r, &r);
        let Some(beta) =
            gauss_solve_multi(&small(&rho), &MultiVec::from_flat(m, m, rho_new))
        else {
            break;
        };
        let mut p_next = r.clone();
        for j in 0..m {
            for i in 0..n {
                let mut acc = 0.0;
                for k in 0..m {
                    acc += p.get(i, k) * beta.get(k, j);
                }
                *p_next.get_mut(i, j) += acc;
            }
        }
        p = p_next;
    }

    let norms = col_norms(&r);
    let converged = norms.iter().zip(&thresholds).all(|(rn, th)| rn <= th);
    NaiveBlockCg { iterations, converged, residual_norms: norms }
}

/// Outcome of [`naive_bicgstab`].
#[derive(Clone, Debug)]
pub struct NaiveBicgstab {
    pub iterations: usize,
    pub converged: bool,
    pub residual_norm: f64,
}

/// Textbook BiCGStab (van der Vorst 1992), dense and naive: explicit
/// dot products, no fused updates, the shadow residual frozen at `r₀`.
/// Stops on the tolerance, the iteration cap, or a vanishing
/// denominator (reported as non-convergence — the reference does not
/// classify breakdowns, it only refuses to divide by zero).
pub fn naive_bicgstab(
    a: &Dense,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> NaiveBicgstab {
    let n = a.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let dot = |u: &[f64], v: &[f64]| -> f64 {
        let mut acc = 0.0;
        for i in 0..n {
            acc += u[i] * v[i];
        }
        acc
    };

    let b_norm = dot(b, b).sqrt();
    let threshold = tol * b_norm.max(f64::MIN_POSITIVE);
    let ax = a.matvec(x);
    let mut r: Vec<f64> = (0..n).map(|i| b[i] - ax[i]).collect();
    let r_tilde = r.clone();
    let mut p = r.clone();
    let mut rho = dot(&r_tilde, &r);
    let mut iterations = 0;
    let mut residual_norm = dot(&r, &r).sqrt();

    while iterations < max_iter && residual_norm > threshold {
        let v = a.matvec(&p);
        let rv = dot(&r_tilde, &v);
        if rv == 0.0 || !rv.is_finite() {
            break;
        }
        let alpha = rho / rv;
        let s: Vec<f64> = (0..n).map(|i| r[i] - alpha * v[i]).collect();
        let s_norm = dot(&s, &s).sqrt();
        if s_norm <= threshold {
            for i in 0..n {
                x[i] += alpha * p[i];
            }
            iterations += 1;
            residual_norm = s_norm;
            break;
        }
        let t = a.matvec(&s);
        let tt = dot(&t, &t);
        if tt == 0.0 || !tt.is_finite() {
            break;
        }
        let omega = dot(&t, &s) / tt;
        if omega == 0.0 || !omega.is_finite() {
            break;
        }
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
            r[i] = s[i] - omega * t[i];
        }
        iterations += 1;
        residual_norm = dot(&r, &r).sqrt();
        let rho_new = dot(&r_tilde, &r);
        if rho_new == 0.0 || !rho_new.is_finite() {
            break;
        }
        let beta = (rho_new / rho) * (alpha / omega);
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        rho = rho_new;
    }

    NaiveBicgstab {
        iterations,
        converged: residual_norm <= threshold,
        residual_norm,
    }
}

/// Outcome of [`naive_block_bicgstab`].
#[derive(Clone, Debug)]
pub struct NaiveBlockBicgstab {
    pub iterations: usize,
    pub converged: bool,
    pub residual_norms: Vec<f64>,
}

/// Textbook block BiCGStab (El Guennouni–Jbilou–Sadok 2003), dense and
/// naive: explicit `m×m` shadow Grams, Gaussian elimination for the
/// coefficient solves, a scalar Frobenius stabilizer, column-by-column
/// updates. This is the ground truth the production
/// `block_bicgstab` (classic *and* reordered schedules) is differenced
/// against.
pub fn naive_block_bicgstab(
    a: &Dense,
    b: &MultiVec,
    x: &mut MultiVec,
    tol: f64,
    max_iter: usize,
) -> NaiveBlockBicgstab {
    let n = a.dim();
    let m = b.m();
    assert_eq!(b.n(), n);
    assert_eq!(x.shape(), (n, m));

    let small = |g: &[f64]| Dense { n_rows: m, n_cols: m, data: g.to_vec() };
    let gram = |u: &MultiVec, v: &MultiVec| -> Vec<f64> {
        let mut g = vec![0.0; m * m];
        for i in 0..m {
            let ui = u.column(i);
            for j in 0..m {
                let vj = v.column(j);
                g[i * m + j] = ui.iter().zip(&vj).map(|(p, q)| p * q).sum::<f64>();
            }
        }
        g
    };
    let col_norms = |u: &MultiVec| -> Vec<f64> {
        (0..m)
            .map(|j| u.column(j).iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect()
    };
    // C = U·W for n×m U and m×m W, column by column.
    let mul_dense = |u: &MultiVec, w: &MultiVec| -> MultiVec {
        let mut c = MultiVec::zeros(n, m);
        for j in 0..m {
            for i in 0..n {
                let mut acc = 0.0;
                for k in 0..m {
                    acc += u.get(i, k) * w.get(k, j);
                }
                *c.get_mut(i, j) = acc;
            }
        }
        c
    };
    let frob = |u: &MultiVec, v: &MultiVec| -> f64 {
        let mut acc = 0.0;
        for (p, q) in u.as_slice().iter().zip(v.as_slice()) {
            acc += p * q;
        }
        acc
    };

    let thresholds: Vec<f64> =
        col_norms(b).iter().map(|bn| tol * bn.max(f64::MIN_POSITIVE)).collect();
    let done =
        |norms: &[f64]| norms.iter().zip(&thresholds).all(|(rn, th)| rn <= th);

    // R = B − A·X; shadow block frozen at R₀; P = R.
    let ax = a.gspmv(x);
    let mut r = b.clone();
    for (rv, av) in r.as_mut_slice().iter_mut().zip(ax.as_slice()) {
        *rv -= av;
    }
    let r_tilde = r.clone();
    let mut p = r.clone();
    let mut iterations = 0;
    let mut norms = col_norms(&r);

    while iterations < max_iter && !done(&norms) {
        let v = a.gspmv(&p);
        // α solves (R̃ᵀV)·α = R̃ᵀR.
        let rho = gram(&r_tilde, &r);
        let rv = gram(&r_tilde, &v);
        let Some(alpha) =
            gauss_solve_multi(&small(&rv), &MultiVec::from_flat(m, m, rho))
        else {
            break; // rank-deficient shadow Gram: genuine ρ collapse
        };
        // S = R − V·α.
        let va = mul_dense(&v, &alpha);
        let mut s = r.clone();
        for (sv, vv) in s.as_mut_slice().iter_mut().zip(va.as_slice()) {
            *sv -= vv;
        }
        let s_norms = col_norms(&s);
        let pa = mul_dense(&p, &alpha);
        if done(&s_norms) {
            for (xv, pv) in x.as_mut_slice().iter_mut().zip(pa.as_slice()) {
                *xv += pv;
            }
            iterations += 1;
            norms = s_norms;
            break;
        }
        // Scalar stabilizer ω = ⟨T,S⟩_F / ⟨T,T⟩_F.
        let t = a.gspmv(&s);
        let tt = frob(&t, &t);
        if tt == 0.0 || !tt.is_finite() {
            break;
        }
        let omega = frob(&t, &s) / tt;
        if omega == 0.0 || !omega.is_finite() {
            break;
        }
        // X += P·α + ω·S ; R = S − ω·T.
        for i in 0..n {
            for j in 0..m {
                *x.get_mut(i, j) += pa.get(i, j) + omega * s.get(i, j);
                *r.get_mut(i, j) = s.get(i, j) - omega * t.get(i, j);
            }
        }
        iterations += 1;
        norms = col_norms(&r);
        if done(&norms) {
            break;
        }
        // β solves (R̃ᵀV)·β = −R̃ᵀT, then P ← R + (P − ω·V)·β.
        let sigma = gram(&r_tilde, &t);
        let neg_sigma: Vec<f64> = sigma.iter().map(|v| -v).collect();
        let Some(beta) =
            gauss_solve_multi(&small(&rv), &MultiVec::from_flat(m, m, neg_sigma))
        else {
            break;
        };
        let mut pw = p.clone();
        for (pv, vv) in pw.as_mut_slice().iter_mut().zip(v.as_slice()) {
            *pv -= omega * vv;
        }
        let pb = mul_dense(&pw, &beta);
        let mut p_next = r.clone();
        for (pv, bv) in p_next.as_mut_slice().iter_mut().zip(pb.as_slice()) {
            *pv += bv;
        }
        p = p_next;
    }

    NaiveBlockBicgstab {
        iterations,
        converged: done(&norms),
        residual_norms: norms,
    }
}

/// Symmetric eigendecomposition by the cyclic Jacobi method. Returns
/// `(eigenvalues, eigenvectors)` with `A = V·diag(λ)·Vᵀ`, eigenvectors
/// in the *columns* of the returned dense matrix.
pub fn jacobi_eigh(a: &Dense) -> (Vec<f64>, Dense) {
    assert_eq!(a.n_rows, a.n_cols);
    let n = a.n_rows;
    let mut m = a.data.clone();
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let off = |m: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[i * n + j] * m[i * n + j];
                }
            }
        }
        s
    };
    let scale = a.max_abs().max(1.0);
    for _sweep in 0..100 {
        if off(&m).sqrt() <= 1e-13 * scale {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[p * n + q];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t =
                    theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of M and columns of V.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eigvals: Vec<f64> = (0..n).map(|i| m[i * n + i]).collect();
    (eigvals, Dense { n_rows: n, n_cols: n, data: v })
}

/// `√A·z` via the eigendecomposition — the obviously-correct matrix
/// square root an approximation like Chebyshev must converge to.
/// Requires `A` symmetric positive semi-definite (tiny negative
/// eigenvalues from roundoff are clamped to zero).
pub fn sqrt_matvec_eigh(a: &Dense, z: &[f64]) -> Vec<f64> {
    let (eigvals, v) = jacobi_eigh(a);
    let n = a.n_rows;
    // w = Vᵀ z, scaled by √λ, mapped back: y = V diag(√λ) Vᵀ z.
    let mut w = vec![0.0; n];
    for k in 0..n {
        let mut acc = 0.0;
        for i in 0..n {
            acc += v.at(i, k) * z[i];
        }
        w[k] = acc * eigvals[k].max(0.0).sqrt();
    }
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = 0.0;
        for k in 0..n {
            acc += v.at(i, k) * w[k];
        }
        y[i] = acc;
    }
    y
}

/// What [`naive_mrhs_chunk`] observed.
#[derive(Clone, Debug)]
pub struct NaiveChunkOutcome {
    /// `m` of the chunk.
    pub m: usize,
    /// Per-step solutions `u_k` of the first solve (for differencing
    /// against the production driver's warm-started CG solutions).
    pub first_solutions: Vec<Vec<f64>>,
}

/// Dense reference for one MRHS chunk (paper Alg. 2): the same
/// structure as `mrhs_core::run_mrhs_chunk`, with every linear-algebra
/// ingredient replaced by its naive dense counterpart — assembly is
/// expanded to dense, `√R·z` goes through the Jacobi eigensolver
/// instead of a Chebyshev polynomial, and every solve is a direct
/// Gaussian elimination instead of (block) CG.
///
/// The noise stream is consumed identically to the production driver
/// (one `n×m` row-major fill), so running both against the same seeded
/// source makes the trajectories comparable; they differ only by the
/// Chebyshev approximation error and the CG tolerance.
pub fn naive_mrhs_chunk<S: ResistanceSystem, N: NoiseSource>(
    system: &mut S,
    noise: &mut N,
    m: usize,
) -> NaiveChunkOutcome {
    assert!(m >= 1);
    let n = system.dim();

    let r0 = Dense::from_bcrs(&system.assemble());
    let mut z = MultiVec::zeros(n, m);
    noise.fill_standard_normal(z.as_mut_slice());

    let mut f_ext = vec![0.0; n];
    system.add_external_forces(&mut f_ext);

    let mut first_solutions = Vec::with_capacity(m);
    for k in 0..m {
        let rk =
            if k == 0 { r0.clone() } else { Dense::from_bcrs(&system.assemble()) };
        let zk = z.column(k);
        // The production driver evaluates external forces at the
        // chunk head once and re-evaluates per step afterwards;
        // mirror that so state-dependent forces line up.
        if k > 0 {
            f_ext.iter_mut().for_each(|v| *v = 0.0);
            system.add_external_forces(&mut f_ext);
        }
        let mut fbk = sqrt_matvec_eigh(&rk, &zk);
        for (v, e) in fbk.iter_mut().zip(&f_ext) {
            *v = -*v - e;
        }
        let uk = gauss_solve(&rk, &fbk).expect("reference resistance solve");

        // Midpoint scheme, exactly as the production driver does it.
        let dt = system.dt();
        let saved = system.save_state();
        system.advance(&uk, 0.5 * dt);
        let r_mid = Dense::from_bcrs(&system.assemble());
        let u_mid = gauss_solve(&r_mid, &fbk).expect("reference midpoint solve");
        system.restore_state(&saved);
        system.advance(&u_mid, dt);

        first_solutions.push(uk);
    }
    NaiveChunkOutcome { m, first_solutions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::{Block3, BlockTripletBuilder};

    fn spd_dense(n: usize, seed: u64) -> Dense {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let b: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = if i == j { 2.0 } else { 0.0 };
                for k in 0..n {
                    acc += b[k * n + i] * b[k * n + j];
                }
                a[i * n + j] = acc;
            }
        }
        Dense { n_rows: n, n_cols: n, data: a }
    }

    #[test]
    fn dense_expansion_matches_to_dense() {
        let mut t = BlockTripletBuilder::square(3);
        t.add(0, 0, Block3::scaled_identity(2.0));
        t.add(1, 2, Block3::IDENTITY);
        let a = t.build();
        let d = Dense::from_bcrs(&a);
        assert_eq!(d.data, a.to_dense());
    }

    #[test]
    fn gauss_solves_spd_system() {
        let a = spd_dense(9, 3);
        let x_true: Vec<f64> = (0..9).map(|i| (i as f64) - 4.0).collect();
        let b = a.matvec(&x_true);
        let x = gauss_solve(&a, &b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn gauss_reports_singular() {
        let a = Dense { n_rows: 2, n_cols: 2, data: vec![1.0, 2.0, 2.0, 4.0] };
        assert!(gauss_solve(&a, &[1.0, 0.0]).is_none());
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let a = spd_dense(8, 11);
        let (vals, v) = jacobi_eigh(&a);
        let n = 8;
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += v.at(i, k) * vals[k] * v.at(j, k);
                }
                assert!(
                    (acc - a.at(i, j)).abs() <= 1e-10 * a.max_abs(),
                    "({i},{j}): {acc} vs {}",
                    a.at(i, j)
                );
            }
        }
        assert!(vals.iter().all(|&l| l > 0.0), "SPD eigenvalues");
    }

    #[test]
    fn eigh_sqrt_squares_back() {
        let a = spd_dense(7, 5);
        let z: Vec<f64> = (0..7).map(|i| ((i % 3) as f64) - 1.0).collect();
        let s1 = sqrt_matvec_eigh(&a, &z);
        let s2 = sqrt_matvec_eigh(&a, &s1);
        let az = a.matvec(&z);
        for (u, v) in s2.iter().zip(&az) {
            assert!((u - v).abs() <= 1e-9 * a.max_abs(), "{u} vs {v}");
        }
    }

    /// Diagonally dominant nonsymmetric dense matrix.
    fn nonsym_dense(n: usize, seed: u64) -> Dense {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = if i == j { n as f64 } else { next() };
            }
        }
        Dense { n_rows: n, n_cols: n, data: a }
    }

    #[test]
    fn naive_bicgstab_solves_nonsymmetric() {
        let a = nonsym_dense(14, 9);
        let x_true: Vec<f64> = (0..14).map(|i| (i as f64) * 0.3 - 2.0).collect();
        let b = a.matvec(&x_true);
        let mut x = vec![0.0; 14];
        let res = naive_bicgstab(&a, &b, &mut x, 1e-11, 300);
        assert!(res.converged, "{res:?}");
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn naive_block_bicgstab_matches_direct_solve() {
        let a = nonsym_dense(12, 21);
        let mut b = MultiVec::zeros(12, 3);
        for j in 0..3 {
            let col: Vec<f64> =
                (0..12).map(|i| (((i + 2 * j) % 7) as f64) - 3.0).collect();
            b.set_column(j, &col);
        }
        let mut x = MultiVec::zeros(12, 3);
        let res = naive_block_bicgstab(&a, &b, &mut x, 1e-10, 300);
        assert!(res.converged, "{res:?}");
        let want = gauss_solve_multi(&a, &b).unwrap();
        for (u, v) in x.as_slice().iter().zip(want.as_slice()) {
            assert!((u - v).abs() <= 1e-6 * v.abs().max(1.0), "{u} vs {v}");
        }
    }

    #[test]
    fn naive_block_cg_solves() {
        let a = spd_dense(12, 7);
        let mut b = MultiVec::zeros(12, 3);
        for j in 0..3 {
            let col: Vec<f64> =
                (0..12).map(|i| (((i + j) % 5) as f64) - 2.0).collect();
            b.set_column(j, &col);
        }
        let mut x = MultiVec::zeros(12, 3);
        let res = naive_block_cg(&a, &b, &mut x, 1e-10, 200);
        assert!(res.converged, "{res:?}");
        let want = gauss_solve_multi(&a, &b).unwrap();
        for (u, v) in x.as_slice().iter().zip(want.as_slice()) {
            assert!((u - v).abs() <= 1e-6 * v.abs().max(1.0), "{u} vs {v}");
        }
    }
}
