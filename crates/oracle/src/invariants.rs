//! Structural invariant checks: properties that must hold regardless
//! of which backend computed a result.

use crate::reference::Dense;
use crate::tolerance::TolModel;
use mrhs_solvers::{BlockBicgstabResult, BlockCgResult};
use mrhs_sparse::{BcrsMatrix, MultiVec};

/// Worst-case `|a_ij − a_ji|` over the assembled matrix — zero for an
/// exactly symmetric assembly. Stokesian resistance matrices must stay
/// below the driver's `symmetry_tol` or the symmetric-storage path
/// silently refuses them (and the driver falls back to full storage).
pub fn symmetry_residual(a: &BcrsMatrix) -> f64 {
    Dense::from_bcrs(a).symmetry_residual()
}

/// `‖x − x⋆‖_A = √((x − x⋆)ᵀ A (x − x⋆))` — the error norm CG is
/// guaranteed to decrease monotonically (the residual 2-norm is not).
pub fn a_norm_error(a: &Dense, x: &[f64], x_star: &[f64]) -> f64 {
    let e: Vec<f64> = x.iter().zip(x_star).map(|(u, v)| u - v).collect();
    let ae = a.matvec(&e);
    e.iter().zip(&ae).map(|(u, v)| u * v).sum::<f64>().max(0.0).sqrt()
}

/// Checks that a [`BlockCgResult`] is internally consistent with the
/// system and solution it claims to describe:
///
/// * `residual_norms` match a recomputed `‖(B − A·X)_j‖` (so the
///   reported state is neither stale nor half-updated, including after
///   a breakdown);
/// * `converged` agrees with the per-column thresholds
///   `tol·max(‖b_j‖, ε)`;
/// * `column_converged_at[j] ≤ iterations` whenever present;
/// * a reported breakdown at iteration `k` implies
///   `iterations ∈ {k − 1, k}` (the two documented breakdown sites).
///
/// `a` is the dense expansion of the operator the solve ran against.
pub fn check_block_cg_bookkeeping(
    a: &Dense,
    b: &MultiVec,
    x: &MultiVec,
    tol: f64,
    result: &BlockCgResult,
) -> Result<(), String> {
    let m = b.m();
    if result.residual_norms.len() != m || result.column_converged_at.len() != m {
        return Err(format!(
            "bookkeeping arrays sized {}/{} for m={m}",
            result.residual_norms.len(),
            result.column_converged_at.len(),
        ));
    }

    // Recompute the residual from scratch.
    let ax = a.gspmv(x);
    let mut norms = Vec::with_capacity(m);
    for j in 0..m {
        let mut acc = 0.0;
        for i in 0..b.n() {
            let r = b.get(i, j) - ax.get(i, j);
            acc += r * r;
        }
        norms.push(acc.sqrt());
    }

    // The recomputation reorders the same sums the solver did, and the
    // solver's residual is updated recursively; allow solver-level
    // slack scaled to ‖b‖ (a stale/half-updated state is off by whole
    // update steps, far outside this).
    let model = TolModel { rel: 1e-8, floor: 1e-30, max_ulps: 1 << 20 };
    for (j, (want, got)) in norms.iter().zip(&result.residual_norms).enumerate() {
        let scale = b.column(j).iter().map(|v| v * v).sum::<f64>().sqrt();
        let ok = model.accepts(*want, *got)
            || (want - got).abs() <= 1e-8 * scale.max(1e-30);
        if !ok {
            return Err(format!(
                "column {j}: reported residual {got} but recomputed {want}"
            ));
        }
    }

    let thresholds: Vec<f64> = (0..m)
        .map(|j| {
            let bn = b.column(j).iter().map(|v| v * v).sum::<f64>().sqrt();
            tol * bn.max(f64::MIN_POSITIVE)
        })
        .collect();
    // Judge `converged` from the *reported* norms (the recomputed ones
    // were already checked against them above).
    let all_met = result
        .residual_norms
        .iter()
        .zip(&thresholds)
        .all(|(rn, th)| rn <= &(th * (1.0 + 1e-12)));
    if result.converged && !all_met {
        return Err(format!(
            "claims converged but reported norms {:?} exceed thresholds {:?}",
            result.residual_norms, thresholds
        ));
    }

    for (j, conv) in result.column_converged_at.iter().enumerate() {
        if let Some(k) = conv {
            if *k > result.iterations {
                return Err(format!(
                    "column {j} converged at {k} > iterations {}",
                    result.iterations
                ));
            }
        }
    }
    if result.converged && result.column_converged_at.iter().any(Option::is_none) {
        return Err("claims converged with unconverged columns".into());
    }

    if let Some(k) = result.breakdown {
        if k == 0 {
            return Err("breakdown at iteration 0 is impossible".into());
        }
        if result.iterations + 1 != k && result.iterations != k {
            return Err(format!(
                "breakdown at {k} inconsistent with iterations {}",
                result.iterations
            ));
        }
    }

    Ok(())
}

/// The [`check_block_cg_bookkeeping`] contract for
/// [`BlockBicgstabResult`]: recomputed residuals must match the
/// reported ones (including after a ρ/ω collapse — the breakdown paths
/// either leave `X` at the last completed iteration or apply the half
/// step, never a torn state), `converged` must agree with the
/// thresholds, and a breakdown at iteration `k` implies
/// `iterations ∈ {k − 1, k}`.
pub fn check_block_bicgstab_bookkeeping(
    a: &Dense,
    b: &MultiVec,
    x: &MultiVec,
    tol: f64,
    result: &BlockBicgstabResult,
) -> Result<(), String> {
    let m = b.m();
    if result.residual_norms.len() != m || result.column_converged_at.len() != m {
        return Err(format!(
            "bookkeeping arrays sized {}/{} for m={m}",
            result.residual_norms.len(),
            result.column_converged_at.len(),
        ));
    }

    let ax = a.gspmv(x);
    let mut norms = Vec::with_capacity(m);
    for j in 0..m {
        let mut acc = 0.0;
        for i in 0..b.n() {
            let r = b.get(i, j) - ax.get(i, j);
            acc += r * r;
        }
        norms.push(acc.sqrt());
    }

    // BiCGStab's recursive residual drifts more than CG's (two update
    // sweeps per iteration); judge against ‖b‖-scaled solver slack.
    // On a *diverging* run (near-breakdown stress) the accumulated
    // drift also scales with how far the residual excursed, so allow
    // slack against the largest finite reported norm too — a stale or
    // torn state is off by whole update steps, i.e. O(1)·excursion,
    // still far outside this.
    let excursion = result
        .residual_norms
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0f64, f64::max);
    let model = TolModel { rel: 1e-7, floor: 1e-30, max_ulps: 1 << 20 };
    for (j, (want, got)) in norms.iter().zip(&result.residual_norms).enumerate() {
        if got.is_nan() {
            continue; // poisoned column: honest NaN, nothing to compare
        }
        let scale = b.column(j).iter().map(|v| v * v).sum::<f64>().sqrt();
        let ok = model.accepts(*want, *got)
            || (want - got).abs() <= 1e-7 * scale.max(1e-30)
            || (want - got).abs() <= 1e-5 * excursion;
        if !ok {
            return Err(format!(
                "column {j}: reported residual {got} but recomputed {want}"
            ));
        }
    }

    let thresholds: Vec<f64> = (0..m)
        .map(|j| {
            let bn = b.column(j).iter().map(|v| v * v).sum::<f64>().sqrt();
            tol * bn.max(f64::MIN_POSITIVE)
        })
        .collect();
    let all_met = result
        .residual_norms
        .iter()
        .zip(&thresholds)
        .all(|(rn, th)| rn <= &(th * (1.0 + 1e-12)));
    if result.converged && !all_met {
        return Err(format!(
            "claims converged but reported norms {:?} exceed thresholds {:?}",
            result.residual_norms, thresholds
        ));
    }

    for (j, conv) in result.column_converged_at.iter().enumerate() {
        if let Some(k) = conv {
            if *k > result.iterations {
                return Err(format!(
                    "column {j} converged at {k} > iterations {}",
                    result.iterations
                ));
            }
        }
    }
    if result.converged && result.column_converged_at.iter().any(Option::is_none) {
        return Err("claims converged with unconverged columns".into());
    }
    if result.converged && result.breakdown.is_some() {
        return Err(format!(
            "claims converged with breakdown {:?}",
            result.breakdown
        ));
    }

    if let Some(bd) = result.breakdown {
        if bd.iteration == 0 {
            return Err("breakdown at iteration 0 is impossible".into());
        }
        if result.iterations + 1 != bd.iteration
            && result.iterations != bd.iteration
        {
            return Err(format!(
                "breakdown at {} inconsistent with iterations {}",
                bd.iteration, result.iterations
            ));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_sparse::{Block3, BlockTripletBuilder};

    #[test]
    fn symmetry_residual_detects_asymmetry() {
        let mut t = BlockTripletBuilder::square(2);
        t.add(0, 0, Block3::scaled_identity(2.0));
        t.add(1, 1, Block3::scaled_identity(2.0));
        let mut b = Block3::ZERO;
        *b.get_mut(0, 1) = 0.25;
        t.add(0, 1, b);
        let a = t.build();
        assert!((symmetry_residual(&a) - 0.25).abs() < 1e-15);

        let mut t = BlockTripletBuilder::square(2);
        t.add(0, 0, Block3::scaled_identity(2.0));
        t.add(1, 1, Block3::scaled_identity(2.0));
        t.add_symmetric_pair(0, 1, b);
        assert_eq!(symmetry_residual(&t.build()), 0.0);
    }

    #[test]
    fn a_norm_error_is_zero_at_solution() {
        let a = Dense { n_rows: 2, n_cols: 2, data: vec![2.0, 0.5, 0.5, 3.0] };
        let x = [1.0, -2.0];
        assert_eq!(a_norm_error(&a, &x, &x), 0.0);
        assert!(a_norm_error(&a, &x, &[1.0, -1.0]) > 0.5);
    }
}
