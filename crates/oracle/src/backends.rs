//! The registry of GSPMV implementations under differential test.
//!
//! Every backend is normalized to the same contract: multivector in,
//! multivector out, **original row ordering** — backends that operate
//! in a permuted space (the distributed engine) or on an alternative
//! storage format (symmetric half storage) do their own conversion, so
//! the runner can difference any backend against any other.
//!
//! Backends may declare a *bitwise group*: backends in the same group
//! must produce bit-identical output on every input, not just
//! tolerance-equal. The groups encode the determinism contracts the
//! kernels document:
//!
//! * full-storage serial, auto, and chunked at any chunk count all
//!   share one group (each output row is accumulated in the fixed
//!   per-row block order regardless of chunking);
//! * the symmetric pool and sequential drivers share one group *per
//!   chunk count* (the slab reduction groups partial sums by chunk, so
//!   bits depend on the chunk boundaries but never on thread
//!   interleaving).

use crate::corpus::CorpusEntry;
use mrhs_cluster::{DistEngine, DistributedMatrix};
use mrhs_sparse::partition::{contiguous_partition, Partition};
use mrhs_sparse::{
    backend_available, gspmv_chunked, gspmv_chunked_with, gspmv_serial,
    gspmv_serial_with, DedupBcrs, KernelKind, MultiVec,
};

/// One GSPMV implementation under test.
pub trait GspmvBackend: Sync {
    /// Stable display name, e.g. `sym_chunked(4)`.
    fn name(&self) -> String;

    /// Whether this backend can run this corpus entry at all
    /// (symmetric backends need half storage; the distributed engine
    /// needs a square symmetric-pattern matrix).
    fn supports(&self, entry: &CorpusEntry) -> bool;

    /// Whether this backend wants to run at this `m` (expensive
    /// backends may subsample the grid).
    fn wants_m(&self, _m: usize) -> bool {
        true
    }

    /// Computes `Y = R·X` in the original row ordering.
    fn run(&self, entry: &CorpusEntry, x: &MultiVec) -> MultiVec;

    /// Bitwise-equivalence group, if any.
    fn bitwise_group(&self) -> Option<String> {
        None
    }
}

fn sym(entry: &CorpusEntry) -> &mrhs_sparse::SymmetricBcrs {
    entry.symmetric.as_ref().expect("caller checked supports()")
}

/// `gspmv_serial` — the baseline everything else groups with.
pub struct SerialFull;

impl GspmvBackend for SerialFull {
    fn name(&self) -> String {
        "full_serial".into()
    }
    fn supports(&self, _: &CorpusEntry) -> bool {
        true
    }
    fn run(&self, entry: &CorpusEntry, x: &MultiVec) -> MultiVec {
        let mut y = MultiVec::zeros(entry.matrix.n_rows(), x.m());
        gspmv_serial(&entry.matrix, x, &mut y);
        y
    }
    fn bitwise_group(&self) -> Option<String> {
        Some("full".into())
    }
}

/// The auto driver `gspmv` — must be bit-identical to serial whatever
/// the ambient pool width.
pub struct AutoFull;

impl GspmvBackend for AutoFull {
    fn name(&self) -> String {
        "full_auto".into()
    }
    fn supports(&self, _: &CorpusEntry) -> bool {
        true
    }
    fn run(&self, entry: &CorpusEntry, x: &MultiVec) -> MultiVec {
        let mut y = MultiVec::zeros(entry.matrix.n_rows(), x.m());
        mrhs_sparse::gspmv(&entry.matrix, x, &mut y);
        y
    }
    fn bitwise_group(&self) -> Option<String> {
        Some("full".into())
    }
}

/// Full-storage chunked driver at an explicit chunk count — stands in
/// for "parallel at `n` threads" without needing `n` OS threads.
pub struct ChunkedFull(pub usize);

impl GspmvBackend for ChunkedFull {
    fn name(&self) -> String {
        format!("full_chunked({})", self.0)
    }
    fn supports(&self, _: &CorpusEntry) -> bool {
        true
    }
    fn run(&self, entry: &CorpusEntry, x: &MultiVec) -> MultiVec {
        let mut y = MultiVec::zeros(entry.matrix.n_rows(), x.m());
        gspmv_chunked(&entry.matrix, x, &mut y, self.0);
        y
    }
    fn bitwise_group(&self) -> Option<String> {
        Some("full".into())
    }
}

/// Serial symmetric half-storage GSPMV.
pub struct SymSerial;

impl GspmvBackend for SymSerial {
    fn name(&self) -> String {
        "sym_serial".into()
    }
    fn supports(&self, entry: &CorpusEntry) -> bool {
        entry.symmetric.is_some()
    }
    fn run(&self, entry: &CorpusEntry, x: &MultiVec) -> MultiVec {
        let s = sym(entry);
        let mut y = MultiVec::zeros(s.n_rows(), x.m());
        s.gspmv(x, &mut y);
        y
    }
    fn bitwise_group(&self) -> Option<String> {
        // Chunk count 1 falls back to the serial kernel.
        Some("sym(1)".into())
    }
}

/// Symmetric chunked driver (rayon pool execution) at an explicit
/// chunk count.
pub struct SymChunked(pub usize);

impl GspmvBackend for SymChunked {
    fn name(&self) -> String {
        format!("sym_chunked({})", self.0)
    }
    fn supports(&self, entry: &CorpusEntry) -> bool {
        entry.symmetric.is_some()
    }
    fn run(&self, entry: &CorpusEntry, x: &MultiVec) -> MultiVec {
        let s = sym(entry);
        let mut y = MultiVec::zeros(s.n_rows(), x.m());
        s.gspmv_chunked(x, &mut y, self.0);
        y
    }
    fn bitwise_group(&self) -> Option<String> {
        Some(format!("sym({})", self.0))
    }
}

/// The same chunk schedule executed without the pool — proves the
/// symmetric kernel's bits depend on the chunk boundaries only, never
/// on thread interleaving.
pub struct SymChunkedSequential(pub usize);

impl GspmvBackend for SymChunkedSequential {
    fn name(&self) -> String {
        format!("sym_chunked_seq({})", self.0)
    }
    fn supports(&self, entry: &CorpusEntry) -> bool {
        entry.symmetric.is_some()
    }
    fn run(&self, entry: &CorpusEntry, x: &MultiVec) -> MultiVec {
        let s = sym(entry);
        let mut y = MultiVec::zeros(s.n_rows(), x.m());
        s.gspmv_chunked_sequential(x, &mut y, self.0);
        y
    }
    fn bitwise_group(&self) -> Option<String> {
        Some(format!("sym({})", self.0))
    }
}

/// The symmetric auto driver — must be bit-identical to the canonical
/// chunk count, whatever the pool width.
pub struct SymAuto;

impl GspmvBackend for SymAuto {
    fn name(&self) -> String {
        "sym_auto".into()
    }
    fn supports(&self, entry: &CorpusEntry) -> bool {
        entry.symmetric.is_some()
    }
    fn run(&self, entry: &CorpusEntry, x: &MultiVec) -> MultiVec {
        let s = sym(entry);
        let mut y = MultiVec::zeros(s.n_rows(), x.m());
        s.gspmv_parallel(x, &mut y);
        y
    }
    fn bitwise_group(&self) -> Option<String> {
        // Matches whichever chunk count the matrix canonically gets.
        None
    }
}

/// Full-storage serial GSPMV through an explicitly forced kernel
/// backend (scalar / SIMD / generic). Each kind gets its own bitwise
/// group: different backends round FMA chains differently, so they are
/// only *tolerance*-equal to each other, while serial/chunked/dedup
/// within one kind must match bit for bit.
pub struct KindFull(pub KernelKind);

impl GspmvBackend for KindFull {
    fn name(&self) -> String {
        format!("full_serial[{}]", self.0.as_str())
    }
    fn supports(&self, _: &CorpusEntry) -> bool {
        true
    }
    fn run(&self, entry: &CorpusEntry, x: &MultiVec) -> MultiVec {
        let mut y = MultiVec::zeros(entry.matrix.n_rows(), x.m());
        gspmv_serial_with(self.0, &entry.matrix, x, &mut y);
        y
    }
    fn bitwise_group(&self) -> Option<String> {
        Some(format!("full[{}]", self.0.as_str()))
    }
}

/// Chunked GSPMV through a forced kernel backend — per-row accumulation
/// order is chunk-independent, so it shares the kind's bitwise group.
pub struct KindChunked(pub KernelKind, pub usize);

impl GspmvBackend for KindChunked {
    fn name(&self) -> String {
        format!("full_chunked[{}]({})", self.0.as_str(), self.1)
    }
    fn supports(&self, _: &CorpusEntry) -> bool {
        true
    }
    fn run(&self, entry: &CorpusEntry, x: &MultiVec) -> MultiVec {
        let mut y = MultiVec::zeros(entry.matrix.n_rows(), x.m());
        gspmv_chunked_with(self.0, &entry.matrix, x, &mut y, self.1);
        y
    }
    fn bitwise_group(&self) -> Option<String> {
        Some(format!("full[{}]", self.0.as_str()))
    }
}

/// Serial GSPMV on deduplicated block storage through a forced kernel
/// backend. Dedup shares the row kernels with full storage (same block
/// values, fetched through the pool), so it joins the kind's bitwise
/// group — proving dedup is a pure storage transform, not a numeric one.
pub struct DedupSerial(pub KernelKind);

impl GspmvBackend for DedupSerial {
    fn name(&self) -> String {
        format!("dedup_serial[{}]", self.0.as_str())
    }
    fn supports(&self, _: &CorpusEntry) -> bool {
        true
    }
    fn run(&self, entry: &CorpusEntry, x: &MultiVec) -> MultiVec {
        let d = DedupBcrs::from_bcrs(&entry.matrix);
        let mut y = MultiVec::zeros(d.n_rows(), x.m());
        d.gspmv_serial_with(self.0, x, &mut y);
        y
    }
    fn bitwise_group(&self) -> Option<String> {
        Some(format!("full[{}]", self.0.as_str()))
    }
}

/// The distributed engine at `n` simulated nodes. Construction spawns
/// worker threads and permutes the matrix, so this backend trims the
/// `m` grid and builds a fresh engine per run (engines hold the
/// permuted matrix, which depends on the entry).
pub struct DistBackend {
    pub parts: usize,
}

impl DistBackend {
    fn partition(&self, entry: &CorpusEntry) -> Partition {
        contiguous_partition(&entry.matrix, self.parts)
    }
}

impl GspmvBackend for DistBackend {
    fn name(&self) -> String {
        format!("dist({})", self.parts)
    }
    fn supports(&self, entry: &CorpusEntry) -> bool {
        // DistributedMatrix permutes with `permute_symmetric`, which
        // needs a square matrix with symmetric *pattern*; the corpus
        // guarantees that exactly for its intended-symmetric entries.
        entry.symmetric.is_some() && entry.matrix.nb_rows() >= 1
    }
    fn wants_m(&self, m: usize) -> bool {
        // Engine construction dominates; sample the grid.
        matches!(m, 1 | 3 | 8 | 16 | 31 | 48)
    }
    fn run(&self, entry: &CorpusEntry, x: &MultiVec) -> MultiVec {
        let dm = DistributedMatrix::new(&entry.matrix, &self.partition(entry));
        let perm: Vec<usize> = dm.permutation().to_vec();
        let engine = DistEngine::new(dm);

        // Engine space is the permuted ordering: x_perm[new] = x[old].
        let n = entry.matrix.n_rows();
        let m = x.m();
        let mut x_perm = MultiVec::zeros(n, m);
        for (new, &old) in perm.iter().enumerate() {
            for c in 0..3 {
                for j in 0..m {
                    *x_perm.get_mut(3 * new + c, j) = x.get(3 * old + c, j);
                }
            }
        }
        let (y_perm, _stats) = engine.multiply(&x_perm);
        let mut y = MultiVec::zeros(n, m);
        for (new, &old) in perm.iter().enumerate() {
            for c in 0..3 {
                for j in 0..m {
                    *y.get_mut(3 * old + c, j) = y_perm.get(3 * new + c, j);
                }
            }
        }
        y
    }
}

/// The standard registry: every production GSPMV path plus the chunked
/// variants standing in for 1/2/4/8-thread execution, and the
/// distributed engine at 1, 3, and 5 partitions (one of which exceeds
/// `nb` for the smallest entries — `contiguous_partition` then leaves
/// partitions empty, which the engine must tolerate).
pub fn standard_backends() -> Vec<Box<dyn GspmvBackend>> {
    let mut v: Vec<Box<dyn GspmvBackend>> = vec![
        Box::new(SerialFull),
        Box::new(AutoFull),
        Box::new(SymSerial),
        Box::new(SymAuto),
    ];
    for n in [1usize, 2, 4, 8] {
        v.push(Box::new(ChunkedFull(n)));
        v.push(Box::new(SymChunked(n)));
        v.push(Box::new(SymChunkedSequential(n)));
    }
    for p in [1usize, 3, 5] {
        v.push(Box::new(DistBackend { parts: p }));
    }
    // Every kernel backend available on this host, forced explicitly:
    // serial, chunked, and dedup-storage runs per kind must be
    // bit-identical within the kind and tolerance-equal across kinds.
    for kind in KernelKind::ALL {
        if backend_available(kind) {
            v.push(Box::new(KindFull(kind)));
            v.push(Box::new(KindChunked(kind, 3)));
            v.push(Box::new(DedupSerial(kind)));
        }
    }
    v
}
