//! The single tolerance model every differential check uses.
//!
//! Two kinds of comparison appear in the harness:
//!
//! * **Tolerance** ([`TolModel`]) — for results computed along
//!   different floating-point summation orders (reference vs. kernel,
//!   serial vs. chunked symmetric). A pair passes when it is within a
//!   relative bound *or* within a small ULP distance (the ULP clause
//!   keeps tiny near-cancelled values from failing a purely relative
//!   test).
//! * **Bitwise** ([`assert_bitwise`]) — for results the kernels
//!   *guarantee* identical: repeated runs of any backend, full-storage
//!   chunked vs. serial, and the symmetric driver across pool widths.

/// Distance in units-in-the-last-place between two doubles, saturating
/// at `u64::MAX` for NaNs or differing signs on non-zero values.
pub fn ulp_diff(a: f64, b: f64) -> u64 {
    if a == b {
        return 0; // covers +0.0 vs -0.0
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Map to a monotone unsigned line: negatives fold below positives.
    fn ordered(x: f64) -> u64 {
        let b = x.to_bits();
        if b >> 63 == 0 {
            b | 0x8000_0000_0000_0000
        } else {
            !b
        }
    }
    ordered(a).abs_diff(ordered(b))
}

/// Relative/ULP acceptance model.
#[derive(Clone, Copy, Debug)]
pub struct TolModel {
    /// Relative bound: `|want − got| ≤ rel · max(|want|, |got|, floor)`.
    pub rel: f64,
    /// Scale floor of the relative clause, so residual-level noise
    /// around zero is judged on an absolute scale.
    pub floor: f64,
    /// Accept regardless of `rel` when within this many ULPs.
    pub max_ulps: u64,
}

impl TolModel {
    /// Kernel-level agreement: same math, different summation order.
    pub const KERNEL: TolModel = TolModel { rel: 1e-12, floor: 1.0, max_ulps: 64 };

    /// Solver-level agreement: iterative results compared against a
    /// direct reference, limited by the solve tolerance.
    pub const SOLVER: TolModel = TolModel { rel: 1e-6, floor: 1.0, max_ulps: 64 };

    /// Nonsymmetric solver agreement: BiCGStab-family results compared
    /// against a direct reference. Looser than [`TolModel::SOLVER`]
    /// because nonsymmetric Krylov solves carry no A-norm optimality —
    /// the forward error is bounded only through the (possibly large)
    /// condition number, and the stabilizer adds its own roundoff.
    pub const NONSYM_SOLVER: TolModel =
        TolModel { rel: 1e-4, floor: 1.0, max_ulps: 64 };

    /// Whether the pair is acceptable under this model.
    pub fn accepts(&self, want: f64, got: f64) -> bool {
        if ulp_diff(want, got) <= self.max_ulps {
            return true;
        }
        let scale = want.abs().max(got.abs()).max(self.floor);
        (want - got).abs() <= self.rel * scale
    }

    /// Checks two slices elementwise; the error describes the first and
    /// worst offenders.
    pub fn check_slices(
        &self,
        want: &[f64],
        got: &[f64],
        context: &str,
    ) -> Result<(), String> {
        if want.len() != got.len() {
            return Err(format!(
                "{context}: length mismatch {} vs {}",
                want.len(),
                got.len()
            ));
        }
        let mut worst: Option<(usize, f64)> = None;
        let mut bad = 0usize;
        for (i, (w, g)) in want.iter().zip(got).enumerate() {
            if !self.accepts(*w, *g) {
                bad += 1;
                let err = (w - g).abs();
                if worst.is_none_or(|(_, e)| err > e) {
                    worst = Some((i, err));
                }
            }
        }
        match worst {
            None => Ok(()),
            Some((i, _)) => Err(format!(
                "{context}: {bad}/{} elements outside tol (rel {:.1e}); \
                 worst at [{i}]: want {} got {}",
                want.len(),
                self.rel,
                want[i],
                got[i],
            )),
        }
    }
}

/// Asserts two slices are bitwise identical (`to_bits` equality, so
/// `-0.0 ≠ +0.0` and NaNs compare by payload). Returns an error naming
/// the first differing index instead of panicking, so the runner can
/// aggregate.
pub fn check_bitwise(a: &[f64], b: &[f64], context: &str) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("{context}: length {} vs {}", a.len(), b.len()));
    }
    for (i, (u, v)) in a.iter().zip(b).enumerate() {
        if u.to_bits() != v.to_bits() {
            return Err(format!(
                "{context}: bit mismatch at [{i}]: {u:?} ({:#018x}) vs \
                 {v:?} ({:#018x})",
                u.to_bits(),
                v.to_bits(),
            ));
        }
    }
    Ok(())
}

/// Panicking wrapper over [`check_bitwise`] for direct use in tests.
pub fn assert_bitwise(a: &[f64], b: &[f64], context: &str) {
    if let Err(e) = check_bitwise(a, b, context) {
        panic!("{e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(0.0, -0.0), 0);
        assert_eq!(ulp_diff(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(ulp_diff(f64::NAN, 1.0), u64::MAX);
        // Across zero: huge but defined.
        assert!(ulp_diff(-1e-300, 1e-300) > 1_000_000);
    }

    #[test]
    fn kernel_model_accepts_reassociation_noise() {
        let t = TolModel::KERNEL;
        assert!(t.accepts(1.0, 1.0 + 1e-13));
        assert!(t.accepts(1e9, 1e9 * (1.0 + 1e-13)));
        assert!(t.accepts(1e-17, -1e-17)); // sub-floor noise
        assert!(!t.accepts(1.0, 1.0 + 1e-9));
    }

    #[test]
    fn check_slices_reports_worst() {
        let t = TolModel::KERNEL;
        let want = [1.0, 2.0, 3.0];
        let got = [1.0, 2.5, 3.0];
        let err = t.check_slices(&want, &got, "ctx").unwrap_err();
        assert!(err.contains("[1]"), "{err}");
        assert!(t.check_slices(&want, &want, "ctx").is_ok());
    }

    #[test]
    fn bitwise_distinguishes_signed_zero() {
        assert!(check_bitwise(&[0.0], &[-0.0], "z").is_err());
        assert!(check_bitwise(&[1.5, -2.0], &[1.5, -2.0], "ok").is_ok());
    }
}
