//! Deterministic pathological-matrix corpus.
//!
//! Every generator is a pure function of its seed (xorshift64*), so
//! a corpus entry's matrix is byte-identical across runs, platforms,
//! and thread counts — a failing differential check names an entry and
//! the exact same matrix can be regenerated anywhere.
//!
//! The corpus deliberately over-represents the corners the kernels
//! specialize on: empty block rows (chunk balancing, phase-2 slab
//! reduction over nothing), fully dense block rows (one row dominating
//! a chunk), 1×1 and single-block matrices (`nb < nchunks`, `nb <
//! nthreads`), rectangular shapes, and *almost*-symmetric matrices
//! (which the symmetric path must refuse).

use mrhs_sparse::{
    BcrsMatrix, Block3, BlockTripletBuilder, MultiVec, SymmetricBcrs,
};

/// Corpus sizing. `Small` keeps the dense references cheap enough for
/// the default `cargo test` gate; `Large` crosses the kernels'
/// parallel thresholds and is reserved for the scheduled release-mode
/// run (`cargo test -p oracle --release -- --ignored`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Small,
    Large,
}

/// One matrix of the corpus.
pub struct CorpusEntry {
    /// Stable identifier, printed in failure reports.
    pub name: &'static str,
    /// The matrix under test (full BCRS storage).
    pub matrix: BcrsMatrix,
    /// Symmetric half-storage view, when the matrix admits one. Built
    /// by `SymmetricBcrs::from_full` at `1e-12`; entries that are
    /// *meant* to be rejected (non-symmetric perturbations) carry
    /// `None` and double as negative tests for the conversion.
    pub symmetric: Option<SymmetricBcrs>,
    /// Whether the generator intended the matrix to be symmetric (used
    /// to assert that `from_full` accepts exactly the right entries).
    pub intended_symmetric: bool,
}

impl CorpusEntry {
    fn new(
        name: &'static str,
        matrix: BcrsMatrix,
        intended_symmetric: bool,
    ) -> Self {
        let symmetric = if matrix.n_rows() == matrix.n_cols() {
            SymmetricBcrs::from_full(&matrix, 1e-12)
        } else {
            None
        };
        CorpusEntry { name, matrix, symmetric, intended_symmetric }
    }
}

/// xorshift64* — the corpus PRNG. Deliberately not the workspace's
/// noise source, so corpus matrices can't drift when noise generation
/// changes.
#[derive(Clone)]
pub struct SplitStream {
    state: u64,
}

impl SplitStream {
    pub fn new(seed: u64) -> Self {
        // splitmix64 finalizer, so adjacent seeds diverge immediately
        // (a plain `seed | 1` would alias 42 and 43).
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SplitStream { state: if z == 0 { 0x9e37_79b9 } else { z } }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[-0.5, 0.5)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    /// Uniform in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn block(&mut self) -> Block3 {
        let mut b = [0.0; 9];
        for v in &mut b {
            *v = self.uniform();
        }
        Block3(b)
    }

    fn sym_block(&mut self) -> Block3 {
        let mut b = self.block();
        for i in 0..3 {
            for j in i + 1..3 {
                let avg = 0.5 * (b.get(i, j) + b.get(j, i));
                *b.get_mut(i, j) = avg;
                *b.get_mut(j, i) = avg;
            }
        }
        b
    }
}

/// Deterministic pseudo-random multivector for backend inputs —
/// seeded per `(entry, m)` by the runner so inputs are reproducible.
pub fn pseudo_multivec(n: usize, m: usize, seed: u64) -> MultiVec {
    let mut rng = SplitStream::new(seed);
    let mut v = MultiVec::zeros(n, m);
    for x in v.as_mut_slice() {
        *x = rng.uniform() * 4.0;
    }
    v
}

/// The `m` grid every backend runs at: each specialized kernel width
/// plus off-grid values that force the generic fallback, including the
/// `m = p±1` neighbours of several specializations.
pub fn m_values(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Small => {
            vec![1, 2, 3, 4, 5, 7, 8, 11, 12, 16, 17, 24, 32, 33, 42, 47, 48]
        }
        // Large trims the grid: the point is size, not m-coverage.
        Scale::Large => vec![1, 4, 16, 31, 48],
    }
}

/// Symmetric positive-definite banded matrix: `diag_shift·I` diagonal
/// blocks plus symmetric couplings to `band` neighbours.
fn banded_spd(nb: usize, band: usize, seed: u64) -> BcrsMatrix {
    let mut rng = SplitStream::new(seed);
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        let mut d = rng.sym_block();
        for k in 0..3 {
            *d.get_mut(k, k) += 4.0 + band as f64;
        }
        t.add(i, i, d);
    }
    for i in 0..nb {
        for off in 1..=band {
            if i + off < nb {
                t.add_symmetric_pair(i, i + off, rng.block() * 0.35);
            }
        }
    }
    t.build()
}

/// Unstructured random sparsity, not symmetric.
fn irregular(
    nb_rows: usize,
    nb_cols: usize,
    fills: usize,
    seed: u64,
) -> BcrsMatrix {
    let mut rng = SplitStream::new(seed);
    let mut t = BlockTripletBuilder::new(nb_rows, nb_cols);
    for _ in 0..fills {
        t.add(rng.below(nb_rows), rng.below(nb_cols), rng.block());
    }
    t.build()
}

/// Builds the corpus at the given scale. Entries are ordered
/// cheapest-first so a corpus failure surfaces on the smallest
/// reproducer available.
pub fn corpus(scale: Scale) -> Vec<CorpusEntry> {
    let (nb, band) = match scale {
        Scale::Small => (24usize, 3usize),
        Scale::Large => (700, 8),
    };

    let mut entries = Vec::new();

    // 1×1 block matrix holding a single zero block: the smallest
    // possible square input; exercises nb < nchunks and nb < p.
    entries.push(CorpusEntry::new(
        "zero_1x1",
        BlockTripletBuilder::square(1).build(),
        true,
    ));

    // 1×1 with one symmetric block.
    let mut t = BlockTripletBuilder::square(1);
    t.add(0, 0, SplitStream::new(101).sym_block() + Block3::scaled_identity(3.0));
    entries.push(CorpusEntry::new("single_block_1x1", t.build(), true));

    // Diagonal-only matrix: the symmetric path's upper CSR is empty,
    // so phase 2 reduces over zero slabs.
    let mut t = BlockTripletBuilder::square(7);
    let mut rng = SplitStream::new(202);
    for i in 0..7 {
        t.add(i, i, rng.sym_block() + Block3::scaled_identity(2.0));
    }
    entries.push(CorpusEntry::new("diag_only", t.build(), true));

    // Empty rows: rows 0, 2, 5 of an 8-row matrix have no blocks at
    // all (not even a diagonal). Weighted chunking must not starve or
    // double-count them.
    let mut t = BlockTripletBuilder::square(8);
    let mut rng = SplitStream::new(303);
    for &i in &[1usize, 3, 4, 6, 7] {
        t.add(i, i, rng.sym_block() + Block3::scaled_identity(2.0));
    }
    t.add_symmetric_pair(1, 4, rng.block() * 0.25);
    t.add_symmetric_pair(3, 7, rng.block() * 0.25);
    entries.push(CorpusEntry::new("empty_rows", t.build(), true));

    // One fully dense block row (and column, to stay symmetric): row 0
    // couples to everything. A single row dominates every chunking.
    let dense_nb = match scale {
        Scale::Small => 12,
        Scale::Large => 160,
    };
    let mut t = BlockTripletBuilder::square(dense_nb);
    let mut rng = SplitStream::new(404);
    for i in 0..dense_nb {
        t.add(
            i,
            i,
            rng.sym_block() + Block3::scaled_identity(3.0 + dense_nb as f64 * 0.5),
        );
    }
    for j in 1..dense_nb {
        t.add_symmetric_pair(0, j, rng.block() * 0.3);
    }
    entries.push(CorpusEntry::new("dense_block_row", t.build(), true));

    // nb = 2 (< any realistic thread/partition count).
    entries.push(CorpusEntry::new("tiny_nb2", banded_spd(2, 1, 505), true));

    // The structured SPD banded workhorse.
    entries.push(CorpusEntry::new("banded_spd", banded_spd(nb, band, 606), true));

    // Non-symmetric perturbation of the same banded SPD matrix: one
    // off-diagonal scalar nudged by 1e-3. `from_full` must refuse it.
    let sym = banded_spd(nb, band, 606);
    let mut t = BlockTripletBuilder::square(nb);
    for bi in 0..nb {
        let (cols, blocks) = sym.block_row(bi);
        for (c, b) in cols.iter().zip(blocks) {
            t.add(bi, *c as usize, *b);
        }
    }
    let mut nudge = Block3::ZERO;
    *nudge.get_mut(0, 1) = 1e-3;
    t.add(0, 1.min(nb - 1), nudge);
    entries.push(CorpusEntry::new("nonsym_perturbed", t.build(), false));

    // Same construction with a perturbation *below* the conversion
    // tolerance in the opposite direction: must still be accepted when
    // callers pass the documented symmetry_tol (checked separately in
    // tests; here it's rejected at the corpus's strict 1e-12).
    let mut nudge = Block3::ZERO;
    *nudge.get_mut(2, 0) = 1e-9;
    let mut t = BlockTripletBuilder::square(nb);
    for bi in 0..nb {
        let (cols, blocks) = sym.block_row(bi);
        for (c, b) in cols.iter().zip(blocks) {
            t.add(bi, *c as usize, *b);
        }
    }
    t.add(nb - 1, nb.saturating_sub(2), nudge);
    entries.push(CorpusEntry::new("nonsym_tiny_perturbed", t.build(), false));

    // Unstructured, non-symmetric, square.
    entries.push(CorpusEntry::new(
        "irregular_random",
        irregular(nb, nb, nb * 4, 707),
        false,
    ));

    // Rectangular: GSPMV on full storage only.
    entries.push(CorpusEntry::new("rect_wide", irregular(5, 9, 17, 808), false));
    entries.push(CorpusEntry::new("rect_tall", irregular(9, 5, 17, 909), false));

    if scale == Scale::Large {
        // Big enough to clear PARALLEL_THRESHOLD (16384 stored blocks)
        // in both storage formats: 700 rows × ~17 blocks/row.
        entries.push(CorpusEntry::new(
            "banded_spd_over_threshold",
            banded_spd(1100, 8, 1010),
            true,
        ));
    }

    entries
}

/// One matrix of the **nonsymmetric** corpus — the CFD-class systems
/// block BiCGStab is gated on (Krasnopolsky arXiv:1907.12874's
/// convection-dominated problems and perturbations thereof).
pub struct NonsymEntry {
    /// Stable identifier, printed in failure reports.
    pub name: &'static str,
    /// The matrix under test. Always square, full BCRS storage — the
    /// symmetric half-storage path must refuse all of these.
    pub matrix: BcrsMatrix,
    /// Entries constructed to stress the ρ/ω collapse paths: the solver
    /// gate only requires honest bookkeeping (converged, reported
    /// breakdown, or iteration-cap stagnation — never a silent wrong
    /// answer), not convergence.
    pub near_breakdown: bool,
}

/// Convection–diffusion block stencil: a banded diffusion part (like
/// [`banded_spd`]) plus a first-order upwind convection term that makes
/// the upstream coupling stronger than the downstream one by `2·peclet`
/// per band. Diagonally dominant, hence nonsingular and
/// BiCGStab-friendly, but genuinely nonsymmetric.
fn convection_diffusion(
    nb: usize,
    band: usize,
    peclet: f64,
    seed: u64,
) -> BcrsMatrix {
    let mut rng = SplitStream::new(seed);
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        let mut d = rng.sym_block();
        for k in 0..3 {
            *d.get_mut(k, k) += 4.0 + 2.0 * band as f64;
        }
        t.add(i, i, d);
    }
    for i in 0..nb {
        for off in 1..=band {
            if i + off < nb {
                let base = rng.block() * 0.3;
                let fade = 1.0 / off as f64;
                // Downstream (i → i+off) weakened, upstream strengthened:
                // the upwind asymmetry of a first-order convection scheme.
                t.add(
                    i,
                    i + off,
                    (base + Block3::scaled_identity(-1.0 + peclet)) * fade,
                );
                t.add(
                    i + off,
                    i,
                    (base.transpose() + Block3::scaled_identity(-1.0 - peclet))
                        * fade,
                );
            }
        }
    }
    t.build()
}

/// Skew perturbation of the SPD banded workhorse: `A = S + ε·(K − Kᵀ)`
/// with `S` the [`banded_spd`] matrix and `K` random. The symmetric
/// part stays positive definite, so the field of values lies in the
/// right half plane and BiCGStab converges — but the matrix is
/// structurally nonsymmetric at every off-diagonal entry.
fn skew_perturbed(nb: usize, band: usize, eps: f64, seed: u64) -> BcrsMatrix {
    let sym = banded_spd(nb, band, seed);
    let mut rng = SplitStream::new(seed ^ 0xdead_beef);
    let mut t = BlockTripletBuilder::square(nb);
    for bi in 0..nb {
        let (cols, blocks) = sym.block_row(bi);
        for (c, b) in cols.iter().zip(blocks) {
            t.add(bi, *c as usize, *b);
        }
    }
    for i in 0..nb {
        for off in 1..=band {
            if i + off < nb {
                let k = rng.block() * eps;
                t.add(i, i + off, k);
                t.add(i + off, i, k.transpose() * -1.0);
            }
        }
    }
    t.build()
}

/// Skew-dominant near-breakdown case: `A = δ·I + (K − Kᵀ)` with a tiny
/// symmetric part. For nearly-skew `A`, `r̃ᵀ·A·r̃ ≈ δ·‖r̃‖²`, so the
/// shadow inner products BiCGStab divides by hover near zero — the
/// regime where ρ/ω collapse reporting must hold up.
fn skew_dominant(nb: usize, delta: f64, seed: u64) -> BcrsMatrix {
    let mut rng = SplitStream::new(seed);
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        t.add(i, i, Block3::scaled_identity(delta));
    }
    for i in 0..nb {
        if i + 1 < nb {
            let k = rng.block();
            t.add(i, i + 1, k);
            t.add(i + 1, i, k.transpose() * -1.0);
        }
    }
    t.build()
}

/// Builds the nonsymmetric corpus at the given scale, cheapest-first.
pub fn nonsym_corpus(scale: Scale) -> Vec<NonsymEntry> {
    let (nb, band) = match scale {
        Scale::Small => (24usize, 3usize),
        Scale::Large => (700, 8),
    };
    let mut entries = vec![
        // Mild and convection-dominated variants of the same stencil:
        // the Péclet knob is what separates "almost SPD" from
        // "CFD-class".
        NonsymEntry {
            name: "convdiff_mild",
            matrix: convection_diffusion(nb, band, 0.2, 1101),
            near_breakdown: false,
        },
        NonsymEntry {
            name: "convdiff_dominated",
            matrix: convection_diffusion(nb, band, 0.8, 1202),
            near_breakdown: false,
        },
        // Random skew perturbations of the SPD corpus at two strengths.
        NonsymEntry {
            name: "skew_perturbed_weak",
            matrix: skew_perturbed(nb, band, 0.1, 1303),
            near_breakdown: false,
        },
        NonsymEntry {
            name: "skew_perturbed_strong",
            matrix: skew_perturbed(nb, band, 0.6, 1404),
            near_breakdown: false,
        },
        // Tiny nb: the nb < nchunks / nb < nthreads corner,
        // nonsymmetric.
        NonsymEntry {
            name: "convdiff_tiny_nb2",
            matrix: convection_diffusion(2, 1, 0.5, 1505),
            near_breakdown: false,
        },
        // Near-breakdown: skew-dominant with a vanishing symmetric
        // part.
        NonsymEntry {
            name: "skew_dominant_near_breakdown",
            matrix: skew_dominant(nb.min(16), 1e-6, 1606),
            near_breakdown: true,
        },
    ];

    if scale == Scale::Large {
        // Past PARALLEL_THRESHOLD for the nightly release run.
        entries.push(NonsymEntry {
            name: "convdiff_over_threshold",
            matrix: convection_diffusion(1100, 8, 0.6, 1707),
            near_breakdown: false,
        });
    }

    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus(Scale::Small);
        let b = corpus(Scale::Small);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.matrix.to_dense(), y.matrix.to_dense());
        }
    }

    #[test]
    fn symmetric_conversion_matches_intent() {
        for e in corpus(Scale::Small) {
            let square = e.matrix.n_rows() == e.matrix.n_cols();
            assert_eq!(
                e.symmetric.is_some(),
                e.intended_symmetric && square,
                "entry {}: from_full acceptance disagrees with intent",
                e.name
            );
        }
    }

    #[test]
    fn corpus_covers_pathologies() {
        let names: Vec<&str> =
            corpus(Scale::Small).iter().map(|e| e.name).collect();
        for required in [
            "zero_1x1",
            "empty_rows",
            "dense_block_row",
            "tiny_nb2",
            "nonsym_perturbed",
            "rect_wide",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn nonsym_corpus_is_deterministic_and_actually_nonsymmetric() {
        let a = nonsym_corpus(Scale::Small);
        let b = nonsym_corpus(Scale::Small);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.matrix.to_dense(), y.matrix.to_dense());
        }
        for e in &a {
            assert_eq!(e.matrix.n_rows(), e.matrix.n_cols(), "{}", e.name);
            // Every entry must be refused by the symmetric-storage
            // conversion — that is the point of this corpus.
            assert!(
                SymmetricBcrs::from_full(&e.matrix, 1e-12).is_none(),
                "{} unexpectedly admits half storage",
                e.name
            );
        }
    }

    #[test]
    fn nonsym_corpus_covers_generators() {
        let names: Vec<&str> =
            nonsym_corpus(Scale::Small).iter().map(|e| e.name).collect();
        for required in [
            "convdiff_mild",
            "convdiff_dominated",
            "skew_perturbed_weak",
            "skew_perturbed_strong",
            "skew_dominant_near_breakdown",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
        assert!(
            nonsym_corpus(Scale::Small).iter().any(|e| e.near_breakdown),
            "corpus must include a near-breakdown case"
        );
    }

    #[test]
    fn pseudo_multivec_reproducible() {
        let a = pseudo_multivec(30, 4, 42);
        let b = pseudo_multivec(30, 4, 42);
        assert_eq!(a.as_slice(), b.as_slice());
        let c = pseudo_multivec(30, 4, 43);
        assert_ne!(a.as_slice(), c.as_slice());
    }
}
