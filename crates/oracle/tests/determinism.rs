//! Bitwise-determinism regression tests (ISSUE satellite 2).
//!
//! The contract these tests pin down:
//!
//! * **Full storage**: chunking never changes the bits. Every output
//!   row is accumulated entirely within one chunk in the fixed per-row
//!   block order, so `gspmv_chunked` at ANY chunk count is bit-
//!   identical to `gspmv_serial`, and the auto driver `gspmv` is too —
//!   whatever `RAYON_NUM_THREADS` says.
//! * **Symmetric storage**: bits depend only on the *chunk
//!   boundaries* (the slab reduction groups transpose partial sums by
//!   chunk), never on thread interleaving. The pool execution of a
//!   given chunk count must match the pool-free sequential execution
//!   of the same schedule bit for bit, and the auto driver must equal
//!   the matrix-determined canonical chunk count.
//!
//! The matrices here are sized past `PARALLEL_THRESHOLD` (2^14 stored
//! blocks) in both storage formats so the auto drivers genuinely take
//! their parallel paths; the cluster watchdog converts any deadlock
//! into a test failure instead of a hang.
//!
//! These cover in-process chunk-count variation; the CI matrix re-runs
//! the suite under several `RAYON_NUM_THREADS` values for cross-process
//! pool-width coverage.

use mrhs_cluster::watchdog::with_deadline;
use mrhs_sparse::{
    gspmv, gspmv_chunked, gspmv_serial, Block3, BlockTripletBuilder, MultiVec,
    SymmetricBcrs,
};
use std::time::Duration;

/// Deterministic banded SPD matrix with `nb` block rows and `band`
/// symmetric neighbour couplings — no RNG, so the test is self-
/// contained and reproducible by inspection.
fn banded(nb: usize, band: usize) -> mrhs_sparse::BcrsMatrix {
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        let mut d = Block3::scaled_identity(5.0 + band as f64);
        *d.get_mut(0, 1) = 0.25;
        *d.get_mut(1, 0) = 0.25;
        t.add(i, i, d);
        for off in 1..=band {
            if i + off < nb {
                let w = -1.0 / (1.0 + off as f64 + (i % 7) as f64 * 0.125);
                let mut b = Block3::scaled_identity(w);
                *b.get_mut(0, 2) = w * 0.5;
                t.add_symmetric_pair(i, i + off, b);
            }
        }
    }
    t.build()
}

fn inputs(n: usize, m: usize) -> MultiVec {
    let mut x = MultiVec::zeros(n, m);
    for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
        // Irrational stride keeps values non-repeating without an RNG.
        *v = ((i as f64) * 0.618_033_988_749_894_8).fract() * 4.0 - 2.0;
    }
    x
}

fn assert_bits(a: &MultiVec, b: &MultiVec, ctx: &str) {
    oracle::tolerance::assert_bitwise(a.as_slice(), b.as_slice(), ctx);
}

#[test]
fn full_storage_bits_are_chunk_invariant() {
    with_deadline(Duration::from_secs(120), || {
        // 2400 × 13 ≈ 31k stored blocks — well past the threshold.
        let a = banded(2400, 6);
        assert!(a.nnz_blocks() >= 1 << 14, "matrix must cross the threshold");
        for m in [1usize, 3, 16] {
            let x = inputs(a.n_cols(), m);
            let mut serial = MultiVec::zeros(a.n_rows(), m);
            gspmv_serial(&a, &x, &mut serial);

            let mut auto = MultiVec::zeros(a.n_rows(), m);
            gspmv(&a, &x, &mut auto);
            assert_bits(&serial, &auto, &format!("auto vs serial m={m}"));

            for nchunks in [1usize, 2, 4, 8, 64] {
                let mut y = MultiVec::zeros(a.n_rows(), m);
                gspmv_chunked(&a, &x, &mut y, nchunks);
                assert_bits(
                    &serial,
                    &y,
                    &format!("chunked({nchunks}) vs serial m={m}"),
                );
            }
        }
    });
}

#[test]
fn symmetric_storage_bits_depend_only_on_chunk_boundaries() {
    with_deadline(Duration::from_secs(120), || {
        let a = banded(2400, 6);
        let s = SymmetricBcrs::from_full(&a, 1e-12).expect("symmetric");
        // diag + upper ≈ 2400·7 stored blocks — past the threshold.
        assert!(s.stored_blocks() >= 1 << 14);

        for m in [1usize, 4, 16] {
            let x = inputs(s.n_rows(), m);

            // Pool execution ≡ pool-free execution of the same chunk
            // schedule: thread interleaving cannot move a bit.
            for nchunks in [1usize, 2, 4, 8] {
                let mut pool = MultiVec::zeros(s.n_rows(), m);
                s.gspmv_chunked(&x, &mut pool, nchunks);
                let mut seq = MultiVec::zeros(s.n_rows(), m);
                s.gspmv_chunked_sequential(&x, &mut seq, nchunks);
                assert_bits(
                    &pool,
                    &seq,
                    &format!("sym pool vs sequential nchunks={nchunks} m={m}"),
                );

                // And repeated pool runs are stable.
                let mut again = MultiVec::zeros(s.n_rows(), m);
                s.gspmv_chunked(&x, &mut again, nchunks);
                assert_bits(
                    &pool,
                    &again,
                    &format!("sym repeated run nchunks={nchunks} m={m}"),
                );
            }

            // The auto driver pins itself to the canonical (matrix-
            // determined) chunk count — this is exactly the fix for
            // the pool-width-dependent output the old driver had.
            let canonical = s.canonical_chunk_count();
            let mut auto = MultiVec::zeros(s.n_rows(), m);
            s.gspmv_parallel(&x, &mut auto);
            let mut pinned = MultiVec::zeros(s.n_rows(), m);
            s.gspmv_chunked(&x, &mut pinned, canonical);
            assert_bits(
                &auto,
                &pinned,
                &format!("sym auto vs canonical({canonical}) m={m}"),
            );
        }
    });
}

/// Below the parallel threshold the auto drivers take the serial path;
/// their output must be identical to the serial kernels (matrix-only
/// decision — still no pool-width dependence).
#[test]
fn small_matrices_take_identical_serial_path() {
    with_deadline(Duration::from_secs(60), || {
        let a = banded(40, 2);
        let s = SymmetricBcrs::from_full(&a, 1e-12).expect("symmetric");
        let x = inputs(a.n_cols(), 8);

        let mut serial = MultiVec::zeros(a.n_rows(), 8);
        gspmv_serial(&a, &x, &mut serial);
        let mut auto = MultiVec::zeros(a.n_rows(), 8);
        gspmv(&a, &x, &mut auto);
        assert_bits(&serial, &auto, "full auto below threshold");

        let mut sym_serial = MultiVec::zeros(s.n_rows(), 8);
        s.gspmv(&x, &mut sym_serial);
        let mut sym_auto = MultiVec::zeros(s.n_rows(), 8);
        s.gspmv_parallel(&x, &mut sym_auto);
        assert_bits(&sym_serial, &sym_auto, "sym auto below threshold");
    });
}

// ---------------------------------------------------------------------------
// Block-BiCGStab determinism (nonsymmetric solver over full storage).
//
// The solver touches the matrix only through GSPMV, and every dense
// reduction in it (Gram matrices, coefficient solves, update sweeps)
// is sequential — so the full-storage chunk-invariance contract above
// lifts to whole *solves*: for any one kernel kind, the solution bits
// must be identical whether the operator runs the serial kernel, the
// auto driver (which goes parallel past the threshold), or any forced
// chunk count. The CI matrix re-runs this suite under several
// RAYON_NUM_THREADS values and forced MRHS_KERNEL_BACKEND kinds for
// cross-process coverage.
// ---------------------------------------------------------------------------

use mrhs_solvers::{
    block_bicgstab_with_options, BicgstabVariant, BlockBicgstabOptions,
    LinearOperator, SolveConfig,
};
use mrhs_sparse::{
    backend_available, gspmv_chunked_with, gspmv_serial_with, KernelKind,
};

/// Deterministic nonsymmetric banded matrix (convection-style: the
/// downstream coupling is stronger than the upstream one), diagonally
/// dominant so BiCGStab converges, no RNG.
fn nonsym_banded(nb: usize, band: usize) -> mrhs_sparse::BcrsMatrix {
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        let mut d = Block3::scaled_identity(6.0 + 2.0 * band as f64);
        *d.get_mut(0, 1) = 0.3;
        t.add(i, i, d);
        for off in 1..=band {
            if i + off < nb {
                let w = -1.0 / (1.0 + off as f64 + (i % 5) as f64 * 0.25);
                let mut down = Block3::scaled_identity(w * 1.4);
                *down.get_mut(0, 2) = w * 0.25;
                t.add(i, i + off, down);
                t.add(i + off, i, Block3::scaled_identity(w * 0.6));
            }
        }
    }
    t.build()
}

/// How the operator schedules its GSPMV sweeps — the axis the solve
/// bits must NOT depend on.
#[derive(Clone, Copy)]
enum Sweep {
    Serial,
    Auto,
    Chunked(usize),
}

/// Wraps a matrix with a pinned kernel kind and sweep schedule, so a
/// whole solve runs through exactly one (kind, schedule) pair.
struct PinnedOp<'a> {
    a: &'a mrhs_sparse::BcrsMatrix,
    kind: KernelKind,
    sweep: Sweep,
}

impl LinearOperator for PinnedOp<'_> {
    fn dim(&self) -> usize {
        self.a.n_rows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let xv = MultiVec::from_columns(&[x]);
        let mut yv = MultiVec::zeros(self.dim(), 1);
        self.apply_multi(&xv, &mut yv);
        y.copy_from_slice(&yv.column(0));
    }
    fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec) {
        match self.sweep {
            Sweep::Serial => gspmv_serial_with(self.kind, self.a, x, y),
            Sweep::Auto => mrhs_sparse::gspmv_with(self.kind, self.a, x, y),
            Sweep::Chunked(c) => gspmv_chunked_with(self.kind, self.a, x, y, c),
        }
    }
}

#[test]
fn block_bicgstab_bits_are_schedule_invariant_per_kernel_kind() {
    with_deadline(Duration::from_secs(300), || {
        // 2400 × 13 ≈ 31k stored blocks — the auto driver genuinely
        // goes parallel.
        let a = nonsym_banded(2400, 6);
        assert!(a.nnz_blocks() >= 1 << 14, "matrix must cross the threshold");
        let m = 4;
        let b = inputs(a.n_rows(), m);

        for variant in [BicgstabVariant::Classic, BicgstabVariant::Reordered] {
            let opts = BlockBicgstabOptions {
                solve: SolveConfig { tol: 1e-10, max_iter: 400 },
                variant,
                ..Default::default()
            };
            for kind in KernelKind::ALL {
                if !backend_available(kind) {
                    continue;
                }
                let solve = |sweep: Sweep| {
                    let op = PinnedOp { a: &a, kind, sweep };
                    let mut x = MultiVec::zeros(a.n_rows(), m);
                    let res = block_bicgstab_with_options(&op, &b, &mut x, &opts);
                    (x, res)
                };

                let (x_serial, res_serial) = solve(Sweep::Serial);
                assert!(
                    res_serial.converged,
                    "{kind:?} {variant:?}: {res_serial:?}"
                );

                // Repeated run: bit-stable.
                let (x_again, res_again) = solve(Sweep::Serial);
                assert_bits(
                    &x_serial,
                    &x_again,
                    &format!("{kind:?} {variant:?} repeated serial solve"),
                );
                assert_eq!(res_serial.iterations, res_again.iterations);

                // Auto driver (parallel past the threshold): same bits.
                let (x_auto, res_auto) = solve(Sweep::Auto);
                assert_bits(
                    &x_serial,
                    &x_auto,
                    &format!("{kind:?} {variant:?} auto vs serial solve"),
                );
                assert_eq!(res_serial.iterations, res_auto.iterations);

                // Any forced chunk count: same bits.
                for nchunks in [2usize, 5, 16] {
                    let (x_c, res_c) = solve(Sweep::Chunked(nchunks));
                    assert_bits(
                        &x_serial,
                        &x_c,
                        &format!("{kind:?} {variant:?} chunked({nchunks}) solve"),
                    );
                    assert_eq!(res_serial.iterations, res_c.iterations);
                }
            }
        }
    });
}

/// Below-threshold path: the solver on the plain `BcrsMatrix` operator
/// (auto scheduling, auto kernel kind) must be bit-identical across
/// repeated solves — the whole-solve analogue of
/// `small_matrices_take_identical_serial_path`.
#[test]
fn block_bicgstab_repeated_solves_are_bit_stable_below_threshold() {
    with_deadline(Duration::from_secs(60), || {
        let a = nonsym_banded(40, 2);
        let m = 3;
        let b = inputs(a.n_rows(), m);
        let opts = BlockBicgstabOptions {
            solve: SolveConfig { tol: 1e-11, max_iter: 400 },
            ..Default::default()
        };

        let mut x1 = MultiVec::zeros(a.n_rows(), m);
        let res1 = block_bicgstab_with_options(&a, &b, &mut x1, &opts);
        assert!(res1.converged, "{res1:?}");

        let mut x2 = MultiVec::zeros(a.n_rows(), m);
        let res2 = block_bicgstab_with_options(&a, &b, &mut x2, &opts);
        assert_bits(&x1, &x2, "repeated below-threshold solve");
        assert_eq!(res1.iterations, res2.iterations);
        oracle::tolerance::assert_bitwise(
            &res1.residual_norms,
            &res2.residual_norms,
            "repeated solve residual norms",
        );
    });
}
