//! The differential gate: every registered GSPMV backend over the full
//! pathological corpus, against the naive dense reference.

use mrhs_cluster::watchdog::with_deadline;
use oracle::corpus::Scale;
use oracle::runner::{
    run_nonsym_differential, run_power_differential, run_standard,
};
use std::time::Duration;

#[test]
fn all_backends_agree_on_small_corpus() {
    let report =
        with_deadline(Duration::from_secs(300), || run_standard(Scale::Small));
    // The corpus × m grid × backends matrix is large; make sure it
    // actually ran rather than vacuously passing.
    assert!(
        report.checks > 1000,
        "differential ran only {} checks — corpus or registry shrank",
        report.checks
    );
    report.assert_ok();
}

/// SpMPV power gate: fused `A^k·X` bitwise-identical to `k` repeated
/// serial sweeps per backend kind (default and forced-multi-chunk
/// plans), tolerance-equal across kinds, over the square corpus.
#[test]
fn spmpv_powers_agree_on_small_corpus() {
    let report = with_deadline(Duration::from_secs(300), || {
        run_power_differential(Scale::Small)
    });
    assert!(
        report.checks > 500,
        "power differential ran only {} checks — corpus or depth grid shrank",
        report.checks
    );
    report.assert_ok();
}

/// Nonsymmetric gate: GSPMV kernels and the block-BiCGStab solver over
/// the convection–diffusion / skew-perturbed corpus, against the dense
/// reference, direct solves, and the naive block-BiCGStab
/// implementation — including honest-outcome checks on the
/// near-breakdown entries.
#[test]
fn nonsym_suite_agrees_on_small_corpus() {
    let report = with_deadline(Duration::from_secs(300), || {
        run_nonsym_differential(Scale::Small)
    });
    assert!(
        report.checks > 800,
        "nonsym differential ran only {} checks — corpus or m grid shrank",
        report.checks
    );
    report.assert_ok();
}

/// The large-scale sweep crosses `PARALLEL_THRESHOLD` in both storage
/// formats, so the auto drivers take their chunked paths for real.
/// Run by the scheduled CI job in release mode:
/// `cargo test -p oracle --release -- --ignored`.
#[test]
#[ignore = "large corpus: run with --release -- --ignored (scheduled CI)"]
fn all_backends_agree_on_large_corpus() {
    let report =
        with_deadline(Duration::from_secs(1800), || run_standard(Scale::Large));
    report.assert_ok();
}

/// Large nonsymmetric sweep: includes the over-threshold
/// convection–diffusion entry, so the solver's auto GSPMV path runs its
/// chunked parallel kernels for real. Scheduled CI, release mode.
#[test]
#[ignore = "large corpus: run with --release -- --ignored (scheduled CI)"]
fn nonsym_suite_agrees_on_large_corpus() {
    let report = with_deadline(Duration::from_secs(1800), || {
        run_nonsym_differential(Scale::Large)
    });
    report.assert_ok();
}
