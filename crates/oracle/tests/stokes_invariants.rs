//! Physical invariants of assembled Stokesian resistance matrices,
//! checked through the oracle's dense references: exact symmetry (the
//! assembly is built from symmetric pair contributions, so the residual
//! must be zero, not merely small) and positive definiteness (via the
//! Jacobi eigensolver, independent of the workspace's Lanczos bounds).

use mrhs_stokes::packing::pack_ecoli;
use mrhs_stokes::{assemble_resistance, ResistanceConfig};
use oracle::invariants::symmetry_residual;
use oracle::reference::{jacobi_eigh, Dense};

#[test]
fn resistance_matrix_is_exactly_symmetric() {
    for seed in [1u64, 7, 42] {
        let system = pack_ecoli(18, 0.12, seed);
        let r = assemble_resistance(&system, &ResistanceConfig::default());
        let res = symmetry_residual(&r);
        assert_eq!(
            res, 0.0,
            "seed {seed}: assembled resistance has symmetry residual {res}"
        );
    }
}

#[test]
fn resistance_matrix_is_positive_definite() {
    let system = pack_ecoli(16, 0.15, 3);
    let r = assemble_resistance(&system, &ResistanceConfig::default());
    let dense = Dense::from_bcrs(&r);
    let (eigvals, _) = jacobi_eigh(&dense);

    let min = eigvals.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = eigvals.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        min > 0.0,
        "resistance matrix has non-positive eigenvalue {min} (max {max})"
    );
    // Drag-dominated matrices stay well conditioned; a collapse here
    // means the lubrication floor (xi_min) stopped working.
    assert!(
        max / min < 1e8,
        "condition number {:.2e} suspiciously large",
        max / min
    );
}

/// The driver's symmetric-storage fallback hinges on
/// `SymmetricBcrs::from_full` accepting real assemblies at the default
/// `symmetry_tol`. Pin that: conversion succeeds, and its independent
/// dense expansion is bit-identical to the full expansion.
#[test]
fn resistance_matrix_admits_symmetric_storage() {
    let system = pack_ecoli(14, 0.1, 9);
    let r = assemble_resistance(&system, &ResistanceConfig::default());
    let s = mrhs_sparse::SymmetricBcrs::from_full(&r, 1e-10)
        .expect("resistance must convert to symmetric storage");
    let full = Dense::from_bcrs(&r);
    let half = Dense::from_symmetric(&s);
    oracle::tolerance::assert_bitwise(
        &full.data,
        &half.data,
        "symmetric expansion of assembled resistance",
    );
}
