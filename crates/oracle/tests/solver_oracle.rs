//! Solver-level differentials: production solvers against the naive
//! dense references (direct solves, textbook block CG, the Jacobi
//! eigensolver square root, and the dense MRHS chunk step).

use mrhs_cluster::watchdog::with_deadline;
use mrhs_core::system::XorShiftNoise;
use mrhs_core::{run_mrhs_chunk, MrhsConfig};
use mrhs_solvers::{
    bicgstab, block_bicgstab_with_options, block_cg, spectral_bounds,
    BicgstabVariant, BlockBicgstabOptions, ChebyshevSqrt, LinearOperator,
    SolveConfig,
};
use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder, MultiVec};
use oracle::corpus::{nonsym_corpus, Scale};
use oracle::fixtures::LineSystem;
use oracle::invariants::{
    a_norm_error, check_block_bicgstab_bookkeeping, check_block_cg_bookkeeping,
};
use oracle::reference::{
    gauss_solve, gauss_solve_multi, naive_bicgstab, naive_block_bicgstab,
    naive_block_cg, naive_mrhs_chunk, sqrt_matvec_eigh, Dense,
};
use oracle::tolerance::TolModel;
use std::time::Duration;

/// Deterministic SPD test matrix (same construction as the determinism
/// suite, smaller).
fn spd(nb: usize, band: usize) -> BcrsMatrix {
    let mut t = BlockTripletBuilder::square(nb);
    for i in 0..nb {
        let mut d = Block3::scaled_identity(5.0 + band as f64);
        *d.get_mut(1, 2) = 0.2;
        *d.get_mut(2, 1) = 0.2;
        t.add(i, i, d);
        for off in 1..=band {
            if i + off < nb {
                let w = -1.0 / (1.5 + off as f64 + (i % 5) as f64 * 0.25);
                t.add_symmetric_pair(i, i + off, Block3::scaled_identity(w));
            }
        }
    }
    t.build()
}

fn rhs(n: usize, m: usize) -> MultiVec {
    let mut b = MultiVec::zeros(n, m);
    for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
        *v = ((i as f64) * 0.754_877_666_246_692_8).fract() * 2.0 - 1.0;
    }
    b
}

#[test]
fn production_block_cg_matches_direct_solve() {
    let a = spd(20, 2);
    let dense = Dense::from_bcrs(&a);
    let b = rhs(a.n_rows(), 6);

    let mut x = MultiVec::zeros(a.n_rows(), 6);
    let cfg = SolveConfig { tol: 1e-12, max_iter: 500 };
    let res = block_cg(&a, &b, &mut x, &cfg);
    assert!(res.converged, "{res:?}");

    let want = gauss_solve_multi(&dense, &b).expect("SPD direct solve");
    TolModel::SOLVER
        .check_slices(want.as_slice(), x.as_slice(), "block_cg vs gauss")
        .unwrap();
}

#[test]
fn naive_block_cg_matches_production_block_cg() {
    let a = spd(16, 2);
    let dense = Dense::from_bcrs(&a);
    let b = rhs(a.n_rows(), 4);

    let mut x_prod = MultiVec::zeros(a.n_rows(), 4);
    let res_prod =
        block_cg(&a, &b, &mut x_prod, &SolveConfig { tol: 1e-11, max_iter: 400 });
    assert!(res_prod.converged);

    let mut x_naive = MultiVec::zeros(a.n_rows(), 4);
    let res_naive = naive_block_cg(&dense, &b, &mut x_naive, 1e-11, 400);
    assert!(res_naive.converged, "{res_naive:?}");

    TolModel::SOLVER
        .check_slices(
            x_naive.as_slice(),
            x_prod.as_slice(),
            "production vs naive block CG",
        )
        .unwrap();
}

#[test]
fn block_cg_bookkeeping_is_consistent() {
    let a = spd(18, 2);
    let dense = Dense::from_bcrs(&a);
    let b = rhs(a.n_rows(), 5);

    // Converged run.
    let mut x = MultiVec::zeros(a.n_rows(), 5);
    let cfg = SolveConfig { tol: 1e-9, max_iter: 400 };
    let res = block_cg(&a, &b, &mut x, &cfg);
    assert!(res.converged);
    check_block_cg_bookkeeping(&dense, &b, &x, cfg.tol, &res).unwrap();

    // Truncated (unconverged) runs: the report must describe exactly
    // the state left in X after `iterations`.
    for max_iter in [1usize, 2, 3, 5] {
        let mut x = MultiVec::zeros(a.n_rows(), 5);
        let cfg = SolveConfig { tol: 1e-14, max_iter };
        let res = block_cg(&a, &b, &mut x, &cfg);
        check_block_cg_bookkeeping(&dense, &b, &x, cfg.tol, &res)
            .unwrap_or_else(|e| panic!("max_iter={max_iter}: {e}"));
    }
}

#[test]
fn block_cg_a_norm_error_is_monotone() {
    // CG minimizes the A-norm of the error over the growing Krylov
    // space, so it decreases monotonically with the iteration count
    // (unlike the residual 2-norm). Check per column against the
    // direct solution.
    let a = spd(14, 2);
    let dense = Dense::from_bcrs(&a);
    let m = 3;
    let b = rhs(a.n_rows(), m);
    let x_star = gauss_solve_multi(&dense, &b).unwrap();

    let mut prev: Option<Vec<f64>> = None;
    for max_iter in 1..=12 {
        let mut x = MultiVec::zeros(a.n_rows(), m);
        let cfg = SolveConfig { tol: 1e-15, max_iter };
        block_cg(&a, &b, &mut x, &cfg);
        let errs: Vec<f64> = (0..m)
            .map(|j| a_norm_error(&dense, &x.column(j), &x_star.column(j)))
            .collect();
        if let Some(p) = &prev {
            for (j, (now, before)) in errs.iter().zip(p).enumerate() {
                assert!(
                    *now <= before * (1.0 + 1e-8) + 1e-14,
                    "column {j}: A-norm error rose {before} -> {now} \
                     at max_iter={max_iter}"
                );
            }
        }
        prev = Some(errs);
    }
}

/// An operator whose products are NaN (a numerically destroyed Gram
/// matrix) defeats the ridge/symmetrize guards and forces the PᵀQ
/// breakdown in iteration 1. The result must report it exactly as
/// documented: `breakdown = Some(1)` with zero *completed* iterations,
/// X untouched, and residual norms describing the state after those
/// zero iterations (`B − A·X = B`).
#[test]
fn breakdown_reporting_is_consistent() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Healthy (zero) for the first `good` column-applies — enough to
    /// compute the initial residual `R = B` — NaN afterwards, so the
    /// first iteration's PᵀQ Gram matrix is destroyed while `R` and
    /// `ρ` still hold real values.
    struct DecayingOp {
        n: usize,
        good: AtomicUsize,
    }
    impl LinearOperator for DecayingOp {
        fn dim(&self) -> usize {
            self.n
        }
        fn apply(&self, _x: &[f64], y: &mut [f64]) {
            if self
                .good
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |g| {
                    (g > 0).then(|| g - 1)
                })
                .is_ok()
            {
                y.fill(0.0);
            } else {
                y.fill(f64::NAN);
            }
        }
    }

    let n = 12;
    let b = rhs(n, 3);
    let mut x = MultiVec::zeros(n, 3);
    let op = DecayingOp { n, good: AtomicUsize::new(3) };
    let res = block_cg(&op, &b, &mut x, &SolveConfig::default());

    assert_eq!(res.breakdown, Some(1), "{res:?}");
    assert_eq!(res.iterations, 0);
    assert!(!res.converged);
    assert!(x.as_slice().iter().all(|v| *v == 0.0), "X must be untouched");
    for (j, rn) in res.residual_norms.iter().enumerate() {
        let bn = b.column(j).iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            (rn - bn).abs() <= 1e-12 * bn,
            "column {j}: reported {rn}, ‖b‖ = {bn}"
        );
    }
    // X is untouched (zero), so the recomputed residual is B under any
    // operator — the bookkeeping check needs no meaningful dense here.
    let zero = Dense { n_rows: n, n_cols: n, data: vec![0.0; n * n] };
    check_block_cg_bookkeeping(&zero, &b, &x, 1e-6, &res).unwrap();
}

#[test]
fn chebyshev_sqrt_converges_to_eigen_sqrt() {
    let a = spd(10, 2);
    let dense = Dense::from_bcrs(&a);
    let n = a.n_rows();

    let g = (a.gershgorin_lower_bound(), a.gershgorin_upper_bound());
    let bounds = spectral_bounds(&a, 20, Some(g));
    let z: Vec<f64> = (0..n)
        .map(|i| ((i as f64) * 0.381_966_011_250_105).fract() * 2.0 - 1.0)
        .collect();
    let want = sqrt_matvec_eigh(&dense, &z);

    // Error must fall with the polynomial order and be tiny at the
    // order the drivers use for production (30) and above.
    let mut last_err = f64::INFINITY;
    for order in [8usize, 16, 30, 60] {
        let cheb = ChebyshevSqrt::new(bounds.lo / 1.15, bounds.hi * 1.15, order);
        let mut got = vec![0.0; n];
        cheb.apply(&a, &z, &mut got);
        let err = want
            .iter()
            .zip(&got)
            .map(|(w, g)| (w - g).abs())
            .fold(0.0f64, f64::max);
        assert!(
            err <= last_err * 1.5 + 1e-12,
            "error should not grow with order: {last_err} -> {err} at {order}"
        );
        last_err = err;
    }
    assert!(last_err < 1e-8, "order-60 Chebyshev error {last_err}");
}

/// End-to-end Alg. 2 differential: the production chunk driver against
/// the dense reference chunk (Jacobi eigensolver square root + direct
/// solves), same system, same noise stream. With a high Chebyshev
/// order and tight CG tolerances the trajectories must coincide to
/// well beyond the solver tolerance.
#[test]
fn mrhs_chunk_matches_dense_reference_trajectory() {
    with_deadline(Duration::from_secs(120), || {
        let m = 4;
        let cfg = MrhsConfig {
            m,
            cheb_order: 60,
            solve: SolveConfig { tol: 1e-13, max_iter: 2000 },
            guess_tol: 1e-10,
            record_guess_errors: false,
            ..Default::default()
        };

        let mut sys_prod = LineSystem::new(10);
        let mut noise_prod = XorShiftNoise::new(2024);
        let report = run_mrhs_chunk(&mut sys_prod, &mut noise_prod, &cfg);
        assert_eq!(report.steps.len(), m);

        let mut sys_ref = LineSystem::new(10);
        let mut noise_ref = XorShiftNoise::new(2024);
        let outcome = naive_mrhs_chunk(&mut sys_ref, &mut noise_ref, m);
        assert_eq!(outcome.m, m);

        let model = TolModel { rel: 1e-7, floor: 1.0, max_ulps: 64 };
        model
            .check_slices(
                sys_ref.positions(),
                sys_prod.positions(),
                "chunk trajectory production vs dense reference",
            )
            .unwrap();
    });
}

/// Same differential with the symmetric-storage driver enabled — the
/// production path the paper's headline numbers use.
#[test]
fn symmetric_storage_chunk_matches_dense_reference_trajectory() {
    with_deadline(Duration::from_secs(120), || {
        let m = 4;
        let cfg = MrhsConfig {
            m,
            cheb_order: 60,
            solve: SolveConfig { tol: 1e-13, max_iter: 2000 },
            guess_tol: 1e-10,
            record_guess_errors: false,
            symmetric_storage: true,
            ..Default::default()
        };

        let mut sys_prod = LineSystem::new(10);
        let mut noise_prod = XorShiftNoise::new(777);
        run_mrhs_chunk(&mut sys_prod, &mut noise_prod, &cfg);

        let mut sys_ref = LineSystem::new(10);
        let mut noise_ref = XorShiftNoise::new(777);
        naive_mrhs_chunk(&mut sys_ref, &mut noise_ref, m);

        let model = TolModel { rel: 1e-7, floor: 1.0, max_ulps: 64 };
        model
            .check_slices(
                sys_ref.positions(),
                sys_prod.positions(),
                "symmetric-storage chunk vs dense reference",
            )
            .unwrap();
    });
}

// ---------------------------------------------------------------------------
// Nonsymmetric arm: block BiCGStab against direct solves and the naive
// dense reference, over the seeded nonsymmetric corpus.
// ---------------------------------------------------------------------------

/// Every well-conditioned nonsym corpus entry, both reduction
/// schedules: the production block solver must land on the direct
/// solution and keep its bookkeeping honest.
#[test]
fn production_block_bicgstab_matches_direct_solve_on_nonsym_corpus() {
    with_deadline(Duration::from_secs(300), || {
        for entry in nonsym_corpus(Scale::Small) {
            if entry.near_breakdown {
                continue;
            }
            let a = &entry.matrix;
            let dense = Dense::from_bcrs(a);
            let b = rhs(a.n_rows(), 3);
            let want = gauss_solve_multi(&dense, &b).expect("direct solve");

            for variant in [BicgstabVariant::Classic, BicgstabVariant::Reordered] {
                let opts = BlockBicgstabOptions {
                    solve: SolveConfig { tol: 1e-10, max_iter: 2000 },
                    variant,
                    ..Default::default()
                };
                let mut x = MultiVec::zeros(a.n_rows(), 3);
                let res = block_bicgstab_with_options(a, &b, &mut x, &opts);
                assert!(res.converged, "{} {variant:?}: {res:?}", entry.name);
                assert!(res.breakdown.is_none());
                TolModel::NONSYM_SOLVER
                    .check_slices(
                        want.as_slice(),
                        x.as_slice(),
                        &format!("{} {variant:?} vs gauss", entry.name),
                    )
                    .unwrap();
                check_block_bicgstab_bookkeeping(
                    &dense,
                    &b,
                    &x,
                    opts.solve.tol,
                    &res,
                )
                .unwrap_or_else(|e| panic!("{} {variant:?}: {e}", entry.name));
            }
        }
    });
}

/// The independent plain-loop dense implementation and the production
/// register-tiled one must agree (both pinned to the direct solution).
#[test]
fn naive_block_bicgstab_matches_production() {
    let entry = &nonsym_corpus(Scale::Small)[0];
    let a = &entry.matrix;
    let dense = Dense::from_bcrs(a);
    let b = rhs(a.n_rows(), 4);

    let mut x_prod = MultiVec::zeros(a.n_rows(), 4);
    let res_prod = block_bicgstab_with_options(
        a,
        &b,
        &mut x_prod,
        &BlockBicgstabOptions {
            solve: SolveConfig { tol: 1e-11, max_iter: 2000 },
            ..Default::default()
        },
    );
    assert!(res_prod.converged, "{res_prod:?}");

    let mut x_naive = MultiVec::zeros(a.n_rows(), 4);
    let res_naive = naive_block_bicgstab(&dense, &b, &mut x_naive, 1e-11, 2000);
    assert!(res_naive.converged, "{res_naive:?}");

    TolModel::NONSYM_SOLVER
        .check_slices(
            x_naive.as_slice(),
            x_prod.as_slice(),
            "production vs naive block BiCGStab",
        )
        .unwrap();
}

/// Scalar path: production `bicgstab` against the textbook dense
/// reference and the direct solution on a nonsymmetric operator.
#[test]
fn scalar_bicgstab_matches_naive_reference() {
    let entry = &nonsym_corpus(Scale::Small)[1];
    let a = &entry.matrix;
    let dense = Dense::from_bcrs(a);
    let n = a.n_rows();
    let b: Vec<f64> = (0..n)
        .map(|i| ((i as f64) * 0.754_877_666_246_692_8).fract() * 2.0 - 1.0)
        .collect();
    let want = gauss_solve(&dense, &b).expect("direct solve");

    let mut x_prod = vec![0.0; n];
    let res =
        bicgstab(a, &b, &mut x_prod, &SolveConfig { tol: 1e-11, max_iter: 2000 });
    assert!(res.converged, "{res:?}");

    let mut x_naive = vec![0.0; n];
    let res_naive = naive_bicgstab(&dense, &b, &mut x_naive, 1e-11, 2000);
    assert!(res_naive.converged);

    TolModel::NONSYM_SOLVER
        .check_slices(&want, &x_prod, "scalar bicgstab vs gauss")
        .unwrap();
    TolModel::NONSYM_SOLVER
        .check_slices(&want, &x_naive, "naive bicgstab vs gauss")
        .unwrap();
}

/// Truncated (unconverged) block-BiCGStab runs must still report a
/// state that matches the solution actually left in `X` — the same
/// bookkeeping contract block CG has.
#[test]
fn block_bicgstab_bookkeeping_is_consistent_when_truncated() {
    let entry = &nonsym_corpus(Scale::Small)[0];
    let a = &entry.matrix;
    let dense = Dense::from_bcrs(a);
    let b = rhs(a.n_rows(), 5);

    for variant in [BicgstabVariant::Classic, BicgstabVariant::Reordered] {
        for max_iter in [1usize, 2, 3, 5] {
            let opts = BlockBicgstabOptions {
                solve: SolveConfig { tol: 1e-14, max_iter },
                variant,
                ..Default::default()
            };
            let mut x = MultiVec::zeros(a.n_rows(), 5);
            let res = block_bicgstab_with_options(a, &b, &mut x, &opts);
            check_block_bicgstab_bookkeeping(&dense, &b, &x, 1e-14, &res)
                .unwrap_or_else(|e| panic!("{variant:?} max_iter={max_iter}: {e}"));
        }
    }
}

/// The near-breakdown corpus entry (skew-dominant, δ·I barely keeping
/// it nonsingular) must produce an *honest* outcome: convergence, a
/// classified ρ/ω breakdown, or the iteration cap — with bookkeeping
/// that still describes the returned state. Never a silent wrong
/// answer.
#[test]
fn near_breakdown_entry_reports_an_honest_outcome() {
    let entries = nonsym_corpus(Scale::Small);
    let entry = entries
        .iter()
        .find(|e| e.near_breakdown)
        .expect("corpus must keep a near-breakdown entry");
    let a = &entry.matrix;
    let dense = Dense::from_bcrs(a);
    let b = rhs(a.n_rows(), 2);

    for variant in [BicgstabVariant::Classic, BicgstabVariant::Reordered] {
        let opts = BlockBicgstabOptions {
            solve: SolveConfig { tol: 1e-10, max_iter: 500 },
            variant,
            ..Default::default()
        };
        let mut x = MultiVec::zeros(a.n_rows(), 2);
        let res = block_bicgstab_with_options(a, &b, &mut x, &opts);
        assert!(
            res.converged
                || res.breakdown.is_some()
                || res.iterations >= opts.solve.max_iter,
            "{variant:?}: silent stop at {} iterations: {res:?}",
            res.iterations
        );
        check_block_bicgstab_bookkeeping(&dense, &b, &x, opts.solve.tol, &res)
            .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
    }
}
