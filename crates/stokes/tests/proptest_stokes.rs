//! Property-based tests of the Stokesian substrate: neighbor-search
//! exactness against brute force, tensor positivity, and assembled
//! matrix invariants on random polydisperse configurations.

use mrhs_sparse::Block3;
use mrhs_stokes::cell_list::for_each_scaled_pair;
use mrhs_stokes::lubrication::{pair_block, pair_scalars};
use mrhs_stokes::rpy::{rpy_pair_block, rpy_self_block};
use mrhs_stokes::{assemble_resistance, ParticleSystem, ResistanceConfig};
use proptest::prelude::*;

/// Strategy: a random periodic polydisperse system (radii spread ~5×).
fn arb_system(max_n: usize) -> impl Strategy<Value = ParticleSystem> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(
                    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
                    n,
                ),
                proptest::collection::vec(0.4f64..2.0, n),
                8.0f64..20.0,
            )
        })
        .prop_map(|(_n, frac_pos, radii, box_len)| {
            let positions: Vec<[f64; 3]> = frac_pos
                .into_iter()
                .map(|(x, y, z)| [x * box_len, y * box_len, z * box_len])
                .collect();
            ParticleSystem::new(positions, radii, [box_len; 3])
        })
}

fn brute_force_pairs(s: &ParticleSystem, scale: f64) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..s.len() {
        for j in i + 1..s.len() {
            let cutoff = scale * 0.5 * (s.radii()[i] + s.radii()[j]);
            if s.distance(i, j) <= cutoff {
                out.push((i, j));
            }
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scaled_pair_search_matches_brute_force(
        s in arb_system(40),
        scale in 2.0f64..5.0,
    ) {
        let mut got: Vec<(usize, usize)> = Vec::new();
        let mut max_dist_err = 0.0f64;
        for_each_scaled_pair(&s, scale, |i, j, d| {
            max_dist_err = max_dist_err.max((d - s.distance(i, j)).abs());
            got.push((i.min(j), i.max(j)));
        });
        prop_assert!(max_dist_err < 1e-9);
        got.sort_unstable();
        let mut dedup = got.clone();
        dedup.dedup();
        prop_assert_eq!(got.len(), dedup.len(), "duplicate pairs");
        prop_assert_eq!(dedup, brute_force_pairs(&s, scale));
    }

    #[test]
    fn minimum_image_is_shortest(s in arb_system(20)) {
        let bl = s.box_lengths();
        let half_diag =
            0.5 * (bl[0] * bl[0] + bl[1] * bl[1] + bl[2] * bl[2]).sqrt();
        for i in 0..s.len() {
            for j in 0..s.len() {
                if i == j { continue; }
                let d = s.minimum_image(i, j);
                let dist = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                prop_assert!(dist <= half_diag + 1e-9);
                // antisymmetry
                let dr = s.minimum_image(j, i);
                for k in 0..3 {
                    prop_assert!((d[k] + dr[k]).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn morton_sort_preserves_multiset(mut s in arb_system(30)) {
        let mut radii_before = s.radii().to_vec();
        let phi = s.volume_fraction();
        s.sort_morton();
        let mut radii_after = s.radii().to_vec();
        radii_before.sort_by(|a, b| a.partial_cmp(b).unwrap());
        radii_after.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(radii_before, radii_after);
        prop_assert!((s.volume_fraction() - phi).abs() < 1e-12);
    }

    #[test]
    fn lubrication_scalars_positive_and_decreasing(
        a in 0.3f64..3.0,
        b in 0.3f64..3.0,
    ) {
        let mut last = f64::INFINITY;
        for &xi in &[1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0] {
            let s = pair_scalars(a, b, xi, 1e-6);
            prop_assert!(s.x_a > 0.0 && s.y_a > 0.0);
            prop_assert!(s.x_a > s.y_a, "squeeze dominates shear");
            prop_assert!(s.x_a <= last);
            last = s.x_a;
        }
    }

    #[test]
    fn pair_block_positive_semidefinite(
        dx in -1.0f64..1.0, dy in -1.0f64..1.0, dz in -1.0f64..1.0,
        a in 0.3f64..3.0, b in 0.3f64..3.0, xi in 1e-4f64..2.0,
    ) {
        prop_assume!(dx * dx + dy * dy + dz * dz > 1e-4);
        let blk = pair_block([dx, dy, dz], a, b, 1.0, xi, 1e-5);
        prop_assert!(blk.is_symmetric_within(1e-9));
        for v in [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.3, -0.7, 0.2], [dx, dy, dz]] {
            let bv = blk.mul_vec(v);
            let q: f64 = v.iter().zip(&bv).map(|(x, y)| x * y).sum();
            prop_assert!(q >= -1e-9, "q = {q} for v = {v:?}");
        }
    }

    #[test]
    fn rpy_blocks_symmetric_and_bounded_by_self_mobility(
        dx in 0.1f64..5.0, a in 0.3f64..2.0, b in 0.3f64..2.0,
    ) {
        let pair = rpy_pair_block([dx, 0.4, -0.2], a, b, 1.0);
        prop_assert!(pair.is_symmetric_within(1e-12));
        // cross mobility never exceeds the smaller self mobility
        let self_small = rpy_self_block(a.max(b), 1.0).get(0, 0);
        for k in 0..9 {
            prop_assert!(pair.0[k].abs() <= self_small * 1.5 + 1e-12);
        }
    }

    #[test]
    fn resistance_spd_on_random_configurations(s in arb_system(25)) {
        let cfg = ResistanceConfig::default();
        let r = assemble_resistance(&s, &cfg);
        // Assembly is built from symmetric pair contributions, so the
        // oracle's symmetry residual must be *exactly* zero — stronger
        // than the old `is_symmetric_within(1e-8)` check.
        let res = oracle::invariants::symmetry_residual(&r);
        prop_assert_eq!(res, 0.0, "symmetry residual {}", res);
        prop_assert_eq!(r.nb_rows(), s.len());
        // Rayleigh quotient vs the exact μ_F·D lower bound.
        let lb = mrhs_stokes::resistance::spectrum_lower_bound(&s, &cfg);
        let n = r.n_rows();
        let mut state = 77u64;
        let v: Vec<f64> = (0..n).map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        }).collect();
        let mut rv = vec![0.0; n];
        use mrhs_solvers::LinearOperator;
        r.apply(&v, &mut rv);
        let q: f64 = v.iter().zip(&rv).map(|(x, y)| x * y).sum::<f64>()
            / v.iter().map(|x| x * x).sum::<f64>();
        prop_assert!(q >= lb * (1.0 - 1e-9), "{q} < {lb}");
    }

    #[test]
    fn diagonal_dominates_when_dilute(s in arb_system(15)) {
        // With a huge box (rescale positions), every particle is isolated:
        // the matrix must be exactly the diagonal drag.
        let big = 1000.0;
        let scaled = ParticleSystem::new(
            s.positions().iter().map(|p| [p[0] * big, p[1] * big, p[2] * big]).collect(),
            s.radii().to_vec(),
            [s.box_lengths()[0] * big; 3],
        );
        let r = assemble_resistance(&scaled, &ResistanceConfig::default());
        prop_assert_eq!(r.nnz_blocks(), scaled.len());
        for bi in 0..r.nb_rows() {
            let d = r.block_at(bi, bi).unwrap();
            prop_assert!(d.get(0, 0) > 0.0);
            prop_assert!((d.get(0, 0) - d.get(1, 1)).abs() < 1e-12);
            prop_assert!(d.get(0, 1).abs() < 1e-12);
        }
    }
}

/// `Block3` helper used by the strategies (kept to assert the import is
/// exercised; see `pair_block_positive_semidefinite`).
#[allow(dead_code)]
fn _block_zero() -> Block3 {
    Block3::ZERO
}
