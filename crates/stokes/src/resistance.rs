//! Assembly of the sparse resistance matrix `R = μ_F·D + R_lub`.
//!
//! Following the paper's sparse approximation (Torres & Gilbert 1996):
//! the dense far field `(M^∞)⁻¹` is replaced by a far-field effective
//! viscosity acting on each particle's Stokes drag, adjusted for the
//! particle's own radius (the paper's "slight modification … to account
//! for different particle radii"); the near field is the pairwise
//! lubrication matrix in relative-motion form. The result is a BCRS
//! matrix with 3×3 blocks — one diagonal block per particle plus one
//! off-diagonal block per interacting pair — and it is symmetric
//! positive definite by construction: `R ⪰ μ_F·D ≻ 0`.

use crate::lubrication::{dimensionless_gap, pair_block};
use crate::particle::ParticleSystem;
use mrhs_sparse::{BcrsMatrix, Block3, BlockTripletBuilder};

/// Parameters of resistance assembly.
#[derive(Clone, Copy, Debug)]
pub struct ResistanceConfig {
    /// Solvent viscosity `η` (reduced units; 1.0 by default).
    pub eta: f64,
    /// Pair interaction cutoff in scaled separation: particles interact
    /// when `s = 2r/(a_i + a_j) < s_cut`. The paper varies this cutoff
    /// to generate matrices of different density (Table I).
    pub s_cut: f64,
    /// Floor on the dimensionless gap `ξ`, bounding the lubrication
    /// singularity and hence the condition number.
    pub xi_min: f64,
}

impl Default for ResistanceConfig {
    fn default() -> Self {
        ResistanceConfig { eta: 1.0, s_cut: 3.0, xi_min: 1e-3 }
    }
}

/// Far-field effective viscosity `μ_F(φ)`: the paper chooses it by the
/// particle volume fraction (after Torres & Gilbert); we use the
/// Einstein–Batchelor expansion, adequate for a scalar effective medium.
pub fn mu_f(volume_fraction: f64) -> f64 {
    let phi = volume_fraction.clamp(0.0, 0.64);
    1.0 + 2.5 * phi + 5.2 * phi * phi
}

/// Assembles the resistance matrix for the current configuration.
pub fn assemble_resistance(
    system: &ParticleSystem,
    cfg: &ResistanceConfig,
) -> BcrsMatrix {
    let n = system.len();
    let mut t = BlockTripletBuilder::square(n);
    let mu = mu_f(system.volume_fraction());
    let radii = system.radii();

    // Far-field drag: 6πη·a_i·μ_F on each particle's diagonal.
    for (i, &a) in radii.iter().enumerate() {
        let drag = 6.0 * std::f64::consts::PI * cfg.eta * a * mu;
        t.add(i, i, Block3::scaled_identity(drag));
    }

    if n > 1 {
        // Size-classed pair search: each pair interacts when its scaled
        // separation 2r/(a_i+a_j) is below s_cut.
        crate::cell_list::for_each_scaled_pair(system, cfg.s_cut, |i, j, dist| {
            let (ai, aj) = (radii[i], radii[j]);
            let d = system.minimum_image(i, j);
            let xi = dimensionless_gap(dist, ai, aj);
            let a_blk = pair_block(d, ai, aj, cfg.eta, xi, cfg.xi_min);
            // Relative-motion form: +A on both diagonals, −A off-diagonal.
            t.add(i, i, a_blk);
            t.add(j, j, a_blk);
            t.add(i, j, -a_blk);
            t.add(j, i, -a_blk);
        });
    }
    t.build()
}

/// An exact lower bound on the spectrum of the assembled matrix:
/// `R ⪰ μ_F·D`, so `λ_min(R) ≥ min_i 6πη·a_i·μ_F`.
pub fn spectrum_lower_bound(
    system: &ParticleSystem,
    cfg: &ResistanceConfig,
) -> f64 {
    let mu = mu_f(system.volume_fraction());
    system
        .radii()
        .iter()
        .map(|&a| 6.0 * std::f64::consts::PI * cfg.eta * a * mu)
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packing::pack_ecoli;
    use mrhs_solvers::LinearOperator;

    fn small_system(fraction: f64, seed: u64) -> ParticleSystem {
        pack_ecoli(60, fraction, seed)
    }

    #[test]
    fn matrix_has_one_block_row_per_particle() {
        let s = small_system(0.3, 1);
        let r = assemble_resistance(&s, &ResistanceConfig::default());
        assert_eq!(r.nb_rows(), 60);
        assert_eq!(r.n_rows(), 180);
    }

    #[test]
    fn matrix_is_symmetric() {
        let s = small_system(0.4, 2);
        let r = assemble_resistance(&s, &ResistanceConfig::default());
        assert!(r.is_symmetric_within(1e-9));
    }

    #[test]
    fn matrix_is_positive_definite() {
        let s = small_system(0.5, 3);
        let cfg = ResistanceConfig::default();
        let r = assemble_resistance(&s, &cfg);
        // Rayleigh quotients for several pseudo-random vectors must
        // exceed the exact lower bound.
        let lb = spectrum_lower_bound(&s, &cfg);
        assert!(lb > 0.0);
        let n = r.n_rows();
        let mut state = 99u64;
        for _ in 0..5 {
            let v: Vec<f64> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
                })
                .collect();
            let mut rv = vec![0.0; n];
            r.apply(&v, &mut rv);
            let num: f64 = v.iter().zip(&rv).map(|(a, b)| a * b).sum();
            let den: f64 = v.iter().map(|a| a * a).sum();
            assert!(num / den >= lb * (1.0 - 1e-9), "{} < {lb}", num / den);
        }
    }

    #[test]
    fn density_grows_with_cutoff() {
        // The paper generated mat1..mat3 by changing the cutoff radius.
        let s = small_system(0.5, 4);
        let narrow = assemble_resistance(
            &s,
            &ResistanceConfig { s_cut: 2.2, ..Default::default() },
        );
        let wide = assemble_resistance(
            &s,
            &ResistanceConfig { s_cut: 4.0, ..Default::default() },
        );
        assert!(wide.nnz_blocks() > narrow.nnz_blocks());
        assert!(wide.blocks_per_row() > narrow.blocks_per_row());
    }

    #[test]
    fn density_grows_with_occupancy() {
        let cfg = ResistanceConfig::default();
        let dilute = assemble_resistance(&small_system(0.1, 5), &cfg);
        let dense = assemble_resistance(&small_system(0.5, 5), &cfg);
        assert!(dense.blocks_per_row() > dilute.blocks_per_row());
    }

    #[test]
    fn isolated_particles_yield_pure_drag() {
        // Two far-apart particles: R is exactly the diagonal drag.
        let s = ParticleSystem::new(
            vec![[10.0, 10.0, 10.0], [60.0, 60.0, 60.0]],
            vec![1.0, 2.0],
            [100.0; 3],
        );
        let cfg = ResistanceConfig::default();
        let r = assemble_resistance(&s, &cfg);
        assert_eq!(r.nnz_blocks(), 2);
        let mu = mu_f(s.volume_fraction());
        let want0 = 6.0 * std::f64::consts::PI * mu;
        assert!((r.block_at(0, 0).unwrap().get(0, 0) - want0).abs() < 1e-9);
        assert!((r.block_at(1, 1).unwrap().get(1, 1) - 2.0 * want0).abs() < 1e-9);
    }

    #[test]
    fn touching_pair_dominated_by_lubrication() {
        let s = ParticleSystem::new(
            vec![[10.0, 10.0, 10.0], [12.05, 10.0, 10.0]],
            vec![1.0, 1.0],
            [50.0; 3],
        );
        let cfg = ResistanceConfig::default();
        let r = assemble_resistance(&s, &cfg);
        assert_eq!(r.nnz_blocks(), 4);
        // Squeeze resistance along x should dwarf the bare drag.
        let diag = r.block_at(0, 0).unwrap().get(0, 0);
        let drag = 6.0 * std::f64::consts::PI * mu_f(s.volume_fraction());
        assert!(diag > 3.0 * drag, "diag {diag} vs drag {drag}");
        // Off-diagonal block is the negated pair block.
        let off = r.block_at(0, 1).unwrap();
        let d00 = r.block_at(0, 0).unwrap().get(0, 0);
        assert!((off.get(0, 0) + (d00 - drag)).abs() < 1e-9);
    }

    #[test]
    fn mu_f_increases_with_occupancy() {
        assert!(mu_f(0.0) == 1.0);
        assert!(mu_f(0.3) > mu_f(0.1));
        assert!(mu_f(0.5) > 2.0);
    }

    #[test]
    fn gershgorin_lower_bound_respects_exact_bound() {
        let s = small_system(0.5, 6);
        let cfg = ResistanceConfig::default();
        let r = assemble_resistance(&s, &cfg);
        // Gershgorin may be loose (even negative), but the exact bound
        // must be positive and below the Gershgorin upper bound.
        let lb = spectrum_lower_bound(&s, &cfg);
        assert!(lb > 0.0);
        assert!(r.gershgorin_upper_bound() > lb);
    }
}
