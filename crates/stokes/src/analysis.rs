//! Trajectory analysis.
//!
//! The paper motivates SD with "macroscopic properties of the particle
//! motion, such as average diffusion constants, that arise from the
//! microscopic motions" (§II-A). This module provides the standard
//! observables: unwrapped mean squared displacement (and the diffusion
//! constant from its slope) and the radial distribution function.

use crate::particle::ParticleSystem;

/// Accumulates unwrapped particle trajectories across periodic
/// boundaries and reports mean squared displacement.
#[derive(Clone, Debug)]
pub struct MsdTracker {
    start: Vec<[f64; 3]>,
    last: Vec<[f64; 3]>,
    unwrapped: Vec<[f64; 3]>,
    box_lengths: [f64; 3],
    /// `(time, msd)` samples recorded so far.
    samples: Vec<(f64, f64)>,
    time: f64,
}

impl MsdTracker {
    /// Starts tracking from the system's current configuration.
    pub fn new(system: &ParticleSystem) -> Self {
        let p = system.positions().to_vec();
        MsdTracker {
            start: p.clone(),
            last: p.clone(),
            unwrapped: p,
            box_lengths: system.box_lengths(),
            samples: Vec::new(),
            time: 0.0,
        }
    }

    /// Folds in the configuration after `dt` more time units. Positions
    /// are unwrapped with the minimum-image convention, so per-call
    /// displacements must stay below half a box length (true for any
    /// sane time step).
    pub fn record(&mut self, system: &ParticleSystem, dt: f64) -> f64 {
        assert_eq!(system.len(), self.unwrapped.len());
        self.time += dt;
        for ((u, l), p) in self
            .unwrapped
            .iter_mut()
            .zip(self.last.iter_mut())
            .zip(system.positions())
        {
            for d in 0..3 {
                let bl = self.box_lengths[d];
                let mut delta = p[d] - l[d];
                delta -= bl * (delta / bl).round();
                u[d] += delta;
                l[d] = p[d];
            }
        }
        let msd = self.msd();
        self.samples.push((self.time, msd));
        msd
    }

    /// Current mean squared displacement.
    pub fn msd(&self) -> f64 {
        let n = self.unwrapped.len().max(1);
        self.unwrapped
            .iter()
            .zip(&self.start)
            .map(|(u, s)| {
                (0..3).map(|d| (u[d] - s[d]) * (u[d] - s[d])).sum::<f64>()
            })
            .sum::<f64>()
            / n as f64
    }

    /// All `(time, msd)` samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Diffusion constant from the MSD slope: `MSD = 6·D·t` in 3-D,
    /// least-squares fitted through the origin. `None` before two
    /// samples exist.
    pub fn diffusion_constant(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let num: f64 = self.samples.iter().map(|(t, m)| t * m).sum();
        let den: f64 = self.samples.iter().map(|(t, _)| t * t).sum();
        (den > 0.0).then(|| num / den / 6.0)
    }
}

/// Radial distribution function `g(r)` for a polydisperse system,
/// histogrammed in *surface separation* units so differently sized
/// pairs can share bins meaningfully.
pub fn radial_distribution(
    system: &ParticleSystem,
    max_gap: f64,
    bins: usize,
) -> Vec<(f64, f64)> {
    assert!(bins > 0 && max_gap > 0.0);
    let n = system.len();
    let mut hist = vec![0usize; bins];
    let dr = max_gap / bins as f64;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            let gap = system.gap(i, j);
            if (0.0..max_gap).contains(&gap) {
                hist[(gap / dr) as usize] += 1;
            }
            pairs += 1;
        }
    }
    // Normalize each shell by its volume share and the pair count so a
    // structureless (ideal-gas-like) system reads g ≈ 1 at large gap.
    let volume =
        system.box_lengths()[0] * system.box_lengths()[1] * system.box_lengths()[2];
    let mean_diameter =
        2.0 * system.radii().iter().sum::<f64>() / system.len().max(1) as f64;
    hist.iter()
        .enumerate()
        .map(|(k, &count)| {
            let r_mid = mean_diameter + (k as f64 + 0.5) * dr;
            let shell = 4.0 * std::f64::consts::PI * r_mid * r_mid * dr;
            let ideal = pairs as f64 * shell / volume;
            ((k as f64 + 0.5) * dr, count as f64 / ideal.max(1e-300))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system_at(positions: Vec<[f64; 3]>) -> ParticleSystem {
        let n = positions.len();
        ParticleSystem::new(positions, vec![1.0; n], [100.0; 3])
    }

    #[test]
    fn msd_zero_without_motion() {
        let s = system_at(vec![[1.0; 3], [5.0; 3]]);
        let mut t = MsdTracker::new(&s);
        assert_eq!(t.record(&s, 1.0), 0.0);
    }

    #[test]
    fn msd_tracks_simple_displacement() {
        let s0 = system_at(vec![[10.0, 10.0, 10.0]]);
        let mut t = MsdTracker::new(&s0);
        let s1 = system_at(vec![[13.0, 14.0, 10.0]]);
        let msd = t.record(&s1, 1.0);
        assert!((msd - 25.0).abs() < 1e-12);
    }

    #[test]
    fn msd_unwraps_across_boundary() {
        // Walk right in steps of 30 in a box of 100: after four steps
        // we wrapped once but true displacement is 120.
        let mut t = MsdTracker::new(&system_at(vec![[10.0, 0.0, 0.0]]));
        for k in 1..=4 {
            let x = (10.0 + 30.0 * k as f64) % 100.0;
            t.record(&system_at(vec![[x, 0.0, 0.0]]), 1.0);
        }
        assert!((t.msd() - 120.0 * 120.0).abs() < 1e-9, "{}", t.msd());
    }

    #[test]
    fn diffusion_constant_of_linear_msd() {
        // MSD = 12 t  ⇒  D = 2.
        let s = system_at(vec![[0.0; 3]]);
        let mut t = MsdTracker::new(&s);
        t.samples = vec![(1.0, 12.0), (2.0, 24.0), (3.0, 36.0)];
        let d = t.diffusion_constant().unwrap();
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rdf_empty_for_distant_particles() {
        let s = system_at(vec![[0.0; 3], [50.0, 0.0, 0.0]]);
        let g = radial_distribution(&s, 5.0, 10);
        assert_eq!(g.len(), 10);
        assert!(g.iter().all(|(_, v)| *v == 0.0));
    }

    #[test]
    fn rdf_peaks_where_pairs_sit() {
        // Pairs at gap 1.0 of max_gap 2.0 → counts in bin 5 of 10.
        let s = system_at(vec![
            [10.0, 10.0, 10.0],
            [13.0, 10.0, 10.0], // distance 3, gap 1
            [10.0, 13.0, 10.0],
        ]);
        let g = radial_distribution(&s, 2.0, 10);
        let peak =
            g.iter().cloned().fold(
                (0.0, 0.0),
                |a, b| {
                    if b.1 > a.1 {
                        b
                    } else {
                        a
                    }
                },
            );
        assert!((peak.0 - 1.1).abs() < 0.2, "peak at {}", peak.0);
    }
}
