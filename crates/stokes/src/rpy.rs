//! Rotne–Prager–Yamakawa (RPY) far-field mobility tensor.
//!
//! The full Stokesian dynamics resistance is `R = (M^∞)⁻¹ + R_lub`,
//! where `M^∞` is the dense far-field mobility whose pair blocks are
//! RPY tensors. The paper replaces `(M^∞)⁻¹` with the sparse effective
//! viscosity `μ_F·I` and leaves multi-vector PME for future work; we
//! implement the RPY blocks anyway as an optional dense far-field model
//! (usable for small systems) and as a validation artifact: `M^∞` built
//! from these blocks must be symmetric positive definite.

use mrhs_sparse::Block3;

/// The RPY pair mobility block for two spheres of radii `(a, b)`
/// separated by `r_vec` (from `i` to `j`), in units of `1/(6πη)`
/// relative mobility; the self block is `I/a`.
///
/// For non-overlapping spheres (`r ≥ a + b`):
/// ```text
/// M_ij = (1/(8πη r)) [ (1 + (a²+b²)/(3r²))·I + (1 − (a²+b²)/r²)·d⊗d ] · (8πη)/(6πη) scaling folded in
/// ```
/// The overlapping correction (Rotne–Prager for `r < a + b`) uses the
/// standard equal-radii interpolation applied to the effective radius,
/// which keeps the tensor positive definite for all separations.
pub fn rpy_pair_block(r_vec: [f64; 3], a: f64, b: f64, eta: f64) -> Block3 {
    let r2 = r_vec[0] * r_vec[0] + r_vec[1] * r_vec[1] + r_vec[2] * r_vec[2];
    let r = r2.sqrt();
    assert!(r > 0.0, "coincident centers");
    let e = [r_vec[0] / r, r_vec[1] / r, r_vec[2] / r];
    let dd = Block3::outer(e, e);
    let pre = 1.0 / (8.0 * std::f64::consts::PI * eta * r);

    let (c_i, c_d) = if r >= a + b {
        // Non-overlapping RPY.
        let s2 = (a * a + b * b) / r2;
        (1.0 + s2 / 3.0, 1.0 - s2)
    } else {
        // Overlapping Rotne–Prager form with effective radius
        // ā = (a+b)/2 (exact for equal spheres, standard interpolation
        // otherwise), rescaled onto the `pre = 1/(8πηr)` prefactor:
        //   M = 1/(6πηā)·[(1 − 9r/(32ā))·I + (3r/(32ā))·d⊗d]
        let abar = 0.5 * (a + b);
        let conv = 4.0 * r / (3.0 * abar); // (8πηr)/(6πηā)
        (conv * (1.0 - 9.0 * r / (32.0 * abar)), conv * (3.0 * r / (32.0 * abar)))
    };

    let mut out = Block3::ZERO;
    for idx in 0..9 {
        let i = idx / 3;
        let j = idx % 3;
        let iden = if i == j { 1.0 } else { 0.0 };
        out.0[idx] = pre * (c_i * iden + c_d * dd.get(i, j));
    }
    out
}

/// Self-mobility block `I/(6πη a)`.
pub fn rpy_self_block(a: f64, eta: f64) -> Block3 {
    Block3::scaled_identity(1.0 / (6.0 * std::f64::consts::PI * eta * a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_block_is_stokes_mobility() {
        let b = rpy_self_block(2.0, 1.0);
        assert!((b.get(0, 0) - 1.0 / (12.0 * std::f64::consts::PI)).abs() < 1e-15);
    }

    #[test]
    fn pair_block_symmetric() {
        let b = rpy_pair_block([1.0, 2.0, 3.0], 0.8, 1.2, 1.0);
        assert!(b.is_symmetric_within(1e-14));
    }

    #[test]
    fn pair_block_decays_as_inverse_distance() {
        let near = rpy_pair_block([3.0, 0.0, 0.0], 1.0, 1.0, 1.0);
        let far = rpy_pair_block([30.0, 0.0, 0.0], 1.0, 1.0, 1.0);
        let ratio = near.get(0, 0) / far.get(0, 0);
        assert!((ratio - 10.0).abs() < 1.0, "1/r decay, got {ratio}");
    }

    #[test]
    fn oseen_limit_at_large_distance() {
        // r ≫ a: M ≈ 1/(8πη r)(I + d⊗d); along the axis the parallel
        // component is twice the perpendicular one.
        let b = rpy_pair_block([100.0, 0.0, 0.0], 1.0, 1.0, 1.0);
        let ratio = b.get(0, 0) / b.get(1, 1);
        assert!((ratio - 2.0).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn mobility_matrix_positive_definite_small_cluster() {
        // Assemble the 9×9 M^∞ of three particles and check SPD via
        // Cholesky-style pivots (manual, no solver dependency).
        let pos = [[0.0, 0.0, 0.0], [3.0, 0.0, 0.0], [0.0, 3.5, 0.0]];
        let radii = [1.0, 1.2, 0.9];
        let n = 9;
        let mut m = vec![0.0; n * n];
        for i in 0..3 {
            for j in 0..3 {
                let block = if i == j {
                    rpy_self_block(radii[i], 1.0)
                } else {
                    let rv = [
                        pos[j][0] - pos[i][0],
                        pos[j][1] - pos[i][1],
                        pos[j][2] - pos[i][2],
                    ];
                    rpy_pair_block(rv, radii[i], radii[j], 1.0)
                };
                for bi in 0..3 {
                    for bj in 0..3 {
                        m[(3 * i + bi) * n + 3 * j + bj] = block.get(bi, bj);
                    }
                }
            }
        }
        // Cholesky pivots must all be positive.
        for k in 0..n {
            for j in 0..=k {
                let mut s = m[k * n + j];
                for p in 0..j {
                    s -= m[k * n + p] * m[j * n + p];
                }
                if j == k {
                    assert!(s > 0.0, "pivot {k} nonpositive: {s}");
                    m[k * n + k] = s.sqrt();
                } else {
                    m[k * n + j] = s / m[j * n + j];
                }
            }
        }
    }

    #[test]
    fn overlapping_block_finite_and_continuous() {
        // Just inside vs just outside contact: values must be close.
        let outside = rpy_pair_block([2.001, 0.0, 0.0], 1.0, 1.0, 1.0);
        let inside = rpy_pair_block([1.999, 0.0, 0.0], 1.0, 1.0, 1.0);
        for k in 0..9 {
            assert!(inside.0[k].is_finite());
            assert!(
                (outside.0[k] - inside.0[k]).abs()
                    < 0.05 * outside.0[k].abs().max(1e-3),
                "k={k}: {} vs {}",
                outside.0[k],
                inside.0[k]
            );
        }
    }
}
