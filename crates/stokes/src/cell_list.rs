//! Linked-cell neighbor search under periodic boundaries.
//!
//! The resistance matrix couples only particle pairs whose
//! center-to-center distance is below a cutoff; the cell list finds
//! those pairs in O(n) instead of O(n²). The same binning doubles as
//! the coordinate grid of the paper's row partitioner.

use crate::particle::ParticleSystem;

/// A 3-D grid of cells over the periodic box, at least as wide as the
/// search cutoff, holding particle indices.
#[derive(Clone, Debug)]
pub struct CellList {
    dims: [usize; 3],
    cell_of_particle: Vec<usize>,
    /// CSR-style storage: particles of cell `c` are
    /// `particles[cell_ptr[c]..cell_ptr[c+1]]`.
    cell_ptr: Vec<usize>,
    particles: Vec<u32>,
}

impl CellList {
    /// Builds a cell list with cell sides ≥ `cutoff` in each dimension.
    ///
    /// # Panics
    /// If `cutoff` is not positive.
    pub fn build(system: &ParticleSystem, cutoff: f64) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        let bl = system.box_lengths();
        let mut dims = [1usize; 3];
        for d in 0..3 {
            dims[d] = ((bl[d] / cutoff).floor() as usize).max(1);
        }
        let n_cells = dims[0] * dims[1] * dims[2];

        let cell_index = |p: &[f64; 3]| -> usize {
            let mut c = [0usize; 3];
            for d in 0..3 {
                let f = (p[d] / bl[d]).rem_euclid(1.0);
                c[d] = ((f * dims[d] as f64) as usize).min(dims[d] - 1);
            }
            (c[2] * dims[1] + c[1]) * dims[0] + c[0]
        };

        let n = system.len();
        let mut cell_of_particle = vec![0usize; n];
        let mut counts = vec![0usize; n_cells + 1];
        for (i, p) in system.positions().iter().enumerate() {
            let c = cell_index(p);
            cell_of_particle[i] = c;
            counts[c + 1] += 1;
        }
        for c in 0..n_cells {
            counts[c + 1] += counts[c];
        }
        let cell_ptr = counts.clone();
        let mut next = counts;
        let mut particles = vec![0u32; n];
        for i in 0..n {
            let c = cell_of_particle[i];
            particles[next[c]] = i as u32;
            next[c] += 1;
        }
        CellList { dims, cell_of_particle, cell_ptr, particles }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// The cell holding particle `i`.
    pub fn cell_of(&self, i: usize) -> usize {
        self.cell_of_particle[i]
    }

    /// Particles in cell `c`.
    pub fn cell_particles(&self, c: usize) -> &[u32] {
        &self.particles[self.cell_ptr[c]..self.cell_ptr[c + 1]]
    }

    /// Visits every unordered pair `(i, j)` with `i < j` whose
    /// minimum-image distance is at most `cutoff`. Each pair is reported
    /// exactly once.
    pub fn for_each_pair(
        &self,
        system: &ParticleSystem,
        cutoff: f64,
        mut f: impl FnMut(usize, usize, f64),
    ) {
        let [nx, ny, nz] = self.dims;
        let cutoff2 = cutoff * cutoff;
        // Full 26-neighbor stencil; wrapped grids can alias several
        // offsets onto one cell, so targets are deduplicated per cell.
        // A cross-cell pair {p < q} is then emitted exactly once: from
        // the cell holding p (the `i < j` guard kills the mirror visit).
        let mut targets: Vec<usize> = Vec::with_capacity(26);
        for cz in 0..nz {
            for cy in 0..ny {
                for cx in 0..nx {
                    let c = (cz * ny + cy) * nx + cx;
                    let here = self.cell_particles(c);
                    if here.is_empty() {
                        continue;
                    }
                    // pairs within the cell
                    for (a, &i) in here.iter().enumerate() {
                        for &j in &here[a + 1..] {
                            emit(system, i as usize, j as usize, cutoff2, &mut f);
                        }
                    }
                    targets.clear();
                    for dz in -1isize..=1 {
                        for dy in -1isize..=1 {
                            for dx in -1isize..=1 {
                                if (dx, dy, dz) == (0, 0, 0) {
                                    continue;
                                }
                                let ox = wrap(cx as isize + dx, nx);
                                let oy = wrap(cy as isize + dy, ny);
                                let oz = wrap(cz as isize + dz, nz);
                                let o = (oz * ny + oy) * nx + ox;
                                if o != c {
                                    targets.push(o);
                                }
                            }
                        }
                    }
                    targets.sort_unstable();
                    targets.dedup();
                    for &o in &targets {
                        let there = self.cell_particles(o);
                        for &i in here {
                            for &j in there {
                                let (i, j) = (i as usize, j as usize);
                                if i < j {
                                    emit(system, i, j, cutoff2, &mut f);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Collects all pairs within `cutoff` as `(i, j, distance)` triples.
    pub fn pairs(
        &self,
        system: &ParticleSystem,
        cutoff: f64,
    ) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        self.for_each_pair(system, cutoff, |i, j, d| out.push((i, j, d)));
        out
    }
}

/// A cell grid over a *subset* of particles — the building block of the
/// size-class pair search.
struct SubsetGrid {
    dims: [usize; 3],
    cell_ptr: Vec<usize>,
    particles: Vec<u32>,
}

impl SubsetGrid {
    fn build(system: &ParticleSystem, members: &[u32], cutoff: f64) -> Self {
        let bl = system.box_lengths();
        let mut dims = [1usize; 3];
        for d in 0..3 {
            dims[d] = ((bl[d] / cutoff).floor() as usize).max(1);
        }
        // Cap the grid at a few cells per member — enlarging cells only
        // widens coverage, so correctness is preserved while dilute
        // systems avoid absurd allocations.
        let cap = (8 * members.len()).max(64);
        while dims[0] * dims[1] * dims[2] > cap {
            let dmax = (0..3).max_by_key(|&d| dims[d]).unwrap();
            dims[dmax] = dims[dmax].div_ceil(2);
        }
        let n_cells = dims[0] * dims[1] * dims[2];
        let cell_index = |p: &[f64; 3]| -> usize {
            let mut c = [0usize; 3];
            for d in 0..3 {
                let fr = (p[d] / bl[d]).rem_euclid(1.0);
                c[d] = ((fr * dims[d] as f64) as usize).min(dims[d] - 1);
            }
            (c[2] * dims[1] + c[1]) * dims[0] + c[0]
        };
        let mut counts = vec![0usize; n_cells + 1];
        let cells: Vec<usize> = members
            .iter()
            .map(|&i| {
                let c = cell_index(&system.positions()[i as usize]);
                counts[c + 1] += 1;
                c
            })
            .collect();
        for c in 0..n_cells {
            counts[c + 1] += counts[c];
        }
        let cell_ptr = counts.clone();
        let mut next = counts;
        let mut particles = vec![0u32; members.len()];
        for (&i, &c) in members.iter().zip(&cells) {
            particles[next[c]] = i;
            next[c] += 1;
        }
        SubsetGrid { dims, cell_ptr, particles }
    }

    /// Visits every member within the 27-cell neighborhood of `p`.
    fn for_each_near(
        &self,
        system: &ParticleSystem,
        p: &[f64; 3],
        mut f: impl FnMut(u32),
    ) {
        let bl = system.box_lengths();
        let [nx, ny, nz] = self.dims;
        let mut base = [0isize; 3];
        for d in 0..3 {
            let fr = (p[d] / bl[d]).rem_euclid(1.0);
            base[d] = ((fr * self.dims[d] as f64) as usize).min(self.dims[d] - 1)
                as isize;
        }
        let mut seen = [usize::MAX; 27];
        let mut n_seen = 0;
        for dz in -1isize..=1 {
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let ox = wrap(base[0] + dx, nx);
                    let oy = wrap(base[1] + dy, ny);
                    let oz = wrap(base[2] + dz, nz);
                    let c = (oz * ny + oy) * nx + ox;
                    if seen[..n_seen].contains(&c) {
                        continue; // tiny grids alias
                    }
                    seen[n_seen] = c;
                    n_seen += 1;
                    for &j in
                        &self.particles[self.cell_ptr[c]..self.cell_ptr[c + 1]]
                    {
                        f(j);
                    }
                }
            }
        }
    }
}

/// Visits every unordered pair `(i, j)` with minimum-image distance at
/// most `scale · (a_i + a_j)/2` — the scaled-separation criterion the
/// resistance cutoff uses (`scale = s_cut`) and the overlap check uses
/// (`scale = 2`). Particles are bucketed into radius classes so small
/// particles never pay for the rare giant ones' interaction range; this
/// is the polydisperse analogue of a Verlet cell list.
pub fn for_each_scaled_pair(
    system: &ParticleSystem,
    scale: f64,
    mut f: impl FnMut(usize, usize, f64),
) {
    let n = system.len();
    if n < 2 {
        return;
    }
    let radii = system.radii();
    let rmin = radii.iter().cloned().fold(f64::INFINITY, f64::min);
    let rmax = system.max_radius();

    // Geometric class boundaries, at most 4 classes.
    let n_classes = if rmax / rmin > 1.5 { 4usize } else { 1 };
    let ratio = (rmax / rmin).powf(1.0 / n_classes as f64);
    let class_of = |r: f64| -> usize {
        let mut c = 0;
        let mut bound = rmin * ratio;
        while c + 1 < n_classes && r > bound * (1.0 + 1e-12) {
            c += 1;
            bound *= ratio;
        }
        c
    };
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_classes];
    let mut class_rmax = vec![0.0f64; n_classes];
    for (i, &r) in radii.iter().enumerate() {
        let c = class_of(r);
        members[c].push(i as u32);
        class_rmax[c] = class_rmax[c].max(r);
    }

    let bl = system.box_lengths();
    let half_box = bl[0].min(bl[1]).min(bl[2]) / 2.0;
    for ca in 0..n_classes {
        if members[ca].is_empty() {
            continue;
        }
        for cb in ca..n_classes {
            if members[cb].is_empty() {
                continue;
            }
            let cutoff = (scale * 0.5 * (class_rmax[ca] + class_rmax[cb]))
                .min(half_box - f64::EPSILON)
                .max(1e-12);
            let grid = SubsetGrid::build(system, &members[cb], cutoff);
            for &i in &members[ca] {
                let pi = system.positions()[i as usize];
                grid.for_each_near(system, &pi, |j| {
                    // same-class pairs once; cross-class all (i, j) distinct
                    if ca == cb && j <= i {
                        return;
                    }
                    let (i, j) = (i as usize, j as usize);
                    let d = system.minimum_image(i, j);
                    let dist2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                    let pair_cut = scale * 0.5 * (radii[i] + radii[j]);
                    if dist2 <= pair_cut * pair_cut {
                        f(i, j, dist2.sqrt());
                    }
                });
            }
        }
    }
}

#[inline]
fn emit(
    system: &ParticleSystem,
    i: usize,
    j: usize,
    cutoff2: f64,
    f: &mut impl FnMut(usize, usize, f64),
) {
    let d = system.minimum_image(i, j);
    let d2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    if d2 <= cutoff2 {
        f(i, j, d2.sqrt());
    }
}

#[inline]
fn wrap(v: isize, n: usize) -> usize {
    v.rem_euclid(n as isize) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_pairs(s: &ParticleSystem, cutoff: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..s.len() {
            for j in i + 1..s.len() {
                if s.distance(i, j) <= cutoff {
                    out.push((i, j));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn pseudo_system(n: usize, box_len: f64, seed: u64) -> ParticleSystem {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let positions: Vec<[f64; 3]> = (0..n)
            .map(|_| [next() * box_len, next() * box_len, next() * box_len])
            .collect();
        ParticleSystem::new(positions, vec![0.3; n], [box_len; 3])
    }

    #[test]
    fn matches_brute_force_on_random_system() {
        let s = pseudo_system(200, 10.0, 42);
        let cutoff = 1.7;
        let cl = CellList::build(&s, cutoff);
        let mut got: Vec<(usize, usize)> = cl
            .pairs(&s, cutoff)
            .into_iter()
            .map(|(i, j, _)| (i.min(j), i.max(j)))
            .collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, brute_force_pairs(&s, cutoff));
    }

    #[test]
    fn matches_brute_force_when_grid_is_tiny() {
        // Box barely larger than the cutoff: grid aliases onto itself.
        let s = pseudo_system(40, 2.5, 7);
        let cutoff = 1.2;
        let cl = CellList::build(&s, cutoff);
        assert_eq!(cl.dims(), [2, 2, 2]);
        let mut got: Vec<(usize, usize)> = cl
            .pairs(&s, cutoff)
            .into_iter()
            .map(|(i, j, _)| (i.min(j), i.max(j)))
            .collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, brute_force_pairs(&s, cutoff));
    }

    #[test]
    fn reports_each_pair_once_on_regular_grid() {
        let s = pseudo_system(100, 8.0, 3);
        let cutoff = 1.0;
        let cl = CellList::build(&s, cutoff);
        let pairs = cl.pairs(&s, cutoff);
        let mut keys: Vec<(usize, usize)> =
            pairs.iter().map(|&(i, j, _)| (i.min(j), i.max(j))).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(before, keys.len(), "duplicated pairs");
    }

    #[test]
    fn distances_are_correct() {
        let s = pseudo_system(50, 6.0, 9);
        let cutoff = 1.5;
        let cl = CellList::build(&s, cutoff);
        for (i, j, d) in cl.pairs(&s, cutoff) {
            assert!((d - s.distance(i, j)).abs() < 1e-12);
            assert!(d <= cutoff + 1e-12);
        }
    }

    #[test]
    fn periodic_pair_across_boundary_found() {
        let s = ParticleSystem::new(
            vec![[0.2, 5.0, 5.0], [9.8, 5.0, 5.0]],
            vec![0.1, 0.1],
            [10.0; 3],
        );
        let cl = CellList::build(&s, 1.0);
        let pairs = cl.pairs(&s, 1.0);
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].2 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_system() {
        let s = ParticleSystem::new(vec![], vec![], [5.0; 3]);
        let cl = CellList::build(&s, 1.0);
        assert!(cl.pairs(&s, 1.0).is_empty());
    }
}
