//! Particle packing generators.
//!
//! The paper's test systems reach 50% volume occupancy — beyond the
//! ~38% jamming limit of random sequential addition — so two generators
//! are provided:
//!
//! * [`random_sequential`] — plain RSA, fast and overlap-free for
//!   dilute systems;
//! * [`relaxed_packing`] — random placement followed by iterative
//!   pairwise overlap relaxation (a collective-rearrangement scheme),
//!   which reaches dense polydisperse packings.

use crate::particle::{sample_ecoli_radii, ParticleSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chooses the cubic box side so that spheres with the given radii fill
/// `fraction` of its volume.
pub fn box_side_for_fraction(radii: &[f64], fraction: f64) -> f64 {
    assert!(fraction > 0.0 && fraction < 1.0);
    let v: f64 =
        radii.iter().map(|r| 4.0 / 3.0 * std::f64::consts::PI * r * r * r).sum();
    (v / fraction).cbrt()
}

/// Random sequential addition: places spheres one at a time, rejecting
/// overlapping positions. Returns `None` if a sphere cannot be placed
/// within `max_tries` attempts (the packing is too dense for RSA).
pub fn random_sequential(
    radii: Vec<f64>,
    fraction: f64,
    rng: &mut StdRng,
    max_tries: usize,
) -> Option<ParticleSystem> {
    let side = box_side_for_fraction(&radii, fraction);
    let mut placed: Vec<[f64; 3]> = Vec::with_capacity(radii.len());
    for &ri in radii.iter() {
        let mut ok = false;
        'tries: for _ in 0..max_tries {
            let cand = [
                rng.random::<f64>() * side,
                rng.random::<f64>() * side,
                rng.random::<f64>() * side,
            ];
            for (j, p) in placed.iter().enumerate() {
                let mut d2 = 0.0;
                for k in 0..3 {
                    let mut diff = cand[k] - p[k];
                    diff -= side * (diff / side).round();
                    d2 += diff * diff;
                }
                let min_dist = ri + radii[j];
                if d2 < min_dist * min_dist {
                    continue 'tries;
                }
            }
            placed.push(cand);
            ok = true;
            break;
        }
        if !ok {
            return None;
        }
    }
    Some(ParticleSystem::new(placed, radii, [side; 3]))
}

/// Random placement plus iterative overlap relaxation: every sweep,
/// overlapping pairs are pushed apart symmetrically along their center
/// line until the worst overlap is below `tolerance` times the smallest
/// radius, or `max_sweeps` is exhausted. Works to ≥50% occupancy for
/// the polydisperse distributions used here.
pub fn relaxed_packing(
    radii: Vec<f64>,
    fraction: f64,
    rng: &mut StdRng,
    max_sweeps: usize,
    tolerance: f64,
) -> ParticleSystem {
    let side = box_side_for_fraction(&radii, fraction);
    let positions: Vec<[f64; 3]> = (0..radii.len())
        .map(|_| {
            [
                rng.random::<f64>() * side,
                rng.random::<f64>() * side,
                rng.random::<f64>() * side,
            ]
        })
        .collect();
    let mut system = ParticleSystem::new(positions, radii, [side; 3]);
    relax_overlaps(&mut system, max_sweeps, tolerance);
    system
}

/// Pushes overlapping pairs apart in place; used both by the packer and
/// after integration steps that produce small overlaps. Returns the
/// number of sweeps performed.
pub fn relax_overlaps(
    system: &mut ParticleSystem,
    max_sweeps: usize,
    tolerance: f64,
) -> usize {
    let min_radius = system.radii().iter().fold(f64::INFINITY, |a, &r| a.min(r));
    if !min_radius.is_finite() {
        return 0;
    }
    let tol_abs = tolerance * min_radius;
    for sweep in 0..max_sweeps {
        let mut worst: f64 = 0.0;
        let mut moves: Vec<(usize, [f64; 3])> = Vec::new();
        crate::cell_list::for_each_scaled_pair(system, 2.0, |i, j, dist| {
            let overlap = system.radii()[i] + system.radii()[j] - dist;
            if overlap > 0.0 {
                worst = worst.max(overlap);
                let d = system.minimum_image(i, j);
                let inv = if dist > 1e-12 { 1.0 / dist } else { 0.0 };
                // Push each particle half the overlap (plus a nudge so
                // the pair does not land exactly at contact).
                let push = 0.5 * overlap * 1.05;
                let delta =
                    [d[0] * inv * push, d[1] * inv * push, d[2] * inv * push];
                moves.push((i, [-delta[0], -delta[1], -delta[2]]));
                moves.push((j, delta));
            }
        });
        if worst <= tol_abs {
            return sweep;
        }
        for (i, delta) in moves {
            system.displace(i, delta);
        }
    }
    max_sweeps
}

/// The worst pairwise overlap in the system (0 when overlap-free).
pub fn max_overlap(system: &ParticleSystem) -> f64 {
    let mut worst: f64 = 0.0;
    crate::cell_list::for_each_scaled_pair(system, 2.0, |i, j, dist| {
        worst = worst.max(system.radii()[i] + system.radii()[j] - dist);
    });
    worst
}

/// Convenience: a packed E. coli-distribution system at the given
/// occupancy, using RSA below 25% and relaxation above.
pub fn pack_ecoli(n: usize, fraction: f64, seed: u64) -> ParticleSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    let radii = sample_ecoli_radii(n, || rng.random::<f64>());
    let mut rng2 = StdRng::seed_from_u64(seed.wrapping_add(1));
    let mut system = if fraction <= 0.25 {
        random_sequential(radii.clone(), fraction, &mut rng2, 5000).unwrap_or_else(
            || relaxed_packing(radii.clone(), fraction, &mut rng2, 2000, 1e-3),
        )
    } else {
        relaxed_packing(radii, fraction, &mut rng2, 2000, 1e-3)
    };
    // Spatial labelling: cache-local matrices for everything downstream.
    system.sort_morton();
    system
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_side_gives_requested_fraction() {
        let radii = vec![1.0; 10];
        let side = box_side_for_fraction(&radii, 0.3);
        let v: f64 = 10.0 * 4.0 / 3.0 * std::f64::consts::PI;
        assert!((v / side.powi(3) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rsa_produces_overlap_free_dilute_packing() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = random_sequential(vec![1.0; 60], 0.15, &mut rng, 5000)
            .expect("RSA at 15% must succeed");
        assert_eq!(s.len(), 60);
        assert!((s.volume_fraction() - 0.15).abs() < 1e-9);
        assert!(max_overlap(&s) <= 0.0 + 1e-12);
    }

    #[test]
    fn relaxation_reaches_half_occupancy() {
        let mut rng = StdRng::seed_from_u64(3);
        let radii = sample_ecoli_radii(120, || rng.random::<f64>());
        let mut rng2 = StdRng::seed_from_u64(4);
        let s = relaxed_packing(radii, 0.5, &mut rng2, 3000, 1e-3);
        assert!((s.volume_fraction() - 0.5).abs() < 1e-9);
        let min_r = s.radii().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max_overlap(&s) <= 1.1e-3 * min_r,
            "residual overlap {}",
            max_overlap(&s)
        );
    }

    #[test]
    fn pack_ecoli_dispatches_by_density() {
        let dilute = pack_ecoli(50, 0.10, 11);
        assert!((dilute.volume_fraction() - 0.10).abs() < 1e-9);
        assert!(max_overlap(&dilute) <= 1e-9);

        let dense = pack_ecoli(80, 0.50, 13);
        assert!((dense.volume_fraction() - 0.50).abs() < 1e-9);
        let min_r = dense.radii().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max_overlap(&dense) <= 1.1e-3 * min_r);
    }

    #[test]
    fn relax_overlaps_reports_convergence_sweep() {
        // Already overlap-free system converges immediately.
        let mut rng = StdRng::seed_from_u64(21);
        let mut s = random_sequential(vec![0.5; 30], 0.1, &mut rng, 5000).unwrap();
        assert_eq!(relax_overlaps(&mut s, 100, 1e-3), 0);
    }

    #[test]
    fn packing_is_deterministic_under_seed() {
        let a = pack_ecoli(40, 0.3, 99);
        let b = pack_ecoli(40, 0.3, 99);
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.radii(), b.radii());
    }
}
