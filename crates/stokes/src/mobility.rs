//! Dense far-field mobility — the paper's "future work" path.
//!
//! The full Stokesian dynamics resistance is `R = (M^∞)⁻¹ + R_lub` with
//! a *dense* far-field mobility `M^∞` of RPY pair blocks; the paper
//! replaces it by `μ_F·I` and defers multi-vector far-field evaluation
//! (PME) to future work. This module implements that deferred piece at
//! laptop scale: a dense RPY mobility operator whose multi-vector
//! apply amortizes the `O(n²)` block traversal over all `m` columns —
//! the same amortization GSPMV performs for the sparse part — plus a
//! composite operator `R = (M^∞)⁻¹ + R_lub` usable by every solver in
//! the workspace (the inverse applied via an inner CG, since `M^∞` is
//! SPD).

use crate::particle::ParticleSystem;
use crate::rpy::{rpy_pair_block, rpy_self_block};
use mrhs_solvers::{cg, LinearOperator, SolveConfig};
use mrhs_sparse::{BcrsMatrix, Block3, MultiVec};

/// The dense RPY far-field mobility `M^∞` of a particle configuration
/// under minimum-image periodic boundaries. Blocks are materialized
/// once (`O(n²)` 3×3 blocks) so repeated applies stream them like a
/// dense BCRS matrix.
pub struct DenseRpyMobility {
    n: usize,
    /// Row-major `n×n` grid of 3×3 blocks.
    blocks: Vec<Block3>,
}

impl DenseRpyMobility {
    /// Builds the mobility for the current configuration.
    pub fn new(system: &ParticleSystem, eta: f64) -> Self {
        let n = system.len();
        let radii = system.radii();
        let mut blocks = vec![Block3::ZERO; n * n];
        for i in 0..n {
            blocks[i * n + i] = rpy_self_block(radii[i], eta);
            for j in i + 1..n {
                let d = system.minimum_image(i, j);
                let b = rpy_pair_block(d, radii[i], radii[j], eta);
                blocks[i * n + j] = b;
                // RPY pair blocks are symmetric in d⊗d, so the (j,i)
                // block equals the (i,j) block.
                blocks[j * n + i] = b;
            }
        }
        DenseRpyMobility { n, blocks }
    }

    /// Number of particles.
    pub fn n_particles(&self) -> usize {
        self.n
    }
}

impl LinearOperator for DenseRpyMobility {
    fn dim(&self) -> usize {
        3 * self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), 3 * self.n);
        assert_eq!(y.len(), 3 * self.n);
        for i in 0..self.n {
            let mut acc = [0.0f64; 3];
            for j in 0..self.n {
                let b = &self.blocks[i * self.n + j];
                let xj = [x[3 * j], x[3 * j + 1], x[3 * j + 2]];
                let v = b.mul_vec(xj);
                acc[0] += v[0];
                acc[1] += v[1];
                acc[2] += v[2];
            }
            y[3 * i..3 * i + 3].copy_from_slice(&acc);
        }
    }

    fn apply_multi(&self, x: &MultiVec, y: &mut MultiVec) {
        assert_eq!(x.n(), self.dim());
        assert_eq!(x.shape(), y.shape());
        let m = x.m();
        let xs = x.as_slice();
        let ys = y.as_mut_slice();
        let mut acc = vec![0.0f64; 3 * m];
        for i in 0..self.n {
            acc.fill(0.0);
            for j in 0..self.n {
                let b = &self.blocks[i * self.n + j];
                let xoff = 3 * j * m;
                for r in 0..3 {
                    for c in 0..3 {
                        let a = b.get(r, c);
                        if a != 0.0 {
                            let xr = &xs[xoff + c * m..xoff + c * m + m];
                            let ar = &mut acc[r * m..(r + 1) * m];
                            for (av, xv) in ar.iter_mut().zip(xr) {
                                *av += a * xv;
                            }
                        }
                    }
                }
            }
            ys[3 * i * m..3 * (i + 1) * m].copy_from_slice(&acc);
        }
    }
}

/// The full-fidelity resistance `R = (M^∞)⁻¹ + R_lub`: the inverse far
/// field applied through an inner CG on the SPD mobility, plus the
/// sparse lubrication part. SPD as a sum of SPD operators.
pub struct FullResistance<'a> {
    mobility: &'a DenseRpyMobility,
    lubrication: &'a BcrsMatrix,
    inner: SolveConfig,
}

impl<'a> FullResistance<'a> {
    /// Wraps the two components; `inner_tol` controls the inner CG used
    /// to apply `(M^∞)⁻¹`.
    pub fn new(
        mobility: &'a DenseRpyMobility,
        lubrication: &'a BcrsMatrix,
        inner_tol: f64,
    ) -> Self {
        assert_eq!(mobility.dim(), lubrication.n_rows());
        FullResistance {
            mobility,
            lubrication,
            inner: SolveConfig { tol: inner_tol, max_iter: 4000 },
        }
    }
}

impl LinearOperator for FullResistance<'_> {
    fn dim(&self) -> usize {
        self.mobility.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        // y = M⁻¹ x  (inner CG: M is SPD and well conditioned)
        let mut minv_x = vec![0.0; x.len()];
        let res = cg(self.mobility, x, &mut minv_x, &self.inner);
        assert!(res.converged, "inner mobility solve failed: {res:?}");
        // y += R_lub x
        let mut lub = vec![0.0; x.len()];
        use mrhs_sparse::spmv;
        spmv(self.lubrication, x, &mut lub);
        for ((yi, a), b) in y.iter_mut().zip(&minv_x).zip(&lub) {
            *yi = a + b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packing::pack_ecoli;
    use crate::resistance::{assemble_resistance, ResistanceConfig};

    // Minimum-image truncation of the 1/r RPY coupling is only
    // conditionally positive definite: in a crowded box (φ ≳ 0.25) the
    // discontinuity at half the box length can introduce negative
    // curvature directions. The dense far-field model targets dilute
    // systems, so test it there.
    fn system() -> ParticleSystem {
        pack_ecoli(25, 0.15, 9)
    }

    #[test]
    fn mobility_is_symmetric_operator() {
        let s = system();
        let m = DenseRpyMobility::new(&s, 1.0);
        let n = m.dim();
        let u: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let v: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) - 5.0).collect();
        let mut mu = vec![0.0; n];
        let mut mv = vec![0.0; n];
        m.apply(&u, &mut mu);
        m.apply(&v, &mut mv);
        let lhs: f64 = mu.iter().zip(&v).map(|(a, b)| a * b).sum();
        let rhs: f64 = u.iter().zip(&mv).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() <= 1e-10 * lhs.abs().max(1.0));
    }

    #[test]
    fn mobility_is_positive_definite() {
        let s = system();
        let m = DenseRpyMobility::new(&s, 1.0);
        let n = m.dim();
        let mut state = 3u64;
        for _ in 0..4 {
            let v: Vec<f64> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
                })
                .collect();
            let mut mv = vec![0.0; n];
            m.apply(&v, &mut mv);
            let q: f64 = v.iter().zip(&mv).map(|(a, b)| a * b).sum();
            assert!(q > 0.0, "Rayleigh quotient {q}");
        }
    }

    #[test]
    fn multi_apply_matches_columns() {
        let s = system();
        let m = DenseRpyMobility::new(&s, 1.0);
        let n = m.dim();
        let cols = 5;
        let mut x = MultiVec::zeros(n, cols);
        for j in 0..cols {
            let col: Vec<f64> =
                (0..n).map(|i| (((i + j) * 7 % 13) as f64) - 6.0).collect();
            x.set_column(j, &col);
        }
        let mut y = MultiVec::zeros(n, cols);
        m.apply_multi(&x, &mut y);
        for j in 0..cols {
            let mut yj = vec![0.0; n];
            m.apply(&x.column(j), &mut yj);
            for (u, v) in y.column(j).iter().zip(&yj) {
                assert!((u - v).abs() <= 1e-12 * u.abs().max(1.0));
            }
        }
    }

    #[test]
    fn full_resistance_is_spd_and_solvable() {
        let s = system();
        let mob = DenseRpyMobility::new(&s, 1.0);
        // lubrication-only part: assemble R and strip its far-field
        // diagonal by building with s_cut small... simpler: use the
        // standard sparse assembly as the near-field stand-in.
        let lub = assemble_resistance(&s, &ResistanceConfig::default());
        let full = FullResistance::new(&mob, &lub, 1e-10);
        let n = full.dim();

        // SPD via Rayleigh quotient, and CG solves against it.
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut x = vec![0.0; n];
        let res = cg(&full, &b, &mut x, &SolveConfig { tol: 1e-6, max_iter: 2000 });
        assert!(res.converged, "{res:?}");
        let mut ax = vec![0.0; n];
        full.apply(&x, &mut ax);
        let rn: f64 =
            b.iter().zip(&ax).map(|(u, v)| (u - v) * (u - v)).sum::<f64>().sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rn <= 1e-5 * bn, "residual {rn} vs {bn}");
    }

    #[test]
    fn far_field_decays_but_couples_everything() {
        let s = system();
        let m = DenseRpyMobility::new(&s, 1.0);
        let n3 = m.dim();
        // A unit force on particle 0 moves every particle (long-range
        // 1/r coupling) — unlike the sparse lubrication matrix.
        let mut f = vec![0.0; n3];
        f[0] = 1.0;
        let mut u = vec![0.0; n3];
        m.apply(&f, &mut u);
        let moved = (1..s.len()).filter(|&j| u[3 * j].abs() > 0.0).count();
        assert_eq!(moved, s.len() - 1, "all particles feel the far field");
    }
}
