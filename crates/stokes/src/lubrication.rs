//! Near-field lubrication resistance for unequal spheres.
//!
//! Two nearly touching spheres resist relative motion with a force that
//! diverges as the surface gap closes: squeezing flow along the line of
//! centers diverges as `1/ξ`, shearing motion as `log(1/ξ)`, where `ξ`
//! is the dimensionless gap. The scalar resistance functions use the
//! leading Jeffrey & Onishi (1984) coefficients for radius ratio
//! `β = b/a`:
//!
//! ```text
//!   X^A(ξ) = g₁(β)/ξ + g₂(β)·ln(1 + 1/ξ)        (squeeze)
//!   Y^A(ξ) = g₂ʸ(β)·ln(1 + 1/ξ)                 (shear)
//!   g₁  = 2β²/(1+β)³
//!   g₂  = β(1 + 7β + β²)/(5(1+β)³)
//!   g₂ʸ = 4β(2 + β + 2β²)/(15(1+β)³)
//! ```
//!
//! `ln(1 + 1/ξ)` is used instead of `ln(1/ξ)` so the functions stay
//! positive and decay smoothly for `ξ ≥ 1`, giving a well-defined
//! (positive semidefinite) tail out to the assembly cutoff. The gap is
//! floored at `ξ_min` to bound the condition number, the standard
//! regularization in SD codes.
//!
//! Following Cichocki et al. (1999) as adopted by the paper, the pair
//! tensor is projected onto *relative* motion: the 6×6 pair block is
//! `[[A, −A], [−A, A]]` with `A = 6πη·a_eff·(X^A·d⊗d + Y^A·(I − d⊗d))`,
//! so collective rigid motion of the pair feels no lubrication force
//! and `R_lub` is symmetric positive semidefinite by construction.

use mrhs_sparse::Block3;

/// Scalar lubrication resistance functions for a sphere pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairScalars {
    /// Squeeze (along line of centers) resistance `X^A`, dimensionless.
    pub x_a: f64,
    /// Shear (transverse) resistance `Y^A`, dimensionless.
    pub y_a: f64,
}

/// Leading Jeffrey–Onishi coefficients for radius ratio `beta = b/a`.
pub fn jo_coefficients(beta: f64) -> (f64, f64, f64) {
    assert!(beta > 0.0);
    let d = (1.0 + beta).powi(3);
    let g1 = 2.0 * beta * beta / d;
    let g2 = beta * (1.0 + 7.0 * beta + beta * beta) / (5.0 * d);
    let g2y = 4.0 * beta * (2.0 + beta + 2.0 * beta * beta) / (15.0 * d);
    (g1, g2, g2y)
}

/// Evaluates the scalar resistance functions at dimensionless gap
/// `xi = 2·gap/(a + b)`, floored at `xi_min`.
pub fn pair_scalars(a: f64, b: f64, xi: f64, xi_min: f64) -> PairScalars {
    assert!(a > 0.0 && b > 0.0);
    assert!(xi_min > 0.0);
    let beta = b / a;
    let (g1, g2, g2y) = jo_coefficients(beta);
    let xi = xi.max(xi_min);
    let log_term = (1.0 + 1.0 / xi).ln();
    PairScalars { x_a: g1 / xi + g2 * log_term, y_a: g2y * log_term }
}

/// The 3×3 relative-motion lubrication block `A` for a pair with unit
/// separation vector `d` (pointing from particle `i` to `j`), radii
/// `(a, b)`, solvent viscosity `eta`, gap `xi`, floored at `xi_min`.
///
/// The full pair contribution to `R_lub` is `+A` on both diagonal
/// blocks and `−A` on both off-diagonal blocks.
pub fn pair_block(
    d: [f64; 3],
    a: f64,
    b: f64,
    eta: f64,
    xi: f64,
    xi_min: f64,
) -> Block3 {
    let norm = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
    assert!(norm > 0.0, "coincident particle centers");
    let e = [d[0] / norm, d[1] / norm, d[2] / norm];
    let s = pair_scalars(a, b, xi, xi_min);
    // Reduced radius sets the force scale for unequal spheres.
    let a_eff = 2.0 * a * b / (a + b);
    let scale = 6.0 * std::f64::consts::PI * eta * a_eff;
    let dd = Block3::outer(e, e);
    // X^A on the parallel projector, Y^A on the perpendicular one.
    let mut block = Block3::ZERO;
    for idx in 0..9 {
        let i = idx / 3;
        let j = idx % 3;
        let par = dd.get(i, j);
        let perp = if i == j { 1.0 - par } else { -par };
        block.0[idx] = scale * (s.x_a * par + s.y_a * perp);
    }
    block
}

/// Dimensionless gap `ξ = 2·(r − a − b)/(a + b)` from the
/// center-to-center distance `r`.
pub fn dimensionless_gap(r: f64, a: f64, b: f64) -> f64 {
    2.0 * (r - a - b) / (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_for_equal_spheres() {
        let (g1, g2, g2y) = jo_coefficients(1.0);
        assert!((g1 - 0.25).abs() < 1e-15);
        assert!((g2 - 9.0 / 40.0).abs() < 1e-15);
        assert!((g2y - 4.0 * 5.0 / (15.0 * 8.0)).abs() < 1e-15);
    }

    #[test]
    fn squeeze_diverges_as_inverse_gap() {
        let near = pair_scalars(1.0, 1.0, 1e-4, 1e-6);
        let far = pair_scalars(1.0, 1.0, 1e-2, 1e-6);
        assert!(near.x_a > 50.0 * far.x_a);
        // 1/ξ dominance: ratio ≈ 100
        assert!((near.x_a / far.x_a) > 80.0);
    }

    #[test]
    fn shear_diverges_logarithmically() {
        let near = pair_scalars(1.0, 1.0, 1e-6, 1e-8);
        let far = pair_scalars(1.0, 1.0, 1e-2, 1e-8);
        let ratio = near.y_a / far.y_a;
        assert!(ratio > 2.0 && ratio < 4.0, "log growth, got {ratio}");
    }

    #[test]
    fn gap_floor_clamps() {
        let floored = pair_scalars(1.0, 1.0, 1e-12, 1e-4);
        let at_floor = pair_scalars(1.0, 1.0, 1e-4, 1e-4);
        assert_eq!(floored, at_floor);
    }

    #[test]
    fn scalars_positive_beyond_contact() {
        for &xi in &[1e-4, 0.1, 1.0, 5.0, 50.0] {
            let s = pair_scalars(2.0, 0.5, xi, 1e-6);
            assert!(s.x_a > 0.0 && s.y_a > 0.0, "xi={xi}");
        }
    }

    #[test]
    fn scalars_decay_with_distance() {
        let mut last = f64::INFINITY;
        for &xi in &[0.01, 0.1, 1.0, 10.0] {
            let s = pair_scalars(1.0, 1.0, xi, 1e-8);
            assert!(s.x_a < last);
            last = s.x_a;
        }
    }

    #[test]
    fn block_eigenstructure_along_axis() {
        // With d = x̂: block = scale·diag(X^A, Y^A, Y^A).
        let b = pair_block([1.0, 0.0, 0.0], 1.0, 1.0, 1.0, 0.01, 1e-6);
        let s = pair_scalars(1.0, 1.0, 0.01, 1e-6);
        let scale = 6.0 * std::f64::consts::PI;
        assert!((b.get(0, 0) - scale * s.x_a).abs() < 1e-9);
        assert!((b.get(1, 1) - scale * s.y_a).abs() < 1e-9);
        assert!((b.get(2, 2) - scale * s.y_a).abs() < 1e-9);
        assert!(b.get(0, 1).abs() < 1e-12);
    }

    #[test]
    fn block_is_symmetric_and_positive_definite() {
        let b = pair_block([1.0, 2.0, -0.5], 1.5, 0.7, 1.0, 0.05, 1e-6);
        assert!(b.is_symmetric_within(1e-12));
        // positive definite: check v·B·v for a few directions
        for v in [[1.0, 0.0, 0.0], [0.3, -1.0, 0.4], [1.0, 1.0, 1.0]] {
            let bv = b.mul_vec(v);
            let q: f64 = v.iter().zip(&bv).map(|(x, y)| x * y).sum();
            assert!(q > 0.0, "v={v:?} q={q}");
        }
    }

    #[test]
    fn block_invariant_under_direction_sign() {
        // A depends on d⊗d only, so flipping d changes nothing.
        let b1 = pair_block([0.6, -0.8, 0.0], 1.0, 2.0, 1.0, 0.02, 1e-6);
        let b2 = pair_block([-0.6, 0.8, 0.0], 1.0, 2.0, 1.0, 0.02, 1e-6);
        for k in 0..9 {
            assert!((b1.0[k] - b2.0[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn unequal_spheres_scale_like_reduced_radius() {
        // Doubling both radii doubles a_eff and thus the block scale
        // (at equal dimensionless gap).
        let b1 = pair_block([1.0, 0.0, 0.0], 1.0, 1.0, 1.0, 0.05, 1e-6);
        let b2 = pair_block([1.0, 0.0, 0.0], 2.0, 2.0, 1.0, 0.05, 1e-6);
        assert!((b2.get(0, 0) / b1.get(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dimensionless_gap_formula() {
        assert!((dimensionless_gap(2.2, 1.0, 1.0) - 0.2).abs() < 1e-15);
        assert!(dimensionless_gap(1.9, 1.0, 1.0) < 0.0); // overlap
    }
}
