#![allow(clippy::needless_range_loop)] // index loops mirror the paper: i/j/k are matrix and coordinate indices

//! Stokesian dynamics substrate.
//!
//! Implements the application the paper studies (§II, §V): spherical
//! particles of varying radii in a periodic box, dominated by
//! short-range lubrication forces, advanced by an explicit midpoint
//! scheme with Brownian noise.
//!
//! The resistance matrix follows the paper's sparse approximation
//! (Torres & Gilbert): `R = μ_F·D + R_lub`, where `D` carries the
//! per-particle Stokes drag `6πη·a_i`, `μ_F` is a volume-fraction
//! dependent far-field effective viscosity, and `R_lub` holds pairwise
//! near-field lubrication blocks in the relative-motion (collective
//! motion projected out) form, which keeps `R` symmetric positive
//! definite by construction.
//!
//! Modules:
//! * [`particle`] — particle configurations, periodic boxes, and the
//!   E. coli cytoplasm radii distribution of Table IV;
//! * [`packing`] — random sequential addition and overlap-relaxation
//!   packing generators up to 50% volume occupancy;
//! * [`cell_list`] — linked-cell neighbor search;
//! * [`lubrication`] — Jeffrey–Onishi near-field resistance scalars and
//!   pair blocks for unequal spheres;
//! * [`rpy`] — the Rotne–Prager–Yamakawa far-field mobility tensor
//!   (the paper's "future work" dense path; used here for validation
//!   and as an optional far-field model);
//! * [`resistance`] — assembly of `R` as a BCRS matrix;
//! * [`system`] — [`StokesianSystem`], the
//!   [`mrhs_core::ResistanceSystem`] implementation driving the
//!   experiments, plus [`system::GaussianNoise`].

pub mod analysis;
pub mod cell_list;
pub mod forces;
pub mod lubrication;
pub mod mobility;
pub mod packing;
pub mod particle;
pub mod resistance;
pub mod rpy;
pub mod system;

pub use analysis::MsdTracker;
pub use cell_list::CellList;
pub use forces::{chain_bonds, HarmonicBond};
pub use mobility::{DenseRpyMobility, FullResistance};
pub use particle::{ecoli_radii_distribution, ParticleSystem};
pub use resistance::{assemble_resistance, ResistanceConfig};
pub use system::{GaussianNoise, StokesianSystem, SystemBuilder};
