//! The Stokesian dynamics system driven by the MRHS algorithm.
//!
//! [`StokesianSystem`] implements [`mrhs_core::ResistanceSystem`], so
//! both the original (Alg. 1) and MRHS (Alg. 2) drivers in `mrhs-core`
//! run it unchanged. Units are reduced: lengths in ångströms, `η = 1`,
//! and the Brownian displacement scale is folded into
//! [`StokesianSystem::brownian_scale`] (the paper's physical constants
//! enter only through that prefactor, which does not affect iteration
//! counts or the √t drift law that the experiments measure).

use crate::forces::{add_bond_forces, HarmonicBond};
use crate::packing::pack_ecoli;
use crate::particle::ParticleSystem;
use crate::resistance::{assemble_resistance, ResistanceConfig};
use mrhs_core::{NoiseSource, ResistanceSystem};
use mrhs_sparse::BcrsMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A periodic suspension of spheres with lubrication-dominated
/// hydrodynamics.
#[derive(Clone, Debug)]
pub struct StokesianSystem {
    particles: ParticleSystem,
    resistance: ResistanceConfig,
    dt: f64,
    brownian_scale: f64,
    bonds: Vec<HarmonicBond>,
}

impl StokesianSystem {
    /// Wraps an existing particle configuration.
    pub fn new(
        particles: ParticleSystem,
        resistance: ResistanceConfig,
        dt: f64,
        brownian_scale: f64,
    ) -> Self {
        assert!(dt > 0.0);
        assert!(brownian_scale > 0.0);
        StokesianSystem {
            particles,
            resistance,
            dt,
            brownian_scale,
            bonds: Vec::new(),
        }
    }

    /// Attaches harmonic bonds (e.g. from [`crate::forces::chain_bonds`])
    /// that act as the deterministic force `f_P` in the governing
    /// equation.
    pub fn with_bonds(mut self, bonds: Vec<HarmonicBond>) -> Self {
        for b in &bonds {
            assert!(b.i < self.particles.len() && b.j < self.particles.len());
        }
        self.bonds = bonds;
        self
    }

    /// The attached bonds.
    pub fn bonds(&self) -> &[HarmonicBond] {
        &self.bonds
    }

    /// The particle configuration.
    pub fn particles(&self) -> &ParticleSystem {
        &self.particles
    }

    /// The resistance-assembly parameters.
    pub fn resistance_config(&self) -> &ResistanceConfig {
        &self.resistance
    }

    /// The Brownian displacement prefactor multiplying `Δt·u`.
    pub fn brownian_scale(&self) -> f64 {
        self.brownian_scale
    }
}

impl ResistanceSystem for StokesianSystem {
    fn dim(&self) -> usize {
        3 * self.particles.len()
    }

    fn assemble(&self) -> BcrsMatrix {
        assemble_resistance(&self.particles, &self.resistance)
    }

    fn advance(&mut self, u: &[f64], dt: f64) {
        assert_eq!(u.len(), self.dim());
        let s = dt * self.brownian_scale;
        for i in 0..self.particles.len() {
            self.particles
                .displace(i, [s * u[3 * i], s * u[3 * i + 1], s * u[3 * i + 2]]);
        }
    }

    fn dt(&self) -> f64 {
        self.dt
    }

    fn save_state(&self) -> Vec<f64> {
        self.particles.positions_flat()
    }

    fn restore_state(&mut self, state: &[f64]) {
        self.particles.set_positions_flat(state);
    }

    fn add_external_forces(&self, out: &mut [f64]) {
        if !self.bonds.is_empty() {
            add_bond_forces(&self.particles, &self.bonds, out);
        }
    }
}

/// A seeded Gaussian noise source backed by `rand` (Box–Muller over the
/// standard uniform), implementing [`mrhs_core::NoiseSource`].
#[derive(Clone, Debug)]
pub struct GaussianNoise {
    rng: StdRng,
    cached: Option<f64>,
}

impl GaussianNoise {
    /// Creates a source with the given seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        GaussianNoise { rng: StdRng::seed_from_u64(seed), cached: None }
    }
}

impl NoiseSource for GaussianNoise {
    fn fill_standard_normal(&mut self, out: &mut [f64]) {
        for v in out.iter_mut() {
            if let Some(c) = self.cached.take() {
                *v = c;
                continue;
            }
            let u1: f64 = loop {
                let u = self.rng.random::<f64>();
                if u > 0.0 {
                    break u;
                }
            };
            let u2: f64 = self.rng.random();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            *v = r * theta.cos();
            self.cached = Some(r * theta.sin());
        }
    }
}

/// Builder for the experiment systems of §V: `n` particles drawn from
/// the E. coli distribution, packed to a target occupancy.
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    n_particles: usize,
    volume_fraction: f64,
    resistance: ResistanceConfig,
    dt: f64,
    brownian_scale: f64,
    seed: u64,
}

impl SystemBuilder {
    /// Starts a builder for `n_particles` spheres.
    pub fn new(n_particles: usize) -> Self {
        SystemBuilder {
            n_particles,
            volume_fraction: 0.5,
            resistance: ResistanceConfig::default(),
            dt: 1.0,
            // Keeps per-step displacements a small fraction of a radius
            // (the regime of the paper's √t guess-drift law), calibrated
            // so the Fig. 5 error constant lands near the paper's 0.006.
            brownian_scale: 2.0,
            seed: 12345,
        }
    }

    /// Target volume occupancy (the paper tests 0.1, 0.3, 0.5).
    pub fn volume_fraction(mut self, phi: f64) -> Self {
        assert!(phi > 0.0 && phi < 0.64);
        self.volume_fraction = phi;
        self
    }

    /// Pair cutoff in scaled separation (`s_cut`), controlling matrix
    /// density as in Table I.
    pub fn s_cut(mut self, s_cut: f64) -> Self {
        assert!(s_cut > 2.0);
        self.resistance.s_cut = s_cut;
        self
    }

    /// Gap floor `ξ_min`.
    pub fn xi_min(mut self, xi_min: f64) -> Self {
        assert!(xi_min > 0.0);
        self.resistance.xi_min = xi_min;
        self
    }

    /// Time step length.
    pub fn dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0);
        self.dt = dt;
        self
    }

    /// Brownian displacement prefactor.
    pub fn brownian_scale(mut self, s: f64) -> Self {
        assert!(s > 0.0);
        self.brownian_scale = s;
        self
    }

    /// RNG seed for packing.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Packs the particles and builds the system.
    pub fn build(self) -> StokesianSystem {
        let particles =
            pack_ecoli(self.n_particles, self.volume_fraction, self.seed);
        StokesianSystem::new(
            particles,
            self.resistance,
            self.dt,
            self.brownian_scale,
        )
    }

    /// Builds the system plus a noise source seeded consistently.
    pub fn build_with_noise(self) -> (StokesianSystem, GaussianNoise) {
        let seed = self.seed;
        (
            self.build(),
            GaussianNoise::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrhs_core::{run_mrhs_chunk, run_original_step, MrhsConfig};

    fn small() -> StokesianSystem {
        SystemBuilder::new(40).volume_fraction(0.4).seed(5).build()
    }

    #[test]
    fn dim_is_three_per_particle() {
        let s = small();
        assert_eq!(s.dim(), 120);
    }

    #[test]
    fn save_restore_round_trip() {
        let mut s = small();
        let saved = s.save_state();
        let u = vec![1.0; s.dim()];
        s.advance(&u, 0.5);
        assert_ne!(s.save_state(), saved);
        s.restore_state(&saved);
        assert_eq!(s.save_state(), saved);
    }

    #[test]
    fn advance_scales_by_brownian_prefactor() {
        let mut s = small();
        let before = s.particles().positions()[0];
        let mut u = vec![0.0; s.dim()];
        u[0] = 1.0;
        s.advance(&u, 2.0);
        let after = s.particles().positions()[0];
        let moved = after[0] - before[0];
        assert!((moved - 2.0 * s.brownian_scale()).abs() < 1e-12);
    }

    #[test]
    fn original_step_runs_on_stokesian_system() {
        let mut s = small();
        let mut noise = GaussianNoise::seed_from_u64(1);
        let cfg = MrhsConfig::default();
        let mut cache = None;
        let stats = run_original_step(&mut s, &mut noise, &cfg, &mut cache);
        assert!(stats.first_solve_iterations > 0);
        assert!(stats.second_solve_iterations <= stats.first_solve_iterations);
    }

    #[test]
    fn mrhs_chunk_gives_warm_starts_on_stokesian_system() {
        let mut s = SystemBuilder::new(60).volume_fraction(0.5).seed(9).build();
        let mut noise = GaussianNoise::seed_from_u64(2);
        let cfg = MrhsConfig { m: 6, ..Default::default() };
        let report = run_mrhs_chunk(&mut s, &mut noise, &cfg);
        assert_eq!(report.steps.len(), 6);
        assert!(report.block_iterations > 0);

        // Compare against cold-start iterations on an identical system.
        let mut s2 = SystemBuilder::new(60).volume_fraction(0.5).seed(9).build();
        let mut noise2 = GaussianNoise::seed_from_u64(2);
        let mut cache = None;
        let cold = run_original_step(&mut s2, &mut noise2, &cfg, &mut cache);

        let warm_mean: f64 = report.steps[1..]
            .iter()
            .map(|st| st.first_solve_iterations as f64)
            .sum::<f64>()
            / (report.steps.len() - 1) as f64;
        assert!(
            warm_mean < cold.first_solve_iterations as f64,
            "warm {warm_mean} vs cold {}",
            cold.first_solve_iterations
        );
    }

    #[test]
    fn builder_honors_parameters() {
        let s = SystemBuilder::new(30)
            .volume_fraction(0.2)
            .s_cut(2.5)
            .dt(0.5)
            .brownian_scale(0.01)
            .seed(3)
            .build();
        assert_eq!(s.particles().len(), 30);
        assert!((s.particles().volume_fraction() - 0.2).abs() < 1e-9);
        assert_eq!(s.dt(), 0.5);
        assert_eq!(s.resistance_config().s_cut, 2.5);
    }

    #[test]
    fn gaussian_noise_moments() {
        let mut g = GaussianNoise::seed_from_u64(8);
        let mut v = vec![0.0; 50_000];
        g.fill_standard_normal(&mut v);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var =
            v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.03);
        assert!((var - 1.0).abs() < 0.05);
    }
}
