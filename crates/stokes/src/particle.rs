//! Particle configurations and the E. coli radii distribution.

/// A collection of spheres in a periodic rectangular box. Lengths are in
/// ångströms to match the paper's Table IV radii.
#[derive(Clone, Debug)]
pub struct ParticleSystem {
    positions: Vec<[f64; 3]>,
    radii: Vec<f64>,
    box_lengths: [f64; 3],
}

impl ParticleSystem {
    /// Builds a system; positions are wrapped into the box.
    pub fn new(
        mut positions: Vec<[f64; 3]>,
        radii: Vec<f64>,
        box_lengths: [f64; 3],
    ) -> Self {
        assert_eq!(positions.len(), radii.len());
        assert!(box_lengths.iter().all(|&l| l > 0.0));
        assert!(radii.iter().all(|&r| r > 0.0));
        for p in positions.iter_mut() {
            for d in 0..3 {
                p[d] = p[d].rem_euclid(box_lengths[d]);
            }
        }
        ParticleSystem { positions, radii, box_lengths }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the system has no particles.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Particle positions.
    pub fn positions(&self) -> &[[f64; 3]] {
        &self.positions
    }

    /// Particle radii.
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// Box side lengths.
    pub fn box_lengths(&self) -> [f64; 3] {
        self.box_lengths
    }

    /// Largest particle radius.
    pub fn max_radius(&self) -> f64 {
        self.radii.iter().fold(0.0f64, |a, &r| a.max(r))
    }

    /// Volume fraction occupied by the spheres.
    pub fn volume_fraction(&self) -> f64 {
        let v: f64 = self
            .radii
            .iter()
            .map(|r| 4.0 / 3.0 * std::f64::consts::PI * r * r * r)
            .sum();
        v / (self.box_lengths[0] * self.box_lengths[1] * self.box_lengths[2])
    }

    /// Minimum-image displacement `r_j − r_i` under periodic boundaries.
    #[inline]
    pub fn minimum_image(&self, i: usize, j: usize) -> [f64; 3] {
        let mut d = [0.0; 3];
        for k in 0..3 {
            let l = self.box_lengths[k];
            let mut diff = self.positions[j][k] - self.positions[i][k];
            diff -= l * (diff / l).round();
            d[k] = diff;
        }
        d
    }

    /// Center-to-center minimum-image distance.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        let d = self.minimum_image(i, j);
        (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
    }

    /// Surface gap between particles `i` and `j` (negative = overlap).
    pub fn gap(&self, i: usize, j: usize) -> f64 {
        self.distance(i, j) - self.radii[i] - self.radii[j]
    }

    /// Displaces particle `i` by `delta`, wrapping into the box.
    #[inline]
    pub fn displace(&mut self, i: usize, delta: [f64; 3]) {
        for k in 0..3 {
            self.positions[i][k] =
                (self.positions[i][k] + delta[k]).rem_euclid(self.box_lengths[k]);
        }
    }

    /// Replaces all positions (used by state save/restore), wrapping
    /// into the box.
    pub fn set_positions_flat(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), 3 * self.len());
        for (i, chunk) in flat.chunks_exact(3).enumerate() {
            for k in 0..3 {
                self.positions[i][k] = chunk[k].rem_euclid(self.box_lengths[k]);
            }
        }
    }

    /// Flattens positions to a `3n` vector.
    pub fn positions_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(3 * self.len());
        for p in &self.positions {
            out.extend_from_slice(p);
        }
        out
    }
}

impl ParticleSystem {
    /// Relabels particles in Morton (Z-curve) order of their positions.
    /// Nearby particles get nearby indices, so the resistance matrix has
    /// banded structure and GSPMV's `x` accesses are cache-local — the
    /// ordering optimization the paper cites as standard for SPMV. Call
    /// once after packing; the labelling stays good as particles diffuse.
    pub fn sort_morton(&mut self) {
        let side = 1u32 << 8;
        let codes: Vec<u64> = self
            .positions
            .iter()
            .map(|p| {
                let mut c = [0u32; 3];
                for d in 0..3 {
                    let frac = (p[d] / self.box_lengths[d]).rem_euclid(1.0);
                    c[d] = ((frac * side as f64) as u32).min(side - 1);
                }
                morton3(c)
            })
            .collect();
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&i| codes[i]);
        self.positions = order.iter().map(|&i| self.positions[i]).collect();
        self.radii = order.iter().map(|&i| self.radii[i]).collect();
    }
}

/// Interleaves the low 21 bits of each coordinate into a Morton code.
fn morton3(c: [u32; 3]) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut x = v as u64 & 0x1f_ffff;
        x = (x | x << 32) & 0x1f00000000ffff;
        x = (x | x << 16) & 0x1f0000ff0000ff;
        x = (x | x << 8) & 0x100f00f00f00f00f;
        x = (x | x << 4) & 0x10c30c30c30c30c3;
        x = (x | x << 2) & 0x1249249249249249;
        x
    }
    spread(c[0]) | spread(c[1]) << 1 | spread(c[2]) << 2
}

/// The paper's Table IV: radii (Å) and number percentages of the protein
/// size distribution of the E. coli cytoplasm (Ando & Skolnick 2010).
pub const ECOLI_DISTRIBUTION: [(f64, f64); 15] = [
    (115.24, 2.43),
    (85.23, 3.16),
    (66.49, 6.55),
    (49.16, 0.97),
    (45.43, 0.49),
    (43.06, 3.64),
    (42.48, 2.91),
    (39.16, 2.67),
    (36.76, 8.01),
    (35.94, 8.01),
    (31.71, 10.92),
    (27.77, 25.97),
    (25.75, 8.25),
    (24.01, 9.95),
    (21.42, 6.07),
];

/// Returns Table IV as `(radius Å, fraction)` pairs with fractions
/// normalized to sum to one.
pub fn ecoli_radii_distribution() -> Vec<(f64, f64)> {
    let total: f64 = ECOLI_DISTRIBUTION.iter().map(|(_, p)| p).sum();
    ECOLI_DISTRIBUTION.iter().map(|&(r, p)| (r, p / total)).collect()
}

/// Samples `n` radii from the Table IV distribution given uniform(0,1)
/// variates from `uniform`.
pub fn sample_ecoli_radii(n: usize, mut uniform: impl FnMut() -> f64) -> Vec<f64> {
    let dist = ecoli_radii_distribution();
    (0..n)
        .map(|_| {
            let mut u = uniform();
            for &(r, p) in &dist {
                if u < p {
                    return r;
                }
                u -= p;
            }
            dist.last().unwrap().0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_particle_system() -> ParticleSystem {
        ParticleSystem::new(
            vec![[1.0, 1.0, 1.0], [9.5, 1.0, 1.0]],
            vec![0.5, 0.5],
            [10.0, 10.0, 10.0],
        )
    }

    #[test]
    fn minimum_image_wraps_across_boundary() {
        let s = two_particle_system();
        let d = s.minimum_image(0, 1);
        // shortest path crosses the boundary: 9.5 − 1.0 − 10 = −1.5
        assert!((d[0] + 1.5).abs() < 1e-12, "{d:?}");
        assert!((s.distance(0, 1) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn gap_subtracts_radii() {
        let s = two_particle_system();
        assert!((s.gap(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn positions_wrapped_on_construction() {
        let s = ParticleSystem::new(
            vec![[-1.0, 12.0, 5.0]],
            vec![1.0],
            [10.0, 10.0, 10.0],
        );
        assert_eq!(s.positions()[0], [9.0, 2.0, 5.0]);
    }

    #[test]
    fn volume_fraction_of_single_unit_sphere() {
        let s = ParticleSystem::new(vec![[0.0; 3]], vec![1.0], [2.0, 2.0, 2.0]);
        let want = 4.0 / 3.0 * std::f64::consts::PI / 8.0;
        assert!((s.volume_fraction() - want).abs() < 1e-12);
    }

    #[test]
    fn displace_wraps() {
        let mut s = two_particle_system();
        s.displace(0, [-2.0, 0.0, 0.0]);
        assert!((s.positions()[0][0] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn flat_round_trip() {
        let mut s = two_particle_system();
        let flat = s.positions_flat();
        assert_eq!(flat.len(), 6);
        s.displace(0, [1.0, 1.0, 1.0]);
        s.set_positions_flat(&flat);
        assert_eq!(s.positions()[0], [1.0, 1.0, 1.0]);
    }

    #[test]
    fn ecoli_distribution_normalized_and_matches_table() {
        let d = ecoli_radii_distribution();
        assert_eq!(d.len(), 15);
        let sum: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(d[0].0, 115.24);
        // the 27.77 Å bin is the most common (25.97%)
        let max = d.iter().cloned().fold(
            (0.0, 0.0),
            |a, b| {
                if b.1 > a.1 {
                    b
                } else {
                    a
                }
            },
        );
        assert_eq!(max.0, 27.77);
    }

    #[test]
    fn sampled_radii_follow_distribution() {
        let mut state = 12345u64;
        let mut uniform = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let radii = sample_ecoli_radii(20_000, &mut uniform);
        assert!(radii.iter().all(|r| (21.0..116.0).contains(r)));
        let common = radii.iter().filter(|&&r| (r - 27.77).abs() < 1e-9).count()
            as f64
            / radii.len() as f64;
        assert!((common - 0.2597).abs() < 0.02, "fraction {common}");
    }
}
