//! Deterministic inter-particle forces `f_P`.
//!
//! The paper's experiments use `f_P = 0` but §II-A names the extension:
//! "bonded forces for simulating long-chain molecules as a bonded chain
//! of particles". This module provides harmonic bonds (and chains built
//! from them) that plug into the MRHS driver through
//! [`mrhs_core::ResistanceSystem::add_external_forces`].

use crate::particle::ParticleSystem;

/// A harmonic bond `U = ½·k·(r − r₀)²` between two particles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HarmonicBond {
    /// First particle.
    pub i: usize,
    /// Second particle.
    pub j: usize,
    /// Rest length `r₀` (Å).
    pub rest_length: f64,
    /// Stiffness `k` (force per length).
    pub stiffness: f64,
}

impl HarmonicBond {
    /// Builds a bond; rest length and stiffness must be positive.
    pub fn new(i: usize, j: usize, rest_length: f64, stiffness: f64) -> Self {
        assert_ne!(i, j, "bond endpoints must differ");
        assert!(rest_length > 0.0 && stiffness > 0.0);
        HarmonicBond { i, j, rest_length, stiffness }
    }
}

/// Connects consecutive particles of `indices` into a chain, with rest
/// length `slack · (a_i + a_j)` so bonded neighbors sit near contact.
pub fn chain_bonds(
    system: &ParticleSystem,
    indices: &[usize],
    slack: f64,
    stiffness: f64,
) -> Vec<HarmonicBond> {
    assert!(slack > 0.0);
    indices
        .windows(2)
        .map(|w| {
            let (i, j) = (w[0], w[1]);
            HarmonicBond::new(
                i,
                j,
                slack * (system.radii()[i] + system.radii()[j]),
                stiffness,
            )
        })
        .collect()
}

/// Accumulates the bond forces at the current configuration into `out`
/// (`3n` scalars, xyz per particle). Periodic minimum-image convention.
pub fn add_bond_forces(
    system: &ParticleSystem,
    bonds: &[HarmonicBond],
    out: &mut [f64],
) {
    assert_eq!(out.len(), 3 * system.len());
    for bond in bonds {
        let d = system.minimum_image(bond.i, bond.j); // r_j − r_i
        let dist = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        if dist < 1e-12 {
            continue; // coincident: force direction undefined
        }
        // F on i points toward j when stretched (dist > r₀).
        let magnitude = bond.stiffness * (dist - bond.rest_length);
        for k in 0..3 {
            let f = magnitude * d[k] / dist;
            out[3 * bond.i + k] += f;
            out[3 * bond.j + k] -= f;
        }
    }
}

/// Total potential energy of the bonds (test/diagnostic helper).
pub fn bond_energy(system: &ParticleSystem, bonds: &[HarmonicBond]) -> f64 {
    bonds
        .iter()
        .map(|b| {
            let dist = system.distance(b.i, b.j);
            0.5 * b.stiffness * (dist - b.rest_length) * (dist - b.rest_length)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_system(separation: f64) -> ParticleSystem {
        ParticleSystem::new(
            vec![[10.0, 10.0, 10.0], [10.0 + separation, 10.0, 10.0]],
            vec![1.0, 1.0],
            [40.0; 3],
        )
    }

    #[test]
    fn stretched_bond_pulls_together() {
        let s = pair_system(5.0);
        let bonds = [HarmonicBond::new(0, 1, 3.0, 2.0)];
        let mut f = vec![0.0; 6];
        add_bond_forces(&s, &bonds, &mut f);
        // stretched by 2: force magnitude 4 on each, opposite signs
        assert!((f[0] - 4.0).abs() < 1e-12, "{f:?}");
        assert!((f[3] + 4.0).abs() < 1e-12);
        // Newton's third law exactly
        for k in 0..3 {
            assert!((f[k] + f[3 + k]).abs() < 1e-12);
        }
    }

    #[test]
    fn compressed_bond_pushes_apart() {
        let s = pair_system(2.0);
        let bonds = [HarmonicBond::new(0, 1, 3.0, 2.0)];
        let mut f = vec![0.0; 6];
        add_bond_forces(&s, &bonds, &mut f);
        assert!(f[0] < 0.0 && f[3] > 0.0, "{f:?}");
    }

    #[test]
    fn at_rest_length_no_force() {
        let s = pair_system(3.0);
        let bonds = [HarmonicBond::new(0, 1, 3.0, 2.0)];
        let mut f = vec![0.0; 6];
        add_bond_forces(&s, &bonds, &mut f);
        assert!(f.iter().all(|v| v.abs() < 1e-12));
        assert!(bond_energy(&s, &bonds) < 1e-24);
    }

    #[test]
    fn bond_respects_periodic_images() {
        // Shortest path across the boundary: force acts through it.
        let s = ParticleSystem::new(
            vec![[1.0, 5.0, 5.0], [39.0, 5.0, 5.0]],
            vec![1.0, 1.0],
            [40.0; 3],
        );
        let bonds = [HarmonicBond::new(0, 1, 1.0, 1.0)];
        let mut f = vec![0.0; 6];
        add_bond_forces(&s, &bonds, &mut f);
        // min-image distance is 2, stretched by 1; i is pulled in −x
        // (toward the boundary image of j).
        assert!(f[0] < 0.0, "{f:?}");
    }

    #[test]
    fn chain_builder_links_consecutive_particles() {
        let s = ParticleSystem::new(
            vec![[0.0; 3], [5.0, 0.0, 0.0], [10.0, 0.0, 0.0]],
            vec![1.0, 2.0, 1.5],
            [50.0; 3],
        );
        let bonds = chain_bonds(&s, &[0, 1, 2], 1.0, 3.0);
        assert_eq!(bonds.len(), 2);
        assert_eq!(bonds[0].rest_length, 3.0);
        assert_eq!(bonds[1].rest_length, 3.5);
    }

    #[test]
    fn energy_decreases_under_force_descent() {
        // Moving along the bond force must reduce the energy.
        let mut s = pair_system(5.0);
        let bonds = [HarmonicBond::new(0, 1, 3.0, 2.0)];
        let e0 = bond_energy(&s, &bonds);
        let mut f = vec![0.0; 6];
        add_bond_forces(&s, &bonds, &mut f);
        let eta = 0.05;
        s.displace(0, [eta * f[0], eta * f[1], eta * f[2]]);
        s.displace(1, [eta * f[3], eta * f[4], eta * f[5]]);
        assert!(bond_energy(&s, &bonds) < e0);
    }
}
