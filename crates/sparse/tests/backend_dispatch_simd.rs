//! `MRHS_KERNEL_BACKEND=simd` forces the explicit-SIMD path (when the
//! host has a vector ISA — otherwise the override falls back to scalar
//! by the documented dispatch policy, and this test checks *that*).
//!
//! Own test binary: the override env var is read once, at the first
//! `active_backend()` call (see `backend_dispatch_scalar.rs`).

use mrhs_sparse::{
    backend_available, Block3, BlockTripletBuilder, KernelKind, MultiVec,
};

#[test]
fn env_override_forces_simd_backend() {
    std::env::set_var("MRHS_KERNEL_BACKEND", "simd");
    mrhs_telemetry::set_enabled(true);

    let simd_possible = backend_available(KernelKind::Simd);
    let b = mrhs_sparse::active_backend();
    if !simd_possible {
        // Portable host: the override degrades to scalar rather than
        // aborting, so the binary still runs everywhere.
        assert_eq!(b.kind(), KernelKind::Scalar);
        return;
    }
    assert_eq!(b.kind(), KernelKind::Simd);
    assert_eq!(b.name(), "simd");

    let mut t = BlockTripletBuilder::square(4);
    for i in 0..4 {
        t.add(i, i, Block3::scaled_identity(2.0));
    }
    let a = t.build();
    // m = 8 clears every ISA's minimum vector width, so the SIMD
    // backend runs its own kernels rather than narrow-delegating.
    let x = MultiVec::from_flat(12, 8, vec![1.0; 12 * 8]);
    let mut y = MultiVec::zeros(12, 8);
    mrhs_sparse::gspmv_serial(&a, &x, &mut y);

    let snap = mrhs_telemetry::snapshot();
    assert!(
        snap.counters.get("kernel_backend/simd/calls").copied().unwrap_or(0) >= 1,
        "simd dispatch not recorded: {:?}",
        snap.counters
    );
    assert!(!snap.counters.contains_key("kernel_backend/scalar/calls"));
    assert!(!snap.counters.contains_key("kernel_backend/generic/calls"));
}
