//! Edge-case tests for `MultiVec`'s row-major layout contract: the
//! degenerate single-column shape, column read/write aliasing, and the
//! `row * m + col` stride assumption every kernel in the workspace
//! leans on. All checks are bitwise — layout bugs must not hide inside
//! a tolerance.

use mrhs_sparse::MultiVec;

fn filled(n: usize, m: usize) -> MultiVec {
    let mut v = MultiVec::zeros(n, m);
    for (i, x) in v.as_mut_slice().iter_mut().enumerate() {
        // Distinct, irregular, sign-mixed values; no two entries equal.
        *x = ((i as f64) + 0.25) * if i % 2 == 0 { 1.0 } else { -1.0 };
    }
    v
}

#[test]
fn single_column_flat_buffer_is_the_column() {
    // With m = 1 the row-major buffer IS the column: copy_column_into
    // must reproduce it bit for bit, in both directions.
    let v = filled(7, 1);
    let mut out = vec![0.0; 7];
    v.copy_column_into(0, &mut out);
    oracle::tolerance::assert_bitwise(v.as_slice(), &out, "m=1 copy out");

    let roundtrip = MultiVec::from_vec(out);
    assert_eq!(roundtrip.shape(), (7, 1));
    oracle::tolerance::assert_bitwise(
        v.as_slice(),
        roundtrip.as_slice(),
        "m=1 from_vec roundtrip",
    );
    assert_eq!(v.column(0), v.as_slice());
}

#[test]
fn set_column_touches_only_its_column() {
    let mut v = filled(6, 4);
    let before = v.clone();
    let replacement: Vec<f64> = (0..6).map(|r| -(r as f64) - 100.5).collect();
    v.set_column(2, &replacement);

    for j in 0..4 {
        if j == 2 {
            oracle::tolerance::assert_bitwise(
                &replacement,
                &v.column(2),
                "written column",
            );
        } else {
            oracle::tolerance::assert_bitwise(
                &before.column(j),
                &v.column(j),
                "untouched sibling column",
            );
        }
    }
}

#[test]
fn column_roundtrip_is_bitwise_identity() {
    // Reading a column out and writing it straight back may not move a
    // bit anywhere in the buffer — the aliasing-free guarantee chunk
    // drivers rely on when they stage columns through scratch space.
    let mut v = filled(9, 5);
    let before = v.clone();
    for j in 0..5 {
        let col = v.column(j);
        v.set_column(j, &col);
    }
    oracle::tolerance::assert_bitwise(
        before.as_slice(),
        v.as_slice(),
        "column read/write roundtrip",
    );
}

#[test]
fn entries_live_at_row_major_offsets() {
    let v = filled(5, 3);
    let flat = v.as_slice();
    for r in 0..5 {
        for c in 0..3 {
            assert_eq!(
                v.get(r, c).to_bits(),
                flat[r * 3 + c].to_bits(),
                "entry ({r},{c}) not at offset r*m+c"
            );
        }
        oracle::tolerance::assert_bitwise(
            v.row(r),
            &flat[r * 3..(r + 1) * 3],
            "row slice",
        );
    }
    // column(j) therefore gathers with stride m.
    for c in 0..3 {
        let want: Vec<f64> = (0..5).map(|r| flat[r * 3 + c]).collect();
        oracle::tolerance::assert_bitwise(&want, &v.column(c), "strided gather");
    }
}

#[test]
fn constructors_agree_on_layout() {
    let flat: Vec<f64> = (0..12).map(|i| (i as f64) * 1.5 - 4.0).collect();
    let a = MultiVec::from_flat(4, 3, flat.clone());
    let cols: Vec<Vec<f64>> = (0..3).map(|j| a.column(j)).collect();
    let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    let b = MultiVec::from_columns(&col_refs);
    assert_eq!(b.shape(), (4, 3));
    oracle::tolerance::assert_bitwise(
        a.as_slice(),
        b.as_slice(),
        "from_flat vs from_columns",
    );
}

#[test]
fn gather_rows_preserves_row_slices() {
    let v = filled(8, 3);
    let g = v.gather_rows(2..6);
    assert_eq!(g.shape(), (4, 3));
    for r in 0..4 {
        oracle::tolerance::assert_bitwise(v.row(r + 2), g.row(r), "gathered row");
    }
}
