//! Property-based tests of the sparse substrate: storage round trips,
//! kernel agreement, adjointness, and permutation invariants.
//!
//! Kernel outputs are differenced against the `oracle` crate's naive
//! dense references under its shared tolerance model, instead of the
//! per-file `close()` helpers this suite used to carry.

use mrhs_sparse::gspmv::{gspmv_serial_generic, SPECIALIZED_M};
use mrhs_sparse::partition::{contiguous_partition, Partition};
use mrhs_sparse::reorder::{permute_symmetric, reverse_cuthill_mckee};
use mrhs_sparse::{
    gspmv_serial, spmv_serial, BcrsMatrix, Block3, BlockTripletBuilder, MultiVec,
    SymmetricBcrs,
};
use oracle::{Dense, TolModel};
use proptest::prelude::*;

/// Strategy: a random square block matrix with a symmetric pattern plus
/// full diagonal, `nb` block rows.
fn arb_matrix(max_nb: usize) -> impl Strategy<Value = BcrsMatrix> {
    (2usize..=max_nb)
        .prop_flat_map(|nb| {
            let pairs = proptest::collection::vec(
                ((0..nb), (0..nb), proptest::array::uniform9(-2.0f64..2.0)),
                0..3 * nb,
            );
            let diag = proptest::collection::vec(
                proptest::array::uniform9(-1.0f64..1.0),
                nb,
            );
            (Just(nb), pairs, diag)
        })
        .prop_map(|(nb, pairs, diag)| {
            let mut t = BlockTripletBuilder::square(nb);
            for (i, d) in diag.into_iter().enumerate() {
                // symmetrized diagonal block with a dominant shift
                let raw = Block3(d);
                let b =
                    (raw + raw.transpose()) * 0.5 + Block3::scaled_identity(5.0);
                t.add(i, i, b);
            }
            for (i, j, v) in pairs {
                if i != j {
                    t.add_symmetric_pair(i, j, Block3(v));
                }
            }
            t.build()
        })
}

/// Strategy: a random symmetric matrix with *irregular* structure —
/// some rows lack even a diagonal block (empty rows), and one row is
/// densely coupled to half the others (a dense row) — the shapes the
/// symmetric kernel's chunking and slab scatter must survive.
fn arb_symmetric_irregular(max_nb: usize) -> impl Strategy<Value = BcrsMatrix> {
    (3usize..=max_nb)
        .prop_flat_map(|nb| {
            let pairs = proptest::collection::vec(
                ((0..nb), (0..nb), proptest::array::uniform9(-2.0f64..2.0)),
                0..3 * nb,
            );
            let diag_mask = proptest::collection::vec(0usize..4, nb);
            (Just(nb), pairs, diag_mask, 0..nb)
        })
        .prop_map(|(nb, pairs, diag_mask, dense)| {
            let mut t = BlockTripletBuilder::square(nb);
            for (i, &mk) in diag_mask.iter().enumerate() {
                // About 1 row in 4 gets no diagonal block at all.
                if mk > 0 {
                    t.add(i, i, Block3::scaled_identity(3.0));
                }
            }
            for (i, j, v) in pairs {
                if i != j {
                    t.add_symmetric_pair(i, j, Block3(v));
                }
            }
            // One densely coupled row — but only to every other row, so
            // fully empty rows remain possible.
            for j in (0..nb).step_by(2) {
                if j != dense {
                    t.add_symmetric_pair(dense, j, Block3::scaled_identity(0.25));
                }
            }
            t.build()
        })
}

/// Loose model for reductions over different summation orders; the
/// kernels themselves are held to [`TolModel::KERNEL`].
const LOOSE: TolModel = TolModel { rel: 1e-9, floor: 1.0, max_ulps: 64 };

fn close(a: f64, b: f64) -> bool {
    LOOSE.accepts(a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gspmv_columns_match_spmv(a in arb_matrix(12), m in 1usize..10) {
        let n = a.n_rows();
        let x = MultiVec::from_flat(
            n, m, (0..n * m).map(|v| ((v * 37 % 19) as f64) - 9.0).collect());
        let want = Dense::from_bcrs(&a).gspmv(&x);
        let mut y = MultiVec::zeros(n, m);
        gspmv_serial(&a, &x, &mut y);
        if let Err(e) = TolModel::KERNEL
            .check_slices(want.as_slice(), y.as_slice(), "gspmv vs dense")
        {
            prop_assert!(false, "{}", e);
        }
        for j in 0..m {
            let mut yj = vec![0.0; n];
            spmv_serial(&a, &x.column(j), &mut yj);
            if let Err(e) = TolModel::KERNEL
                .check_slices(&want.column(j), &yj, "spmv column vs dense")
            {
                prop_assert!(false, "col {}: {}", j, e);
            }
        }
    }

    #[test]
    fn specialized_and_generic_kernels_agree(a in arb_matrix(10), m in 1usize..34) {
        let n = a.n_rows();
        let x = MultiVec::from_flat(
            n, m, (0..n * m).map(|v| ((v % 11) as f64) * 0.3 - 1.5).collect());
        let want = Dense::from_bcrs(&a).gspmv(&x);
        let mut y1 = MultiVec::zeros(n, m);
        let mut y2 = MultiVec::zeros(n, m);
        gspmv_serial(&a, &x, &mut y1);
        gspmv_serial_generic(&a, &x, &mut y2);
        for (name, y) in [("specialized", &y1), ("generic", &y2)] {
            if let Err(e) = TolModel::KERNEL
                .check_slices(want.as_slice(), y.as_slice(), name)
            {
                prop_assert!(false, "m={}: {}", m, e);
            }
        }
    }

    #[test]
    fn parallel_symmetric_gspmv_matches_dense_all_specialized_m(
        a in arb_symmetric_irregular(14),
        msel in 0usize..10,
        nchunks in 2usize..6,
    ) {
        let m = SPECIALIZED_M[msel];
        let s = SymmetricBcrs::from_full(&a, 1e-12)
            .expect("generator builds symmetric matrices");
        let n = a.n_rows();
        let x = MultiVec::from_flat(
            n, m, (0..n * m).map(|v| ((v * 29 % 23) as f64) - 11.0).collect());
        let want = Dense::from_symmetric(&s).gspmv(&x);
        let mut y_sym = MultiVec::zeros(n, m);
        s.gspmv_chunked(&x, &mut y_sym, nchunks);
        if let Err(e) = TolModel::KERNEL
            .check_slices(want.as_slice(), y_sym.as_slice(), "sym chunked")
        {
            prop_assert!(false, "m={} nchunks={}: {}", m, nchunks, e);
        }
    }

    #[test]
    fn serial_symmetric_gspmv_matches_dense(
        a in arb_symmetric_irregular(14),
        m in 1usize..34,
    ) {
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        let n = a.n_rows();
        let x = MultiVec::from_flat(
            n, m, (0..n * m).map(|v| ((v * 17 % 13) as f64) - 6.0).collect());
        // Expanded independently from the half storage AND from the
        // full matrix: pins both the kernel and the conversion.
        let want = Dense::from_symmetric(&s).gspmv(&x);
        let want_full = Dense::from_bcrs(&a).gspmv(&x);
        oracle::tolerance::assert_bitwise(
            want.as_slice(), want_full.as_slice(), "dense refs");
        let mut y_sym = MultiVec::zeros(n, m);
        s.gspmv(&x, &mut y_sym);
        if let Err(e) = TolModel::KERNEL
            .check_slices(want.as_slice(), y_sym.as_slice(), "sym serial")
        {
            prop_assert!(false, "m={}: {}", m, e);
        }
    }

    #[test]
    fn symmetric_storage_never_streams_more(a in arb_matrix(14)) {
        // Holds for full-diagonal matrices (symmetric storage keeps a
        // dense diagonal, so rows without any block would pad it).
        let s = SymmetricBcrs::from_full(&a, 1e-12).unwrap();
        prop_assert!(s.stored_blocks() <= a.nnz_blocks());
        prop_assert!(s.stream_bytes() <= a.stream_bytes());
    }

    #[test]
    fn spmv_is_adjoint_consistent(a in arb_matrix(10)) {
        // (A x, y) == (x, Aᵀ y)
        let n = a.n_rows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) - 5.0).collect();
        let at = a.transpose();
        let mut ax = vec![0.0; n];
        let mut aty = vec![0.0; n];
        spmv_serial(&a, &x, &mut ax);
        spmv_serial(&at, &y, &mut aty);
        let lhs: f64 = ax.iter().zip(&y).map(|(u, v)| u * v).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(u, v)| u * v).sum();
        prop_assert!(close(lhs, rhs), "{lhs} vs {rhs}");
    }

    #[test]
    fn symmetric_pattern_matrices_are_symmetric(a in arb_matrix(10)) {
        prop_assert!(a.is_symmetric_within(1e-12));
    }

    #[test]
    fn transpose_is_involution(a in arb_matrix(10)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gershgorin_brackets_rayleigh_quotients(a in arb_matrix(10)) {
        let n = a.n_rows();
        let lo = a.gershgorin_lower_bound();
        let hi = a.gershgorin_upper_bound();
        for seed in 1u64..4 {
            let mut state = seed;
            let v: Vec<f64> = (0..n).map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            }).collect();
            let mut av = vec![0.0; n];
            spmv_serial(&a, &v, &mut av);
            let num: f64 = v.iter().zip(&av).map(|(u, w)| u * w).sum();
            let den: f64 = v.iter().map(|u| u * u).sum();
            let q = num / den;
            prop_assert!(q >= lo - 1e-9 && q <= hi + 1e-9, "{q} not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn rcm_permutation_preserves_action(a in arb_matrix(10)) {
        let n = a.n_rows();
        let perm = reverse_cuthill_mckee(&a);
        let b = permute_symmetric(&a, &perm);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut xb = vec![0.0; n];
        for (new, &old) in perm.iter().enumerate() {
            xb[3 * new..3 * new + 3].copy_from_slice(&x[3 * old..3 * old + 3]);
        }
        let mut y = vec![0.0; n];
        let mut yb = vec![0.0; n];
        spmv_serial(&a, &x, &mut y);
        spmv_serial(&b, &xb, &mut yb);
        for (new, &old) in perm.iter().enumerate() {
            for k in 0..3 {
                prop_assert!(close(yb[3 * new + k], y[3 * old + k]));
            }
        }
    }

    #[test]
    fn partitions_cover_rows_exactly_once(a in arb_matrix(16), p in 1usize..6) {
        let part = contiguous_partition(&a, p);
        let mut seen = vec![false; a.nb_rows()];
        for rows in part.parts() {
            for r in rows {
                prop_assert!(!seen[r], "row {r} in two parts");
                seen[r] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn communication_volume_zero_iff_single_part(a in arb_matrix(12)) {
        let single = Partition::from_assignment(1, vec![0; a.nb_rows()]);
        prop_assert_eq!(single.communication_volume(&a), 0);
    }

    #[test]
    fn gram_matches_naive(n in 1usize..20, ma in 1usize..6, mb in 1usize..6) {
        let a = MultiVec::from_flat(
            n, ma, (0..n * ma).map(|v| ((v * 13 % 7) as f64) - 3.0).collect());
        let b = MultiVec::from_flat(
            n, mb, (0..n * mb).map(|v| ((v * 11 % 5) as f64) - 2.0).collect());
        let g = a.gram(&b);
        for i in 0..ma {
            for j in 0..mb {
                let want: f64 = (0..n).map(|r| a.get(r, i) * b.get(r, j)).sum();
                prop_assert!(close(g[i * mb + j], want));
            }
        }
    }

    #[test]
    fn gram_of_square_sizes_matches_naive(n in 1usize..16, msel in 0usize..5) {
        // exercise the monomorphized square dispatch path
        let m = [1usize, 4, 8, 16, 32][msel];
        let a = MultiVec::from_flat(
            n, m, (0..n * m).map(|v| ((v * 3 % 17) as f64) * 0.25 - 2.0).collect());
        let g = a.gram(&a);
        for i in 0..m {
            for j in 0..m {
                let want: f64 = (0..n).map(|r| a.get(r, i) * a.get(r, j)).sum();
                prop_assert!(close(g[i * m + j], want));
                prop_assert!(close(g[i * m + j], g[j * m + i]));
            }
        }
    }

    #[test]
    fn add_mul_dense_matches_naive(n in 1usize..12, m in 1usize..9) {
        let mut x = MultiVec::zeros(n, m);
        let p = MultiVec::from_flat(
            n, m, (0..n * m).map(|v| ((v % 9) as f64) - 4.0).collect());
        let c: Vec<f64> = (0..m * m).map(|v| ((v % 5) as f64) * 0.5 - 1.0).collect();
        x.add_mul_dense(&p, &c);
        for r in 0..n {
            for j in 0..m {
                let want: f64 = (0..m).map(|k| p.get(r, k) * c[k * m + j]).sum();
                prop_assert!(close(x.get(r, j), want));
            }
        }
    }

    #[test]
    fn assign_add_mul_dense_matches_naive(n in 1usize..12, m in 1usize..9) {
        let mut p = MultiVec::from_flat(
            n, m, (0..n * m).map(|v| ((v % 7) as f64) - 3.0).collect());
        let orig = p.clone();
        let r = MultiVec::from_flat(
            n, m, (0..n * m).map(|v| ((v % 4) as f64) - 1.5).collect());
        let c: Vec<f64> = (0..m * m).map(|v| ((v % 3) as f64) - 1.0).collect();
        p.assign_add_mul_dense(&r, &c);
        for row in 0..n {
            for j in 0..m {
                let want: f64 = r.get(row, j)
                    + (0..m).map(|k| orig.get(row, k) * c[k * m + j]).sum::<f64>();
                prop_assert!(close(p.get(row, j), want));
            }
        }
    }
}

/// Historical proptest shrink (see `proptest_sparse.proptest-regressions`):
/// a matrix whose off-diagonal pattern is symmetric but whose *diagonal*
/// block is not — `Block3[(2,1)] = -0.53…` with `Block3[(1,2)] = 0` —
/// must be rejected by the symmetric-storage conversion. An early
/// `from_full` only compared off-diagonal partners and accepted it,
/// corrupting every symmetric multiply that followed.
#[test]
fn asymmetric_diagonal_block_is_rejected() {
    let mut t = BlockTripletBuilder::square(2);
    let mut d = Block3::scaled_identity(5.0);
    *d.get_mut(2, 1) = -0.532_031_494_575_789_9;
    t.add(0, 0, d);
    t.add(1, 1, Block3::scaled_identity(5.0));
    let a = t.build();
    assert!(!a.is_symmetric_within(1e-12));
    assert!(SymmetricBcrs::from_full(&a, 1e-12).is_none());
}

/// Companion to the above: an *off-diagonal* asymmetry accepted at a
/// loose tolerance is genuinely lossy — the lower block is rebuilt as
/// the upper's transpose — and the oracle's independent expansion
/// exposes the difference. Callers must pick `symmetry_tol` to match
/// how much of this they can absorb.
#[test]
fn loose_conversion_of_asymmetric_off_diagonal_is_lossy() {
    let mut t = BlockTripletBuilder::square(2);
    t.add(0, 0, Block3::scaled_identity(5.0));
    t.add(1, 1, Block3::scaled_identity(5.0));
    let mut up = Block3::scaled_identity(-1.0);
    *up.get_mut(0, 2) = 0.125;
    t.add(0, 1, up);
    t.add(1, 0, up.transpose() + Block3::scaled_identity(0.01));
    let a = t.build();
    assert!(SymmetricBcrs::from_full(&a, 1e-12).is_none());
    let s = SymmetricBcrs::from_full(&a, 0.1).expect("loose tol accepts");
    let full = Dense::from_bcrs(&a);
    let half = Dense::from_symmetric(&s);
    assert!(
        oracle::tolerance::check_bitwise(&full.data, &half.data, "lossy").is_err(),
        "expansion should differ from the asymmetric original"
    );
}
