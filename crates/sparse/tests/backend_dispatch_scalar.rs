//! `MRHS_KERNEL_BACKEND=scalar` forces the monomorphized scalar path.
//!
//! Each `backend_dispatch_*` test lives in its own integration-test
//! binary (own process) because the override env var is read exactly
//! once, at the first `active_backend()` call. The assertion goes
//! through the telemetry counter the instrumented entry points tag with
//! the dispatched backend's name — the same evidence a production trace
//! would show.

use mrhs_sparse::{Block3, BlockTripletBuilder, KernelKind, MultiVec};

#[test]
fn env_override_forces_scalar_backend() {
    std::env::set_var("MRHS_KERNEL_BACKEND", "scalar");
    mrhs_telemetry::set_enabled(true);

    let b = mrhs_sparse::active_backend();
    assert_eq!(b.kind(), KernelKind::Scalar);
    assert_eq!(b.name(), "scalar");

    let mut t = BlockTripletBuilder::square(4);
    for i in 0..4 {
        t.add(i, i, Block3::scaled_identity(2.0));
    }
    let a = t.build();
    let x = MultiVec::from_flat(12, 8, vec![1.0; 12 * 8]);
    let mut y = MultiVec::zeros(12, 8);
    mrhs_sparse::gspmv_serial(&a, &x, &mut y);

    let snap = mrhs_telemetry::snapshot();
    assert!(
        snap.counters.get("kernel_backend/scalar/calls").copied().unwrap_or(0) >= 1,
        "scalar dispatch not recorded: {:?}",
        snap.counters
    );
    assert!(!snap.counters.contains_key("kernel_backend/simd/calls"));
    assert!(!snap.counters.contains_key("kernel_backend/generic/calls"));
}
