//! `MRHS_KERNEL_BACKEND=generic` forces the strip-mined fallback.
//!
//! Own test binary: the override env var is read once, at the first
//! `active_backend()` call (see `backend_dispatch_scalar.rs`).

use mrhs_sparse::{Block3, BlockTripletBuilder, KernelKind, MultiVec};

#[test]
fn env_override_forces_generic_backend() {
    std::env::set_var("MRHS_KERNEL_BACKEND", "generic");
    mrhs_telemetry::set_enabled(true);

    let b = mrhs_sparse::active_backend();
    assert_eq!(b.kind(), KernelKind::Generic);
    assert_eq!(b.name(), "generic");

    let mut t = BlockTripletBuilder::square(4);
    for i in 0..4 {
        t.add(i, i, Block3::scaled_identity(2.0));
    }
    let a = t.build();
    let x = MultiVec::from_flat(12, 8, vec![1.0; 12 * 8]);
    let mut y = MultiVec::zeros(12, 8);
    mrhs_sparse::gspmv_serial(&a, &x, &mut y);

    let snap = mrhs_telemetry::snapshot();
    assert!(
        snap.counters.get("kernel_backend/generic/calls").copied().unwrap_or(0)
            >= 1,
        "generic dispatch not recorded: {:?}",
        snap.counters
    );
    assert!(!snap.counters.contains_key("kernel_backend/scalar/calls"));
    assert!(!snap.counters.contains_key("kernel_backend/simd/calls"));
}
